// Explain walks through Section IV-D of the paper: it reconstructs the
// "rise of emerging topics" narrative of Fig. 7, showing how a hypergraph
// edit path turns a raw distance into a human-readable story.
package main

import (
	"fmt"
	"log"

	"hged"
)

func main() {
	// An interest-group network: people (nodes, labeled by role) belong to
	// groups (hyperedges, labeled by topic).
	const (
		student  hged.Label = 1
		mentor   hged.Label = 2
		oldTopic hged.Label = 10 // "orange" in the paper's figure
		newTopic hged.Label = 11 // "grey"
	)
	names := []string{"Ana", "Bo", "Cem", "Dee", "Eli", "Fay", "Gus"}
	roles := []hged.Label{student, student, mentor, mentor, student, student, mentor}

	// Before: one old-topic group and one mixed community.
	before := hged.NewLabeledHypergraph(roles)
	before.AddEdge(oldTopic, 0, 1, 3) // Ana, Bo, Dee follow the old topic
	before.AddEdge(oldTopic, 3, 4, 5) // Dee, Eli, Fay too
	before.AddEdge(newTopic, 2, 3, 6) // Cem, Dee, Gus explore the new topic

	// After: the old topic has died out; its followers either left or
	// switched to the new topic.
	after := hged.NewLabeledHypergraph(roles[:6])
	after.AddEdge(newTopic, 0, 1, 3)
	after.AddEdge(newTopic, 2, 3)

	dist, path := hged.DistanceWithPath(before, after)
	fmt.Printf("HGED(before, after) = %d\n\n", dist)

	// A Namer turns slot numbers into domain language.
	namer := &hged.Namer{
		Node: func(slot int) string {
			if slot < len(names) {
				return names[slot]
			}
			return fmt.Sprintf("newcomer#%d", slot)
		},
		Edge: func(slot int) string { return fmt.Sprintf("group-%d", slot+1) },
		Label: func(l hged.Label) string {
			switch l {
			case oldTopic:
				return "the old topic"
			case newTopic:
				return "the new topic"
			case student:
				return "a student"
			case mentor:
				return "a mentor"
			}
			return fmt.Sprintf("label-%d", l)
		},
	}

	fmt.Println("the story of the transformation:")
	for i, line := range hged.Explain(path, namer) {
		fmt.Printf("  (%d) %s\n", i+1, line)
	}

	// The path is not just a story — applying it really produces the
	// "after" network.
	edited, err := path.Apply(before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napplying the path reaches the after-network:", hged.Isomorphic(edited, after))

	// Every edit path is minimum: no shorter operation sequence exists.
	fmt.Printf("operations on the path: %d (= the distance, by optimality)\n", path.Cost())
}
