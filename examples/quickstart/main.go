// Quickstart: build the paper's running example (Fig. 1), compute the
// hypergraph edit distance between two nodes' ego networks, print the
// explainable edit path, and mine (λ,τ)-hyperedges.
package main

import (
	"fmt"
	"log"

	"hged"
)

func main() {
	// Fig. 1 of the paper: 8 nodes u1..u8 labeled by shapes, 4 hyperedges
	// labeled by colors.
	const (
		square   hged.Label = 1
		triangle hged.Label = 2
		circle   hged.Label = 3
		orange   hged.Label = 10
		grey     hged.Label = 11
	)
	g := hged.NewLabeledHypergraph([]hged.Label{
		triangle, triangle, triangle, circle, circle, square, triangle, circle,
	})
	g.AddEdge(orange, 0, 1, 3)  // E1 = {u1,u2,u4}
	g.AddEdge(orange, 3, 5, 6)  // E2 = {u4,u6,u7}
	g.AddEdge(grey, 1, 2, 4)    // E3 = {u2,u3,u5}
	g.AddEdge(grey, 3, 4, 6, 7) // E4 = {u4,u5,u7,u8}
	fmt.Println("hypergraph:", g)

	// Problem 1: the node-similar distance σ(u4, u5) is the HGED between
	// their ego networks. The paper's Examples 2 and 7 derive σ = 6.
	u4, u5 := hged.NodeID(3), hged.NodeID(4)
	res := hged.NodeDistance(g, u4, u5, hged.Options{})
	fmt.Printf("σ(u4, u5) = %d (expanded %d search states)\n", res.Distance, res.Expanded)

	// The edit path explains the distance: six operations transform
	// EGO(u4) into a hypergraph isomorphic to EGO(u5).
	fmt.Println("edit path:")
	fmt.Print(hged.ExplainString(res.Path, nil))

	// Verify the path by applying it.
	edited, err := res.Path.Apply(g.Ego(u4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("path reaches EGO(u5):", hged.Isomorphic(edited, g.Ego(u5)))

	// Problem 2: mine all (λ,τ)-hyperedges. On this tiny example no *new*
	// hyperedge exists, so we include existing ones to show that the model
	// recognizes the recorded interactions as (2,6)-hyperedges.
	p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 2, Tau: 6, IncludeExisting: true})
	if err != nil {
		log.Fatal(err)
	}
	preds := p.Run()
	fmt.Printf("(2,6)-hyperedges found: %d\n", len(preds))
	for _, pr := range preds {
		ok := hged.VerifyHyperedge(g, pr.Nodes, 2, 6)
		fmt.Printf("  %v  verified=%v\n", pr.Nodes, ok)
	}
}
