// Coauthor reproduces the spirit of the paper's Fig. 10 case study: in a
// co-authorship hypergraph (researchers = nodes, publications =
// hyperedges), HEP predicts a group collaboration one year before it
// happens — and, unlike black-box predictors, explains *why* the
// researchers are similar via hypergraph edit paths.
package main

import (
	"fmt"
	"log"
	"strings"

	"hged"
)

const (
	areaDataMining hged.Label = 1
	areaSystems    hged.Label = 2
	venueKDD       hged.Label = 101
	venueICDE      hged.Label = 102
	venueOther     hged.Label = 103
)

func main() {
	names := []string{
		"J. Han (hub)", "X. Ren", "J. Shang", "M. Jiang",
		"A. Gupta", "B. Li", "C. Wu",
		"D. Park", "E. Novak", "F. Qi",
	}
	labels := []hged.Label{
		areaDataMining, areaDataMining, areaDataMining, areaDataMining,
		areaDataMining, areaDataMining, areaDataMining,
		areaSystems, areaSystems, areaSystems,
	}
	g := hged.NewLabeledHypergraph(labels)
	// "2016": the hub publishes with Ren, Shang, Jiang in overlapping
	// pairs — but the four never appear on one paper together.
	g.AddEdge(venueKDD, 0, 1, 2)
	g.AddEdge(venueKDD, 0, 1, 3)
	g.AddEdge(venueKDD, 0, 2, 3)
	g.AddEdge(venueICDE, 1, 2, 3)
	// A second circle around the hub.
	g.AddEdge(venueICDE, 0, 4, 5)
	g.AddEdge(venueICDE, 0, 4, 6)
	g.AddEdge(venueICDE, 0, 5, 6)
	// An unrelated systems group.
	g.AddEdge(venueOther, 7, 8, 9)
	g.AddEdge(venueOther, 7, 8)
	g.AddEdge(venueOther, 8, 9)

	fmt.Printf("2016 co-authorship hypergraph: %d researchers, %d publications\n\n",
		g.NumNodes(), g.NumEdges())

	p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5})
	if err != nil {
		log.Fatal(err)
	}
	preds := p.Run()
	fmt.Printf("predicted (3,5)-hyperedges (%d):\n", len(preds))
	target := map[hged.NodeID]bool{0: true, 1: true, 2: true, 3: true}
	var hit []hged.NodeID
	for _, pr := range preds {
		fmt.Printf("  {%s}\n", nameList(names, pr.Nodes))
		covered := 0
		for _, v := range pr.Nodes {
			if target[v] {
				covered++
			}
		}
		if covered == len(target) {
			hit = pr.Nodes
		}
	}
	if hit == nil {
		fmt.Println("\nthe 2017 Han–Ren–Shang–Jiang collaboration was NOT recovered")
		return
	}
	fmt.Printf("\nthe 2017 Han–Ren–Shang–Jiang collaboration IS predicted: {%s}\n",
		nameList(names, hit))

	// Explain why Ren and Shang are similar: the optimal edit path between
	// their ego networks.
	ex, err := p.Explain(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhy are %s and %s similar? σ = %d; edit path:\n", names[1], names[2], ex.Distance)
	for i, line := range ex.Lines() {
		fmt.Printf("  (%d) %s\n", i+1, line)
	}
	if ex.Distance == 0 {
		fmt.Println("  (their ego networks are already isomorphic)")
	}
}

func nameList(names []string, ids []hged.NodeID) string {
	parts := make([]string, len(ids))
	for i, v := range ids {
		parts[i] = names[v]
	}
	return strings.Join(parts, ", ")
}
