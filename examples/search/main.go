// Search demonstrates hypergraph similarity search: indexing the ego
// networks of a contact hypergraph and finding, for one person, everyone
// whose neighborhood structure is within a small hypergraph edit distance —
// the building block the HEP predictor uses to cluster similar nodes.
package main

import (
	"fmt"
	"log"

	"hged"
)

func main() {
	// A small contact network with three roles.
	const (
		student hged.Label = 1
		teacher hged.Label = 2
		staff   hged.Label = 3
		class   hged.Label = 10
		lunch   hged.Label = 11
	)
	labels := []hged.Label{
		student, student, student, teacher, // group 1: 0..3
		student, student, student, teacher, // group 2: 4..7
		staff, staff, // 8, 9
	}
	g := hged.NewLabeledHypergraph(labels)
	// Two parallel classes with identical shape.
	g.AddEdge(class, 0, 1, 3)
	g.AddEdge(class, 1, 2, 3)
	g.AddEdge(class, 4, 5, 7)
	g.AddEdge(class, 5, 6, 7)
	// A lunch group crossing roles.
	g.AddEdge(lunch, 2, 6, 8, 9)

	// Index every ego network.
	corpus := make([]*hged.Hypergraph, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		corpus[v] = g.Ego(hged.NodeID(v))
	}
	ix := hged.BuildSearchIndex(corpus)

	// Range search: who has a neighborhood within HGED ≤ 2 of student 0's?
	query := g.Ego(0)
	matches, stats, err := ix.Search(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes whose ego network is within HGED ≤ 2 of node 0's:")
	for _, m := range matches {
		fmt.Printf("  node %d at distance %d\n", m.ID, m.Distance)
	}
	fmt.Printf("filters pruned %d/%d candidates before verification\n\n",
		stats.PrunedByCount+stats.PrunedByLabel+stats.PrunedByCard, stats.Candidates)

	// kNN: the three structurally closest neighborhoods to the teacher's.
	tQuery := g.Ego(3)
	nearest, _, err := ix.Nearest(tQuery, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest neighborhoods to teacher 3's:")
	for _, m := range nearest {
		fmt.Printf("  node %d at distance %d\n", m.ID, m.Distance)
	}

	// The mirror teacher (node 7) should be at distance 0: the two class
	// groups are isomorphic.
	if d := hged.Distance(g.Ego(3), g.Ego(7)); d == 0 {
		fmt.Println("\nteachers 3 and 7 have isomorphic neighborhoods (HGED = 0)")
	}
}
