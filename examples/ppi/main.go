// PPI models the paper's second motivating application: predicting
// expressed genes in a protein-protein interaction hypergraph. Proteins are
// nodes (labeled by protein family) and each known gene is a hyperedge over
// the proteins it expresses through. HEP predicts new candidate genes as
// (λ,τ)-hyperedges: groups of proteins whose interaction neighborhoods are
// mutually similar.
package main

import (
	"fmt"
	"log"

	"hged"
)

func main() {
	// Protein families as labels.
	const (
		kinase   hged.Label = 1
		ligase   hged.Label = 2
		receptor hged.Label = 3
		geneA    hged.Label = 201
		geneB    hged.Label = 202
	)

	// Two pathway clusters of proteins. Within each cluster, known genes
	// (hyperedges) cover most — but not all — protein combinations.
	labels := []hged.Label{
		kinase, kinase, ligase, receptor, // proteins p0..p3 (pathway A)
		kinase, kinase, ligase, receptor, // proteins p4..p7 (pathway B)
	}
	g := hged.NewLabeledHypergraph(labels)
	// Pathway A's recorded genes.
	g.AddEdge(geneA, 0, 1, 2)
	g.AddEdge(geneA, 0, 2, 3)
	g.AddEdge(geneA, 1, 2, 3)
	// Pathway B's recorded genes.
	g.AddEdge(geneB, 4, 5, 6)
	g.AddEdge(geneB, 4, 6, 7)
	g.AddEdge(geneB, 5, 6, 7)

	fmt.Printf("PPI hypergraph: %d proteins, %d recorded genes\n", g.NumNodes(), g.NumEdges())

	p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 6, MaxSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	preds := p.Run()
	fmt.Printf("predicted candidate genes (%d):\n", len(preds))
	for _, pr := range preds {
		fmt.Printf("  proteins %v", pr.Nodes)
		// A candidate is only credible if it verifies as a genuine
		// (λ,τ)-hyperedge under Definition 4.
		if hged.VerifyHyperedge(g, pr.Nodes, 3, 6) {
			fmt.Print("  [verified (3,6)-hyperedge]")
		}
		fmt.Println()
	}

	// Explain the strongest within-pathway similarity.
	ex, err := p.Explain(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhy are p0 and p1 similar? σ = %d\n", ex.Distance)
	for i, line := range ex.Lines() {
		fmt.Printf("  (%d) %s\n", i+1, line)
	}
	if ex.Distance == 0 {
		fmt.Println("  (their interaction neighborhoods are isomorphic)")
	}

	// Contrast: proteins in different pathways are far apart.
	cross := hged.NodeDistance(g, 0, 4, hged.Options{})
	fmt.Printf("\ncross-pathway σ(p0, p4) = %d — too dissimilar to co-express a gene\n", cross.Distance)
}
