package hged_test

import (
	"fmt"

	"hged"
)

// ExampleDistance computes the paper's running example: the hypergraph edit
// distance between the ego networks of u4 and u5 in Fig. 1 is 6.
func ExampleDistance() {
	g := hged.Fig1()
	fmt.Println(hged.Distance(g.Ego(3), g.Ego(4)))
	// Output: 6
}

// ExampleDistanceWithPath shows the explainable edit path.
func ExampleDistanceWithPath() {
	g := hged.Fig1()
	d, path := hged.DistanceWithPath(g.Ego(3), g.Ego(4))
	fmt.Println(d, path.Cost() == d)

	edited, _ := path.Apply(g.Ego(3))
	fmt.Println(hged.Isomorphic(edited, g.Ego(4)))
	// Output:
	// 6 true
	// true
}

// ExampleDistanceWithin verifies a threshold without computing beyond it.
func ExampleDistanceWithin() {
	g := hged.Fig1()
	if _, ok := hged.DistanceWithin(g.Ego(3), g.Ego(4), 5); !ok {
		fmt.Println("more than 5 edits apart")
	}
	// Output: more than 5 edits apart
}

// ExampleNewPredictor mines (λ,τ)-hyperedges — the hyperedge predictions.
func ExampleNewPredictor() {
	// Two of the four triples of a 4-clique community are recorded; HEP
	// predicts the whole group.
	g := hged.NewLabeledHypergraph([]hged.Label{1, 1, 1, 1})
	g.AddEdge(10, 0, 1, 2)
	g.AddEdge(10, 0, 1, 3)
	g.AddEdge(10, 0, 2, 3)

	p, _ := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5})
	for _, pred := range p.Run() {
		fmt.Println(pred.Nodes)
	}
	// Output: [0 1 2 3]
}

// ExampleLowerBound shows the Strategy-3 bound, tight on the paper's
// example.
func ExampleLowerBound() {
	g := hged.Fig1()
	fmt.Println(hged.LowerBound(g.Ego(3), g.Ego(4)))
	// Output: 6
}

// ExampleNewNamedBuilder builds a hypergraph with string names.
func ExampleNewNamedBuilder() {
	b := hged.NewNamedBuilder()
	b.LabeledNode("han", "data-mining")
	b.Edge("KDD", "han", "ren", "shang")
	g := b.Graph()
	fmt.Println(g.NumNodes(), g.NumEdges())
	// Output: 3 1
}
