// Package hged is an explainable hyperlink-prediction library for
// hypergraphs, implementing Qin, Li, Yuan, Wang and Dai, "Explainable
// Hyperlink Prediction: A Hypergraph Edit Distance-Based Approach"
// (ICDE 2023).
//
// The library models labeled simple undirected hypergraphs, computes the
// Hypergraph Edit Distance (HGED) between two hypergraphs — along with a
// hypergraph edit path that explains the distance — and predicts missing
// hyperedges as (λ,τ)-hyperedges via the HEP framework. Classic similarity
// indices and the paper's JS and LGR baselines are included, together with
// dataset replicas and an experiment harness reproducing the paper's tables
// and figures.
//
// # Quick start
//
//	g := hged.NewHypergraph(0)
//	a := g.AddNode(1)            // labeled nodes
//	b := g.AddNode(1)
//	c := g.AddNode(2)
//	g.AddEdge(10, a, b, c)       // labeled hyperedge {a,b,c}
//
//	d := hged.Distance(g1, g2)               // exact HGED
//	d, path := hged.DistanceWithPath(g1, g2) // ... with an edit path
//	fmt.Println(hged.ExplainString(path, nil))
//
//	p, _ := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5})
//	for _, pred := range p.Run() { fmt.Println(pred.Nodes) }
//
// The facade re-exports the library's internal packages; see the type and
// function aliases below for the full surface.
package hged

import (
	"hged/internal/baseline"
	"hged/internal/core"
	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// Hypergraph model (internal/hypergraph).
type (
	// Hypergraph is a labeled simple undirected hypergraph.
	Hypergraph = hypergraph.Hypergraph
	// Hyperedge is an unordered labeled set of nodes.
	Hyperedge = hypergraph.Hyperedge
	// NodeID identifies a node (dense, 0-based).
	NodeID = hypergraph.NodeID
	// EdgeID identifies a hyperedge (dense, 0-based).
	EdgeID = hypergraph.EdgeID
	// Label is a node or hyperedge label.
	Label = hypergraph.Label
	// Stats summarizes a hypergraph (Table-I shape).
	Stats = hypergraph.Stats
	// Bipartite is the bipartite incidence view of a hypergraph.
	Bipartite = hypergraph.Bipartite
	// VersionedGraph is an MVCC wrapper: readers pin immutable frozen
	// generations in O(1) while a writer batches mutations and publishes
	// the next.
	VersionedGraph = hypergraph.Versioned
	// GraphGeneration is one immutable published version of a graph.
	GraphGeneration = hypergraph.Generation
	// GraphBatch is an open copy-on-write mutation batch.
	GraphBatch = hypergraph.Batch
	// GraphDelta reports what a committed batch invalidates.
	GraphDelta = hypergraph.Delta
)

// NewVersionedGraph publishes g as generation 1 of a versioned graph. The
// caller hands over ownership: mutate only through Begin/Commit batches.
func NewVersionedGraph(g *Hypergraph) *VersionedGraph { return hypergraph.NewVersioned(g) }

// NewHypergraph returns an empty hypergraph with n unlabeled nodes.
func NewHypergraph(n int) *Hypergraph { return hypergraph.New(n) }

// NewLabeledHypergraph returns a hypergraph whose node i has labels[i].
func NewLabeledHypergraph(labels []Label) *Hypergraph { return hypergraph.NewLabeled(labels) }

// Isomorphic reports whether two hypergraphs are isomorphic (Definition 2).
func Isomorphic(g, h *Hypergraph) bool { return hypergraph.Isomorphic(g, h) }

// Summarize computes summary statistics for a hypergraph.
func Summarize(g *Hypergraph) Stats { return hypergraph.Summarize(g) }

// ToBipartite builds the bipartite incidence view of a hypergraph.
func ToBipartite(g *Hypergraph) *Bipartite { return hypergraph.ToBipartite(g) }

// HGED computation (internal/core).
type (
	// Options configures the HGED solvers (threshold τ, expansion budget,
	// strategy ablations).
	Options = core.Options
	// Result reports an HGED computation.
	Result = core.Result
	// Path is a hypergraph edit path explaining a distance.
	Path = core.Path
	// Op is one atomic edit operation (Definition 3).
	Op = core.Op
	// OpKind enumerates the atomic operations.
	OpKind = core.OpKind
	// Mapping is a complete node+hyperedge correspondence.
	Mapping = core.Mapping
	// Namer renders entities in explanations.
	Namer = core.Namer
	// CostModel weights the atomic edit operations (unit costs by
	// default).
	CostModel = core.CostModel
)

// UnitCosts returns the paper's unit-cost model.
func UnitCosts() CostModel { return core.UnitCosts() }

// Edit operation kinds (Definition 3).
const (
	OpNodeDelete  = core.OpNodeDelete
	OpNodeInsert  = core.OpNodeInsert
	OpEdgeDelete  = core.OpEdgeDelete
	OpEdgeInsert  = core.OpEdgeInsert
	OpEdgeReduce  = core.OpEdgeReduce
	OpEdgeExtend  = core.OpEdgeExtend
	OpNodeRelabel = core.OpNodeRelabel
	OpEdgeRelabel = core.OpEdgeRelabel
)

// Distance computes the exact hypergraph edit distance HGED(g, h).
func Distance(g, h *Hypergraph) int { return core.Distance(g, h) }

// DistanceWithin verifies HGED(g, h) ≤ tau, returning the exact distance
// and true when within.
func DistanceWithin(g, h *Hypergraph, tau int) (int, bool) { return core.DistanceWithin(g, h, tau) }

// DistanceWithPath computes HGED(g, h) and an optimal edit path.
func DistanceWithPath(g, h *Hypergraph) (int, *Path) { return core.DistanceWithPath(g, h) }

// NodeDistance computes the node-similar distance σ(u, v) (Problem 1): the
// HGED between the ego networks of u and v in g.
func NodeDistance(g *Hypergraph, u, v NodeID, opts Options) Result {
	return core.NodeDistance(g, u, v, opts)
}

// BFS runs HGED-BFS (Algorithm 3), the recommended exact solver.
func BFS(g, h *Hypergraph, opts Options) Result { return core.BFS(g, h, opts) }

// DFS runs HGED-DFS (Algorithms 1+2), the exact enumeration baseline.
func DFS(g, h *Hypergraph, opts Options) Result { return core.DFS(g, h, opts) }

// HEU runs HGED-HEU (Algorithm 1), the heuristic upper-bound baseline.
func HEU(g, h *Hypergraph, opts Options) Result { return core.HEU(g, h, opts) }

// LowerBound returns the Strategy-3 admissible lower bound on HGED(g, h).
func LowerBound(g, h *Hypergraph) int { return core.LowerBound(g, h) }

// NotWithin marks DistanceMatrix entries beyond the threshold.
const NotWithin = core.NotWithin

// DistanceMatrix computes all pairwise HGED values, optionally in parallel.
func DistanceMatrix(graphs []*Hypergraph, opts Options, workers int) [][]int {
	return core.Matrix(graphs, opts, workers)
}

// NodeDistanceMatrix computes pairwise node-similar distances σ(u, v) for
// the given nodes of one host graph.
func NodeDistanceMatrix(g *Hypergraph, nodes []NodeID, opts Options, workers int) [][]int {
	return core.NodeMatrix(g, nodes, opts, workers)
}

// Explain renders an edit path as human-readable sentences.
func Explain(p *Path, namer *Namer) []string { return core.Explain(p, namer) }

// ExplainString renders an edit path as a numbered narrative.
func ExplainString(p *Path, namer *Namer) string { return core.ExplainString(p, namer) }

// Hyperedge prediction (internal/predict).
type (
	// PredictOptions configures HEP (λ, τ, solver, size bounds).
	PredictOptions = predict.Options
	// Predictor runs HEP over one hypergraph.
	Predictor = predict.Predictor
	// Prediction is one predicted hyperedge.
	Prediction = predict.Prediction
	// Explanation is a σ(u,v) justification via an edit path.
	Explanation = predict.Explanation
	// PredictAlgorithm selects the HGED solver inside HEP.
	PredictAlgorithm = predict.Algorithm
	// PredictStats reports the work a HEP run performed, including the σ
	// cache counters (computed / hits / in-flight dedups / expansions).
	PredictStats = predict.Stats
)

// HEP solver choices.
const (
	AlgBFS = predict.AlgBFS
	AlgDFS = predict.AlgDFS
	AlgHEU = predict.AlgHEU
)

// NewPredictor builds a HEP predictor for g.
func NewPredictor(g *Hypergraph, opts PredictOptions) (*Predictor, error) {
	return predict.New(g, opts)
}

// VerifyHyperedge checks Definition 4 exactly: whether s is a
// (λ,τ)-hyperedge of g.
func VerifyHyperedge(g *Hypergraph, s []NodeID, lambda, tau int) bool {
	return predict.Verify(g, s, lambda, tau)
}

// Baselines (internal/baseline).
type (
	// JSOptions configures the Jaccard-similarity baseline.
	JSOptions = baseline.JSOptions
	// LGROptions configures the logistic-regression baseline.
	LGROptions = baseline.LGROptions
	// LGR is the trained logistic-regression hyperedge classifier.
	LGR = baseline.LGR
)

// NewJS builds the paper's JS baseline: the HEP framework driven by Jaccard
// similarity.
func NewJS(g *Hypergraph, opts JSOptions) (*Predictor, error) { return baseline.NewJS(g, opts) }

// NewLGR trains the paper's LGR baseline on g's hyperedges.
func NewLGR(g *Hypergraph, opts LGROptions) (*LGR, error) { return baseline.NewLGR(g, opts) }

// Jaccard returns the Jaccard similarity of two nodes' neighborhoods.
func Jaccard(g *Hypergraph, u, v NodeID) float64 { return baseline.Jaccard(g, u, v) }

// AdamicAdar returns the Adamic/Adar index of two nodes.
func AdamicAdar(g *Hypergraph, u, v NodeID) float64 { return baseline.AdamicAdar(g, u, v) }

// CommonNeighbors returns the common-neighbour count of two nodes.
func CommonNeighbors(g *Hypergraph, u, v NodeID) float64 { return baseline.CommonNeighbors(g, u, v) }
