// Command hged computes the hypergraph edit distance between two
// hypergraphs in the .hg text format, or the node-similar distance σ(u, v)
// between two nodes of one hypergraph, printing the optimal edit path.
//
// Usage:
//
//	hged [-solver bfs|dfs|heu] [-tau N] [-explain] A.hg B.hg
//	hged [-solver bfs|dfs|heu] [-tau N] [-explain] -nodes u,v G.hg
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hged/internal/core"
	"hged/internal/hgio"
	"hged/internal/hypergraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hged:", err)
		os.Exit(1)
	}
}

func run() error {
	solver := flag.String("solver", "bfs", "HGED solver: bfs, dfs, or heu")
	tau := flag.Int("tau", 0, "verification threshold τ (0 = unbounded)")
	explain := flag.Bool("explain", false, "print the hypergraph edit path")
	nodes := flag.String("nodes", "", "compute σ(u,v) between node ids u,v of one input graph")
	maxExp := flag.Int64("max-expansions", 0, "search expansion budget (0 = default)")
	flag.Parse()

	opts := core.Options{Threshold: *tau, MaxExpansions: *maxExp}

	var a, b *hypergraph.Hypergraph
	switch {
	case *nodes != "":
		if flag.NArg() != 1 {
			return fmt.Errorf("-nodes requires exactly one graph file")
		}
		g, err := load(flag.Arg(0))
		if err != nil {
			return err
		}
		u, v, err := parsePair(*nodes, g.NumNodes())
		if err != nil {
			return err
		}
		a, b = g.Ego(u), g.Ego(v)
		fmt.Printf("EGO(%d): %d nodes, %d hyperedges; EGO(%d): %d nodes, %d hyperedges\n",
			u, a.NumNodes(), a.NumEdges(), v, b.NumNodes(), b.NumEdges())
	case flag.NArg() == 2:
		var err error
		if a, err = load(flag.Arg(0)); err != nil {
			return err
		}
		if b, err = load(flag.Arg(1)); err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("need two graph files, or -nodes u,v with one graph file")
	}

	var res core.Result
	switch *solver {
	case "bfs":
		res = core.BFS(a, b, opts)
	case "dfs":
		res = core.DFS(a, b, opts)
	case "heu":
		res = core.HEU(a, b, opts)
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	switch {
	case res.Exceeded:
		fmt.Printf("HGED > %d (threshold exceeded; expanded %d states)\n", *tau, res.Expanded)
	case !res.Exact:
		fmt.Printf("HGED ≤ %d (upper bound; expansion budget hit after %d states)\n", res.Distance, res.Expanded)
	default:
		fmt.Printf("HGED = %d (expanded %d states)\n", res.Distance, res.Expanded)
	}
	if *explain && res.Path != nil {
		fmt.Print(core.ExplainString(res.Path, nil))
	}
	return nil
}

func load(path string) (*hypergraph.Hypergraph, error) {
	return hgio.ReadFile(path)
}

func parsePair(s string, n int) (hypergraph.NodeID, hypergraph.NodeID, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -nodes %q, want u,v", s)
	}
	u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= n || v >= n {
		return 0, 0, fmt.Errorf("bad -nodes %q for a graph with %d nodes", s, n)
	}
	return hypergraph.NodeID(u), hypergraph.NodeID(v), nil
}
