// Command hgsearch performs hypergraph similarity search over a corpus of
// .hg files: range search (all corpus members within HGED ≤ τ of the query)
// or k-nearest-neighbour search, using the filter-and-verify index.
//
// Usage:
//
//	hgsearch -q query.hg -tau 5 corpus1.hg corpus2.hg ...
//	hgsearch -q query.hg -k 3 corpus1.hg corpus2.hg ...
//	hgsearch -q query.hg -tau 5 -egos G.hg     # corpus = all ego networks of G
//	hgsearch -q query.hg -k 3 -parallel 8 ...  # verify on 8 workers
//	hgsearch -q query.hg -tau 5 -pivots 8 ...  # triangle-inequality pruning
//
// -parallel fans the verification stage over that many workers; the output
// is byte-identical to a sequential run. -pivots builds a pivot-based
// metric index first (farthest-first pivots, exact corpus-to-pivot
// distances) so candidates can be pruned or admitted by the triangle
// inequality before verification — same results, fewer exact solves.
// -index-snapshot persists that index: when the file already matches the
// corpus the build is skipped and the table loaded from disk.
// -corpus-snapshot persists the corpus and index together as one .hgx file:
// when it matches the corpus files (or when no corpus files are given at
// all) the graphs load straight into their frozen CSR form with the index
// and pivot table adopted as-is — no parsing, no rebuild. Ctrl-C cancels a
// build or scan in progress.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hged/internal/hgio"
	"hged/internal/hypergraph"
	"hged/internal/search"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgsearch:", err)
		os.Exit(1)
	}
}

func run() error {
	query := flag.String("q", "", "query hypergraph (.hg)")
	tau := flag.Int("tau", -1, "range search threshold τ (≥ 0)")
	k := flag.Int("k", 0, "k-nearest-neighbour search (> 0)")
	egos := flag.Bool("egos", false, "treat the single corpus file as a host graph and search its ego networks")
	maxExp := flag.Int64("max-expansions", 0, "per-verification expansion budget (0 = default)")
	parallel := flag.Int("parallel", 0, "verification workers (≤ 1 = sequential)")
	pivots := flag.Int("pivots", 0, "pivot count for the metric index (0 = linear scan)")
	snapshot := flag.String("index-snapshot", "", "pivot-index snapshot path: loaded when it matches the corpus, written after a build")
	corpusSnapshot := flag.String("corpus-snapshot", "", "combined corpus+index snapshot path (.hgx): loaded when it matches the corpus files (or used as the whole corpus when none are given), written after a build")
	flag.Parse()

	if *query == "" {
		flag.Usage()
		return fmt.Errorf("need -q query file")
	}
	if (*tau < 0) == (*k <= 0) {
		return fmt.Errorf("need exactly one of -tau or -k")
	}
	if *corpusSnapshot != "" && *egos {
		return fmt.Errorf("-corpus-snapshot cannot be combined with -egos (ego corpora are derived, not loaded)")
	}
	q, err := load(*query)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var corpus []*hypergraph.Hypergraph
	var describe func(id int) string
	var ix *search.Index
	if *corpusSnapshot != "" {
		ix, describe, err = fromCorpusSnapshot(*corpusSnapshot, flag.Args(), *pivots)
		if err != nil && flag.NArg() == 0 {
			return err
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hgsearch: corpus snapshot %s unusable, loading corpus files: %v\n", *corpusSnapshot, err)
		}
	}
	if ix == nil {
		if *egos {
			if flag.NArg() != 1 {
				return fmt.Errorf("-egos takes exactly one host graph file")
			}
			host, err := load(flag.Arg(0))
			if err != nil {
				return err
			}
			for v := 0; v < host.NumNodes(); v++ {
				corpus = append(corpus, host.Ego(hypergraph.NodeID(v)))
			}
			describe = func(id int) string { return fmt.Sprintf("EGO(%d)", id) }
		} else {
			if flag.NArg() == 0 {
				return fmt.Errorf("need corpus files")
			}
			files := flag.Args()
			for _, f := range files {
				g, err := load(f)
				if err != nil {
					return err
				}
				corpus = append(corpus, g)
			}
			describe = func(id int) string { return files[id] }
		}

		ix = search.Build(corpus)
		ix.MaxExpansions = *maxExp
		ix.Parallelism = *parallel
		if err := equipPivots(ctx, ix, *pivots, *snapshot); err != nil {
			return err
		}
		if *corpusSnapshot != "" {
			if err := hgio.WriteCorpusSnapshotFile(*corpusSnapshot, flag.Args(), ix); err != nil {
				return fmt.Errorf("persisting corpus snapshot: %w", err)
			}
			fmt.Fprintf(os.Stderr, "hgsearch: corpus snapshot written to %s\n", *corpusSnapshot)
		}
	}
	ix.MaxExpansions = *maxExp
	ix.Parallelism = *parallel

	var matches []search.Match
	var stats search.FilterStats
	if *tau >= 0 {
		matches, stats, err = ix.SearchContext(ctx, q, *tau)
	} else {
		matches, stats, err = ix.NearestContext(ctx, q, *k)
	}
	if err != nil {
		return err
	}
	for _, m := range matches {
		fmt.Printf("HGED=%-4d %s\n", m.Distance, describe(m.ID))
	}
	fmt.Printf("corpus=%d pruned: count=%d label=%d card=%d bound=%d triangle=%d; admitted=%d verified=%d (within=%d)\n",
		stats.Candidates, stats.PrunedByCount, stats.PrunedByLabel, stats.PrunedByCard,
		stats.PrunedByBound, stats.PrunedByTriangle, stats.AdmittedByUpperBound,
		stats.Verified, stats.VerifiedWithin)
	return nil
}

// fromCorpusSnapshot restores the corpus and index from a combined .hgx
// snapshot. With corpus files on the command line the snapshot must list
// exactly those files in the same order (so result IDs mean the same thing
// a fresh build would); with none, the snapshot itself defines the corpus.
// The embedded pivot table must match -pivots — searching with a different
// accelerator than asked for would change the reported filter stats.
func fromCorpusSnapshot(path string, files []string, pivots int) (*search.Index, func(id int) string, error) {
	names, ix, nbytes, err := hgio.ReadCorpusSnapshotFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(files) > 0 {
		if len(files) != len(names) {
			return nil, nil, fmt.Errorf("snapshot holds %d graphs, %d corpus files given", len(names), len(files))
		}
		for i, f := range files {
			if names[i] != f {
				return nil, nil, fmt.Errorf("snapshot graph %d is %q, corpus file is %q", i, names[i], f)
			}
		}
	}
	want := pivots
	if n := ix.Len(); want > n {
		want = n
	}
	got := 0
	if pv := ix.Pivots(); pv != nil {
		got = pv.K()
	}
	if got != want {
		return nil, nil, fmt.Errorf("snapshot has %d pivots, -pivots wants %d", got, want)
	}
	fmt.Fprintf(os.Stderr, "hgsearch: corpus+index loaded from %s (%d graphs, %d pivots, %d bytes)\n",
		path, len(names), got, nbytes)
	return ix, func(id int) string { return names[id] }, nil
}

// equipPivots attaches a k-pivot metric index to ix: loaded from the
// snapshot when one matches this exact corpus and pivot count, built (and
// persisted, when a path is given) otherwise.
func equipPivots(ctx context.Context, ix *search.Index, k int, snapshot string) error {
	if k <= 0 {
		return nil
	}
	want := k
	if n := ix.Len(); want > n {
		want = n
	}
	if snapshot != "" {
		if pv, digests, err := hgio.ReadPivotSnapshotFile(snapshot); err == nil && pv.K() == want {
			if aerr := ix.AttachPivots(pv, digests); aerr == nil {
				fmt.Fprintf(os.Stderr, "hgsearch: pivot index loaded from %s (%d pivots)\n", snapshot, pv.K())
				return nil
			}
		}
	}
	pv, err := ix.BuildPivots(ctx, k)
	if err != nil {
		return err
	}
	if snapshot != "" {
		if err := hgio.WritePivotSnapshotFile(snapshot, pv, ix.SignatureDigests()); err != nil {
			return fmt.Errorf("persisting pivot snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hgsearch: pivot snapshot written to %s\n", snapshot)
	}
	return nil
}

func load(path string) (*hypergraph.Hypergraph, error) {
	return hgio.ReadFile(path)
}
