// Command datagen generates hypergraphs: synthetic replicas of the paper's
// six datasets (Table I), planted-community graphs with custom parameters,
// or sub-samples of an existing graph. The output format follows the -o
// extension — .hg text by default, .json, or the .hgb binary format.
//
// Usage:
//
//	datagen -dataset PS [-scale 0.1] [-o ps.hg]
//	datagen -nodes 500 -edges 1200 [-mean 4] [-median 3] [-labels 8] [-seed 7] [-o g.hgb]
//	datagen -subsample g.hg -node-frac 0.5 -edge-frac 0.5 [-o sub.hg]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hged/internal/dataset"
	"hged/internal/gen"
	"hged/internal/hgio"
	"hged/internal/hypergraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	ds := flag.String("dataset", "", "replicate a registered dataset (PS, HS, MO, WM, TVG, AMZ)")
	scale := flag.Float64("scale", 0, "replica scale (0 = the dataset's default)")
	nodes := flag.Int("nodes", 0, "custom generation: node count")
	edges := flag.Int("edges", 0, "custom generation: hyperedge count")
	mean := flag.Float64("mean", 3, "custom generation: mean hyperedge size")
	median := flag.Int("median", 0, "custom generation: median hyperedge size")
	labels := flag.Int("labels", 4, "custom generation: label classes")
	seed := flag.Int64("seed", 1, "random seed")
	sub := flag.String("subsample", "", "sub-sample this .hg file instead of generating")
	nodeFrac := flag.Float64("node-frac", 1, "subsample: fraction of nodes kept")
	edgeFrac := flag.Float64("edge-frac", 1, "subsample: fraction of hyperedges kept")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *hypergraph.Hypergraph
	switch {
	case *sub != "":
		f, err := os.Open(*sub)
		if err != nil {
			return err
		}
		full, err := hgio.ReadText(f)
		f.Close()
		if err != nil {
			return err
		}
		g = gen.Subsample(full, *nodeFrac, *edgeFrac, *seed)
	case *ds != "":
		spec, err := dataset.Lookup(*ds)
		if err != nil {
			return err
		}
		if g, err = spec.Replica(*scale); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, spec.TableRow(g))
	case *nodes > 0:
		var err error
		g, _, err = gen.PlantedCommunities(gen.Config{
			Nodes: *nodes, Edges: *edges,
			MeanEdgeSize: *mean, MedianEdgeSize: *median,
			NodeLabelCount: *labels, Seed: *seed,
		})
		if err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("need -dataset, -nodes, or -subsample")
	}

	if *out == "" {
		return hgio.WriteText(os.Stdout, g)
	}
	switch filepath.Ext(*out) {
	case ".hgb":
		return hgio.WriteBinaryFile(*out, g)
	case ".json":
		return writeVia(*out, g, hgio.WriteJSON)
	default:
		return writeVia(*out, g, hgio.WriteText)
	}
}

func writeVia(path string, g *hypergraph.Hypergraph, write func(io.Writer, *hypergraph.Hypergraph) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
