// Command bench runs the tracked solver/predict/search benchmark suite on
// seeded planted-community hypergraphs and writes a BENCH_<n>.json snapshot
// (ns/op, bytes/op, allocs/op, solver expansions) that is comparable across
// PRs. The workloads are deterministic — fixed generator seeds, fixed node
// picks — so two snapshots differ only by the code under test.
//
// Usage:
//
//	bench [-o BENCH_2.json] [-benchtime 1s] [-quick] [-bench regexp]
//	bench -compare BENCH_0.json BENCH_1.json [-fail-over 5]
//	bench -validate BENCH_1.json
//
// With no -o the snapshot goes to the next unused BENCH_<n>.json in the
// working directory. -quick runs every benchmark exactly once (schema smoke
// for CI); -compare prints a delta table between two snapshots and, with
// -fail-over, exits 1 when any shared benchmark slowed down by more than the
// given percentage; -validate checks a snapshot against the schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"hged"
	"hged/internal/core"
	"hged/internal/gen"
	"hged/internal/hgio"
	"hged/internal/hypergraph"
	"hged/internal/lint"
	"hged/internal/predict"
	"hged/internal/search"
)

// Schema identifies the snapshot format; bump on incompatible changes.
const Schema = "hged-bench/v1"

// Snapshot is the JSON shape of a BENCH_<n>.json file.
type Snapshot struct {
	Schema     string      `json:"schema"`
	CreatedAt  string      `json:"createdAt"`
	GoVersion  string      `json:"goVersion"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	MaxProcs   int         `json:"maxProcs"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []BenchLine `json:"benchmarks"`
}

// BenchLine is one benchmark's measurement.
type BenchLine struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output snapshot path (default: next unused BENCH_<n>.json)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time (Go benchtime syntax, e.g. 1s or 100x)")
	quick := flag.Bool("quick", false, "run each benchmark exactly once (CI schema smoke)")
	benchRe := flag.String("bench", "", "only run benchmarks matching this regexp")
	compare := flag.Bool("compare", false, "compare two snapshot files given as positional args")
	failOver := flag.Float64("fail-over", 0, "with -compare: exit 1 when any benchmark's ns/op regressed by more than this percentage (0 = report only)")
	validate := flag.String("validate", "", "validate a snapshot file against the schema and exit")
	testing.Init()
	flag.Parse()

	if *validate != "" {
		snap, err := readSnapshot(*validate)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid %s snapshot, %d benchmarks\n", *validate, snap.Schema, len(snap.Benchmarks))
		return nil
	}
	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two snapshot files, got %d", flag.NArg())
		}
		return compareSnapshots(flag.Arg(0), flag.Arg(1), *failOver)
	}

	bt := *benchtime
	if *quick {
		bt = "1x"
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		return err
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			return err
		}
		filter = re
	}

	snap := Snapshot{
		Schema:    Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Benchtime: bt,
	}
	for _, bm := range suite() {
		if filter != nil && !filter.MatchString(bm.name) {
			continue
		}
		res := testing.Benchmark(bm.fn)
		line := BenchLine{
			Name:        bm.name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			line.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				line.Extra[k] = v
			}
		}
		fmt.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op%s\n",
			line.Name, line.NsPerOp, line.BytesPerOp, line.AllocsPerOp, extraString(line.Extra))
		snap.Benchmarks = append(snap.Benchmarks, line)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool { return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name })

	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	return nil
}

func extraString(extra map[string]float64) string {
	if len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf(" %10.1f %s", extra[k], k)
	}
	return s
}

func nextSnapshotPath() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, snap.Schema, Schema)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	for _, b := range snap.Benchmarks {
		if b.Name == "" || b.N <= 0 || b.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: malformed benchmark line %+v", path, b)
		}
	}
	return &snap, nil
}

func compareSnapshots(oldPath, newPath string, failOver float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]BenchLine, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Printf("%-28s %12s %12s %8s  %9s %9s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old a/op", "new a/op", "Δ")
	regressed := false
	for _, nb := range newSnap.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-28s %38s\n", nb.Name, "(new)")
			continue
		}
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctDelta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		fmt.Printf("%-28s %12.0f %12.0f %+7.1f%%  %9d %9d %+7.1f%%\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if failOver > 0 && nsDelta > failOver {
			regressed = true
		}
	}
	if regressed {
		return fmt.Errorf("at least one benchmark regressed by more than %.1f%%", failOver)
	}
	return nil
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// --------------------------------------------------------------- workloads

type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// plantedHost returns the deterministic host hypergraph every solver
// workload draws from.
func plantedHost() *hged.Hypergraph {
	g, _, err := gen.PlantedCommunities(gen.Config{
		Nodes: 120, Edges: 240, MeanEdgeSize: 4, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// egoPicks returns the first k nodes of g whose ego networks have between
// minN and maxN nodes — a deterministic selection of solver-sized inputs.
func egoPicks(g *hged.Hypergraph, k, minN, maxN int) []hged.NodeID {
	var picks []hged.NodeID
	for v := 0; v < g.NumNodes() && len(picks) < k; v++ {
		n := g.Ego(hged.NodeID(v)).NumNodes()
		if n >= minN && n <= maxN {
			picks = append(picks, hged.NodeID(v))
		}
	}
	if len(picks) < k {
		panic(fmt.Sprintf("bench: only %d/%d ego picks in [%d,%d]", len(picks), k, minN, maxN))
	}
	return picks
}

func paperEgoPair() (*hged.Hypergraph, *hged.Hypergraph) {
	labels := []hged.Label{2, 2, 2, 3, 3, 1, 2, 3}
	g := hged.NewLabeledHypergraph(labels)
	g.AddEdge(10, 0, 1, 3)
	g.AddEdge(10, 3, 5, 6)
	g.AddEdge(11, 1, 2, 4)
	g.AddEdge(11, 3, 4, 6, 7)
	return g.Ego(3), g.Ego(4)
}

func suite() []benchmark {
	return []benchmark{
		{"HGED-BFS/paper-example", func(b *testing.B) {
			x, y := paperEgoPair()
			var expanded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := hged.BFS(x, y, hged.Options{})
				if res.Distance != 6 {
					b.Fatalf("distance = %d, want 6", res.Distance)
				}
				expanded += res.Expanded
			}
			b.ReportMetric(float64(expanded)/float64(b.N), "expansions/op")
		}},
		{"HGED-BFS/planted-ego", func(b *testing.B) {
			g := plantedHost()
			picks := egoPicks(g, 2, 6, 10)
			x, y := g.Ego(picks[0]), g.Ego(picks[1])
			var expanded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				expanded += hged.BFS(x, y, hged.Options{}).Expanded
			}
			b.ReportMetric(float64(expanded)/float64(b.N), "expansions/op")
		}},
		// The planted ego pair has HGED 25 and lower bound 25: τ=5 is
		// rejected by the root bound before any expansion (measuring the
		// per-call setup cost HEP pays on screened σ checks), while τ=25
		// forces a full bounded search.
		{"HGED-BFS/screened", func(b *testing.B) {
			g := plantedHost()
			picks := egoPicks(g, 2, 6, 10)
			x, y := g.Ego(picks[0]), g.Ego(picks[1])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !hged.BFS(x, y, hged.Options{Threshold: 5}).Exceeded {
					b.Fatal("want exceeded")
				}
			}
		}},
		{"HGED-BFS/threshold", func(b *testing.B) {
			g := plantedHost()
			picks := egoPicks(g, 2, 6, 10)
			x, y := g.Ego(picks[0]), g.Ego(picks[1])
			var expanded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := hged.BFS(x, y, hged.Options{Threshold: 25})
				if res.Exceeded || res.Distance != 25 {
					b.Fatalf("got (%d, exceeded=%v), want (25, false)", res.Distance, res.Exceeded)
				}
				expanded += res.Expanded
			}
			b.ReportMetric(float64(expanded)/float64(b.N), "expansions/op")
		}},
		{"EDC-inaccurate", func(b *testing.B) {
			g := plantedHost()
			picks := egoPicks(g, 2, 6, 10)
			x, y := g.Ego(picks[0]), g.Ego(picks[1])
			n := x.NumNodes()
			if y.NumNodes() > n {
				n = y.NumNodes()
			}
			nodeMap := make([]int, n)
			for i := range nodeMap {
				nodeMap[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.EDCInaccurate(x, y, nodeMap)
			}
		}},
		{"Ego/repeat", func(b *testing.B) {
			g := plantedHost()
			pick := egoPicks(g, 1, 6, 10)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Ego(pick)
			}
		}},
		{"Ego/sweep", func(b *testing.B) {
			g := plantedHost()
			n := g.NumNodes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Ego(hged.NodeID(i % n))
			}
		}},
		{"Matrix/egos", func(b *testing.B) {
			g := plantedHost()
			picks := egoPicks(g, 6, 4, 9)
			var expanded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hged.NodeDistanceMatrix(g, picks, hged.Options{Threshold: 8}, 1)
			}
			_ = expanded
		}},
		{"HEP/planted", func(b *testing.B) {
			g, _, err := gen.PlantedCommunities(gen.Config{
				Nodes: 40, Edges: 80, MeanEdgeSize: 3, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			var expanded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := predict.New(g, predict.Options{Lambda: 2, Tau: 4, MaxExpansions: 5000})
				if err != nil {
					b.Fatal(err)
				}
				p.Run()
				expanded += p.Stats().Expanded
			}
			b.ReportMetric(float64(expanded)/float64(b.N), "expansions/op")
		}},
		// The CSR pair measures the frozen dense-layout hot paths directly:
		// neighbors as offset-range scans over a bitset, ego extraction as
		// the uncached neighbor-scan + induced-subgraph path (Ego itself
		// memoizes, which would measure only the cache).
		{"CSR/neighbors", func(b *testing.B) {
			g := plantedHost()
			g.Freeze()
			n := g.NumNodes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Neighbors(hged.NodeID(i % n))
			}
		}},
		{"CSR/ego-bitset", func(b *testing.B) {
			g := plantedHost()
			g.Freeze()
			pick, best := hged.NodeID(0), -1
			for v := 0; v < g.NumNodes(); v++ {
				if k := g.NumNeighbors(hged.NodeID(v)); k > best {
					pick, best = hged.NodeID(v), k
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.InducedSubgraph(g.Neighbors(pick))
			}
		}},
		// filter-batch runs a range query against a corpus large enough
		// that the batched cheap-bound pass over the SoA signature table
		// dominates; verified/op records how little verification pollutes
		// the measurement.
		{"Search/filter-batch", func(b *testing.B) {
			ix, q := filterBatchWorkload()
			var verified int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ix.Search(q, 1)
				if err != nil {
					b.Fatal(err)
				}
				verified += int64(stats.Verified)
			}
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
		}},
		{"Search/range", func(b *testing.B) {
			ix, q := searchWorkload()
			var verified int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ix.Search(q, 6)
				if err != nil {
					b.Fatal(err)
				}
				verified += int64(stats.Verified)
			}
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
		}},
		// The -par variants run the identical workload with a 4-worker
		// verification pool; the engine guarantees byte-identical output,
		// so any delta is pure scheduling cost (or, with spare cores, gain).
		{"Search/range-par", func(b *testing.B) {
			ix, q := searchWorkload()
			ix.Parallelism = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Search(q, 6); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Search/knn-seq", func(b *testing.B) {
			ix, q := searchWorkload()
			var verified int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ix.Nearest(q, 4)
				if err != nil {
					b.Fatal(err)
				}
				verified += int64(stats.Verified)
			}
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
		}},
		{"Search/knn-par", func(b *testing.B) {
			ix, q := searchWorkload()
			ix.Parallelism = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Nearest(q, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The -piv variants attach a 2-pivot table to the planted-ego
		// workload above (its expansion cap leaves most pivot distances
		// Unknown, so the gain is collapsed-interval admission on the
		// known rows): byte-identical matches, fewer exact verifications.
		{"Search/range-piv", func(b *testing.B) {
			ix, q := searchWorkload()
			if _, err := ix.BuildPivots(context.Background(), 2); err != nil {
				b.Fatal(err)
			}
			var verified int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ix.Search(q, 6)
				if err != nil {
					b.Fatal(err)
				}
				verified += int64(stats.Verified)
			}
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
		}},
		{"Search/knn-piv", func(b *testing.B) {
			ix, q := searchWorkload()
			if _, err := ix.BuildPivots(context.Background(), 2); err != nil {
				b.Fatal(err)
			}
			var verified int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ix.Nearest(q, 4)
				if err != nil {
					b.Fatal(err)
				}
				verified += int64(stats.Verified)
			}
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
		}},
		// The uni-* quartet measures the pivot metric index on a corpus
		// where exact pivot distances are fully known: -piv runs the same
		// query through an 8-pivot table, so the verified/op delta against
		// the linear baseline is the triangle inequality's work.
		{"Search/uni-range", func(b *testing.B) {
			benchPivotRange(b, 0)
		}},
		{"Search/uni-range-piv", func(b *testing.B) {
			benchPivotRange(b, 8)
		}},
		{"Search/uni-knn", func(b *testing.B) {
			benchPivotKNN(b, 0)
		}},
		{"Search/uni-knn-piv", func(b *testing.B) {
			benchPivotKNN(b, 8)
		}},
		// The Snapshot group measures corpus cold start: loading the
		// 256-graph filter-batch corpus from a combined .hgx snapshot
		// (graphs land directly in their frozen CSR form, the signature
		// table is restored column-for-column) versus parsing the same
		// corpus from .hg text files and rebuilding the index.
		// freezeBuilds/op counts CSR constructions during the timed loop —
		// the .hgx paths must report 0.0, including through the first
		// query (the zero-rebuild cold-start property).
		{"Snapshot/load-hgx", func(b *testing.B) {
			_, hgx := snapshotBenchEnv(b)
			before := hypergraph.FreezeBuilds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := hgio.ReadCorpusSnapshotFile(hgx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(hypergraph.FreezeBuilds()-before)/float64(b.N), "freezeBuilds/op")
		}},
		// The -windowed variant reads the same file section by section
		// through io.ReaderAt — the access pattern an mmap-backed loader
		// would have. Comparing it against load-hgx is the measured answer
		// to the "should snapshots be mmap-able?" question (DESIGN.md).
		{"Snapshot/load-hgx-windowed", func(b *testing.B) {
			_, hgx := snapshotBenchEnv(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := hgio.ReadCorpusSnapshotFileWindowed(hgx); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Snapshot/load-text", func(b *testing.B) {
			files, _ := snapshotBenchEnv(b)
			before := hypergraph.FreezeBuilds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loadTextCorpus(b, files)
			}
			b.StopTimer()
			b.ReportMetric(float64(hypergraph.FreezeBuilds()-before)/float64(b.N), "freezeBuilds/op")
		}},
		{"Snapshot/first-query-cold", func(b *testing.B) {
			_, hgx := snapshotBenchEnv(b)
			before := hypergraph.FreezeBuilds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ix, _, err := hgio.ReadCorpusSnapshotFile(hgx)
				if err != nil {
					b.Fatal(err)
				}
				ix.MaxExpansions = 50_000
				if _, _, err := ix.Search(ix.Graph(17), 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			builds := hypergraph.FreezeBuilds() - before
			b.ReportMetric(float64(builds)/float64(b.N), "freezeBuilds/op")
			if builds != 0 {
				b.Fatalf("cold start from .hgx performed %d freeze rebuilds over %d ops, want 0", builds, b.N)
			}
		}},
		// The Stream group measures the MVCC streaming-update path on the
		// hyperedge-copying growth workload: publishing generations through
		// copy-on-write batches, and keeping the search index fresh
		// incrementally (one signature row recomputed, the rest copied)
		// versus the stop-the-world from-scratch rebuild it replaces.
		{"Stream/mvcc-commit", func(b *testing.B) {
			seed, steps := growthWorkload()
			var published int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v := hypergraph.NewVersioned(seed.Clone()) // O(1): seed is frozen
				b.StartTimer()
				published += applyGrowthMVCC(v, steps, 4)
			}
			b.ReportMetric(float64(published)/float64(b.N), "generations/op")
		}},
		{"Stream/index-incremental", func(b *testing.B) {
			corpus, prev, reuse := streamIndexWorkload()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				search.BuildReusing(corpus, prev, reuse)
			}
		}},
		{"Stream/index-full", func(b *testing.B) {
			corpus, _, _ := streamIndexWorkload()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				search.Build(corpus)
			}
		}},
		{"Stream/sigma-rebase", func(b *testing.B) {
			gen2, delta, p := sigmaRebaseWorkload(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Rebase(gen2.Graph(), delta.Invalidates)
			}
		}},
		{"Snapshot/first-query-text", func(b *testing.B) {
			files, _ := snapshotBenchEnv(b)
			before := hypergraph.FreezeBuilds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix := loadTextCorpus(b, files)
				ix.MaxExpansions = 50_000
				if _, _, err := ix.Search(ix.Graph(17), 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(hypergraph.FreezeBuilds()-before)/float64(b.N), "freezeBuilds/op")
		}},
		// The Lint pair tracks the hgedvet gate's analysis cost over the
		// whole module (load/type-check time excluded — it is the go
		// command's, not ours): summaries is the interprocedural
		// call-graph + fact-propagation layer alone, check the full
		// ten-analyzer pass on top of it. Keeping both fast is what makes
		// the gate usable pre-commit.
		{"Lint/summaries", func(b *testing.B) {
			pkgs := lintBenchPkgs(b)
			var funcs int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				funcs = lint.BuildProgram(pkgs).FuncCount()
			}
			b.StopTimer()
			if funcs == 0 {
				b.Fatal("empty call graph")
			}
			b.ReportMetric(float64(funcs), "funcs")
		}},
		{"Lint/check", func(b *testing.B) {
			pkgs := lintBenchPkgs(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if diags := lint.Check(pkgs, lint.DefaultAnalyzers()); len(diags) != 0 {
					b.Fatalf("tree not clean: %d findings", len(diags))
				}
			}
		}},
	}
}

// lintPkgs caches the type-checked module for the Lint benchmarks: loading
// invokes the go command and is not what the gate's hot path measures.
var lintPkgs struct {
	once sync.Once
	pkgs []*lint.Package
	err  error
}

func lintBenchPkgs(b *testing.B) []*lint.Package {
	b.Helper()
	lintPkgs.once.Do(func() {
		lintPkgs.pkgs, lintPkgs.err = lint.Load([]string{"hged/..."})
	})
	if lintPkgs.err != nil {
		b.Fatal(lintPkgs.err)
	}
	return lintPkgs.pkgs
}

// snapshotBenchEnv writes the filter-batch corpus (256 small uniform
// hypergraphs, same seed as filterBatchWorkload) to a temp dir twice over:
// as individual .hg text files and as one combined .hgx corpus snapshot.
// Setup runs outside the timed region.
func snapshotBenchEnv(b *testing.B) (files []string, hgx string) {
	b.Helper()
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(23))
	corpus := make([]*hged.Hypergraph, 256)
	files = make([]string, len(corpus))
	for i := range corpus {
		corpus[i] = gen.Uniform(3+rng.Intn(5), 1+rng.Intn(4), 3, 4, 3, rng.Int63()+1)
		files[i] = filepath.Join(dir, fmt.Sprintf("g%03d.hg", i))
		f, err := os.Create(files[i])
		if err != nil {
			b.Fatal(err)
		}
		if err := hged.WriteHG(f, corpus[i]); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	ix := search.Build(corpus)
	hgx = filepath.Join(dir, "corpus.hgx")
	if err := hgio.WriteCorpusSnapshotFile(hgx, files, ix); err != nil {
		b.Fatal(err)
	}
	return files, hgx
}

// loadTextCorpus is the cold-start baseline: parse every .hg file and build
// the search index from scratch.
func loadTextCorpus(b *testing.B, files []string) *search.Index {
	b.Helper()
	corpus := make([]*hged.Hypergraph, len(files))
	for i, path := range files {
		g, err := hgio.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		corpus[i] = g
	}
	return search.Build(corpus)
}

// growthWorkload returns the frozen seed graph and deterministic growth
// stream shared by the Stream benchmarks.
func growthWorkload() (*hged.Hypergraph, []gen.GrowthStep) {
	seed, steps, err := gen.Growth(gen.GrowthConfig{
		SeedNodes: 32, SeedEdges: 48, Steps: 64, CopyProb: 0.5, ChurnProb: 0.2, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	seed.Freeze()
	return seed, steps
}

// applyGrowthMVCC replays a growth stream through copy-on-write batches of
// batchSize steps each, returning the number of generations published.
func applyGrowthMVCC(v *hypergraph.Versioned, steps []gen.GrowthStep, batchSize int) int64 {
	var published int64
	for len(steps) > 0 {
		k := batchSize
		if k > len(steps) {
			k = len(steps)
		}
		b := v.Begin()
		for _, st := range steps[:k] {
			switch st.Op {
			case gen.GrowthAddNode:
				b.AddNode(st.Label)
			case gen.GrowthAddEdge:
				b.AddEdge(st.Label, st.Nodes...)
			case gen.GrowthRemoveEdge:
				b.RemoveEdge(st.Edge)
			}
		}
		b.Commit()
		published++
		steps = steps[k:]
	}
	return published
}

// streamIndexWorkload builds a 64-graph corpus in which exactly one graph
// advanced a generation: BuildReusing recomputes its signature row and
// copies the other 63, Build recomputes all 64.
func streamIndexWorkload() ([]*hged.Hypergraph, *search.Index, []int) {
	rng := rand.New(rand.NewSource(31))
	corpus := make([]*hged.Hypergraph, 64)
	for i := range corpus {
		corpus[i] = gen.Uniform(16+rng.Intn(8), 24+rng.Intn(8), 4, 4, 3, rng.Int63()+1)
	}
	prev := search.Build(corpus)
	v := hypergraph.NewVersioned(corpus[7])
	b := v.Begin()
	b.AddEdge(5, 0, 1, 2)
	gen2, _ := b.Commit()
	next := make([]*hged.Hypergraph, len(corpus))
	reuse := make([]int, len(corpus))
	for i := range corpus {
		next[i], reuse[i] = corpus[i], i
	}
	next[7], reuse[7] = gen2.Graph(), -1
	return next, prev, reuse
}

// sigmaRebaseWorkload warms a σ predictor over the growth graph, commits one
// edge-adding batch, and hands back the new generation, its delta and the
// warm predictor — the rebase the server performs on every mutation.
func sigmaRebaseWorkload(b *testing.B) (*hypergraph.Generation, hypergraph.Delta, *predict.Predictor) {
	b.Helper()
	seed, steps := growthWorkload()
	g := seed.Clone()
	gen.ApplyGrowth(g, steps)
	g.Freeze()
	v := hypergraph.NewVersioned(g)
	p, err := predict.New(v.Current().Graph(), predict.Options{Lambda: 2, Tau: 4, MaxExpansions: 5000})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	for u := 0; u+1 < n && u < 40; u += 2 {
		p.Sigma(hged.NodeID(u), hged.NodeID(u+1), 8)
	}
	bt := v.Begin()
	bt.AddEdge(7, 0, 1, 2)
	gen2, delta := bt.Commit()
	return gen2, delta, p
}

func benchPivotRange(b *testing.B, pivots int) {
	ix, q := pivotSearchWorkload(pivots)
	var verified int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := ix.Search(q, 3)
		if err != nil {
			b.Fatal(err)
		}
		verified += int64(stats.Verified)
	}
	b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
}

func benchPivotKNN(b *testing.B, pivots int) {
	ix, q := pivotSearchWorkload(pivots)
	var verified int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := ix.Nearest(q, 8)
		if err != nil {
			b.Fatal(err)
		}
		verified += int64(stats.Verified)
	}
	b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
}

// filterBatchWorkload builds the filter-stage corpus: 256 small uniform
// hypergraphs and a τ=1 query drawn from the corpus, so nearly every
// candidate is eliminated inside the signature filters and the benchmark
// times the batched cheap-bound pass itself.
func filterBatchWorkload() (*search.Index, *hged.Hypergraph) {
	rng := rand.New(rand.NewSource(23))
	corpus := make([]*hged.Hypergraph, 256)
	for i := range corpus {
		corpus[i] = gen.Uniform(3+rng.Intn(5), 1+rng.Intn(4), 3, 4, 3, rng.Int63()+1)
	}
	ix := search.Build(corpus)
	ix.MaxExpansions = 50_000
	return ix, corpus[17]
}

// searchWorkload builds the shared similarity-search corpus: 12 ego
// networks of the planted host, queried with the first of them.
func searchWorkload() (*search.Index, *hged.Hypergraph) {
	g := plantedHost()
	picks := egoPicks(g, 12, 4, 12)
	corpus := make([]*hged.Hypergraph, len(picks))
	for i, v := range picks {
		corpus[i] = g.Ego(v)
	}
	ix := search.Build(corpus)
	ix.MaxExpansions = 50_000
	return ix, corpus[0]
}

// pivotSearchWorkload builds the pivot-regime corpus: 40 small uniform
// hypergraphs whose exact pairwise HGEDs are cheap to solve, so every entry
// of the pivot distance table is known and the triangle bounds actually
// prune. pivots == 0 is the linear baseline over the identical corpus and
// query; the engines are byte-identical, so the -piv variants differ only
// in how many candidates reach exact verification (verified/op).
func pivotSearchWorkload(pivots int) (*search.Index, *hged.Hypergraph) {
	rng := rand.New(rand.NewSource(11))
	corpus := make([]*hged.Hypergraph, 40)
	for i := range corpus {
		corpus[i] = gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
	}
	ix := search.Build(corpus)
	if pivots > 0 {
		if _, err := ix.BuildPivots(context.Background(), pivots); err != nil {
			panic(fmt.Sprintf("bench: pivot build: %v", err))
		}
	}
	return ix, corpus[5]
}
