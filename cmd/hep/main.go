// Command hep predicts hyperedges: it mines all (λ,τ)-hyperedges of a
// hypergraph in the .hg text format (Algorithm 4 of the paper) and prints
// them, optionally with pairwise edit-path explanations.
//
// Usage:
//
//	hep [-lambda 3] [-tau 5] [-solver bfs|dfs|heu] [-explain] [-js] G.hg
package main

import (
	"flag"
	"fmt"
	"os"

	"hged/internal/baseline"
	"hged/internal/hgio"
	"hged/internal/predict"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hep:", err)
		os.Exit(1)
	}
}

func run() error {
	lambda := flag.Int("lambda", 3, "λ: hop budget and pairwise relaxation factor")
	tau := flag.Int("tau", 5, "τ: node-similar distance budget")
	solver := flag.String("solver", "bfs", "HGED solver inside HEP: bfs, dfs, or heu")
	explain := flag.Bool("explain", false, "print one pairwise edit-path explanation per prediction")
	js := flag.Bool("js", false, "use the Jaccard-similarity baseline instead of HGED")
	minSim := flag.Float64("min-sim", 0.8, "JS baseline: minimum Jaccard similarity")
	maxSize := flag.Int("max-size", 8, "maximum predicted hyperedge cardinality")
	maxExp := flag.Int64("max-expansions", 50_000, "per-pair search expansion budget")
	ranked := flag.Bool("ranked", false, "rank predictions by internal cohesion (tightest first)")
	workers := flag.Int("workers", 1, "parallel seed workers (identical output)")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("need one graph file")
	}
	g, err := hgio.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	var p *predict.Predictor
	if *js {
		p, err = baseline.NewJS(g, baseline.JSOptions{Lambda: *lambda, MinSim: *minSim, MaxSize: *maxSize})
	} else {
		alg := predict.AlgBFS
		switch *solver {
		case "bfs":
		case "dfs":
			alg = predict.AlgDFS
		case "heu":
			alg = predict.AlgHEU
		default:
			return fmt.Errorf("unknown solver %q", *solver)
		}
		p, err = predict.New(g, predict.Options{
			Lambda: *lambda, Tau: *tau, Algorithm: alg,
			MaxSize: *maxSize, MaxExpansions: *maxExp, Parallelism: *workers,
		})
	}
	if err != nil {
		return err
	}

	var preds []predict.Prediction
	var scores []int
	if *ranked {
		for _, r := range p.RunRanked() {
			preds = append(preds, r.Prediction)
			scores = append(scores, r.Score)
		}
	} else {
		preds = p.Run()
	}
	fmt.Printf("predicted %d (λ=%d, τ=%d)-hyperedges on %d nodes / %d hyperedges\n",
		len(preds), *lambda, *tau, g.NumNodes(), g.NumEdges())
	for i, pr := range preds {
		if *ranked {
			fmt.Printf("%4d: %v (seed %d, cohesion %d)\n", i+1, pr.Nodes, pr.Seed, scores[i])
		} else {
			fmt.Printf("%4d: %v (seed %d)\n", i+1, pr.Nodes, pr.Seed)
		}
		if *explain && !*js && len(pr.Nodes) >= 2 {
			if ex, err := p.Explain(pr.Nodes[0], pr.Nodes[1]); err == nil {
				fmt.Print(indent(ex.String()))
			}
		}
	}
	st := p.Stats()
	fmt.Printf("σ computations: %d (cache hits %d), components: %d, search states: %d\n",
		st.PairsComputed, st.PairsCached, st.Components, st.Expanded)
	return nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "      " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "      " + s[start:] + "\n"
	}
	return out
}
