// Command hgedd is the HGED/HEP query daemon: it loads named hypergraphs
// once at startup and serves distance, σ, similarity-search and
// asynchronous HEP prediction queries over a JSON HTTP API.
//
// Usage:
//
//	hgedd [-addr :8080] [-load name=path.hg]... [-benson name=nverts,simplices[,labels]]...
//	      [-sync-limit N] [-workers N] [-queue N] [-request-timeout 30s] [-drain 30s]
//	      [-job-retention N] [-pivots N] [-index-snapshot path]
//	      [-corpus-snapshot path.hgx] [-pprof addr]
//
// -pivots builds a pivot-based metric index over the loaded graphs before
// serving: similarity searches prune candidates by the triangle inequality
// (see GET /metrics, "pivot" section). -index-snapshot persists that index
// to a file — when the file already matches the loaded corpus the build is
// skipped and the table loaded instead.
//
// -corpus-snapshot goes further: it persists the whole corpus and search
// index (pivot table included) as one .hgx file. When the file matches the
// requested corpus the daemon cold-starts from it directly — graphs load
// straight into their frozen CSR form, nothing is parsed or rebuilt — and
// otherwise the graph files are loaded, the index built, and the snapshot
// rewritten for the next start (see GET /metrics, "snapshot" section).
//
// -job-retention caps how many finished (done/failed/cancelled) HEP jobs
// stay inspectable via GET /v1/jobs; the oldest terminal jobs are evicted
// first. Queued and running jobs are never evicted.
//
// -pprof starts a second HTTP listener serving net/http/pprof under
// /debug/pprof/ (empty = disabled). It is a separate listener so profiling
// endpoints are never exposed on the public API address.
//
// Graph files are selected by extension (.hg text, .json JSON); the Benson
// simplex format takes its two or three files comma-separated. On SIGINT
// or SIGTERM the daemon stops accepting requests, drains in-flight HEP
// jobs until the drain deadline, cancels the stragglers, and exits.
//
// See the README section "Running the server" for the endpoint reference
// with curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hged"
	"hged/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgedd:", err)
		os.Exit(1)
	}
}

type loadSpec struct{ name, path string }

type bensonSpec struct {
	name  string
	files []string
}

func run() error {
	var (
		loads   []loadSpec
		bensons []bensonSpec
	)
	addr := flag.String("addr", ":8080", "listen address")
	syncLimit := flag.Int("sync-limit", 0, "max concurrent synchronous queries (0 = 2×GOMAXPROCS)")
	workers := flag.Int("workers", 2, "HEP job worker pool size")
	queue := flag.Int("queue", 16, "HEP job queue depth")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "synchronous request deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight jobs")
	maxUpload := flag.Int64("max-upload", 32<<20, "max graph upload body bytes")
	jobRetention := flag.Int("job-retention", 256, "finished HEP jobs kept for inspection (oldest evicted first)")
	pivots := flag.Int("pivots", 0, "pivot count for the similarity-search metric index (0 = linear scan)")
	indexSnapshot := flag.String("index-snapshot", "", "pivot-index snapshot path: loaded when it matches the corpus, written after a build")
	corpusSnapshot := flag.String("corpus-snapshot", "", "combined corpus+index snapshot path (.hgx): cold-start from it when it matches the requested corpus, rebuild from the graph files and write it otherwise")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
	flag.Func("load", "name=path: load a .hg or .json graph at startup (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, loadSpec{name, path})
		return nil
	})
	flag.Func("benson", "name=nverts,simplices[,labels]: load a Benson-format graph (repeatable)", func(v string) error {
		name, rest, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=nverts,simplices[,labels], got %q", v)
		}
		files := strings.Split(rest, ",")
		if len(files) != 2 && len(files) != 3 {
			return fmt.Errorf("want two or three comma-separated files, got %q", rest)
		}
		bensons = append(bensons, bensonSpec{name, files})
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "hgedd ", log.LstdFlags|log.Lmsgprefix)
	srv := server.New(server.Config{
		SyncLimit:      *syncLimit,
		RequestTimeout: *reqTimeout,
		Workers:        *workers,
		QueueDepth:     *queue,
		JobRetention:   *jobRetention,
		MaxUploadBytes: *maxUpload,
		Pivots:         *pivots,
		IndexSnapshot:  *indexSnapshot,
		CorpusSnapshot: *corpusSnapshot,
		Logger:         logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cold-start from the combined corpus+index snapshot when it matches
	// the requested corpus: the graphs land directly in their frozen CSR
	// form and the search index (pivot table included) is adopted as-is,
	// so no file is parsed and nothing is rebuilt.
	restored := false
	if *corpusSnapshot != "" {
		want := make([]string, 0, len(loads)+len(bensons))
		for _, l := range loads {
			want = append(want, l.name)
		}
		for _, b := range bensons {
			want = append(want, b.name)
		}
		if err := srv.LoadCorpusSnapshot(ctx, *corpusSnapshot, want); err != nil {
			logger.Printf("corpus snapshot %s unusable, loading graph files: %v", *corpusSnapshot, err)
		} else {
			restored = true
		}
	}
	if !restored {
		for _, l := range loads {
			e, err := srv.Registry().LoadFile(l.name, l.path)
			if err != nil {
				return err
			}
			logger.Printf("loaded graph %q from %s: %d nodes, %d hyperedges",
				e.Name, l.path, e.Stats().Nodes, e.Stats().Edges)
		}
		for _, b := range bensons {
			g, err := readBenson(b.files)
			if err != nil {
				return fmt.Errorf("graph %q: %w", b.name, err)
			}
			e, err := srv.Registry().Add(b.name, g, strings.Join(b.files, ","))
			if err != nil {
				return err
			}
			logger.Printf("loaded graph %q (benson): %d nodes, %d hyperedges",
				e.Name, e.Stats().Nodes, e.Stats().Edges)
		}

		// Build (or load) the similarity-search index before accepting
		// traffic; a SIGINT during a long pivot precompute aborts cleanly.
		if err := srv.InitSearchIndex(ctx); err != nil {
			return fmt.Errorf("search index: %w", err)
		}
		if *corpusSnapshot != "" {
			if err := srv.SaveCorpusSnapshot(ctx, *corpusSnapshot); err != nil {
				logger.Printf("persisting corpus snapshot %s failed: %v", *corpusSnapshot, err)
			}
		}
	}

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof listener: %v", err)
			}
		}()
		logger.Printf("pprof on %s/debug/pprof/", *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s with %d graphs", *addr, srv.Registry().Len())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down: draining for up to %s", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		logger.Printf("cancelled in-flight jobs past the drain deadline: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("bye")
	return nil
}

func readBenson(files []string) (*hged.Hypergraph, error) {
	nv, err := os.Open(files[0])
	if err != nil {
		return nil, err
	}
	defer nv.Close()
	sx, err := os.Open(files[1])
	if err != nil {
		return nil, err
	}
	defer sx.Close()
	if len(files) == 3 {
		lb, err := os.Open(files[2])
		if err != nil {
			return nil, err
		}
		defer lb.Close()
		return hged.ReadBenson(nv, sx, lb)
	}
	return hged.ReadBenson(nv, sx, nil)
}
