// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset replicas.
//
// Usage:
//
//	experiments -exp table1|fig8|fig9|fig10|table2|table3|fig11|fig12|ablation|edc|all
//	            [-scale 1.0] [-datasets PS,HS] [-pairs 200] [-seed 1]
//
// Absolute numbers differ from the paper's (different hardware, language
// and dataset replicas); the shapes — who wins, by what rough factor —
// are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hged/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var lambdaSweep = []int{2, 3, 4, 5, 6, 7, 8, 9}
var tauSweep = []int{3, 4, 5, 6, 7, 8, 9, 10}

func run() error {
	exp := flag.String("exp", "all", "experiment: table1, fig8, fig9, fig10, table2, table3, fig11, fig12, ablation, edc, pk, or all")
	scale := flag.Float64("scale", 1, "replica scale multiplier (1 = registry defaults)")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
	pairs := flag.Int("pairs", 200, "node pairs for Table II and the strategy ablation")
	seed := flag.Int64("seed", 1, "random seed")
	maxExp := flag.Int64("max-expansions", 10_000, "per-search expansion budget")
	verbose := flag.Bool("v", false, "print progress to stderr")
	flag.Parse()

	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Pairs: *pairs, MaxExpansions: *maxExp,
	}
	if *verbose {
		cfg.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "· "+format+"\n", args...)
		}
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	runners := map[string]func(experiments.Config) error{
		"table1":   runTable1,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"table2":   runTable2,
		"table3":   runTable3,
		"fig11":    runFig11,
		"fig12":    runFig12,
		"ablation": runAblation,
		"edc":      runEDC,
		"pk":       runPrecisionAtK,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig8", "fig9", "fig10", "table2", "table3", "fig11", "fig12", "ablation", "edc", "pk"} {
			if err := runners[name](cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return r(cfg)
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

func runTable1(cfg experiments.Config) error {
	header("Table I — dataset statistics (paper vs replica)")
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(rows))
	return nil
}

func runFig8(cfg experiments.Config) error {
	header("Fig. 8 — effectiveness of HEP vs JS vs LGR (λ=3, τ=5)")
	rows, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig8(rows))
	return nil
}

func runFig9(cfg experiments.Config) error {
	header("Fig. 9 — HEP effectiveness with varying λ and τ")
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = []string{"PS", "HS"} // full six-way sweep is hours-long; see -datasets
		fmt.Println("(defaulting to -datasets PS,HS for the sweep)")
	}
	lams, taus, err := experiments.Fig9(cfg, lambdaSweep, tauSweep)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig9(lams, taus))
	return nil
}

func runFig10(cfg experiments.Config) error {
	header("Fig. 10 — case study: predicting a future co-authorship")
	res, err := experiments.CaseStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCaseStudy(res))
	return nil
}

func runTable2(cfg experiments.Config) error {
	header("Table II — avg per-pair HGED runtime (τ=10)")
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable2(rows))
	return nil
}

func runTable3(cfg experiments.Config) error {
	header("Table III — full prediction runtime: HEP-DFS vs HEP-BFS vs LGR")
	rows, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable3(rows))
	return nil
}

func runFig11(cfg experiments.Config) error {
	header("Fig. 11 — HEP runtime with varying λ and τ")
	lams, taus, err := experiments.Fig11(cfg, lambdaSweep, tauSweep)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig11(lams, taus))
	return nil
}

func runFig12(cfg experiments.Config) error {
	header("Fig. 12 — scalability on TVG sub-samples")
	fracs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	points, err := experiments.Fig12(cfg, fracs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig12(points))
	return nil
}

func runAblation(cfg experiments.Config) error {
	header("Ablation E9 — HGED-BFS pruning strategies")
	rows, err := experiments.AblationStrategies(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderAblation(rows))
	return nil
}

func runEDC(cfg experiments.Config) error {
	header("Ablation E10 — EDC: permutation enumeration vs Hungarian")
	rows, err := experiments.AblationEDC(cfg, []int{2, 3, 4, 5, 6, 7})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderEDC(rows))
	return nil
}

func runPrecisionAtK(cfg experiments.Config) error {
	header("Extension E11 — precision@k of cohesion-ranked HEP predictions")
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = []string{"PS", "HS"}
		fmt.Println("(defaulting to -datasets PS,HS)")
	}
	rows, err := experiments.ExtensionPrecisionAtK(cfg, []int{5, 10, 25, 50, 100})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderPrecisionAtK(rows))
	return nil
}
