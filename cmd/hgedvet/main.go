// Command hgedvet runs the project's static-analysis pass: ten analyzers
// over an interprocedural call-graph/fact-summary layer that make the
// determinism, pool-hygiene, cancellation, and MVCC concurrency contracts
// of the HGED service compile-time-checkable (see internal/lint and the
// "Static analysis" section of DESIGN.md).
//
// Usage:
//
//	hgedvet [-json] [-rules a,b,c] [packages]
//
// Packages default to ./... and accept the go command's pattern syntax.
// -rules runs a named subset of the analyzers (unknown names are an
// error), so CI can stage new rules and fixture self-checks can target
// one rule; suppressions of skipped rules are not judged stale in a
// subset run.
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 when packages fail to load or type-check.
//
// Findings are suppressed per site with a justified comment:
//
//	//hgedvet:ignore <rule> <why the contract holds here>
//
// on the flagged line or the line above it. Suppressions that are
// malformed, name an unknown rule, or no longer suppress anything are
// themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hged/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hgedvet [-json] [-rules a,b,c] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *rules != "" {
		var names []string
		for _, name := range strings.Split(*rules, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		var err error
		analyzers, err = lint.Select(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgedvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgedvet:", err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, analyzers)

	// Report paths relative to the working directory, like go vet.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].Path); err == nil {
				diags[i].Path = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "hgedvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
