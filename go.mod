module hged

go 1.22
