package hged

import (
	"io"

	"hged/internal/core"
	"hged/internal/dataset"
	"hged/internal/eval"
	"hged/internal/gen"
	"hged/internal/hgio"
	"hged/internal/hypergraph"
	"hged/internal/names"
	"hged/internal/pivot"
	"hged/internal/predict"
	"hged/internal/search"
	"hged/internal/viz"
)

// Hypergraph I/O (internal/hgio).

// WriteHG writes g in the .hg text format.
func WriteHG(w io.Writer, g *Hypergraph) error { return hgio.WriteText(w, g) }

// ReadHG parses the .hg text format.
func ReadHG(r io.Reader) (*Hypergraph, error) { return hgio.ReadText(r) }

// WriteJSON writes g as JSON.
func WriteJSON(w io.Writer, g *Hypergraph) error { return hgio.WriteJSON(w, g) }

// ReadJSON parses the JSON produced by WriteJSON.
func ReadJSON(r io.Reader) (*Hypergraph, error) { return hgio.ReadJSON(r) }

// ReadBenson parses the Cornell simplex dataset format (nverts, simplices,
// optional node labels).
func ReadBenson(nverts, simplices, labels io.Reader) (*Hypergraph, error) {
	return hgio.ReadBenson(nverts, simplices, labels)
}

// ReadGraphFile reads a hypergraph from a file, selecting the codec by
// extension: ".hg" text or ".json" JSON.
func ReadGraphFile(path string) (*Hypergraph, error) { return hgio.ReadFile(path) }

// Generators (internal/gen).
type (
	// GenConfig drives the planted-community hypergraph generator.
	GenConfig = gen.Config
	// Community records each generated node's planted community.
	Community = gen.Community
	// GrowthConfig drives the hyperedge-copying growth generator — the
	// streaming-update workload (Edge Correlations and Link Prediction in
	// Growing Hypergraphs).
	GrowthConfig = gen.GrowthConfig
	// GrowthStep is one operation of a growth stream.
	GrowthStep = gen.GrowthStep
)

// Growth stream operations.
const (
	GrowthAddNode    = gen.GrowthAddNode
	GrowthAddEdge    = gen.GrowthAddEdge
	GrowthRemoveEdge = gen.GrowthRemoveEdge
)

// GenerateGrowth returns a seed hypergraph and a deterministic
// hyperedge-copying growth stream to apply on top of it.
func GenerateGrowth(cfg GrowthConfig) (*Hypergraph, []GrowthStep, error) {
	return gen.Growth(cfg)
}

// ApplyGrowth replays a growth stream onto g in order.
func ApplyGrowth(g *Hypergraph, steps []GrowthStep) { gen.ApplyGrowth(g, steps) }

// GeneratePlanted synthesizes a hypergraph with planted communities.
func GeneratePlanted(cfg GenConfig) (*Hypergraph, Community, error) {
	return gen.PlantedCommunities(cfg)
}

// GenerateUniform synthesizes a uniform random hypergraph.
func GenerateUniform(n, m, maxSize, nodeLabels, edgeLabels int, seed int64) *Hypergraph {
	return gen.Uniform(n, m, maxSize, nodeLabels, edgeLabels, seed)
}

// Subsample keeps a random fraction of nodes and hyperedges (Fig. 12's
// scalability workload).
func Subsample(g *Hypergraph, nodeFrac, edgeFrac float64, seed int64) *Hypergraph {
	return gen.Subsample(g, nodeFrac, edgeFrac, seed)
}

// Datasets (internal/dataset).
type (
	// DatasetSpec describes one of the paper's evaluation datasets.
	DatasetSpec = dataset.Spec
)

// Datasets returns the registry of the paper's six datasets (Table I).
func Datasets() []DatasetSpec { return dataset.Registry }

// LookupDataset finds a dataset spec by name (PS, HS, MO, WM, TVG, AMZ).
func LookupDataset(name string) (DatasetSpec, error) { return dataset.Lookup(name) }

// SplitEdges divides a hypergraph's hyperedges into a training graph and a
// held-out validation set (the paper's 3:1 protocol uses trainFrac 0.75).
func SplitEdges(g *Hypergraph, trainFrac float64, seed int64) (*Hypergraph, []Hyperedge, error) {
	return dataset.Split(g, trainFrac, seed)
}

// Evaluation (internal/eval).
type (
	// PRF bundles Precision, Recall and F1.
	PRF = eval.PRF
	// MatchOptions controls the true-positive criterion.
	MatchOptions = eval.MatchOptions
	// MatchStats details a matching.
	MatchStats = eval.MatchStats
	// MatchMode selects overlap or containment matching.
	MatchMode = eval.MatchMode
	// ScoredPrediction is a prediction with a cohesion score.
	ScoredPrediction = predict.ScoredPrediction
)

// Match modes.
const (
	MatchOverlap     = eval.MatchOverlap
	MatchContainment = eval.MatchContainment
)

// EvaluatePredictions scores predictions against held-out hyperedges.
func EvaluatePredictions(preds [][]NodeID, held []Hyperedge, opts MatchOptions) (PRF, MatchStats) {
	return eval.Evaluate(preds, held, opts)
}

// PrecisionAtK evaluates a ranked prediction list at the given cutoffs.
func PrecisionAtK(ranked [][]NodeID, held []Hyperedge, opts MatchOptions, ks []int) []float64 {
	return eval.PrecisionAtK(ranked, held, opts, ks)
}

// Similarity search (internal/search).
type (
	// SearchIndex is a filter-and-verify HGED similarity-search index. Set
	// its Parallelism field to fan verification over a worker pool; results
	// and stats are byte-identical to the sequential scan at any setting.
	// SearchContext/NearestContext accept a context for cancellation.
	// BuildPivots/AttachPivots add a pivot-based metric accelerator in
	// front of the signature filters.
	SearchIndex = search.Index
	// SearchMatch is one search result.
	SearchMatch = search.Match
	// FilterStats reports how candidates were eliminated: the prune and
	// admission counters plus Verified always partition Candidates.
	FilterStats = search.FilterStats
	// PivotIndex is a pivot table for triangle-inequality search pruning:
	// farthest-first pivots plus a corpus×pivot exact-distance matrix.
	PivotIndex = pivot.Index
)

// BuildSearchIndex indexes a corpus of hypergraphs for range and kNN search.
func BuildSearchIndex(corpus []*Hypergraph) *SearchIndex { return search.Build(corpus) }

// BuildSearchIndexReusing indexes a corpus, copying the signature row for
// every graph whose reuse entry names its row in prev (-1 recomputes) —
// the incremental refresh path for versioned corpora. Results are
// byte-identical to BuildSearchIndex.
func BuildSearchIndexReusing(corpus []*Hypergraph, prev *SearchIndex, reuse []int) *SearchIndex {
	return search.BuildReusing(corpus, prev, reuse)
}

// WritePivotSnapshot serializes a pivot table and the signature digests of
// the corpus it was built over (SearchIndex.SignatureDigests) in the
// versioned, checksummed binary snapshot format.
func WritePivotSnapshot(w io.Writer, pv *PivotIndex, digests []uint64) error {
	return hgio.WritePivotSnapshot(w, pv, digests)
}

// ReadPivotSnapshot parses a snapshot written by WritePivotSnapshot. The
// returned digests must be passed to SearchIndex.AttachPivots, which
// verifies them against the live corpus.
func ReadPivotSnapshot(r io.Reader) (*PivotIndex, []uint64, error) {
	return hgio.ReadPivotSnapshot(r)
}

// WritePivotSnapshotFile atomically writes a pivot snapshot to path.
func WritePivotSnapshotFile(path string, pv *PivotIndex, digests []uint64) error {
	return hgio.WritePivotSnapshotFile(path, pv, digests)
}

// ReadPivotSnapshotFile reads a pivot snapshot from path.
func ReadPivotSnapshotFile(path string) (*PivotIndex, []uint64, error) {
	return hgio.ReadPivotSnapshotFile(path)
}

// WriteCorpusSnapshot serializes a whole search corpus — the graphs (as
// nested binary records), the index's signature table and digests, and any
// attached pivot table — as one checksummed .hgx snapshot. names[i] labels
// graph i (registry names or source file paths).
func WriteCorpusSnapshot(w io.Writer, names []string, ix *SearchIndex) error {
	return hgio.WriteCorpusSnapshot(w, names, ix)
}

// ReadCorpusSnapshot restores a corpus snapshot: the graphs come back
// frozen-first (CSR views built straight from the decoded arrays, no map
// round-trip) and the index is revalidated against them, so a load either
// yields a fully consistent corpus or an error.
func ReadCorpusSnapshot(r io.Reader) ([]string, *SearchIndex, error) {
	return hgio.ReadCorpusSnapshot(r)
}

// WriteCorpusSnapshotFile atomically writes a corpus snapshot to path.
func WriteCorpusSnapshotFile(path string, names []string, ix *SearchIndex) error {
	return hgio.WriteCorpusSnapshotFile(path, names, ix)
}

// ReadCorpusSnapshotFile reads a corpus snapshot from path with one
// contiguous read, also returning the on-disk byte count.
func ReadCorpusSnapshotFile(path string) ([]string, *SearchIndex, int64, error) {
	return hgio.ReadCorpusSnapshotFile(path)
}

// ReadCorpusSnapshotFileWindowed reads a corpus snapshot section by section
// through io.ReaderAt instead of one contiguous read — the access pattern an
// mmap-backed loader would have (cmd/bench races the two; see DESIGN.md).
func ReadCorpusSnapshotFileWindowed(path string) ([]string, *SearchIndex, int64, error) {
	return hgio.ReadCorpusSnapshotFileWindowed(path)
}

// Named graphs (internal/names).
type (
	// NamedBuilder builds hypergraphs addressed by string names.
	NamedBuilder = names.Builder
)

// NewNamedBuilder returns an empty named-hypergraph builder.
func NewNamedBuilder() *NamedBuilder { return names.NewBuilder() }

// Visualization (internal/viz).
type (
	// VizOptions controls DOT rendering.
	VizOptions = viz.Options
)

// WriteDOT renders g as Graphviz DOT in the bipartite style of Fig. 1(b).
func WriteDOT(w io.Writer, g *Hypergraph, opts *VizOptions) error {
	return viz.WriteDOT(w, g, opts)
}

// WriteEditPathDOT renders g with an edit path's operations annotated.
func WriteEditPathDOT(w io.Writer, g *Hypergraph, path *Path, opts *VizOptions) error {
	return viz.WriteEditPathDOT(w, g, path, opts)
}

// WritePathJSON serializes an edit path as JSON for external tools.
func WritePathJSON(w io.Writer, p *Path) error { return core.WritePathJSON(w, p) }

// ReadPathJSON parses the JSON produced by WritePathJSON.
func ReadPathJSON(r io.Reader) (*Path, error) { return core.ReadPathJSON(r) }

// Fig1 returns the paper's running example (8 nodes, 4 hyperedges).
func Fig1() *Hypergraph { return hypergraph.Fig1() }
