package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// classifyRunError decides the terminal state of a job whose RunContext
// returned an error: deadline → failed with a timeout message, explicit
// cancellation → cancelled, anything else → failed.
func TestClassifyRunError(t *testing.T) {
	if st, msg := classifyRunError(context.DeadlineExceeded, 5*time.Second); st != JobFailed || msg != "timed out after 5s" {
		t.Fatalf("deadline: got (%s, %q), want (failed, timed out after 5s)", st, msg)
	}
	wrapped := fmt.Errorf("predict: %w", context.DeadlineExceeded)
	if st, _ := classifyRunError(wrapped, time.Second); st != JobFailed {
		t.Fatalf("wrapped deadline: got %s, want failed", st)
	}
	if st, msg := classifyRunError(context.Canceled, 0); st != JobCancelled || msg != context.Canceled.Error() {
		t.Fatalf("cancel: got (%s, %q), want cancelled", st, msg)
	}
	if st, msg := classifyRunError(errors.New("boom"), 0); st != JobFailed || msg != "boom" {
		t.Fatalf("other: got (%s, %q), want (failed, boom)", st, msg)
	}
}
