package server

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"hged"
)

// LoadCorpusSnapshot cold-starts the server from a combined corpus+index
// snapshot (.hgx): every graph is installed in the registry straight from
// its frozen CSR form and the search index is adopted without recomputing a
// signature or rebuilding a pivot table. want, when non-nil, is the set of
// graph names the caller intended to load (sorted or not — it is sorted
// here); a snapshot covering a different corpus is refused so a stale file
// can never shadow the operator's -load flags. The snapshot must also agree
// with Config.Pivots (same effective pivot count), because serving with a
// different accelerator than configured would change FilterStats.
//
// The registry must be empty — this is a cold-start path, not a merge. On
// any error nothing is installed and the caller should fall back to loading
// source files and SaveCorpusSnapshot.
func (s *Server) LoadCorpusSnapshot(ctx context.Context, path string, want []string) error {
	if s.reg.Len() != 0 {
		return fmt.Errorf("corpus snapshot: registry already holds %d graphs", s.reg.Len())
	}
	start := time.Now()
	names, ix, nbytes, err := hged.ReadCorpusSnapshotFile(path)
	if err != nil {
		return err
	}
	// The registry serves the corpus sorted by name; an unsorted snapshot
	// would reorder result IDs relative to a rebuild.
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			return fmt.Errorf("corpus snapshot: names not strictly ascending at %d (%q after %q)", i, names[i], names[i-1])
		}
	}
	if want != nil {
		sorted := append([]string(nil), want...)
		sort.Strings(sorted)
		if len(sorted) != len(names) {
			return fmt.Errorf("corpus snapshot: holds %d graphs, %d requested", len(names), len(sorted))
		}
		for i, name := range sorted {
			if names[i] != name {
				return fmt.Errorf("corpus snapshot: graph %d is %q, requested corpus has %q", i, names[i], name)
			}
		}
	}
	wantPivots := s.cfg.Pivots
	if n := len(names); wantPivots > n {
		wantPivots = n
	}
	gotPivots := 0
	if pv := ix.Pivots(); pv != nil {
		gotPivots = pv.K()
	}
	if gotPivots != wantPivots {
		return fmt.Errorf("corpus snapshot: has %d pivots, config wants %d", gotPivots, wantPivots)
	}
	for _, name := range names {
		if err := validName(name); err != nil {
			return fmt.Errorf("corpus snapshot: %w", err)
		}
	}
	// All checks passed; installation cannot fail halfway (names are valid
	// and unique, graphs already validated by the snapshot reader).
	for i, name := range names {
		if _, err := s.reg.Add(name, ix.Graph(i), "snapshot:"+path); err != nil {
			return fmt.Errorf("corpus snapshot: install %q: %w", name, err)
		}
	}
	// Every restored entry starts at generation 1; record the fingerprint
	// so the first search adopts the snapshot index instead of rebuilding.
	fp, _, epochs, gens, _ := corpusState(s.reg.List())
	s.search.mu.Lock()
	s.search.ix = ix
	s.search.names = names
	s.search.epochs = epochs
	s.search.gens = gens
	s.search.fp = fp
	s.search.mu.Unlock()
	if gotPivots > 0 {
		s.metrics.pivotAttached(gotPivots, "snapshot")
	}
	s.metrics.snapshotLoaded("hgx", time.Since(start), nbytes, len(names))
	s.cfg.Logger.Printf("corpus+index restored from %s (%d graphs, %d pivots, %d bytes)",
		path, len(names), gotPivots, nbytes)
	return nil
}

// SaveCorpusSnapshot persists the current corpus and search index as a
// combined snapshot at path, building the index (and pivot table) first if
// the registry changed since the last build. It also records the corpus as
// "rebuilt" in the /metrics snapshot section — by construction it is only
// reached when LoadCorpusSnapshot did not serve the cold start.
func (s *Server) SaveCorpusSnapshot(ctx context.Context, path string) error {
	start := time.Now()
	ix, names, err := s.corpusIndex(ctx, false)
	if err != nil {
		return err
	}
	if err := hged.WriteCorpusSnapshotFile(path, names, ix); err != nil {
		return err
	}
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	s.metrics.snapshotLoaded("rebuilt", time.Since(start), size, len(names))
	s.cfg.Logger.Printf("corpus snapshot written to %s (%d graphs, %d bytes)", path, len(names), size)
	return nil
}
