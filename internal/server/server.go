// Package server implements hgedd, the long-lived HGED/HEP query service:
// a stdlib-only net/http JSON API over a registry of named, MVCC-versioned
// hypergraphs. Graphs mutate through copy-on-write batches (POST
// /v1/graphs/{name}/edges) that publish new generations atomically while
// readers keep pinned snapshots; derived state — σ predictors, memoized
// stats, the similarity-search index — is invalidated incrementally per
// generation. Synchronous queries (stats, node distance with edit path
// explanations, memoized σ, similarity search) run under a shared
// concurrency-limiting semaphore with per-request timeouts; HEP prediction
// runs are asynchronous jobs on a bounded worker pool with per-job
// cancellation and deadlines. Request counters, latency histograms, solver
// expansions, σ-cache statistics and MVCC version counters are served from
// GET /metrics.
//
// The package wraps only the public hged facade; cmd/hgedd is the daemon
// entry point.
package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"time"
)

// Config tunes the server. The zero value is completed by New.
type Config struct {
	// SyncLimit caps concurrently executing synchronous queries (distance,
	// sigma, search, uploads). 0 defaults to 2×GOMAXPROCS.
	SyncLimit int
	// RequestTimeout bounds the response latency of each synchronous
	// request; the reply is 504 when exceeded. 0 defaults to 30s.
	RequestTimeout time.Duration
	// Workers is the HEP job worker pool size. 0 defaults to 2.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs. 0
	// defaults to 16.
	QueueDepth int
	// JobRetention caps how many finished (done, failed or cancelled) jobs
	// stay inspectable via GET /v1/jobs; the oldest terminal jobs are
	// evicted as new ones are submitted. Queued and running jobs are never
	// evicted. 0 defaults to 256.
	JobRetention int
	// MaxUploadBytes bounds graph upload request bodies. 0 defaults to
	// 32 MiB.
	MaxUploadBytes int64
	// MaxSyncExpansions caps the per-request HGED expansion budget of
	// synchronous queries (requests may ask for less, never more). 0
	// defaults to 2,000,000.
	MaxSyncExpansions int64
	// Pivots is the pivot count for the similarity-search metric index:
	// when > 0 the search corpus gets a pivot table (built at
	// InitSearchIndex, rebuilt lazily when uploads change the corpus) that
	// prunes candidates by the triangle inequality before the signature
	// filters. 0 disables the accelerator (plain linear filter-and-verify).
	Pivots int
	// IndexSnapshot, when non-empty, is the path the pivot table is
	// persisted at: InitSearchIndex loads it when it matches the corpus
	// (skipping the build) and writes it after building otherwise.
	IndexSnapshot string
	// CorpusSnapshot, when non-empty, is the path of the combined
	// corpus+index snapshot (.hgx): LoadCorpusSnapshot restores the whole
	// registry and search index from it in one shot (graphs land directly
	// in their frozen CSR form — no parse, no re-freeze), and
	// SaveCorpusSnapshot persists the current corpus there so the next
	// start skips the rebuild.
	CorpusSnapshot string
	// Logger receives one structured line per request. Nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.SyncLimit <= 0 {
		c.SyncLimit = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.MaxSyncExpansions <= 0 {
		c.MaxSyncExpansions = 2_000_000
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	return c
}

// Server ties the graph registry, the job pool, the metrics and the
// synchronous-query semaphore together behind one http.Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	jobs    *JobManager
	metrics *Metrics
	sem     chan struct{}
	search  searchIndex
	handler http.Handler
}

// New builds a Server. Load graphs through Registry() before serving, or
// let clients upload them via POST /v1/graphs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.SyncLimit),
	}
	s.jobs = newJobManager(s.reg, s.metrics, cfg.Workers, cfg.QueueDepth, cfg.JobRetention)
	s.handler = s.routes()
	return s
}

// Registry exposes the graph registry (for startup loading and tests).
func (s *Server) Registry() *Registry { return s.reg }

// InitSearchIndex eagerly builds the similarity-search index — and its
// pivot table when Config.Pivots > 0, loading Config.IndexSnapshot when it
// matches the corpus and persisting a fresh build there otherwise — so the
// first /v1/search query doesn't pay for the build. Call it after startup
// loading; later uploads invalidate the index and it is rebuilt lazily
// (including pivots) on the next search. ctx bounds the pivot-distance
// precompute.
func (s *Server) InitSearchIndex(ctx context.Context) error {
	_, _, err := s.corpusIndex(ctx, false)
	return err
}

// Jobs exposes the job manager (for tests and draining).
func (s *Server) Jobs() *JobManager { return s.jobs }

// SetSearchBuildHook installs fn to run inside every search-index rebuild
// flight, after the new index is built but before it is installed — a test
// seam for exercising searches that race a rebuild. Pass nil to clear.
func (s *Server) SetSearchBuildHook(fn func()) {
	s.search.mu.Lock()
	s.search.buildHook = fn
	s.search.mu.Unlock()
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close gracefully shuts the server's job pool down: it stops accepting
// jobs, drains queued and running jobs until ctx expires, then cancels the
// stragglers. It also waits (until ctx expires) for any in-flight search
// index rebuild — those run on detached contexts so a cancelled client
// cannot waste the build, which makes this WaitGroup the only handle
// shutdown has on them. The HTTP listener itself is the caller's to shut
// down (http.Server.Shutdown), typically before calling Close.
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Close(ctx)
	flightsDone := make(chan struct{})
	go func() {
		s.search.flights.Wait()
		close(flightsDone)
	}()
	select {
	case <-flightsDone:
	case <-ctx.Done():
		if err == nil {
			err = fmt.Errorf("search index rebuild still running: %w", ctx.Err())
		}
	}
	return err
}

// routes builds the ServeMux. Go 1.22 method+wildcard patterns route; each
// route is wrapped with logging + metrics, and sync routes additionally
// acquire the semaphore and a response deadline.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	type route struct {
		pattern string
		sync    bool
		h       http.HandlerFunc
	}
	for _, rt := range []route{
		{"GET /v1/graphs", false, s.handleListGraphs},
		{"POST /v1/graphs", true, s.handleUploadGraph},
		{"DELETE /v1/graphs/{name}", false, s.handleDeleteGraph},
		{"GET /v1/graphs/{name}/stats", false, s.handleGraphStats},
		{"POST /v1/graphs/{name}/edges", true, s.handleMutateGraph},
		{"DELETE /v1/graphs/{name}/edges/{id}", true, s.handleRemoveEdge},
		{"POST /v1/graphs/{name}/distance", true, s.handleDistance},
		{"POST /v1/graphs/{name}/sigma", true, s.handleSigma},
		{"POST /v1/graphs/{name}/predict", false, s.handlePredict},
		{"POST /v1/search", true, s.handleSearch},
		{"GET /v1/jobs", false, s.handleListJobs},
		{"GET /v1/jobs/{id}", false, s.handleGetJob},
		{"DELETE /v1/jobs/{id}", false, s.handleCancelJob},
		{"GET /metrics", false, s.handleMetrics},
		{"GET /healthz", false, s.handleHealthz},
	} {
		mux.Handle(rt.pattern, s.instrument(rt.pattern, rt.sync, rt.h))
	}
	return mux
}

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with structured request logging and metrics.
// Synchronous query routes additionally pass through the shared
// concurrency semaphore and a response deadline: past the deadline the
// client gets 503 while the computation finishes in the background, its
// semaphore slot held until it does (so abandoned work never lets the
// concurrency limit be exceeded) and its cost bounded by the expansion
// caps.
func (s *Server) instrument(pattern string, syncRoute bool, h http.HandlerFunc) http.Handler {
	var inner http.Handler = h
	if syncRoute {
		inner = s.limited(inner)
		inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		inner.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		d := time.Since(start)
		s.metrics.observe(pattern, rec.status, d)
		s.cfg.Logger.Printf("method=%s path=%s status=%d duration=%s remote=%s",
			r.Method, r.URL.Path, rec.status, d.Round(time.Microsecond), r.RemoteAddr)
	})
}

// limited admits a request once a semaphore slot frees up; a request whose
// deadline expires while waiting is turned away with 503.
func (s *Server) limited(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "server saturated: %v", r.Context().Err())
		}
	})
}
