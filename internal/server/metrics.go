package server

import (
	"sync"
	"time"

	"hged"
	"hged/internal/core"
)

// latencyBounds are the histogram bucket upper bounds in milliseconds; the
// final implicit bucket is +Inf.
var latencyBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	Counts []int64 `json:"counts"` // len(latencyBounds)+1, last is +Inf
	SumMS  float64 `json:"sumMs"`
	Count  int64   `json:"count"`
}

func newHistogram() *histogram {
	return &histogram{Counts: make([]int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBounds) && ms > latencyBounds[i] {
		i++
	}
	h.Counts[i]++
	h.SumMS += ms
	h.Count++
}

// endpointMetrics aggregates one route's traffic.
type endpointMetrics struct {
	Status  map[int]int64 `json:"status"`
	Latency *histogram    `json:"latency"`
}

// Metrics collects the server's expvar-style counters: requests by
// endpoint and status, latency histograms, HGED solver expansions, σ-cache
// activity, and job lifecycle counts. All methods are safe for concurrent
// use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	expansions int64 // solver expansions from synchronous distance queries

	// job-side totals, accumulated when jobs finish
	jobsSubmitted int64
	jobsDone      int64
	jobsFailed    int64
	jobsCancelled int64
	jobComputed   int64
	jobHits       int64
	jobDeduped    int64
	jobExpanded   int64

	// search-side totals, accumulated per completed /v1/search query
	// (cancelled scans only show in the request counters)
	searchRange   int64
	searchKNN     int64
	searchFilter  hged.FilterStats
	searchLatency *histogram

	// pivot-index state and effort: the attached table's size and origin,
	// and the latency of per-query triangle-bound computations (the
	// histogram's count is the number of pivoted queries).
	pivotCount        int
	pivotSource       string
	pivotBoundLatency *histogram

	// corpus cold-start provenance: how the serving corpus came to be
	// ("hgx" restored from a snapshot, "rebuilt" built from source files,
	// "none" before either), how long that took, and the snapshot size.
	snapSource string
	snapLoadNs int64
	snapBytes  int64
	snapGraphs int

	// MVCC version-churn totals: committed mutation batches and what they
	// changed, graph deletions, and how the search index kept up —
	// incremental refreshes (with the signature rows they reused) versus
	// full rebuilds, plus searches answered from a stale index by choice.
	mutationBatches int64
	nodesAdded      int64
	nodesRemoved    int64
	edgesAdded      int64
	edgesRemoved    int64
	relabeled       int64
	fullDeltas      int64
	graphsDeleted   int64
	indexIncrements int64
	indexFullBuilds int64
	indexRowsReused int64
	staleServed     int64
}

func newMetrics() *Metrics {
	return &Metrics{
		endpoints:         make(map[string]*endpointMetrics),
		searchLatency:     newHistogram(),
		pivotSource:       "none",
		pivotBoundLatency: newHistogram(),
		snapSource:        "none",
	}
}

func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[endpoint]
	if !ok {
		em = &endpointMetrics{Status: make(map[int]int64), Latency: newHistogram()}
		m.endpoints[endpoint] = em
	}
	em.Status[status]++
	em.Latency.observe(d)
}

func (m *Metrics) addExpansions(n int64) {
	m.mu.Lock()
	m.expansions += n
	m.mu.Unlock()
}

func (m *Metrics) jobSubmitted() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
}

func (m *Metrics) jobFinished(state JobState, st hged.PredictStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case JobDone:
		m.jobsDone++
	case JobFailed:
		m.jobsFailed++
	case JobCancelled:
		m.jobsCancelled++
	}
	m.jobComputed += int64(st.PairsComputed)
	m.jobHits += int64(st.PairsCached)
	m.jobDeduped += int64(st.PairsDeduped)
	m.jobExpanded += int64(st.Expanded)
}

// searchDone accumulates one completed similarity search: its mode, filter
// statistics (per-filter prune counters) and end-to-end latency.
func (m *Metrics) searchDone(knn bool, st hged.FilterStats, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if knn {
		m.searchKNN++
	} else {
		m.searchRange++
	}
	m.searchFilter.Candidates += st.Candidates
	m.searchFilter.PrunedByCount += st.PrunedByCount
	m.searchFilter.PrunedByLabel += st.PrunedByLabel
	m.searchFilter.PrunedByCard += st.PrunedByCard
	m.searchFilter.PrunedByBound += st.PrunedByBound
	m.searchFilter.PrunedByTriangle += st.PrunedByTriangle
	m.searchFilter.AdmittedByUpperBound += st.AdmittedByUpperBound
	m.searchFilter.Verified += st.Verified
	m.searchFilter.VerifiedWithin += st.VerifiedWithin
	m.searchLatency.observe(d)
}

// pivotAttached records the pivot table now serving searches: its pivot
// count and origin ("built", "snapshot", or "none").
func (m *Metrics) pivotAttached(count int, source string) {
	m.mu.Lock()
	m.pivotCount = count
	m.pivotSource = source
	m.mu.Unlock()
}

// pivotBound records one query's triangle-bound computation latency.
func (m *Metrics) pivotBound(d time.Duration) {
	m.mu.Lock()
	m.pivotBoundLatency.observe(d)
	m.mu.Unlock()
}

// mutationDone accumulates one committed mutation batch's delta.
func (m *Metrics) mutationDone(d hged.GraphDelta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mutationBatches++
	m.nodesAdded += int64(d.NodesAdded)
	m.nodesRemoved += int64(d.NodesRemoved)
	m.edgesAdded += int64(d.EdgesAdded)
	m.edgesRemoved += int64(d.EdgesRemoved)
	m.relabeled += int64(d.Relabeled)
	if d.Full {
		m.fullDeltas++
	}
}

// graphDeleted records one registry removal.
func (m *Metrics) graphDeleted() {
	m.mu.Lock()
	m.graphsDeleted++
	m.mu.Unlock()
}

// indexRebuilt records one installed search-index build: incremental when
// it reused signature rows from the previous index, full otherwise.
func (m *Metrics) indexRebuilt(rowsReused int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rowsReused > 0 {
		m.indexIncrements++
		m.indexRowsReused += int64(rowsReused)
	} else {
		m.indexFullBuilds++
	}
}

// searchStaleServed records one search answered from the last-good index
// while a rebuild was in flight (the client opted in with allowStale).
func (m *Metrics) searchStaleServed() {
	m.mu.Lock()
	m.staleServed++
	m.mu.Unlock()
}

// snapshotLoaded records how the serving corpus was cold-started: restored
// from a .hgx snapshot ("hgx") or rebuilt from source files ("rebuilt"),
// with the time it took, the snapshot's on-disk size (0 when rebuilt
// without persisting), and the corpus size.
func (m *Metrics) snapshotLoaded(source string, d time.Duration, bytes int64, graphs int) {
	m.mu.Lock()
	m.snapSource = source
	m.snapLoadNs = d.Nanoseconds()
	m.snapBytes = bytes
	m.snapGraphs = graphs
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape served by GET /metrics.
type MetricsSnapshot struct {
	// Requests maps "METHOD /pattern" to per-status counts and latency.
	Requests map[string]*endpointMetrics `json:"requests"`
	// HGED aggregates solver effort from synchronous distance queries.
	HGED struct {
		Expansions int64 `json:"expansions"`
	} `json:"hged"`
	// SigmaCache sums the σ-cache counters of every live per-graph
	// predictor (sigma endpoint) plus all finished jobs.
	SigmaCache struct {
		Computed int64 `json:"computed"`
		Hits     int64 `json:"hits"`
		Deduped  int64 `json:"deduped"`
		Expanded int64 `json:"expanded"`
	} `json:"sigmaCache"`
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Cancelled int64 `json:"cancelled"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
	} `json:"jobs"`
	// Search aggregates completed /v1/search queries: how many of each
	// mode ran, how candidates were eliminated (summed FilterStats — the
	// prune counters partition candidates), and the end-to-end latency.
	Search struct {
		Range                int64      `json:"range"`
		KNN                  int64      `json:"knn"`
		Candidates           int64      `json:"candidates"`
		PrunedByCount        int64      `json:"prunedByCount"`
		PrunedByLabel        int64      `json:"prunedByLabel"`
		PrunedByCard         int64      `json:"prunedByCard"`
		PrunedByBound        int64      `json:"prunedByBound"`
		PrunedByTriangle     int64      `json:"prunedByTriangle"`
		AdmittedByUpperBound int64      `json:"admittedByUpperBound"`
		Verified             int64      `json:"verified"`
		VerifiedWithin       int64      `json:"verifiedWithin"`
		Latency              *histogram `json:"latency"`
	} `json:"search"`
	// Pivot reports the similarity-search pivot index: the attached
	// table's size and origin, and per-query triangle-bound computation
	// latency (its count is how many pivoted queries ran).
	Pivot struct {
		Pivots            int        `json:"pivots"`
		Source            string     `json:"source"`
		BoundComputations int64      `json:"boundComputations"`
		BoundLatency      *histogram `json:"boundLatency"`
	} `json:"pivot"`
	// Snapshot reports corpus cold-start provenance: whether the serving
	// corpus was restored from a .hgx snapshot ("hgx"), rebuilt from
	// source files ("rebuilt"), or neither yet ("none"), how long the
	// restore or rebuild took, and the snapshot's on-disk size.
	Snapshot struct {
		Source string `json:"source"`
		LoadNs int64  `json:"loadNs"`
		Bytes  int64  `json:"bytes"`
		Graphs int    `json:"graphs"`
	} `json:"snapshot"`
	// SolverPool reports the process-wide pooled-solver reuse rate: hits
	// are acquisitions served by a warm Solver, misses allocated fresh.
	SolverPool struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"solverPool"`
	// Versions reports MVCC churn: generations published across all loaded
	// graphs (gauge, summed from the registry), currently pinned readers
	// (gauge), committed mutation batches and their op totals, deletions,
	// and how the search index kept pace — incremental refreshes with the
	// signature rows they reused versus full rebuilds, plus searches the
	// client chose to answer from a stale index during a rebuild.
	Versions struct {
		GenerationsPublished int64 `json:"generationsPublished"`
		PinnedReaders        int64 `json:"pinnedReaders"`
		MutationBatches      int64 `json:"mutationBatches"`
		NodesAdded           int64 `json:"nodesAdded"`
		NodesRemoved         int64 `json:"nodesRemoved"`
		EdgesAdded           int64 `json:"edgesAdded"`
		EdgesRemoved         int64 `json:"edgesRemoved"`
		Relabeled            int64 `json:"relabeled"`
		FullInvalidations    int64 `json:"fullInvalidations"`
		GraphsDeleted        int64 `json:"graphsDeleted"`
		IndexIncrements      int64 `json:"indexIncrements"`
		IndexFullBuilds      int64 `json:"indexFullBuilds"`
		IndexRowsReused      int64 `json:"indexRowsReused"`
		StaleSearches        int64 `json:"staleSearches"`
	} `json:"versions"`
}

// snapshot merges the counter state with the registry's live σ caches and
// the job manager's queue gauges. Maps are deep-copied so the caller can
// marshal without racing further updates.
func (m *Metrics) snapshot(reg *Registry, jobs *JobManager) MetricsSnapshot {
	snap := MetricsSnapshot{Requests: make(map[string]*endpointMetrics)}

	m.mu.Lock()
	//hgedvet:ignore detrange deep copy into another keyed map; iteration order cannot affect it
	for k, em := range m.endpoints {
		cp := &endpointMetrics{Status: make(map[int]int64, len(em.Status)), Latency: newHistogram()}
		//hgedvet:ignore detrange deep copy into another keyed map; iteration order cannot affect it
		for s, c := range em.Status {
			cp.Status[s] = c
		}
		copy(cp.Latency.Counts, em.Latency.Counts)
		cp.Latency.SumMS, cp.Latency.Count = em.Latency.SumMS, em.Latency.Count
		snap.Requests[k] = cp
	}
	snap.HGED.Expansions = m.expansions
	snap.SigmaCache.Computed = m.jobComputed
	snap.SigmaCache.Hits = m.jobHits
	snap.SigmaCache.Deduped = m.jobDeduped
	snap.SigmaCache.Expanded = m.jobExpanded
	snap.Jobs.Submitted = m.jobsSubmitted
	snap.Jobs.Done = m.jobsDone
	snap.Jobs.Failed = m.jobsFailed
	snap.Jobs.Cancelled = m.jobsCancelled
	snap.Search.Range = m.searchRange
	snap.Search.KNN = m.searchKNN
	snap.Search.Candidates = int64(m.searchFilter.Candidates)
	snap.Search.PrunedByCount = int64(m.searchFilter.PrunedByCount)
	snap.Search.PrunedByLabel = int64(m.searchFilter.PrunedByLabel)
	snap.Search.PrunedByCard = int64(m.searchFilter.PrunedByCard)
	snap.Search.PrunedByBound = int64(m.searchFilter.PrunedByBound)
	snap.Search.PrunedByTriangle = int64(m.searchFilter.PrunedByTriangle)
	snap.Search.AdmittedByUpperBound = int64(m.searchFilter.AdmittedByUpperBound)
	snap.Search.Verified = int64(m.searchFilter.Verified)
	snap.Search.VerifiedWithin = int64(m.searchFilter.VerifiedWithin)
	snap.Search.Latency = newHistogram()
	copy(snap.Search.Latency.Counts, m.searchLatency.Counts)
	snap.Search.Latency.SumMS, snap.Search.Latency.Count = m.searchLatency.SumMS, m.searchLatency.Count
	snap.Pivot.Pivots = m.pivotCount
	snap.Pivot.Source = m.pivotSource
	snap.Pivot.BoundComputations = m.pivotBoundLatency.Count
	snap.Pivot.BoundLatency = newHistogram()
	copy(snap.Pivot.BoundLatency.Counts, m.pivotBoundLatency.Counts)
	snap.Pivot.BoundLatency.SumMS, snap.Pivot.BoundLatency.Count = m.pivotBoundLatency.SumMS, m.pivotBoundLatency.Count
	snap.Snapshot.Source = m.snapSource
	snap.Snapshot.LoadNs = m.snapLoadNs
	snap.Snapshot.Bytes = m.snapBytes
	snap.Snapshot.Graphs = m.snapGraphs
	snap.Versions.MutationBatches = m.mutationBatches
	snap.Versions.NodesAdded = m.nodesAdded
	snap.Versions.NodesRemoved = m.nodesRemoved
	snap.Versions.EdgesAdded = m.edgesAdded
	snap.Versions.EdgesRemoved = m.edgesRemoved
	snap.Versions.Relabeled = m.relabeled
	snap.Versions.FullInvalidations = m.fullDeltas
	snap.Versions.GraphsDeleted = m.graphsDeleted
	snap.Versions.IndexIncrements = m.indexIncrements
	snap.Versions.IndexFullBuilds = m.indexFullBuilds
	snap.Versions.IndexRowsReused = m.indexRowsReused
	snap.Versions.StaleSearches = m.staleServed
	m.mu.Unlock()

	if reg != nil {
		live := reg.cacheTotals()
		snap.SigmaCache.Computed += int64(live.PairsComputed)
		snap.SigmaCache.Hits += int64(live.PairsCached)
		snap.SigmaCache.Deduped += int64(live.PairsDeduped)
		snap.SigmaCache.Expanded += int64(live.Expanded)
		for _, e := range reg.List() {
			vg := e.Versions()
			snap.Versions.GenerationsPublished += vg.Published()
			snap.Versions.PinnedReaders += vg.PinnedReaders()
		}
	}
	if jobs != nil {
		snap.Jobs.Queued, snap.Jobs.Running = jobs.gauges()
	}
	snap.SolverPool.Hits, snap.SolverPool.Misses = core.SolverPoolStats()
	return snap
}
