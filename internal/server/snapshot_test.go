package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hged"
	"hged/internal/hypergraph"
	"hged/internal/server"
)

// corpusFiles writes a deterministic .hg corpus to dir and returns the
// name→path pairs in name order.
func corpusFiles(t *testing.T, dir string, n int) (names, paths []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		g := hged.GenerateUniform(4+i%4, 2+i%3, 3, 3, 2, int64(700+i))
		name := fmt.Sprintf("g%02d", i)
		path := filepath.Join(dir, name+".hg")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := hged.WriteHG(f, g); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		paths = append(paths, path)
	}
	return names, paths
}

// rawPost issues a request with an exact body and returns the exact
// response bytes, so two servers can be compared byte for byte.
func rawPost(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

type snapshotMetrics struct {
	Snapshot struct {
		Source string `json:"source"`
		LoadNs int64  `json:"loadNs"`
		Bytes  int64  `json:"bytes"`
		Graphs int    `json:"graphs"`
	} `json:"snapshot"`
	Pivot struct {
		Pivots int    `json:"pivots"`
		Source string `json:"source"`
	} `json:"pivot"`
}

// searchQueries are issued verbatim against both servers; every response
// must match byte for byte.
var searchQueries = []string{
	`{"query":{"name":"g03"},"tau":3}`,
	`{"query":{"name":"g00"},"tau":0}`,
	`{"query":{"data":"nodes 4\nlabel 0 2\nedge 1 0 1 2\nedge 2 1 3\n","format":"hg"},"tau":4}`,
	`{"query":{"data":"nodes 5\nedge 1 0 1\nedge 1 2 3 4\n","format":"hg"},"k":3}`,
	`{"query":{"name":"g05"},"k":2,"parallelism":4}`,
}

// TestCorpusSnapshotColdStart is the end-to-end differential check behind
// the .hgx format: a server cold-started from the snapshot must answer
// every search byte-identically (matches, distances, FilterStats) to the
// server that parsed the corpus from text and built the index — and the
// restore itself must perform zero CSR freeze rebuilds.
func TestCorpusSnapshotColdStart(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "corpus.hgx")
	names, paths := corpusFiles(t, dir, 10)
	ctx := context.Background()

	// First server: text-parsed corpus, built index, persisted snapshot —
	// the flow cmd/hgedd runs when the snapshot is missing.
	first := server.New(server.Config{Pivots: 2, CorpusSnapshot: snap})
	for i, name := range names {
		if _, err := first.Registry().LoadFile(name, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.InitSearchIndex(ctx); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveCorpusSnapshot(ctx, snap); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(first.Handler())
	defer ts1.Close()
	defer first.Close(ctx)

	var wantBodies []string
	for _, q := range searchQueries {
		code, body := rawPost(t, ts1, "/v1/search", q)
		if code != 200 {
			t.Fatalf("first server: query %s: status %d: %s", q, code, body)
		}
		wantBodies = append(wantBodies, body)
	}
	var m1 snapshotMetrics
	if code := (&testEnv{t: t, ts: ts1}).do("GET", "/metrics", nil, &m1); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m1.Snapshot.Source != "rebuilt" || m1.Snapshot.Graphs != len(names) || m1.Snapshot.Bytes <= 0 {
		t.Fatalf("first server snapshot metrics = %+v, want rebuilt", m1.Snapshot)
	}

	// Second server: cold start from the snapshot only — no graph files
	// touched, no signature computed, no pivot distance solved, and (the
	// tentpole property) no CSR freeze rebuilt.
	second := server.New(server.Config{Pivots: 2, CorpusSnapshot: snap})
	before := hypergraph.FreezeBuilds()
	if err := second.LoadCorpusSnapshot(ctx, snap, names); err != nil {
		t.Fatal(err)
	}
	if rebuilds := hypergraph.FreezeBuilds() - before; rebuilds != 0 {
		t.Errorf("cold start from snapshot performed %d freeze rebuilds, want 0", rebuilds)
	}
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	defer second.Close(ctx)

	for i, q := range searchQueries {
		code, body := rawPost(t, ts2, "/v1/search", q)
		if code != 200 {
			t.Fatalf("second server: query %s: status %d: %s", q, code, body)
		}
		if body != wantBodies[i] {
			t.Errorf("query %s diverged:\ntext-built:  %s\nsnapshotted: %s", q, wantBodies[i], body)
		}
	}
	var m2 snapshotMetrics
	if code := (&testEnv{t: t, ts: ts2}).do("GET", "/metrics", nil, &m2); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m2.Snapshot.Source != "hgx" || m2.Snapshot.Graphs != len(names) ||
		m2.Snapshot.Bytes != m1.Snapshot.Bytes || m2.Snapshot.LoadNs <= 0 {
		t.Fatalf("second server snapshot metrics = %+v, want hgx restore of %d bytes", m2.Snapshot, m1.Snapshot.Bytes)
	}
	if m2.Pivot.Source != "snapshot" || m2.Pivot.Pivots != 2 {
		t.Fatalf("second server pivot metrics = %+v, want 2 pivots from snapshot", m2.Pivot)
	}
}

// TestLoadCorpusSnapshotRejects covers the fall-back triggers: a corpus
// mismatch, a pivot-count mismatch, a non-empty registry, and a corrupt
// file must all error without installing anything.
func TestLoadCorpusSnapshotRejects(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "corpus.hgx")
	names, paths := corpusFiles(t, dir, 6)
	ctx := context.Background()

	first := server.New(server.Config{Pivots: 2, CorpusSnapshot: snap})
	for i, name := range names {
		if _, err := first.Registry().LoadFile(name, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.InitSearchIndex(ctx); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveCorpusSnapshot(ctx, snap); err != nil {
		t.Fatal(err)
	}
	defer first.Close(ctx)

	check := func(name string, s *server.Server, want []string, path string) {
		t.Helper()
		if err := s.LoadCorpusSnapshot(ctx, path, want); err == nil {
			t.Errorf("%s: load must fail", name)
		} else if s.Registry().Len() != 0 {
			t.Errorf("%s: failed load left %d graphs installed", name, s.Registry().Len())
		}
		_ = s.Close(ctx)
	}
	check("different corpus", server.New(server.Config{Pivots: 2}),
		append([]string{"other"}, names[1:]...), snap)
	check("shorter corpus", server.New(server.Config{Pivots: 2}), names[:4], snap)
	check("pivot mismatch", server.New(server.Config{Pivots: 5}), names, snap)
	check("missing file", server.New(server.Config{Pivots: 2}), names, filepath.Join(dir, "absent.hgx"))

	wire, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)/2] ^= 1
	bad := filepath.Join(dir, "bad.hgx")
	if err := os.WriteFile(bad, wire, 0o644); err != nil {
		t.Fatal(err)
	}
	check("corrupt file", server.New(server.Config{Pivots: 2}), names, bad)

	occupied := server.New(server.Config{Pivots: 2})
	if _, err := occupied.Registry().Add("resident", hged.Fig1(), "builtin"); err != nil {
		t.Fatal(err)
	}
	if err := occupied.LoadCorpusSnapshot(ctx, snap, names); err == nil {
		t.Error("non-empty registry: load must fail")
	}
	_ = occupied.Close(ctx)
}
