package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hged"
)

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeJSON decodes the request body into v with a size cap and strict
// field checking, replying 400 itself on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// graphOr404 resolves the {name} path value, replying 404 when unknown.
func (s *Server) graphOr404(w http.ResponseWriter, r *http.Request) (*GraphEntry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
	}
	return e, ok
}

// parseAlgorithm maps a wire name to a HEP solver choice.
func parseAlgorithm(name string) (hged.PredictAlgorithm, error) {
	switch strings.ToLower(name) {
	case "", "bfs":
		return hged.AlgBFS, nil
	case "dfs":
		return hged.AlgDFS, nil
	case "heu":
		return hged.AlgHEU, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want bfs, dfs or heu)", name)
}

// capExpansions clamps a client-requested expansion budget to the server
// cap (0 selects the cap itself).
func (s *Server) capExpansions(req int64) int64 {
	if req <= 0 || req > s.cfg.MaxSyncExpansions {
		return s.cfg.MaxSyncExpansions
	}
	return req
}

// --- graphs ---

type graphSummary struct {
	Name       string `json:"name"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Generation int64  `json:"generation"`
	Source     string `json:"source"`
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]graphSummary, len(entries))
	for i, e := range entries {
		st := e.Stats()
		out[i] = graphSummary{Name: e.Name, Nodes: st.Nodes, Edges: st.Edges, Generation: e.Generation(), Source: e.Source}
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

type uploadRequest struct {
	Name   string `json:"name"`
	Format string `json:"format"` // hg | json | benson
	Data   string `json:"data"`
	// Benson-format uploads carry the three streams separately.
	Nverts    string `json:"nverts,omitempty"`
	Simplices string `json:"simplices,omitempty"`
	Labels    string `json:"labels,omitempty"`
}

func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request) {
	var req uploadRequest
	if !decodeJSON(w, r, s.cfg.MaxUploadBytes, &req) {
		return
	}
	var (
		g   *hged.Hypergraph
		err error
	)
	switch strings.ToLower(req.Format) {
	case "hg", "":
		g, err = hged.ReadHG(strings.NewReader(req.Data))
	case "json":
		g, err = hged.ReadJSON(strings.NewReader(req.Data))
	case "benson":
		var labels io.Reader
		if req.Labels != "" {
			labels = strings.NewReader(req.Labels)
		}
		g, err = hged.ReadBenson(strings.NewReader(req.Nverts), strings.NewReader(req.Simplices), labels)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want hg, json or benson)", req.Format)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse graph: %v", err)
		return
	}
	entry, err := s.reg.Add(req.Name, g, "upload")
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already loaded") {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": entry.Name, "generation": entry.Generation(), "stats": entry.Stats()})
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": e.Name, "source": e.Source, "generation": e.Generation(), "stats": e.Stats(),
	})
}

// --- mutation ---

type mutateNode struct {
	Label int `json:"label"`
}

type mutateEdge struct {
	Label int   `json:"label"`
	Nodes []int `json:"nodes"`
}

type mutateRequest struct {
	AddNodes    []mutateNode `json:"addNodes,omitempty"`
	AddEdges    []mutateEdge `json:"addEdges,omitempty"`
	RemoveEdges []int        `json:"removeEdges,omitempty"`
}

// maxMutationOps caps the operations one batch may carry.
const maxMutationOps = 100_000

// handleMutateGraph applies one copy-on-write mutation batch to a loaded
// graph: node additions, then hyperedge additions (which may reference the
// nodes just added), then hyperedge removals (ids in post-addition
// numbering, descending application so each id means what the client saw).
// Readers keep their pinned generation; on success the new generation is
// published atomically and derived caches are invalidated incrementally.
func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req mutateRequest
	if !decodeJSON(w, r, s.cfg.MaxUploadBytes, &req) {
		return
	}
	ops := len(req.AddNodes) + len(req.AddEdges) + len(req.RemoveEdges)
	if ops == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation: need addNodes, addEdges or removeEdges")
		return
	}
	if ops > maxMutationOps {
		writeError(w, http.StatusBadRequest, "too many operations (%d > %d)", ops, maxMutationOps)
		return
	}
	var nodeIDs, edgeIDs []int
	gen, st, delta, err := e.Mutate(func(b *hged.GraphBatch) error {
		for _, n := range req.AddNodes {
			nodeIDs = append(nodeIDs, int(b.AddNode(hged.Label(n.Label))))
		}
		for i, spec := range req.AddEdges {
			n := b.Graph().NumNodes()
			if len(spec.Nodes) == 0 {
				return fmt.Errorf("addEdges[%d]: empty member set", i)
			}
			members := make([]hged.NodeID, len(spec.Nodes))
			for j, v := range spec.Nodes {
				if v < 0 || v >= n {
					return fmt.Errorf("addEdges[%d]: node %d out of range [0, %d)", i, v, n)
				}
				members[j] = hged.NodeID(v)
			}
			edgeIDs = append(edgeIDs, int(b.AddEdge(hged.Label(spec.Label), members...)))
		}
		// Descending order keeps every remaining id meaning what the client
		// saw when it composed the request.
		removals := append([]int(nil), req.RemoveEdges...)
		sort.Sort(sort.Reverse(sort.IntSlice(removals)))
		for i, id := range removals {
			m := b.Graph().NumEdges()
			if id < 0 || id >= m {
				return fmt.Errorf("removeEdges[%d]: hyperedge %d out of range [0, %d)", i, id, m)
			}
			if i > 0 && id == removals[i-1] {
				return fmt.Errorf("removeEdges: duplicate hyperedge id %d", id)
			}
			b.RemoveEdge(hged.EdgeID(id))
		}
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.mutationDone(delta)
	writeJSON(w, http.StatusOK, map[string]any{
		"name":         e.Name,
		"generation":   gen,
		"addedNodes":   nodeIDs,
		"addedEdges":   edgeIDs,
		"removedEdges": len(req.RemoveEdges),
		"stats":        st,
	})
}

// handleRemoveEdge removes one hyperedge by id, publishing a new generation.
func (s *Server) handleRemoveEdge(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad hyperedge id %q", r.PathValue("id"))
		return
	}
	gen, st, delta, err := e.Mutate(func(b *hged.GraphBatch) error {
		if m := b.Graph().NumEdges(); id < 0 || id >= m {
			return fmt.Errorf("hyperedge %d out of range [0, %d)", id, m)
		}
		b.RemoveEdge(hged.EdgeID(id))
		return nil
	})
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.metrics.mutationDone(delta)
	writeJSON(w, http.StatusOK, map[string]any{"name": e.Name, "generation": gen, "stats": st})
}

// handleDeleteGraph unloads a graph. Pinned readers and in-flight requests
// against its generations finish undisturbed; the search index drops the
// corpus entry on its next fingerprint check.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	s.metrics.graphDeleted()
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// --- distance ---

type costsRequest struct {
	Node        int `json:"node"`
	Edge        int `json:"edge"`
	Incidence   int `json:"incidence"`
	NodeRelabel int `json:"nodeRelabel"`
	EdgeRelabel int `json:"edgeRelabel"`
}

type distanceRequest struct {
	U             int           `json:"u"`
	V             int           `json:"v"`
	Tau           int           `json:"tau"`           // > 0 enables threshold verification
	Solver        string        `json:"solver"`        // bfs | dfs | heu
	Explain       bool          `json:"explain"`       // include the edit-path explanation
	MaxExpansions int64         `json:"maxExpansions"` // clamped to the server cap
	Costs         *costsRequest `json:"costs"`
}

type distanceResponse struct {
	U           int             `json:"u"`
	V           int             `json:"v"`
	Distance    int             `json:"distance"`
	Within      *bool           `json:"within,omitempty"` // present when tau > 0
	Exact       bool            `json:"exact"`
	Exceeded    bool            `json:"exceeded"`
	Expanded    int64           `json:"expanded"`
	Explanation []string        `json:"explanation,omitempty"`
	Ops         json.RawMessage `json:"ops,omitempty"`
}

// handleDistance computes the node-similar distance σ(u, v) — the HGED
// between the two nodes' ego networks (Problem 1) — with the solver,
// threshold and cost model chosen per request, optionally explained by an
// optimal edit path.
func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req distanceRequest
	if !decodeJSON(w, r, 1<<20, &req) {
		return
	}
	// Pin one generation so the range check and both ego extractions see
	// the same graph even while mutation batches publish.
	gen := e.Pin()
	defer gen.Unpin()
	g := gen.Graph()
	n := g.NumNodes()
	if req.U < 0 || req.U >= n || req.V < 0 || req.V >= n {
		writeError(w, http.StatusBadRequest, "node pair (%d, %d) out of range [0, %d)", req.U, req.V, n)
		return
	}
	if req.Tau < 0 {
		writeError(w, http.StatusBadRequest, "tau = %d, must be ≥ 0", req.Tau)
		return
	}
	opts := hged.Options{Threshold: req.Tau, MaxExpansions: s.capExpansions(req.MaxExpansions)}
	if req.Costs != nil {
		cm := hged.CostModel{
			Node:        req.Costs.Node,
			Edge:        req.Costs.Edge,
			Incidence:   req.Costs.Incidence,
			NodeRelabel: req.Costs.NodeRelabel,
			EdgeRelabel: req.Costs.EdgeRelabel,
		}
		if err := cm.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts.Costs = &cm
	}
	eu, ev := g.Ego(hged.NodeID(req.U)), g.Ego(hged.NodeID(req.V))
	var res hged.Result
	switch strings.ToLower(req.Solver) {
	case "", "bfs":
		res = hged.BFS(eu, ev, opts)
	case "dfs":
		res = hged.DFS(eu, ev, opts)
	case "heu":
		res = hged.HEU(eu, ev, opts)
	default:
		writeError(w, http.StatusBadRequest, "unknown solver %q (want bfs, dfs or heu)", req.Solver)
		return
	}
	s.metrics.addExpansions(res.Expanded)

	resp := distanceResponse{
		U: req.U, V: req.V,
		Distance: res.Distance,
		Exact:    res.Exact,
		Exceeded: res.Exceeded,
		Expanded: res.Expanded,
	}
	if req.Tau > 0 {
		within := !res.Exceeded
		resp.Within = &within
	}
	if req.Explain && res.Path != nil {
		namer := &hged.Namer{
			Node: func(slot int) string {
				if slot < eu.NumNodes() {
					return fmt.Sprintf("node %d", eu.OrigID(hged.NodeID(slot)))
				}
				return fmt.Sprintf("new node #%d", slot)
			},
			Edge: func(slot int) string {
				if slot < eu.NumEdges() {
					return fmt.Sprintf("hyperedge #%d", slot)
				}
				return fmt.Sprintf("new hyperedge #%d", slot)
			},
		}
		resp.Explanation = hged.Explain(res.Path, namer)
		var buf bytes.Buffer
		if err := hged.WritePathJSON(&buf, res.Path); err == nil {
			resp.Ops = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- sigma ---

type sigmaRequest struct {
	Pairs         [][2]int `json:"pairs"`
	Budget        int      `json:"budget"` // defaults to 15 (λ=3 · τ=5)
	Solver        string   `json:"solver"`
	MaxExpansions int64    `json:"maxExpansions"`
}

type sigmaResult struct {
	U        int  `json:"u"`
	V        int  `json:"v"`
	Distance int  `json:"distance"`
	Within   bool `json:"within"`
}

// handleSigma answers batched σ(u, v) queries through the graph's
// persistent memoizing predictor: repeated and concurrent queries share
// one on-demand HGED cache.
func (s *Server) handleSigma(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req sigmaRequest
	if !decodeJSON(w, r, 1<<20, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "pairs must not be empty")
		return
	}
	if len(req.Pairs) > 10_000 {
		writeError(w, http.StatusBadRequest, "too many pairs (%d > 10000)", len(req.Pairs))
		return
	}
	if req.Budget == 0 {
		req.Budget = 15
	}
	if req.Budget < 0 {
		writeError(w, http.StatusBadRequest, "budget = %d, must be > 0", req.Budget)
		return
	}
	alg, err := parseAlgorithm(req.Solver)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The predictor comes back with the graph of the generation it serves;
	// validating ids against that same graph keeps the check and the σ
	// queries consistent under concurrent mutation.
	pred, g, err := e.sigmaPredictor(alg, s.capExpansions(req.MaxExpansions))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	n := g.NumNodes()
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			writeError(w, http.StatusBadRequest, "node pair (%d, %d) out of range [0, %d)", p[0], p[1], n)
			return
		}
	}
	results := make([]sigmaResult, len(req.Pairs))
	for i, p := range req.Pairs {
		d, within := pred.Sigma(hged.NodeID(p[0]), hged.NodeID(p[1]), req.Budget)
		results[i] = sigmaResult{U: p[0], V: p[1], Distance: d, Within: within}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results": results,
		"cache":   pred.Stats(), // cumulative for this graph's σ cache
	})
}

// --- search ---

type searchQuery struct {
	Name   string `json:"name,omitempty"` // a loaded graph...
	Format string `json:"format,omitempty"`
	Data   string `json:"data,omitempty"` // ...or an inline one
}

// maxSearchParallelism caps the per-request verification worker count.
const maxSearchParallelism = 32

type searchRequest struct {
	Query         searchQuery `json:"query"`
	Tau           int         `json:"tau,omitempty"` // range search when > 0 or K == 0
	K             int         `json:"k,omitempty"`   // kNN when > 0
	MaxExpansions int64       `json:"maxExpansions"`
	// Parallelism fans verification out over this many pooled solvers
	// (clamped to maxSearchParallelism); results are identical at every
	// setting. 0 or 1 verifies sequentially.
	Parallelism int `json:"parallelism"`
	// AllowStale serves the last-good index immediately when the corpus
	// changed and a rebuild is in flight, instead of waiting for the fresh
	// index (the read-your-writes default).
	AllowStale bool `json:"allowStale,omitempty"`
}

type searchMatch struct {
	Name     string `json:"name"`
	Distance int    `json:"distance"`
}

// searchIndex holds the shared similarity-search index over the registry
// corpus, fingerprinted by the sorted (name, generation) set it was built
// over. Rebuilds are single-flight and run outside the lock, so searches on
// an up-to-date corpus never contend with a build, and clients that opt
// into allowStale are served the last-good index while one rebuild runs.
type searchIndex struct {
	mu     sync.Mutex
	fp     string // fingerprint of the corpus the index serves
	names  []string
	epochs []int64
	gens   []int64
	ix     *hged.SearchIndex

	building  bool
	buildDone chan struct{}  // closed when the current flight finishes
	buildErr  error          // outcome of the last finished flight
	buildHook func()         // test seam: runs inside the flight, before install
	flights   sync.WaitGroup // in-flight rebuilds; Server.Close drains it
}

// corpusState snapshots the registry into the inputs of an index build: a
// fingerprint over the sorted (name, epoch, generation) triples plus the
// parallel name/epoch/generation/graph slices. The epoch distinguishes a
// name that was deleted and re-registered — its generations restart at 1,
// so (name, generation) alone would alias the replaced graph. Fields are
// length-prefixed so no name (validNames additionally exclude control
// bytes) can forge a record boundary.
func corpusState(entries []*GraphEntry) (fp string, names []string, epochs, gens []int64, graphs []*hged.Hypergraph) {
	var sb strings.Builder
	names = make([]string, len(entries))
	epochs = make([]int64, len(entries))
	gens = make([]int64, len(entries))
	graphs = make([]*hged.Hypergraph, len(entries))
	for i, e := range entries {
		gen := e.Pin()
		names[i] = e.Name
		epochs[i] = e.Epoch()
		gens[i] = gen.Seq()
		graphs[i] = gen.Graph()
		gen.Unpin()
		fmt.Fprintf(&sb, "%d:%s\x00%d\x00%d\x1e", len(e.Name), e.Name, epochs[i], gens[i])
	}
	return sb.String(), names, epochs, gens, graphs
}

// buildSpec carries one rebuild flight's inputs.
type buildSpec struct {
	fp     string
	names  []string
	epochs []int64
	gens   []int64
	graphs []*hged.Hypergraph
	// previous installed index, for incremental signature-row reuse
	prevIx     *hged.SearchIndex
	prevNames  []string
	prevEpochs []int64
	prevGens   []int64
	hook       func()
	done       chan struct{}
}

// corpusIndex returns the shared search index for the current corpus.
// When the corpus changed, exactly one flight rebuilds it — detached from
// the triggering request's context, so a cancelled client cannot waste the
// build every other searcher is waiting on — while the caller either waits
// (default: read-your-writes) or, with allowStale, is served the last-good
// index immediately.
func (s *Server) corpusIndex(ctx context.Context, allowStale bool) (*hged.SearchIndex, []string, error) {
	for {
		fp, names, epochs, gens, graphs := corpusState(s.reg.List())
		s.search.mu.Lock()
		if s.search.ix != nil && s.search.fp == fp {
			ix, ixNames := s.search.ix, s.search.names
			s.search.mu.Unlock()
			return ix, ixNames, nil
		}
		stale, staleNames := s.search.ix, s.search.names
		if !s.search.building {
			s.search.building = true
			s.search.buildDone = make(chan struct{})
			s.search.buildErr = nil
			spec := buildSpec{
				fp: fp, names: names, epochs: epochs, gens: gens, graphs: graphs,
				prevIx: stale, prevNames: s.search.names,
				prevEpochs: s.search.epochs, prevGens: s.search.gens,
				hook: s.search.buildHook, done: s.search.buildDone,
			}
			// The flight runs on a detached context (a cancelled client must
			// not waste the build other searchers wait on), so Server.Close
			// can only wait for it through the flights WaitGroup (ctxdetach).
			s.search.flights.Add(1)
			go s.rebuildIndex(context.WithoutCancel(ctx), spec)
		}
		done := s.search.buildDone
		s.search.mu.Unlock()
		if allowStale && stale != nil {
			s.metrics.searchStaleServed()
			return stale, staleNames, nil
		}
		select {
		case <-done:
			s.search.mu.Lock()
			err := s.search.buildErr
			s.search.mu.Unlock()
			if err != nil {
				return nil, nil, err
			}
			// Re-check: the flight may have installed an index for a corpus
			// that has changed again in the meantime.
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// rebuildIndex is one single-flight index build: incremental when a
// previous index exists (signature rows of unchanged (name, epoch,
// generation) graphs are copied instead of recomputed), full otherwise. It
// runs with a detached context; only a failed pivot precompute leaves the
// previous index in place.
func (s *Server) rebuildIndex(ctx context.Context, spec buildSpec) {
	defer s.search.flights.Done()
	var (
		ix     *hged.SearchIndex
		reused int
	)
	if spec.prevIx != nil {
		prevRow := make(map[string]int, len(spec.prevNames))
		for i, n := range spec.prevNames {
			prevRow[n] = i
		}
		reuse := make([]int, len(spec.names))
		for i, n := range spec.names {
			reuse[i] = -1
			// The epoch must match too: a re-registered name restarts at
			// generation 1 with different content, and reusing the deleted
			// entry's row would verify searches against the wrong graph.
			if j, ok := prevRow[n]; ok && spec.prevEpochs[j] == spec.epochs[i] && spec.prevGens[j] == spec.gens[i] {
				reuse[i] = j
				reused++
			}
		}
		ix = hged.BuildSearchIndexReusing(spec.graphs, spec.prevIx, reuse)
	} else {
		ix = hged.BuildSearchIndex(spec.graphs)
	}
	if spec.hook != nil {
		spec.hook()
	}
	err := s.equipPivots(ctx, ix)
	if err == nil {
		s.metrics.indexRebuilt(reused)
	}
	s.search.mu.Lock()
	if err == nil {
		s.search.ix = ix
		s.search.names = spec.names
		s.search.epochs = spec.epochs
		s.search.gens = spec.gens
		s.search.fp = spec.fp
	}
	s.search.buildErr = err
	s.search.building = false
	close(spec.done)
	s.search.mu.Unlock()
}

// equipPivots attaches the configured pivot table to a freshly built
// index: loaded from the snapshot when one matches this exact corpus and
// pivot count, built (on all cores, capped per pair like synchronous
// queries) and persisted otherwise. Build distances the cap cannot pin
// stay unknown — the accelerator degrades toward the plain scan, never
// turns unsound.
func (s *Server) equipPivots(ctx context.Context, ix *hged.SearchIndex) error {
	if s.cfg.Pivots <= 0 {
		s.metrics.pivotAttached(0, "none")
		return nil
	}
	digests := ix.SignatureDigests()
	want := s.cfg.Pivots
	if n := len(digests); want > n {
		want = n
	}
	if path := s.cfg.IndexSnapshot; path != "" {
		pv, snapDigests, err := hged.ReadPivotSnapshotFile(path)
		switch {
		case err != nil:
			s.cfg.Logger.Printf("pivot snapshot %s unusable, rebuilding: %v", path, err)
		case pv.K() != want:
			s.cfg.Logger.Printf("pivot snapshot %s has %d pivots, want %d: rebuilding", path, pv.K(), want)
		default:
			if aerr := ix.AttachPivots(pv, snapDigests); aerr != nil {
				s.cfg.Logger.Printf("pivot snapshot %s rejected, rebuilding: %v", path, aerr)
			} else {
				s.cfg.Logger.Printf("pivot index loaded from %s (%d pivots, %d graphs)", path, pv.K(), pv.Len())
				s.metrics.pivotAttached(pv.K(), "snapshot")
				return nil
			}
		}
	}
	ix.Parallelism = runtime.GOMAXPROCS(0)
	ix.MaxExpansions = s.cfg.MaxSyncExpansions
	pv, err := ix.BuildPivots(ctx, s.cfg.Pivots)
	ix.Parallelism = 0
	ix.MaxExpansions = 0
	if err != nil {
		return err
	}
	s.cfg.Logger.Printf("pivot index built (%d pivots, %d graphs)", pv.K(), pv.Len())
	s.metrics.pivotAttached(pv.K(), "built")
	if path := s.cfg.IndexSnapshot; path != "" {
		if werr := hged.WritePivotSnapshotFile(path, pv, digests); werr != nil {
			s.cfg.Logger.Printf("persisting pivot snapshot %s failed: %v", path, werr)
		} else {
			s.cfg.Logger.Printf("pivot snapshot written to %s", path)
		}
	}
	return nil
}

// handleSearch runs a range (τ) or kNN similarity search of the query
// graph against the corpus of all loaded graphs.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeJSON(w, r, s.cfg.MaxUploadBytes, &req) {
		return
	}
	var q *hged.Hypergraph
	switch {
	case req.Query.Name != "":
		e, ok := s.reg.Get(req.Query.Name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown query graph %q", req.Query.Name)
			return
		}
		q = e.Graph()
	case req.Query.Data != "":
		var err error
		switch strings.ToLower(req.Query.Format) {
		case "hg", "":
			q, err = hged.ReadHG(strings.NewReader(req.Query.Data))
		case "json":
			q, err = hged.ReadJSON(strings.NewReader(req.Query.Data))
		default:
			writeError(w, http.StatusBadRequest, "unknown query format %q", req.Query.Format)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse query graph: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "query needs a graph name or inline data")
		return
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "parallelism = %d, must be ≥ 0", req.Parallelism)
		return
	}
	shared, names, err := s.corpusIndex(r.Context(), req.AllowStale)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "building search index: %v", err)
		return
	}
	// Shallow-copy the index so the per-request expansion cap and worker
	// count never race with concurrent searches; the corpus slices and
	// pivot table are shared read-only.
	ix := *shared
	ix.MaxExpansions = s.capExpansions(req.MaxExpansions)
	ix.Parallelism = req.Parallelism
	if ix.Parallelism > maxSearchParallelism {
		ix.Parallelism = maxSearchParallelism
	}
	// Pivoted queries spend a few exact solves computing triangle bounds
	// before filtering; the timer feeds the /metrics pivot histogram.
	ix.BoundTimer = func(compute func()) {
		boundStart := time.Now()
		compute()
		s.metrics.pivotBound(time.Since(boundStart))
	}
	// The request context is cancelled by http.TimeoutHandler at the
	// response deadline and by client disconnects, so an abandoned scan
	// stops instead of running the corpus to completion.
	start := time.Now()
	var (
		matches []hged.SearchMatch
		stats   hged.FilterStats
	)
	if req.K > 0 {
		matches, stats, err = ix.NearestContext(r.Context(), q, req.K)
	} else {
		matches, stats, err = ix.SearchContext(r.Context(), q, req.Tau)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	s.metrics.searchDone(req.K > 0, stats, time.Since(start))
	out := make([]searchMatch, len(matches))
	for i, m := range matches {
		out[i] = searchMatch{Name: names[m.ID], Distance: m.Distance}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out, "stats": stats})
}

// --- jobs ---

type predictRequest struct {
	Lambda          int    `json:"lambda"`
	Tau             int    `json:"tau"`
	Algorithm       string `json:"algorithm"`
	Parallelism     int    `json:"parallelism"`
	MinSize         int    `json:"minSize"`
	MaxSize         int    `json:"maxSize"`
	MaxExpansions   int64  `json:"maxExpansions"`
	IncludeExisting bool   `json:"includeExisting"`
	TimeoutSeconds  int    `json:"timeoutSeconds"`
}

// handlePredict enqueues an asynchronous HEP prediction run and returns
// its job ID; poll GET /v1/jobs/{id} for progress and results.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req predictRequest
	if !decodeJSON(w, r, 1<<20, &req) {
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := hged.PredictOptions{
		Lambda:          req.Lambda,
		Tau:             req.Tau,
		Algorithm:       alg,
		Parallelism:     req.Parallelism,
		MinSize:         req.MinSize,
		MaxSize:         req.MaxSize,
		MaxExpansions:   req.MaxExpansions,
		IncludeExisting: req.IncludeExisting,
	}
	if _, err := opts.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.TimeoutSeconds < 0 {
		writeError(w, http.StatusBadRequest, "timeoutSeconds must be ≥ 0")
		return
	}
	job, err := s.jobs.Submit(e.Name, opts, time.Duration(req.TimeoutSeconds)*time.Second)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.State()})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleCancelJob requests cancellation; the job transitions to
// "cancelled" when the run observes it (at the next seed boundary).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.State()})
}

// --- operational ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.reg, s.jobs))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": s.reg.Len()})
}
