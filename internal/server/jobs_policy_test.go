package server_test

import (
	"strings"
	"testing"
	"time"

	"hged"
	"hged/internal/server"
)

// A job that exceeds its per-job deadline ends failed (with a timeout
// message) and is metered as a failure — not as a cancellation.
func TestJobTimeoutReportsFailed(t *testing.T) {
	env := newTestEnv(t, server.Config{Workers: 1})
	if _, err := env.srv.Registry().Add("big", bigGraph(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	job, err := env.srv.Jobs().Submit("big", hged.PredictOptions{Lambda: 3, Tau: 7}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != server.JobFailed {
		t.Fatalf("timed-out job ended %q, want failed", st)
	}
	if v := job.View(); !strings.Contains(v.Error, "timed out after") {
		t.Fatalf("error = %q, want a timeout message", v.Error)
	}

	var metrics struct {
		Jobs struct {
			Failed    int64 `json:"failed"`
			Cancelled int64 `json:"cancelled"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Jobs.Failed != 1 || metrics.Jobs.Cancelled != 0 {
		t.Fatalf("job counters = %+v, want 1 failed / 0 cancelled", metrics.Jobs)
	}
}

// The retention policy keeps the most recent JobRetention terminal jobs:
// older ones vanish from GET /v1/jobs and /v1/jobs/{id} (404) while the
// gauges and lifecycle counters stay truthful.
func TestJobRetentionEvictsOldestTerminal(t *testing.T) {
	env := newTestEnv(t, server.Config{Workers: 1, JobRetention: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		job, err := env.srv.Jobs().Submit("fig1", hged.PredictOptions{Lambda: 2, Tau: 4}, 0)
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		if st := job.State(); st != server.JobDone {
			t.Fatalf("job %d ended %q, want done", i, st)
		}
		ids = append(ids, job.ID)
	}
	// Eviction runs on submit: submitting job 4 evicted job 1, submitting
	// job 5 evicted job 2; jobs 3..5 remain.
	for i, id := range ids {
		want := 200
		if i < 2 {
			want = 404
		}
		if code := env.do("GET", "/v1/jobs/"+id, nil, nil); code != want {
			t.Fatalf("GET %s status %d, want %d", id, code, want)
		}
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/v1/jobs", nil, &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3 retained", len(list.Jobs))
	}
	var metrics struct {
		Jobs struct {
			Submitted int64 `json:"submitted"`
			Done      int64 `json:"done"`
			Queued    int   `json:"queued"`
			Running   int   `json:"running"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Jobs.Submitted != 5 || metrics.Jobs.Done != 5 {
		t.Fatalf("lifecycle counters = %+v, want 5 submitted / 5 done despite eviction", metrics.Jobs)
	}
	if metrics.Jobs.Queued != 0 || metrics.Jobs.Running != 0 {
		t.Fatalf("gauges = %+v, want 0 queued / 0 running", metrics.Jobs)
	}
}
