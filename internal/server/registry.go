package server

import (
	"fmt"
	"sort"
	"sync"
	"time"
	"unicode"

	"hged"
)

// GraphEntry is one named hypergraph in the registry, wrapped in an MVCC
// versioned lifecycle: readers pin immutable frozen generations while
// mutation batches publish new ones, and the entry's derived state — per
// generation stats and the lazily-built σ predictors behind the sigma
// endpoint — is invalidated incrementally on every commit.
type GraphEntry struct {
	Name     string
	Source   string // file path, "upload", or "builtin"
	LoadedAt time.Time

	// epoch is assigned by Registry.Add and unique across the registry's
	// lifetime, so a name re-registered after Remove never aliases the
	// deleted entry in (name, generation)-keyed derived state.
	epoch int64

	vg *hged.VersionedGraph

	mu       sync.Mutex
	stats    hged.Stats
	statsGen int64
	sigma    map[string]*sigmaEntry
}

// sigmaEntry ties a σ predictor to the graph generation it serves; Mutate
// rebases every entry on commit so a predictor is never a generation behind.
type sigmaEntry struct {
	p   *hged.Predictor
	gen int64
}

// Graph returns the current generation's immutable graph. Handlers that
// make several reads that must be mutually consistent should Pin instead.
func (e *GraphEntry) Graph() *hged.Hypergraph { return e.vg.Current().Graph() }

// Pin pins the current generation for a consistent multi-read view; the
// caller must Unpin it.
func (e *GraphEntry) Pin() *hged.GraphGeneration { return e.vg.Pin() }

// Generation returns the current generation's sequence number.
func (e *GraphEntry) Generation() int64 { return e.vg.Current().Seq() }

// Epoch returns the entry's registration epoch: unique per Add for the life
// of the registry. Generation numbers restart at 1 for every registration,
// so caches keyed on graph identity must key on (epoch, generation).
func (e *GraphEntry) Epoch() int64 { return e.epoch }

// Versions exposes the MVCC counters for /metrics.
func (e *GraphEntry) Versions() *hged.VersionedGraph { return e.vg }

// Stats returns summary statistics for the current generation, memoized
// per generation.
func (e *GraphEntry) Stats() hged.Stats {
	gen := e.vg.Current()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.statsGen != gen.Seq() {
		e.stats = hged.Summarize(gen.Graph())
		e.statsGen = gen.Seq()
	}
	return e.stats
}

// Mutate runs apply inside a copy-on-write batch against the current
// generation and publishes the result. On success it rebases the entry's σ
// predictors onto the new generation (dropping only entries the delta
// invalidates), refreshes the memoized stats, and returns the new
// generation number with its stats and the delta — the returned stats
// describe exactly the returned generation, which a later e.Stats() call
// cannot guarantee under concurrent mutation. On error the batch is
// discarded and the published generation is unchanged.
//
// Lock order: Begin waits on the MVCC writer lock and can stall behind a
// prior batch, so it must happen before e.mu is taken — holding e.mu
// through that wait would stall every reader of the entry's derived state
// (lockhold). Taking e.mu just before Commit keeps publish and rebase
// atomic with respect to readers, and the order writeMu→e.mu is
// cycle-free: no e.mu holder ever begins a batch.
func (e *GraphEntry) Mutate(apply func(b *hged.GraphBatch) error) (int64, hged.Stats, hged.GraphDelta, error) {
	b := e.vg.Begin()
	if err := apply(b); err != nil {
		b.Abort()
		return 0, hged.Stats{}, hged.GraphDelta{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	gen, delta := b.Commit()
	e.stats = hged.Summarize(gen.Graph())
	e.statsGen = gen.Seq()
	//hgedvet:ignore detrange per-key in-place rebase: entries are independent, the result is order-invariant
	for _, se := range e.sigma {
		if delta.Full {
			se.p = se.p.Rebase(gen.Graph(), nil)
		} else {
			se.p = se.p.Rebase(gen.Graph(), delta.Invalidates)
		}
		se.gen = gen.Seq()
	}
	return gen.Seq(), e.stats, delta, nil
}

// sigmaPredictor returns the entry's memoizing σ predictor for the given
// solver and expansion cap on the current generation, creating it on first
// use, together with the graph of the generation it serves. Predictors are
// rebased across generations by Mutate, so a cached predictor always
// answers for the generation it is returned with — stale σ values cannot
// be served after a mutation.
func (e *GraphEntry) sigmaPredictor(alg hged.PredictAlgorithm, maxExp int64) (*hged.Predictor, *hged.Hypergraph, error) {
	key := fmt.Sprintf("%d|%d", alg, maxExp)
	e.mu.Lock()
	defer e.mu.Unlock()
	gen := e.vg.Current()
	if se, ok := e.sigma[key]; ok {
		if se.gen != gen.Seq() {
			// Mutate rebases under e.mu, so a mismatch can only mean the
			// predictor predates this entry's wiring; rebuild cold.
			p, err := hged.NewPredictor(gen.Graph(), hged.PredictOptions{Algorithm: alg, MaxExpansions: maxExp})
			if err != nil {
				return nil, nil, err
			}
			se.p, se.gen = p, gen.Seq()
		}
		return se.p, gen.Graph(), nil
	}
	p, err := hged.NewPredictor(gen.Graph(), hged.PredictOptions{Algorithm: alg, MaxExpansions: maxExp})
	if err != nil {
		return nil, nil, err
	}
	e.sigma[key] = &sigmaEntry{p: p, gen: gen.Seq()}
	return p, gen.Graph(), nil
}

// cacheStats sums the σ-cache counters across the entry's predictors.
func (e *GraphEntry) cacheStats() hged.PredictStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total hged.PredictStats
	//hgedvet:ignore detrange commutative sum over per-predictor counters
	for _, se := range e.sigma {
		st := se.p.Stats()
		total.PairsComputed += st.PairsComputed
		total.PairsCached += st.PairsCached
		total.PairsDeduped += st.PairsDeduped
		total.Expanded += st.Expanded
	}
	return total
}

// Registry holds the server's named hypergraphs. Entries are added and
// removed under one lock; each entry's graph versions independently through
// its MVCC wrapper, and per-entry generation numbers — not the registry
// version — are the staleness signal for derived structures (the search
// index fingerprints the (name, generation) set).
type Registry struct {
	mu      sync.RWMutex
	graphs  map[string]*GraphEntry
	version int64
	epoch   int64 // registration counter feeding GraphEntry.epoch
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*GraphEntry)}
}

// validName rejects names that would not round-trip through URL paths, and
// any whitespace or control character — control bytes could otherwise forge
// the field/record separators in corpus fingerprints.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("graph name must not be empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("graph name longer than 128 bytes")
	}
	for _, r := range name {
		switch {
		case r == '/':
			return fmt.Errorf("graph name %q must not contain slashes", name)
		case r <= 0x20 || r == 0x7f || unicode.IsSpace(r) || unicode.IsControl(r):
			return fmt.Errorf("graph name %q must not contain whitespace or control characters", name)
		}
	}
	return nil
}

// Add registers g under name as generation 1 of a new versioned entry. The
// caller hands the graph over; it must only be mutated through the entry's
// Mutate batches afterwards.
func (r *Registry) Add(name string, g *hged.Hypergraph, source string) (*GraphEntry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph %q: %w", name, err)
	}
	e := &GraphEntry{
		Name:     name,
		Source:   source,
		LoadedAt: time.Now(),
		vg:       hged.NewVersionedGraph(g),
		stats:    hged.Summarize(g),
		statsGen: 1,
		sigma:    make(map[string]*sigmaEntry),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[name]; dup {
		return nil, fmt.Errorf("graph %q already loaded", name)
	}
	r.epoch++
	e.epoch = r.epoch
	r.graphs[name] = e
	r.version++
	return e, nil
}

// LoadFile reads a graph file (.hg or .json) and registers it under name.
func (r *Registry) LoadFile(name, path string) (*GraphEntry, error) {
	g, err := hged.ReadGraphFile(path)
	if err != nil {
		return nil, err
	}
	return r.Add(name, g, path)
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	return e, ok
}

// Remove deletes the entry for name, reporting whether it existed. Pinned
// readers of any of its generations finish undisturbed; the name is
// immediately free for re-registration.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; !ok {
		return false
	}
	delete(r.graphs, name)
	r.version++
	return true
}

// List returns all entries sorted by name.
func (r *Registry) List() []*GraphEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*GraphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of loaded graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}

// Version returns the add/remove counter. Per-entry generations, not this
// counter, signal graph-content staleness.
func (r *Registry) Version() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// cacheTotals sums σ-cache counters across every entry's predictors.
func (r *Registry) cacheTotals() hged.PredictStats {
	var total hged.PredictStats
	for _, e := range r.List() {
		st := e.cacheStats()
		total.PairsComputed += st.PairsComputed
		total.PairsCached += st.PairsCached
		total.PairsDeduped += st.PairsDeduped
		total.Expanded += st.Expanded
	}
	return total
}
