package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hged"
)

// GraphEntry is one named, immutably-loaded hypergraph in the registry,
// together with its precomputed stats and lazily-built σ predictors (the
// per-graph on-demand HGED caches behind the sigma endpoint).
type GraphEntry struct {
	Name     string
	Graph    *hged.Hypergraph
	Stats    hged.Stats
	Source   string // file path, "upload", or "builtin"
	LoadedAt time.Time

	mu    sync.Mutex
	sigma map[string]*hged.Predictor
}

// sigmaPredictor returns the entry's memoizing σ predictor for the given
// solver and expansion cap, creating it on first use. Predictors persist
// for the life of the entry, so repeated sigma queries share one cache.
func (e *GraphEntry) sigmaPredictor(alg hged.PredictAlgorithm, maxExp int64) (*hged.Predictor, error) {
	key := fmt.Sprintf("%d|%d", alg, maxExp)
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.sigma[key]; ok {
		return p, nil
	}
	p, err := hged.NewPredictor(e.Graph, hged.PredictOptions{Algorithm: alg, MaxExpansions: maxExp})
	if err != nil {
		return nil, err
	}
	e.sigma[key] = p
	return p, nil
}

// cacheStats sums the σ-cache counters across the entry's predictors.
func (e *GraphEntry) cacheStats() hged.PredictStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total hged.PredictStats
	//hgedvet:ignore detrange commutative sum over per-predictor counters
	for _, p := range e.sigma {
		st := p.Stats()
		total.PairsComputed += st.PairsComputed
		total.PairsCached += st.PairsCached
		total.PairsDeduped += st.PairsDeduped
		total.Expanded += st.Expanded
	}
	return total
}

// Registry holds the server's named hypergraphs. Graphs are immutable once
// added; the registry itself is safe for concurrent use. The version
// counter increments on every mutation so derived structures (the search
// index) know when to rebuild.
type Registry struct {
	mu      sync.RWMutex
	graphs  map[string]*GraphEntry
	version int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*GraphEntry)}
}

// validName rejects names that would not round-trip through URL paths.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("graph name must not be empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("graph name longer than 128 bytes")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("graph name %q must not contain slashes or whitespace", name)
	}
	return nil
}

// Add registers g under name. The graph must not be mutated afterwards.
func (r *Registry) Add(name string, g *hged.Hypergraph, source string) (*GraphEntry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph %q: %w", name, err)
	}
	e := &GraphEntry{
		Name:     name,
		Graph:    g,
		Stats:    hged.Summarize(g),
		Source:   source,
		LoadedAt: time.Now(),
		sigma:    make(map[string]*hged.Predictor),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.graphs[name]; dup {
		return nil, fmt.Errorf("graph %q already loaded", name)
	}
	r.graphs[name] = e
	r.version++
	return e, nil
}

// LoadFile reads a graph file (.hg or .json) and registers it under name.
func (r *Registry) LoadFile(name, path string) (*GraphEntry, error) {
	g, err := hged.ReadGraphFile(path)
	if err != nil {
		return nil, err
	}
	return r.Add(name, g, path)
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	return e, ok
}

// List returns all entries sorted by name.
func (r *Registry) List() []*GraphEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*GraphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of loaded graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}

// Version returns the mutation counter.
func (r *Registry) Version() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// cacheTotals sums σ-cache counters across every entry's predictors.
func (r *Registry) cacheTotals() hged.PredictStats {
	var total hged.PredictStats
	for _, e := range r.List() {
		st := e.cacheStats()
		total.PairsComputed += st.PairsComputed
		total.PairsCached += st.PairsCached
		total.PairsDeduped += st.PairsDeduped
		total.Expanded += st.Expanded
	}
	return total
}
