package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hged"
	"hged/internal/server"
)

// newPivotEnv builds a server over a small uniform-graph corpus (cheap
// exact HGED, so pivot tables are fully known) and eagerly initializes the
// search index the way cmd/hgedd does after startup loading.
func newPivotEnv(t *testing.T, cfg server.Config) *testEnv {
	t.Helper()
	s := server.New(cfg)
	for i := 0; i < 10; i++ {
		g := hged.GenerateUniform(4+i%3, 2+i%2, 3, 3, 2, int64(100+i))
		if _, err := s.Registry().Add(fmt.Sprintf("g%02d", i), g, "builtin"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InitSearchIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	env := &testEnv{t: t, srv: s, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close(context.Background())
	})
	return env
}

type searchResponse struct {
	Matches []struct {
		Name     string `json:"name"`
		Distance int    `json:"distance"`
	} `json:"matches"`
	Stats hged.FilterStats `json:"stats"`
}

type metricsResponse struct {
	Search struct {
		PrunedByTriangle     int64 `json:"prunedByTriangle"`
		AdmittedByUpperBound int64 `json:"admittedByUpperBound"`
	} `json:"search"`
	Pivot struct {
		Pivots            int    `json:"pivots"`
		Source            string `json:"source"`
		BoundComputations int64  `json:"boundComputations"`
		BoundLatency      struct {
			Count int64 `json:"count"`
		} `json:"boundLatency"`
	} `json:"pivot"`
}

func TestPivotIndexBuildAndSearch(t *testing.T) {
	env := newPivotEnv(t, server.Config{Pivots: 4})
	var resp searchResponse
	if code := env.do("POST", "/v1/search", map[string]any{
		"query": map[string]any{"name": "g03"}, "tau": 2,
	}, &resp); code != 200 {
		t.Fatalf("search status %d", code)
	}
	sum := resp.Stats.PrunedByCount + resp.Stats.PrunedByLabel + resp.Stats.PrunedByCard +
		resp.Stats.PrunedByBound + resp.Stats.PrunedByTriangle +
		resp.Stats.AdmittedByUpperBound + resp.Stats.Verified
	if sum != resp.Stats.Candidates {
		t.Fatalf("stats don't partition candidates: %+v", resp.Stats)
	}
	var m metricsResponse
	if code := env.do("GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pivot.Pivots != 4 || m.Pivot.Source != "built" {
		t.Fatalf("pivot metrics = %+v, want 4 built pivots", m.Pivot)
	}
	if m.Pivot.BoundComputations != 1 || m.Pivot.BoundLatency.Count != 1 {
		t.Fatalf("one pivoted query must record one bound computation: %+v", m.Pivot)
	}
}

func TestPivotlessServerReportsNone(t *testing.T) {
	env := newPivotEnv(t, server.Config{})
	var m metricsResponse
	if code := env.do("GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pivot.Pivots != 0 || m.Pivot.Source != "none" {
		t.Fatalf("pivot metrics = %+v, want none", m.Pivot)
	}
}

// A snapshot written by one server is loaded (not rebuilt) by the next one
// over the same corpus, and pivoted results are identical either way.
func TestPivotSnapshotLoadedBySecondServer(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "pivots.snap")
	query := map[string]any{"query": map[string]any{"name": "g05"}, "tau": 3}

	first := newPivotEnv(t, server.Config{Pivots: 3, IndexSnapshot: snap})
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("InitSearchIndex did not persist the snapshot: %v", err)
	}
	var want searchResponse
	if code := first.do("POST", "/v1/search", query, &want); code != 200 {
		t.Fatalf("search status %d", code)
	}

	second := newPivotEnv(t, server.Config{Pivots: 3, IndexSnapshot: snap})
	var m metricsResponse
	if code := second.do("GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pivot.Source != "snapshot" || m.Pivot.Pivots != 3 {
		t.Fatalf("second server pivot metrics = %+v, want 3 pivots from snapshot", m.Pivot)
	}
	var got searchResponse
	if code := second.do("POST", "/v1/search", query, &got); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("snapshot-loaded index diverged:\ngot  %+v\nwant %+v", got.Matches, want.Matches)
	}
}

// A snapshot over a different corpus (or pivot count) is rejected and the
// server rebuilds instead of serving wrong bounds.
func TestPivotSnapshotMismatchRebuilds(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "pivots.snap")
	newPivotEnv(t, server.Config{Pivots: 3, IndexSnapshot: snap})

	s := server.New(server.Config{Pivots: 3, IndexSnapshot: snap})
	for i := 0; i < 6; i++ { // a different corpus
		g := hged.GenerateUniform(5, 3, 3, 3, 2, int64(900+i))
		if _, err := s.Registry().Add(fmt.Sprintf("other%d", i), g, "builtin"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InitSearchIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	env := &testEnv{t: t, srv: s, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close(context.Background())
	})
	var m metricsResponse
	if code := env.do("GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pivot.Source != "built" {
		t.Fatalf("mismatched snapshot must force a rebuild, got %+v", m.Pivot)
	}
	// The rebuild refreshed the snapshot: a third server over the new
	// corpus loads it.
	s2 := server.New(server.Config{Pivots: 3, IndexSnapshot: snap})
	for i := 0; i < 6; i++ {
		g := hged.GenerateUniform(5, 3, 3, 3, 2, int64(900+i))
		if _, err := s2.Registry().Add(fmt.Sprintf("other%d", i), g, "builtin"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.InitSearchIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close(context.Background()) })
}

// Uploading a graph invalidates the cached index; the next search rebuilds
// it with pivots over the grown corpus.
func TestUploadRebuildsPivotIndex(t *testing.T) {
	env := newPivotEnv(t, server.Config{Pivots: 4})
	if code := env.do("POST", "/v1/search", map[string]any{
		"query": map[string]any{"name": "g00"}, "tau": 1,
	}, nil); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{
		"name": "extra", "format": "hg", "data": "nodes 3\nedge 1 0 1 2\n",
	}, nil); code != 201 {
		t.Fatalf("upload status %d", code)
	}
	var resp searchResponse
	if code := env.do("POST", "/v1/search", map[string]any{
		"query": map[string]any{"name": "extra"}, "tau": 0,
	}, &resp); code != 200 {
		t.Fatalf("post-upload search status %d", code)
	}
	found := false
	for _, mt := range resp.Matches {
		if mt.Name == "extra" && mt.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("uploaded graph missing from its own search: %+v", resp.Matches)
	}
	var m metricsResponse
	if code := env.do("GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pivot.Pivots != 4 || m.Pivot.Source != "built" {
		t.Fatalf("rebuilt index lost its pivots: %+v", m.Pivot)
	}
}

func TestInitSearchIndexCancelled(t *testing.T) {
	s := server.New(server.Config{Pivots: 4})
	for i := 0; i < 6; i++ {
		g := hged.GenerateUniform(5, 3, 3, 3, 2, int64(300+i))
		if _, err := s.Registry().Add(fmt.Sprintf("g%d", i), g, "builtin"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.InitSearchIndex(ctx); err == nil {
		t.Fatal("cancelled init must fail")
	}
	// The failed build cached nothing; a live context succeeds afterwards.
	if err := s.InitSearchIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close(context.Background()) })
}
