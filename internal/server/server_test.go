package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hged"
	"hged/internal/server"
)

// testEnv is one running server over httptest with the Fig. 1 graph and a
// seeded planted-community graph loaded.
type testEnv struct {
	t       *testing.T
	srv     *server.Server
	ts      *httptest.Server
	planted *hged.Hypergraph
}

func newTestEnv(t *testing.T, cfg server.Config) *testEnv {
	t.Helper()
	s := server.New(cfg)
	if _, err := s.Registry().Add("fig1", hged.Fig1(), "builtin"); err != nil {
		t.Fatal(err)
	}
	planted, _, err := hged.GeneratePlanted(hged.GenConfig{Nodes: 30, Edges: 45, Seed: 7, NodeLabelCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("planted", planted, "builtin"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	env := &testEnv{t: t, srv: s, ts: ts, planted: planted}
	t.Cleanup(func() {
		ts.Close()
		closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Close(closeCtx)
	})
	return env
}

func (e *testEnv) do(method, path string, body any, out any) int {
	e.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			e.t.Fatalf("%s %s: bad JSON %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

func TestGraphListAndStats(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	var list struct {
		Graphs []struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
			Edges int    `json:"edges"`
		} `json:"graphs"`
	}
	if code := env.do("GET", "/v1/graphs", nil, &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if len(list.Graphs) != 2 || list.Graphs[0].Name != "fig1" || list.Graphs[1].Name != "planted" {
		t.Fatalf("graphs = %+v", list.Graphs)
	}
	if list.Graphs[0].Nodes != 8 || list.Graphs[0].Edges != 4 {
		t.Fatalf("fig1 shape = %+v, want 8 nodes / 4 hyperedges", list.Graphs[0])
	}
	var stats struct {
		Name  string     `json:"name"`
		Stats hged.Stats `json:"stats"`
	}
	if code := env.do("GET", "/v1/graphs/fig1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Stats.Nodes != 8 {
		t.Fatalf("stats = %+v", stats.Stats)
	}
	if code := env.do("GET", "/v1/graphs/nope/stats", nil, nil); code != 404 {
		t.Fatalf("missing graph status %d, want 404", code)
	}
}

func TestDistanceWithExplanation(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	var resp struct {
		Distance    int             `json:"distance"`
		Exact       bool            `json:"exact"`
		Explanation []string        `json:"explanation"`
		Ops         json.RawMessage `json:"ops"`
	}
	body := map[string]any{"u": 0, "v": 1, "explain": true}
	if code := env.do("POST", "/v1/graphs/fig1/distance", body, &resp); code != 200 {
		t.Fatalf("distance status %d", code)
	}
	// Cross-check against the library's own σ computation.
	g := hged.Fig1()
	want := hged.NodeDistance(g, 0, 1, hged.Options{})
	if resp.Distance != want.Distance {
		t.Fatalf("server distance %d, library %d", resp.Distance, want.Distance)
	}
	if !resp.Exact {
		t.Fatal("expected an exact distance on Fig. 1")
	}
	if resp.Distance > 0 && len(resp.Explanation) == 0 {
		t.Fatalf("no explanation lines for distance %d", resp.Distance)
	}
	if len(resp.Ops) == 0 {
		t.Fatal("no ops payload")
	}
	// The ops payload must round-trip through the path codec.
	if _, err := hged.ReadPathJSON(bytes.NewReader(resp.Ops)); err != nil {
		t.Fatalf("ops payload unreadable: %v", err)
	}

	// Solver, threshold and cost model are per-request knobs.
	var thr struct {
		Within *bool `json:"within"`
	}
	body = map[string]any{"u": 0, "v": 1, "tau": 1, "solver": "heu",
		"costs": map[string]int{"node": 2, "edge": 2, "incidence": 1, "nodeRelabel": 1, "edgeRelabel": 1}}
	if code := env.do("POST", "/v1/graphs/fig1/distance", body, &thr); code != 200 {
		t.Fatalf("threshold distance status %d", code)
	}
	if thr.Within == nil {
		t.Fatal("tau > 0 must report within")
	}
	if code := env.do("POST", "/v1/graphs/fig1/distance", map[string]any{"u": 0, "v": 99}, nil); code != 400 {
		t.Fatalf("out-of-range node status %d, want 400", code)
	}
	if code := env.do("POST", "/v1/graphs/fig1/distance", map[string]any{"u": 0, "v": 1, "solver": "qubit"}, nil); code != 400 {
		t.Fatalf("bad solver status %d, want 400", code)
	}
}

func TestSigmaBatch(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	var resp struct {
		Results []struct {
			U, V     int
			Distance int
			Within   bool
		} `json:"results"`
		Cache hged.PredictStats `json:"cache"`
	}
	body := map[string]any{"pairs": [][2]int{{0, 1}, {1, 0}, {2, 3}}, "budget": 20}
	if code := env.do("POST", "/v1/graphs/fig1/sigma", body, &resp); code != 200 {
		t.Fatalf("sigma status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Results[0].Distance != resp.Results[1].Distance {
		t.Fatal("σ must be symmetric")
	}
	// (0,1) and (1,0) share a memo entry: at most 2 distinct computations.
	if resp.Cache.PairsComputed > 2 {
		t.Fatalf("cache computed %d pairs, want ≤ 2", resp.Cache.PairsComputed)
	}
	// A repeat of the same batch is answered fully from the cache.
	before := resp.Cache.PairsComputed
	if code := env.do("POST", "/v1/graphs/fig1/sigma", body, &resp); code != 200 {
		t.Fatalf("second sigma status %d", code)
	}
	if resp.Cache.PairsComputed != before {
		t.Fatalf("repeat batch recomputed: %d → %d", before, resp.Cache.PairsComputed)
	}
}

func TestUploadAndSearch(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	// Upload a near-copy of Fig. 1 in .hg text form and an exact JSON copy.
	var hg bytes.Buffer
	if err := hged.WriteHG(&hg, hged.Fig1()); err != nil {
		t.Fatal(err)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "fig1-text", "format": "hg", "data": hg.String()}, nil); code != 201 {
		t.Fatalf("upload status %d", code)
	}
	var js bytes.Buffer
	if err := hged.WriteJSON(&js, hged.Fig1()); err != nil {
		t.Fatal(err)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "fig1-json", "format": "json", "data": js.String()}, nil); code != 201 {
		t.Fatalf("json upload status %d", code)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "fig1-json", "format": "json", "data": js.String()}, nil); code != 409 {
		t.Fatalf("duplicate upload status %d, want 409", code)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "bad", "format": "hg", "data": "nodes -3"}, nil); code != 400 {
		t.Fatalf("bad upload status %d, want 400", code)
	}

	// Range search: the three Fig. 1 copies are at distance 0 from fig1.
	var rangeResp struct {
		Matches []struct {
			Name     string `json:"name"`
			Distance int    `json:"distance"`
		} `json:"matches"`
		Stats hged.FilterStats `json:"stats"`
	}
	body := map[string]any{"query": map[string]any{"name": "fig1"}, "tau": 0}
	if code := env.do("POST", "/v1/search", body, &rangeResp); code != 200 {
		t.Fatalf("search status %d", code)
	}
	var names []string
	for _, m := range rangeResp.Matches {
		if m.Distance != 0 {
			t.Fatalf("match %+v at τ=0", m)
		}
		names = append(names, m.Name)
	}
	if fmt.Sprint(names) != "[fig1 fig1-json fig1-text]" {
		t.Fatalf("τ=0 matches = %v", names)
	}
	if rangeResp.Stats.Candidates != 4 {
		t.Fatalf("candidates = %d, want 4", rangeResp.Stats.Candidates)
	}

	// kNN with an inline query.
	var knn struct {
		Matches []struct {
			Name     string `json:"name"`
			Distance int    `json:"distance"`
		} `json:"matches"`
	}
	body = map[string]any{"query": map[string]any{"format": "hg", "data": hg.String()}, "k": 2}
	if code := env.do("POST", "/v1/search", body, &knn); code != 200 {
		t.Fatalf("kNN status %d", code)
	}
	if len(knn.Matches) != 2 || knn.Matches[0].Distance != 0 {
		t.Fatalf("kNN matches = %+v", knn.Matches)
	}

	// A parallel search returns the same matches and stats as sequential.
	var parResp struct {
		Matches []struct {
			Name     string `json:"name"`
			Distance int    `json:"distance"`
		} `json:"matches"`
		Stats hged.FilterStats `json:"stats"`
	}
	body = map[string]any{"query": map[string]any{"name": "fig1"}, "tau": 0, "parallelism": 4}
	if code := env.do("POST", "/v1/search", body, &parResp); code != 200 {
		t.Fatalf("parallel search status %d", code)
	}
	if fmt.Sprint(parResp.Matches) != fmt.Sprint(rangeResp.Matches) || parResp.Stats != rangeResp.Stats {
		t.Fatalf("parallel search diverged: %+v vs %+v", parResp, rangeResp)
	}
	if code := env.do("POST", "/v1/search", map[string]any{"query": map[string]any{"name": "fig1"}, "parallelism": -1}, nil); code != 400 {
		t.Fatalf("negative parallelism status %d, want 400", code)
	}

	// The search metrics section accumulates the three completed searches
	// and its prune counters partition the candidates.
	var metrics struct {
		Search struct {
			Range         int64 `json:"range"`
			KNN           int64 `json:"knn"`
			Candidates    int64 `json:"candidates"`
			PrunedByCount int64 `json:"prunedByCount"`
			PrunedByLabel int64 `json:"prunedByLabel"`
			PrunedByCard  int64 `json:"prunedByCard"`
			PrunedByBound int64 `json:"prunedByBound"`
			Verified      int64 `json:"verified"`
			Latency       struct {
				Count int64 `json:"count"`
			} `json:"latency"`
		} `json:"search"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	s := metrics.Search
	if s.Range != 2 || s.KNN != 1 || s.Latency.Count != 3 {
		t.Fatalf("search metrics = %+v, want 2 range / 1 knn / 3 observed", s)
	}
	if s.PrunedByCount+s.PrunedByLabel+s.PrunedByCard+s.PrunedByBound+s.Verified != s.Candidates {
		t.Fatalf("search prune counters don't partition candidates: %+v", s)
	}
}

// TestPredictJobLifecycle drives the acceptance scenario end to end: an
// async HEP job on the planted-community graph is submitted, polled to
// completion, its predictions verified as (λ,τ)-hyperedges, and the
// metrics reflect the traffic.
func TestPredictJobLifecycle(t *testing.T) {
	env := newTestEnv(t, server.Config{Workers: 2})
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	body := map[string]any{"lambda": 2, "tau": 3, "parallelism": 4, "timeoutSeconds": 120}
	if code := env.do("POST", "/v1/graphs/planted/predict", body, &sub); code != 202 {
		t.Fatalf("submit status %d", code)
	}
	if sub.ID == "" {
		t.Fatal("no job ID")
	}

	var job struct {
		State       string `json:"state"`
		SeedsDone   int    `json:"seedsDone"`
		SeedsTotal  int    `json:"seedsTotal"`
		Predictions []struct {
			Nodes []hged.NodeID `json:"nodes"`
			Seed  hged.NodeID   `json:"seed"`
		} `json:"predictions"`
		Stats *hged.PredictStats `json:"stats"`
		Error string             `json:"error"`
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if code := env.do("GET", "/v1/jobs/"+sub.ID, nil, &job); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		if job.State == "done" || job.State == "failed" || job.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%d/%d seeds)", job.State, job.SeedsDone, job.SeedsTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != "done" {
		t.Fatalf("job ended %q: %s", job.State, job.Error)
	}
	if job.SeedsTotal == 0 || job.SeedsDone != job.SeedsTotal {
		t.Fatalf("progress %d/%d after completion", job.SeedsDone, job.SeedsTotal)
	}
	if job.Stats == nil || job.Stats.PairsComputed == 0 {
		t.Fatalf("no cache statistics: %+v", job.Stats)
	}
	if len(job.Predictions) == 0 {
		t.Fatal("no predictions on the planted-community graph")
	}
	for _, p := range job.Predictions {
		if !hged.VerifyHyperedge(env.planted, p.Nodes, 2, 3) {
			t.Fatalf("prediction %v is not a verified (2,3)-hyperedge", p.Nodes)
		}
	}

	// The job list includes it.
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/v1/jobs", nil, &list); code != 200 || len(list.Jobs) != 1 {
		t.Fatalf("job list = %+v", list)
	}

	// Metrics reflect the traffic.
	var metrics struct {
		Requests map[string]struct {
			Status  map[string]int64 `json:"status"`
			Latency struct {
				Count int64 `json:"count"`
			} `json:"latency"`
		} `json:"requests"`
		SigmaCache struct {
			Computed int64 `json:"computed"`
			Expanded int64 `json:"expanded"`
		} `json:"sigmaCache"`
		Jobs struct {
			Submitted int64 `json:"submitted"`
			Done      int64 `json:"done"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Jobs.Submitted != 1 || metrics.Jobs.Done != 1 {
		t.Fatalf("job counters = %+v", metrics.Jobs)
	}
	if metrics.SigmaCache.Computed == 0 {
		t.Fatal("σ-cache counters not surfaced")
	}
	ep := metrics.Requests["POST /v1/graphs/{name}/predict"]
	if ep.Status["202"] != 1 || ep.Latency.Count != 1 {
		t.Fatalf("predict endpoint metrics = %+v", ep)
	}
	polls := metrics.Requests["GET /v1/jobs/{id}"]
	if polls.Status["200"] == 0 {
		t.Fatalf("poll endpoint metrics = %+v", polls)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	var hz struct {
		Status string `json:"status"`
		Graphs int    `json:"graphs"`
	}
	if code := env.do("GET", "/healthz", nil, &hz); code != 200 || hz.Status != "ok" || hz.Graphs != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
	env.do("POST", "/v1/graphs/fig1/distance", map[string]any{"u": 0, "v": 1}, nil)
	var metrics struct {
		HGED struct {
			Expansions int64 `json:"expansions"`
		} `json:"hged"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.HGED.Expansions == 0 {
		t.Fatal("distance query left no expansion trace")
	}
}

func TestUnknownRoutes(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	if code := env.do("GET", "/v1/nope", nil, nil); code != 404 {
		t.Fatalf("unknown route status %d", code)
	}
	if code := env.do("GET", "/v1/jobs/job-999", nil, nil); code != 404 {
		t.Fatalf("unknown job status %d", code)
	}
	// Wrong method on a known path.
	if code := env.do("DELETE", "/v1/graphs", nil, nil); code != 405 {
		t.Fatalf("method not allowed status %d", code)
	}
}

func TestRequestBodyValidation(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	req, err := http.NewRequest("POST", env.ts.URL+"/v1/graphs/fig1/distance", strings.NewReader(`{"u": 0, "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown field status %d, want 400", resp.StatusCode)
	}
}
