package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hged"
)

// JobState is the lifecycle phase of an asynchronous HEP prediction job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Errors returned by Submit.
var (
	ErrQueueFull = errors.New("server: job queue full")
	ErrDraining  = errors.New("server: shutting down, not accepting jobs")
)

// Job is one asynchronous HEP prediction run. Mutable fields are guarded
// by mu; the done channel closes when the job reaches a terminal state.
type Job struct {
	ID      string
	Graph   string
	Options hged.PredictOptions
	Timeout time.Duration // max run time once started; 0 means none

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	state      JobState
	seedsDone  int
	seedsTotal int
	preds      []hged.Prediction
	stats      hged.PredictStats
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
}

// Cancel requests cancellation: queued jobs are skipped when a worker
// reaches them, running jobs stop at the next seed boundary.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// terminal reports whether the job has finished (done, failed or
// cancelled) and is therefore eligible for retention eviction.
func (j *Job) terminal() bool {
	switch j.State() {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// JobView is the JSON shape of a job's status.
type JobView struct {
	ID          string             `json:"id"`
	Graph       string             `json:"graph"`
	State       JobState           `json:"state"`
	Lambda      int                `json:"lambda"`
	Tau         int                `json:"tau"`
	Algorithm   string             `json:"algorithm"`
	Parallelism int                `json:"parallelism"`
	SeedsDone   int                `json:"seedsDone"`
	SeedsTotal  int                `json:"seedsTotal"`
	Predictions []PredictionView   `json:"predictions,omitempty"`
	Stats       *hged.PredictStats `json:"stats,omitempty"`
	Error       string             `json:"error,omitempty"`
	CreatedAt   time.Time          `json:"createdAt"`
	StartedAt   *time.Time         `json:"startedAt,omitempty"`
	FinishedAt  *time.Time         `json:"finishedAt,omitempty"`
}

// PredictionView is one predicted (λ,τ)-hyperedge on the wire.
type PredictionView struct {
	Nodes []hged.NodeID `json:"nodes"`
	Seed  hged.NodeID   `json:"seed"`
}

// View snapshots the job for serialization. Predictions and stats appear
// once the job is done.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Graph:       j.Graph,
		State:       j.state,
		Lambda:      j.Options.Lambda,
		Tau:         j.Options.Tau,
		Algorithm:   j.Options.Algorithm.String(),
		Parallelism: j.Options.Parallelism,
		SeedsDone:   j.seedsDone,
		SeedsTotal:  j.seedsTotal,
		Error:       j.errMsg,
		CreatedAt:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.state == JobDone || j.state == JobFailed || j.state == JobCancelled {
		st := j.stats
		v.Stats = &st
	}
	if j.state == JobDone {
		v.Predictions = make([]PredictionView, len(j.preds))
		for i, p := range j.preds {
			v.Predictions[i] = PredictionView{Nodes: p.Nodes, Seed: p.Seed}
		}
	}
	return v
}

// JobManager runs HEP prediction jobs on a bounded worker pool with a
// bounded queue. Each job gets its own cancellable context derived from
// the manager's base context, so Close can drain or abort everything.
type JobManager struct {
	reg     *Registry
	metrics *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // retained job IDs in submission order
	retain int      // max terminal jobs kept for inspection
	nextID int
	closed bool
}

func newJobManager(reg *Registry, metrics *Metrics, workers, queueDepth, retain int) *JobManager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 16
	}
	if retain < 1 {
		retain = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		reg:        reg,
		metrics:    metrics,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, queueDepth),
		jobs:       make(map[string]*Job),
		retain:     retain,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues a HEP run against the named graph. It returns
// ErrQueueFull when the queue is at capacity and ErrDraining after Close.
func (m *JobManager) Submit(graph string, opts hged.PredictOptions, timeout time.Duration) (*Job, error) {
	if _, ok := m.reg.Get(graph); !ok {
		return nil, fmt.Errorf("server: unknown graph %q", graph)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrDraining
	}
	m.nextID++
	ctx, cancel := context.WithCancel(m.baseCtx)
	job := &Job{
		ID:      fmt.Sprintf("job-%d", m.nextID),
		Graph:   graph,
		Options: opts,
		Timeout: timeout,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}
	select {
	case m.queue <- job:
	default:
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.evictLocked()
	m.metrics.jobSubmitted()
	return job, nil
}

// evictLocked enforces the retention policy: at most retain terminal jobs
// stay inspectable via Get/List, evicted oldest-first. Queued and running
// jobs are never evicted (they don't count against the limit). Caller
// holds m.mu.
func (m *JobManager) evictLocked() {
	terminal := 0
	for _, id := range m.order {
		if m.jobs[id].terminal() {
			terminal++
		}
	}
	evict := terminal - m.retain
	if evict <= 0 {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		if evict > 0 && m.jobs[id].terminal() {
			delete(m.jobs, id)
			evict--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// Get returns a job by ID.
func (m *JobManager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns all jobs sorted by ID (submission order).
func (m *JobManager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		// job-N: compare numerically via length-then-lexicographic.
		a, b := out[i].ID, out[k].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// gauges reports how many jobs are currently queued and running.
func (m *JobManager) gauges() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//hgedvet:ignore detrange order-insensitive count of job states
	for _, j := range m.jobs {
		switch j.State() {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
	}
	return queued, running
}

func (m *JobManager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

func (m *JobManager) runJob(job *Job) {
	defer close(job.done)
	ctx := job.ctx
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}

	finish := func(state JobState, stats hged.PredictStats, preds []hged.Prediction, errMsg string) {
		job.mu.Lock()
		job.state = state
		job.stats = stats
		job.preds = preds
		job.errMsg = errMsg
		job.finished = time.Now()
		job.mu.Unlock()
		m.metrics.jobFinished(state, stats)
	}

	if err := ctx.Err(); err != nil { // cancelled (or timed out) while queued
		state, msg := classifyRunError(err, job.Timeout)
		finish(state, hged.PredictStats{}, nil, msg)
		return
	}
	entry, ok := m.reg.Get(job.Graph)
	if !ok {
		finish(JobFailed, hged.PredictStats{}, nil, fmt.Sprintf("graph %q disappeared", job.Graph))
		return
	}
	// Pin the generation for the whole run: a prediction reflects one
	// consistent graph version even while mutation batches publish.
	gen := entry.Pin()
	defer gen.Unpin()
	p, err := hged.NewPredictor(gen.Graph(), job.Options)
	if err != nil {
		finish(JobFailed, hged.PredictStats{}, nil, err.Error())
		return
	}
	job.mu.Lock()
	job.state = JobRunning
	job.started = time.Now()
	job.mu.Unlock()

	preds, err := p.RunContext(ctx, func(done, total int) {
		job.mu.Lock()
		job.seedsDone, job.seedsTotal = done, total
		job.mu.Unlock()
	})
	stats := p.Stats()
	if err != nil {
		state, msg := classifyRunError(err, job.Timeout)
		finish(state, stats, nil, msg)
		return
	}
	finish(JobDone, stats, preds, "")
}

// classifyRunError maps a RunContext error to the job's terminal state: an
// exceeded per-job deadline is a failure (the job never got cancelled, it
// ran out of its Timeout), an explicit cancellation is JobCancelled, and
// anything else is a plain failure.
func classifyRunError(err error, timeout time.Duration) (JobState, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return JobFailed, fmt.Sprintf("timed out after %s", timeout)
	case errors.Is(err, context.Canceled):
		return JobCancelled, err.Error()
	default:
		return JobFailed, err.Error()
	}
}

// Close stops accepting new jobs, waits for queued and running jobs to
// finish until ctx is done, then cancels whatever is still in flight and
// waits for the workers to exit. It is safe to call once.
func (m *JobManager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		// Drain deadline passed: abort the in-flight jobs and wait for
		// the workers to observe the cancellation.
		err = ctx.Err()
		m.baseCancel()
		<-drained
	}
	m.baseCancel()
	return err
}
