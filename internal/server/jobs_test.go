package server_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"hged"
	"hged/internal/server"
)

// bigGraph is slow enough (~1s sequential, ~500 seed boundaries) that a
// cancellation request reliably lands while the job is running.
func bigGraph(t *testing.T) *hged.Hypergraph {
	t.Helper()
	g, _, err := hged.GeneratePlanted(hged.GenConfig{Nodes: 500, Edges: 800, Seed: 3, NodeLabelCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pollJob(t *testing.T, env *testEnv, id string, want func(state string) bool, deadline time.Duration) string {
	t.Helper()
	var job struct {
		State      string `json:"state"`
		SeedsDone  int    `json:"seedsDone"`
		SeedsTotal int    `json:"seedsTotal"`
	}
	stop := time.Now().Add(deadline)
	for {
		if code := env.do("GET", "/v1/jobs/"+id, nil, &job); code != 200 {
			t.Fatalf("poll %s status %d", id, code)
		}
		if want(job.State) {
			return job.State
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s stuck in %q (%d/%d)", id, job.State, job.SeedsDone, job.SeedsTotal)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

// TestJobCancellation cancels one running and one queued job and observes
// both reach the cancelled state, with the running one stopped mid-run.
func TestJobCancellation(t *testing.T) {
	env := newTestEnv(t, server.Config{Workers: 1, QueueDepth: 4})
	if _, err := env.srv.Registry().Add("big", bigGraph(t), "builtin"); err != nil {
		t.Fatal(err)
	}

	var a, b struct {
		ID string `json:"id"`
	}
	body := map[string]any{"lambda": 3, "tau": 7}
	if code := env.do("POST", "/v1/graphs/big/predict", body, &a); code != 202 {
		t.Fatalf("submit A status %d", code)
	}
	// With one worker the second job stays queued behind the first.
	if code := env.do("POST", "/v1/graphs/big/predict", body, &b); code != 202 {
		t.Fatalf("submit B status %d", code)
	}
	pollJob(t, env, a.ID, func(s string) bool { return s == "running" }, 30*time.Second)

	if code := env.do("DELETE", "/v1/jobs/"+b.ID, nil, nil); code != 202 {
		t.Fatalf("cancel B status %d", code)
	}
	if code := env.do("DELETE", "/v1/jobs/"+a.ID, nil, nil); code != 202 {
		t.Fatalf("cancel A status %d", code)
	}
	if st := pollJob(t, env, a.ID, terminal, 30*time.Second); st != "cancelled" {
		t.Fatalf("job A ended %q, want cancelled", st)
	}
	if st := pollJob(t, env, b.ID, terminal, 30*time.Second); st != "cancelled" {
		t.Fatalf("job B ended %q, want cancelled", st)
	}

	// The running job must have stopped before finishing its seeds.
	var av struct {
		SeedsDone  int `json:"seedsDone"`
		SeedsTotal int `json:"seedsTotal"`
	}
	env.do("GET", "/v1/jobs/"+a.ID, nil, &av)
	if av.SeedsTotal == 0 || av.SeedsDone >= av.SeedsTotal {
		t.Fatalf("job A ran to completion (%d/%d) despite cancellation", av.SeedsDone, av.SeedsTotal)
	}

	var metrics struct {
		Jobs struct {
			Submitted int64 `json:"submitted"`
			Cancelled int64 `json:"cancelled"`
		} `json:"jobs"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Jobs.Submitted != 2 || metrics.Jobs.Cancelled != 2 {
		t.Fatalf("job counters = %+v", metrics.Jobs)
	}
}

func TestJobQueueFull(t *testing.T) {
	env := newTestEnv(t, server.Config{Workers: 1, QueueDepth: 1})
	if _, err := env.srv.Registry().Add("big", bigGraph(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	var a struct {
		ID string `json:"id"`
	}
	body := map[string]any{"lambda": 3, "tau": 7}
	if code := env.do("POST", "/v1/graphs/big/predict", body, &a); code != 202 {
		t.Fatalf("submit A status %d", code)
	}
	pollJob(t, env, a.ID, func(s string) bool { return s == "running" }, 30*time.Second)
	// A is running, so B occupies the single queue slot and C is rejected.
	if code := env.do("POST", "/v1/graphs/big/predict", body, nil); code != 202 {
		t.Fatal("submit B should queue")
	}
	if code := env.do("POST", "/v1/graphs/big/predict", body, nil); code != 429 {
		t.Fatalf("submit C status %d, want 429", code)
	}
}

// goroutineSettle waits for the goroutine count to drop back to the
// baseline (plus slack for runtime helpers), dumping stacks on failure.
func goroutineSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			_ = pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", runtime.NumGoroutine(), base, sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdownDrains is the SIGTERM path: Close waits for the
// in-flight job to finish, further submissions are refused, and no worker
// goroutines are left behind.
func TestGracefulShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	s := server.New(server.Config{Workers: 2})
	g, _, err := hged.GeneratePlanted(hged.GenConfig{Nodes: 40, Edges: 60, Seed: 5, NodeLabelCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("planted", g, "builtin"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	job, err := s.Jobs().Submit("planted", hged.PredictOptions{Lambda: 2, Tau: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("Close returned before the job finished")
	}
	if st := job.State(); st != server.JobDone {
		t.Fatalf("job drained to %q, want done", st)
	}
	if _, err := s.Jobs().Submit("planted", hged.PredictOptions{Lambda: 2, Tau: 3}, 0); err != server.ErrDraining {
		t.Fatalf("post-close submit error = %v, want ErrDraining", err)
	}
	ts.Close()
	goroutineSettle(t, base)
}

// TestShutdownCancelsPastDeadline: when the drain deadline expires with a
// job still running, Close cancels it and still exits cleanly.
func TestShutdownCancelsPastDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	s := server.New(server.Config{Workers: 1})
	if _, err := s.Registry().Add("big", bigGraph(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	job, err := s.Jobs().Submit("big", hged.PredictOptions{Lambda: 3, Tau: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running so the drain deadline is the thing
	// that interrupts it.
	for deadline := time.Now().Add(30 * time.Second); job.State() != server.JobRunning; {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close error = %v, want deadline exceeded", err)
	}
	// Close waited for the workers, so the job is terminal.
	select {
	case <-job.Done():
	default:
		t.Fatal("Close returned with the job still in flight")
	}
	if st := job.State(); st != server.JobCancelled {
		t.Fatalf("job ended %q, want cancelled", st)
	}
	goroutineSettle(t, base)
}
