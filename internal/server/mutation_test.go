package server_test

import (
	"strings"
	"testing"
	"time"

	"hged"
	"hged/internal/server"
)

// twoCompHG renders a two-component graph ({0..3} and {4..7}, one
// hyperedge each) in the .hg upload format.
func twoCompHG(t *testing.T) string {
	t.Helper()
	g := hged.NewLabeledHypergraph([]hged.Label{1, 1, 2, 2, 1, 1, 2, 2})
	g.AddEdge(100, 0, 1, 2, 3)
	g.AddEdge(100, 4, 5, 6, 7)
	var sb strings.Builder
	if err := hged.WriteHG(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

type mutateResponse struct {
	Name         string     `json:"name"`
	Generation   int64      `json:"generation"`
	AddedNodes   []int      `json:"addedNodes"`
	AddedEdges   []int      `json:"addedEdges"`
	RemovedEdges int        `json:"removedEdges"`
	Stats        hged.Stats `json:"stats"`
}

func TestMutationEndpoint(t *testing.T) {
	env := newTestEnv(t, server.Config{})

	// Add two labeled nodes and a hyperedge over one old and both new ones.
	var mr mutateResponse
	code := env.do("POST", "/v1/graphs/fig1/edges", map[string]any{
		"addNodes": []map[string]any{{"label": 9}, {"label": 9}},
		"addEdges": []map[string]any{{"label": 200, "nodes": []int{0, 8, 9}}},
	}, &mr)
	if code != 200 {
		t.Fatalf("mutate status %d", code)
	}
	if mr.Generation != 2 || len(mr.AddedNodes) != 2 || mr.AddedNodes[0] != 8 || len(mr.AddedEdges) != 1 || mr.AddedEdges[0] != 4 {
		t.Fatalf("mutate response = %+v", mr)
	}
	if mr.Stats.Nodes != 10 || mr.Stats.Edges != 5 {
		t.Fatalf("post-mutation stats = %+v, want 10 nodes / 5 hyperedges", mr.Stats)
	}

	// Reads see the new generation: distance between the two new nodes.
	var dist struct {
		Distance int `json:"distance"`
		Exact    bool
	}
	if code := env.do("POST", "/v1/graphs/fig1/distance", map[string]any{"u": 8, "v": 9}, &dist); code != 200 {
		t.Fatalf("distance status %d", code)
	}
	if dist.Distance != 0 {
		t.Fatalf("σ(8, 9) = %d, want 0 (isomorphic ego networks)", dist.Distance)
	}

	// Remove the edge just added; node count is untouched.
	code = env.do("POST", "/v1/graphs/fig1/edges", map[string]any{"removeEdges": []int{4}}, &mr)
	if code != 200 || mr.Generation != 3 || mr.Stats.Edges != 4 || mr.RemovedEdges != 1 {
		t.Fatalf("removal: status %d response %+v", code, mr)
	}

	// Single-edge DELETE route.
	code = env.do("DELETE", "/v1/graphs/fig1/edges/3", nil, &mr)
	if code != 200 || mr.Generation != 4 || mr.Stats.Edges != 3 {
		t.Fatalf("edge delete: status %d response %+v", code, mr)
	}

	// Invalid batches roll back atomically: the failed remove aborts the
	// whole batch, including the node added before it.
	for _, bad := range []map[string]any{
		{},
		{"addEdges": []map[string]any{{"label": 1, "nodes": []int{}}}},
		{"addEdges": []map[string]any{{"label": 1, "nodes": []int{99}}}},
		{"addNodes": []map[string]any{{"label": 1}}, "removeEdges": []int{42}},
		{"removeEdges": []int{1, 1}},
	} {
		if code := env.do("POST", "/v1/graphs/fig1/edges", bad, nil); code != 400 {
			t.Fatalf("bad mutation %v: status %d, want 400", bad, code)
		}
	}
	var stats struct {
		Generation int64      `json:"generation"`
		Stats      hged.Stats `json:"stats"`
	}
	if code := env.do("GET", "/v1/graphs/fig1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Generation != 4 || stats.Stats.Nodes != 10 || stats.Stats.Edges != 3 {
		t.Fatalf("after failed batches: %+v, want generation 4 / 10 nodes / 3 hyperedges", stats)
	}

	if code := env.do("POST", "/v1/graphs/ghost/edges", map[string]any{"removeEdges": []int{0}}, nil); code != 404 {
		t.Fatalf("mutating unknown graph: status %d, want 404", code)
	}
}

func TestSigmaCacheInvalidatedByMutation(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "twocomp", "data": twoCompHG(t)}, nil); code != 201 {
		t.Fatalf("upload status %d", code)
	}
	type sigmaResp struct {
		Results []struct {
			U, V     int
			Distance int
			Within   bool
		} `json:"results"`
		Cache struct {
			PairsComputed int
			PairsCached   int
		} `json:"cache"`
	}
	query := map[string]any{"pairs": [][2]int{{0, 1}, {4, 5}}}
	var r1, r2, r3 sigmaResp
	if code := env.do("POST", "/v1/graphs/twocomp/sigma", query, &r1); code != 200 {
		t.Fatalf("sigma status %d", code)
	}
	if r1.Cache.PairsComputed != 2 || r1.Cache.PairsCached != 0 {
		t.Fatalf("cold cache = %+v, want 2 computed", r1.Cache)
	}
	if code := env.do("POST", "/v1/graphs/twocomp/sigma", query, &r2); code != 200 {
		t.Fatalf("sigma status %d", code)
	}
	if r2.Cache.PairsComputed != 2 || r2.Cache.PairsCached != 2 {
		t.Fatalf("warm cache = %+v, want 2 computed / 2 hits", r2.Cache)
	}

	// Mutate the first component only: (0,1) must be recomputed, (4,5)
	// must still be served from the carried-over cache.
	if code := env.do("POST", "/v1/graphs/twocomp/edges", map[string]any{
		"addEdges": []map[string]any{{"label": 300, "nodes": []int{0, 1}}},
	}, nil); code != 200 {
		t.Fatalf("mutate status %d", code)
	}
	if code := env.do("POST", "/v1/graphs/twocomp/sigma", query, &r3); code != 200 {
		t.Fatalf("sigma status %d", code)
	}
	if r3.Cache.PairsComputed != 3 {
		t.Fatalf("post-mutation computed = %d, want 3 (only the touched pair recomputed)", r3.Cache.PairsComputed)
	}
	if r3.Cache.PairsCached != 3 {
		t.Fatalf("post-mutation hits = %d, want 3 (untouched pair carried across the generation)", r3.Cache.PairsCached)
	}
	if r3.Results[1].Distance != r1.Results[1].Distance {
		t.Fatalf("untouched σ(4,5) drifted: %d → %d", r1.Results[1].Distance, r3.Results[1].Distance)
	}
}

func TestDeleteGraph(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	// Warm the search index over both graphs, then delete one.
	var res struct {
		Matches []struct {
			Name     string `json:"name"`
			Distance int
		} `json:"matches"`
	}
	search := map[string]any{"query": map[string]any{"name": "fig1"}, "tau": 0}
	if code := env.do("POST", "/v1/search", search, &res); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(res.Matches) != 1 || res.Matches[0].Name != "fig1" {
		t.Fatalf("warm search = %+v", res.Matches)
	}
	if code := env.do("DELETE", "/v1/graphs/planted", nil, nil); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if code := env.do("GET", "/v1/graphs/planted/stats", nil, nil); code != 404 {
		t.Fatalf("stats after delete: status %d, want 404", code)
	}
	if code := env.do("DELETE", "/v1/graphs/planted", nil, nil); code != 404 {
		t.Fatalf("double delete: status %d, want 404", code)
	}
	var list struct {
		Graphs []struct{ Name string } `json:"graphs"`
	}
	if code := env.do("GET", "/v1/graphs", nil, &list); code != 200 || len(list.Graphs) != 1 {
		t.Fatalf("list after delete = %+v (status %d)", list.Graphs, code)
	}
	// The search corpus drops the deleted graph on its next fingerprint
	// check; the freed name is immediately reusable.
	if code := env.do("POST", "/v1/search", search, &res); code != 200 {
		t.Fatalf("search status %d", code)
	}
	for _, m := range res.Matches {
		if m.Name == "planted" {
			t.Fatalf("deleted graph still matched: %+v", res.Matches)
		}
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "planted", "data": twoCompHG(t)}, nil); code != 201 {
		t.Fatalf("re-upload freed name: status %d", code)
	}
}

// TestReuploadedNameInvalidatesIndex pins the registration-epoch fix:
// deleting a graph and re-registering its name with different content —
// with no search in between — must not be served from the index built over
// the deleted graph, even though the re-registered entry restarts at
// generation 1 and the (name, generation) corpus set is identical.
func TestReuploadedNameInvalidatesIndex(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	var res struct {
		Matches []struct {
			Name     string `json:"name"`
			Distance int
		} `json:"matches"`
	}
	// Warm the index over {fig1: gen 1, planted: gen 1}.
	warm := map[string]any{"query": map[string]any{"name": "fig1"}, "tau": 0}
	if code := env.do("POST", "/v1/search", warm, &res); code != 200 || len(res.Matches) != 1 {
		t.Fatalf("warm search = %+v (status %d)", res.Matches, code)
	}
	// Replace fig1 with different content under the same name; the corpus
	// returns to {fig1: gen 1, planted: gen 1}, so without epochs the stale
	// fingerprint would collide and the cached index would keep serving the
	// deleted graph's content.
	if code := env.do("DELETE", "/v1/graphs/fig1", nil, nil); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if code := env.do("POST", "/v1/graphs", map[string]any{"name": "fig1", "data": twoCompHG(t)}, nil); code != 201 {
		t.Fatalf("re-upload status %d", code)
	}
	// An exact (τ=0) search for the NEW content must match it; the stale
	// index would verify against the deleted graph and return no match.
	fresh := map[string]any{"query": map[string]any{"data": twoCompHG(t)}, "tau": 0}
	if code := env.do("POST", "/v1/search", fresh, &res); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(res.Matches) != 1 || res.Matches[0].Name != "fig1" || res.Matches[0].Distance != 0 {
		t.Fatalf("search after re-upload = %+v, want fig1 at distance 0", res.Matches)
	}
}

// TestGraphNameRejectsControlBytes keeps fingerprint separators unforgeable:
// names carrying control bytes (including the \x00 / \x1e field and record
// separators) are rejected at registration.
func TestGraphNameRejectsControlBytes(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	for _, name := range []string{"a\x00b", "a\x1eb", "a\tb", "a b", "\x7f"} {
		code := env.do("POST", "/v1/graphs", map[string]any{"name": name, "data": twoCompHG(t)}, nil)
		if code != 400 {
			t.Fatalf("upload with name %q: status %d, want 400", name, code)
		}
	}
}

// TestSearchServesStaleDuringRebuild pins the acceptance criterion: while
// one flight rebuilds the index after a mutation, an allowStale search is
// answered from the previous generation's index without blocking, and the
// default search waits for — and sees — the fresh corpus.
func TestSearchServesStaleDuringRebuild(t *testing.T) {
	env := newTestEnv(t, server.Config{})
	// The query is an inline copy of the ORIGINAL fig1, so it matches the
	// pre-mutation corpus entry at distance 0 and the mutated one at 3.
	var fig1HG strings.Builder
	if err := hged.WriteHG(&fig1HG, hged.Fig1()); err != nil {
		t.Fatal(err)
	}
	search := func(allowStale bool) (int, []string) {
		var res struct {
			Matches []struct {
				Name string `json:"name"`
			} `json:"matches"`
		}
		code := env.do("POST", "/v1/search", map[string]any{
			"query": map[string]any{"data": fig1HG.String()}, "tau": 2, "allowStale": allowStale,
		}, &res)
		names := make([]string, len(res.Matches))
		for i, m := range res.Matches {
			names[i] = m.Name
		}
		return code, names
	}
	if code, names := search(false); code != 200 || len(names) != 1 || names[0] != "fig1" {
		t.Fatalf("warm-up search = %v (status %d)", names, code)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	env.srv.SetSearchBuildHook(func() {
		select {
		case <-entered:
		default:
			close(entered)
		}
		<-release
	})

	// Duplicate fig1's hyperedges: after this mutation fig1 is within τ=2
	// of nothing, so a fresh index returns no τ=2 match besides itself...
	if code := env.do("POST", "/v1/graphs/fig1/edges", map[string]any{
		"addEdges": []map[string]any{
			{"label": 1, "nodes": []int{0, 1, 2}},
			{"label": 2, "nodes": []int{3, 4, 5}},
			{"label": 3, "nodes": []int{5, 6}},
		},
	}, nil); code != 200 {
		t.Fatalf("mutate status %d", code)
	}

	// ...but the stale index still answers — instantly, from the previous
	// generation — while the rebuild flight is parked inside the hook.
	done := make(chan struct{})
	var staleCode int
	var staleNames []string
	go func() {
		defer close(done)
		staleCode, staleNames = search(true)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("allowStale search blocked on the rebuild")
	}
	<-entered // the flight is in progress (parked in the hook)
	if staleCode != 200 || len(staleNames) != 1 || staleNames[0] != "fig1" {
		t.Fatalf("stale search = %v (status %d)", staleNames, staleCode)
	}
	// A second stale search during the same flight must not start another.
	if code, names := search(true); code != 200 || len(names) != 1 {
		t.Fatalf("second stale search = %v (status %d)", names, code)
	}
	close(release)

	// The default (fresh-wait) search blocks for the flight and then serves
	// the mutated corpus, where the original fig1 no longer matches at τ=2
	// — the observable difference between the stale and fresh indexes.
	if code, names := search(false); code != 200 || len(names) != 0 {
		t.Fatalf("fresh search = %v (status %d), want no τ=2 match", names, code)
	}

	var metrics struct {
		Versions struct {
			GenerationsPublished int64 `json:"generationsPublished"`
			PinnedReaders        int64 `json:"pinnedReaders"`
			MutationBatches      int64 `json:"mutationBatches"`
			EdgesAdded           int64 `json:"edgesAdded"`
			IndexIncrements      int64 `json:"indexIncrements"`
			IndexRowsReused      int64 `json:"indexRowsReused"`
			StaleSearches        int64 `json:"staleSearches"`
		} `json:"versions"`
	}
	if code := env.do("GET", "/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	v := metrics.Versions
	if v.GenerationsPublished < 3 || v.MutationBatches != 1 || v.EdgesAdded != 3 {
		t.Fatalf("versions churn = %+v", v)
	}
	if v.StaleSearches < 2 {
		t.Fatalf("staleSearches = %d, want ≥ 2", v.StaleSearches)
	}
	if v.IndexIncrements < 1 || v.IndexRowsReused < 1 {
		t.Fatalf("incremental refresh not recorded: %+v", v)
	}
	if v.PinnedReaders != 0 {
		t.Fatalf("pinnedReaders = %d after idle, want 0", v.PinnedReaders)
	}
}
