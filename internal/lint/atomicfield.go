package lint

import (
	"go/ast"
	"go/token"
)

// Atomicfield enforces all-or-nothing atomicity: once any code in the
// module touches a struct field or package-level variable through a
// package-level sync/atomic function (atomic.AddInt64(&x.n, 1), ...),
// every other access to it must be atomic too. A single plain read racing
// an atomic write is still a data race — the Go memory model gives mixed
// access no guarantees, and on 32-bit targets a plain 64-bit read can tear.
//
// The census is global (the whole Check run, all packages), so marking a
// field atomic in one package catches a plain access in another; reports
// land at the plain access. The typed atomics (atomic.Int64 & friends) are
// immune by construction — the module prefers them for exactly that
// reason — so this rule only polices the legacy pointer-based API.
//
// Accesses that are provably pre-publication (init before any goroutine
// can see the value) suppress with //hgedvet:ignore atomicfield.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags plain accesses to fields that are accessed via sync/atomic elsewhere",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) {
	if pass.Prog == nil || len(pass.Prog.atomicFields) == 0 {
		return
	}
	for _, f := range pass.Files {
		// Collect the &-operands of atomic calls in this file: those are
		// the sanctioned accesses and must not be reported.
		sanctioned := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					operand := ast.Unparen(u.X)
					sanctioned[operand] = true
					if sel, ok := operand.(*ast.SelectorExpr); ok {
						sanctioned[sel.Sel] = true // qualified package vars resolve via the Sel ident
					}
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok || sanctioned[expr] {
				return true
			}
			switch expr.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			key, ok := fieldKey(pass.Info, expr)
			if !ok {
				return true
			}
			at, marked := pass.Prog.atomicFields[key]
			if !marked {
				return true
			}
			pass.Reportf(expr.Pos(), "%s is accessed via sync/atomic (e.g. %s:%d) but read or written plainly here: mixed access is a data race; use the atomic API on every access or switch the field to a typed atomic", key, at.Filename, at.Line)
			return true
		})
	}
}
