package lint

import (
	"go/ast"
	"go/token"
)

// Ctxpoll enforces the cancellation contract on the solver core: every
// state-expansion loop must poll Options.Context. The core's convention
// (PR 3) is that expansion work increments a counter named `expanded` (BFS,
// DFS, HEU main loops) or `spent` (the Algorithm-2 permutation enumeration)
// and consults opts.cancelled(counter) — the throttled poll that checks the
// context every cancelCheckEvery increments.
//
// The rule keys on that convention: a function (including its nested
// closures, where DFS does its recursion) that increments an expansion
// counter but never calls a cancellation poll — a method named `cancelled`
// or `ctxCancelled`, or Context.Err directly — is flagged. A long-running
// solve inside such a loop would be unkillable: HTTP clients disconnecting,
// job cancellation, and server drain all rely on the poll reaching every
// expansion site.
//
// Since the interprocedural layer, the poll may also live in a helper: a
// call to any module function whose summary carries FactPollsCancel counts,
// so hoisting the throttled check into a shared routine does not trip the
// rule.
var Ctxpoll = &Analyzer{
	Name:     "ctxpoll",
	Doc:      "flags expansion-counting solver loops that never poll Options.Context",
	Packages: []string{"hged/internal/core"},
	Run:      runCtxpoll,
}

// expansionCounters are the names the solver core uses for its per-run
// expansion budgets; incrementing one marks the surrounding function as a
// state-expansion loop.
var expansionCounters = map[string]bool{"expanded": true, "spent": true}

// pollNames are the calls accepted as a cancellation poll.
var pollNames = map[string]bool{"cancelled": true, "ctxCancelled": true, "Err": true}

func runCtxpoll(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var incs []token.Pos
			hasPoll := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.IncDecStmt:
					if st.Tok == token.INC && expansionCounters[counterName(st.X)] {
						incs = append(incs, st.Pos())
					}
				case *ast.CallExpr:
					if sel, ok := st.Fun.(*ast.SelectorExpr); ok && pollNames[sel.Sel.Name] {
						hasPoll = true
					}
					if !hasPoll && pass.Prog != nil {
						if id, ok := calleeID(pass.Info, st); ok {
							if fn, ok := pass.Prog.Funcs[id]; ok && fn.Facts&FactPollsCancel != 0 {
								hasPoll = true
							}
						}
					}
				}
				return true
			})
			if len(incs) > 0 && !hasPoll {
				pass.Reportf(incs[0], "expansion counter incremented but the function never polls cancellation: call opts.cancelled(counter) in the loop so Options.Context can stop the solve")
			}
		}
	}
}

// counterName extracts the counter identifier from the increment operand:
// a bare identifier, a field selector (s.expanded), or a pointer
// dereference (*steps).
func counterName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.StarExpr:
		return counterName(x.X)
	case *ast.ParenExpr:
		return counterName(x.X)
	}
	return ""
}
