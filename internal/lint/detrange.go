package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrange flags `range` over a map in determinism-critical packages. Map
// iteration order is randomized per run, so any computation whose output
// depends on visit order — building a slice, emitting text, choosing a
// "first" element — silently breaks the byte-identical-output contracts
// (parallel search merges, edit-path serialization, DOT rendering).
//
// Two idioms are exempt without suppression:
//
//   - collect-and-sort: the loop body only appends map elements to a
//     slice, and a later statement in the same block passes that slice to
//     a sort call (sort.Slice(out, ...), sort.Ints(keys), sortMatches(out), ...);
//   - anything justified with //hgedvet:ignore detrange <reason> — for
//     genuinely order-insensitive folds (counting, summing, copying into
//     another keyed map).
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration in determinism-critical packages unless the elements are collected and sorted",
	Packages: []string{
		"hged/internal/core",
		"hged/internal/search",
		"hged/internal/pivot",
		"hged/internal/predict",
		"hged/internal/server",
		"hged/internal/viz",
	},
	Run: runDetrange,
}

func runDetrange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				rs := asRangeStmt(st)
				if rs == nil {
					continue
				}
				t := pass.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					continue
				}
				if collectedAndSorted(pass, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "map iteration order is nondeterministic: collect the elements and sort them in this block, or add //hgedvet:ignore detrange <why order cannot matter>")
			}
			return true
		})
	}
}

// asRangeStmt unwraps labels and returns st as a range statement, or nil.
func asRangeStmt(st ast.Stmt) *ast.RangeStmt {
	for {
		if l, ok := st.(*ast.LabeledStmt); ok {
			st = l.Stmt
			continue
		}
		rs, _ := st.(*ast.RangeStmt)
		return rs
	}
}

// collectedAndSorted reports whether rs merely collects map elements into
// slices (every body statement is `x = append(x, ...)`) that a following
// statement in the same block sorts.
func collectedAndSorted(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	targets := make(map[types.Object]bool)
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	for _, st := range rest {
		if sortsAny(pass, st, targets) {
			return true
		}
	}
	return false
}

// sortsAny reports whether st is a call with "sort" in its name that takes
// one of the collected slices as an argument.
func sortsAny(pass *Pass, st ast.Stmt, targets map[types.Object]bool) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = exprName(fn.X) + "." + fn.Sel.Name
	default:
		return false
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && targets[pass.Info.Uses[id]] {
			return true
		}
	}
	return false
}

func exprName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
