package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis. Only
// non-test files are loaded: the contracts hgedvet enforces are production
// invariants, and tests legitimately iterate maps or fake clocks.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// exportLookup resolves import paths to compiled export data via the go
// command's build cache, so type-checking a target package never requires
// type-checking its dependencies from source. Lookups are cached; misses
// (paths outside the preloaded dependency graph, e.g. a fixture package's
// std imports) fall back to one `go list -export` invocation each.
type exportLookup struct {
	mu    sync.Mutex
	files map[string]string
}

func newExportLookup() *exportLookup {
	return &exportLookup{files: make(map[string]string)}
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.files[path]
	l.mu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("lint: resolving export data for %s: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		l.mu.Lock()
		l.files[path] = file
		l.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("lint: no export data for %s", path)
	}
	return os.Open(file)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// Load resolves go package patterns (e.g. "./...", "hged/internal/core")
// through the go command, then parses and type-checks every matched
// package. Dependencies are consumed as export data, not source.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,GoFiles,Export,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	lk := newExportLookup()
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			lk.files[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir (every
// non-test .go file), under the given import path. Used for analyzer
// fixture packages, which live under testdata/ and are invisible to the
// go command's package patterns.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", newExportLookup().lookup)
	return typecheck(fset, imp, importPath, dir, files)
}

// LoadDirs parses and type-checks several fixture packages that may import
// each other, in the order given (dependencies first). Imports among the
// listed packages resolve to the already type-checked source packages;
// everything else falls back to export data, as in LoadDir. This is what
// lets the cross-package propagation fixtures exist: fixture packages live
// under testdata/ and have no export data for the gc importer to find.
func LoadDirs(dirs []struct{ Dir, ImportPath string }) ([]*Package, error) {
	fset := token.NewFileSet()
	chain := &chainImporter{
		loaded:   make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "gc", newExportLookup().lookup),
	}
	var pkgs []*Package
	for _, d := range dirs {
		entries, err := os.ReadDir(d.Dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		var files []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(d.Dir, name))
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", d.Dir)
		}
		pkg, err := typecheck(fset, chain, d.ImportPath, d.Dir, files)
		if err != nil {
			return nil, err
		}
		chain.loaded[d.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// chainImporter resolves imports against source-typechecked packages first,
// then the gc export-data importer.
type chainImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.loaded[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
