package lint

import (
	"go/ast"
	"go/token"
)

// Pinpair flags leaked MVCC generation pins: a call to a Pin method (any
// method named Pin whose result type has an Unpin method — Versioned.Pin,
// GraphEntry.Pin, and future backend wrappers share that shape) whose
// enclosing function does not unpin on every path. A leaked pin keeps the
// pinned generation's ego caches and CSR arenas alive forever: the MVCC
// layer frees an old generation only when its pin count drains to zero.
//
// Like poolpair, the check is lexical per function literal:
//
//   - `return x.Pin()` transfers ownership to the caller and is exempt
//     (the registry's GraphEntry.Pin wrapper is exactly this);
//   - a `defer gen.Unpin()` after the acquire (possibly inside a deferred
//     closure) covers all paths;
//   - otherwise every return after the acquire needs a release between the
//     acquire and the return, and at least one release must follow the
//     acquire. A release is a direct Unpin call or a call to a module
//     function whose summary carries FactUnpins (a helper that unpins for
//     the caller counts).
//
// Pins that intentionally outlive the function (stored into a struct whose
// owner releases them) suppress with //hgedvet:ignore pinpair.
var Pinpair = &Analyzer{
	Name: "pinpair",
	Doc:  "flags generation Pin calls without a matching Unpin on every path",
	Run:  runPinpair,
}

func runPinpair(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPinUnit(pass, body)
			}
			return true
		})
	}
}

func checkPinUnit(pass *Pass, body *ast.BlockStmt) {
	var (
		pins     []token.Pos
		releases []token.Pos
		returns  []token.Pos
		defers   []*ast.DeferStmt
		transfer = make(map[token.Pos]bool) // pins that are `return x.Pin()`
	)
	walkUnit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())
			for _, res := range st.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPinCall(pass.Info, call) {
					transfer[call.Pos()] = true
				}
			}
		case *ast.DeferStmt:
			defers = append(defers, st)
		case *ast.CallExpr:
			if isPinCall(pass.Info, st) {
				pins = append(pins, st.Pos())
			}
			if isPinRelease(pass, st) {
				releases = append(releases, st.Pos())
			}
		}
	})
	if len(pins) == 0 {
		return
	}

	for _, pin := range pins {
		if transfer[pin] {
			continue // ownership moves to the caller
		}
		if pinDeferCovers(pass, defers, pin) {
			continue
		}
		covered := false
		for _, rel := range releases {
			if rel > pin {
				covered = true
				break
			}
		}
		for _, ret := range returns {
			if ret <= pin {
				continue
			}
			ok := false
			for _, rel := range releases {
				if rel > pin && rel < ret {
					ok = true
					break
				}
			}
			if !ok {
				covered = false
			}
		}
		if !covered {
			pass.Reportf(pin, "generation pinned with no matching Unpin on every path: a leaked pin keeps the old generation's memory alive forever; defer gen.Unpin() right after pinning (//hgedvet:ignore pinpair if ownership transfers elsewhere)")
		}
	}
}

// isPinRelease recognizes a direct Unpin call or a call to a module
// function whose summary unpins on the caller's behalf.
func isPinRelease(pass *Pass, call *ast.CallExpr) bool {
	if isUnpinCall(pass.Info, call) {
		return true
	}
	if pass.Prog == nil {
		return false
	}
	id, ok := calleeID(pass.Info, call)
	if !ok {
		return false
	}
	fn, ok := pass.Prog.Funcs[id]
	return ok && fn.Facts&FactUnpins != 0
}

// pinDeferCovers reports whether a defer at or after the pin performs an
// unpin, directly or inside a deferred closure.
func pinDeferCovers(pass *Pass, defers []*ast.DeferStmt, pin token.Pos) bool {
	for _, d := range defers {
		if d.Pos() < pin {
			continue
		}
		found := false
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPinRelease(pass, call) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
