package lint

import (
	"go/ast"
	"go/types"
)

// Nondet forbids ambient sources of nondeterminism inside solver, search,
// and prediction code: wall-clock reads (time.Now / time.Since) and the
// process-global math/rand source (any package-level function — rand.Intn,
// rand.Shuffle, rand.Perm, ... — in math/rand or math/rand/v2).
//
// The check is interprocedural: a direct scan flags uses in the package
// itself, and a summary-driven pass flags calls into module functions
// whose transitive fact set includes FactWallClock — a time.Now two calls
// deep in an unscoped helper package is caught at the call site, with the
// witness chain in the message. Call sites whose callee lives in a package
// this same run analyzes directly are skipped: the finding surfaces once,
// at the callee.
//
// Randomness is still available, but it must flow through an explicitly
// seeded source (rand.New(rand.NewSource(opts.Seed))), the way Strategy 2's
// sampled upper bound does: that keeps every solve a pure function of its
// inputs, which the service's σ-cache, the bench snapshots, and the
// byte-identical parallel-search contract all rely on.
var Nondet = &Analyzer{
	Name: "nondet",
	Doc:  "forbids time.Now and the global math/rand source, directly or transitively, in solver/search/predict code",
	Packages: []string{
		"hged/internal/core",
		"hged/internal/search",
		"hged/internal/pivot",
		"hged/internal/predict",
	},
	Run: runNondet,
}

// NondetPerFile is the pre-interprocedural variant of Nondet — the direct
// syntactic scan only, with no summary propagation. It is not part of
// DefaultAnalyzers; it exists so tests can prove the differential: a
// wall-clock read hidden behind a cross-package call that this variant
// misses and Nondet catches.
var NondetPerFile = &Analyzer{
	Name:     "nondet",
	Doc:      "per-file nondet variant kept for differential testing",
	Packages: Nondet.Packages,
	Run:      runNondetLocal,
}

// allowedRand are the math/rand names that construct explicit sources
// rather than consuming the global one.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true,
}

func runNondet(pass *Pass) {
	runNondetLocal(pass)
	runNondetTransitive(pass)
}

// runNondetTransitive flags calls whose resolved callee transitively
// reaches the wall clock or the global rand source, per the call graph's
// fact summaries. Only callees outside this run's directly analyzed scope
// are reported here, so each root cause surfaces exactly once.
func runNondetTransitive(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := calleeID(pass.Info, call)
			if !ok {
				return true
			}
			fn, ok := pass.Prog.Funcs[id]
			if !ok || fn.Facts&FactWallClock == 0 {
				return true
			}
			if fn.Pkg.ImportPath == pass.Pkg.Path() {
				// Same package: the defining function is flagged directly
				// (or at its own offending call site).
				return true
			}
			if pass.analyzedElsewhere(fn.Pkg.ImportPath) {
				return true
			}
			pass.Reportf(call.Pos(), "call to %s transitively reads the wall clock or global rand (%s): solver results must be pure functions of their inputs", displayName(id), pass.Prog.wallClockChain(id))
			return true
		})
	}
}

func runNondetLocal(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pkgName.Imported().Path(); path {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock: solver results must be pure functions of their inputs; thread timestamps in from the caller", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s uses the process-global random source: derive randomness from an explicitly seeded rand.New(rand.NewSource(seed)) so solves stay reproducible", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
