package lint

import (
	"go/ast"
	"go/types"
)

// Nondet forbids ambient sources of nondeterminism inside solver, search,
// and prediction code: wall-clock reads (time.Now / time.Since) and the
// process-global math/rand source (any package-level function — rand.Intn,
// rand.Shuffle, rand.Perm, ... — in math/rand or math/rand/v2).
//
// Randomness is still available, but it must flow through an explicitly
// seeded source (rand.New(rand.NewSource(opts.Seed))), the way Strategy 2's
// sampled upper bound does: that keeps every solve a pure function of its
// inputs, which the service's σ-cache, the bench snapshots, and the
// byte-identical parallel-search contract all rely on.
var Nondet = &Analyzer{
	Name: "nondet",
	Doc:  "forbids time.Now and the global math/rand source in solver/search/predict code",
	Packages: []string{
		"hged/internal/core",
		"hged/internal/search",
		"hged/internal/pivot",
		"hged/internal/predict",
	},
	Run: runNondet,
}

// allowedRand are the math/rand names that construct explicit sources
// rather than consuming the global one.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true,
}

func runNondet(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pkgName.Imported().Path(); path {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock: solver results must be pure functions of their inputs; thread timestamps in from the caller", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s uses the process-global random source: derive randomness from an explicitly seeded rand.New(rand.NewSource(seed)) so solves stay reproducible", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
