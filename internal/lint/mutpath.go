package lint

import (
	"go/ast"
	"go/types"
)

// mutpathMethods are the Hypergraph mutation methods that publish no
// generation. Batch has same-named wrappers; only the Hypergraph receivers
// are flagged.
var mutpathMethods = map[string]bool{
	"AddNode":      true,
	"AddNodes":     true,
	"AddEdge":      true,
	"RemoveEdge":   true,
	"RemoveNode":   true,
	"SetNodeLabel": true,
	"SetEdgeLabel": true,
}

// Mutpath flags direct Hypergraph mutation calls in the server package.
// Registry graphs are MVCC-versioned: every mutation must flow through a
// GraphBatch (GraphEntry.Mutate) so a new generation is published atomically
// and derived state — σ predictors, memoized stats, search-index signature
// rows — is invalidated. A direct AddEdge/RemoveEdge on a published
// *Hypergraph mutates a graph that pinned readers and the search index
// believe is immutable, and bumps no generation, so every cache keyed on one
// silently serves stale answers. Construction of a graph that is not yet
// published (pre-registry, pre-Versioned) is legitimate; justify those sites
// with //hgedvet:ignore mutpath <reason>.
var Mutpath = &Analyzer{
	Name: "mutpath",
	Doc:  "flags direct Hypergraph mutation calls in the server; mutations must go through a versioned GraphBatch so generations bump and caches invalidate",
	Packages: []string{
		"hged/internal/server",
	},
	Run: runMutpath,
}

func runMutpath(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !mutpathMethods[sel.Sel.Name] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok {
				return true // package-qualified call, not a method
			}
			if isHypergraphPtr(s.Recv()) {
				pass.Reportf(call.Pos(), "direct %s on a *Hypergraph bypasses MVCC: mutate through a GraphBatch (GraphEntry.Mutate) so a generation is published and derived caches invalidate, or add //hgedvet:ignore mutpath <why the graph is not yet published>", sel.Sel.Name)
			}
			return true
		})
	}
}

// isHypergraphPtr reports whether t is *hypergraph.Hypergraph (the facade
// alias hged.Hypergraph resolves to the same named type).
func isHypergraphPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Hypergraph" && obj.Pkg() != nil && obj.Pkg().Path() == "hged/internal/hypergraph"
}
