package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hged/internal/lint"
)

// wantRe matches golden expectation comments in fixture sources:
//
//	for k := range m { // want detrange "map iteration order"
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type expectation struct {
	file string
	line int
	rule string
	re   *regexp.Regexp
}

// readExpectations scans every fixture file for // want comments.
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[2], err)
				}
				want = append(want, expectation{file: path, line: i + 1, rule: m[1], re: re})
			}
		}
	}
	return want
}

// unscoped returns the named default analyzer with package scoping removed,
// so it runs on fixture packages regardless of their import path.
func unscoped(t *testing.T, rule string) *lint.Analyzer {
	t.Helper()
	orig := lint.ByName(rule)
	if orig == nil {
		t.Fatalf("no analyzer named %q", rule)
	}
	a := *orig
	a.Packages = nil
	return &a
}

func checkFixture(t *testing.T, dir, rule string) []lint.Diagnostic {
	t.Helper()
	pkg, err := lint.LoadDir(dir, rule)
	if err != nil {
		t.Fatal(err)
	}
	return lint.Check([]*lint.Package{pkg}, []*lint.Analyzer{unscoped(t, rule)})
}

// TestAnalyzerFixtures asserts, for each analyzer, the exact diagnostic set
// over its testdata fixture: every // want comment matches exactly one
// diagnostic and no diagnostic goes unexpected — including that the
// fixtures' suppression comments silence their sites.
func TestAnalyzerFixtures(t *testing.T) {
	for _, rule := range []string{
		"detrange", "nondet", "poolpair", "ctxpoll", "hotmap", "mutpath",
		"pinpair", "lockhold", "atomicfield", "ctxdetach",
	} {
		t.Run(rule, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", rule)
			diags := checkFixture(t, dir, rule)
			want := readExpectations(t, dir)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want expectations", dir)
			}

			matched := make([]bool, len(diags))
			for _, w := range want {
				found := false
				for i, d := range diags {
					if matched[i] || d.Line != w.line || d.Rule != w.rule || filepath.Base(d.Path) != filepath.Base(w.file) {
						continue
					}
					if !w.re.MatchString(d.Message) {
						continue
					}
					matched[i] = true
					found = true
					break
				}
				if !found {
					t.Errorf("%s:%d: want %s %q, got no matching diagnostic", w.file, w.line, w.rule, w.re)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestSuppressionRemoval rebuilds a fixture with one suppression comment
// stripped and asserts the suppressed finding resurfaces — the property the
// CI gate relies on (removing any //hgedvet:ignore must fail the build).
func TestSuppressionRemoval(t *testing.T) {
	cases := []struct {
		rule   string
		marker string // the suppression line to strip
	}{
		{"detrange", "//hgedvet:ignore detrange commutative sum"},
		{"nondet", "//hgedvet:ignore nondet debug-only timing"},
		{"poolpair", "//hgedvet:ignore poolpair ownership transfers"},
		{"ctxpoll", "//hgedvet:ignore ctxpoll bounded to 64 iterations"},
		{"hotmap", "//hgedvet:ignore hotmap string keys have no dense id space"},
		{"mutpath", "//hgedvet:ignore mutpath graph is still private"},
		{"pinpair", "//hgedvet:ignore pinpair pin ownership moves into the holder"},
		{"lockhold", "//hgedvet:ignore lockhold bounded handoff"},
		{"atomicfield", "//hgedvet:ignore atomicfield read happens during init"},
		{"ctxdetach", "//hgedvet:ignore ctxdetach fire-and-forget telemetry flush"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			src := filepath.Join("testdata", "src", tc.rule)
			baseline := checkFixture(t, src, tc.rule)

			dir := t.TempDir()
			entries, err := os.ReadDir(src)
			if err != nil {
				t.Fatal(err)
			}
			stripped := false
			for _, e := range entries {
				data, err := os.ReadFile(filepath.Join(src, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				var out []string
				for _, line := range strings.Split(string(data), "\n") {
					if idx := strings.Index(line, tc.marker); idx >= 0 {
						stripped = true
						line = strings.TrimRight(line[:idx], " \t")
					}
					out = append(out, line)
				}
				if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte(strings.Join(out, "\n")), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if !stripped {
				t.Fatalf("marker %q not found in fixture %s", tc.marker, src)
			}

			diags := checkFixture(t, dir, tc.rule)
			if len(diags) != len(baseline)+1 {
				t.Fatalf("after stripping suppression: got %d diagnostics, want %d:\n%s",
					len(diags), len(baseline)+1, diagString(diags))
			}
			extra := 0
			for _, d := range diags {
				if d.Rule == tc.rule {
					extra++
				}
			}
			base := 0
			for _, d := range baseline {
				if d.Rule == tc.rule {
					base++
				}
			}
			if extra != base+1 {
				t.Fatalf("stripped suppression did not resurface a %s finding:\n%s", tc.rule, diagString(diags))
			}
		})
	}
}

// TestSuppressionProblems asserts the driver polices the suppressions
// themselves: missing reasons, unknown rules, and stale ignores are all
// findings.
func TestSuppressionProblems(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

func noReason(m map[string]int) int {
	total := 0
	//hgedvet:ignore detrange
	for _, v := range m {
		total += v
	}
	return total
}

func unknownRule(m map[string]int) int {
	total := 0
	//hgedvet:ignore nosuchrule because reasons
	for _, v := range m {
		total += v
	}
	return total
}

func stale() int {
	//hgedvet:ignore detrange nothing here ranges a map anymore
	return 42
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(dir, "bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check([]*lint.Package{pkg}, []*lint.Analyzer{unscoped(t, "detrange")})

	wantSubstrings := []string{
		"malformed suppression",   // no reason given
		"map iteration order",     // the malformed ignore must NOT suppress
		"unknown rule nosuchrule", // bad rule name
		"map iteration order",     // the unknown-rule ignore must NOT suppress
		"suppresses nothing",      // stale ignore
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrings), diagString(diags))
	}
	for _, sub := range []string{"malformed suppression", "unknown rule nosuchrule", "suppresses nothing"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q:\n%s", sub, diagString(diags))
		}
	}
}

// TestRepoClean runs the full production configuration — every default
// analyzer, with its package scoping — over the whole module and requires
// zero findings. This is the same gate CI runs via `go run ./cmd/hgedvet`;
// keeping it in the test suite means `go test ./...` catches contract
// violations even where CI configuration drifts.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := lint.Load([]string{"hged/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(pkgs, lint.DefaultAnalyzers())
	if len(diags) != 0 {
		t.Fatalf("hgedvet found %d issue(s) in the tree:\n%s", len(diags), diagString(diags))
	}
}

func diagString(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
