package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolpair flags pooled-object leaks: a call to an Acquire* function (the
// solver pool's AcquireSolver) or to sync.Pool.Get whose enclosing function
// does not release the object on every path. The check is lexical, per
// function literal (a worker goroutine's closure is its own scope):
//
//   - a `defer ReleaseX(...)` / `defer pool.Put(...)` after the acquire
//     (possibly inside a deferred closure) covers all paths;
//   - otherwise every `return` after the acquire must have a matching
//     release call between the acquire and the return, and at least one
//     release must follow the acquire.
//
// Functions that intentionally transfer ownership to their caller (the
// pool's own Acquire wrapper) suppress with //hgedvet:ignore poolpair.
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "flags sync.Pool.Get / Acquire* calls without a matching Put / Release* on every path",
	Run:  runPoolpair,
}

// poolAcquire is one acquire site and the name of its matching release:
// "ReleaseSolver" for AcquireSolver, "" for sync.Pool.Get (matched by any
// sync.Pool.Put).
type poolAcquire struct {
	pos     token.Pos
	display string
	release string
}

func runPoolpair(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPoolUnit(pass, body)
			}
			return true
		})
	}
}

// walkUnit visits the nodes of one function body without descending into
// nested function literals (each literal is checked as its own unit).
func walkUnit(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func checkPoolUnit(pass *Pass, body *ast.BlockStmt) {
	var (
		acquires []poolAcquire
		returns  []token.Pos
		defers   []*ast.DeferStmt
		releases []poolAcquire // release calls, same matching shape
	)
	walkUnit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())
		case *ast.DeferStmt:
			defers = append(defers, st)
		case *ast.CallExpr:
			if acq, ok := acquireCall(pass, st); ok {
				acquires = append(acquires, acq)
			}
			if rel, ok := releaseCall(pass, st); ok {
				releases = append(releases, rel)
			}
		}
	})
	if len(acquires) == 0 {
		return
	}

	for _, acq := range acquires {
		if deferCovers(pass, defers, acq) {
			continue
		}
		covered := true
		released := false
		for _, rel := range releases {
			if rel.pos > acq.pos && releaseMatches(acq, rel) {
				released = true
				break
			}
		}
		if !released {
			covered = false
		}
		for _, ret := range returns {
			if ret <= acq.pos {
				continue
			}
			ok := false
			for _, rel := range releases {
				if rel.pos > acq.pos && rel.pos < ret && releaseMatches(acq, rel) {
					ok = true
					break
				}
			}
			if !ok {
				covered = false
			}
		}
		if !covered {
			want := acq.release
			if want == "" {
				want = "Put"
			}
			pass.Reportf(acq.pos, "%s has no matching %s on every path: defer the release right after acquiring, or release before each return (//hgedvet:ignore poolpair if ownership transfers to the caller)", acq.display, want)
		}
	}
}

// deferCovers reports whether some defer after the acquire performs the
// matching release, directly or inside a deferred closure.
func deferCovers(pass *Pass, defers []*ast.DeferStmt, acq poolAcquire) bool {
	for _, d := range defers {
		if d.Pos() < acq.pos {
			continue
		}
		found := false
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if rel, ok := releaseCall(pass, call); ok && releaseMatches(acq, rel) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func releaseMatches(acq, rel poolAcquire) bool {
	return acq.release == rel.release
}

// acquireCall recognizes AcquireX(...) and syncPool.Get().
func acquireCall(pass *Pass, call *ast.CallExpr) (poolAcquire, bool) {
	if name, ok := calleeFuncName(pass, call); ok && strings.HasPrefix(name, "Acquire") {
		return poolAcquire{pos: call.Pos(), display: name, release: "Release" + strings.TrimPrefix(name, "Acquire")}, true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" && isSyncPool(pass.Info.TypeOf(sel.X)) {
		return poolAcquire{pos: call.Pos(), display: "sync.Pool.Get", release: ""}, true
	}
	return poolAcquire{}, false
}

// releaseCall recognizes ReleaseX(...) and syncPool.Put(...).
func releaseCall(pass *Pass, call *ast.CallExpr) (poolAcquire, bool) {
	if name, ok := calleeFuncName(pass, call); ok && strings.HasPrefix(name, "Release") {
		return poolAcquire{pos: call.Pos(), release: name}, true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" && isSyncPool(pass.Info.TypeOf(sel.X)) {
		return poolAcquire{pos: call.Pos(), release: ""}, true
	}
	return poolAcquire{}, false
}

// calleeFuncName resolves the called function's name for plain and
// package-qualified calls (AcquireSolver, core.AcquireSolver).
func calleeFuncName(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.Info.Uses[fn].(*types.Func); ok {
			return fn.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			if _, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				return fn.Sel.Name, true
			}
		}
	}
	return "", false
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
