package lint

import (
	"strings"
)

// Suppression comments have the form
//
//	//hgedvet:ignore <rule> <reason...>
//
// and silence one rule's diagnostics on the same line (trailing comment) or
// on the line immediately below the comment (standalone comment). The
// reason is mandatory: a suppression is a recorded decision, and "why the
// contract cannot be violated here" is the part reviewers need.
const ignorePrefix = "hgedvet:ignore"

type ignoreComment struct {
	path   string
	line   int
	col    int
	rule   string
	reason string
	bad    string // non-empty when the comment is malformed
	used   bool
}

type suppressions struct {
	// byLoc indexes well-formed ignores by file path and the line they
	// govern is ignores[i].line (trailing) or ignores[i].line+1 (above).
	ignores []*ignoreComment
}

// collectIgnores scans every comment in the package for hgedvet:ignore
// markers.
func collectIgnores(pkg *Package) *suppressions {
	s := &suppressions{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry ignores
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ig := &ignoreComment{path: pos.Filename, line: pos.Line, col: pos.Column}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				switch {
				case len(fields) == 0:
					ig.bad = "missing rule name and reason"
				case len(fields) == 1:
					ig.bad = "missing reason: write //hgedvet:ignore " + fields[0] + " <why the contract holds here>"
				default:
					ig.rule = fields[0]
					ig.reason = strings.Join(fields[1:], " ")
				}
				s.ignores = append(s.ignores, ig)
			}
		}
	}
	return s
}

// match returns the suppression governing d, if any: same rule, same file,
// on d's line or the line above it.
func (s *suppressions) match(d Diagnostic) *ignoreComment {
	for _, ig := range s.ignores {
		if ig.bad != "" || ig.rule != d.Rule || ig.path != d.Path {
			continue
		}
		if ig.line == d.Line || ig.line == d.Line-1 {
			return ig
		}
	}
	return nil
}

// problems reports malformed ignores, ignores naming unknown rules, and
// ignores that suppressed nothing this run. Staleness is only judged for
// rules in ran — the analyzers that actually visited this package — so a
// cmd/hgedvet -rules subset run never misreports suppressions of the rules
// it skipped.
func (s *suppressions) problems(known, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ig := range s.ignores {
		d := Diagnostic{Path: ig.path, Line: ig.line, Col: ig.col, Rule: "hgedvet"}
		switch {
		case ig.bad != "":
			d.Message = "malformed suppression: " + ig.bad
		case !known[ig.rule]:
			d.Message = "suppression names unknown rule " + ig.rule
		case !ig.used && ran[ig.rule]:
			d.Message = "suppression for " + ig.rule + " suppresses nothing; remove it"
		default:
			continue
		}
		out = append(out, d)
	}
	return out
}
