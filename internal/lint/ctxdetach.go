package lint

import (
	"go/ast"
	"go/types"
)

// Ctxdetach governs detached goroutines in the server layer. A goroutine
// launched with a detached context — context.Background(), context.TODO(),
// or context.WithoutCancel(...) in its arguments, or a callee whose
// transitive summary constructs one — outlives the request that spawned
// it, so Server.Close cannot cancel it; the only way drain can wait for it
// is WaitGroup registration. The rule: every such launch must either
// perform a WaitGroup Add before the go statement in the same function, or
// have the goroutine body itself call Done on a WaitGroup (the
// registered-by-callee pattern).
//
// The single-flight search-index rebuild is the motivating case: it must
// survive the triggering request's cancellation (other requests wait on
// the same flight), but an unregistered flight races server shutdown.
//
// Fire-and-forget launches whose lifetime is bounded some other way
// suppress with //hgedvet:ignore ctxdetach.
var Ctxdetach = &Analyzer{
	Name:     "ctxdetach",
	Doc:      "requires detached-context goroutines in server to register with drain/waitgroup machinery",
	Packages: []string{"hged/internal/server"},
	Run:      runCtxdetach,
}

func runCtxdetach(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !detachedLaunch(pass, g) {
					return true
				}
				if wgAddBefore(pass, fd.Body, g) || bodySignalsDone(pass, g) {
					return true
				}
				pass.Reportf(g.Pos(), "goroutine launched with a detached context but never registered with a WaitGroup: Server.Close cannot wait for it, so shutdown races its writes; wg.Add(1) before the launch and defer wg.Done() inside it (//hgedvet:ignore ctxdetach if its lifetime is bounded elsewhere)")
				return true
			})
		}
	}
}

// detachedLaunch reports whether the go statement hands the goroutine a
// detached context: one constructed in the launch arguments, or by the
// callee itself (per its summary), or anywhere in a launched literal body.
func detachedLaunch(pass *Pass, g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if exprConstructsDetached(pass, arg) {
			return true
		}
	}
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		detached := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callConstructsDetached(pass, call) {
				detached = true
			}
			return !detached
		})
		return detached
	default:
		if pass.Prog != nil {
			if id, ok := calleeID(pass.Info, g.Call); ok {
				if f, ok := pass.Prog.Funcs[id]; ok && f.Facts&FactDetachedCtx != 0 {
					return true
				}
			}
		}
	}
	return false
}

// exprConstructsDetached reports whether the expression contains a call
// that constructs a detached context, directly or via a module callee's
// summary.
func exprConstructsDetached(pass *Pass, e ast.Expr) bool {
	detached := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callConstructsDetached(pass, call) {
			detached = true
		}
		return !detached
	})
	return detached
}

func callConstructsDetached(pass *Pass, call *ast.CallExpr) bool {
	id, ok := calleeID(pass.Info, call)
	if !ok {
		return false
	}
	if externalFacts[id]&FactDetachedCtx != 0 {
		return true
	}
	if pass.Prog != nil {
		if f, ok := pass.Prog.Funcs[id]; ok && f.Facts&FactDetachedCtx != 0 {
			return true
		}
	}
	return false
}

// wgAddBefore reports whether the enclosing function performs a
// sync.WaitGroup Add before the go statement.
func wgAddBefore(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return !found
		}
		if isWaitGroupCall(pass.Info, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// bodySignalsDone reports whether the launched goroutine itself calls
// Done on a WaitGroup: a literal body containing wg.Done(), or a resolved
// callee whose declaration (when source is available) does.
func bodySignalsDone(pass *Pass, g *ast.GoStmt) bool {
	if fn, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return blockCallsDone(pass.Info, fn.Body)
	}
	if pass.Prog == nil {
		return false
	}
	id, ok := calleeID(pass.Info, g.Call)
	if !ok {
		return false
	}
	f, ok := pass.Prog.Funcs[id]
	if !ok || f.Decl == nil || f.Decl.Body == nil {
		return false
	}
	// The callee may live in another package of the run; use its own
	// package's type info for the WaitGroup check.
	return blockCallsDone(f.Pkg.Info, f.Decl.Body)
}

func blockCallsDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, "Done") {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is sync.WaitGroup method name.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
