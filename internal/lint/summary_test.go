package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hged/internal/lint"
)

// writePkg materializes one throwaway package for summary-layer tests.
func writePkg(t *testing.T, src string) *lint.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestSummaryRecursionConvergence: mutually recursive functions form one
// SCC and converge to the same fact set — the wall-clock read in one
// member reaches both, and a caller outside the cycle inherits it.
func TestSummaryRecursionConvergence(t *testing.T) {
	pkg := writePkg(t, `package p

import "time"

func ping(n int) int64 {
	if n == 0 {
		return time.Now().UnixNano()
	}
	return pong(n - 1)
}

func pong(n int) int64 {
	if n == 0 {
		return 0
	}
	return ping(n - 1)
}

func caller() int64 { return pong(3) }

func pure(n int) int { return n * 2 }
`)
	prog := lint.BuildProgram([]*lint.Package{pkg})

	for _, name := range []string{"p.ping", "p.pong", "p.caller"} {
		facts, ok := prog.FactsOf(name)
		if !ok {
			t.Fatalf("%s not in call graph", name)
		}
		if facts&lint.FactWallClock == 0 {
			t.Errorf("%s: facts %v, want wallclock", name, facts)
		}
	}
	if facts, _ := prog.FactsOf("p.pure"); facts != 0 {
		t.Errorf("p.pure: facts %v, want none", facts)
	}

	pingSCC, ok1 := prog.SCCOf("p.ping")
	pongSCC, ok2 := prog.SCCOf("p.pong")
	callerSCC, ok3 := prog.SCCOf("p.caller")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("SCC lookup failed")
	}
	if pingSCC != pongSCC {
		t.Errorf("ping and pong are mutually recursive but in SCCs %d and %d", pingSCC, pongSCC)
	}
	if callerSCC == pingSCC {
		t.Errorf("caller is not part of the recursion but shares SCC %d", callerSCC)
	}
}

// TestSummaryBlockingFacts: channel operations, known blocking std calls,
// and select-with-default are classified as documented.
func TestSummaryBlockingFacts(t *testing.T) {
	pkg := writePkg(t, `package p

import "time"

func recv(ch chan int) int { return <-ch }

func indirect(ch chan int) int { return recv(ch) }

func sleepy() { time.Sleep(time.Millisecond) }

func tryRecv(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func spawned(ch chan int) {
	go func() { <-ch }()
}
`)
	prog := lint.BuildProgram([]*lint.Package{pkg})
	wantBlocks := map[string]bool{
		"p.recv":     true,
		"p.indirect": true,
		"p.sleepy":   true,
		"p.tryRecv":  false, // select with default never blocks
		"p.spawned":  false, // the receive happens on another goroutine
	}
	for name, want := range wantBlocks {
		facts, ok := prog.FactsOf(name)
		if !ok {
			t.Fatalf("%s not in call graph", name)
		}
		if got := facts&lint.FactBlocks != 0; got != want {
			t.Errorf("%s: blocks=%v, want %v (facts %v)", name, got, want, facts)
		}
	}
}

// loadNondetx loads the two-package cross-propagation fixture.
func loadNondetx(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.LoadDirs([]struct{ Dir, ImportPath string }{
		{filepath.Join("testdata", "src", "nondetx", "inner"), "nondetx/inner"},
		{filepath.Join("testdata", "src", "nondetx", "outer"), "nondetx/outer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestSummaryCrossPackageFacts: FactWallClock propagates from a function
// in one package, through a package boundary, to its caller.
func TestSummaryCrossPackageFacts(t *testing.T) {
	prog := lint.BuildProgram(loadNondetx(t))
	cases := map[string]bool{
		"nondetx/inner.oneDeep": true,
		"nondetx/inner.TwoDeep": true,
		"nondetx/inner.Pure":    false,
		"nondetx/outer.Stamp":   true, // across the package boundary
		"nondetx/outer.Control": false,
	}
	for name, want := range cases {
		facts, ok := prog.FactsOf(name)
		if !ok {
			t.Fatalf("%s not in call graph", name)
		}
		if got := facts&lint.FactWallClock != 0; got != want {
			t.Errorf("%s: wallclock=%v, want %v", name, got, want)
		}
	}
}

// scopedTo clones an analyzer with its package scope replaced, so the
// fixture's outer package is "in scope" and inner is not — the production
// shape (core/search/pivot/predict scoped, helpers not).
func scopedTo(a *lint.Analyzer, pkgs ...string) *lint.Analyzer {
	clone := *a
	clone.Packages = pkgs
	return &clone
}

// TestNondetDifferential is the acceptance-criteria proof: a wall-clock
// read two calls deep in another package is invisible to the per-file
// nondet and caught by the interprocedural one, at the call site.
func TestNondetDifferential(t *testing.T) {
	pkgs := loadNondetx(t)

	perFile := lint.Check(pkgs, []*lint.Analyzer{scopedTo(lint.NondetPerFile, "nondetx/outer")})
	if len(perFile) != 0 {
		t.Fatalf("per-file nondet should miss the cross-package wall clock, got:\n%s", diagString(perFile))
	}

	interproc := lint.Check(pkgs, []*lint.Analyzer{scopedTo(lint.Nondet, "nondetx/outer")})
	if len(interproc) != 1 {
		t.Fatalf("interprocedural nondet: got %d diagnostics, want exactly 1:\n%s", len(interproc), diagString(interproc))
	}
	d := interproc[0]
	if filepath.Base(d.Path) != "outer.go" || d.Rule != "nondet" {
		t.Fatalf("finding landed at %s (%s), want outer.go call site", d.Path, d.Rule)
	}
	if !strings.Contains(d.Message, "inner.TwoDeep") || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("message should name the witness chain down to time.Now, got: %s", d.Message)
	}
}

// TestSummaryWitnessChain: the chain rendered into transitive nondet
// messages walks callee links down to the primitive.
func TestSummaryWitnessChain(t *testing.T) {
	pkgs := loadNondetx(t)
	diags := lint.Check(pkgs, []*lint.Analyzer{scopedTo(lint.Nondet, "nondetx/outer")})
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d", len(diags))
	}
	msg := diags[0].Message
	// TwoDeep → oneDeep → time.Now, in order.
	i1 := strings.Index(msg, "inner.TwoDeep")
	i2 := strings.Index(msg, "inner.oneDeep")
	i3 := strings.Index(msg, "time.Now")
	if i1 < 0 || i2 < i1 || i3 < i2 {
		t.Errorf("witness chain out of order in message: %s", msg)
	}
}

// TestSelect: the -rules subset resolver errors on unknown names and
// preserves known ones.
func TestSelect(t *testing.T) {
	got, err := lint.Select([]string{"nondet", "pinpair"})
	if err != nil || len(got) != 2 {
		t.Fatalf("Select(nondet, pinpair) = %d analyzers, err %v", len(got), err)
	}
	if _, err := lint.Select([]string{"nondet", "nosuchrule"}); err == nil {
		t.Fatal("Select with unknown rule should error")
	}
	if _, err := lint.Select(nil); err == nil {
		t.Fatal("Select with no rules should error")
	}
}

// TestSubsetRunSuppressionStability: a -rules subset run must not flag
// suppressions of the rules it skipped as stale.
func TestSubsetRunSuppressionStability(t *testing.T) {
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "pinpair"), "pinpair")
	if err != nil {
		t.Fatal(err)
	}
	// Run only lockhold (which finds nothing here): the pinpair suppression
	// in the fixture must not be reported stale.
	diags := lint.Check([]*lint.Package{pkg}, []*lint.Analyzer{scopedTo(lint.Lockhold)})
	if len(diags) != 0 {
		t.Fatalf("subset run misreported suppressions:\n%s", diagString(diags))
	}
}
