// Package lint implements hgedvet, the project's static-analysis pass.
//
// The HGED codebase promises three contracts that ordinary tests only catch
// when a test happens to exercise the offending path:
//
//   - determinism: parallel search output is byte-identical to sequential,
//     edit paths and DOT renderings are reproducible run to run;
//   - pool hygiene: every pooled solver acquired is released on every path;
//   - cancellation: every state-expansion loop polls Options.Context.
//
// hgedvet makes those contracts compile-time-checkable. The framework is
// stdlib-only (go/parser + go/types, with package resolution and export
// data delegated to the go command), matching the module's zero-dependency
// ethos. Each Analyzer inspects one type-checked package and reports
// Diagnostics; the driver applies per-analyzer package scoping and
// //hgedvet:ignore suppression comments, and flags suppressions that are
// malformed, name an unknown rule, or no longer suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Rule, d.Message)
}

// Pass carries one type-checked package through an analyzer run. Prog is
// the whole-run interprocedural view (call graph + fact summaries over
// every package in the Check call); analyzers consult it for transitive
// checks but report only at positions inside the current package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Prog  *Program

	anlz   *Analyzer
	rule   string
	report func(Diagnostic)
}

// analyzedElsewhere reports whether the running analyzer will itself visit
// the package with the given import path during this run — used to avoid
// reporting a transitive finding at a call site when the callee's own
// package produces the direct finding.
func (p *Pass) analyzedElsewhere(importPath string) bool {
	if p.Prog == nil || p.anlz == nil {
		return false
	}
	if !p.anlz.appliesTo(importPath) {
		return false
	}
	for _, pkg := range p.Prog.Pkgs {
		if pkg.ImportPath == importPath {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos under the running analyzer's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Path:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule. Packages lists the import paths the rule is
// scoped to; empty means every analyzed package.
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(*Pass)
}

func (a *Analyzer) appliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == importPath {
			return true
		}
	}
	return false
}

// DefaultAnalyzers returns the project rule set with its production package
// scoping (see DESIGN.md "Static analysis" for the contract each enforces).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Detrange, Nondet, Poolpair, Ctxpoll, Hotmap, Mutpath,
		Pinpair, Lockhold, Atomicfield, Ctxdetach,
	}
}

// Select resolves rule names to default analyzers, erroring on any name
// that is not a known rule — the cmd/hgedvet -rules flag.
func Select(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range names {
		a := ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, ruleNames())
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}

// ruleNames lists the default rule names for error messages.
func ruleNames() string {
	var names []string
	for _, a := range DefaultAnalyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ByName returns the default analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range DefaultAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// knownRules is the rule-name universe for suppression validation.
func knownRules() map[string]bool {
	m := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		m[a.Name] = true
	}
	return m
}

// Check runs every analyzer (subject to its package scope) over every
// package, applies suppressions, and returns the surviving diagnostics
// sorted by position. Suppression problems — malformed comments, unknown
// rule names, suppressions that suppress nothing — are reported under the
// pseudo-rule "hgedvet" so stale ignores cannot linger silently.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := knownRules()
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog := BuildProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, checkPackage(prog, pkg, analyzers, known)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

func checkPackage(prog *Program, pkg *Package, analyzers []*Analyzer, known map[string]bool) []Diagnostic {
	var raw []Diagnostic
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if !a.appliesTo(pkg.ImportPath) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Prog:  prog,
			anlz:  a,
			rule:  a.Name,
			report: func(d Diagnostic) {
				raw = append(raw, d)
			},
		}
		a.Run(pass)
	}

	sup := collectIgnores(pkg)
	var out []Diagnostic
	for _, d := range raw {
		if ig := sup.match(d); ig != nil {
			ig.used = true
			continue
		}
		out = append(out, d)
	}
	out = append(out, sup.problems(known, ran)...)
	return out
}
