package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural layer under hgedvet: an intra-module
// call graph with per-function fact summaries, computed bottom-up over
// strongly connected components. Per-file analyzers see only one function
// at a time; the summaries let them ask "does anything this call reaches
// read the wall clock / block / unpin a generation / poll cancellation?"
// without re-walking callee bodies.
//
// The fact lattice is a small powerset — facts only accumulate, so the
// SCC fixpoint is a plain union:
//
//	WallClock   reads time.Now/time.Since or the global math/rand source
//	Blocks      may block: channel ops, time.Sleep, WaitGroup/Cond waits,
//	            network and subprocess I/O, MVCC writer serialization
//	            (Versioned.Begin), singleflight waits (channel recv)
//	Pins        pins an MVCC generation (Pin method returning an Unpin-able)
//	Unpins      unpins an MVCC generation
//	PollsCancel polls a cancellation context (cancelled/ctxCancelled/Err)
//	DetachedCtx constructs a detached context (Background/TODO/WithoutCancel)
//
// Functions are keyed by types.Func.FullName(), which is stable between a
// package type-checked from source and the same package consumed as export
// data — that is what lets facts propagate across package boundaries.
// Resolution is static: calls through function values, interface methods,
// and goroutine bodies launched with `go` do not contribute to a caller's
// summary (goroutine facts are the ctxdetach analyzer's job).

// Facts is the per-function summary bitmask.
type Facts uint16

const (
	// FactWallClock marks functions that (transitively) read the wall clock
	// or consume the process-global math/rand source.
	FactWallClock Facts = 1 << iota
	// FactBlocks marks functions that may block the calling goroutine.
	FactBlocks
	// FactPins marks functions that pin an MVCC generation.
	FactPins
	// FactUnpins marks functions that unpin an MVCC generation.
	FactUnpins
	// FactPollsCancel marks functions that poll a cancellation context.
	FactPollsCancel
	// FactDetachedCtx marks functions that construct a detached context.
	FactDetachedCtx
)

// String renders the fact set for diagnostics and tests.
func (f Facts) String() string {
	var parts []string
	for _, e := range [...]struct {
		bit  Facts
		name string
	}{
		{FactWallClock, "wallclock"},
		{FactBlocks, "blocks"},
		{FactPins, "pins"},
		{FactUnpins, "unpins"},
		{FactPollsCancel, "pollscancel"},
		{FactDetachedCtx, "detachedctx"},
	} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// externalFacts seeds summaries at the module boundary: callees we have no
// source for but whose behavior the contracts care about. Everything else
// outside the module contributes no facts (a static under-approximation).
var externalFacts = map[string]Facts{
	"time.Now":   FactWallClock,
	"time.Since": FactWallClock,

	"time.Sleep":                    FactBlocks,
	"(*sync.WaitGroup).Wait":        FactBlocks,
	"(*sync.Cond).Wait":             FactBlocks,
	"(*os/exec.Cmd).Run":            FactBlocks,
	"(*os/exec.Cmd).Wait":           FactBlocks,
	"(*os/exec.Cmd).Output":         FactBlocks,
	"(*os/exec.Cmd).CombinedOutput": FactBlocks,
	"net/http.Get":                  FactBlocks,
	"net/http.Post":                 FactBlocks,
	"net/http.PostForm":             FactBlocks,
	"net/http.Head":                 FactBlocks,
	"(*net/http.Client).Do":         FactBlocks,
	"(*net/http.Client).Get":        FactBlocks,
	"(*net/http.Client).Post":       FactBlocks,
	"(*net/http.Client).Head":       FactBlocks,
	"net.Dial":                      FactBlocks,
	"net.DialTimeout":               FactBlocks,

	"context.Background":    FactDetachedCtx,
	"context.TODO":          FactDetachedCtx,
	"context.WithoutCancel": FactDetachedCtx,
}

// moduleFacts force-classifies module functions whose blocking behavior is
// not visible in their own syntax: Versioned.Begin waits on the writer
// mutex until the previous batch commits or aborts — an unbounded wait the
// channel-op scan cannot see.
var moduleFacts = map[string]Facts{
	"(*hged/internal/hypergraph.Versioned).Begin": FactBlocks,
}

// FuncInfo is one module function in the call graph.
type FuncInfo struct {
	ID   string // types.Func.FullName()
	Pkg  *Package
	Decl *ast.FuncDecl

	Calls []string // resolved callee IDs, deduplicated
	Local Facts    // facts from this function's own body
	Facts Facts    // transitive closure after SCC propagation
	SCC   int      // component index (callee components numbered first)

	// wallVia names the callee whose summary contributed FactWallClock
	// ("" when the fact is local) — one witness edge, enough to rebuild a
	// chain for diagnostics.
	wallVia string
	// wallWhat names the primitive behind a local FactWallClock
	// ("time.Now", "rand.Intn", ...).
	wallWhat string
}

// Program is the whole-run view handed to every analyzer pass: all loaded
// packages, the call graph with computed summaries, and the global
// atomic-field census the atomicfield analyzer consumes.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncInfo

	// atomicFields maps a field/var key (see fieldKey) to the position of
	// one sync/atomic access that marked it.
	atomicFields map[string]token.Position
}

// FuncCount returns the number of module functions in the call graph.
func (p *Program) FuncCount() int { return len(p.Funcs) }

// FactsOf returns the transitive fact summary of the function with the
// given FullName id.
func (p *Program) FactsOf(id string) (Facts, bool) {
	fn, ok := p.Funcs[id]
	if !ok {
		return 0, false
	}
	return fn.Facts, true
}

// SCCOf returns the strongly-connected-component index of a function.
func (p *Program) SCCOf(id string) (int, bool) {
	fn, ok := p.Funcs[id]
	if !ok {
		return 0, false
	}
	return fn.SCC, true
}

// calleeFacts resolves a call expression against the program: the callee's
// transitive summary when it is a module function, the external seed facts
// otherwise. ok is false when the callee cannot be resolved statically.
func (p *Program) calleeFacts(info *types.Info, call *ast.CallExpr) (Facts, string, bool) {
	id, ok := calleeID(info, call)
	if !ok {
		return 0, "", false
	}
	if fn, ok := p.Funcs[id]; ok {
		return fn.Facts, id, true
	}
	return externalCallFacts(info, call, id), id, true
}

// BuildProgram parses every function of the loaded packages into the call
// graph and computes transitive fact summaries bottom-up over SCCs.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:         pkgs,
		Funcs:        make(map[string]*FuncInfo),
		atomicFields: make(map[string]token.Position),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{ID: obj.FullName(), Pkg: pkg, Decl: fd}
				scanLocal(pkg, fi)
				p.Funcs[fi.ID] = fi
			}
		}
		collectAtomicFields(pkg, p.atomicFields)
	}
	p.propagate()
	return p
}

// scanLocal computes a function's own facts and call edges. Bodies of
// goroutines launched with `go func(){...}()` are excluded — their effects
// happen on another goroutine — while synchronously invoked closures
// count toward the enclosing function.
func scanLocal(pkg *Package, fi *FuncInfo) {
	seen := make(map[string]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				// Skip the spawned call and, for literals, the whole body.
				return false
			case *ast.CallExpr:
				id, ok := calleeID(pkg.Info, st)
				if ok {
					if !seen[id] {
						seen[id] = true
						fi.Calls = append(fi.Calls, id)
					}
					ext := externalCallFacts(pkg.Info, st, id)
					fi.Local |= ext
					if ext&FactWallClock != 0 && fi.wallWhat == "" {
						fi.wallWhat = displayName(id)
					}
				}
				if isPinCall(pkg.Info, st) {
					fi.Local |= FactPins
				}
				if isUnpinCall(pkg.Info, st) {
					fi.Local |= FactUnpins
				}
				if isPollCall(st) {
					fi.Local |= FactPollsCancel
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body)
	for _, op := range blockingChanOps(pkg, fi.Decl.Body, true) {
		_ = op
		fi.Local |= FactBlocks
		break
	}
	if forced, ok := moduleFacts[fi.ID]; ok {
		fi.Local |= forced
	}
}

// propagate computes transitive facts bottom-up: Tarjan's algorithm emits
// strongly connected components in reverse topological order (a component
// is finished only after everything it reaches), so one pass over the
// emission order suffices — facts only accumulate, making the in-component
// fixpoint a plain union.
func (p *Program) propagate() {
	t := &tarjan{
		prog:  p,
		index: make(map[string]int),
		low:   make(map[string]int),
		on:    make(map[string]bool),
	}
	for id := range p.Funcs {
		if _, visited := t.index[id]; !visited {
			t.strongconnect(id)
		}
	}
	for ci, comp := range t.comps {
		facts := Facts(0)
		for _, id := range comp {
			fn := p.Funcs[id]
			facts |= fn.Local
			for _, callee := range fn.Calls {
				cf, ok := p.Funcs[callee]
				if !ok {
					continue // external: already folded into Local
				}
				facts |= cf.Facts | cf.Local
				if (cf.Facts|cf.Local)&FactWallClock != 0 && fn.wallVia == "" && fn.Local&FactWallClock == 0 {
					fn.wallVia = callee
				}
			}
		}
		for _, id := range comp {
			p.Funcs[id].Facts = facts
			p.Funcs[id].SCC = ci
		}
	}
	// Mutual recursion inside a component: a member may have gained
	// FactWallClock from the component union without a witness edge; point
	// it at any member that carries one.
	for _, comp := range t.comps {
		if len(comp) < 2 {
			continue
		}
		var carrier string
		for _, id := range comp {
			fn := p.Funcs[id]
			if fn.Local&FactWallClock != 0 || fn.wallVia != "" {
				carrier = id
				break
			}
		}
		if carrier == "" {
			continue
		}
		for _, id := range comp {
			fn := p.Funcs[id]
			if fn.Facts&FactWallClock != 0 && fn.Local&FactWallClock == 0 && fn.wallVia == "" && id != carrier {
				fn.wallVia = carrier
			}
		}
	}
}

// tarjan is the classic SCC state machine over Program.Funcs.
type tarjan struct {
	prog    *Program
	counter int
	index   map[string]int
	low     map[string]int
	on      map[string]bool
	stack   []string
	comps   [][]string
}

func (t *tarjan) strongconnect(v string) {
	t.index[v] = t.counter
	t.low[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.on[v] = true

	for _, w := range t.prog.Funcs[v].Calls {
		if _, ok := t.prog.Funcs[w]; !ok {
			continue
		}
		if _, visited := t.index[w]; !visited {
			t.strongconnect(w)
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.on[w] && t.index[w] < t.low[v] {
			t.low[v] = t.index[w]
		}
	}

	if t.low[v] == t.index[v] {
		var comp []string
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.on[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.comps = append(t.comps, comp)
	}
}

// wallClockChain rebuilds the witness path from a function with
// FactWallClock down to the primitive it reaches, for diagnostics:
// "a → b → time.Now". Capped so a pathological chain stays readable.
func (p *Program) wallClockChain(id string) string {
	var parts []string
	for hops := 0; hops < 6; hops++ {
		fn, ok := p.Funcs[id]
		if !ok {
			break
		}
		parts = append(parts, displayName(id))
		if fn.Local&FactWallClock != 0 {
			if fn.wallWhat != "" {
				parts = append(parts, fn.wallWhat)
			}
			break
		}
		if fn.wallVia == "" {
			break
		}
		id = fn.wallVia
	}
	return strings.Join(parts, " → ")
}

// ---------------------------------------------------------------- helpers

// calleeID statically resolves a call expression to the callee's FullName.
func calleeID(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f.FullName(), true
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f.FullName(), true
		}
	}
	return "", false
}

// externalCallFacts returns the seed facts of a resolved call: the
// externalFacts table plus the math/rand package-level rule (any function
// except the explicit source constructors consumes the global source).
func externalCallFacts(info *types.Info, call *ast.CallExpr, id string) Facts {
	if f, ok := externalFacts[id]; ok {
		return f
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !allowedRand[fn.Name()] {
			return FactWallClock
		}
	}
	return 0
}

// calleeFunc returns the *types.Func a call resolves to, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// displayName shortens a FullName for messages: the package path keeps only
// its last element ("hged/internal/hypergraph" → "hypergraph").
func displayName(id string) string {
	shorten := func(path string) string {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	if strings.HasPrefix(id, "(") {
		// "(*pkg/path.Type).Method"
		end := strings.Index(id, ")")
		if end < 0 {
			return id
		}
		recv := id[1:end]
		star := strings.HasPrefix(recv, "*")
		recv = strings.TrimPrefix(recv, "*")
		if dot := strings.LastIndex(recv, "."); dot >= 0 {
			recv = shorten(recv[:dot]) + recv[dot:]
		}
		if star {
			recv = "*" + recv
		}
		return "(" + recv + ")" + id[end+1:]
	}
	if dot := strings.LastIndex(id, "."); dot >= 0 {
		return shorten(id[:dot]) + id[dot:]
	}
	return id
}

// isPinCall recognizes a method call named Pin whose result is a pointer to
// a type with an Unpin method — the MVCC generation-pinning shape
// (hypergraph.Versioned.Pin, server.GraphEntry.Pin, fixtures).
func isPinCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Pin" {
		return false
	}
	if _, ok := info.Selections[sel]; !ok {
		return false // package-qualified function, not a method
	}
	return hasUnpinMethod(info.TypeOf(call))
}

// isUnpinCall recognizes a no-argument method call named Unpin.
func isUnpinCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unpin" || len(call.Args) != 0 {
		return false
	}
	_, isMethod := info.Selections[sel]
	return isMethod
}

// isPollCall recognizes the cancellation-poll shapes ctxpoll accepts.
func isPollCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && pollNames[sel.Sel.Name]
}

// hasUnpinMethod reports whether t (or its pointee) has an Unpin method.
func hasUnpinMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Unpin" {
			return true
		}
	}
	return false
}

// chanOp is one potentially blocking channel operation.
type chanOp struct {
	pos  token.Pos
	kind string // "channel send", "channel receive", "select", "channel range"
}

// blockingChanOps collects the channel operations in body that can block:
// sends and receives outside a select with a default case, selects without
// a default, and ranges over a channel. With includeClosures, synchronously
// invoked function literals count toward the enclosing body; goroutine
// bodies never do. With includeClosures false, every nested function
// literal is skipped (each is analyzed as its own unit).
func blockingChanOps(pkg *Package, body ast.Node, includeClosures bool) []chanOp {
	var ops []chanOp
	exempt := make(map[ast.Node]bool) // comm statements of select-with-default
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !includeClosures {
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					exempt[cc.Comm] = true
				}
			}
			if !hasDefault {
				ops = append(ops, chanOp{st.Pos(), "select"})
			}
		case *ast.SendStmt:
			if !exempt[st] {
				ops = append(ops, chanOp{st.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !exemptRecv(exempt, st, body) {
				ops = append(ops, chanOp{st.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(st.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ops = append(ops, chanOp{st.Pos(), "channel range"})
				}
			}
		}
		return true
	})
	return ops
}

// exemptRecv reports whether a receive expression is the comm operation of
// a select that has a default case (directly, or as the RHS of the comm's
// assignment).
func exemptRecv(exempt map[ast.Node]bool, recv *ast.UnaryExpr, body ast.Node) bool {
	found := false
	for comm := range exempt {
		ast.Inspect(comm, func(n ast.Node) bool {
			if n == recv {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// ---------------------------------------------------- atomic field census

// fieldKey names a struct field or package-level variable in a way that is
// stable across source- and export-data views of a package:
// "pkg/path.Type.field" for fields, "pkg/path.var" for package variables.
func fieldKey(info *types.Info, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return "", false
		}
		recv := sel.Recv()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name(), true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return "", false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false // not a package-level variable
		}
		return v.Pkg().Path() + "." + v.Name(), true
	}
	return "", false
}

// isAtomicCall reports whether call is a package-level sync/atomic function
// (Add*, Load*, Store*, Swap*, CompareAndSwap*), as opposed to a method on
// the typed atomic wrappers, which cannot be mixed with plain accesses.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// collectAtomicFields records every field/package-var whose address is
// passed to a sync/atomic function in pkg.
func collectAtomicFields(pkg *Package, out map[string]token.Position) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if key, ok := fieldKey(pkg.Info, u.X); ok {
					if _, dup := out[key]; !dup {
						out[key] = pkg.Fset.Position(u.X.Pos())
					}
				}
			}
			return true
		})
	}
}
