// Helper package for the cross-package nondet fixture: the wall-clock read
// sits two calls deep, invisible to any per-file scan of the caller.
package inner

import "time"

// TwoDeep is what the outer package calls; itself clean syntactically.
func TwoDeep() int64 { return oneDeep() }

func oneDeep() int64 { return time.Now().UnixNano() }

// Pure is a control: no wall-clock anywhere beneath it.
func Pure() int64 { return 42 }
