// Cross-package nondet fixture: this package is in scope, the inner
// package is not, and the wall-clock read is two calls away. The per-file
// nondet provably misses it (see TestNondetDifferential); the
// interprocedural pass flags the call site below.
package outer

import "nondetx/inner"

// Stamp looks pure per-file; inner.TwoDeep reaches time.Now.
func Stamp() int64 {
	return inner.TwoDeep()
}

// Control stays clean: inner.Pure has no wall-clock facts.
func Control() int64 {
	return inner.Pure()
}
