// Package hotmap is the hgedvet fixture for the hotmap analyzer: building
// a set as map[...]struct{} on a hot path must move to a bitset or carry a
// justified suppression.
package hotmap

// Flagged: classic map-as-set built with make.
func dedupe(ids []int) []int {
	seen := make(map[int]struct{}, len(ids)) // want hotmap "set built as a map"
	out := ids[:0]
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// Flagged: composite-literal set.
func reserved() map[int]struct{} {
	return map[int]struct{}{0: {}, 1: {}} // want hotmap "set built as a map"
}

// Flagged: named set types are still map-as-set underneath.
type idSet map[int]struct{}

func newIDSet() idSet {
	return make(idSet) // want hotmap "set built as a map"
}

// Not flagged: maps with payload values are lookup tables, not sets.
func index(ids []int) map[int]int {
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	return pos
}

// Not flagged: a slice of empty structs is not a map.
func padding(n int) []struct{} {
	return make([]struct{}, n)
}

// Not flagged: suppressed with a justification — string keys have no dense
// id space for a bitset.
func nameSet(names []string) map[string]struct{} {
	//hgedvet:ignore hotmap string keys have no dense id space
	set := make(map[string]struct{}, len(names))
	for _, n := range names {
		set[n] = struct{}{}
	}
	return set
}
