// Package nondet is the hgedvet fixture for the nondet analyzer: solver
// code must not read the wall clock or the process-global random source.
package nondet

import (
	"math/rand"
	"time"
)

// Flagged: wall-clock reads make solves irreproducible.
func stamp() int64 {
	return time.Now().UnixNano() // want nondet "time.Now reads the wall clock"
}

// Flagged: time.Since is a wall-clock read too.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want nondet "time.Since reads the wall clock"
}

// Flagged: global math/rand source.
func sample(n int) int {
	return rand.Intn(n) // want nondet "process-global random source"
}

// Flagged: shuffling with the global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want nondet "process-global random source"
}

// Not flagged: explicitly seeded source, the Strategy-2 idiom.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Not flagged: time.Duration arithmetic and constants are deterministic.
func budgetFor(states int64) time.Duration {
	return time.Duration(states) * time.Microsecond
}

// Not flagged: suppressed with a justification.
func debugStamp() int64 {
	//hgedvet:ignore nondet debug-only timing that never reaches a Result
	return time.Now().UnixNano()
}
