// Fixture for the atomicfield analyzer: a field or package variable
// touched via sync/atomic anywhere must be accessed atomically everywhere.
package atomicfield

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
	plain int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want atomicfield "accessed via sync/atomic"
}

func (c *counter) reset() {
	c.hits = 0 // want atomicfield "accessed via sync/atomic"
	atomic.StoreInt64(&c.total, 0)
}

func (c *counter) totalOK() int64 {
	return atomic.LoadInt64(&c.total)
}

func (c *counter) plainOnlyOK() int64 {
	c.plain++ // never touched atomically: fine
	return c.plain
}

var gauge int64

func incrGauge() {
	atomic.AddInt64(&gauge, 1)
}

func readGauge() int64 {
	//hgedvet:ignore atomicfield read happens during init, before any goroutine can observe the value
	return gauge
}

// typed atomics are immune by construction — no way to access them plainly.
var typedGauge atomic.Int64

func typedOK() int64 {
	typedGauge.Add(1)
	return typedGauge.Load()
}
