// Package mutpath is the hgedvet fixture for the mutpath analyzer: direct
// Hypergraph mutation calls in the server must go through a versioned
// GraphBatch — or carry a justified suppression for graphs that are not yet
// published.
package mutpath

import "hged/internal/hypergraph"

// Flagged: direct mutations on a published graph bypass generation
// publication and cache invalidation.
func grow(g *hypergraph.Hypergraph) hypergraph.NodeID {
	v := g.AddNode(1)    // want mutpath "direct AddNode"
	g.AddEdge(2, v, v)   // want mutpath "direct AddEdge"
	g.RemoveEdge(0)      // want mutpath "direct RemoveEdge"
	g.RemoveNode(v)      // want mutpath "direct RemoveNode"
	g.SetNodeLabel(v, 3) // want mutpath "direct SetNodeLabel"
	return v
}

// Not flagged: mutations through a versioned batch are the sanctioned path —
// Commit publishes the next generation and reports the invalidation delta.
func growVersioned(v *hypergraph.Versioned) {
	b := v.Begin()
	u := b.AddNode(1)
	b.AddEdge(2, u)
	b.Commit()
}

// Suppressed: building a graph that no reader can see yet is legitimate.
func seed() *hypergraph.Hypergraph {
	g := hypergraph.New(2)
	//hgedvet:ignore mutpath graph is still private: constructed here, not yet wrapped in a Versioned
	g.AddEdge(1, 0, 1)
	return g
}
