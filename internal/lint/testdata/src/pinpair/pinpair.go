// Fixture for the pinpair analyzer: generation pins must be unpinned on
// every return path, with ownership-transfer returns exempt.
package pinpair

// Gen mimics an MVCC generation: anything with an Unpin method.
type Gen struct{ pins int }

// Unpin releases the pin.
func (g *Gen) Unpin() { g.pins-- }

// Versioned mimics the MVCC wrapper; Pin's shape — a method named Pin whose
// result has an Unpin method — is what the analyzer keys on.
type Versioned struct{ cur *Gen }

// Pin pins the current generation.
func (v *Versioned) Pin() *Gen { v.cur.pins++; return v.cur }

func leakOnEarlyReturn(v *Versioned) int {
	gen := v.Pin() // want pinpair "no matching Unpin on every path"
	if gen.pins > 1 {
		return 1 // leaks the pin
	}
	gen.Unpin()
	return 0
}

func neverReleased(v *Versioned) {
	gen := v.Pin() // want pinpair "no matching Unpin on every path"
	_ = gen.pins
}

func deferredRelease(v *Versioned) int {
	gen := v.Pin()
	defer gen.Unpin()
	return gen.pins
}

func inlineRelease(v *Versioned) {
	gen := v.Pin()
	_ = gen.pins
	gen.Unpin()
}

func releaseOnEveryPath(v *Versioned) int {
	gen := v.Pin()
	if gen.pins > 1 {
		gen.Unpin()
		return 1
	}
	gen.Unpin()
	return 0
}

// transfer hands the pin to the caller — the registry's GraphEntry.Pin
// wrapper shape — and is exempt.
func transfer(v *Versioned) *Gen {
	return v.Pin()
}

// finish unpins on the caller's behalf; its FactUnpins summary makes the
// call count as a release in helperRelease.
func finish(g *Gen) { g.Unpin() }

func helperRelease(v *Versioned) {
	gen := v.Pin()
	finish(gen)
}

type holder struct{ gen *Gen }

func storedPin(v *Versioned) *holder {
	//hgedvet:ignore pinpair pin ownership moves into the holder; its owner unpins via holder.release
	h := &holder{gen: v.Pin()}
	return h
}

func (h *holder) release() { h.gen.Unpin() }
