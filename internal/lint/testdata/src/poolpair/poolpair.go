// Package poolpair is the hgedvet fixture for the poolpair analyzer: every
// pooled acquire needs a matching release on every path.
package poolpair

import "sync"

type solver struct{ scratch []int }

var pool = sync.Pool{New: func() any { return new(solver) }}

// AcquireSolver transfers ownership out; the suppression records that.
func AcquireSolver() *solver {
	//hgedvet:ignore poolpair ownership transfers to the caller, who must pair this with ReleaseSolver
	return pool.Get().(*solver)
}

// ReleaseSolver returns a solver to the pool.
func ReleaseSolver(sv *solver) { pool.Put(sv) }

// Not flagged: the canonical defer pairing.
func solveDeferred(run func(*solver) int) int {
	sv := AcquireSolver()
	defer ReleaseSolver(sv)
	return run(sv)
}

// Not flagged: released before the single return.
func solveLinear(run func(*solver) int) int {
	sv := AcquireSolver()
	out := run(sv)
	ReleaseSolver(sv)
	return out
}

// Flagged: the error path returns without releasing.
func solveLeakyBranch(run func(*solver) (int, error)) (int, error) {
	sv := AcquireSolver() // want poolpair "AcquireSolver has no matching ReleaseSolver on every path"
	out, err := run(sv)
	if err != nil {
		return 0, err
	}
	ReleaseSolver(sv)
	return out, nil
}

// Flagged: never released at all.
func solveLeakyAlways(run func(*solver) int) int {
	sv := AcquireSolver() // want poolpair "AcquireSolver has no matching ReleaseSolver on every path"
	return run(sv)
}

// Flagged: a raw sync.Pool.Get with no Put.
func rawLeak() *solver {
	return pool.Get().(*solver) // want poolpair "sync.Pool.Get has no matching Put on every path"
}

// Not flagged: raw Get with deferred Put inside a closure.
func rawDeferredClosure(run func(*solver)) {
	sv := pool.Get().(*solver)
	defer func() { pool.Put(sv) }()
	run(sv)
}

// Not flagged: each worker closure is its own scope with its own pairing.
func workers(n int, run func(*solver)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := AcquireSolver()
			defer ReleaseSolver(sv)
			run(sv)
		}()
	}
	wg.Wait()
}

// Flagged: the closure leaks even though the enclosing function releases a
// different solver correctly.
func workerLeak(run func(*solver)) {
	outer := AcquireSolver()
	defer ReleaseSolver(outer)
	done := make(chan struct{})
	go func() {
		sv := AcquireSolver() // want poolpair "AcquireSolver has no matching ReleaseSolver on every path"
		run(sv)
		close(done)
	}()
	<-done
}
