// Fixture for the ctxdetach analyzer: goroutines launched with a detached
// context must register with WaitGroup drain machinery.
package ctxdetach

import (
	"context"
	"sync"
)

type srv struct {
	wg sync.WaitGroup
}

func (s *srv) rebuild(ctx context.Context) { _ = ctx }
func (s *srv) work(ctx context.Context)    { _ = ctx }

// spawnBase constructs a detached context internally; launching it is as
// detached as passing Background at the call site.
func (s *srv) spawnBase() { s.rebuild(context.Background()) }

func (s *srv) unregisteredFlight() {
	go s.rebuild(context.Background()) // want ctxdetach "detached context but never registered"
}

func (s *srv) unregisteredWithoutCancel(ctx context.Context) {
	go s.rebuild(context.WithoutCancel(ctx)) // want ctxdetach "detached context but never registered"
}

func (s *srv) transitivelyDetached() {
	go s.spawnBase() // want ctxdetach "detached context but never registered"
}

func (s *srv) registeredByAdd() {
	s.wg.Add(1)
	go s.rebuild(context.Background())
}

func (s *srv) registeredByDoneInBody() {
	go func() {
		defer s.wg.Done()
		s.work(context.WithoutCancel(context.TODO()))
	}()
}

func (s *srv) attached(ctx context.Context) {
	go s.work(ctx) // request-scoped context: cancellable, fine
}

func (s *srv) suppressedFlight() {
	//hgedvet:ignore ctxdetach fire-and-forget telemetry flush; bounded by the process exit path
	go s.rebuild(context.Background())
}
