// Package ctxpoll is the hgedvet fixture for the ctxpoll analyzer: a loop
// that increments an expansion counter must poll cancellation.
package ctxpoll

import "context"

// Options mirrors the solver core's cancellation surface: a context plus
// the throttled poll helpers.
type Options struct {
	Context context.Context
}

func (o Options) cancelled(expanded int64) bool {
	return o.Context != nil && expanded%1024 == 0 && o.Context.Err() != nil
}

func (o Options) ctxCancelled() bool { return o.Context != nil && o.Context.Err() != nil }

// Not flagged: the main-loop idiom, polling every expansion batch.
func searchPolling(opts Options, step func() bool) int64 {
	var expanded int64
	for step() {
		expanded++
		if opts.cancelled(expanded) {
			break
		}
	}
	return expanded
}

// Flagged: expands states but can never be cancelled.
func searchUnkillable(opts Options, step func() bool) int64 {
	var expanded int64
	for step() {
		expanded++ // want ctxpoll "never polls cancellation"
	}
	return expanded
}

// Not flagged: recursion through a closure still polls (the DFS shape).
func recursivePolling(opts Options, fanout func(int) int) int64 {
	var expanded int64
	var rec func(depth int)
	rec = func(depth int) {
		expanded++
		if opts.cancelled(expanded) || depth == 0 {
			return
		}
		for i := 0; i < fanout(depth); i++ {
			rec(depth - 1)
		}
	}
	rec(8)
	return expanded
}

// Flagged: the permutation-enumeration counter without a poll.
func enumerate(opts Options, steps *int64, next func() bool) {
	var spent int64
	for next() {
		spent++ // want ctxpoll "never polls cancellation"
	}
	*steps += spent
}

// Not flagged: polling the context directly also satisfies the contract.
func directErrPoll(ctx context.Context, step func() bool) int64 {
	var expanded int64
	for step() {
		expanded++
		if expanded%1024 == 0 && ctx.Err() != nil {
			break
		}
	}
	return expanded
}

// Not flagged: ordinary counters are not expansion counters.
func unrelatedCounter(step func() bool) int {
	count := 0
	for step() {
		count++
	}
	return count
}

// Not flagged: suppressed with a justification.
func boundedSweep(opts Options, step func() bool) int64 {
	var expanded int64
	for i := 0; i < 64 && step(); i++ {
		expanded++ //hgedvet:ignore ctxpoll bounded to 64 iterations; cancellation latency is negligible
	}
	return expanded
}
