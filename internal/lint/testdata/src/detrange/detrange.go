// Package detrange is the hgedvet fixture for the detrange analyzer: map
// iteration in determinism-critical code must collect-and-sort, or carry a
// justified suppression.
package detrange

import "sort"

// Flagged: emits in map order.
func emitKeys(m map[string]int, sink func(string)) {
	for k := range m { // want detrange "map iteration order is nondeterministic"
		sink(k)
	}
}

// Flagged: picks a "first" element depending on iteration order.
func anyKey(m map[string]int) string {
	for k := range m { // want detrange "map iteration order is nondeterministic"
		return k
	}
	return ""
}

// Not flagged: collect-and-sort idiom, keys sorted before use.
func sortedEmit(m map[string]int, sink func(string)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sink(k)
	}
}

// Not flagged: collect-and-sort with sort.Slice and a comparator.
func sortedPairs(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Not flagged: slices range fine, only maps are nondeterministic.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Not flagged: suppressed with a justification.
func countValues(m map[string]int) int {
	total := 0
	//hgedvet:ignore detrange commutative sum; iteration order cannot change the total
	for _, v := range m {
		total += v
	}
	return total
}

// Flagged: collecting without sorting is not enough.
func collectedUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want detrange "map iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}
