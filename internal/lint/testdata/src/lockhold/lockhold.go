// Fixture for the lockhold analyzer: no may-block operation while holding
// a mutex that hangs off a struct defined in the analyzed package.
package lockhold

import "sync"

type entry struct {
	mu sync.Mutex
	ch chan int
	v  int
}

func recvUnderLock(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v = <-e.ch // want lockhold "channel receive while e.mu is held"
}

func waitValue(ch chan int) int { return <-ch }

func blockingCallUnderLock(e *entry) {
	e.mu.Lock()
	e.v = waitValue(e.ch) // want lockhold "may block while e.mu is held"
	e.mu.Unlock()
}

func selectUnderLock(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want lockhold "select while e.mu is held"
	case v := <-e.ch:
		e.v = v
	}
}

func blockAfterUnlock(e *entry) {
	e.mu.Lock()
	e.v++
	e.mu.Unlock()
	e.v = <-e.ch // lock released: fine
}

func nonBlockingSelectUnderLock(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-e.ch:
		e.v = v
	default:
	}
}

func closureIsItsOwnUnit(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.v = 1
	_ = func() {
		// Not under the lock at run time; analyzed as its own unit.
		<-e.ch
	}
}

func suppressedSend(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//hgedvet:ignore lockhold bounded handoff: the channel is buffered and its consumer never blocks
	e.ch <- e.v
}
