package lint

import (
	"go/ast"
	"go/types"
)

// Hotmap flags map[...]struct{} set construction in the hot-path packages.
// The CSR refactor replaced per-call map churn on neighbor scans, ego
// extraction, filter evaluation, and edit-path replay with
// hypergraph.Bitset: membership is one word op, iteration is ascending by
// construction (no collect-and-sort), and clearing is a memclr. A map-based
// set reintroduced on those paths silently costs an allocation plus hashing
// per element and a nondeterministic iteration order.
//
// Sets keyed by something that is not a small dense integer id (labels,
// strings, composite keys) genuinely need a map; justify those with
// //hgedvet:ignore hotmap <reason>.
var Hotmap = &Analyzer{
	Name: "hotmap",
	Doc:  "flags map[...]struct{} set-building in hot-path packages; dense id sets should use hypergraph.Bitset",
	Packages: []string{
		"hged/internal/hypergraph",
		"hged/internal/core",
		"hged/internal/search",
	},
	Run: runHotmap,
}

func runHotmap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				id, ok := e.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
					return true
				}
				if isSetMap(pass.Info.TypeOf(e)) {
					report(pass, e)
				}
			case *ast.CompositeLit:
				if isSetMap(pass.Info.TypeOf(e)) {
					report(pass, e)
				}
			}
			return true
		})
	}
}

func report(pass *Pass, e ast.Expr) {
	pass.Reportf(e.Pos(), "set built as a map[...]struct{} on a hot path: use hypergraph.Bitset for dense integer ids (word-wise ops, ascending iteration), or add //hgedvet:ignore hotmap <why a map is required>")
}

// isSetMap reports whether t is a map whose element is the empty struct —
// the map-as-set idiom.
func isSetMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	s, ok := m.Elem().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
