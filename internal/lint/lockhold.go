package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Lockhold forbids may-block operations while holding a registry or entry
// mutex in the server layer. Those mutexes (Registry.mu, GraphEntry.mu,
// searchIndex.mu, Metrics.mu, jobManager.mu) sit on every request path;
// blocking under one — a channel operation, an MVCC Versioned.Begin that
// waits for a prior writer, a network call — turns an isolated slow
// operation into a server-wide stall, and mixing lock orders with blocking
// waits is how the deadlocks start.
//
// Detection: a lock region opens at `x.mu.Lock()` / `x.mu.RLock()` where
// the mutex is a field of a struct defined in the analyzed package, and
// closes at the first matching Unlock/RUnlock on the same receiver
// expression (or at function end when the unlock is deferred). Within the
// region — lexically, per function unit, not descending into nested
// function literals — the rule flags blocking channel operations (sends
// and receives outside a select with default, selects without default,
// ranges over channels) and calls to functions whose transitive summary
// carries FactBlocks. The region model is lexical like poolpair's: an
// unlock inside one branch closes the region early, which under-
// approximates but never false-positives on straight-line code.
//
// Bounded handoffs that cannot stall (buffered channel with a guaranteed
// drain) suppress with //hgedvet:ignore lockhold.
var Lockhold = &Analyzer{
	Name:     "lockhold",
	Doc:      "forbids may-block calls and channel ops while holding a server registry/entry mutex",
	Packages: []string{"hged/internal/server"},
	Run:      runLockhold,
}

// lockRegion is one held-mutex span within a function unit.
type lockRegion struct {
	key        string // receiver expression, e.g. "e.mu"
	start, end token.Pos
}

func runLockhold(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockUnit(pass, body)
			}
			return true
		})
	}
}

func checkLockUnit(pass *Pass, body *ast.BlockStmt) {
	type lockOp struct {
		key      string
		pos      token.Pos
		deferred bool
	}
	var locks, unlocks []lockOp
	deferredCalls := make(map[*ast.CallExpr]bool)
	walkUnit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[st.Call] = true
			if key, kind, ok := mutexOp(pass, st.Call); ok && kind == "unlock" {
				unlocks = append(unlocks, lockOp{key: key, pos: st.Pos(), deferred: true})
			}
		case *ast.CallExpr:
			if deferredCalls[st] {
				return
			}
			if key, kind, ok := mutexOp(pass, st); ok {
				op := lockOp{key: key, pos: st.Pos()}
				if kind == "lock" {
					locks = append(locks, op)
				} else {
					unlocks = append(unlocks, op)
				}
			}
		}
	})
	if len(locks) == 0 {
		return
	}

	var regions []lockRegion
	for _, l := range locks {
		end := body.End()
		for _, u := range unlocks {
			if u.deferred || u.key != l.key || u.pos <= l.pos {
				continue
			}
			if u.pos < end {
				end = u.pos
			}
		}
		regions = append(regions, lockRegion{key: l.key, start: l.pos, end: end})
	}

	for _, op := range blockingChanOps(pkgOf(pass), body, false) {
		for _, r := range regions {
			if op.pos > r.start && op.pos < r.end {
				pass.Reportf(op.pos, "%s while %s is held can stall every request path: move the operation outside the critical section or make it non-blocking (select with default)", op.kind, r.key)
				break
			}
		}
	}

	walkUnit(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.Prog == nil {
			return
		}
		if _, _, isMutex := mutexOp(pass, call); isMutex {
			return
		}
		facts, id, ok := pass.Prog.calleeFacts(pass.Info, call)
		if !ok || facts&FactBlocks == 0 {
			return
		}
		for _, r := range regions {
			if call.Pos() > r.start && call.Pos() < r.end {
				pass.Reportf(call.Pos(), "call to %s may block while %s is held: it can wait indefinitely, stalling every path that needs %s; restructure so the wait happens outside the critical section", displayName(id), r.key, r.key)
				break
			}
		}
	})
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock calls on a sync.Mutex or
// sync.RWMutex reached through a field of a struct type defined in the
// analyzed package, returning the receiver expression as the region key.
func mutexOp(pass *Pass, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", "", false
	}
	if !isSyncMutex(pass.Info.TypeOf(sel.X)) {
		return "", "", false
	}
	// The mutex must hang off a struct declared in this package: x.mu where
	// x's type is a local named struct (possibly through more selectors).
	owner, isOwnerSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isOwnerSel {
		return "", "", false
	}
	t := pass.Info.TypeOf(owner.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pass.Pkg.Path() {
		return "", "", false
	}
	return exprKey(sel.X), kind, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// exprKey renders a selector chain ("s.search.mu") for region matching;
// distinct spellings of the same mutex are treated as distinct, which only
// shortens regions (missing an unlock extends to function end).
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprKey(x.X)
	}
	return fmt.Sprintf("<%T>", e)
}

// pkgOf rebuilds the *Package view blockingChanOps needs from a pass.
func pkgOf(pass *Pass) *Package {
	return &Package{
		ImportPath: pass.Pkg.Path(),
		Fset:       pass.Fset,
		Files:      pass.Files,
		Types:      pass.Pkg,
		Info:       pass.Info,
	}
}
