package experiments

import (
	"fmt"
	"strings"

	"hged/internal/dataset"
	"hged/internal/eval"
	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// PrecisionAtKRow is one dataset's precision@k curve for cohesion-ranked
// HEP predictions (extension experiment E11: the paper reports aggregate
// precision; ranking by the internal max-pairwise-σ score shows the
// tightest predictions are also the most accurate).
type PrecisionAtKRow struct {
	Dataset    string
	Ks         []int
	Precisions []float64
	Total      int // total ranked predictions
}

// ExtensionPrecisionAtK ranks HEP's predictions by cohesion and evaluates
// precision at the given cutoffs on each dataset.
func ExtensionPrecisionAtK(cfg Config, ks []int) ([]PrecisionAtKRow, error) {
	c := cfg.normalize()
	var rows []PrecisionAtKRow
	for _, s := range c.specs() {
		c.progress("p@k: %s", s.Name)
		g, err := c.replica(s)
		if err != nil {
			return nil, err
		}
		train, held, err := dataset.Split(g, c.TrainFrac, c.Seed)
		if err != nil {
			return nil, err
		}
		p, err := predict.New(train, predict.Options{
			Lambda: c.Lambda, Tau: c.Tau, MaxExpansions: c.MaxExpansions,
		})
		if err != nil {
			return nil, err
		}
		ranked := p.RunRanked()
		sets := make([][]hypergraph.NodeID, len(ranked))
		for i, r := range ranked {
			sets[i] = r.Nodes
		}
		rows = append(rows, PrecisionAtKRow{
			Dataset:    s.Name,
			Ks:         ks,
			Precisions: eval.PrecisionAtK(sets, held, eval.MatchOptions{Mode: eval.MatchContainment}, ks),
			Total:      len(ranked),
		})
	}
	return rows, nil
}

// RenderPrecisionAtK formats the precision@k curves.
func RenderPrecisionAtK(rows []PrecisionAtKRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s (n=%d):", r.Dataset, r.Total)
		for i, k := range r.Ks {
			fmt.Fprintf(&b, "  P@%d=%.3f", k, r.Precisions[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
