// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic dataset replicas: Table I
// (dataset statistics), Fig. 8 (effectiveness of HEP vs JS vs LGR), Fig. 9
// (effectiveness under varying λ and τ), Fig. 10 (the DBLP case study),
// Table II (HGED computation runtimes), Table III (HEP-DFS vs HEP-BFS vs
// LGR runtimes), Fig. 11 (runtime under varying λ and τ), Fig. 12
// (scalability), plus the repository's two ablations (search strategies and
// EDC permutation-vs-Hungarian).
//
// Functions return typed rows so both cmd/experiments and the root
// bench_test.go can drive them; Render* helpers produce aligned text.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hged/internal/baseline"
	"hged/internal/core"
	"hged/internal/dataset"
	"hged/internal/eval"
	"hged/internal/gen"
	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// Config tunes how heavy the experiment runs are. The zero value selects
// the registry's default replica scales, seed 1, and the paper's default
// parameters (λ=3, τ=5, 3:1 split).
type Config struct {
	// Scale multiplies each dataset's default replica scale (1.0 = the
	// registry defaults; benches use smaller values).
	Scale float64
	// Datasets restricts runs to these names (nil = all six).
	Datasets []string
	// Seed drives splits and pair sampling.
	Seed int64
	// Pairs is the number of node pairs for Table II (default 200;
	// the paper uses 1000).
	Pairs int
	// Lambda, Tau are HEP's parameters (defaults 3 and 5).
	Lambda, Tau int
	// TrainFrac is the training fraction of the split (default 0.75, the
	// paper's 3:1).
	TrainFrac float64
	// MaxExpansions caps each individual HGED search (default 10,000).
	MaxExpansions int64
	// DFSBudgetFactor scales the step budget handed to HGED-DFS and
	// HGED-HEU relative to MaxExpansions (default 25): a DFS/HEU
	// recursion step costs roughly 1/25 of a BFS expansion, so equal-CPU
	// comparisons need unequal step budgets.
	DFSBudgetFactor int64
	// Progress, when non-nil, receives coarse progress messages (dataset
	// started, phase finished) so long runs are observable.
	Progress func(format string, args ...interface{})
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

func (c Config) normalize() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pairs == 0 {
		c.Pairs = 200
	}
	if c.Lambda == 0 {
		c.Lambda = 3
	}
	if c.Tau == 0 {
		c.Tau = 5
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.75
	}
	if c.MaxExpansions == 0 {
		c.MaxExpansions = 10_000
	}
	if c.DFSBudgetFactor == 0 {
		c.DFSBudgetFactor = 25
	}
	return c
}

func (c Config) specs() []dataset.Spec {
	if len(c.Datasets) == 0 {
		return dataset.Registry
	}
	var out []dataset.Spec
	for _, name := range c.Datasets {
		if s, err := dataset.Lookup(name); err == nil {
			out = append(out, s)
		}
	}
	return out
}

func (c Config) replica(s dataset.Spec) (*hypergraph.Hypergraph, error) {
	return s.Replica(s.DefaultScale * c.Scale)
}

// ---------------------------------------------------------------- Table I

// Table1Row pairs a dataset's paper statistics with its replica's.
type Table1Row struct {
	Spec    dataset.Spec
	Replica hypergraph.Stats
}

// Table1 regenerates Table I: the statistics of every dataset replica next
// to the paper's numbers.
func Table1(cfg Config) ([]Table1Row, error) {
	c := cfg.normalize()
	var rows []Table1Row
	for _, s := range c.specs() {
		g, err := c.replica(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		rows = append(rows, Table1Row{Spec: s, Replica: hypergraph.Summarize(g)})
	}
	return rows, nil
}

// RenderTable1 formats Table1 rows.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %10s %7s %5s %7s   %s\n",
		"data", "paper n", "paper m", "mean|E|", "med", "|l(V)|", "replica")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %10d %10d %7.1f %5d %7d   n=%d m=%d mean=%.1f med=%d labels=%d\n",
			r.Spec.Name, r.Spec.PaperNodes, r.Spec.PaperEdges, r.Spec.PaperMean,
			r.Spec.PaperMedian, r.Spec.PaperLabels,
			r.Replica.Nodes, r.Replica.Edges, r.Replica.MeanEdgeSize,
			r.Replica.MedianEdgeSize, r.Replica.NodeLabels)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Row holds the effectiveness of the three methods on one dataset.
type Fig8Row struct {
	Dataset      string
	HEP, JS, LGR eval.PRF
	HeldOut      int
	PredHEP      int
	PredJS       int
	PredLGR      int
}

// Fig8 regenerates Fig. 8: Precision/Recall/F1 of HEP (λ=3, τ=5), JS (λ=3,
// minimum similarity 0.8) and LGR (order 3, 6 features) on each dataset
// under the 3:1 split.
func Fig8(cfg Config) ([]Fig8Row, error) {
	c := cfg.normalize()
	var rows []Fig8Row
	for _, s := range c.specs() {
		c.progress("fig8: %s", s.Name)
		g, err := c.replica(s)
		if err != nil {
			return nil, err
		}
		row, err := fig8One(c, s.Name, g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig8One(c Config, name string, g *hypergraph.Hypergraph) (Fig8Row, error) {
	train, held, err := dataset.Split(g, c.TrainFrac, c.Seed)
	if err != nil {
		return Fig8Row{}, err
	}
	row := Fig8Row{Dataset: name, HeldOut: len(held)}

	hep, err := predict.New(train, predict.Options{
		Lambda: c.Lambda, Tau: c.Tau, MaxExpansions: c.MaxExpansions,
	})
	if err != nil {
		return row, err
	}
	c.progress("fig8: %s HEP", name)
	hepPreds := predictionNodeSets(hep.Run())
	row.PredHEP = len(hepPreds)
	row.HEP, _ = eval.Evaluate(hepPreds, held, eval.MatchOptions{Mode: eval.MatchContainment})

	js, err := baseline.NewJS(train, baseline.JSOptions{Lambda: c.Lambda, MinSim: 0.8})
	if err != nil {
		return row, err
	}
	c.progress("fig8: %s JS", name)
	jsPreds := predictionNodeSets(js.Run())
	row.PredJS = len(jsPreds)
	row.JS, _ = eval.Evaluate(jsPreds, held, eval.MatchOptions{Mode: eval.MatchContainment})

	lgr, err := baseline.NewLGR(train, baseline.LGROptions{Seed: c.Seed})
	if err != nil {
		// Degenerate splits may leave no trainable hyperedges; report
		// zero scores rather than failing the whole figure.
		return row, nil
	}
	c.progress("fig8: %s LGR", name)
	lgrPreds := predictionNodeSets(lgr.Predict())
	row.PredLGR = len(lgrPreds)
	row.LGR, _ = eval.Evaluate(lgrPreds, held, eval.MatchOptions{Mode: eval.MatchContainment})
	return row, nil
}

func predictionNodeSets(preds []predict.Prediction) [][]hypergraph.NodeID {
	out := make([][]hypergraph.NodeID, len(preds))
	for i, p := range preds {
		out[i] = p.Nodes
	}
	return out
}

// RenderFig8 formats Fig8 rows as three sub-tables (a) precision,
// (b) recall, (c) F1 — matching the figure's panels.
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s | %-7s %-7s %-7s | %-7s %-7s %-7s | %-7s %-7s %-7s\n",
		"data", "P(HEP)", "P(JS)", "P(LGR)", "R(HEP)", "R(JS)", "R(LGR)", "F(HEP)", "F(JS)", "F(LGR)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s | %-7.3f %-7.3f %-7.3f | %-7.3f %-7.3f %-7.3f | %-7.3f %-7.3f %-7.3f\n",
			r.Dataset,
			r.HEP.Precision, r.JS.Precision, r.LGR.Precision,
			r.HEP.Recall, r.JS.Recall, r.LGR.Recall,
			r.HEP.F1, r.JS.F1, r.LGR.F1)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 9

// Fig9Point is one sweep point: effectiveness of HEP at a (λ, τ) setting.
type Fig9Point struct {
	Dataset     string
	Lambda, Tau int
	PRF         eval.PRF
}

// Fig9 regenerates Fig. 9 for the given datasets: HEP effectiveness with λ
// varying over lambdas (τ fixed at cfg.Tau) and τ varying over taus (λ
// fixed at cfg.Lambda). The paper sweeps λ ∈ [2,9] and τ ∈ [3,10].
func Fig9(cfg Config, lambdas, taus []int) (lambdaSweep, tauSweep []Fig9Point, err error) {
	c := cfg.normalize()
	for _, s := range c.specs() {
		g, err := c.replica(s)
		if err != nil {
			return nil, nil, err
		}
		train, held, err := dataset.Split(g, c.TrainFrac, c.Seed)
		if err != nil {
			return nil, nil, err
		}
		for _, l := range lambdas {
			c.progress("fig9: %s λ=%d", s.Name, l)
			prf, err := hepPRF(c, train, held, l, c.Tau)
			if err != nil {
				return nil, nil, err
			}
			lambdaSweep = append(lambdaSweep, Fig9Point{s.Name, l, c.Tau, prf})
		}
		for _, tau := range taus {
			c.progress("fig9: %s τ=%d", s.Name, tau)
			prf, err := hepPRF(c, train, held, c.Lambda, tau)
			if err != nil {
				return nil, nil, err
			}
			tauSweep = append(tauSweep, Fig9Point{s.Name, c.Lambda, tau, prf})
		}
	}
	return lambdaSweep, tauSweep, nil
}

func hepPRF(c Config, train *hypergraph.Hypergraph, held []hypergraph.Hyperedge, lambda, tau int) (eval.PRF, error) {
	p, err := predict.New(train, predict.Options{
		Lambda: lambda, Tau: tau, MaxExpansions: c.MaxExpansions,
	})
	if err != nil {
		return eval.PRF{}, err
	}
	prf, _ := eval.Evaluate(predictionNodeSets(p.Run()), held, eval.MatchOptions{Mode: eval.MatchContainment})
	return prf, nil
}

// RenderFig9 formats the two sweeps.
func RenderFig9(lambdaSweep, tauSweep []Fig9Point) string {
	var b strings.Builder
	b.WriteString("varying λ (τ fixed):\n")
	for _, p := range lambdaSweep {
		fmt.Fprintf(&b, "  %-5s λ=%d τ=%d  %s\n", p.Dataset, p.Lambda, p.Tau, p.PRF)
	}
	b.WriteString("varying τ (λ fixed):\n")
	for _, p := range tauSweep {
		fmt.Fprintf(&b, "  %-5s λ=%d τ=%d  %s\n", p.Dataset, p.Lambda, p.Tau, p.PRF)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table II

// Table2Row reports the average per-pair runtime of the three HGED solvers
// on one dataset.
type Table2Row struct {
	Dataset string
	Pairs   int
	HEU     time.Duration // average per pair
	DFS     time.Duration
	BFS     time.Duration
}

// Table2 regenerates Table II: each solver computes σ for the same sampled
// node pairs with the paper's τ=10 verification cap; per-pair averages are
// reported.
func Table2(cfg Config) ([]Table2Row, error) {
	c := cfg.normalize()
	const tau = 10 // "we can set the upper bound HGED to be 10" (§VI)
	var rows []Table2Row
	for _, s := range c.specs() {
		g, err := c.replica(s)
		if err != nil {
			return nil, err
		}
		c.progress("table2: %s", s.Name)
		row := Table2Row{Dataset: s.Name, Pairs: c.Pairs}
		pairs := samplePairs(g, c.Pairs, c.Seed)
		egos := egoCache(g, pairs)
		bfsOpts := core.Options{Threshold: tau, MaxExpansions: c.MaxExpansions}
		enumOpts := core.Options{Threshold: tau, MaxExpansions: c.MaxExpansions * c.DFSBudgetFactor}

		row.HEU = timeSolver(pairs, egos, func(a, b *hypergraph.Hypergraph) { core.HEU(a, b, enumOpts) })
		row.DFS = timeSolver(pairs, egos, func(a, b *hypergraph.Hypergraph) { core.DFS(a, b, enumOpts) })
		row.BFS = timeSolver(pairs, egos, func(a, b *hypergraph.Hypergraph) { core.BFS(a, b, bfsOpts) })
		rows = append(rows, row)
	}
	return rows, nil
}

type nodePair struct{ u, v hypergraph.NodeID }

func samplePairs(g *hypergraph.Hypergraph, k int, seed int64) []nodePair {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	pairs := make([]nodePair, 0, k)
	for len(pairs) < k && n >= 2 {
		u := hypergraph.NodeID(rng.Intn(n))
		v := hypergraph.NodeID(rng.Intn(n))
		if u != v {
			pairs = append(pairs, nodePair{u, v})
		}
	}
	return pairs
}

func egoCache(g *hypergraph.Hypergraph, pairs []nodePair) map[hypergraph.NodeID]*hypergraph.Hypergraph {
	egos := make(map[hypergraph.NodeID]*hypergraph.Hypergraph)
	for _, p := range pairs {
		for _, v := range []hypergraph.NodeID{p.u, p.v} {
			if _, ok := egos[v]; !ok {
				egos[v] = g.Ego(v)
			}
		}
	}
	return egos
}

func timeSolver(pairs []nodePair, egos map[hypergraph.NodeID]*hypergraph.Hypergraph, run func(a, b *hypergraph.Hypergraph)) time.Duration {
	if len(pairs) == 0 {
		return 0
	}
	start := time.Now()
	for _, p := range pairs {
		run(egos[p.u], egos[p.v])
	}
	return time.Since(start) / time.Duration(len(pairs))
}

// RenderTable2 formats Table2 rows.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %8s %14s %14s %14s\n", "data", "pairs", "HGED-HEU", "HGED-DFS", "HGED-BFS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %8d %14s %14s %14s\n", r.Dataset, r.Pairs, r.HEU, r.DFS, r.BFS)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table III

// Table3Row reports full prediction runtimes on one dataset.
type Table3Row struct {
	Dataset string
	HEPDFS  time.Duration
	HEPBFS  time.Duration
	LGR     time.Duration
}

// Table3 regenerates Table III: wall-clock time of a full HEP-DFS, HEP-BFS,
// and LGR prediction run (λ=3, τ=5) per dataset.
func Table3(cfg Config) ([]Table3Row, error) {
	c := cfg.normalize()
	var rows []Table3Row
	for _, s := range c.specs() {
		g, err := c.replica(s)
		if err != nil {
			return nil, err
		}
		train, _, err := dataset.Split(g, c.TrainFrac, c.Seed)
		if err != nil {
			return nil, err
		}
		c.progress("table3: %s", s.Name)
		row := Table3Row{Dataset: s.Name}

		row.HEPDFS, err = timeHEP(c, train, predict.AlgDFS)
		if err != nil {
			return nil, err
		}
		row.HEPBFS, err = timeHEP(c, train, predict.AlgBFS)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if lgr, err := baseline.NewLGR(train, baseline.LGROptions{Seed: c.Seed}); err == nil {
			lgr.Predict()
		}
		row.LGR = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

func timeHEP(c Config, train *hypergraph.Hypergraph, alg predict.Algorithm) (time.Duration, error) {
	budget := c.MaxExpansions
	if alg != predict.AlgBFS {
		budget *= c.DFSBudgetFactor // equal CPU, not equal steps
	}
	p, err := predict.New(train, predict.Options{
		Lambda: c.Lambda, Tau: c.Tau, Algorithm: alg, MaxExpansions: budget,
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	p.Run()
	return time.Since(start), nil
}

// RenderTable3 formats Table3 rows.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %14s %14s %14s\n", "data", "HEP-DFS", "HEP-BFS", "LGR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %14s %14s %14s\n", r.Dataset, r.HEPDFS, r.HEPBFS, r.LGR)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 11

// Fig11Point is one runtime sweep point on the MO replica.
type Fig11Point struct {
	Dataset     string
	Lambda, Tau int
	HEPDFS      time.Duration
	HEPBFS      time.Duration
}

// Fig11 regenerates Fig. 11: HEP-DFS and HEP-BFS runtimes with λ varying
// (τ fixed) and τ varying (λ fixed), on the first configured dataset (the
// paper uses MO, the default).
func Fig11(cfg Config, lambdas, taus []int) (lambdaSweep, tauSweep []Fig11Point, err error) {
	c := cfg.normalize()
	name := "MO"
	if len(c.Datasets) > 0 {
		name = c.Datasets[0]
	}
	spec, err := dataset.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	g, err := c.replica(spec)
	if err != nil {
		return nil, nil, err
	}
	train, _, err := dataset.Split(g, c.TrainFrac, c.Seed)
	if err != nil {
		return nil, nil, err
	}
	sweep := func(lambda, tau int) (Fig11Point, error) {
		c.progress("fig11: %s λ=%d τ=%d", name, lambda, tau)
		pt := Fig11Point{Dataset: name, Lambda: lambda, Tau: tau}
		cc := c
		cc.Lambda, cc.Tau = lambda, tau
		var err error
		if pt.HEPDFS, err = timeHEP(cc, train, predict.AlgDFS); err != nil {
			return pt, err
		}
		pt.HEPBFS, err = timeHEP(cc, train, predict.AlgBFS)
		return pt, err
	}
	for _, l := range lambdas {
		pt, err := sweep(l, c.Tau)
		if err != nil {
			return nil, nil, err
		}
		lambdaSweep = append(lambdaSweep, pt)
	}
	for _, tau := range taus {
		pt, err := sweep(c.Lambda, tau)
		if err != nil {
			return nil, nil, err
		}
		tauSweep = append(tauSweep, pt)
	}
	return lambdaSweep, tauSweep, nil
}

// RenderFig11 formats the runtime sweeps.
func RenderFig11(lambdaSweep, tauSweep []Fig11Point) string {
	ds := "MO"
	if len(lambdaSweep) > 0 {
		ds = lambdaSweep[0].Dataset
	} else if len(tauSweep) > 0 {
		ds = tauSweep[0].Dataset
	}
	var b strings.Builder
	fmt.Fprintf(&b, "varying λ (%s):\n", ds)
	for _, p := range lambdaSweep {
		fmt.Fprintf(&b, "  λ=%d τ=%d  HEP-DFS=%s HEP-BFS=%s\n", p.Lambda, p.Tau, p.HEPDFS, p.HEPBFS)
	}
	fmt.Fprintf(&b, "varying τ (%s):\n", ds)
	for _, p := range tauSweep {
		fmt.Fprintf(&b, "  λ=%d τ=%d  HEP-DFS=%s HEP-BFS=%s\n", p.Lambda, p.Tau, p.HEPDFS, p.HEPBFS)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 12

// Fig12Point is one scalability point: runtimes on a fraction of TVG.
type Fig12Point struct {
	Fraction    float64
	Lambda, Tau int
	HEPDFS      time.Duration
	HEPBFS      time.Duration
	Nodes       int
	Edges       int
}

// Fig12 regenerates Fig. 12: runtimes of HEP-DFS and HEP-BFS on the TVG
// replica sub-sampled to the given node/hyperedge fractions, for parameter
// settings (3,5) and (5,5).
func Fig12(cfg Config, fractions []float64) ([]Fig12Point, error) {
	c := cfg.normalize()
	spec, err := dataset.Lookup("TVG")
	if err != nil {
		return nil, err
	}
	g, err := c.replica(spec)
	if err != nil {
		return nil, err
	}
	var points []Fig12Point
	for _, set := range [][2]int{{3, 5}, {5, 5}} {
		for _, f := range fractions {
			c.progress("fig12: λ=%d τ=%d frac=%.0f%%", set[0], set[1], f*100)
			sub := gen.Subsample(g, f, f, c.Seed)
			train, _, err := dataset.Split(sub, c.TrainFrac, c.Seed)
			if err != nil {
				return nil, err
			}
			cc := c
			cc.Lambda, cc.Tau = set[0], set[1]
			pt := Fig12Point{Fraction: f, Lambda: set[0], Tau: set[1], Nodes: sub.NumNodes(), Edges: sub.NumEdges()}
			if pt.HEPDFS, err = timeHEP(cc, train, predict.AlgDFS); err != nil {
				return nil, err
			}
			if pt.HEPBFS, err = timeHEP(cc, train, predict.AlgBFS); err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// RenderFig12 formats the scalability points.
func RenderFig12(points []Fig12Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %4s %4s %8s %8s %14s %14s\n", "frac", "λ", "τ", "nodes", "edges", "HEP-DFS", "HEP-BFS")
	for _, p := range points {
		fmt.Fprintf(&b, "%5.0f%% %4d %4d %8d %8d %14s %14s\n",
			p.Fraction*100, p.Lambda, p.Tau, p.Nodes, p.Edges, p.HEPDFS, p.HEPBFS)
	}
	return b.String()
}
