package experiments

import (
	"fmt"
	"strings"
	"time"

	"hged/internal/core"
	"hged/internal/gen"
)

// AblationRow reports HGED-BFS search effort with one pruning strategy
// disabled (E9 in DESIGN.md): total expansions and wall time over a pair
// sample, against the all-strategies baseline.
type AblationRow struct {
	Variant  string
	Expanded int64
	Elapsed  time.Duration
}

// AblationStrategies measures the contribution of Strategies 1–3 on pairs
// sampled from the given dataset replica (default: HS).
func AblationStrategies(cfg Config) ([]AblationRow, error) {
	c := cfg.normalize()
	specs := c.specs()
	g, err := c.replica(specs[0])
	if err != nil {
		return nil, err
	}
	pairs := samplePairs(g, c.Pairs, c.Seed)
	egos := egoCache(g, pairs)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"all strategies", core.Options{}},
		{"no rerank (S1 off)", core.Options{DisableRerank: true}},
		{"no upper bound (S2 off)", core.Options{DisableUpperBound: true}},
		{"no lower bound (S3 off)", core.Options{DisableLowerBound: true}},
		{"none", core.Options{DisableRerank: true, DisableUpperBound: true, DisableLowerBound: true}},
	}
	var rows []AblationRow
	for _, v := range variants {
		opts := v.opts
		opts.Threshold = 10
		opts.MaxExpansions = c.MaxExpansions
		row := AblationRow{Variant: v.name}
		start := time.Now()
		for _, p := range pairs {
			res := core.BFS(egos[p.u], egos[p.v], opts)
			row.Expanded += res.Expanded
		}
		row.Elapsed = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation formats strategy-ablation rows.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %14s %14s\n", "variant", "expansions", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %14d %14s\n", r.Variant, r.Expanded, r.Elapsed)
	}
	return b.String()
}

// EDCRow compares Algorithm 2's hyperedge-permutation enumeration against
// the Hungarian-assignment computation of the same exact edit cost (E10).
type EDCRow struct {
	Edges       int // hyperedges per side
	Permutation time.Duration
	Hungarian   time.Duration
	Agreements  int
	Trials      int
}

// AblationEDC times EDCPermutation vs EDCAssignment on random hypergraph
// pairs with growing hyperedge counts, verifying they agree.
func AblationEDC(cfg Config, edgeCounts []int) ([]EDCRow, error) {
	c := cfg.normalize()
	var rows []EDCRow
	const trials = 20
	for _, m := range edgeCounts {
		row := EDCRow{Edges: m, Trials: trials}
		for t := 0; t < trials; t++ {
			seed := c.Seed + int64(1000*m+t)
			a := gen.Uniform(10, m, 4, 3, 2, seed)
			b := gen.Uniform(10, m, 4, 3, 2, seed+500)
			nodeMap := identityMap(maxInt(a.NumNodes(), b.NumNodes()))

			start := time.Now()
			p := core.EDCPermutation(a, b, nodeMap)
			row.Permutation += time.Since(start)

			start = time.Now()
			h := core.EDCAssignment(a, b, nodeMap)
			row.Hungarian += time.Since(start)

			if p == h {
				row.Agreements++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderEDC formats EDC-ablation rows.
func RenderEDC(rows []EDCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %16s %16s %10s\n", "edges", "permutation", "hungarian", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %16s %16s %6d/%d\n", r.Edges, r.Permutation, r.Hungarian, r.Agreements, r.Trials)
	}
	return b.String()
}
