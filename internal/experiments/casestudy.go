package experiments

import (
	"fmt"
	"strings"

	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// CaseStudyResult reproduces the Fig. 10 DBLP case study: a co-authorship
// hypergraph around a prolific hub author in "year one", on which HEP
// predicts a hyperedge that only materializes as a real publication in
// "year two" — the paper's example being Han/Ren/Shang/Jiang co-authoring
// in 2017 after not collaborating jointly in 2016.
type CaseStudyResult struct {
	Graph       *hypergraph.Hypergraph
	Names       []string
	Target      []hypergraph.NodeID // the year-two collaboration
	Predictions []predict.Prediction
	// Hit is true when some prediction contains the whole target group.
	Hit bool
	// Explanation narrates one pairwise edit path inside the hit.
	Explanation string
}

// caseStudyAuthors names the synthetic researchers; node 0 is the hub.
var caseStudyAuthors = []string{
	"J. Han (hub)", "X. Ren", "J. Shang", "M. Jiang", // the target group
	"A. Gupta", "B. Li", "C. Wu", // second circle around the hub
	"D. Park", "E. Novak", "F. Qi", // an unrelated systems group
	"G. Roy", "H. Lin", "I. Silva", // an unrelated theory group
}

// CaseStudyGraph builds the year-one co-authorship hypergraph: nodes are
// researchers (labels = research areas), hyperedges are publications
// (labels = venues). The hub publishes with Ren, Shang and Jiang in
// overlapping pairs — but the four never appear on one paper.
func CaseStudyGraph() (*hypergraph.Hypergraph, []string) {
	const (
		areaDataMining hypergraph.Label = 1
		areaSystems    hypergraph.Label = 2
		areaTheory     hypergraph.Label = 3
		venueKDD       hypergraph.Label = 101
		venueICDE      hypergraph.Label = 102
		venueOther     hypergraph.Label = 103
	)
	labels := []hypergraph.Label{
		areaDataMining, areaDataMining, areaDataMining, areaDataMining,
		areaDataMining, areaDataMining, areaDataMining,
		areaSystems, areaSystems, areaSystems,
		areaTheory, areaTheory, areaTheory,
	}
	g := hypergraph.NewLabeled(labels)
	// Year-one publications of the hub with the target group, pairwise but
	// never jointly.
	g.AddEdge(venueKDD, 0, 1, 2)  // Han–Ren–Shang
	g.AddEdge(venueKDD, 0, 1, 3)  // Han–Ren–Jiang
	g.AddEdge(venueKDD, 0, 2, 3)  // Han–Shang–Jiang
	g.AddEdge(venueICDE, 1, 2, 3) // Ren–Shang–Jiang (without the hub)
	// The hub's one side collaboration, and the second circle publishing
	// among themselves.
	g.AddEdge(venueICDE, 0, 4)
	g.AddEdge(venueICDE, 4, 5, 6)
	g.AddEdge(venueICDE, 4, 5)
	g.AddEdge(venueICDE, 5, 6)
	// Unrelated groups publish among themselves.
	g.AddEdge(venueOther, 7, 8, 9)
	g.AddEdge(venueOther, 7, 8)
	g.AddEdge(venueOther, 8, 9)
	g.AddEdge(venueOther, 10, 11, 12)
	g.AddEdge(venueOther, 10, 11)
	g.AddEdge(venueOther, 11, 12)
	return g, append([]string(nil), caseStudyAuthors...)
}

// CaseStudy runs HEP (λ=3, τ=5 — the paper's (3,5)-hyperedges) on the
// year-one graph and checks whether the year-two collaboration
// {Han, Ren, Shang, Jiang} is recovered.
func CaseStudy(cfg Config) (*CaseStudyResult, error) {
	c := cfg.normalize()
	g, names := CaseStudyGraph()
	target := []hypergraph.NodeID{0, 1, 2, 3}

	p, err := predict.New(g, predict.Options{
		Lambda: c.Lambda, Tau: c.Tau, MaxExpansions: c.MaxExpansions,
	})
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{Graph: g, Names: names, Target: target, Predictions: p.Run()}
	for _, pr := range res.Predictions {
		if containsAll(pr.Nodes, target) {
			res.Hit = true
			break
		}
	}
	if res.Hit {
		if ex, err := p.Explain(1, 2); err == nil { // Ren vs Shang
			res.Explanation = ex.String()
		}
	}
	return res, nil
}

func containsAll(haystack, needles []hypergraph.NodeID) bool {
	set := make(map[hypergraph.NodeID]struct{}, len(haystack))
	for _, v := range haystack {
		set[v] = struct{}{}
	}
	for _, v := range needles {
		if _, ok := set[v]; !ok {
			return false
		}
	}
	return true
}

// RenderCaseStudy formats the case-study outcome.
func RenderCaseStudy(r *CaseStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "year-one co-authorship hypergraph: %d researchers, %d publications\n",
		r.Graph.NumNodes(), r.Graph.NumEdges())
	fmt.Fprintf(&b, "target year-two collaboration: %s\n", nameList(r.Names, r.Target))
	fmt.Fprintf(&b, "predicted (λ,τ)-hyperedges: %d\n", len(r.Predictions))
	for _, p := range r.Predictions {
		fmt.Fprintf(&b, "  %s\n", nameList(r.Names, p.Nodes))
	}
	if r.Hit {
		b.WriteString("HIT: the target collaboration is contained in a prediction\n")
	} else {
		b.WriteString("MISS: the target collaboration was not recovered\n")
	}
	if r.Explanation != "" {
		b.WriteString(r.Explanation)
	}
	return b.String()
}

func nameList(names []string, ids []hypergraph.NodeID) string {
	parts := make([]string, len(ids))
	for i, v := range ids {
		if int(v) < len(names) {
			parts[i] = names[v]
		} else {
			parts[i] = fmt.Sprintf("#%d", v)
		}
	}
	return strings.Join(parts, ", ")
}
