package experiments

import (
	"strings"
	"testing"
)

// tiny is a configuration small enough for unit tests: replicas at 1/5 of
// the default scale, few pairs, tight search budgets.
var tiny = Config{
	Scale:         0.2,
	Datasets:      []string{"PS", "HS"},
	Pairs:         20,
	MaxExpansions: 5_000,
	Seed:          3,
}

func TestTable1(t *testing.T) {
	rows, err := Table1(Config{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	out := RenderTable1(rows)
	for _, name := range []string{"PS", "HS", "MO", "WM", "TVG", "AMZ"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
	// Paper columns must be verbatim Table I.
	if !strings.Contains(out, "2268231") || !strings.Contains(out, "4285363") {
		t.Fatalf("AMZ paper stats missing:\n%s", out)
	}
}

func TestFig8ShapesHold(t *testing.T) {
	rows, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderFig8(rows)
	if !strings.Contains(out, "P(HEP)") {
		t.Fatalf("render malformed:\n%s", out)
	}
	for _, r := range rows {
		if r.HeldOut == 0 {
			t.Fatalf("%s: empty held-out set", r.Dataset)
		}
		// The headline claim of Fig. 8(a): HEP's precision beats JS's.
		if r.PredHEP > 0 && r.HEP.Precision < r.JS.Precision {
			t.Fatalf("%s: HEP precision %v below JS %v", r.Dataset, r.HEP.Precision, r.JS.Precision)
		}
	}
}

func TestFig9Sweeps(t *testing.T) {
	cfg := tiny
	cfg.Datasets = []string{"HS"}
	lams, taus, err := Fig9(cfg, []int{2, 3}, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(lams) != 2 || len(taus) != 2 {
		t.Fatalf("sweep sizes %d, %d", len(lams), len(taus))
	}
	out := RenderFig9(lams, taus)
	if !strings.Contains(out, "varying λ") || !strings.Contains(out, "varying τ") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestTable2RuntimeShape(t *testing.T) {
	cfg := tiny
	cfg.Datasets = []string{"MO", "WM"} // the large-dataset rows carry the headline
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BFS <= 0 || r.DFS <= 0 || r.HEU <= 0 {
			t.Fatalf("%s: zero timings %+v", r.Dataset, r)
		}
		// The paper's headline (Table II): on the large datasets HGED-BFS
		// is much faster than HGED-DFS and HGED-HEU.
		if r.BFS > r.DFS {
			t.Fatalf("%s: BFS (%v) slower than DFS (%v)", r.Dataset, r.BFS, r.DFS)
		}
		if r.BFS > r.HEU {
			t.Fatalf("%s: BFS (%v) slower than HEU (%v)", r.Dataset, r.BFS, r.HEU)
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "HGED-BFS") {
		t.Fatal("render malformed")
	}
}

func TestTable3RuntimeShape(t *testing.T) {
	cfg := tiny
	cfg.Datasets = []string{"PS"} // dense contexts: the DFS hyperedge enumeration pays its price
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HEPBFS <= 0 || r.HEPDFS <= 0 {
		t.Fatalf("zero timings: %+v", r)
	}
	// Table III's headline: HEP-BFS needs a fraction of HEP-DFS's time.
	if r.HEPBFS > r.HEPDFS {
		t.Fatalf("HEP-BFS (%v) slower than HEP-DFS (%v)", r.HEPBFS, r.HEPDFS)
	}
	if out := RenderTable3(rows); !strings.Contains(out, "HEP-DFS") {
		t.Fatal("render malformed")
	}
}

func TestFig11Sweeps(t *testing.T) {
	cfg := tiny
	lams, taus, err := Fig11(cfg, []int{2, 3}, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(lams) != 2 || len(taus) != 2 {
		t.Fatalf("sweep sizes %d, %d", len(lams), len(taus))
	}
	if out := RenderFig11(lams, taus); !strings.Contains(out, "PS") {
		t.Fatal("render malformed")
	}
}

func TestFig12Scalability(t *testing.T) {
	cfg := tiny
	points, err := Fig12(cfg, []float64{0.3, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 fractions × 2 parameter settings
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Fraction == 1.0 && p.Nodes == 0 {
			t.Fatal("full fraction lost all nodes")
		}
	}
	if out := RenderFig12(points); !strings.Contains(out, "HEP-BFS") {
		t.Fatal("render malformed")
	}
}

func TestAblationStrategies(t *testing.T) {
	cfg := tiny
	cfg.Datasets = []string{"HS"}
	rows, err := AblationStrategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d, want 5", len(rows))
	}
	base := rows[0] // all strategies
	noLB := rows[3]
	if base.Expanded > noLB.Expanded {
		t.Fatalf("lower bounds should not increase expansions: %d vs %d", base.Expanded, noLB.Expanded)
	}
	if out := RenderAblation(rows); !strings.Contains(out, "no lower bound") {
		t.Fatal("render malformed")
	}
}

func TestAblationEDC(t *testing.T) {
	rows, err := AblationEDC(Config{Seed: 5}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Agreements != r.Trials {
			t.Fatalf("m=%d: permutation and Hungarian disagreed (%d/%d)", r.Edges, r.Agreements, r.Trials)
		}
	}
	if out := RenderEDC(rows); !strings.Contains(out, "hungarian") {
		t.Fatal("render malformed")
	}
}

func TestCaseStudyRecoversCollaboration(t *testing.T) {
	res, err := CaseStudy(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatalf("case study missed the target collaboration:\n%s", RenderCaseStudy(res))
	}
	out := RenderCaseStudy(res)
	if !strings.Contains(out, "HIT") || !strings.Contains(out, "J. Han") {
		t.Fatalf("render malformed:\n%s", out)
	}
	if res.Explanation == "" {
		t.Fatal("case study should include an edit-path explanation")
	}
}

func TestExtensionPrecisionAtK(t *testing.T) {
	cfg := tiny
	cfg.Datasets = []string{"HS"}
	rows, err := ExtensionPrecisionAtK(cfg, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Precisions) != 2 {
		t.Fatalf("precisions = %v", r.Precisions)
	}
	for _, p := range r.Precisions {
		if p < 0 || p > 1 {
			t.Fatalf("precision out of range: %v", r.Precisions)
		}
	}
	if out := RenderPrecisionAtK(rows); !strings.Contains(out, "P@5") {
		t.Fatalf("render malformed: %s", out)
	}
}

func TestCaseStudyGraphIsValid(t *testing.T) {
	g, names := CaseStudyGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != len(names) {
		t.Fatalf("%d nodes but %d names", g.NumNodes(), len(names))
	}
}
