package core

import (
	"math/rand"
	"testing"

	"hged/internal/hypergraph"
)

func TestMatrixBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	graphs := make([]*hypergraph.Hypergraph, 5)
	for i := range graphs {
		graphs[i] = randomHypergraph(rng, 4, 3, 3)
	}
	m := Matrix(graphs, Options{}, 1)
	for i := range graphs {
		if m[i][i] != 0 {
			t.Fatalf("diagonal [%d][%d] = %d", i, i, m[i][i])
		}
		for j := range graphs {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric at (%d,%d): %d vs %d", i, j, m[i][j], m[j][i])
			}
			if want := Distance(graphs[i], graphs[j]); m[i][j] != want {
				t.Fatalf("[%d][%d] = %d, want %d", i, j, m[i][j], want)
			}
		}
	}
}

func TestMatrixParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	graphs := make([]*hypergraph.Hypergraph, 6)
	for i := range graphs {
		graphs[i] = randomHypergraph(rng, 4, 3, 3)
	}
	seq := Matrix(graphs, Options{}, 1)
	par := Matrix(graphs, Options{}, 4)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("parallel differs at (%d,%d): %d vs %d", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestMatrixThreshold(t *testing.T) {
	g, h := egoPair() // distance 6
	m := Matrix([]*hypergraph.Hypergraph{g, h}, Options{Threshold: 3}, 1)
	if m[0][1] != NotWithin {
		t.Fatalf("expected NotWithin, got %d", m[0][1])
	}
	m = Matrix([]*hypergraph.Hypergraph{g, h}, Options{Threshold: 6}, 1)
	if m[0][1] != 6 {
		t.Fatalf("expected 6, got %d", m[0][1])
	}
}

func TestNodeMatrix(t *testing.T) {
	g := hypergraph.Fig1()
	nodes := []hypergraph.NodeID{hypergraph.U(4), hypergraph.U(5)}
	m := NodeMatrix(g, nodes, Options{}, 2)
	if m[0][1] != 6 {
		t.Fatalf("σ(u4,u5) via matrix = %d, want 6", m[0][1])
	}
}

func TestMatrixEmpty(t *testing.T) {
	if got := Matrix(nil, Options{}, 3); len(got) != 0 {
		t.Fatal("empty input should give empty matrix")
	}
}
