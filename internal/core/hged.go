package core

import "hged/internal/hypergraph"

// Distance computes the exact hypergraph edit distance HGED(g, h)
// (Definition 3) using HGED-BFS with all pruning strategies enabled.
func Distance(g, h *hypergraph.Hypergraph) int {
	return BFS(g, h, Options{}).Distance
}

// DistanceWithin verifies whether HGED(g, h) ≤ tau. It returns the exact
// distance and true when within the threshold; otherwise (0, false). tau
// must be ≥ 0.
func DistanceWithin(g, h *hypergraph.Hypergraph, tau int) (int, bool) {
	if tau < 0 {
		return 0, false
	}
	// Threshold 0 would mean "unbounded" to Options; check isomorphism
	// directly through a τ=1 search instead.
	opts := Options{Threshold: tau}
	if tau == 0 {
		if hypergraph.Isomorphic(g, h) {
			return 0, true
		}
		return 0, false
	}
	res := BFS(g, h, opts)
	if res.Exceeded {
		return 0, false
	}
	return res.Distance, true
}

// DistanceWithPath computes HGED(g, h) and an optimal hypergraph edit path
// realizing it (Section IV-D).
func DistanceWithPath(g, h *hypergraph.Hypergraph) (int, *Path) {
	res := BFS(g, h, Options{})
	return res.Distance, res.Path
}

// NodeDistance computes the node-similar distance σ(u, v) of Problem 1: the
// HGED between the ego networks of u and v in host graph g.
func NodeDistance(g *hypergraph.Hypergraph, u, v hypergraph.NodeID, opts Options) Result {
	return BFS(g.Ego(u), g.Ego(v), opts)
}
