package core

import (
	"fmt"

	"hged/internal/hypergraph"
)

// Mapping is a complete correspondence between the entities of a source and
// a target hypergraph, with the smaller side padded by null entities
// (Lemma 4.1 guarantees an optimal edit sequence needs no node insertion
// when the source is at least as large, which padding encodes symmetrically):
//
//   - NodeMap[i] = j maps source node slot i to target node slot j. Slots
//     < SrcN (resp. < TgtN) are real nodes; higher slots are nulls. A real
//     source node mapped to a null target slot is deleted; a null source
//     slot mapped to a real target node is inserted.
//   - EdgeMap analogously for hyperedges.
//
// Both maps are permutations of 0..N-1 and 0..M-1 where N = max(n, n') and
// M = max(m, m').
type Mapping struct {
	SrcN, TgtN int // real node counts n, n'
	SrcM, TgtM int // real hyperedge counts m, m'
	NodeMap    []int
	EdgeMap    []int
}

// PaddedN returns N = max(SrcN, TgtN).
func (mp *Mapping) PaddedN() int { return maxInt(mp.SrcN, mp.TgtN) }

// PaddedM returns M = max(SrcM, TgtM).
func (mp *Mapping) PaddedM() int { return maxInt(mp.SrcM, mp.TgtM) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate checks that both maps are permutations of the padded ranges.
func (mp *Mapping) Validate() error {
	if err := checkPerm("NodeMap", mp.NodeMap, mp.PaddedN()); err != nil {
		return err
	}
	return checkPerm("EdgeMap", mp.EdgeMap, mp.PaddedM())
}

func checkPerm(name string, perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("core: %s has length %d, want %d", name, len(perm), n)
	}
	seen := make([]bool, n)
	for i, j := range perm {
		if j < 0 || j >= n {
			return fmt.Errorf("core: %s[%d] = %d out of range", name, i, j)
		}
		if seen[j] {
			return fmt.Errorf("core: %s maps twice to %d", name, j)
		}
		seen[j] = true
	}
	return nil
}

// graphData is the solver-internal compiled form of a hypergraph: flat label
// slices, edge member lists, and per-edge membership bitsets for O(1)
// intersection tests. All storage is arena-backed (edge member lists slice
// into nodeArena, bitsets into the flat memberBits) so that a pooled Solver
// can recompile graphs into the same buffers without reallocating.
type graphData struct {
	n, m       int
	nodeLabels []hypergraph.Label
	edgeLabels []hypergraph.Label
	edgeNodes  [][]int // slices into nodeArena
	nodeArena  []int
	cards      []int
	// memberBits is a flat bitset array: edge e owns the bitWords words at
	// [e*bitWords, (e+1)*bitWords), marking node membership in e.
	memberBits []uint64
	bitWords   int
	degrees    []int
	// csr is the frozen view this compilation was built from; init reuses
	// its interned label dictionary for the pair-union densify.
	csr *hypergraph.CSR
}

// reset recompiles g into d, reusing d's buffers when they have capacity.
// The flat slices are filled straight from g's frozen CSR view — offset
// ranges and interned-label arrays — so compilation is sequential copies.
func (d *graphData) reset(g *hypergraph.Hypergraph) {
	c := g.Freeze()
	n, m := c.NumNodes(), c.NumEdges()
	d.n, d.m = n, m
	d.csr = c
	labels := c.Labels()
	d.nodeLabels = growLabels(d.nodeLabels, n)
	d.degrees = growInts(d.degrees, n)
	for v, id := range c.NodeLabelIDs() {
		d.nodeLabels[v] = labels[id]
		d.degrees[v] = c.Degree(hypergraph.NodeID(v))
	}
	d.edgeLabels = growLabels(d.edgeLabels, m)
	d.edgeNodes = growIntSlices(d.edgeNodes, m)
	d.cards = growInts(d.cards, m)
	d.bitWords = (n + 63) / 64
	d.memberBits = growUint64s(d.memberBits, m*d.bitWords)
	for i := range d.memberBits {
		d.memberBits[i] = 0
	}
	d.nodeArena = growInts(d.nodeArena, c.Incidences())
	next := 0
	for e := 0; e < m; e++ {
		members := c.Members(hypergraph.EdgeID(e))
		d.edgeLabels[e] = labels[c.EdgeLabelID(hypergraph.EdgeID(e))]
		d.cards[e] = len(members)
		nodes := d.nodeArena[next : next+len(members)]
		next += len(members)
		bits := d.memberBits[e*d.bitWords : (e+1)*d.bitWords]
		for i, v := range members {
			nodes[i] = int(v)
			bits[int(v)/64] |= 1 << (uint(v) % 64)
		}
		d.edgeNodes[e] = nodes
	}
}

func compile(g *hypergraph.Hypergraph) *graphData {
	d := new(graphData)
	d.reset(g)
	return d
}

func (d *graphData) contains(e, v int) bool {
	if v < 0 || v >= d.n {
		return false
	}
	return d.memberBits[e*d.bitWords+v/64]&(1<<(uint(v)%64)) != 0
}

// growInts and friends return a slice of length n, reusing buf's backing
// array when it is large enough. Contents are unspecified unless the caller
// overwrites them.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growInt32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growUint64s(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growLabels(buf []hypergraph.Label, n int) []hypergraph.Label {
	if cap(buf) < n {
		return make([]hypergraph.Label, n)
	}
	return buf[:n]
}

func growIntSlices(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		return make([][]int, n)
	}
	return buf[:n]
}

// pair bundles the compiled source and target for cost evaluation, with
// shared dense label dictionaries so search code can use array-indexed
// label multisets instead of maps. A pair owned by a Solver is re-initialized
// in place across solves; its dictionaries, label slices and scratch buffers
// are retained and reused.
type pair struct {
	src, tgt *graphData
	paddedN  int
	paddedM  int
	w        CostModel
	// Dense label indices over the union of both graphs' labels.
	srcNodeLab, tgtNodeLab []int
	srcEdgeLab, tgtEdgeLab []int
	numNodeLab, numEdgeLab int
	// Retained label dictionaries (cleared, not reallocated, per init).
	nodeDict, edgeDict map[hypergraph.Label]int
	// labTrans is scratch translating one graph's interned label ids into
	// pair-dictionary ids (-1 = not yet translated this pass).
	labTrans []int
	// Root lower-bound scratch (see bounds.go rootLowerBound).
	psiCnt                     []int32
	cardScratchA, cardScratchB []int
	// Memoized EDC-INAC target-edge index (see edc.go): built at most once
	// per initialized pair, shared by every complete mapping evaluated.
	tgtIndex      edgeSetIndex
	tgtIndexBuilt bool
	// EDC-INAC scratch.
	edcMapped  []int
	edcMatched []bool
}

func newPair(g, h *hypergraph.Hypergraph) *pair {
	return newPairModel(g, h, UnitCosts())
}

func newPairModel(g, h *hypergraph.Hypergraph, w CostModel) *pair {
	p := new(pair)
	p.init(g, h, w)
	return p
}

// init (re)compiles the pair model into p, reusing retained storage.
func (p *pair) init(g, h *hypergraph.Hypergraph, w CostModel) {
	if p.src == nil {
		p.src, p.tgt = new(graphData), new(graphData)
	}
	p.src.reset(g)
	p.tgt.reset(h)
	p.paddedN = maxInt(p.src.n, p.tgt.n)
	p.paddedM = maxInt(p.src.m, p.tgt.m)
	p.w = w
	if p.nodeDict == nil {
		p.nodeDict = make(map[hypergraph.Label]int)
		p.edgeDict = make(map[hypergraph.Label]int)
	} else {
		clear(p.nodeDict)
		clear(p.edgeDict)
	}
	cs, ct := p.src.csr, p.tgt.csr
	p.srcNodeLab = p.densify(p.srcNodeLab, cs.NodeLabelIDs(), cs.Labels(), p.nodeDict)
	p.tgtNodeLab = p.densify(p.tgtNodeLab, ct.NodeLabelIDs(), ct.Labels(), p.nodeDict)
	p.numNodeLab = len(p.nodeDict)
	p.srcEdgeLab = p.densify(p.srcEdgeLab, cs.EdgeLabelIDs(), cs.Labels(), p.edgeDict)
	p.tgtEdgeLab = p.densify(p.tgtEdgeLab, ct.EdgeLabelIDs(), ct.Labels(), p.edgeDict)
	p.numEdgeLab = len(p.edgeDict)
	p.tgtIndexBuilt = false
}

// densify translates one graph's interned label ids (indices into dict, its
// frozen CSR dictionary) into the pair-union dense ids, inserting unseen
// labels in first-occurrence order — exactly the order the historical
// label-by-label map walk produced, which solver determinism relies on.
// Each distinct label probes the pair dictionary once; repeats hit the
// translation scratch array.
func (p *pair) densify(out []int, ids []int32, dict []hypergraph.Label, pairDict map[hypergraph.Label]int) []int {
	out = growInts(out, len(ids))
	p.labTrans = growInts(p.labTrans, len(dict))
	for i := range p.labTrans {
		p.labTrans[i] = -1
	}
	for i, id := range ids {
		t := p.labTrans[id]
		if t < 0 {
			var ok bool
			t, ok = pairDict[dict[id]]
			if !ok {
				t = len(pairDict)
				pairDict[dict[id]] = t
			}
			p.labTrans[id] = t
		}
		out[i] = t
	}
	return out
}

// nodeCost returns the cost of mapping source node slot i to target node
// slot j: a relabel for mismatched real-real pairs, a node deletion or
// insertion when one side is null.
func (p *pair) nodeCost(i, j int) int {
	iReal, jReal := i < p.src.n, j < p.tgt.n
	switch {
	case iReal && jReal:
		if p.src.nodeLabels[i] != p.tgt.nodeLabels[j] {
			return p.w.NodeRelabel
		}
		return 0
	case iReal != jReal:
		return p.w.Node // deletion or insertion
	default:
		return 0 // null-null (cannot occur with one-sided padding)
	}
}

// edgeCost returns the exact cost of mapping source edge slot e to target
// edge slot f under a complete node map: label mismatch plus the symmetric
// difference |fmap(E_e) Δ E'_f| of incidences, or cardinality+1 for
// deletion/insertion.
func (p *pair) edgeCost(e, f int, nodeMap []int) int {
	eReal, fReal := e < p.src.m, f < p.tgt.m
	switch {
	case eReal && fReal:
		cost := 0
		if p.src.edgeLabels[e] != p.tgt.edgeLabels[f] {
			cost = p.w.EdgeRelabel
		}
		inter := 0
		for _, u := range p.src.edgeNodes[e] {
			if p.tgt.contains(f, nodeMap[u]) {
				inter++
			}
		}
		return cost + (p.src.cards[e]+p.tgt.cards[f]-2*inter)*p.w.Incidence
	case eReal:
		// Delete edge: reduce each member, then delete.
		return p.w.Edge + p.src.cards[e]*p.w.Incidence
	case fReal:
		// Insert edge: insert empty, then extend.
		return p.w.Edge + p.tgt.cards[f]*p.w.Incidence
	default:
		return 0
	}
}

// totalCost evaluates the exact edit cost of a complete mapping.
func (p *pair) totalCost(mp *Mapping) int {
	cost := 0
	for i, j := range mp.NodeMap {
		cost += p.nodeCost(i, j)
	}
	for e, f := range mp.EdgeMap {
		cost += p.edgeCost(e, f, mp.NodeMap)
	}
	return cost
}

// Cost computes the exact edit cost of transforming g into h under the
// complete mapping mp. It is exported for tests and tooling; the solvers
// use the same evaluation internally.
func Cost(g, h *hypergraph.Hypergraph, mp *Mapping) (int, error) {
	if mp.SrcN != g.NumNodes() || mp.TgtN != h.NumNodes() ||
		mp.SrcM != g.NumEdges() || mp.TgtM != h.NumEdges() {
		return 0, fmt.Errorf("core: mapping sized for (%d,%d)x(%d,%d), graphs are (%d,%d)x(%d,%d)",
			mp.SrcN, mp.SrcM, mp.TgtN, mp.TgtM,
			g.NumNodes(), g.NumEdges(), h.NumNodes(), h.NumEdges())
	}
	if err := mp.Validate(); err != nil {
		return 0, err
	}
	return newPair(g, h).totalCost(mp), nil
}

// extractPath derives an explicit edit path from a complete mapping. The
// number of operations equals the mapping's exact cost. Operations are
// ordered so that Path.Apply succeeds: node insertions first, then
// relabels, matched-edge extend/reduce, edge insertions (+extends), edge
// deletions (reduce to empty, then delete), and finally node deletions.
func (p *pair) extractPath(mp *Mapping) *Path {
	var ops []Op
	// Inverse node map: target slot -> source slot.
	invNode := make([]int, mp.PaddedN())
	for i, j := range mp.NodeMap {
		invNode[j] = i
	}

	// 1. Node insertions (null source slot -> real target node). The new
	// node occupies its source slot id and takes the target node's label.
	for i, j := range mp.NodeMap {
		if i >= p.src.n && j < p.tgt.n {
			ops = append(ops, Op{Kind: OpNodeInsert, Node: i, Label: p.tgt.nodeLabels[j]})
		}
	}
	// 2. Node relabels.
	for i, j := range mp.NodeMap {
		if i < p.src.n && j < p.tgt.n && p.src.nodeLabels[i] != p.tgt.nodeLabels[j] {
			ops = append(ops, Op{Kind: OpNodeRelabel, Node: i, Label: p.tgt.nodeLabels[j]})
		}
	}
	// 3. Matched real-real edges: relabel, reduce members not mapping into
	// the target edge, extend with preimages of uncovered target members.
	for e, f := range mp.EdgeMap {
		if e >= p.src.m || f >= p.tgt.m {
			continue
		}
		if p.src.edgeLabels[e] != p.tgt.edgeLabels[f] {
			ops = append(ops, Op{Kind: OpEdgeRelabel, Edge: e, Label: p.tgt.edgeLabels[f]})
		}
		for _, u := range p.src.edgeNodes[e] {
			if !p.tgt.contains(f, mp.NodeMap[u]) {
				ops = append(ops, Op{Kind: OpEdgeReduce, Edge: e, Node: u})
			}
		}
		for _, v := range p.tgt.edgeNodes[f] {
			u := invNode[v]
			if u >= p.src.n || !p.src.contains(e, u) {
				ops = append(ops, Op{Kind: OpEdgeExtend, Edge: e, Node: u})
			}
		}
	}
	// 4. Edge insertions (null source slot -> real target edge): insert an
	// empty hyperedge then extend it with the preimages of the target
	// edge's members.
	for e, f := range mp.EdgeMap {
		if e < p.src.m || f >= p.tgt.m {
			continue
		}
		ops = append(ops, Op{Kind: OpEdgeInsert, Edge: e, Label: p.tgt.edgeLabels[f]})
		for _, v := range p.tgt.edgeNodes[f] {
			ops = append(ops, Op{Kind: OpEdgeExtend, Edge: e, Node: invNode[v]})
		}
	}
	// 5. Edge deletions (real source edge -> null target slot): reduce to
	// cardinality 0 then delete.
	for e, f := range mp.EdgeMap {
		if e >= p.src.m || f < p.tgt.m {
			continue
		}
		for _, u := range p.src.edgeNodes[e] {
			ops = append(ops, Op{Kind: OpEdgeReduce, Edge: e, Node: u})
		}
		ops = append(ops, Op{Kind: OpEdgeDelete, Edge: e})
	}
	// 6. Node deletions (real source node -> null target slot).
	for i, j := range mp.NodeMap {
		if i < p.src.n && j >= p.tgt.n {
			ops = append(ops, Op{Kind: OpNodeDelete, Node: i})
		}
	}
	return &Path{Ops: ops, Mapping: *mp}
}
