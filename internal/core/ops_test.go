package core

import (
	"strings"
	"testing"

	"hged/internal/hypergraph"
)

func TestOpKindString(t *testing.T) {
	kinds := map[OpKind]string{
		OpNodeDelete:  "node-delete",
		OpNodeInsert:  "node-insert",
		OpEdgeDelete:  "edge-delete",
		OpEdgeInsert:  "edge-insert",
		OpEdgeReduce:  "edge-reduce",
		OpEdgeExtend:  "edge-extend",
		OpNodeRelabel: "node-relabel",
		OpEdgeRelabel: "edge-relabel",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
	if !strings.HasPrefix(OpKind(99).String(), "OpKind(") {
		t.Fatal("unknown kind should render numerically")
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpNodeDelete, Node: 3}, "delete node #3"},
		{Op{Kind: OpNodeInsert, Node: 2, Label: 7}, "insert node #2 with label 7"},
		{Op{Kind: OpEdgeReduce, Edge: 1, Node: 4}, "reduce hyperedge #1 by node #4"},
		{Op{Kind: OpEdgeExtend, Edge: 0, Node: 5}, "extend hyperedge #0 with node #5"},
		{Op{Kind: OpEdgeRelabel, Edge: 2, Label: 9}, "relabel hyperedge #2 to 9"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Fatalf("op string = %q, want %q", got, c.want)
		}
	}
}

func TestApplyManualSequence(t *testing.T) {
	// Rebuild Example 2 manually: transform EGO(u4) toward EGO(u5).
	g, h := egoPair()
	// EGO(u4) local ids: nodes are NEI(u4)={u1,u2,u4,u5,u6,u7,u8} → 0..6,
	// so u6 is local node 4. Edges: E1→0, E2→1, E4→2; E2 = {u4,u6,u7} →
	// locals {2,4,5}.
	path := &Path{Ops: []Op{
		{Kind: OpEdgeRelabel, Edge: 0, Label: hypergraph.LabelGrey}, // E1: orange→grey
		{Kind: OpEdgeReduce, Edge: 1, Node: 2},                      // u4 out of E2
		{Kind: OpEdgeReduce, Edge: 1, Node: 4},                      // u6 out of E2
		{Kind: OpEdgeReduce, Edge: 1, Node: 5},                      // u7 out of E2
		{Kind: OpEdgeDelete, Edge: 1},                               // delete E2
		{Kind: OpNodeDelete, Node: 4},                               // delete u6
	}}
	got, err := path.Apply(g)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !hypergraph.Isomorphic(got, h) {
		t.Fatalf("Example 2's six operations must reach EGO(u5):\ngot %v\nwant %v", got, h)
	}
}

func TestApplyRejectsInvalidSequences(t *testing.T) {
	g := hypergraph.New(2)
	g.AddEdge(1, 0, 1)

	cases := []struct {
		name string
		ops  []Op
	}{
		{"delete node still in edge", []Op{{Kind: OpNodeDelete, Node: 0}}},
		{"delete non-empty edge", []Op{{Kind: OpEdgeDelete, Edge: 0}}},
		{"delete absent node", []Op{{Kind: OpNodeDelete, Node: 5}}},
		{"relabel absent node", []Op{{Kind: OpNodeRelabel, Node: 5, Label: 2}}},
		{"reduce by non-member", []Op{{Kind: OpEdgeReduce, Edge: 0, Node: 5}}},
		{"extend with duplicate", []Op{{Kind: OpEdgeExtend, Edge: 0, Node: 1}}},
		{"extend absent edge", []Op{{Kind: OpEdgeExtend, Edge: 7, Node: 0}}},
		{"insert existing node", []Op{{Kind: OpNodeInsert, Node: 0, Label: 1}}},
		{"insert existing edge", []Op{{Kind: OpEdgeInsert, Edge: 0, Label: 1}}},
		{"relabel absent edge", []Op{{Kind: OpEdgeRelabel, Edge: 9, Label: 1}}},
		{"reduce absent edge", []Op{{Kind: OpEdgeReduce, Edge: 9, Node: 0}}},
		{"extend with absent node", []Op{
			{Kind: OpEdgeReduce, Edge: 0, Node: 1},
			{Kind: OpEdgeReduce, Edge: 0, Node: 0},
			{Kind: OpNodeDelete, Node: 1},
			{Kind: OpEdgeExtend, Edge: 0, Node: 1},
		}},
	}
	for _, c := range cases {
		p := &Path{Ops: c.ops}
		if _, err := p.Apply(g); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestApplyInsertions(t *testing.T) {
	g := hypergraph.New(0)
	p := &Path{Ops: []Op{
		{Kind: OpNodeInsert, Node: 0, Label: 1},
		{Kind: OpNodeInsert, Node: 1, Label: 2},
		{Kind: OpEdgeInsert, Edge: 0, Label: 5},
		{Kind: OpEdgeExtend, Edge: 0, Node: 0},
		{Kind: OpEdgeExtend, Edge: 0, Node: 1},
	}}
	got, err := p.Apply(g)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	want := hypergraph.NewLabeled([]hypergraph.Label{1, 2})
	want.AddEdge(5, 0, 1)
	if !hypergraph.Isomorphic(got, want) {
		t.Fatalf("built %v, want %v", got, want)
	}
}

func TestExplainRendersEveryOp(t *testing.T) {
	g, h := egoPair()
	_, path := DistanceWithPath(g, h)
	lines := Explain(path, nil)
	if len(lines) != path.Cost() {
		t.Fatalf("explanation lines %d != ops %d", len(lines), path.Cost())
	}
	s := ExplainString(path, nil)
	if !strings.Contains(s, "(1)") || !strings.Contains(s, "(6)") {
		t.Fatalf("numbered narrative malformed:\n%s", s)
	}
}

func TestExplainWithNamer(t *testing.T) {
	p := &Path{Ops: []Op{
		{Kind: OpEdgeRelabel, Edge: 0, Label: hypergraph.LabelGrey},
		{Kind: OpNodeDelete, Node: 4},
	}}
	namer := &Namer{
		Node: func(slot int) string { return "Alice" },
		Edge: func(slot int) string { return "reading club" },
		Label: func(l hypergraph.Label) string {
			if l == hypergraph.LabelGrey {
				return "grey"
			}
			return "?"
		},
	}
	lines := Explain(p, namer)
	if lines[0] != "group reading club changes its interest to grey" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != "Alice leaves the network" {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestExplainNilPath(t *testing.T) {
	if Explain(nil, nil) != nil {
		t.Fatal("nil path should yield nil explanation")
	}
	if ExplainString(nil, nil) != "" {
		t.Fatal("nil path should yield empty narrative")
	}
}
