package core

import "hged/internal/hypergraph"

// DFS implements HGED-DFS: Algorithm 1 with the inaccurate cost procedure
// replaced by the exact bipartite-graph-based computation of Algorithm 2. It
// enumerates node mappings depth-first and, for each complete node mapping,
// finds the optimal hyperedge mapping — by permutation enumeration with
// incumbent pruning (the paper's formulation), or by the Hungarian solver
// when Options.UseHungarianEDC is set (the E10 ablation; both are exact).
//
// Faithful to the paper, HGED-DFS applies no re-ranking and no lower-bound
// estimation ("it is hard to find some lower bounds while using the DFS
// metric"); it prunes only on the accumulated exact cost against the
// incumbent and the threshold.
func DFS(g, h *hypergraph.Hypergraph, opts Options) Result {
	p := newPairModel(g, h, opts.costModel())
	N := p.paddedN

	best := 1 << 30
	bound := best
	if !opts.unbounded() {
		bound = opts.Threshold + 1 // search only for completions ≤ τ
	}
	var bestMapping *Mapping
	budget := opts.maxExpansions()
	var expanded int64
	capped := false

	nodeMap := make([]int, N)
	usedTgt := make([]bool, N)

	limit := func() int {
		if best < bound {
			return best
		}
		return bound
	}

	var rec func(level, accNode int)
	rec = func(level, accNode int) {
		if capped {
			return
		}
		expanded++
		if expanded > budget || opts.cancelled(expanded) {
			capped = true
			return
		}
		if accNode >= limit() {
			return
		}
		if level == N {
			edgeBudget := limit() - accNode
			edgeCost, edgeMap, edgeCapped := p.edgeCostPermutationMapped(nodeMap, edgeBudget, budget-expanded, &expanded, opts)
			if edgeCapped {
				capped = true
			}
			if edgeMap == nil {
				return // no hyperedge mapping within budget
			}
			total := accNode + edgeCost
			if total < best {
				best = total
				bestMapping = &Mapping{
					SrcN: p.src.n, TgtN: p.tgt.n,
					SrcM: p.src.m, TgtM: p.tgt.m,
					NodeMap: append([]int(nil), nodeMap...),
					EdgeMap: edgeMap,
				}
			}
			return
		}
		for j := 0; j < N; j++ {
			if usedTgt[j] {
				continue
			}
			usedTgt[j] = true
			nodeMap[level] = j
			rec(level+1, accNode+p.nodeCost(level, j))
			usedTgt[j] = false
		}
	}
	rec(0, 0)

	res := Result{Distance: best, Exact: !capped, Expanded: expanded, Cancelled: capped && opts.ctxCancelled()}
	if bestMapping != nil {
		res.Path = p.extractPath(bestMapping)
	}
	if !opts.unbounded() && best > opts.Threshold {
		res.Exceeded = true
		res.Distance = opts.Threshold + 1 // proven lower bound when Exact
	}
	return res
}

// edgeCostPermutationMapped is edgeCostPermutation returning the argmin edge
// mapping as well; it returns (budget, nil) when no mapping beats the
// budget. The enumeration spends at most maxSteps recursive steps, adding
// them to *steps; when it runs out (or opts.Context is cancelled) it
// reports capped=true and returns its best-so-far (which is then only an
// upper bound). With UseHungarianEDC handled by the caller this remains the
// Algorithm-2 enumeration.
func (p *pair) edgeCostPermutationMapped(nodeMap []int, budget int, maxSteps int64, steps *int64, opts Options) (cost int, perm []int, capped bool) {
	M := p.paddedM
	if M == 0 {
		if budget <= 0 {
			return budget, nil, false
		}
		return 0, []int{}, false
	}
	best := budget
	var bestPerm []int
	cur := make([]int, M)
	usedTgt := make([]bool, M)
	var spent int64
	var rec func(e, acc int)
	rec = func(e, acc int) {
		if capped {
			return
		}
		spent++
		if spent > maxSteps || opts.cancelled(spent) {
			capped = true
			return
		}
		if acc >= best {
			return
		}
		if e == M {
			best = acc
			bestPerm = append(bestPerm[:0], cur...)
			return
		}
		for f := 0; f < M; f++ {
			if usedTgt[f] {
				continue
			}
			usedTgt[f] = true
			cur[e] = f
			rec(e+1, acc+p.edgeCost(e, f, nodeMap))
			usedTgt[f] = false
		}
	}
	rec(0, 0)
	*steps += spent
	if bestPerm == nil {
		return budget, nil, capped
	}
	return best, bestPerm, capped
}

// DFSHungarian is DFS with the per-node-mapping edge cost computed by the
// Hungarian solver; exposed for the E10 ablation benchmarks.
func DFSHungarian(g, h *hypergraph.Hypergraph, opts Options) Result {
	opts.UseHungarianEDC = true
	return dfsHungarian(g, h, opts)
}

func dfsHungarian(g, h *hypergraph.Hypergraph, opts Options) Result {
	p := newPairModel(g, h, opts.costModel())
	N := p.paddedN

	best := 1 << 30
	bound := best
	if !opts.unbounded() {
		bound = opts.Threshold + 1
	}
	var bestMapping *Mapping
	budget := opts.maxExpansions()
	var expanded int64
	capped := false

	nodeMap := make([]int, N)
	usedTgt := make([]bool, N)

	var rec func(level, accNode int)
	rec = func(level, accNode int) {
		if capped {
			return
		}
		expanded++
		if expanded > budget || opts.cancelled(expanded) {
			capped = true
			return
		}
		lim := best
		if bound < lim {
			lim = bound
		}
		if accNode >= lim {
			return
		}
		if level == N {
			edgeMap := p.edgeAssignment(nodeMap)
			total := accNode
			for e, f := range edgeMap {
				total += p.edgeCost(e, f, nodeMap)
			}
			if total < best && total < bound {
				best = total
				bestMapping = &Mapping{
					SrcN: p.src.n, TgtN: p.tgt.n,
					SrcM: p.src.m, TgtM: p.tgt.m,
					NodeMap: append([]int(nil), nodeMap...),
					EdgeMap: edgeMap,
				}
			} else if total < best {
				best = total
			}
			return
		}
		for j := 0; j < N; j++ {
			if usedTgt[j] {
				continue
			}
			usedTgt[j] = true
			nodeMap[level] = j
			rec(level+1, accNode+p.nodeCost(level, j))
			usedTgt[j] = false
		}
	}
	rec(0, 0)

	res := Result{Distance: best, Exact: !capped, Expanded: expanded, Cancelled: capped && opts.ctxCancelled()}
	if bestMapping != nil {
		res.Path = p.extractPath(bestMapping)
	}
	if !opts.unbounded() && best > opts.Threshold {
		res.Exceeded = true
		res.Distance = opts.Threshold + 1
	}
	return res
}
