package core

import (
	"sort"

	"hged/internal/assign"
	"hged/internal/hypergraph"
)

// EDCInaccurate computes the edit-cost *instance* of procedure EDC-INAC
// (Algorithm 1, lines 17–31) for a complete padded node mapping: node
// mapping costs plus, per hyperedge, either an exact-set match (label
// comparison only) or a full delete/insert charge. As Observation 4.1
// notes, this is an upper bound on the exact edit cost of the mapping, not
// the minimum: unmatched hyperedges are wholly deleted and re-inserted
// rather than incrementally extended/reduced.
//
// One refinement over the paper's pseudocode: exact-set matches are
// consumed with multiplicity (two source hyperedges cannot both claim the
// same target hyperedge), which keeps the result a sound upper bound when
// duplicate hyperedges are present.
func EDCInaccurate(g, h *hypergraph.Hypergraph, nodeMap []int) int {
	return newPair(g, h).edcInaccurate(nodeMap)
}

// edgeSetIndex groups a graph's hyperedges by their member set. Sets are
// keyed by a 64-bit hash of the sorted member IDs; hash collisions are
// resolved at lookup time by comparing the actual member lists, so two
// distinct sets never merge (and duplicate hyperedges share one group with
// multiplicity, as the string-keyed index did).
type edgeSetIndex struct {
	buckets map[uint64][]int32
}

// build indexes the target graph's hyperedges, reusing retained map storage.
func (ix *edgeSetIndex) build(d *graphData) {
	if ix.buckets == nil {
		ix.buckets = make(map[uint64][]int32, d.m)
	} else {
		clear(ix.buckets)
	}
	for f := 0; f < d.m; f++ {
		k := hashIntSet(d.edgeNodes[f])
		ix.buckets[k] = append(ix.buckets[k], int32(f))
	}
}

// lookup returns the first unmatched hyperedge of d whose member set equals
// the sorted list nodes, or -1. matched flags consumed hyperedges.
func (ix *edgeSetIndex) lookup(d *graphData, nodes []int, matched []bool) int {
	for _, cand := range ix.buckets[hashIntSet(nodes)] {
		if !matched[cand] && intSlicesEqual(d.edgeNodes[cand], nodes) {
			return int(cand)
		}
	}
	return -1
}

// hashIntSet hashes a sorted member list with FNV-1a, folding in the length
// so prefixes hash differently.
func hashIntSet(nodes []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range nodes {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	h ^= uint64(len(nodes))
	h *= prime64
	return h
}

func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// tgtEdgeIndex returns the memoized target-edge member-set index, building
// it on first use. HGED-HEU evaluates EDC-INAC for every complete node
// mapping visited, so building the index once per pair (instead of once per
// evaluation) removes the dominant cost of the procedure.
func (p *pair) tgtEdgeIndex() *edgeSetIndex {
	if !p.tgtIndexBuilt {
		p.tgtIndex.build(p.tgt)
		p.tgtIndexBuilt = true
	}
	return &p.tgtIndex
}

func (p *pair) edcInaccurate(nodeMap []int) int {
	cost := 0
	for i, j := range nodeMap {
		cost += p.nodeCost(i, j)
	}

	index := p.tgtEdgeIndex()
	p.edcMatched = growBools(p.edcMatched, p.tgt.m)
	matchedTgt := p.edcMatched
	for i := range matchedTgt {
		matchedTgt[i] = false
	}

	mapped := p.edcMapped[:0]
	for e := 0; e < p.src.m; e++ {
		mapped = mapped[:0]
		valid := true
		for _, u := range p.src.edgeNodes[e] {
			j := nodeMap[u]
			if j >= p.tgt.n {
				valid = false // member deleted: mapped set is no hyperedge
				break
			}
			mapped = append(mapped, j)
		}
		f := -1
		if valid {
			sort.Ints(mapped)
			f = index.lookup(p.tgt, mapped, matchedTgt)
		}
		if f < 0 {
			// Whole hyperedge charged: one reduction per member plus the
			// deletion charge.
			cost += p.src.cards[e]*p.w.Incidence + p.w.Edge
			continue
		}
		matchedTgt[f] = true
		if p.src.edgeLabels[e] != p.tgt.edgeLabels[f] {
			cost += p.w.EdgeRelabel
		}
	}
	p.edcMapped = mapped[:0]
	// Target hyperedges never claimed are charged as insertions.
	for f := 0; f < p.tgt.m; f++ {
		if !matchedTgt[f] {
			cost += p.tgt.cards[f]*p.w.Incidence + p.w.Edge
		}
	}
	return cost
}

// EDCPermutation computes the exact minimum edit cost of transforming g into
// h under the complete padded node mapping, by enumerating hyperedge
// permutations with branch-and-bound pruning — the bipartite-graph-based
// computation of Algorithm 2.
func EDCPermutation(g, h *hypergraph.Hypergraph, nodeMap []int) int {
	p := newPair(g, h)
	nodeCost := 0
	for i, j := range nodeMap {
		nodeCost += p.nodeCost(i, j)
	}
	return nodeCost + p.edgeCostPermutation(nodeMap, -1)
}

// edgeCostPermutation returns the minimum total hyperedge-mapping cost under
// nodeMap, enumerating permutations of edge slots with pruning. A
// non-negative budget makes the search abandon branches whose cost meets or
// exceeds it, returning at least the budget if no cheaper completion exists.
func (p *pair) edgeCostPermutation(nodeMap []int, budget int) int {
	M := p.paddedM
	if M == 0 {
		return 0
	}
	best := 1 << 30
	if budget >= 0 {
		best = budget
	}
	usedTgt := make([]bool, M)
	var rec func(e, acc int)
	rec = func(e, acc int) {
		if acc >= best {
			return
		}
		if e == M {
			best = acc
			return
		}
		for f := 0; f < M; f++ {
			if usedTgt[f] {
				continue
			}
			usedTgt[f] = true
			rec(e+1, acc+p.edgeCost(e, f, nodeMap))
			usedTgt[f] = false
		}
	}
	rec(0, 0)
	return best
}

// EDCAssignment computes the same exact minimum edit cost as EDCPermutation
// but solves the hyperedge pairing as an O(M³) assignment problem: the cost
// of pairing hyperedge slot e with slot f under a fixed node mapping is
// independent of all other pairs, so the Hungarian optimum is the optimal
// hyperedge mapping.
func EDCAssignment(g, h *hypergraph.Hypergraph, nodeMap []int) int {
	p := newPair(g, h)
	nodeCost := 0
	for i, j := range nodeMap {
		nodeCost += p.nodeCost(i, j)
	}
	return nodeCost + p.edgeCostAssignment(nodeMap)
}

func (p *pair) edgeCostAssignment(nodeMap []int) int {
	M := p.paddedM
	if M == 0 {
		return 0
	}
	cost := make([][]int64, M)
	for e := 0; e < M; e++ {
		cost[e] = make([]int64, M)
		for f := 0; f < M; f++ {
			cost[e][f] = int64(p.edgeCost(e, f, nodeMap))
		}
	}
	_, total := assign.Solve(cost)
	return int(total)
}

// edgeAssignment returns the optimal hyperedge mapping (source slot → target
// slot) under nodeMap, via the Hungarian solver.
func (p *pair) edgeAssignment(nodeMap []int) []int {
	M := p.paddedM
	if M == 0 {
		return nil
	}
	cost := make([][]int64, M)
	for e := 0; e < M; e++ {
		cost[e] = make([]int64, M)
		for f := 0; f < M; f++ {
			cost[e][f] = int64(p.edgeCost(e, f, nodeMap))
		}
	}
	rowToCol, _ := assign.Solve(cost)
	return rowToCol
}
