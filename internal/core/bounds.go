package core

import (
	"sort"

	"hged/internal/assign"
	"hged/internal/hypergraph"
	"hged/internal/multiset"
)

// LowerBound returns the paper's Strategy-3 lower bound on HGED(g, h): the
// label-based bound Ψ(l(V), l(V')) + Ψ(l(E), l(E')) (Definition 5) plus the
// hyperedge-based cardinality bound (Definition 6). The two components
// charge disjoint cost families (labels+insertions vs. incidences), so their
// sum is admissible.
func LowerBound(g, h *hypergraph.Hypergraph) int {
	return lowerBoundData(compile(g), compile(h))
}

func lowerBoundData(s, t *graphData) int {
	return lowerBoundDataModel(s, t, UnitCosts())
}

// lowerBoundDataModel is the Strategy-3 bound under a cost model: of the Ψ
// entities needing attention, the size difference must be inserted/deleted
// and the remainder costs at least the cheaper of relabel and
// insert/delete; incidence edits cost the cardinality bound times the
// incidence weight.
func lowerBoundDataModel(s, t *graphData, w CostModel) int {
	lb := weightedPsi(multiset.PsiLabels(s.nodeLabels, t.nodeLabels), s.n-t.n, w.Node, w.minNodeMismatch())
	lb += weightedPsi(multiset.PsiLabels(s.edgeLabels, t.edgeLabels), s.m-t.m, w.Edge, w.minEdgeMismatch())
	lb += multiset.CardinalityBound(s.cards, t.cards) * w.Incidence
	return lb
}

// rootLowerBound is lowerBoundDataModel on the pair's own compiled data,
// computed over the dense pair-union label ids with retained scratch so a
// warm solver derives the root bound without allocating: Ψ is a counting
// pass over the interned ids, and the cardinality bound sorts retained
// copies of the cards lists and L1-walks them top-aligned (identical to
// zero-padding the front of the shorter ascending list).
func (p *pair) rootLowerBound() int {
	lb := weightedPsi(p.psiDense(p.srcNodeLab, p.tgtNodeLab, p.numNodeLab),
		p.src.n-p.tgt.n, p.w.Node, p.w.minNodeMismatch())
	lb += weightedPsi(p.psiDense(p.srcEdgeLab, p.tgtEdgeLab, p.numEdgeLab),
		p.src.m-p.tgt.m, p.w.Edge, p.w.minEdgeMismatch())
	lb += p.cardBound() * p.w.Incidence
	return lb
}

// psiDense computes Ψ(a, b) = max(|a|, |b|) − |a ∩ b| for label multisets
// given as dense pair-dictionary ids in [0, numLab).
func (p *pair) psiDense(a, b []int, numLab int) int {
	cnt := growInt32s(p.psiCnt, numLab)
	p.psiCnt = cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for _, id := range a {
		cnt[id]++
	}
	inter := 0
	for _, id := range b {
		if cnt[id] > 0 {
			cnt[id]--
			inter++
		}
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return m - inter
}

// cardBound is multiset.CardinalityBound(src.cards, tgt.cards) on retained
// sorted scratch copies.
func (p *pair) cardBound() int {
	a := growInts(p.cardScratchA, len(p.src.cards))
	b := growInts(p.cardScratchB, len(p.tgt.cards))
	p.cardScratchA, p.cardScratchB = a, b
	copy(a, p.src.cards)
	copy(b, p.tgt.cards)
	sort.Ints(a)
	sort.Ints(b)
	return sortedL1(a, b)
}

// weightedPsi prices a Ψ value: diff entities at the insert/delete weight,
// the remainder at the cheaper of relabel and insert/delete.
func weightedPsi(psi, diff, insDel, mismatch int) int {
	if diff < 0 {
		diff = -diff
	}
	if diff > psi {
		diff = psi // defensive; Ψ ≥ |size difference| always
	}
	return diff*insDel + (psi-diff)*mismatch
}

// AssignmentLowerBound returns a (usually tighter) admissible lower bound on
// the hyperedge part computed by solving an assignment problem whose pair
// costs are themselves lower bounds — labelMismatch(E,E') + ||E|−|E'|| —
// plus the node-label Ψ bound. It dominates LowerBound (an optimal
// assignment of the summed pair costs is at least the sum of the optima of
// each component) at O(M³) cost, and is used for one-shot threshold
// filtering rather than per-search-state.
func AssignmentLowerBound(g, h *hypergraph.Hypergraph) int {
	s, t := compile(g), compile(h)
	lb := multiset.PsiLabels(s.nodeLabels, t.nodeLabels)
	M := maxInt(s.m, t.m)
	if M == 0 {
		return lb
	}
	cost := make([][]int64, M)
	for e := 0; e < M; e++ {
		cost[e] = make([]int64, M)
		for f := 0; f < M; f++ {
			switch {
			case e < s.m && f < t.m:
				c := s.cards[e] - t.cards[f]
				if c < 0 {
					c = -c
				}
				if s.edgeLabels[e] != t.edgeLabels[f] {
					c++
				}
				cost[e][f] = int64(c)
			case e < s.m:
				cost[e][f] = int64(1 + s.cards[e])
			case f < t.m:
				cost[e][f] = int64(1 + t.cards[f])
			}
		}
	}
	_, total := assign.Solve(cost)
	return lb + int(total)
}

// sortedL1 computes the zero-padded L1 distance of two ascending-sorted
// integer lists, aligning them at the top (largest with largest), which is
// the minimum L1 matching cost.
func sortedL1(a, b []int) int {
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	total := 0
	for i := 1; i <= n; i++ {
		var x, y int
		if la-i >= 0 {
			x = a[la-i]
		}
		if lb-i >= 0 {
			y = b[lb-i]
		}
		d := x - y
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}
