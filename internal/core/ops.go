// Package core implements Hypergraph Edit Distance (HGED) — the primary
// contribution of Qin et al., ICDE 2023 — together with the explainable
// hypergraph edit path.
//
// The edit model (Definition 3) has three families of unit-cost atomic
// operations:
//
//	(i)   inserting/deleting a node, or a hyperedge of cardinality 0;
//	(ii)  extending/reducing a hyperedge by one node;
//	(iii) relabeling a node or a hyperedge.
//
// HGED(G, G') is the minimum number of operations transforming G into a
// hypergraph isomorphic to G'. The package provides the paper's three
// solvers (HGED-HEU, HGED-DFS, HGED-BFS), exact edit-cost computations per
// node mapping (permutation-based, per Algorithm 2, and Hungarian-based),
// threshold ("≤ τ?") variants, and extraction of an optimal edit path that
// explains the distance.
package core

import (
	"fmt"

	"hged/internal/hypergraph"
)

// OpKind enumerates the atomic edit operations of Definition 3.
type OpKind int

const (
	// OpNodeDelete removes a node (which must no longer belong to any
	// hyperedge) from the graph.
	OpNodeDelete OpKind = iota
	// OpNodeInsert adds a new node with a label.
	OpNodeInsert
	// OpEdgeDelete removes a hyperedge of cardinality 0.
	OpEdgeDelete
	// OpEdgeInsert adds a new hyperedge of cardinality 0 with a label.
	OpEdgeInsert
	// OpEdgeReduce removes one node from a hyperedge.
	OpEdgeReduce
	// OpEdgeExtend adds one node to a hyperedge.
	OpEdgeExtend
	// OpNodeRelabel changes the label of a node.
	OpNodeRelabel
	// OpEdgeRelabel changes the label of a hyperedge.
	OpEdgeRelabel
)

// String returns the operation kind name.
func (k OpKind) String() string {
	switch k {
	case OpNodeDelete:
		return "node-delete"
	case OpNodeInsert:
		return "node-insert"
	case OpEdgeDelete:
		return "edge-delete"
	case OpEdgeInsert:
		return "edge-insert"
	case OpEdgeReduce:
		return "edge-reduce"
	case OpEdgeExtend:
		return "edge-extend"
	case OpNodeRelabel:
		return "node-relabel"
	case OpEdgeRelabel:
		return "edge-relabel"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one atomic edit operation. Node and Edge refer to *slots* of the
// padded source graph: slots < n are the source graph's own nodes/hyperedges;
// slots ≥ n denote entities created by insertion operations earlier in the
// path. Label carries the new label for insert/relabel operations.
type Op struct {
	Kind  OpKind
	Node  int              // node slot (for node ops and extend/reduce)
	Edge  int              // edge slot (for edge ops and extend/reduce)
	Label hypergraph.Label // new label for inserts/relabels
}

// String renders the operation.
func (o Op) String() string {
	switch o.Kind {
	case OpNodeDelete:
		return fmt.Sprintf("delete node #%d", o.Node)
	case OpNodeInsert:
		return fmt.Sprintf("insert node #%d with label %d", o.Node, o.Label)
	case OpEdgeDelete:
		return fmt.Sprintf("delete hyperedge #%d", o.Edge)
	case OpEdgeInsert:
		return fmt.Sprintf("insert hyperedge #%d with label %d", o.Edge, o.Label)
	case OpEdgeReduce:
		return fmt.Sprintf("reduce hyperedge #%d by node #%d", o.Edge, o.Node)
	case OpEdgeExtend:
		return fmt.Sprintf("extend hyperedge #%d with node #%d", o.Edge, o.Node)
	case OpNodeRelabel:
		return fmt.Sprintf("relabel node #%d to %d", o.Node, o.Label)
	case OpEdgeRelabel:
		return fmt.Sprintf("relabel hyperedge #%d to %d", o.Edge, o.Label)
	default:
		return o.Kind.String()
	}
}

// Path is a hypergraph edit path: a sequence of atomic operations that
// transforms the source hypergraph into one isomorphic to the target
// (Section IV-D). Cost() equals the number of operations; for a path
// extracted from an optimal mapping this equals the HGED.
type Path struct {
	Ops []Op
	// Mapping is the entity mapping the path was derived from.
	Mapping Mapping
}

// Cost returns the number of operations on the path — its total cost under
// the paper's unit model.
func (p *Path) Cost() int { return len(p.Ops) }

// WeightedCost returns the path's total cost under a cost model.
func (p *Path) WeightedCost(m CostModel) int {
	total := 0
	for _, op := range p.Ops {
		switch op.Kind {
		case OpNodeInsert, OpNodeDelete:
			total += m.Node
		case OpEdgeInsert, OpEdgeDelete:
			total += m.Edge
		case OpEdgeExtend, OpEdgeReduce:
			total += m.Incidence
		case OpNodeRelabel:
			total += m.NodeRelabel
		case OpEdgeRelabel:
			total += m.EdgeRelabel
		}
	}
	return total
}

// Apply executes the path on a copy of g and returns the edited hypergraph.
// Node/edge slots beyond g's size are materialized by insertion operations.
// Applying the path extracted for HGED(g, h) yields a hypergraph isomorphic
// to h; tests rely on this as the central correctness property.
func (p *Path) Apply(g *hypergraph.Hypergraph) (*hypergraph.Hypergraph, error) {
	n, m := g.NumNodes(), g.NumEdges()
	// Working state: presence flags, labels, and member sets per slot.
	maxNode, maxEdge := n, m
	for _, op := range p.Ops {
		if op.Node+1 > maxNode && (op.Kind == OpNodeInsert || op.Kind == OpNodeDelete || op.Kind == OpNodeRelabel || op.Kind == OpEdgeReduce || op.Kind == OpEdgeExtend) {
			maxNode = op.Node + 1
		}
		if op.Edge+1 > maxEdge && (op.Kind != OpNodeInsert && op.Kind != OpNodeDelete && op.Kind != OpNodeRelabel) {
			maxEdge = op.Edge + 1
		}
	}
	nodeAlive := make([]bool, maxNode)
	nodeLabel := make([]hypergraph.Label, maxNode)
	for i := 0; i < n; i++ {
		nodeAlive[i] = true
		nodeLabel[i] = g.NodeLabel(hypergraph.NodeID(i))
	}
	edgeAlive := make([]bool, maxEdge)
	edgeLabel := make([]hypergraph.Label, maxEdge)
	// Member sets are bitsets over the node slots, with a cardinality side
	// array (popcounting on every delete check would be wasteful). A nil
	// bitset marks a slot no insertion has materialized yet.
	members := make([]hypergraph.Bitset, maxEdge)
	cards := make([]int, maxEdge)
	for e := 0; e < m; e++ {
		edgeAlive[e] = true
		edge := g.Edge(hypergraph.EdgeID(e))
		edgeLabel[e] = edge.Label
		members[e] = hypergraph.NewBitset(maxNode)
		for _, v := range edge.Nodes {
			members[e].Add(int(v))
		}
		cards[e] = edge.Arity()
	}

	for i, op := range p.Ops {
		switch op.Kind {
		case OpNodeInsert:
			if op.Node < len(nodeAlive) && nodeAlive[op.Node] {
				return nil, fmt.Errorf("core: op %d inserts existing node %d", i, op.Node)
			}
			nodeAlive[op.Node] = true
			nodeLabel[op.Node] = op.Label
		case OpNodeDelete:
			if !nodeAlive[op.Node] {
				return nil, fmt.Errorf("core: op %d deletes absent node %d", i, op.Node)
			}
			for e, ms := range members {
				if ms != nil && edgeAlive[e] && ms.Has(op.Node) {
					return nil, fmt.Errorf("core: op %d deletes node %d still in hyperedge %d", i, op.Node, e)
				}
			}
			nodeAlive[op.Node] = false
		case OpNodeRelabel:
			if !nodeAlive[op.Node] {
				return nil, fmt.Errorf("core: op %d relabels absent node %d", i, op.Node)
			}
			nodeLabel[op.Node] = op.Label
		case OpEdgeInsert:
			if op.Edge < len(edgeAlive) && edgeAlive[op.Edge] {
				return nil, fmt.Errorf("core: op %d inserts existing hyperedge %d", i, op.Edge)
			}
			edgeAlive[op.Edge] = true
			edgeLabel[op.Edge] = op.Label
			members[op.Edge] = hypergraph.NewBitset(maxNode)
			cards[op.Edge] = 0
		case OpEdgeDelete:
			if !edgeAlive[op.Edge] {
				return nil, fmt.Errorf("core: op %d deletes absent hyperedge %d", i, op.Edge)
			}
			if cards[op.Edge] != 0 {
				return nil, fmt.Errorf("core: op %d deletes non-empty hyperedge %d (cardinality %d)", i, op.Edge, cards[op.Edge])
			}
			edgeAlive[op.Edge] = false
		case OpEdgeReduce:
			if !edgeAlive[op.Edge] {
				return nil, fmt.Errorf("core: op %d reduces absent hyperedge %d", i, op.Edge)
			}
			if !members[op.Edge].Has(op.Node) {
				return nil, fmt.Errorf("core: op %d reduces hyperedge %d by non-member node %d", i, op.Edge, op.Node)
			}
			members[op.Edge].Remove(op.Node)
			cards[op.Edge]--
		case OpEdgeExtend:
			if !edgeAlive[op.Edge] {
				return nil, fmt.Errorf("core: op %d extends absent hyperedge %d", i, op.Edge)
			}
			if !nodeAlive[op.Node] {
				return nil, fmt.Errorf("core: op %d extends hyperedge %d with absent node %d", i, op.Edge, op.Node)
			}
			if members[op.Edge].Has(op.Node) {
				return nil, fmt.Errorf("core: op %d extends hyperedge %d with duplicate node %d", i, op.Edge, op.Node)
			}
			members[op.Edge].Add(op.Node)
			cards[op.Edge]++
		case OpEdgeRelabel:
			if !edgeAlive[op.Edge] {
				return nil, fmt.Errorf("core: op %d relabels absent hyperedge %d", i, op.Edge)
			}
			edgeLabel[op.Edge] = op.Label
		default:
			return nil, fmt.Errorf("core: op %d has unknown kind %v", i, op.Kind)
		}
	}

	// Materialize surviving state as a fresh hypergraph.
	out := hypergraph.New(0)
	remap := make([]hypergraph.NodeID, maxNode)
	for i := range remap {
		remap[i] = -1
	}
	for i := 0; i < maxNode; i++ {
		if nodeAlive[i] {
			remap[i] = out.AddNode(nodeLabel[i])
		}
	}
	for e := 0; e < maxEdge; e++ {
		if !edgeAlive[e] {
			continue
		}
		// Bitset iteration is ascending by original id, so the rebuilt
		// hypergraph is identical run to run with no sort.
		nodes := make([]hypergraph.NodeID, 0, cards[e])
		missing := -1
		members[e].ForEach(func(v int) {
			if remap[v] < 0 {
				if missing < 0 {
					missing = v
				}
				return
			}
			nodes = append(nodes, remap[v])
		})
		if missing >= 0 {
			return nil, fmt.Errorf("core: hyperedge %d references deleted node %d", e, missing)
		}
		out.AddEdge(edgeLabel[e], nodes...)
	}
	return out, nil
}
