package core

import (
	"container/heap"
	"sort"

	"hged/internal/hypergraph"
)

// BFS implements HGED-BFS (Algorithm 3): a best-first branch-and-bound
// search over entity mappings with the paper's three strategies.
//
//   - Strategy 1 re-ranks the source entities: nodes before hyperedges,
//     higher degree first, equal labels grouped, higher cardinality first.
//   - Strategy 2 seeds the search with an upper bound computed from greedy
//     and sampled complete mappings (and the threshold τ, when set).
//   - Strategy 3 prunes with admissible lower bounds: the label-based bound
//     Ψ (Definition 5) plus the hyperedge-based cardinality bound
//     (Definition 6) over the yet-unmapped suffix.
//
// States assign the k-th re-ranked source entity to an unused target slot;
// all node levels precede all edge levels, so edge-mapping costs are exact
// when incurred. The suffix bounds are consistent (each assignment's cost
// dominates the bound decrease), so the first complete mapping popped is
// optimal. The search is exact; when a threshold τ > 0 is set it may stop
// early with Exceeded=true once HGED > τ is proven.
//
// Label multisets are tracked as dense arrays over the pair's label
// dictionary, so per-state bound maintenance is allocation-free: Ψ updates
// in O(1) per candidate from the popped state's base quantities, and the
// cardinality bound recomputes in O(M) over sorted remainders.
func BFS(g, h *hypergraph.Hypergraph, opts Options) Result {
	p := newPairModel(g, h, opts.costModel())
	s := newBFSSearch(p, opts)
	return s.run(opts)
}

// bfsSearch holds the per-run state of HGED-BFS.
type bfsSearch struct {
	p    *pair
	N, M int

	nodeOrder, edgeOrder []int

	// Source suffix label counts (dense) and cardinality lists per level
	// (immutable after construction).
	srcNodeCnt   [][]int32 // [node level 0..N][label]
	srcNodeSize  []int
	srcEdgeCnt   [][]int32 // [edge level 0..M][label]
	srcEdgeSize  []int
	srcEdgeCards [][]int // ascending

	useLB bool

	// Per-pop scratch (reused across pops).
	usedNodes, usedEdges []bool
	nodeMapBuf           []int
	tgtNodeCnt           []int32
	tgtNodeSize          int
	tgtEdgeCnt           []int32
	tgtEdgeSize          int
	tgtEdgeCards         []int // ascending
	cardScratch          []int
}

func newBFSSearch(p *pair, opts Options) *bfsSearch {
	N, M := p.paddedN, p.paddedM
	s := &bfsSearch{
		p: p, N: N, M: M,
		nodeOrder:  rerankNodes(p.src, N, opts.DisableRerank),
		edgeOrder:  rerankEdges(p.src, M, opts.DisableRerank),
		useLB:      !opts.DisableLowerBound,
		usedNodes:  make([]bool, N),
		usedEdges:  make([]bool, M),
		nodeMapBuf: make([]int, N),
		tgtNodeCnt: make([]int32, p.numNodeLab),
		tgtEdgeCnt: make([]int32, p.numEdgeLab),
	}

	// Source node-label suffixes.
	s.srcNodeCnt = make([][]int32, N+1)
	s.srcNodeSize = make([]int, N+1)
	cur := make([]int32, p.numNodeLab)
	for _, l := range p.srcNodeLab {
		cur[l]++
	}
	size := p.src.n
	s.srcNodeCnt[0] = append([]int32(nil), cur...)
	s.srcNodeSize[0] = size
	for k := 0; k < N; k++ {
		if v := s.nodeOrder[k]; v < p.src.n {
			cur[p.srcNodeLab[v]]--
			size--
		}
		s.srcNodeCnt[k+1] = append([]int32(nil), cur...)
		s.srcNodeSize[k+1] = size
	}
	// Source edge-label and cardinality suffixes.
	s.srcEdgeCnt = make([][]int32, M+1)
	s.srcEdgeSize = make([]int, M+1)
	s.srcEdgeCards = make([][]int, M+1)
	ecur := make([]int32, p.numEdgeLab)
	for _, l := range p.srcEdgeLab {
		ecur[l]++
	}
	esize := p.src.m
	cards := append([]int(nil), p.src.cards...)
	sort.Ints(cards)
	s.srcEdgeCnt[0] = append([]int32(nil), ecur...)
	s.srcEdgeSize[0] = esize
	s.srcEdgeCards[0] = append([]int(nil), cards...)
	for k := 0; k < M; k++ {
		if e := s.edgeOrder[k]; e < p.src.m {
			ecur[p.srcEdgeLab[e]]--
			esize--
			cards = removeSortedInt(cards, p.src.cards[e])
		}
		s.srcEdgeCnt[k+1] = append([]int32(nil), ecur...)
		s.srcEdgeSize[k+1] = esize
		s.srcEdgeCards[k+1] = append([]int(nil), cards...)
	}
	return s
}

func removeSortedInt(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		out := make([]int, 0, len(xs)-1)
		out = append(out, xs[:i]...)
		return append(out, xs[i+1:]...)
	}
	return xs
}

// restore rebuilds the scratch state (used slots, node-map prefix, target
// remaining counts) for the popped search node by walking its parent chain.
func (s *bfsSearch) restore(st *state) {
	p := s.p
	for i := range s.usedNodes {
		s.usedNodes[i] = false
	}
	for i := range s.usedEdges {
		s.usedEdges[i] = false
	}
	for i := range s.tgtNodeCnt {
		s.tgtNodeCnt[i] = 0
	}
	for _, l := range p.tgtNodeLab {
		s.tgtNodeCnt[l]++
	}
	s.tgtNodeSize = p.tgt.n
	for i := range s.tgtEdgeCnt {
		s.tgtEdgeCnt[i] = 0
	}
	for _, l := range p.tgtEdgeLab {
		s.tgtEdgeCnt[l]++
	}
	s.tgtEdgeSize = p.tgt.m
	s.tgtEdgeCards = append(s.tgtEdgeCards[:0], p.tgt.cards...)
	sort.Ints(s.tgtEdgeCards)

	for cur := st; cur.parent != nil; cur = cur.parent {
		lvl := int(cur.parent.level)
		choice := int(cur.choice)
		if lvl < s.N {
			s.usedNodes[choice] = true
			s.nodeMapBuf[s.nodeOrder[lvl]] = choice
			if choice < p.tgt.n {
				s.tgtNodeCnt[p.tgtNodeLab[choice]]--
				s.tgtNodeSize--
			}
		} else {
			s.usedEdges[choice] = true
			if choice < p.tgt.m {
				s.tgtEdgeCnt[p.tgtEdgeLab[choice]]--
				s.tgtEdgeSize--
				s.tgtEdgeCards = removeSortedIntInPlace(s.tgtEdgeCards, p.tgt.cards[choice])
			}
		}
	}
}

func removeSortedIntInPlace(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		copy(xs[i:], xs[i+1:])
		return xs[:len(xs)-1]
	}
	return xs
}

func interSize(a, b []int32) int {
	n := 0
	for i, x := range a {
		y := b[i]
		if x < y {
			n += int(x)
		} else {
			n += int(y)
		}
	}
	return n
}

func (s *bfsSearch) run(opts Options) Result {
	p := s.p
	N, M := s.N, s.M
	total := N + M

	// Strategy 2: initial incumbent.
	incumbent := 1 << 30
	var incumbentMap *Mapping
	if !opts.DisableUpperBound {
		incumbent, incumbentMap = p.upperBound(opts.samples(), opts.seed())
	}
	bound := incumbent
	if !opts.unbounded() && opts.Threshold+1 < bound {
		bound = opts.Threshold + 1
	}

	rootLB := 0
	if s.useLB {
		rootLB = lowerBoundDataModel(p.src, p.tgt, p.w)
	}

	pq := &stateHeap{}
	heap.Init(pq)
	if rootLB < bound {
		heap.Push(pq, &state{level: 0, g: 0, f: int32(rootLB)})
	}

	budget := opts.maxExpansions()
	var expanded int64
	capped := false
	var goal *state

	for pq.Len() > 0 {
		st := heap.Pop(pq).(*state)
		if int(st.f) >= bound {
			continue // stale against a tightened incumbent
		}
		expanded++
		if expanded > budget {
			capped = true
			break
		}
		if int(st.level) == total {
			goal = st
			break
		}
		s.restore(st)

		lvl := int(st.level)
		if lvl < N {
			s.expandNodeLevel(st, lvl, bound, pq)
		} else {
			s.expandEdgeLevel(st, lvl, bound, pq)
		}
	}

	res := Result{Expanded: expanded, Exact: !capped}
	switch {
	case goal != nil:
		res.Distance = int(goal.g)
		res.Path = p.extractPath(reconstructMapping(p, goal, s.nodeOrder, s.edgeOrder))
	case capped:
		// Budget exhausted: fall back to the best known upper bound.
		if incumbentMap == nil {
			incumbent, incumbentMap = p.upperBound(opts.samples(), opts.seed())
		}
		res.Distance = incumbent
		res.Path = p.extractPath(incumbentMap)
		return res
	default:
		// Queue exhausted below bound: the incumbent (or exceedance) is
		// the answer.
		res.Distance = incumbent
		if incumbentMap != nil && incumbent < 1<<30 {
			res.Path = p.extractPath(incumbentMap)
		}
	}
	if !opts.unbounded() && res.Distance > opts.Threshold {
		res.Exceeded = true
		res.Distance = opts.Threshold + 1 // proven lower bound
		res.Path = nil
	}
	return res
}

// expandNodeLevel pushes the children of a node-level state. The hyperedge
// part of the suffix bound is constant across all node levels (no hyperedge
// is mapped yet), and the node-label Ψ updates in O(1) per candidate.
func (s *bfsSearch) expandNodeLevel(st *state, lvl, bound int, pq *stateHeap) {
	p := s.p
	src := s.nodeOrder[lvl]
	suffix := s.srcNodeCnt[lvl+1]
	sizeA := s.srcNodeSize[lvl+1]
	var sizeB, interAB, edgeLB int
	if s.useLB {
		sizeB = s.tgtNodeSize
		interAB = interSize(suffix, s.tgtNodeCnt)
		// Full edge-part bound: no hyperedges are mapped at node levels.
		edgePsi := maxInt(s.srcEdgeSize[0], s.tgtEdgeSize) - interSize(s.srcEdgeCnt[0], s.tgtEdgeCnt)
		edgeLB = weightedPsi(edgePsi, s.srcEdgeSize[0]-s.tgtEdgeSize, p.w.Edge, p.w.minEdgeMismatch()) +
			sortedL1(s.srcEdgeCards[0], s.tgtEdgeCards)*p.w.Incidence
	}
	for j := 0; j < s.N; j++ {
		if s.usedNodes[j] {
			continue
		}
		childG := int(st.g) + p.nodeCost(src, j)
		childLB := edgeLB
		if s.useLB {
			inter, size := interAB, sizeB
			if j < p.tgt.n {
				l := p.tgtNodeLab[j]
				if cb := s.tgtNodeCnt[l]; cb >= 1 && cb <= suffix[l] {
					inter--
				}
				size--
			}
			psi := maxInt(sizeA, size) - inter
			childLB += weightedPsi(psi, sizeA-size, p.w.Node, p.w.minNodeMismatch())
		}
		if f := childG + childLB; f < bound {
			heap.Push(pq, &state{parent: st, choice: int32(j), level: st.level + 1, g: int32(childG), f: int32(f)})
		}
	}
}

// expandEdgeLevel pushes the children of an edge-level state; the node
// mapping is complete, so edge costs are exact.
func (s *bfsSearch) expandEdgeLevel(st *state, lvl, bound int, pq *stateHeap) {
	p := s.p
	elvl := lvl - s.N
	src := s.edgeOrder[elvl]
	suffix := s.srcEdgeCnt[elvl+1]
	sizeA := s.srcEdgeSize[elvl+1]
	srcCards := s.srcEdgeCards[elvl+1]
	var sizeB, interAB int
	if s.useLB {
		sizeB = s.tgtEdgeSize
		interAB = interSize(suffix, s.tgtEdgeCnt)
	}
	for j := 0; j < s.M; j++ {
		if s.usedEdges[j] {
			continue
		}
		childG := int(st.g) + p.edgeCost(src, j, s.nodeMapBuf)
		childLB := 0
		if s.useLB {
			inter, size := interAB, sizeB
			cards := s.tgtEdgeCards
			if j < p.tgt.m {
				l := p.tgtEdgeLab[j]
				if cb := s.tgtEdgeCnt[l]; cb >= 1 && cb <= suffix[l] {
					inter--
				}
				size--
				s.cardScratch = append(s.cardScratch[:0], s.tgtEdgeCards...)
				cards = removeSortedIntInPlace(s.cardScratch, p.tgt.cards[j])
			}
			psi := maxInt(sizeA, size) - inter
			childLB = weightedPsi(psi, sizeA-size, p.w.Edge, p.w.minEdgeMismatch()) +
				sortedL1(srcCards, cards)*p.w.Incidence
		}
		if f := childG + childLB; f < bound {
			heap.Push(pq, &state{parent: st, choice: int32(j), level: st.level + 1, g: int32(childG), f: int32(f)})
		}
	}
}

// state is a search node: the assignment made at the parent's level to reach
// it, the exact accumulated cost g, and the admissible estimate f = g + h.
type state struct {
	parent *state
	choice int32
	level  int32
	g      int32
	f      int32
}

func reconstructMapping(p *pair, goal *state, nodeOrder, edgeOrder []int) *Mapping {
	N, M := p.paddedN, p.paddedM
	mp := &Mapping{
		SrcN: p.src.n, TgtN: p.tgt.n,
		SrcM: p.src.m, TgtM: p.tgt.m,
		NodeMap: make([]int, N),
		EdgeMap: make([]int, M),
	}
	for s := goal; s.parent != nil; s = s.parent {
		lvl := int(s.parent.level)
		if lvl < N {
			mp.NodeMap[nodeOrder[lvl]] = int(s.choice)
		} else {
			mp.EdgeMap[edgeOrder[lvl-N]] = int(s.choice)
		}
	}
	return mp
}

// stateHeap is a min-heap on f, breaking ties toward deeper states so goals
// surface sooner.
type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].level > h[j].level
}
func (h stateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) {
	*h = append(*h, x.(*state))
}
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
