package core

import (
	"sort"

	"hged/internal/hypergraph"
)

// BFS implements HGED-BFS (Algorithm 3): a best-first branch-and-bound
// search over entity mappings with the paper's three strategies.
//
//   - Strategy 1 re-ranks the source entities: nodes before hyperedges,
//     higher degree first, equal labels grouped, higher cardinality first.
//   - Strategy 2 seeds the search with an upper bound computed from greedy
//     and sampled complete mappings (and the threshold τ, when set).
//   - Strategy 3 prunes with admissible lower bounds: the label-based bound
//     Ψ (Definition 5) plus the hyperedge-based cardinality bound
//     (Definition 6) over the yet-unmapped suffix.
//
// States assign the k-th re-ranked source entity to an unused target slot;
// all node levels precede all edge levels, so edge-mapping costs are exact
// when incurred. The suffix bounds are consistent (each assignment's cost
// dominates the bound decrease), so the first complete mapping popped is
// optimal. The search is exact; when a threshold τ > 0 is set it may stop
// early with Exceeded=true once HGED > τ is proven.
//
// Label multisets are tracked as dense arrays over the pair's label
// dictionary, so per-state bound maintenance is allocation-free: Ψ updates
// in O(1) per candidate from the popped state's base quantities, and the
// cardinality bound recomputes in O(M) over sorted remainders.
//
// Search states live in a per-search slab and reference their parents by
// index, so pushing a state never allocates once the slab is warm; the
// package-level BFS runs on a pooled Solver whose slab, priority queue and
// scratch persist across calls.
func BFS(g, h *hypergraph.Hypergraph, opts Options) Result {
	sv := AcquireSolver()
	defer ReleaseSolver(sv)
	return sv.BFS(g, h, opts)
}

// state is a search node: the assignment made at the parent's level to reach
// it, the exact accumulated cost g, and the admissible estimate f = g + h.
// States are slab-allocated; parent is a slab index (noParent for the root).
type state struct {
	parent int32
	choice int32
	level  int32
	g      int32
	f      int32
}

const noParent = int32(-1)

// bfsSearch holds the per-run state of HGED-BFS. The zero value is ready;
// init prepares a run and retains all buffers for the next one.
type bfsSearch struct {
	p    *pair
	N, M int

	nodeOrder, edgeOrder []int

	// Source suffix label counts and cardinality lists per level (immutable
	// after init). Counts are flat: level k of the node suffixes occupies
	// srcNodeCnt[k*numNodeLab : (k+1)*numNodeLab], and likewise for edges.
	srcNodeCnt   []int32 // (N+1) × numNodeLab
	srcNodeSize  []int
	srcEdgeCnt   []int32 // (M+1) × numEdgeLab
	srcEdgeSize  []int
	srcEdgeCards [][]int // ascending; slices into cardArena
	cardArena    []int

	useLB bool

	// Per-pop scratch (reused across pops).
	usedNodes, usedEdges []bool
	nodeMapBuf           []int
	tgtNodeCnt           []int32
	tgtNodeSize          int
	tgtEdgeCnt           []int32
	tgtEdgeSize          int
	tgtEdgeCards         []int // ascending
	cardScratch          []int

	// Slab of all created states plus the priority queue of slab indices.
	slab    []state
	heapIdx []int32
}

func (s *bfsSearch) srcNodeCntAt(k int) []int32 {
	w := s.p.numNodeLab
	return s.srcNodeCnt[k*w : (k+1)*w]
}

func (s *bfsSearch) srcEdgeCntAt(k int) []int32 {
	w := s.p.numEdgeLab
	return s.srcEdgeCnt[k*w : (k+1)*w]
}

// init prepares the search for p, reusing every retained buffer.
func (s *bfsSearch) init(p *pair, opts Options) {
	N, M := p.paddedN, p.paddedM
	s.p, s.N, s.M = p, N, M
	s.useLB = !opts.DisableLowerBound
	s.nodeOrder = growInts(s.nodeOrder, N)
	rerankNodes(s.nodeOrder, p.src, opts.DisableRerank)
	s.edgeOrder = growInts(s.edgeOrder, M)
	rerankEdges(s.edgeOrder, p.src, opts.DisableRerank)
	s.usedNodes = growBools(s.usedNodes, N)
	s.usedEdges = growBools(s.usedEdges, M)
	s.nodeMapBuf = growInts(s.nodeMapBuf, N)
	s.tgtNodeCnt = growInt32s(s.tgtNodeCnt, p.numNodeLab)
	s.tgtEdgeCnt = growInt32s(s.tgtEdgeCnt, p.numEdgeLab)
	s.slab = s.slab[:0]
	s.heapIdx = s.heapIdx[:0]

	// Source node-label suffixes.
	s.srcNodeCnt = growInt32s(s.srcNodeCnt, (N+1)*p.numNodeLab)
	s.srcNodeSize = growInts(s.srcNodeSize, N+1)
	cur := s.srcNodeCntAt(0)
	for i := range cur {
		cur[i] = 0
	}
	for _, l := range p.srcNodeLab {
		cur[l]++
	}
	size := p.src.n
	s.srcNodeSize[0] = size
	for k := 0; k < N; k++ {
		next := s.srcNodeCntAt(k + 1)
		copy(next, cur)
		if v := s.nodeOrder[k]; v < p.src.n {
			next[p.srcNodeLab[v]]--
			size--
		}
		s.srcNodeSize[k+1] = size
		cur = next
	}
	// Source edge-label and cardinality suffixes.
	s.srcEdgeCnt = growInt32s(s.srcEdgeCnt, (M+1)*p.numEdgeLab)
	s.srcEdgeSize = growInts(s.srcEdgeSize, M+1)
	ecur := s.srcEdgeCntAt(0)
	for i := range ecur {
		ecur[i] = 0
	}
	for _, l := range p.srcEdgeLab {
		ecur[l]++
	}
	esize := p.src.m
	s.srcEdgeSize[0] = esize
	// Cardinality suffix lists: level k+1 is level k with the k-th ranked
	// real edge's cardinality removed; each level is carved from cardArena.
	if cap(s.srcEdgeCards) < M+1 {
		s.srcEdgeCards = make([][]int, M+1)
	} else {
		s.srcEdgeCards = s.srcEdgeCards[:M+1]
	}
	arenaNeed := 0
	for k, rem := 0, p.src.m; k <= M; k++ {
		arenaNeed += rem
		if k < M && s.edgeOrder[k] < p.src.m {
			rem--
		}
	}
	s.cardArena = growInts(s.cardArena, arenaNeed)
	arena := s.cardArena
	cards := arena[:p.src.m]
	arena = arena[p.src.m:]
	copy(cards, p.src.cards)
	sort.Ints(cards)
	s.srcEdgeCards[0] = cards
	for k := 0; k < M; k++ {
		next := cards
		if e := s.edgeOrder[k]; e < p.src.m {
			ecur2 := s.srcEdgeCntAt(k + 1)
			copy(ecur2, ecur)
			ecur2[p.srcEdgeLab[e]]--
			esize--
			ecur = ecur2
			next = arena[:len(cards)-1]
			arena = arena[len(cards)-1:]
			copyWithoutSorted(next, cards, p.src.cards[e])
		} else {
			ecur2 := s.srcEdgeCntAt(k + 1)
			copy(ecur2, ecur)
			ecur = ecur2
			next = arena[:len(cards)]
			arena = arena[len(cards):]
			copy(next, cards)
		}
		s.srcEdgeSize[k+1] = esize
		s.srcEdgeCards[k+1] = next
		cards = next
	}
}

// copyWithoutSorted copies the ascending list src into dst (len(src)-1)
// omitting one occurrence of v; if v is absent the last element is dropped
// (cannot happen for well-formed inputs).
func copyWithoutSorted(dst, src []int, v int) {
	i := sort.SearchInts(src, v)
	if i >= len(src) || src[i] != v {
		copy(dst, src[:len(src)-1])
		return
	}
	copy(dst, src[:i])
	copy(dst[i:], src[i+1:])
}

// restore rebuilds the scratch state (used slots, node-map prefix, target
// remaining counts) for the popped search node by walking its parent chain.
func (s *bfsSearch) restore(st int32) {
	p := s.p
	for i := range s.usedNodes {
		s.usedNodes[i] = false
	}
	for i := range s.usedEdges {
		s.usedEdges[i] = false
	}
	for i := range s.tgtNodeCnt {
		s.tgtNodeCnt[i] = 0
	}
	for _, l := range p.tgtNodeLab {
		s.tgtNodeCnt[l]++
	}
	s.tgtNodeSize = p.tgt.n
	for i := range s.tgtEdgeCnt {
		s.tgtEdgeCnt[i] = 0
	}
	for _, l := range p.tgtEdgeLab {
		s.tgtEdgeCnt[l]++
	}
	s.tgtEdgeSize = p.tgt.m
	s.tgtEdgeCards = append(s.tgtEdgeCards[:0], p.tgt.cards...)
	sort.Ints(s.tgtEdgeCards)

	for cur := st; s.slab[cur].parent != noParent; cur = s.slab[cur].parent {
		par := &s.slab[s.slab[cur].parent]
		lvl := int(par.level)
		choice := int(s.slab[cur].choice)
		if lvl < s.N {
			s.usedNodes[choice] = true
			s.nodeMapBuf[s.nodeOrder[lvl]] = choice
			if choice < p.tgt.n {
				s.tgtNodeCnt[p.tgtNodeLab[choice]]--
				s.tgtNodeSize--
			}
		} else {
			s.usedEdges[choice] = true
			if choice < p.tgt.m {
				s.tgtEdgeCnt[p.tgtEdgeLab[choice]]--
				s.tgtEdgeSize--
				s.tgtEdgeCards = removeSortedIntInPlace(s.tgtEdgeCards, p.tgt.cards[choice])
			}
		}
	}
}

func removeSortedIntInPlace(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		copy(xs[i:], xs[i+1:])
		return xs[:len(xs)-1]
	}
	return xs
}

func interSize(a, b []int32) int {
	n := 0
	for i, x := range a {
		y := b[i]
		if x < y {
			n += int(x)
		} else {
			n += int(y)
		}
	}
	return n
}

func (s *bfsSearch) run(opts Options) Result {
	p := s.p
	N, M := s.N, s.M
	total := N + M

	// Strategy 2: initial incumbent.
	incumbent := 1 << 30
	var incumbentMap *Mapping
	if !opts.DisableUpperBound {
		incumbent, incumbentMap = p.upperBound(opts.samples(), opts.seed())
	}
	bound := incumbent
	if !opts.unbounded() && opts.Threshold+1 < bound {
		bound = opts.Threshold + 1
	}

	rootLB := 0
	if s.useLB {
		rootLB = p.rootLowerBound()
	}

	if rootLB < bound {
		s.pushState(state{parent: noParent, level: 0, g: 0, f: int32(rootLB)})
	}

	budget := opts.maxExpansions()
	var expanded int64
	capped := false
	goal := noParent

	for len(s.heapIdx) > 0 {
		st := s.popState()
		if int(s.slab[st].f) >= bound {
			continue // stale against a tightened incumbent
		}
		expanded++
		if expanded > budget || opts.cancelled(expanded) {
			capped = true
			break
		}
		if int(s.slab[st].level) == total {
			goal = st
			break
		}
		s.restore(st)

		lvl := int(s.slab[st].level)
		if lvl < N {
			s.expandNodeLevel(st, lvl, bound)
		} else {
			s.expandEdgeLevel(st, lvl, bound)
		}
	}

	res := Result{Expanded: expanded, Exact: !capped, Cancelled: capped && opts.ctxCancelled()}
	switch {
	case goal != noParent:
		res.Distance = int(s.slab[goal].g)
		res.Path = p.extractPath(s.reconstructMapping(goal))
	case capped:
		// Budget exhausted: fall back to the best known upper bound.
		if incumbentMap == nil {
			incumbent, incumbentMap = p.upperBound(opts.samples(), opts.seed())
		}
		res.Distance = incumbent
		res.Path = p.extractPath(incumbentMap)
		return res
	default:
		// Queue exhausted below bound: the incumbent (or exceedance) is
		// the answer.
		res.Distance = incumbent
		if incumbentMap != nil && incumbent < 1<<30 {
			res.Path = p.extractPath(incumbentMap)
		}
	}
	if !opts.unbounded() && res.Distance > opts.Threshold {
		res.Exceeded = true
		res.Distance = opts.Threshold + 1 // proven lower bound
		res.Path = nil
	}
	return res
}

// expandNodeLevel pushes the children of a node-level state. The hyperedge
// part of the suffix bound is constant across all node levels (no hyperedge
// is mapped yet), and the node-label Ψ updates in O(1) per candidate.
func (s *bfsSearch) expandNodeLevel(st int32, lvl, bound int) {
	p := s.p
	src := s.nodeOrder[lvl]
	suffix := s.srcNodeCntAt(lvl + 1)
	sizeA := s.srcNodeSize[lvl+1]
	parentG := int(s.slab[st].g)
	parentLevel := s.slab[st].level
	var sizeB, interAB, edgeLB int
	if s.useLB {
		sizeB = s.tgtNodeSize
		interAB = interSize(suffix, s.tgtNodeCnt)
		// Full edge-part bound: no hyperedges are mapped at node levels.
		edgePsi := maxInt(s.srcEdgeSize[0], s.tgtEdgeSize) - interSize(s.srcEdgeCntAt(0), s.tgtEdgeCnt)
		edgeLB = weightedPsi(edgePsi, s.srcEdgeSize[0]-s.tgtEdgeSize, p.w.Edge, p.w.minEdgeMismatch()) +
			sortedL1(s.srcEdgeCards[0], s.tgtEdgeCards)*p.w.Incidence
	}
	for j := 0; j < s.N; j++ {
		if s.usedNodes[j] {
			continue
		}
		childG := parentG + p.nodeCost(src, j)
		childLB := edgeLB
		if s.useLB {
			inter, size := interAB, sizeB
			if j < p.tgt.n {
				l := p.tgtNodeLab[j]
				if cb := s.tgtNodeCnt[l]; cb >= 1 && cb <= suffix[l] {
					inter--
				}
				size--
			}
			psi := maxInt(sizeA, size) - inter
			childLB += weightedPsi(psi, sizeA-size, p.w.Node, p.w.minNodeMismatch())
		}
		if f := childG + childLB; f < bound {
			s.pushState(state{parent: st, choice: int32(j), level: parentLevel + 1, g: int32(childG), f: int32(f)})
		}
	}
}

// expandEdgeLevel pushes the children of an edge-level state; the node
// mapping is complete, so edge costs are exact.
func (s *bfsSearch) expandEdgeLevel(st int32, lvl, bound int) {
	p := s.p
	elvl := lvl - s.N
	src := s.edgeOrder[elvl]
	suffix := s.srcEdgeCntAt(elvl + 1)
	sizeA := s.srcEdgeSize[elvl+1]
	srcCards := s.srcEdgeCards[elvl+1]
	parentG := int(s.slab[st].g)
	parentLevel := s.slab[st].level
	var sizeB, interAB int
	if s.useLB {
		sizeB = s.tgtEdgeSize
		interAB = interSize(suffix, s.tgtEdgeCnt)
	}
	for j := 0; j < s.M; j++ {
		if s.usedEdges[j] {
			continue
		}
		childG := parentG + p.edgeCost(src, j, s.nodeMapBuf)
		childLB := 0
		if s.useLB {
			inter, size := interAB, sizeB
			cards := s.tgtEdgeCards
			if j < p.tgt.m {
				l := p.tgtEdgeLab[j]
				if cb := s.tgtEdgeCnt[l]; cb >= 1 && cb <= suffix[l] {
					inter--
				}
				size--
				s.cardScratch = append(s.cardScratch[:0], s.tgtEdgeCards...)
				cards = removeSortedIntInPlace(s.cardScratch, p.tgt.cards[j])
			}
			psi := maxInt(sizeA, size) - inter
			childLB = weightedPsi(psi, sizeA-size, p.w.Edge, p.w.minEdgeMismatch()) +
				sortedL1(srcCards, cards)*p.w.Incidence
		}
		if f := childG + childLB; f < bound {
			s.pushState(state{parent: st, choice: int32(j), level: parentLevel + 1, g: int32(childG), f: int32(f)})
		}
	}
}

func (s *bfsSearch) reconstructMapping(goal int32) *Mapping {
	p := s.p
	N, M := p.paddedN, p.paddedM
	mp := &Mapping{
		SrcN: p.src.n, TgtN: p.tgt.n,
		SrcM: p.src.m, TgtM: p.tgt.m,
		NodeMap: make([]int, N),
		EdgeMap: make([]int, M),
	}
	for cur := goal; s.slab[cur].parent != noParent; cur = s.slab[cur].parent {
		lvl := int(s.slab[s.slab[cur].parent].level)
		if lvl < N {
			mp.NodeMap[s.nodeOrder[lvl]] = int(s.slab[cur].choice)
		} else {
			mp.EdgeMap[s.edgeOrder[lvl-N]] = int(s.slab[cur].choice)
		}
	}
	return mp
}

// --------------------------------------------------------------- heap
//
// The priority queue is a binary min-heap of slab indices ordered on
// (f ascending, level descending) — deeper states first on ties so goals
// surface sooner. The sift procedures mirror container/heap exactly, so the
// pop order (and therefore the reported edit paths) is bit-for-bit the same
// as the previous pointer-based implementation; what changed is that pushes
// append to the slab and index array instead of allocating.

func (s *bfsSearch) stateLess(a, b int32) bool {
	sa, sb := &s.slab[a], &s.slab[b]
	if sa.f != sb.f {
		return sa.f < sb.f
	}
	return sa.level > sb.level
}

// pushState slab-allocates st and sifts its index up the heap.
func (s *bfsSearch) pushState(st state) {
	s.slab = append(s.slab, st)
	s.heapIdx = append(s.heapIdx, int32(len(s.slab)-1))
	h := s.heapIdx
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.stateLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popState removes and returns the minimum state's slab index.
func (s *bfsSearch) popState() int32 {
	h := s.heapIdx
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift the swapped-in root down over h[:n] (container/heap's down).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.stateLess(h[j2], h[j1]) {
			j = j2
		}
		if !s.stateLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	top := h[n]
	s.heapIdx = h[:n]
	return top
}
