package core

import (
	"encoding/json"
	"fmt"
	"io"

	"hged/internal/hypergraph"
)

// jsonOp is the wire form of an edit operation.
type jsonOp struct {
	Kind  string           `json:"kind"`
	Node  *int             `json:"node,omitempty"`
	Edge  *int             `json:"edge,omitempty"`
	Label hypergraph.Label `json:"label,omitempty"`
}

var kindNames = map[OpKind]string{
	OpNodeDelete:  "node-delete",
	OpNodeInsert:  "node-insert",
	OpEdgeDelete:  "edge-delete",
	OpEdgeInsert:  "edge-insert",
	OpEdgeReduce:  "edge-reduce",
	OpEdgeExtend:  "edge-extend",
	OpNodeRelabel: "node-relabel",
	OpEdgeRelabel: "edge-relabel",
}

var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(kindNames))
	//hgedvet:ignore detrange builds the inverse lookup map; insertion order cannot affect the result
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// opUsesNode reports whether the op kind references a node slot.
func opUsesNode(k OpKind) bool {
	switch k {
	case OpNodeDelete, OpNodeInsert, OpNodeRelabel, OpEdgeReduce, OpEdgeExtend:
		return true
	}
	return false
}

// opUsesEdge reports whether the op kind references an edge slot.
func opUsesEdge(k OpKind) bool {
	switch k {
	case OpEdgeDelete, OpEdgeInsert, OpEdgeRelabel, OpEdgeReduce, OpEdgeExtend:
		return true
	}
	return false
}

// WritePathJSON serializes an edit path as a JSON array of operations, for
// consumption by external tools (UIs, notebooks, audit logs).
func WritePathJSON(w io.Writer, p *Path) error {
	ops := make([]jsonOp, len(p.Ops))
	for i, op := range p.Ops {
		name, ok := kindNames[op.Kind]
		if !ok {
			return fmt.Errorf("core: op %d has unknown kind %v", i, op.Kind)
		}
		jo := jsonOp{Kind: name, Label: op.Label}
		if opUsesNode(op.Kind) {
			n := op.Node
			jo.Node = &n
		}
		if opUsesEdge(op.Kind) {
			e := op.Edge
			jo.Edge = &e
		}
		ops[i] = jo
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ops)
}

// ReadPathJSON parses the JSON produced by WritePathJSON. The returned
// path carries no mapping (only the operations), which is all Apply needs.
func ReadPathJSON(r io.Reader) (*Path, error) {
	var ops []jsonOp
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &Path{Ops: make([]Op, len(ops))}
	for i, jo := range ops {
		kind, ok := kindByName[jo.Kind]
		if !ok {
			return nil, fmt.Errorf("core: op %d has unknown kind %q", i, jo.Kind)
		}
		op := Op{Kind: kind, Label: jo.Label}
		if opUsesNode(kind) {
			if jo.Node == nil {
				return nil, fmt.Errorf("core: op %d (%s) missing node", i, jo.Kind)
			}
			op.Node = *jo.Node
		}
		if opUsesEdge(kind) {
			if jo.Edge == nil {
				return nil, fmt.Errorf("core: op %d (%s) missing edge", i, jo.Kind)
			}
			op.Edge = *jo.Edge
		}
		p.Ops[i] = op
	}
	return p, nil
}
