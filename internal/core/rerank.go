package core

import "sort"

// rerankNodes fills order (length paddedN) with the order in which source
// node slots are assigned during search, implementing Strategy 1's
// intuitions: (i) higher-degree nodes first, (ii) nodes with equal labels
// grouped together, (iii) nodes before hyperedges (enforced by the caller:
// all node levels precede edge levels), (iv) higher-cardinality hyperedges
// first (see rerankEdges). Real slots come first; null (padding) slots last.
// When disabled, natural order is used.
func rerankNodes(order []int, d *graphData, disable bool) {
	for i := range order {
		order[i] = i
	}
	if disable || d.n == 0 {
		return
	}
	// Group score per label: the maximum degree among nodes of that label,
	// so whole label groups are ordered by their strongest member.
	groupScore := make(map[int32]int)
	for v := 0; v < d.n; v++ {
		l := int32(d.nodeLabels[v])
		if d.degrees[v] > groupScore[l] {
			groupScore[l] = d.degrees[v]
		}
	}
	real := order[:d.n]
	sort.SliceStable(real, func(a, b int) bool {
		va, vb := real[a], real[b]
		la, lb := int32(d.nodeLabels[va]), int32(d.nodeLabels[vb])
		if groupScore[la] != groupScore[lb] {
			return groupScore[la] > groupScore[lb]
		}
		if la != lb {
			return la < lb
		}
		if d.degrees[va] != d.degrees[vb] {
			return d.degrees[va] > d.degrees[vb]
		}
		return va < vb
	})
}

// rerankEdges fills order (length paddedM) with the source hyperedge slot
// order: label groups ordered by their largest cardinality,
// higher-cardinality edges first inside each group. Null slots last.
func rerankEdges(order []int, d *graphData, disable bool) {
	for i := range order {
		order[i] = i
	}
	if disable || d.m == 0 {
		return
	}
	groupScore := make(map[int32]int)
	for e := 0; e < d.m; e++ {
		l := int32(d.edgeLabels[e])
		if d.cards[e] > groupScore[l] {
			groupScore[l] = d.cards[e]
		}
	}
	real := order[:d.m]
	sort.SliceStable(real, func(a, b int) bool {
		ea, eb := real[a], real[b]
		la, lb := int32(d.edgeLabels[ea]), int32(d.edgeLabels[eb])
		if groupScore[la] != groupScore[lb] {
			return groupScore[la] > groupScore[lb]
		}
		if la != lb {
			return la < lb
		}
		if d.cards[ea] != d.cards[eb] {
			return d.cards[ea] > d.cards[eb]
		}
		return ea < eb
	})
}
