package core

import (
	"testing"

	"hged/internal/hypergraph"
)

func TestRerankNodesStrategy1(t *testing.T) {
	// Labels: node 0,1 share label 1 (degrees 1 and 3); node 2 has label 2
	// (degree 2). Group score of label 1 is 3 > 2, so the label-1 group
	// comes first, highest degree first inside it.
	g := hypergraph.NewLabeled([]hypergraph.Label{1, 1, 2})
	g.AddEdge(9, 0, 1)
	g.AddEdge(9, 1, 2)
	g.AddEdge(9, 1, 2)
	g.AddEdge(9, 1)
	d := compile(g)
	order := make([]int, 4) // padded by one null slot
	rerankNodes(order, d, false)
	want := []int{1, 0, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Disabled: natural order.
	rerankNodes(order, d, true)
	for i := range order {
		if order[i] != i {
			t.Fatalf("disabled rerank should be identity, got %v", order)
		}
	}
}

func TestRerankEdgesStrategy1(t *testing.T) {
	// Edge 0: label 5 card 2; edge 1: label 6 card 3; edge 2: label 5
	// card 1. Label 6's top cardinality (3) beats label 5's (2), so edge 1
	// leads; then the label-5 group by cardinality.
	g := hypergraph.New(4)
	g.AddEdge(5, 0, 1)
	g.AddEdge(6, 0, 1, 2)
	g.AddEdge(5, 3)
	d := compile(g)
	order := make([]int, 3)
	rerankEdges(order, d, false)
	want := []int{1, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRerankEmptyGraphs(t *testing.T) {
	d := compile(hypergraph.New(0))
	got := make([]int, 2)
	rerankNodes(got, d, false)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("empty-graph node order = %v", got)
	}
	rerankEdges(got, d, false)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("empty-graph edge order = %v", got)
	}
}

func TestUpperBoundDeterministic(t *testing.T) {
	g, h := egoPair()
	p1 := newPair(g, h)
	p2 := newPair(g, h)
	ub1, mp1 := p1.upperBound(3, 1)
	ub2, mp2 := p2.upperBound(3, 1)
	if ub1 != ub2 {
		t.Fatalf("upper bounds differ: %d vs %d", ub1, ub2)
	}
	for i := range mp1.NodeMap {
		if mp1.NodeMap[i] != mp2.NodeMap[i] {
			t.Fatal("upper-bound mappings differ across identical runs")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.maxExpansions() != defaultMaxExpansions {
		t.Fatal("default expansion budget wrong")
	}
	if o.samples() != 3 || o.seed() != 1 {
		t.Fatal("default samples/seed wrong")
	}
	if !o.unbounded() {
		t.Fatal("zero threshold must mean unbounded")
	}
	o.Threshold = 5
	if o.unbounded() {
		t.Fatal("positive threshold must bound the search")
	}
	o.MaxExpansions = 7
	o.UpperBoundSamples = 2
	o.Seed = 9
	if o.maxExpansions() != 7 || o.samples() != 2 || o.seed() != 9 {
		t.Fatal("explicit options not honored")
	}
}

func TestAssignmentLowerBoundEmptyEdges(t *testing.T) {
	a := hypergraph.NewLabeled([]hypergraph.Label{1, 2})
	b := hypergraph.NewLabeled([]hypergraph.Label{1, 3})
	if got := AssignmentLowerBound(a, b); got != 1 {
		t.Fatalf("edgeless assignment bound = %d, want 1", got)
	}
}
