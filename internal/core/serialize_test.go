package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hged/internal/hypergraph"
)

func TestPathJSONRoundTrip(t *testing.T) {
	g, h := egoPair()
	_, path := DistanceWithPath(g, h)
	var buf bytes.Buffer
	if err := WritePathJSON(&buf, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPathJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cost() != path.Cost() {
		t.Fatalf("round trip changed cost: %d vs %d", back.Cost(), path.Cost())
	}
	// The deserialized path must still transform the source into the
	// target.
	got, err := back.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !hypergraph.Isomorphic(got, h) {
		t.Fatal("deserialized path does not reach the target")
	}
}

func TestPathJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		_, path := DistanceWithPath(a, b)
		var buf bytes.Buffer
		if err := WritePathJSON(&buf, path); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := ReadPathJSON(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := back.Apply(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !hypergraph.Isomorphic(got, b) {
			t.Fatalf("trial %d: path lost through JSON", trial)
		}
	}
}

func TestPathJSONKinds(t *testing.T) {
	p := &Path{Ops: []Op{
		{Kind: OpNodeInsert, Node: 2, Label: 7},
		{Kind: OpEdgeExtend, Edge: 1, Node: 2},
		{Kind: OpEdgeRelabel, Edge: 1, Label: 9},
	}}
	var buf bytes.Buffer
	if err := WritePathJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"node-insert", "edge-extend", "edge-relabel"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %s", want, s)
		}
	}
	back, err := ReadPathJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops[0] != p.Ops[0] || back.Ops[1] != p.Ops[1] || back.Ops[2] != p.Ops[2] {
		t.Fatalf("ops changed: %v vs %v", back.Ops, p.Ops)
	}
}

func TestPathJSONErrors(t *testing.T) {
	if _, err := ReadPathJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := ReadPathJSON(strings.NewReader(`[{"kind":"teleport"}]`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := ReadPathJSON(strings.NewReader(`[{"kind":"node-delete"}]`)); err == nil {
		t.Fatal("missing node field must fail")
	}
	if _, err := ReadPathJSON(strings.NewReader(`[{"kind":"edge-delete"}]`)); err == nil {
		t.Fatal("missing edge field must fail")
	}
	bad := &Path{Ops: []Op{{Kind: OpKind(99)}}}
	var buf bytes.Buffer
	if err := WritePathJSON(&buf, bad); err == nil {
		t.Fatal("unknown kind must fail to serialize")
	}
}
