package core

import (
	"sync"
	"sync/atomic"

	"hged/internal/hypergraph"
)

// Solver is a reusable HGED-BFS handle: the pair model (compiled graphs,
// label dictionaries, EDC scratch) and the search state (slab, priority
// queue, suffix arrays) are retained across solves, so batch callers pay
// the allocation cost of the first solve only. A Solver is not safe for
// concurrent use; use one per goroutine, or the pooled package-level BFS.
type Solver struct {
	p      pair
	search bfsSearch
}

// NewSolver returns a fresh, unpooled Solver. Batch drivers that own their
// worker goroutines (Matrix, search verification) use one per worker.
func NewSolver() *Solver { return new(Solver) }

// BFS runs HGED-BFS on (g, h), reusing the solver's retained storage. The
// result is identical to the package-level BFS: same distances, same paths.
// The returned Result does not alias solver memory and remains valid after
// further solves.
func (sv *Solver) BFS(g, h *hypergraph.Hypergraph, opts Options) Result {
	sv.p.init(g, h, opts.costModel())
	sv.search.init(&sv.p, opts)
	return sv.search.run(opts)
}

// EDCInaccurate computes the EDC-INAC upper bound for a complete padded node
// mapping on the solver's retained pair model (see EDCInaccurate).
func (sv *Solver) EDCInaccurate(g, h *hypergraph.Hypergraph, nodeMap []int) int {
	sv.p.init(g, h, UnitCosts())
	return sv.p.edcInaccurate(nodeMap)
}

// solverPool recycles Solvers across package-level BFS calls so concurrent
// batch workloads (the hgedd service, HEP, matrices) hit warm slabs.
var solverPool = sync.Pool{New: func() interface{} {
	solverMisses.Add(1)
	return new(Solver)
}}

var (
	solverAcquires atomic.Int64
	solverMisses   atomic.Int64
)

// AcquireSolver takes a Solver from the pool (allocating one on a pool
// miss). Pair it with ReleaseSolver.
func AcquireSolver() *Solver {
	solverAcquires.Add(1)
	//hgedvet:ignore poolpair ownership transfers to the caller, who must pair this with ReleaseSolver
	return solverPool.Get().(*Solver)
}

// ReleaseSolver returns a Solver to the pool. The caller must not use sv
// afterwards.
func ReleaseSolver(sv *Solver) { solverPool.Put(sv) }

// SolverPoolStats reports how often AcquireSolver was served by a warm
// pooled Solver (hits) versus a fresh allocation (misses). The counters are
// cumulative for the process; the hgedd /metrics endpoint exposes them.
func SolverPoolStats() (hits, misses int64) {
	a, m := solverAcquires.Load(), solverMisses.Load()
	return a - m, m
}
