package core

import (
	"sync"

	"hged/internal/hypergraph"
)

// NotWithin is the Matrix entry for pairs whose distance provably exceeds
// the threshold.
const NotWithin = -1

// Matrix computes all pairwise HGED values among the given hypergraphs,
// optionally in parallel. The result is symmetric with a zero diagonal.
// When opts carries a threshold τ > 0, entries beyond it are NotWithin.
// workers ≤ 1 runs sequentially; results are identical either way.
func Matrix(graphs []*hypergraph.Hypergraph, opts Options, workers int) [][]int {
	n := len(graphs)
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, n)
	}
	type job struct{ i, j int }
	var jobs []job
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs = append(jobs, job{i, j})
		}
	}
	// Each worker owns one pooled Solver for its whole job stream, so the
	// slab/scratch allocations of the first pair are amortized across all of
	// them.
	run := func(sv *Solver, jb job) {
		res := sv.BFS(graphs[jb.i], graphs[jb.j], opts)
		d := res.Distance
		if res.Exceeded {
			d = NotWithin
		}
		out[jb.i][jb.j] = d
		out[jb.j][jb.i] = d
	}
	if workers <= 1 {
		sv := AcquireSolver()
		defer ReleaseSolver(sv)
		for _, jb := range jobs {
			run(sv, jb)
		}
		return out
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := AcquireSolver()
			defer ReleaseSolver(sv)
			for jb := range ch {
				run(sv, jb)
			}
		}()
	}
	for _, jb := range jobs {
		ch <- jb
	}
	close(ch)
	wg.Wait()
	return out
}

// NodeMatrix computes the pairwise node-similar distances σ(u, v) among the
// given nodes of one host graph (Problem 1, batched): the ego networks are
// extracted once and compared pairwise.
func NodeMatrix(g *hypergraph.Hypergraph, nodes []hypergraph.NodeID, opts Options, workers int) [][]int {
	egos := make([]*hypergraph.Hypergraph, len(nodes))
	for i, v := range nodes {
		egos[i] = g.Ego(v)
	}
	return Matrix(egos, opts, workers)
}
