package core

import (
	"math/rand"
	"sort"
)

// upperBound implements Strategy 2: it evaluates the exact edit cost of a
// small set of heuristically constructed complete mappings — one greedy
// label/degree-aligned mapping plus a few seeded random samples — and
// returns the cheapest mapping found. Every candidate is a complete valid
// mapping, so the returned cost is a sound upper bound on HGED.
func (p *pair) upperBound(samples int, seed int64) (int, *Mapping) {
	best := p.greedyMapping()
	bestCost := p.totalCost(best)

	rng := rand.New(rand.NewSource(seed))
	N, M := p.paddedN, p.paddedM
	for s := 0; s < samples; s++ {
		mp := &Mapping{
			SrcN: p.src.n, TgtN: p.tgt.n,
			SrcM: p.src.m, TgtM: p.tgt.m,
			NodeMap: rng.Perm(N),
			EdgeMap: rng.Perm(M),
		}
		if c := p.totalCost(mp); c < bestCost {
			bestCost, best = c, mp
		}
	}
	return bestCost, best
}

// greedyMapping pairs source and target nodes sorted by (label, degree) and
// hyperedges sorted by (label, cardinality), sending the overhang to null
// slots — the "simply ranked matching order" the paper observes is often
// close to optimal.
func (p *pair) greedyMapping() *Mapping {
	N, M := p.paddedN, p.paddedM
	srcNodes := sortedSlots(p.src.n, func(a, b int) bool {
		if p.src.nodeLabels[a] != p.src.nodeLabels[b] {
			return p.src.nodeLabels[a] < p.src.nodeLabels[b]
		}
		if p.src.degrees[a] != p.src.degrees[b] {
			return p.src.degrees[a] > p.src.degrees[b]
		}
		return a < b
	})
	tgtNodes := sortedSlots(p.tgt.n, func(a, b int) bool {
		if p.tgt.nodeLabels[a] != p.tgt.nodeLabels[b] {
			return p.tgt.nodeLabels[a] < p.tgt.nodeLabels[b]
		}
		if p.tgt.degrees[a] != p.tgt.degrees[b] {
			return p.tgt.degrees[a] > p.tgt.degrees[b]
		}
		return a < b
	})
	srcEdges := sortedSlots(p.src.m, func(a, b int) bool {
		if p.src.edgeLabels[a] != p.src.edgeLabels[b] {
			return p.src.edgeLabels[a] < p.src.edgeLabels[b]
		}
		if p.src.cards[a] != p.src.cards[b] {
			return p.src.cards[a] > p.src.cards[b]
		}
		return a < b
	})
	tgtEdges := sortedSlots(p.tgt.m, func(a, b int) bool {
		if p.tgt.edgeLabels[a] != p.tgt.edgeLabels[b] {
			return p.tgt.edgeLabels[a] < p.tgt.edgeLabels[b]
		}
		if p.tgt.cards[a] != p.tgt.cards[b] {
			return p.tgt.cards[a] > p.tgt.cards[b]
		}
		return a < b
	})
	mp := &Mapping{
		SrcN: p.src.n, TgtN: p.tgt.n,
		SrcM: p.src.m, TgtM: p.tgt.m,
		NodeMap: alignLists(srcNodes, tgtNodes, N),
		EdgeMap: alignLists(srcEdges, tgtEdges, M),
	}
	return mp
}

func sortedSlots(n int, less func(a, b int) bool) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	sort.Slice(s, func(a, b int) bool { return less(s[a], s[b]) })
	return s
}

// alignLists pairs the i-th source slot with the i-th target slot, padding
// the shorter side with null slots (ids ≥ its real count), and returns the
// source→target permutation over 0..padded-1.
func alignLists(src, tgt []int, padded int) []int {
	perm := make([]int, padded)
	for i := range perm {
		perm[i] = -1
	}
	usedTgt := make([]bool, padded)
	k := len(src)
	if len(tgt) < k {
		k = len(tgt)
	}
	for i := 0; i < k; i++ {
		perm[src[i]] = tgt[i]
		usedTgt[tgt[i]] = true
	}
	// Remaining source slots (real overhang + nulls) take the unused target
	// slots in order.
	next := 0
	for i := 0; i < padded; i++ {
		if perm[i] != -1 {
			continue
		}
		for usedTgt[next] {
			next++
		}
		perm[i] = next
		usedTgt[next] = true
	}
	return perm
}
