package core

import (
	"context"
	"math/rand"
	"testing"

	"hged/internal/hypergraph"
)

// denseGraph builds a deterministic random hypergraph big enough that an
// unassisted solver run needs far more than cancelCheckEvery expansions.
func denseGraph(n, m int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	g := hypergraph.New(0)
	for i := 0; i < n; i++ {
		g.AddNode(hypergraph.Label(1 + rng.Intn(3)))
	}
	for e := 0; e < m; e++ {
		perm := rng.Perm(n)
		k := 2 + rng.Intn(3)
		nodes := make([]hypergraph.NodeID, 0, k)
		for _, v := range perm[:k] {
			nodes = append(nodes, hypergraph.NodeID(v))
		}
		g.AddEdge(hypergraph.Label(1+rng.Intn(3)), nodes...)
	}
	return g
}

// A cancelled context must stop every solver within one polling stride of
// the check, reported as Cancelled with Exact=false — not run the search to
// its (astronomically larger) completion or its 4M-expansion budget.
func TestSolversHonorCancelledContext(t *testing.T) {
	g := denseGraph(12, 8, 1)
	h := denseGraph(12, 8, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Pruning off so an uncancelled run could not terminate quickly.
	opts := Options{Context: ctx, DisableLowerBound: true, DisableUpperBound: true}
	for _, tc := range []struct {
		name string
		run  func() Result
	}{
		{"BFS", func() Result { return BFS(g, h, opts) }},
		{"DFS", func() Result { return DFS(g, h, opts) }},
		{"DFSHungarian", func() Result { return DFSHungarian(g, h, opts) }},
		{"HEU", func() Result { return HEU(g, h, opts) }},
	} {
		res := tc.run()
		if !res.Cancelled {
			t.Errorf("%s: Cancelled = false after pre-cancelled context", tc.name)
		}
		if res.Exact {
			t.Errorf("%s: Exact = true for a cancelled run", tc.name)
		}
		if res.Expanded > 4*cancelCheckEvery {
			t.Errorf("%s: expanded %d states after cancellation, want prompt stop", tc.name, res.Expanded)
		}
	}
}

// A live (never cancelled) context must not change results: same distance
// as a nil context, Cancelled=false, Exact=true.
func TestLiveContextDoesNotPerturbSolvers(t *testing.T) {
	g := denseGraph(6, 4, 3)
	h := denseGraph(6, 4, 4)
	want := BFS(g, h, Options{})
	got := BFS(g, h, Options{Context: context.Background()})
	if got.Distance != want.Distance || got.Cancelled || !got.Exact {
		t.Fatalf("live context changed the result: got %+v, want distance %d", got, want.Distance)
	}
}
