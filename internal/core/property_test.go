package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hged/internal/hypergraph"
)

// quickGraphs derives a pair of small random hypergraphs from a seed.
func quickGraphs(seed int64) (*hypergraph.Hypergraph, *hypergraph.Hypergraph) {
	rng := rand.New(rand.NewSource(seed))
	return randomHypergraph(rng, 4, 3, 3), randomHypergraph(rng, 4, 3, 3)
}

func TestQuickSolverAgreement(t *testing.T) {
	f := func(seed int64) bool {
		a, b := quickGraphs(seed)
		bfs := BFS(a, b, Options{}).Distance
		return bfs == DFS(a, b, Options{}).Distance &&
			bfs == DFSHungarian(a, b, Options{}).Distance &&
			HEU(a, b, Options{}).Distance >= bfs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistanceZeroIffIsomorphic(t *testing.T) {
	f := func(seed int64) bool {
		a, b := quickGraphs(seed)
		return (Distance(a, b) == 0) == hypergraph.Isomorphic(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathRealizesDistance(t *testing.T) {
	f := func(seed int64) bool {
		a, b := quickGraphs(seed)
		res := BFS(a, b, Options{})
		if res.Path == nil || res.Path.Cost() != res.Distance {
			return false
		}
		got, err := res.Path.Apply(a)
		if err != nil {
			return false
		}
		return hypergraph.Isomorphic(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundsBracket(t *testing.T) {
	f := func(seed int64) bool {
		a, b := quickGraphs(seed)
		d := Distance(a, b)
		if LowerBound(a, b) > d || AssignmentLowerBound(a, b) > d {
			return false
		}
		p := newPair(a, b)
		ub, _ := p.upperBound(2, seed|1)
		return ub >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickThresholdConsistency(t *testing.T) {
	// For every τ: the threshold verdict must agree with the unbounded
	// distance.
	f := func(seed int64, tauRaw uint8) bool {
		a, b := quickGraphs(seed)
		d := Distance(a, b)
		tau := int(tauRaw % 12)
		got, ok := DistanceWithin(a, b, tau)
		if d <= tau {
			return ok && got == d
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEDCVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		a, b := quickGraphs(seed)
		rng := rand.New(rand.NewSource(seed ^ 0xabc))
		nodeMap := rng.Perm(maxInt(a.NumNodes(), b.NumNodes()))
		perm := EDCPermutation(a, b, nodeMap)
		return perm == EDCAssignment(a, b, nodeMap) &&
			EDCInaccurate(a, b, nodeMap) >= perm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
