package core

import (
	"fmt"
	"strings"

	"hged/internal/hypergraph"
)

// Namer translates node and hyperedge slots, and labels, into human-readable
// names for explanations. Any field may be nil to fall back to numeric
// rendering.
type Namer struct {
	Node  func(slot int) string
	Edge  func(slot int) string
	Label func(l hypergraph.Label) string
}

func (n *Namer) node(slot int) string {
	if n != nil && n.Node != nil {
		return n.Node(slot)
	}
	return fmt.Sprintf("node#%d", slot)
}

func (n *Namer) edge(slot int) string {
	if n != nil && n.Edge != nil {
		return n.Edge(slot)
	}
	return fmt.Sprintf("hyperedge#%d", slot)
}

func (n *Namer) label(l hypergraph.Label) string {
	if n != nil && n.Label != nil {
		return n.Label(l)
	}
	return fmt.Sprintf("label %d", l)
}

// Explain renders an edit path as human-readable sentences in the style of
// Section IV-D ("one group changes their interests from orange to grey; the
// remaining people interested in the old topic disappear; ...").
func Explain(p *Path, namer *Namer) []string {
	if p == nil {
		return nil
	}
	lines := make([]string, 0, len(p.Ops))
	for _, op := range p.Ops {
		switch op.Kind {
		case OpNodeInsert:
			lines = append(lines, fmt.Sprintf("a new member %s with %s joins the network",
				namer.node(op.Node), namer.label(op.Label)))
		case OpNodeDelete:
			lines = append(lines, fmt.Sprintf("%s leaves the network", namer.node(op.Node)))
		case OpNodeRelabel:
			lines = append(lines, fmt.Sprintf("%s changes to %s", namer.node(op.Node), namer.label(op.Label)))
		case OpEdgeInsert:
			lines = append(lines, fmt.Sprintf("a new group %s about %s forms",
				namer.edge(op.Edge), namer.label(op.Label)))
		case OpEdgeDelete:
			lines = append(lines, fmt.Sprintf("group %s dissolves", namer.edge(op.Edge)))
		case OpEdgeRelabel:
			lines = append(lines, fmt.Sprintf("group %s changes its interest to %s",
				namer.edge(op.Edge), namer.label(op.Label)))
		case OpEdgeReduce:
			lines = append(lines, fmt.Sprintf("%s leaves group %s", namer.node(op.Node), namer.edge(op.Edge)))
		case OpEdgeExtend:
			lines = append(lines, fmt.Sprintf("%s joins group %s", namer.node(op.Node), namer.edge(op.Edge)))
		}
	}
	return lines
}

// ExplainString joins Explain's sentences into one numbered, newline-
// separated narrative.
func ExplainString(p *Path, namer *Namer) string {
	lines := Explain(p, namer)
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "(%d) %s\n", i+1, l)
	}
	return b.String()
}
