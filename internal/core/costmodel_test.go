package core

import (
	"math/rand"
	"testing"

	"hged/internal/hypergraph"
)

func TestCostModelValidate(t *testing.T) {
	if err := UnitCosts().Validate(); err != nil {
		t.Fatalf("unit model invalid: %v", err)
	}
	bad := []CostModel{
		{},
		{Node: 1, Edge: 1, Incidence: 1, NodeRelabel: 0, EdgeRelabel: 1},
		{Node: 1, Edge: 1, Incidence: 1, NodeRelabel: 3, EdgeRelabel: 1}, // relabel > 2·node
		{Node: 1, Edge: 1, Incidence: 1, NodeRelabel: 1, EdgeRelabel: 5},
		{Node: -1, Edge: 1, Incidence: 1, NodeRelabel: 1, EdgeRelabel: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("model %d should be invalid: %+v", i, m)
		}
	}
}

func TestInvalidCostModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid cost model")
		}
	}()
	bad := CostModel{Node: 1}
	BFS(hypergraph.New(1), hypergraph.New(1), Options{Costs: &bad})
}

func TestUnitCostModelMatchesDefault(t *testing.T) {
	g, h := egoPair()
	unit := UnitCosts()
	d1 := BFS(g, h, Options{}).Distance
	d2 := BFS(g, h, Options{Costs: &unit}).Distance
	if d1 != d2 || d1 != 6 {
		t.Fatalf("unit model diverges: %d vs %d", d1, d2)
	}
}

func TestWeightedDistanceScales(t *testing.T) {
	// Scaling every weight by k scales every mapping's cost, hence the
	// optimum, by k.
	g, h := egoPair()
	scaled := CostModel{Node: 3, Edge: 3, Incidence: 3, NodeRelabel: 3, EdgeRelabel: 3}
	if d := BFS(g, h, Options{Costs: &scaled}).Distance; d != 18 {
		t.Fatalf("3×-scaled distance = %d, want 18", d)
	}
}

func TestWeightedDistanceHandComputed(t *testing.T) {
	// One node relabel vs one node: {1} → {2}.
	a := hypergraph.NewLabeled([]hypergraph.Label{1})
	b := hypergraph.NewLabeled([]hypergraph.Label{2})
	m := CostModel{Node: 5, Edge: 1, Incidence: 1, NodeRelabel: 2, EdgeRelabel: 1}
	if d := BFS(a, b, Options{Costs: &m}).Distance; d != 2 {
		t.Fatalf("relabel-weighted distance = %d, want 2", d)
	}
	// When relabeling is pricier than delete+insert is disallowed; at the
	// boundary (relabel = 2·node) both cost the same.
	m2 := CostModel{Node: 1, Edge: 1, Incidence: 1, NodeRelabel: 2, EdgeRelabel: 1}
	if d := BFS(a, b, Options{Costs: &m2}).Distance; d != 2 {
		t.Fatalf("boundary distance = %d, want 2", d)
	}
}

func TestWeightedIncidence(t *testing.T) {
	// Extending a hyperedge by one node: incidence weight alone.
	a := hypergraph.New(3)
	a.AddEdge(1, 0, 1)
	b := hypergraph.New(3)
	b.AddEdge(1, 0, 1, 2)
	m := CostModel{Node: 1, Edge: 1, Incidence: 7, NodeRelabel: 1, EdgeRelabel: 1}
	if d := BFS(a, b, Options{Costs: &m}).Distance; d != 7 {
		t.Fatalf("incidence-weighted distance = %d, want 7", d)
	}
	// Deleting a whole hyperedge of cardinality 2: edge + 2×incidence.
	c := hypergraph.New(3)
	if d := BFS(a, c, Options{Costs: &m}).Distance; d != 1+2*7 {
		t.Fatalf("edge-deletion distance = %d, want 15", d)
	}
}

func TestWeightedSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	models := []CostModel{
		{Node: 2, Edge: 3, Incidence: 1, NodeRelabel: 2, EdgeRelabel: 4},
		{Node: 5, Edge: 1, Incidence: 2, NodeRelabel: 1, EdgeRelabel: 1},
		{Node: 1, Edge: 1, Incidence: 3, NodeRelabel: 2, EdgeRelabel: 2},
	}
	for trial := 0; trial < 30; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		m := models[trial%len(models)]
		opts := Options{Costs: &m}
		bfs := BFS(a, b, opts)
		dfs := DFS(a, b, opts)
		dfsH := DFSHungarian(a, b, opts)
		if bfs.Distance != dfs.Distance || dfs.Distance != dfsH.Distance {
			t.Fatalf("trial %d (%+v): BFS=%d DFS=%d DFS-H=%d\na=%v\nb=%v",
				trial, m, bfs.Distance, dfs.Distance, dfsH.Distance, a, b)
		}
		if heu := HEU(a, b, opts).Distance; heu < bfs.Distance {
			t.Fatalf("trial %d: HEU %d below exact %d", trial, heu, bfs.Distance)
		}
		// The path's weighted cost realizes the distance and still reaches
		// the target.
		if bfs.Path.WeightedCost(m) != bfs.Distance {
			t.Fatalf("trial %d: path weighted cost %d != distance %d",
				trial, bfs.Path.WeightedCost(m), bfs.Distance)
		}
		got, err := bfs.Path.Apply(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !hypergraph.Isomorphic(got, b) {
			t.Fatalf("trial %d: weighted path does not reach target", trial)
		}
	}
}

func TestWeightedSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := CostModel{Node: 2, Edge: 3, Incidence: 1, NodeRelabel: 2, EdgeRelabel: 4}
	for trial := 0; trial < 20; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		d1 := BFS(a, b, Options{Costs: &m}).Distance
		d2 := BFS(b, a, Options{Costs: &m}).Distance
		if d1 != d2 {
			t.Fatalf("trial %d: weighted HGED asymmetric: %d vs %d", trial, d1, d2)
		}
	}
}

func TestWeightedThreshold(t *testing.T) {
	g, h := egoPair()
	scaled := CostModel{Node: 2, Edge: 2, Incidence: 2, NodeRelabel: 2, EdgeRelabel: 2}
	res := BFS(g, h, Options{Costs: &scaled, Threshold: 11})
	if !res.Exceeded {
		t.Fatal("distance 12 must exceed τ=11")
	}
	res = BFS(g, h, Options{Costs: &scaled, Threshold: 12})
	if res.Exceeded || res.Distance != 12 {
		t.Fatalf("τ=12: %+v", res)
	}
}

func TestWeightedLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	models := []CostModel{
		UnitCosts(),
		{Node: 2, Edge: 3, Incidence: 1, NodeRelabel: 2, EdgeRelabel: 4},
		{Node: 5, Edge: 1, Incidence: 2, NodeRelabel: 1, EdgeRelabel: 1},
		{Node: 3, Edge: 2, Incidence: 4, NodeRelabel: 6, EdgeRelabel: 3},
	}
	for trial := 0; trial < 40; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		m := models[trial%len(models)]
		d := BFS(a, b, Options{Costs: &m}).Distance
		lb := lowerBoundDataModel(compile(a), compile(b), m)
		if lb > d {
			t.Fatalf("trial %d (%+v): weighted lower bound %d > distance %d\na=%v\nb=%v",
				trial, m, lb, d, a, b)
		}
	}
}

func TestPathWeightedCostKinds(t *testing.T) {
	p := &Path{Ops: []Op{
		{Kind: OpNodeInsert}, {Kind: OpNodeDelete},
		{Kind: OpEdgeInsert}, {Kind: OpEdgeDelete},
		{Kind: OpEdgeExtend}, {Kind: OpEdgeReduce},
		{Kind: OpNodeRelabel}, {Kind: OpEdgeRelabel},
	}}
	m := CostModel{Node: 1, Edge: 10, Incidence: 100, NodeRelabel: 1000, EdgeRelabel: 10000}
	if got := p.WeightedCost(m); got != 2*1+2*10+2*100+1000+10000 {
		t.Fatalf("weighted cost = %d", got)
	}
}
