package core

import "context"

// Options configures the HGED solvers. The zero value means: no threshold,
// default expansion budget, all pruning strategies enabled, seed 1.
type Options struct {
	// Context, when non-nil, makes the solver cancellable: it is polled
	// every cancelCheckEvery expansions alongside the MaxExpansions
	// accounting, and once cancelled the solver stops like a budget
	// exhaustion — best known upper bound, Exact=false — with
	// Cancelled=true. Nil means never cancelled.
	Context context.Context
	// Threshold is the verification threshold τ. When > 0, the solver may
	// stop as soon as it can prove HGED > τ, returning Exceeded=true; the
	// paper's Strategy 2 notes this "largely reduces running time" and the
	// HEP framework relies on it. Values ≤ 0 mean unbounded search.
	Threshold int
	// MaxExpansions caps the number of search states expanded. 0 means the
	// default (4,000,000). When the cap is hit the solver returns its best
	// known upper bound with Exact=false.
	MaxExpansions int64
	// DisableRerank turns off Strategy 1 (degree/label/cardinality
	// re-ranking of the matching order). Ablation hook.
	DisableRerank bool
	// DisableUpperBound turns off Strategy 2 (sampled initial upper
	// bound). Ablation hook.
	DisableUpperBound bool
	// DisableLowerBound turns off Strategy 3 (label-based + hyperedge-based
	// suffix lower bounds). Ablation hook.
	DisableLowerBound bool
	// UpperBoundSamples is the number of random mappings sampled for
	// Strategy 2 in addition to the greedy one. 0 means the default (3).
	UpperBoundSamples int
	// Seed drives the deterministic sampling of Strategy 2. 0 means 1.
	Seed int64
	// UseHungarianEDC makes HGED-DFS compute the per-node-mapping edit cost
	// with the O(m³) assignment solver instead of enumerating hyperedge
	// permutations (Algorithm 2). Both are exact; this is the E10 ablation.
	UseHungarianEDC bool
	// Costs selects the edit-operation cost model. Nil means the paper's
	// unit costs. Invalid models (see CostModel.Validate) panic, as they
	// are programmer errors.
	Costs *CostModel
}

func (o Options) costModel() CostModel {
	if o.Costs == nil {
		return UnitCosts()
	}
	if err := o.Costs.Validate(); err != nil {
		panic(err)
	}
	return *o.Costs
}

const defaultMaxExpansions = 4_000_000

func (o Options) maxExpansions() int64 {
	if o.MaxExpansions <= 0 {
		return defaultMaxExpansions
	}
	return o.MaxExpansions
}

func (o Options) samples() int {
	if o.UpperBoundSamples <= 0 {
		return 3
	}
	return o.UpperBoundSamples
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) unbounded() bool { return o.Threshold <= 0 }

// cancelCheckEvery is the cancellation polling stride: Options.Context is
// consulted once per this many expansions, keeping the check off the hot
// path while bounding cancellation latency to a few thousand state visits.
const cancelCheckEvery = 1024

// ctxCancelled reports whether the configured context has been cancelled.
func (o Options) ctxCancelled() bool { return o.Context != nil && o.Context.Err() != nil }

// cancelled is the periodic poll: true when a context is set, the expansion
// counter is on the polling stride, and the context has been cancelled.
func (o Options) cancelled(expanded int64) bool {
	return o.Context != nil && expanded%cancelCheckEvery == 0 && o.Context.Err() != nil
}

// Result reports the outcome of an HGED computation.
type Result struct {
	// Distance is the computed edit distance. When Exceeded is true it is
	// instead a proven lower bound (> τ). When Exact is false it is the
	// best upper bound found before the expansion budget ran out.
	Distance int
	// Path is the edit path realizing Distance, when one was requested and
	// a complete mapping was found (nil when Exceeded).
	Path *Path
	// Exceeded reports that a threshold was set and HGED is provably
	// greater than it.
	Exceeded bool
	// Exact is true when the solver proved optimality (or exceedance);
	// false when the expansion budget was exhausted first.
	Exact bool
	// Cancelled reports that Options.Context was cancelled before the
	// solver finished; the result is then a best-effort upper bound, as
	// after a budget exhaustion (Exact=false).
	Cancelled bool
	// Expanded counts search states expanded (search effort).
	Expanded int64
}
