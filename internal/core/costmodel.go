package core

import "fmt"

// CostModel assigns non-negative weights to the atomic edit operations of
// Definition 3. The paper uses unit costs throughout; weighted costs are a
// natural extension (e.g. making hyperedge membership changes cheaper than
// node turnover when modeling collaboration networks). Insert and delete
// share a weight per entity kind, which keeps HGED symmetric.
type CostModel struct {
	// Node is the cost of inserting or deleting a node.
	Node int
	// Edge is the cost of inserting or deleting a (cardinality-0)
	// hyperedge.
	Edge int
	// Incidence is the cost of extending or reducing a hyperedge by one
	// node.
	Incidence int
	// NodeRelabel and EdgeRelabel are the relabeling costs.
	NodeRelabel, EdgeRelabel int
}

// UnitCosts is the paper's model: every atomic operation costs 1.
func UnitCosts() CostModel {
	return CostModel{Node: 1, Edge: 1, Incidence: 1, NodeRelabel: 1, EdgeRelabel: 1}
}

// Validate checks the model: weights must be positive, and relabeling must
// not cost more than delete-plus-insert (otherwise an optimal edit sequence
// would simulate relabels and the mapping-based distance this library
// computes would diverge from the sequence-based Definition 3).
func (m CostModel) Validate() error {
	if m.Node <= 0 || m.Edge <= 0 || m.Incidence <= 0 || m.NodeRelabel <= 0 || m.EdgeRelabel <= 0 {
		return fmt.Errorf("core: cost model weights must be positive: %+v", m)
	}
	if m.NodeRelabel > 2*m.Node {
		return fmt.Errorf("core: NodeRelabel (%d) exceeds delete+insert (%d)", m.NodeRelabel, 2*m.Node)
	}
	if m.EdgeRelabel > 2*m.Edge {
		return fmt.Errorf("core: EdgeRelabel (%d) exceeds delete+insert (%d)", m.EdgeRelabel, 2*m.Edge)
	}
	return nil
}

// isUnit reports whether the model is the unit model.
func (m CostModel) isUnit() bool { return m == UnitCosts() }

// minNodeMismatch is the cheapest way to account for one node counted by
// the label bound Ψ beyond the size difference: relabel it, or delete one
// side's and insert the other's — whichever is cheaper per entity.
func (m CostModel) minNodeMismatch() int {
	if m.NodeRelabel < m.Node {
		return m.NodeRelabel
	}
	return m.Node
}

func (m CostModel) minEdgeMismatch() int {
	if m.EdgeRelabel < m.Edge {
		return m.EdgeRelabel
	}
	return m.Edge
}
