package core

import (
	"sync"
	"testing"

	"hged/internal/hypergraph"
)

// TestSolverBFSAllocBound guards the slab/arena tentpole: a warm Solver
// re-solving a small pair must stay within a fixed allocation budget. The
// measured cost is ~42 allocs/solve (Strategy-2 mapping construction, path
// extraction, and the rerank sort closures — none of it per-state); the
// bound leaves headroom without letting per-push state allocations (which
// alone would add hundreds) sneak back in.
func TestSolverBFSAllocBound(t *testing.T) {
	g, h := egoPair()
	sv := NewSolver()
	want := sv.BFS(g, h, Options{})
	allocs := testing.AllocsPerRun(20, func() {
		if res := sv.BFS(g, h, Options{}); res.Distance != want.Distance {
			t.Errorf("distance drifted: %d vs %d", res.Distance, want.Distance)
		}
	})
	if allocs > 60 {
		t.Fatalf("warm Solver.BFS allocated %.1f per solve, budget 60", allocs)
	}
}

// TestEDCInaccurateAllocFree guards the memoized target-edge index and the
// EDC scratch: after one evaluation, further evaluations on the same pair
// must not allocate at all (HGED-HEU calls this once per complete node
// mapping visited).
func TestEDCInaccurateAllocFree(t *testing.T) {
	g, h := egoPair()
	p := newPair(g, h)
	nodeMap := make([]int, p.paddedN)
	for i := range nodeMap {
		nodeMap[i] = i
	}
	want := p.edcInaccurate(nodeMap)
	allocs := testing.AllocsPerRun(20, func() {
		if got := p.edcInaccurate(nodeMap); got != want {
			t.Errorf("EDC value drifted: %d vs %d", got, want)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm edcInaccurate allocated %.1f per call, want 0", allocs)
	}
}

// TestEgoCacheHitAllocFree guards the memoized ego cache: a repeated
// Ego(v) on an unmodified hypergraph is a pure cache hit.
func TestEgoCacheHitAllocFree(t *testing.T) {
	g, _ := egoPair()
	host := hypergraph.NewLabeled([]hypergraph.Label{2, 2, 2, 3, 3, 1, 2, 3})
	host.AddEdge(1, 0, 1, 2)
	host.AddEdge(1, 2, 3, 4)
	host.AddEdge(2, 4, 5, 6)
	host.AddEdge(1, 5, 6, 7)
	want := host.Ego(3)
	allocs := testing.AllocsPerRun(20, func() {
		if host.Ego(3) != want {
			t.Error("cached Ego returned a different instance")
		}
	})
	if allocs > 0 {
		t.Fatalf("cached Ego hit allocated %.1f per call, want 0", allocs)
	}
	_ = g
}

// TestPooledBFSConcurrentDeterminism hammers the pooled package-level BFS
// from many goroutines on a mix of pairs and checks every result — distance
// and edit path — equals the sequential answer. Run under -race this also
// proves pooled solvers never share state across concurrent callers.
func TestPooledBFSConcurrentDeterminism(t *testing.T) {
	g, h := egoPair()
	seqGH := BFS(g, h, Options{})
	seqHG := BFS(h, g, Options{})

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var res, want Result
				if (w+i)%2 == 0 {
					res, want = BFS(g, h, Options{}), seqGH
				} else {
					res, want = BFS(h, g, Options{}), seqHG
				}
				if res.Distance != want.Distance {
					t.Errorf("concurrent distance %d, sequential %d", res.Distance, want.Distance)
					return
				}
				if len(res.Path.Ops) != len(want.Path.Ops) {
					t.Errorf("concurrent path has %d ops, sequential %d", len(res.Path.Ops), len(want.Path.Ops))
					return
				}
				for k := range res.Path.Ops {
					if res.Path.Ops[k] != want.Path.Ops[k] {
						t.Errorf("op %d differs: %+v vs %+v", k, res.Path.Ops[k], want.Path.Ops[k])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	hits, misses := SolverPoolStats()
	if hits+misses <= 0 {
		t.Fatal("solver pool counters never moved")
	}
}
