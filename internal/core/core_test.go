package core

import (
	"math/rand"
	"testing"

	"hged/internal/hypergraph"
)

// egoPair returns the paper's running pair: (EGO(u4), EGO(u5)) from Fig. 1,
// whose HGED is 6 (Examples 2 and 7).
func egoPair() (*hypergraph.Hypergraph, *hypergraph.Hypergraph) {
	h := hypergraph.Fig1()
	return h.Ego(hypergraph.U(4)), h.Ego(hypergraph.U(5))
}

// randomHypergraph builds a small random labeled hypergraph for property
// tests.
func randomHypergraph(rng *rand.Rand, maxN, maxM, labels int) *hypergraph.Hypergraph {
	n := rng.Intn(maxN + 1)
	g := hypergraph.New(0)
	for i := 0; i < n; i++ {
		g.AddNode(hypergraph.Label(1 + rng.Intn(labels)))
	}
	m := rng.Intn(maxM + 1)
	for e := 0; e < m; e++ {
		var nodes []hypergraph.NodeID
		if n > 0 {
			k := rng.Intn(n + 1)
			perm := rng.Perm(n)
			for _, v := range perm[:k] {
				nodes = append(nodes, hypergraph.NodeID(v))
			}
		}
		g.AddEdge(hypergraph.Label(1+rng.Intn(labels)), nodes...)
	}
	return g
}

func TestPaperExampleDistanceIsSix(t *testing.T) {
	g, h := egoPair()
	if d := BFS(g, h, Options{}).Distance; d != 6 {
		t.Fatalf("BFS HGED(EGO(u4), EGO(u5)) = %d, want 6", d)
	}
	if d := DFS(g, h, Options{}).Distance; d != 6 {
		t.Fatalf("DFS HGED = %d, want 6", d)
	}
	if d := DFSHungarian(g, h, Options{}).Distance; d != 6 {
		t.Fatalf("DFS-Hungarian HGED = %d, want 6", d)
	}
	if d := HEU(g, h, Options{}).Distance; d < 6 {
		t.Fatalf("HEU instance = %d, must be ≥ exact 6", d)
	}
}

func TestPaperExampleSymmetric(t *testing.T) {
	g, h := egoPair()
	if d := BFS(h, g, Options{}).Distance; d != 6 {
		t.Fatalf("HGED(EGO(u5), EGO(u4)) = %d, want 6 (symmetry)", d)
	}
}

func TestPaperExampleLowerBoundTight(t *testing.T) {
	// Example 7 observes that for this pair the Strategy-3 bound is tight:
	// node Ψ = 1, edge Ψ = 2, cardinality bound = 3 → 6.
	g, h := egoPair()
	if lb := LowerBound(g, h); lb != 6 {
		t.Fatalf("lower bound = %d, want 6", lb)
	}
	if lb := AssignmentLowerBound(g, h); lb < 6 || lb > 6 {
		t.Fatalf("assignment lower bound = %d, want 6", lb)
	}
}

func TestPaperExamplePathAppliesToIsomorphic(t *testing.T) {
	g, h := egoPair()
	d, path := DistanceWithPath(g, h)
	if d != 6 {
		t.Fatalf("distance = %d, want 6", d)
	}
	if path.Cost() != 6 {
		t.Fatalf("path cost = %d, want 6", path.Cost())
	}
	edited, err := path.Apply(g)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !hypergraph.Isomorphic(edited, h) {
		t.Fatalf("applying the edit path must yield a graph isomorphic to the target:\n got %v\nwant %v", edited, h)
	}
}

func TestDistanceZeroIffIsomorphic(t *testing.T) {
	g := hypergraph.Fig1()
	if d := Distance(g, g.Clone()); d != 0 {
		t.Fatalf("HGED(g, g) = %d, want 0", d)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		a := randomHypergraph(rng, 5, 3, 3)
		b := randomHypergraph(rng, 5, 3, 3)
		d := Distance(a, b)
		iso := hypergraph.Isomorphic(a, b)
		if (d == 0) != iso {
			t.Fatalf("trial %d: distance %d but isomorphic=%v\na=%v\nb=%v", trial, d, iso, a, b)
		}
	}
}

func TestSolversAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		bfs := BFS(a, b, Options{}).Distance
		dfs := DFS(a, b, Options{}).Distance
		dfsH := DFSHungarian(a, b, Options{}).Distance
		if bfs != dfs || dfs != dfsH {
			t.Fatalf("trial %d: BFS=%d DFS=%d DFS-H=%d\na=%v\nb=%v", trial, bfs, dfs, dfsH, a, b)
		}
		heu := HEU(a, b, Options{}).Distance
		if heu < bfs {
			t.Fatalf("trial %d: HEU=%d below exact %d", trial, heu, bfs)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		if d1, d2 := Distance(a, b), Distance(b, a); d1 != d2 {
			t.Fatalf("trial %d: HGED(a,b)=%d != HGED(b,a)=%d\na=%v\nb=%v", trial, d1, d2, a, b)
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		a := randomHypergraph(rng, 4, 2, 2)
		b := randomHypergraph(rng, 4, 2, 2)
		c := randomHypergraph(rng, 4, 2, 2)
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		if ac > ab+bc {
			t.Fatalf("trial %d: triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d\na=%v\nb=%v\nc=%v",
				trial, ac, ab, bc, a, b, c)
		}
	}
}

func TestLowerAndUpperBoundsBracketDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		a := randomHypergraph(rng, 5, 3, 3)
		b := randomHypergraph(rng, 5, 3, 3)
		d := Distance(a, b)
		if lb := LowerBound(a, b); lb > d {
			t.Fatalf("trial %d: lower bound %d > distance %d\na=%v\nb=%v", trial, lb, d, a, b)
		}
		if lb := AssignmentLowerBound(a, b); lb > d {
			t.Fatalf("trial %d: assignment lower bound %d > distance %d\na=%v\nb=%v", trial, lb, d, a, b)
		}
		p := newPair(a, b)
		ub, mp := p.upperBound(3, 1)
		if ub < d {
			t.Fatalf("trial %d: upper bound %d < distance %d", trial, ub, d)
		}
		if err := mp.Validate(); err != nil {
			t.Fatalf("trial %d: upper-bound mapping invalid: %v", trial, err)
		}
	}
}

func TestAssignmentLowerBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		a := randomHypergraph(rng, 5, 4, 3)
		b := randomHypergraph(rng, 5, 4, 3)
		if AssignmentLowerBound(a, b) < LowerBound(a, b) {
			t.Fatalf("trial %d: assignment bound below Ψ+cardinality bound\na=%v\nb=%v", trial, a, b)
		}
	}
}

func TestEDCPermutationEqualsAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 80; trial++ {
		a := randomHypergraph(rng, 5, 4, 3)
		b := randomHypergraph(rng, 5, 4, 3)
		N := maxInt(a.NumNodes(), b.NumNodes())
		nodeMap := rng.Perm(N)
		perm := EDCPermutation(a, b, nodeMap)
		hung := EDCAssignment(a, b, nodeMap)
		if perm != hung {
			t.Fatalf("trial %d: EDC permutation %d != assignment %d", trial, perm, hung)
		}
		inac := EDCInaccurate(a, b, nodeMap)
		if inac < perm {
			t.Fatalf("trial %d: EDC-INAC %d below exact %d (must be an upper bound)", trial, inac, perm)
		}
	}
}

func TestEDCExactNeverBelowDistance(t *testing.T) {
	// EDC for *any* node mapping is ≥ HGED; for the optimal one it equals.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		a := randomHypergraph(rng, 4, 3, 2)
		b := randomHypergraph(rng, 4, 3, 2)
		d := Distance(a, b)
		N := maxInt(a.NumNodes(), b.NumNodes())
		edc := EDCAssignment(a, b, rng.Perm(N))
		if edc < d {
			t.Fatalf("trial %d: EDC %d < HGED %d", trial, edc, d)
		}
	}
}

func TestDistanceWithin(t *testing.T) {
	g, h := egoPair()
	if d, ok := DistanceWithin(g, h, 6); !ok || d != 6 {
		t.Fatalf("within 6: d=%d ok=%v, want 6,true", d, ok)
	}
	if d, ok := DistanceWithin(g, h, 10); !ok || d != 6 {
		t.Fatalf("within 10: d=%d ok=%v, want 6,true", d, ok)
	}
	if _, ok := DistanceWithin(g, h, 5); ok {
		t.Fatal("within 5 should fail: distance is 6")
	}
	if _, ok := DistanceWithin(g, h, 0); ok {
		t.Fatal("within 0 should fail: graphs not isomorphic")
	}
	if d, ok := DistanceWithin(g, g.Clone(), 0); !ok || d != 0 {
		t.Fatalf("within 0 on isomorphic copies: d=%d ok=%v", d, ok)
	}
	if _, ok := DistanceWithin(g, h, -1); ok {
		t.Fatal("negative threshold must fail")
	}
}

func TestThresholdExceededReportsLowerBound(t *testing.T) {
	g, h := egoPair()
	res := BFS(g, h, Options{Threshold: 3})
	if !res.Exceeded {
		t.Fatal("expected exceedance at τ=3 for distance 6")
	}
	if res.Distance != 4 {
		t.Fatalf("reported bound = %d, want τ+1 = 4", res.Distance)
	}
	if !res.Exact {
		t.Fatal("exceedance should be proven exactly")
	}
	if res.Path != nil {
		t.Fatal("no path should accompany an exceeded verdict")
	}
}

func TestThresholdWithinReturnsExact(t *testing.T) {
	g, h := egoPair()
	res := BFS(g, h, Options{Threshold: 7})
	if res.Exceeded || res.Distance != 6 {
		t.Fatalf("τ=7: distance=%d exceeded=%v", res.Distance, res.Exceeded)
	}
}

func TestAblationsPreserveExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	variants := []Options{
		{DisableRerank: true},
		{DisableUpperBound: true},
		{DisableLowerBound: true},
		{DisableRerank: true, DisableUpperBound: true, DisableLowerBound: true},
	}
	for trial := 0; trial < 25; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		want := BFS(a, b, Options{}).Distance
		for vi, v := range variants {
			if got := BFS(a, b, v).Distance; got != want {
				t.Fatalf("trial %d variant %d: %d != %d\na=%v\nb=%v", trial, vi, got, want, a, b)
			}
		}
	}
}

func TestStrategiesReduceSearchEffort(t *testing.T) {
	g, h := egoPair()
	full := BFS(g, h, Options{})
	noLB := BFS(g, h, Options{DisableLowerBound: true})
	if full.Expanded > noLB.Expanded {
		t.Fatalf("lower bounds should not increase expansions: with=%d without=%d",
			full.Expanded, noLB.Expanded)
	}
}

func TestExpansionBudgetFallsBackToUpperBound(t *testing.T) {
	g, h := egoPair()
	res := BFS(g, h, Options{MaxExpansions: 2})
	if res.Exact {
		t.Fatal("tiny budget must report Exact=false")
	}
	if res.Distance < 6 {
		t.Fatalf("capped result %d must still be an upper bound of 6", res.Distance)
	}
	if res.Path == nil {
		t.Fatal("capped result should still carry the fallback path")
	}
	if got, err := res.Path.Apply(g); err != nil {
		t.Fatalf("fallback path apply: %v", err)
	} else if !hypergraph.Isomorphic(got, h) {
		t.Fatal("fallback path must still reach the target")
	}
}

func TestPathsApplyOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		a := randomHypergraph(rng, 4, 3, 3)
		b := randomHypergraph(rng, 4, 3, 3)
		res := BFS(a, b, Options{})
		if res.Path == nil {
			t.Fatalf("trial %d: missing path", trial)
		}
		if res.Path.Cost() != res.Distance {
			t.Fatalf("trial %d: path cost %d != distance %d", trial, res.Path.Cost(), res.Distance)
		}
		got, err := res.Path.Apply(a)
		if err != nil {
			t.Fatalf("trial %d: apply: %v\na=%v\nb=%v\nops=%v", trial, err, a, b, res.Path.Ops)
		}
		if !hypergraph.Isomorphic(got, b) {
			t.Fatalf("trial %d: edit path does not reach target\na=%v\nb=%v\ngot=%v", trial, a, b, got)
		}
	}
}

func TestEmptyGraphs(t *testing.T) {
	e := hypergraph.New(0)
	if d := Distance(e, e); d != 0 {
		t.Fatalf("HGED(∅,∅) = %d", d)
	}
	g := hypergraph.New(2)
	g.AddEdge(5, 0, 1)
	// Deleting everything: 2 reductions + 1 edge delete + 2 node deletes.
	if d := Distance(g, e); d != 5 {
		t.Fatalf("HGED(g,∅) = %d, want 5", d)
	}
	if d := Distance(e, g); d != 5 {
		t.Fatalf("HGED(∅,g) = %d, want 5", d)
	}
}

func TestSingleRelabelCases(t *testing.T) {
	a := hypergraph.NewLabeled([]hypergraph.Label{1})
	b := hypergraph.NewLabeled([]hypergraph.Label{2})
	if d := Distance(a, b); d != 1 {
		t.Fatalf("node relabel distance = %d, want 1", d)
	}
	a2 := hypergraph.New(2)
	a2.AddEdge(1, 0, 1)
	b2 := hypergraph.New(2)
	b2.AddEdge(2, 0, 1)
	if d := Distance(a2, b2); d != 1 {
		t.Fatalf("edge relabel distance = %d, want 1", d)
	}
}

func TestExtendReduceCases(t *testing.T) {
	a := hypergraph.New(3)
	a.AddEdge(1, 0, 1)
	b := hypergraph.New(3)
	b.AddEdge(1, 0, 1, 2)
	if d := Distance(a, b); d != 1 {
		t.Fatalf("extend-by-one distance = %d, want 1", d)
	}
	if d := Distance(b, a); d != 1 {
		t.Fatalf("reduce-by-one distance = %d, want 1", d)
	}
}

func TestNodeDistanceProblem1(t *testing.T) {
	g := hypergraph.Fig1()
	res := NodeDistance(g, hypergraph.U(4), hypergraph.U(5), Options{})
	if res.Distance != 6 {
		t.Fatalf("σ(u4,u5) = %d, want 6", res.Distance)
	}
	self := NodeDistance(g, hypergraph.U(4), hypergraph.U(4), Options{})
	if self.Distance != 0 {
		t.Fatalf("σ(u4,u4) = %d, want 0", self.Distance)
	}
}

func TestMappingValidate(t *testing.T) {
	mp := &Mapping{SrcN: 2, TgtN: 2, SrcM: 0, TgtM: 0, NodeMap: []int{0, 0}, EdgeMap: nil}
	if err := mp.Validate(); err == nil {
		t.Fatal("duplicate target must fail validation")
	}
	mp.NodeMap = []int{0, 5}
	if err := mp.Validate(); err == nil {
		t.Fatal("out-of-range target must fail validation")
	}
	mp.NodeMap = []int{1, 0}
	if err := mp.Validate(); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
}

func TestCostPublicAPI(t *testing.T) {
	g, h := egoPair()
	res := BFS(g, h, Options{})
	got, err := Cost(g, h, &res.Path.Mapping)
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	if got != res.Distance {
		t.Fatalf("Cost = %d, distance = %d", got, res.Distance)
	}
	// Wrong sizes rejected.
	if _, err := Cost(g, g, &res.Path.Mapping); err == nil {
		t.Fatal("size-mismatched mapping must be rejected")
	}
}
