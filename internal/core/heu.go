package core

import "hged/internal/hypergraph"

// HEU implements HGED-HEU (Algorithm 1): it enumerates node mappings by
// depth-first search and scores each with the inaccurate edit cost EDC-INAC,
// returning the minimum instance found. Per Observation 4.1 the result is an
// upper bound on HGED(g, h), not necessarily the exact distance.
//
// Pruning: branches whose accumulated node-mapping cost already meets the
// best instance (or exceeds the threshold) are abandoned; this never changes
// the returned minimum because EDC-INAC is monotone in its node part. The
// expansion budget bounds worst-case O(n!) behaviour; when it is hit the
// best instance so far is returned with Exact=false.
func HEU(g, h *hypergraph.Hypergraph, opts Options) Result {
	p := newPairModel(g, h, opts.costModel())
	N := p.paddedN

	best := 1 << 30
	var bestNodeMap []int
	budget := opts.maxExpansions()
	var expanded int64
	capped := false

	nodeMap := make([]int, N)
	usedTgt := make([]bool, N)

	var rec func(level, accNode int)
	rec = func(level, accNode int) {
		if capped {
			return
		}
		expanded++
		if expanded > budget || opts.cancelled(expanded) {
			capped = true
			return
		}
		if accNode >= best {
			return
		}
		if !opts.unbounded() && accNode > opts.Threshold {
			return
		}
		if level == N {
			total := p.edcInaccurate(nodeMap)
			if total < best {
				best = total
				bestNodeMap = append(bestNodeMap[:0], nodeMap...)
			}
			return
		}
		for j := 0; j < N; j++ {
			if usedTgt[j] {
				continue
			}
			usedTgt[j] = true
			nodeMap[level] = j
			rec(level+1, accNode+p.nodeCost(level, j))
			usedTgt[j] = false
		}
	}
	rec(0, 0)

	res := Result{Distance: best, Exact: !capped, Expanded: expanded, Cancelled: capped && opts.ctxCancelled()}
	if !opts.unbounded() && best > opts.Threshold {
		res.Exceeded = true
		if !capped {
			// Note: HEU is a heuristic; exceedance means the heuristic
			// instance exceeds τ, not a proof that HGED does.
			res.Distance = best
		}
	}
	if bestNodeMap != nil {
		// Provide a concrete path via the optimal hyperedge assignment for
		// the best node mapping found; its cost is ≤ the reported instance.
		mp := &Mapping{
			SrcN: p.src.n, TgtN: p.tgt.n,
			SrcM: p.src.m, TgtM: p.tgt.m,
			NodeMap: bestNodeMap,
			EdgeMap: p.edgeAssignment(bestNodeMap),
		}
		res.Path = p.extractPath(mp)
	}
	return res
}
