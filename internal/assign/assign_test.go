package assign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the optimal assignment cost by enumerating permutations.
func bruteForce(cost [][]int64) int64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	var best int64 = 1 << 60
	var rec func(i int, acc int64)
	rec = func(i int, acc int64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	if n == 0 {
		return 0
	}
	return best
}

func TestSolveEmpty(t *testing.T) {
	rc, total := Solve(nil)
	if rc != nil || total != 0 {
		t.Fatalf("empty: %v %d", rc, total)
	}
}

func TestSolveSingle(t *testing.T) {
	rc, total := Solve([][]int64{{7}})
	if len(rc) != 1 || rc[0] != 0 || total != 7 {
		t.Fatalf("single: %v %d", rc, total)
	}
}

func TestSolveKnown3x3(t *testing.T) {
	cost := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rc, total := Solve(cost)
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %d, want 5", total)
	}
	seen := make(map[int]bool)
	for _, c := range rc {
		if seen[c] {
			t.Fatal("assignment is not a permutation")
		}
		seen[c] = true
	}
}

func TestSolveIdentityOptimal(t *testing.T) {
	// Diagonal zeros, off-diagonal positive: identity is optimal.
	n := 6
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10
			}
		}
	}
	rc, total := Solve(cost)
	if total != 0 {
		t.Fatalf("total = %d, want 0", total)
	}
	for i, c := range rc {
		if c != i {
			t.Fatalf("rc[%d] = %d, want identity", i, c)
		}
	}
}

func TestSolveForbiddenCells(t *testing.T) {
	// Force the anti-diagonal using Inf elsewhere.
	cost := [][]int64{
		{Inf, Inf, 1},
		{Inf, 2, Inf},
		{3, Inf, Inf},
	}
	rc, total := Solve(cost)
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	want := []int{2, 1, 0}
	for i := range want {
		if rc[i] != want[i] {
			t.Fatalf("rc = %v, want %v", rc, want)
		}
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(20))
			}
		}
		_, got := Solve(cost)
		want := bruteForce(cost)
		if got != want {
			t.Fatalf("trial %d (n=%d): hungarian %d != brute force %d", trial, n, got, want)
		}
	}
}

func TestSolveAssignmentIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(50))
			}
		}
		rc, total := Solve(cost)
		seen := make([]bool, n)
		var sum int64
		for i, c := range rc {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
			sum += cost[i][c]
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNotSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged matrix")
		}
	}()
	Solve([][]int64{{1, 2}, {3}})
}

func TestSolveInt(t *testing.T) {
	rc, total := SolveInt([][]int{{0, 9}, {9, 0}})
	if total != 0 || rc[0] != 0 || rc[1] != 1 {
		t.Fatalf("SolveInt: %v %d", rc, total)
	}
}
