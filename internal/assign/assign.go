// Package assign implements the Hungarian algorithm (Kuhn–Munkres) for the
// minimum-cost assignment problem.
//
// Given a node mapping f between two hypergraphs, the optimal mapping of
// hyperedges is exactly an assignment problem: the cost of pairing hyperedge
// E with E' is its label mismatch plus |f(E) Δ E'|. Algorithm 2 of the paper
// enumerates all m! hyperedge permutations; this solver replaces that
// enumeration with an O(m³) exact computation, and also yields tight
// assignment-based lower bounds. Both are benchmarked against each other in
// the repository's ablation experiments.
package assign

import "math"

// Inf is a cost large enough to forbid an assignment without overflowing
// additions.
const Inf = math.MaxInt32

// Solve computes a minimum-cost perfect assignment for the square cost
// matrix, returning the column assigned to each row and the total cost.
// It panics if the matrix is not square. An empty matrix yields (nil, 0).
//
// The implementation is the shortest-augmenting-path formulation of the
// Hungarian algorithm with row/column potentials, O(n³) time.
func Solve(cost [][]int64) (rowToCol []int, total int64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	for _, row := range cost {
		if len(row) != n {
			panic("assign: cost matrix is not square")
		}
	}
	// Potentials and matching use 1-based internal indexing; index 0 is a
	// virtual root.
	const inf = int64(math.MaxInt64) / 4
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j (0 = free)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowToCol[i]]
	}
	return rowToCol, total
}

// SolveInt is Solve for int matrices, for callers working with small costs.
func SolveInt(cost [][]int) (rowToCol []int, total int) {
	n := len(cost)
	c := make([][]int64, n)
	for i, row := range cost {
		c[i] = make([]int64, len(row))
		for j, x := range row {
			c[i][j] = int64(x)
		}
	}
	rc, t := Solve(c)
	return rc, int(t)
}
