package predict

import (
	"testing"

	"hged/internal/hypergraph"
)

// twoComponents builds two structurally different components
// {0,1,2,3} and {4,5,6,7} so σ values are nontrivial.
func twoComponents() *hypergraph.Hypergraph {
	g := hypergraph.New(0)
	for i := 0; i < 8; i++ {
		g.AddNode(hypergraph.Label(1 + i%3))
	}
	g.AddEdge(10, 0, 1)
	g.AddEdge(11, 1, 2, 3)
	g.AddEdge(12, 4, 5)
	g.AddEdge(13, 5, 6, 7)
	return g
}

func TestRebaseCarriesValidEntries(t *testing.T) {
	v := hypergraph.NewVersioned(twoComponents())
	p, err := New(v.Current().Graph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	dFar, okFar := p.Sigma(4, 5, budget)
	dNear, _ := p.Sigma(0, 1, budget)
	if !okFar {
		t.Fatalf("σ(4,5) not within budget %d", budget)
	}
	base := p.Stats().PairsComputed

	b := v.Begin()
	b.AddEdge(14, 0, 2) // touches only component one
	gen, delta := b.Commit()
	np := p.Rebase(gen.Graph(), delta.Invalidates)

	// Untouched pair: carried entry answers without recomputation.
	d2, ok2 := np.Sigma(4, 5, budget)
	if !ok2 || d2 != dFar {
		t.Fatalf("σ(4,5) after rebase = (%d,%v), want (%d,true)", d2, ok2, dFar)
	}
	if got := np.Stats().PairsComputed; got != base {
		t.Fatalf("untouched pair recomputed: PairsComputed %d -> %d", base, got)
	}
	// Touched pair: entry dropped, σ recomputed on the new generation and
	// must agree with a cold predictor.
	d3, ok3 := np.Sigma(0, 1, budget)
	if got := np.Stats().PairsComputed; got != base+1 {
		t.Fatalf("touched pair not recomputed: PairsComputed %d, want %d", got, base+1)
	}
	cold, err := New(gen.Graph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wd, wok := cold.Sigma(0, 1, budget)
	if d3 != wd || ok3 != wok {
		t.Fatalf("σ(0,1) after rebase = (%d,%v), cold predictor says (%d,%v)", d3, ok3, wd, wok)
	}
	_ = dNear

	// The old predictor still answers against its own generation.
	if d, ok := p.Sigma(0, 1, budget); d != dNear || !ok {
		t.Fatalf("old predictor drifted: σ(0,1) = (%d,%v), want (%d,true)", d, ok, dNear)
	}
}

func TestRebaseFullDropOnRenumber(t *testing.T) {
	v := hypergraph.NewVersioned(twoComponents())
	p, err := New(v.Current().Graph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	p.Sigma(4, 5, budget)
	base := p.Stats().PairsComputed

	b := v.Begin()
	b.RemoveNode(0)
	gen, delta := b.Commit()
	if !delta.Full {
		t.Fatal("RemoveNode must force a full delta")
	}
	np := p.Rebase(gen.Graph(), nil)
	if got := np.Stats().PairsComputed; got != base {
		t.Fatalf("counters not carried: PairsComputed %d, want %d", got, base)
	}
	// Old pair (4,5) is now (3,4) — nothing keyed by old ids survives, so
	// this must recompute rather than serve a renumbered stale entry.
	np.Sigma(3, 4, budget)
	if got := np.Stats().PairsComputed; got != base+1 {
		t.Fatalf("expected a recomputation after renumber, PairsComputed %d, want %d", got, base+1)
	}
}
