package predict

import (
	"sync"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

// PairMetric is a pluggable node-dissimilarity: it returns the integer
// distance between u and v in g and whether it is within the budget. Used
// by NewWithMetric to drive the HEP framework with non-HGED similarities
// (e.g. Jaccard). Metrics are context-independent.
type PairMetric func(g *hypergraph.Hypergraph, u, v hypergraph.NodeID, budget int) (int, bool)

// pairCache memoizes σ computations — the on-demand algorithm of
// Section V. Entries record either an exact distance or a proven lower
// bound ("> b"), so repeated queries with different budgets reuse earlier
// work and each (context, pair) is searched at most a handful of times.
// The cache is safe for concurrent use; concurrent requests for the same
// uncached key are deduplicated (singleflight): one goroutine solves while
// the rest wait for its entry instead of running the identical search.
type pairCache struct {
	g      *hypergraph.Hypergraph
	solver Algorithm
	maxEgo int
	maxExp int64
	metric PairMetric

	mu sync.Mutex
	// full memoizes full-graph σ (Problem 1) by node pair.
	full map[uint64]cacheEntry
	// ctx memoizes induced-context σ by interned context id + node pair.
	ctx map[ctxPair]cacheEntry
	// fullWait and ctxWait register in-flight computations; waiters block
	// on the channel and then re-read the memo.
	fullWait map[uint64]chan struct{}
	ctxWait  map[ctxPair]chan struct{}
	// Context interner: canonical sorted node sets mapped to dense int32
	// ids, hashed with collision-checked buckets (see internCtx).
	ctxBuckets map[uint64][]int32
	ctxSets    [][]hypergraph.NodeID
	computed   int
	hits       int
	deduped    int
	expanded   int64
}

// ctxPair is the comparable memo key for an induced-context σ entry: an
// interned context id plus the canonicalized node pair. It replaces the
// previous string key (context bytes + packed pair), removing a string
// build per lookup.
type ctxPair struct {
	ctx  int32
	u, v hypergraph.NodeID
}

// cacheEntry is an exact distance (Exact=true) or a proven lower bound:
// the distance is known to exceed Bound.
type cacheEntry struct {
	Dist  int32
	Bound int32
	Exact bool
}

func newPairCache(g *hypergraph.Hypergraph, o Options, metric PairMetric) *pairCache {
	return &pairCache{
		g:          g,
		solver:     o.Algorithm,
		maxEgo:     o.MaxEgoNodes,
		maxExp:     o.MaxExpansions,
		metric:     metric,
		full:       make(map[uint64]cacheEntry),
		ctx:        make(map[ctxPair]cacheEntry),
		fullWait:   make(map[uint64]chan struct{}),
		ctxWait:    make(map[ctxPair]chan struct{}),
		ctxBuckets: make(map[uint64][]int32),
	}
}

// internCtx returns the dense id of the context identified by the sorted
// node set, assigning a fresh one on first sight. Hash collisions are
// resolved by comparing the actual sets, so distinct contexts never share an
// id. The slice is retained; callers must not mutate it afterwards.
func (c *pairCache) internCtx(nodes []hypergraph.NodeID) int32 {
	k := hashNodeIDs(nodes)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ctxBuckets[k] {
		if nodeSetsEqual(c.ctxSets[id], nodes) {
			return id
		}
	}
	id := int32(len(c.ctxSets))
	c.ctxSets = append(c.ctxSets, nodes)
	c.ctxBuckets[k] = append(c.ctxBuckets[k], id)
	return id
}

func pairKey(u, v hypergraph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// ctxPairKey builds the comparable memo key for an induced-context σ entry,
// canonicalizing the pair order.
func ctxPairKey(ctx int32, u, v hypergraph.NodeID) ctxPair {
	if u > v {
		u, v = v, u
	}
	return ctxPair{ctx: ctx, u: u, v: v}
}

// answer resolves a cached entry against a budget: hit=false means the
// entry cannot answer and a (re)computation is needed.
func (e cacheEntry) answer(budget int) (d int, within, hit bool) {
	if e.Exact {
		return int(e.Dist), int(e.Dist) <= budget, true
	}
	if int(e.Bound) >= budget {
		return 0, false, true // proven > Bound ≥ budget
	}
	return 0, false, false
}

// fullDistance returns the full-graph σ(u, v) under the budget.
func (c *pairCache) fullDistance(u, v hypergraph.NodeID, budget int) (int, bool) {
	if u == v {
		return 0, true
	}
	if c.metric != nil {
		return c.metric(c.g, u, v, budget)
	}
	key := pairKey(u, v)
	for {
		c.mu.Lock()
		if e, ok := c.full[key]; ok {
			if d, within, hit := e.answer(budget); hit {
				c.hits++
				c.mu.Unlock()
				return d, within
			}
		}
		wait, inflight := c.fullWait[key]
		if !inflight {
			ch := make(chan struct{})
			c.fullWait[key] = ch
			c.mu.Unlock()

			eu, ev := c.g.Ego(u), c.g.Ego(v)
			guarded := c.maxEgo > 0 && (eu.NumNodes() > c.maxEgo || ev.NumNodes() > c.maxEgo)
			var e cacheEntry
			if !guarded {
				e = c.solve(eu, ev, budget)
			}
			c.mu.Lock()
			delete(c.fullWait, key)
			close(ch)
			if guarded {
				c.mu.Unlock()
				return 0, false
			}
			c.computed++
			c.full[key] = e
			c.mu.Unlock()
			d, within, _ := e.answer(budget)
			return d, within
		}
		// Another goroutine is solving this pair: wait for its entry and
		// re-read. A larger budget than the winner's may still miss, in
		// which case the loop takes over the computation.
		c.deduped++
		c.mu.Unlock()
		<-wait
	}
}

// contextDistance returns σ inside the induced sub-hypergraph sub (whose
// interned context id is ctxID, see internCtx) between local nodes uL and
// vL, which correspond to original nodes u and v.
func (c *pairCache) contextDistance(ctxID int32, sub *hypergraph.Hypergraph, uL, vL, u, v hypergraph.NodeID, budget int) (int, bool) {
	if u == v {
		return 0, true
	}
	if c.metric != nil {
		// Metrics are neighborhood statistics over the full graph;
		// memoize by pair only.
		return c.metric(c.g, u, v, budget)
	}
	key := ctxPairKey(ctxID, u, v)
	for {
		c.mu.Lock()
		if e, ok := c.ctx[key]; ok {
			if d, within, hit := e.answer(budget); hit {
				c.hits++
				c.mu.Unlock()
				return d, within
			}
		}
		wait, inflight := c.ctxWait[key]
		if !inflight {
			ch := make(chan struct{})
			c.ctxWait[key] = ch
			c.mu.Unlock()

			e := c.solve(sub.Ego(uL), sub.Ego(vL), budget)
			c.mu.Lock()
			delete(c.ctxWait, key)
			close(ch)
			c.computed++
			c.ctx[key] = e
			c.mu.Unlock()
			d, within, _ := e.answer(budget)
			return d, within
		}
		c.deduped++
		c.mu.Unlock()
		<-wait
	}
}

// solve runs the configured HGED solver with the given threshold and
// converts the result to a cache entry.
func (c *pairCache) solve(eu, ev *hypergraph.Hypergraph, budget int) cacheEntry {
	// The Strategy-3 screen serves the BFS solver; HEP-DFS and HEP-HEU
	// stay faithful to the paper's variants, which have no lower bounds.
	if c.solver == AlgBFS && core.LowerBound(eu, ev) > budget {
		return cacheEntry{Bound: int32(budget)}
	}
	opts := core.Options{Threshold: budget, MaxExpansions: c.maxExp}
	var res core.Result
	switch c.solver {
	case AlgDFS:
		res = core.DFS(eu, ev, opts)
	case AlgHEU:
		res = core.HEU(eu, ev, opts)
	default:
		res = core.BFS(eu, ev, opts)
	}
	c.mu.Lock()
	c.expanded += res.Expanded
	c.mu.Unlock()
	if res.Exceeded || res.Distance > budget {
		// A proven exceedance, or — under an expansion cap — only an
		// upper bound above the budget: conservatively treated as "not
		// within", as the budget-capped paper variants behave.
		return cacheEntry{Bound: int32(budget)}
	}
	// res.Distance ≤ budget: within. Under an expansion cap this is an
	// upper bound rather than the exact optimum; it still certifies
	// "within budget".
	return cacheEntry{Dist: int32(res.Distance), Exact: true}
}
