package predict

import (
	"context"
	"fmt"
	"testing"

	"hged/internal/gen"
)

// TestParallelDeterminismPlanted enforces the doc-comment promise that a
// parallel Run produces byte-identical output to the sequential run, on a
// seeded planted-community graph and under the race detector (CI runs this
// package with -race).
func TestParallelDeterminismPlanted(t *testing.T) {
	g, _, err := gen.PlantedCommunities(gen.Config{Nodes: 40, Edges: 60, Seed: 11, NodeLabelCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lambda: 2, Tau: 3}
	seq, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", seq.Run())

	par := opts
	par.Parallelism = 8
	pp, err := New(g, par)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%v", pp.Run())
	if got != want {
		t.Fatalf("parallel output diverged from sequential:\n seq: %s\n par: %s", want, got)
	}
}

// TestRunContextCancel checks that a cancelled context stops the run and
// surfaces the error, sequentially and in parallel.
func TestRunContextCancel(t *testing.T) {
	g, _, err := gen.PlantedCommunities(gen.Config{Nodes: 40, Edges: 60, Seed: 11, NodeLabelCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		p, err := New(g, Options{Lambda: 2, Tau: 3, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		preds, err := p.RunContext(ctx, nil)
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if preds != nil {
			t.Fatalf("workers=%d: cancelled run returned predictions", workers)
		}
	}
}

// TestRunContextProgress checks the progress callback contract: an initial
// (0, total) call, then one call per seed ending at (total, total).
func TestRunContextProgress(t *testing.T) {
	g := twoCommunities()
	p, err := New(g, Options{Lambda: 2, Tau: 3})
	if err != nil {
		t.Fatal(err)
	}
	var calls [][2]int
	preds, err := p.RunContext(context.Background(), func(done, total int) {
		calls = append(calls, [2]int{done, total})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("progress never called")
	}
	total := calls[0][1]
	if calls[0][0] != 0 {
		t.Fatalf("first call = %v, want (0, total)", calls[0])
	}
	last := calls[len(calls)-1]
	if last[0] != total || last[1] != total {
		t.Fatalf("last call = %v, want (%d, %d)", last, total, total)
	}
	if len(calls) != total+1 {
		t.Fatalf("%d progress calls for %d seeds, want %d", len(calls), total, total+1)
	}
	if preds == nil {
		t.Log("no predictions on this fixture (acceptable)")
	}
}
