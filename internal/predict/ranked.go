package predict

import (
	"sort"

	"hged/internal/hypergraph"
)

// ScoredPrediction is a prediction with a cohesion score: the maximum
// pairwise σ inside the induced sub-hypergraph (smaller is tighter). A
// score of 0 means all members' induced ego networks are isomorphic.
type ScoredPrediction struct {
	Prediction
	// Score is max_{u,v∈S} σ_{G_S}(u, v).
	Score int
	// MeanScore is the average pairwise σ_{G_S}, a tie-breaker.
	MeanScore float64
}

// RunRanked executes HEP and returns the predictions ordered from tightest
// to loosest cohesion (ties broken by mean pairwise σ, then node sets).
// Useful for precision@k evaluation and for surfacing the most credible
// predictions first.
func (p *Predictor) RunRanked() []ScoredPrediction {
	preds := p.Run()
	out := make([]ScoredPrediction, 0, len(preds))
	for _, pr := range preds {
		score, mean := p.cohesion(pr.Nodes)
		out = append(out, ScoredPrediction{Prediction: pr, Score: score, MeanScore: mean})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		if out[i].MeanScore != out[j].MeanScore {
			return out[i].MeanScore < out[j].MeanScore
		}
		return lessNodeSets(out[i].Nodes, out[j].Nodes)
	})
	return out
}

// cohesion computes the maximum and mean pairwise σ inside G_S. Values are
// bounded by λ·τ for emitted predictions (they satisfy Definition 4).
func (p *Predictor) cohesion(s []hypergraph.NodeID) (int, float64) {
	if len(s) < 2 {
		return 0, 0
	}
	sub, _ := p.inducedWithIndex(s)
	ctx := p.cache.internCtx(s)
	lambdaTau := p.opts.Lambda * p.opts.Tau
	maxScore, total, pairs := 0, 0, 0
	n := sub.NumNodes()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u, v := sub.OrigID(hypergraph.NodeID(i)), sub.OrigID(hypergraph.NodeID(j))
			d, ok := p.cache.contextDistance(ctx, sub, hypergraph.NodeID(i), hypergraph.NodeID(j), u, v, lambdaTau)
			if !ok {
				d = lambdaTau + 1 // should not happen for emitted sets
			}
			if d > maxScore {
				maxScore = d
			}
			total += d
			pairs++
		}
	}
	return maxScore, float64(total) / float64(pairs)
}
