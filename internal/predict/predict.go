// Package predict implements HEP (Algorithm 4 of the paper): mining
// (λ,τ)-hyperedges of a hypergraph as hyperedge predictions.
//
// A node set S is a (λ,τ)-hyperedge (Definition 4) when, *inside the
// induced sub-hypergraph G_S*, every pair of directly connected nodes has
// node-similar distance σ_{G_S} ≤ τ and every pair of nodes has
// σ_{G_S} ≤ λ·τ, where σ(u,v) is the HGED between ego networks. Computing
// σ inside G_S is what makes the paper's τ values (3–10) meaningful at any
// ambient density: a candidate hyperedge is judged by its own internal
// structure, not by the (possibly enormous) full-graph neighborhoods.
//
// HEP mirrors the paper's two phases:
//
//  1. Grow candidate sets by BFS from seeds (each node, and each training
//     hyperedge within the size bounds), admitting a neighbor w of the
//     current set S when w is structurally tied inside G_{S∪{w}} and
//     σ_{G_{S∪{w}}}(w, v) ≤ τ for every induced neighbor v (Algorithm 4,
//     lines 2–9). Growth is bounded by λ hops from the seed.
//  2. Peel each candidate until Definition 4 holds exactly: while some
//     directly connected pair exceeds τ or some pair exceeds λ·τ inside
//     G_S, remove the node with the most violations (lines 10–13). Every
//     emitted prediction is therefore a verified (λ,τ)-hyperedge.
//
// σ values are computed on demand and memoized under their context
// (Section V's "on-demand algorithm ... substantially avoids redundant
// computations"); seeds can be processed in parallel without changing the
// output.
package predict

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

// Algorithm selects the HGED solver driving σ computations.
type Algorithm int

const (
	// AlgBFS uses HGED-BFS with all pruning strategies (HEP-BFS).
	AlgBFS Algorithm = iota
	// AlgDFS uses HGED-DFS (HEP-DFS): exact but without re-ranking, upper
	// bounds, or lower bounds.
	AlgDFS
	// AlgHEU uses HGED-HEU: a heuristic upper-bound instance.
	AlgHEU
)

func (a Algorithm) String() string {
	switch a {
	case AlgBFS:
		return "HEP-BFS"
	case AlgDFS:
		return "HEP-DFS"
	case AlgHEU:
		return "HEP-HEU"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures HEP. The zero value is completed by Normalize: λ=3,
// τ=5 (the paper's defaults), HGED-BFS, hyperedge sizes 2..8.
type Options struct {
	// Lambda is λ ≥ 1: candidate sets extend at most λ hops from their
	// seed, and pairs inside a candidate must satisfy σ ≤ λ·τ.
	Lambda int
	// Tau is τ > 0: the node-similar distance budget for directly
	// connected pairs.
	Tau int
	// Algorithm is the HGED solver to use.
	Algorithm Algorithm
	// MinSize and MaxSize bound emitted hyperedge cardinalities. Zero
	// values default to 2 and 8.
	MinSize, MaxSize int
	// IncludeExisting keeps predictions whose node set already appears as
	// a hyperedge of the input graph. Off by default: HEP predicts
	// *missing* hyperedges.
	IncludeExisting bool
	// MaxEgoNodes guards the full-graph σ computations behind Sigma and
	// Explain against hub nodes (0 defaults to 64). Candidate growth uses
	// induced-context egos, which are bounded by MaxSize anyway.
	MaxEgoNodes int
	// MaxExpansions bounds each individual HGED search (0 = solver
	// default).
	MaxExpansions int64
	// Parallelism, when > 1, processes seeds concurrently with this many
	// workers. Predictions are identical (the output is sorted and
	// deduplicated); only wall-clock changes. 0 and 1 mean sequential.
	Parallelism int
}

// Normalize fills defaults and validates; it returns an error for
// out-of-range parameters.
func (o Options) Normalize() (Options, error) {
	if o.Lambda == 0 {
		o.Lambda = 3
	}
	if o.Tau == 0 {
		o.Tau = 5
	}
	if o.Lambda < 1 {
		return o, fmt.Errorf("predict: λ = %d, must be ≥ 1", o.Lambda)
	}
	if o.Tau < 0 {
		return o, fmt.Errorf("predict: τ = %d, must be > 0", o.Tau)
	}
	if o.MinSize == 0 {
		o.MinSize = 2
	}
	if o.MaxSize == 0 {
		o.MaxSize = 8
	}
	if o.MinSize < 2 || o.MaxSize < o.MinSize {
		return o, fmt.Errorf("predict: invalid size bounds [%d,%d]", o.MinSize, o.MaxSize)
	}
	if o.MaxEgoNodes == 0 {
		o.MaxEgoNodes = 64
	}
	return o, nil
}

// Prediction is one predicted hyperedge: a verified (λ,τ)-hyperedge that is
// not (unless IncludeExisting) already a hyperedge of the input graph.
type Prediction struct {
	// Nodes is the predicted node set, ascending.
	Nodes []hypergraph.NodeID
	// Seed is the node whose growth produced the candidate.
	Seed hypergraph.NodeID
}

// Stats reports the work a Run performed.
type Stats struct {
	Seeds         int   // growth seeds processed
	Components    int   // candidate sets that survived growth (≥ MinSize)
	PairsComputed int   // distinct σ computations performed
	PairsCached   int   // σ lookups answered by the memo
	PairsDeduped  int   // σ requests that waited for an identical in-flight computation
	Expanded      int64 // total HGED search states expanded
}

// Predictor runs HEP over one hypergraph with an on-demand σ cache shared
// across all phases. Create with New. Run may be called repeatedly; the
// cache persists across calls.
type Predictor struct {
	g     *hypergraph.Hypergraph
	opts  Options
	cache *pairCache

	mu    sync.Mutex
	seeds int
	grown int
}

// New builds a Predictor for g. Options are normalized; invalid parameters
// return an error.
func New(g *hypergraph.Hypergraph, opts Options) (*Predictor, error) {
	return NewWithMetric(g, opts, nil)
}

// NewWithMetric builds a Predictor whose σ is computed by metric instead of
// HGED; the HEP search framework (seeded growth, λ-hop bound, Definition-4
// peeling, on-demand memoization) is unchanged. This is how the paper's JS
// baseline "uses the HEP framework to predict hyperedges". A nil metric
// selects HGED. Metrics are evaluated on the full graph (they are
// neighborhood statistics, not structural edits), so their values are
// context-independent.
func NewWithMetric(g *hypergraph.Hypergraph, opts Options, metric PairMetric) (*Predictor, error) {
	o, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	return &Predictor{g: g, opts: o, cache: newPairCache(g, o, metric)}, nil
}

// Stats returns work counters accumulated so far.
func (p *Predictor) Stats() Stats {
	p.mu.Lock()
	s := Stats{Seeds: p.seeds, Components: p.grown}
	p.mu.Unlock()
	p.cache.mu.Lock()
	s.PairsComputed = p.cache.computed
	s.PairsCached = p.cache.hits
	s.PairsDeduped = p.cache.deduped
	s.Expanded = p.cache.expanded
	p.cache.mu.Unlock()
	return s
}

// Sigma returns the full-graph node-similar distance σ(u, v) (Problem 1)
// and whether it is within the given budget. Unlike the growth phase's
// context-local σ, this is the HGED between the nodes' full ego networks.
func (p *Predictor) Sigma(u, v hypergraph.NodeID, budget int) (int, bool) {
	d, ok := p.cache.fullDistance(u, v, budget)
	if !ok {
		return 0, false
	}
	return d, d <= budget
}

// Run executes HEP and returns all predicted (λ,τ)-hyperedges, sorted by
// their node sets.
func (p *Predictor) Run() []Prediction {
	out, _ := p.RunContext(context.Background(), nil)
	return out
}

// RunContext executes HEP like Run, additionally honoring a context and
// reporting progress. The context is checked between seeds: once it is
// cancelled the run stops promptly (individual σ searches still finish)
// and ctx.Err() is returned with a nil prediction set. progress, when
// non-nil, is called once with (0, total) before the first seed and then
// after each processed seed with the running count; calls are serialized.
func (p *Predictor) RunContext(ctx context.Context, progress func(done, total int)) ([]Prediction, error) {
	seeds := p.collectSeeds()
	p.mu.Lock()
	p.seeds += len(seeds)
	p.mu.Unlock()

	total := len(seeds)
	var progMu sync.Mutex
	done := 0
	if progress != nil {
		progress(0, total)
	}
	report := func() {
		if progress == nil {
			return
		}
		progMu.Lock()
		done++
		d := done
		progMu.Unlock()
		progress(d, total)
	}

	workers := p.opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	results := make([][]Prediction, len(seeds))
	if workers == 1 {
		for i, s := range seeds {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = p.processSeed(s)
			report()
		}
	} else {
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					if ctx.Err() != nil {
						continue // drain the channel without working
					}
					results[i] = p.processSeed(seeds[i])
					report()
				}
			}()
		}
	feed:
		for i := range seeds {
			select {
			case ch <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(ch)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	existing := newNodeSetSet(p.g.NumEdges())
	if !p.opts.IncludeExisting {
		for _, e := range p.g.Edges() {
			existing.insert(e.Nodes)
		}
	}
	seen := newNodeSetSet(0)
	var out []Prediction
	for _, preds := range results {
		for _, pr := range preds {
			if !seen.insert(pr.Nodes) {
				continue
			}
			if existing.contains(pr.Nodes) {
				continue
			}
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessNodeSets(out[i].Nodes, out[j].Nodes) })
	return out, nil
}

// seed is one growth starting point.
type seed struct {
	root  hypergraph.NodeID
	nodes []hypergraph.NodeID
}

// collectSeeds returns the growth seeds: every node, plus every training
// hyperedge whose cardinality fits the size bounds (predicting completions
// and extensions of known interactions).
func (p *Predictor) collectSeeds() []seed {
	var seeds []seed
	for v := 0; v < p.g.NumNodes(); v++ {
		seeds = append(seeds, seed{root: hypergraph.NodeID(v), nodes: []hypergraph.NodeID{hypergraph.NodeID(v)}})
	}
	for _, e := range p.g.Edges() {
		if e.Arity() >= 2 && e.Arity() <= p.opts.MaxSize {
			nodes := append([]hypergraph.NodeID(nil), e.Nodes...)
			seeds = append(seeds, seed{root: e.Nodes[0], nodes: nodes})
		}
	}
	return seeds
}

// processSeed grows one seed and peels it to a verified (λ,τ)-hyperedge.
func (p *Predictor) processSeed(sd seed) []Prediction {
	s := p.grow(sd)
	if len(s) < p.opts.MinSize {
		return nil
	}
	p.mu.Lock()
	p.grown++
	p.mu.Unlock()
	s = p.peel(s)
	if len(s) < p.opts.MinSize || len(s) > p.opts.MaxSize {
		return nil
	}
	return []Prediction{{Nodes: s, Seed: sd.root}}
}

// grow expands the seed set by BFS up to λ hops: a neighbor w of a member v
// joins when, inside the induced sub-hypergraph on S∪{w}, w is tied to at
// least one member by a fully contained hyperedge and σ ≤ τ holds against
// every induced neighbor of w.
func (p *Predictor) grow(sd seed) []hypergraph.NodeID {
	inS := make(map[hypergraph.NodeID]int, p.opts.MaxSize) // node → hop
	var s []hypergraph.NodeID
	for _, v := range sd.nodes {
		inS[v] = 0
		s = append(s, v)
	}
	queue := append([]hypergraph.NodeID(nil), sd.nodes...)
	for len(queue) > 0 && len(s) < p.opts.MaxSize {
		v := queue[0]
		queue = queue[1:]
		if inS[v] >= p.opts.Lambda {
			continue
		}
		for _, w := range p.g.Neighbors(v) {
			if len(s) >= p.opts.MaxSize {
				break
			}
			if _, in := inS[w]; in {
				continue
			}
			if p.admit(s, w) {
				inS[w] = inS[v] + 1
				s = append(s, w)
				queue = append(queue, w)
			}
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// admit checks the incremental Definition-4 τ condition for candidate w
// against set s.
func (p *Predictor) admit(s []hypergraph.NodeID, w hypergraph.NodeID) bool {
	c := append(append(make([]hypergraph.NodeID, 0, len(s)+1), s...), w)
	sub, locals := p.inducedWithIndex(c)
	wLocal := locals[w]
	nbrs := sub.Neighbors(wLocal)
	if len(nbrs) <= 1 {
		return false // isolated inside the candidate: no structural tie
	}
	ctx := p.cache.internCtx(sortedCopy(c))
	for _, vLocal := range nbrs {
		if vLocal == wLocal {
			continue
		}
		u := sub.OrigID(vLocal)
		if d, ok := p.cache.contextDistance(ctx, sub, wLocal, vLocal, w, u, p.opts.Tau); !ok || d > p.opts.Tau {
			return false
		}
	}
	return true
}

// peel enforces Definition 4 exactly on s: while, inside G_S, some directly
// connected pair exceeds τ or any pair exceeds λ·τ, remove the node with
// the most violations. The survivor set is a verified (λ,τ)-hyperedge (or
// too small to emit).
func (p *Predictor) peel(s []hypergraph.NodeID) []hypergraph.NodeID {
	lambdaTau := p.opts.Lambda * p.opts.Tau
	for len(s) >= 2 {
		sub, _ := p.inducedWithIndex(s)
		ctx := p.cache.internCtx(s)
		violations := make(map[hypergraph.NodeID]int)
		total := 0
		n := sub.NumNodes()
		neighborSets := make([]map[hypergraph.NodeID]struct{}, n)
		for i := 0; i < n; i++ {
			set := make(map[hypergraph.NodeID]struct{})
			for _, w := range sub.Neighbors(hypergraph.NodeID(i)) {
				set[w] = struct{}{}
			}
			neighborSets[i] = set
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				budget := lambdaTau
				if _, isNbr := neighborSets[i][hypergraph.NodeID(j)]; isNbr {
					budget = p.opts.Tau
				}
				u, v := sub.OrigID(hypergraph.NodeID(i)), sub.OrigID(hypergraph.NodeID(j))
				d, ok := p.cache.contextDistance(ctx, sub, hypergraph.NodeID(i), hypergraph.NodeID(j), u, v, lambdaTau)
				if !ok || d > budget {
					violations[u]++
					violations[v]++
					total++
				}
			}
		}
		if total == 0 {
			return s
		}
		var worst hypergraph.NodeID = -1
		worstCount := -1
		for _, v := range s {
			if c := violations[v]; c > worstCount || (c == worstCount && v > worst) {
				worst, worstCount = v, c
			}
		}
		w := make([]hypergraph.NodeID, 0, len(s)-1)
		for _, v := range s {
			if v != worst {
				w = append(w, v)
			}
		}
		s = w
	}
	return s
}

// inducedWithIndex returns the induced sub-hypergraph on c plus a map from
// original node ids to local ids.
func (p *Predictor) inducedWithIndex(c []hypergraph.NodeID) (*hypergraph.Hypergraph, map[hypergraph.NodeID]hypergraph.NodeID) {
	sub := p.g.InducedSubgraph(c)
	locals := make(map[hypergraph.NodeID]hypergraph.NodeID, sub.NumNodes())
	for i := 0; i < sub.NumNodes(); i++ {
		locals[sub.OrigID(hypergraph.NodeID(i))] = hypergraph.NodeID(i)
	}
	return sub, locals
}

// Verify checks Definition 4 exactly for a node set S: every pair of
// neighbors in the induced sub-hypergraph G_S must have σ_{G_S} ≤ τ, and
// every pair of nodes σ_{G_S} ≤ λ·τ. Every Prediction emitted by Run
// satisfies Verify with the predictor's own λ and τ.
func Verify(g *hypergraph.Hypergraph, s []hypergraph.NodeID, lambda, tau int) bool {
	sub := g.InducedSubgraph(s)
	n := sub.NumNodes()
	lambdaTau := lambda * tau
	for i := 0; i < n; i++ {
		nbrs := make(map[hypergraph.NodeID]struct{})
		for _, w := range sub.Neighbors(hypergraph.NodeID(i)) {
			nbrs[w] = struct{}{}
		}
		for j := i + 1; j < n; j++ {
			u, v := hypergraph.NodeID(i), hypergraph.NodeID(j)
			budget := lambdaTau
			if _, isNbr := nbrs[v]; isNbr {
				budget = tau
			}
			if _, ok := core.DistanceWithin(sub.Ego(u), sub.Ego(v), budget); !ok {
				return false
			}
		}
	}
	return true
}

func sortedCopy(nodes []hypergraph.NodeID) []hypergraph.NodeID {
	out := append([]hypergraph.NodeID(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func lessNodeSets(a, b []hypergraph.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
