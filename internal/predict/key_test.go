package predict

import (
	"math/rand"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
)

// varintKeyOf is the string set key the hashed keys replaced; the property
// tests keep it as the reference semantics.
func varintKeyOf(nodes []hypergraph.NodeID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, v := range nodes {
		x := uint32(v)
		for x >= 0x80 {
			b = append(b, byte(x)|0x80)
			x >>= 7
		}
		b = append(b, byte(x))
	}
	return string(b)
}

// TestHashedKeysAgreeWithStringKeys checks, over seeded random hypergraphs,
// that nodeSetSet answers membership exactly as a map keyed by the old
// varint string encoding: same dedup decisions, no false merges, no false
// splits.
func TestHashedKeysAgreeWithStringKeys(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.Uniform(60, 120, 5, 3, 2, seed)
		rng := rand.New(rand.NewSource(seed))

		var sets [][]hypergraph.NodeID
		for _, e := range g.Edges() {
			sets = append(sets, e.Nodes)
		}
		// Random sorted subsets, plus deliberate duplicates of edge sets.
		for i := 0; i < 200; i++ {
			k := 1 + rng.Intn(6)
			set := map[hypergraph.NodeID]struct{}{}
			for len(set) < k {
				set[hypergraph.NodeID(rng.Intn(g.NumNodes()))] = struct{}{}
			}
			nodes := make([]hypergraph.NodeID, 0, k)
			for v := range set {
				nodes = append(nodes, v)
			}
			for a := 1; a < len(nodes); a++ {
				for b := a; b > 0 && nodes[b] < nodes[b-1]; b-- {
					nodes[b], nodes[b-1] = nodes[b-1], nodes[b]
				}
			}
			sets = append(sets, nodes)
		}
		for i := 0; i < 20; i++ {
			e := g.Edge(hypergraph.EdgeID(rng.Intn(g.NumEdges())))
			sets = append(sets, append([]hypergraph.NodeID(nil), e.Nodes...))
		}

		hashed := newNodeSetSet(len(sets))
		strings := make(map[string]struct{}, len(sets))
		for i, s := range sets {
			_, strDup := strings[varintKeyOf(s)]
			strings[varintKeyOf(s)] = struct{}{}
			if hashDup := !hashed.insert(s); hashDup != strDup {
				t.Fatalf("seed %d set %d (%v): hashed dup=%v, string dup=%v", seed, i, s, hashDup, strDup)
			}
			if !hashed.contains(s) {
				t.Fatalf("seed %d: inserted set %v not found", seed, s)
			}
		}
	}
}

// TestDuplicateHyperedgesShareOneKey pins the duplicate-hyperedge case: a
// graph may carry several hyperedges over the same node set (different
// labels), and all of them must collapse to one key, while any proper
// sub/superset must not.
func TestDuplicateHyperedgesShareOneKey(t *testing.T) {
	g := hypergraph.New(5)
	g.AddEdge(1, 0, 1, 2)
	g.AddEdge(2, 0, 1, 2) // duplicate node set, different label
	g.AddEdge(1, 0, 1)    // proper subset
	g.AddEdge(1, 0, 1, 2, 3)

	s := newNodeSetSet(4)
	dups := 0
	for _, e := range g.Edges() {
		if !s.insert(e.Nodes) {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("want exactly the one duplicate node set detected, got %d", dups)
	}
	if s.contains([]hypergraph.NodeID{1, 2}) {
		t.Fatal("subset {1,2} was never inserted but reported present")
	}
}

// TestHashNodeIDsPrefixAndOrder pins hash properties the set semantics rely
// on: length is folded in (prefixes differ) and input order matters (inputs
// are canonicalized by sorting before hashing, so permutations must go
// through sorting, not through the hash).
func TestHashNodeIDsPrefixAndOrder(t *testing.T) {
	if hashNodeIDs([]hypergraph.NodeID{1, 2}) == hashNodeIDs([]hypergraph.NodeID{1, 2, 0}) {
		t.Fatal("prefix sets should hash differently")
	}
	if hashNodeIDs(nil) == hashNodeIDs([]hypergraph.NodeID{0}) {
		t.Fatal("empty set and {0} should hash differently")
	}
}
