package predict

import (
	"reflect"
	"testing"

	"hged/internal/hypergraph"
)

// twoCommunities builds a hypergraph with two 4-node communities (labels 1
// and 2) and all-but-one of the size-3 hyperedges inside each. The missing
// triples are natural prediction targets.
func twoCommunities() *hypergraph.Hypergraph {
	g := hypergraph.New(0)
	for i := 0; i < 4; i++ {
		g.AddNode(1)
	}
	for i := 0; i < 4; i++ {
		g.AddNode(2)
	}
	add := func(l hypergraph.Label, base hypergraph.NodeID) {
		// Three of the four triples of {base..base+3}.
		g.AddEdge(l, base, base+1, base+2)
		g.AddEdge(l, base, base+1, base+3)
		g.AddEdge(l, base, base+2, base+3)
	}
	add(10, 0)
	add(20, 4)
	return g
}

func TestOptionsNormalize(t *testing.T) {
	o, err := Options{}.Normalize()
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if o.Lambda != 3 || o.Tau != 5 || o.MinSize != 2 || o.MaxSize != 8 || o.MaxEgoNodes != 64 {
		t.Fatalf("defaults = %+v", o)
	}
	if _, err := (Options{Lambda: -1}).Normalize(); err == nil {
		t.Fatal("λ < 1 must fail")
	}
	if _, err := (Options{Tau: -3}).Normalize(); err == nil {
		t.Fatal("τ < 0 must fail")
	}
	if _, err := (Options{MinSize: 5, MaxSize: 3}).Normalize(); err == nil {
		t.Fatal("MinSize > MaxSize must fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgBFS.String() != "HEP-BFS" || AlgDFS.String() != "HEP-DFS" || AlgHEU.String() != "HEP-HEU" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Fatal("unknown algorithm rendering wrong")
	}
}

func TestRunPredictsMissingCommunitySets(t *testing.T) {
	g := twoCommunities()
	p, err := New(g, Options{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Run()
	if len(preds) == 0 {
		t.Fatal("expected predictions")
	}
	// Every prediction must stay inside one community (no cross-community
	// structural ties exist).
	for _, pr := range preds {
		firstSide := pr.Nodes[0] < 4
		for _, v := range pr.Nodes {
			if (v < 4) != firstSide {
				t.Fatalf("prediction crosses communities: %v", pr.Nodes)
			}
		}
	}
	// The full community {0,1,2,3} (a missing hyperedge superset) should
	// be among the predictions.
	found := false
	for _, pr := range preds {
		if reflect.DeepEqual(pr.Nodes, []hypergraph.NodeID{0, 1, 2, 3}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("community set not predicted; got %v", preds)
	}
}

func TestRunEmitsOnlyVerifiedHyperedges(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{Lambda: 3, Tau: 5})
	for _, pr := range p.Run() {
		if !Verify(g, pr.Nodes, 3, 5) {
			t.Fatalf("prediction %v does not verify as a (3,5)-hyperedge", pr.Nodes)
		}
	}
}

func TestRunExcludesExistingHyperedges(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{Lambda: 3, Tau: 5, MaxSize: 3})
	for _, pr := range p.Run() {
		sub := g.InducedSubgraph(pr.Nodes)
		for _, e := range sub.Edges() {
			if e.Arity() == len(pr.Nodes) {
				t.Fatalf("prediction %v duplicates an existing hyperedge", pr.Nodes)
			}
		}
	}
}

func TestRunIncludeExisting(t *testing.T) {
	g := twoCommunities()
	excl, _ := New(g, Options{Lambda: 3, Tau: 5, MaxSize: 3})
	incl, _ := New(g, Options{Lambda: 3, Tau: 5, MaxSize: 3, IncludeExisting: true})
	if len(incl.Run()) <= len(excl.Run()) {
		t.Fatal("IncludeExisting should yield strictly more candidates here")
	}
}

func TestHEPDFSMatchesHEPBFS(t *testing.T) {
	g := twoCommunities()
	bfs, _ := New(g, Options{Lambda: 3, Tau: 5})
	dfs, _ := New(g, Options{Lambda: 3, Tau: 5, Algorithm: AlgDFS})
	pb, pd := bfs.Run(), dfs.Run()
	if len(pb) != len(pd) {
		t.Fatalf("HEP-BFS found %d, HEP-DFS found %d", len(pb), len(pd))
	}
	for i := range pb {
		if !reflect.DeepEqual(pb[i].Nodes, pd[i].Nodes) {
			t.Fatalf("prediction %d differs: %v vs %v", i, pb[i].Nodes, pd[i].Nodes)
		}
	}
}

func TestSigmaMemoization(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{Lambda: 3, Tau: 5})
	d1, ok1 := p.Sigma(0, 1, 15)
	if !ok1 {
		t.Fatal("same-community pair should be within 15")
	}
	before := p.Stats().PairsComputed
	d2, ok2 := p.Sigma(1, 0, 15)
	after := p.Stats()
	if d1 != d2 || ok1 != ok2 {
		t.Fatal("σ must be symmetric via the cache key")
	}
	if after.PairsComputed != before {
		t.Fatal("second lookup must hit the cache")
	}
	if after.PairsCached == 0 {
		t.Fatal("cache hit counter not incremented")
	}
}

func TestSigmaSelfIsZero(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{})
	if d, ok := p.Sigma(2, 2, 0); !ok || d != 0 {
		t.Fatalf("σ(v,v) = %d,%v; want 0,true", d, ok)
	}
}

func TestSigmaBudgetSemantics(t *testing.T) {
	g := hypergraph.Fig1()
	p, _ := New(g, Options{Lambda: 2, Tau: 6})
	d, ok := p.Sigma(hypergraph.U(4), hypergraph.U(5), 6)
	if !ok || d != 6 {
		t.Fatalf("σ(u4,u5) = %d,%v; want 6,true at budget 6", d, ok)
	}
	if _, ok := p.Sigma(hypergraph.U(4), hypergraph.U(5), 5); ok {
		t.Fatal("budget 5 must reject distance 6")
	}
	// A larger budget after a proven exceedance must recompute correctly.
	p2, _ := New(g, Options{Lambda: 2, Tau: 6})
	if _, ok := p2.Sigma(hypergraph.U(4), hypergraph.U(5), 3); ok {
		t.Fatal("budget 3 must reject distance 6")
	}
	if d, ok := p2.Sigma(hypergraph.U(4), hypergraph.U(5), 10); !ok || d != 6 {
		t.Fatalf("budget 10 after exceedance: d=%d ok=%v", d, ok)
	}
}

func TestRunOnFig1EmitsVerifiedSets(t *testing.T) {
	g := hypergraph.Fig1()
	p, err := New(g, Options{Lambda: 2, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Run()
	for _, pr := range preds {
		if !Verify(g, pr.Nodes, 2, 6) {
			t.Fatalf("prediction %v violates Definition 4", pr.Nodes)
		}
	}
	st := p.Stats()
	if st.Seeds == 0 {
		t.Fatal("no seeds recorded")
	}
}

func TestPeelEnforcesDefinition4(t *testing.T) {
	// A clique-ish community plus one structurally alien attachment: node
	// 4 shares only a single pair edge with node 0, so inside the induced
	// subgraph its ego diverges and it must be peeled at tight τ.
	g := hypergraph.New(5)
	g.AddEdge(1, 0, 1, 2)
	g.AddEdge(1, 0, 1, 3)
	g.AddEdge(1, 0, 2, 3)
	g.AddEdge(1, 1, 2, 3)
	g.AddEdge(2, 0, 4)
	p, _ := New(g, Options{Lambda: 1, Tau: 2})
	s := p.peel([]hypergraph.NodeID{0, 1, 2, 3, 4})
	for _, v := range s {
		if v == 4 {
			t.Fatalf("node 4 should have been peeled, got %v", s)
		}
	}
	if len(s) != 4 {
		t.Fatalf("community should survive peeling, got %v", s)
	}
	if !Verify(g, s, 1, 2) {
		t.Fatalf("peeled set %v must satisfy Definition 4", s)
	}
}

func TestVerifyDefinition4(t *testing.T) {
	g := twoCommunities()
	if !Verify(g, []hypergraph.NodeID{0, 1, 2, 3}, 3, 6) {
		t.Fatal("the community should verify as a (3,6)-hyperedge")
	}
	// Cross-community sets induce no shared hyperedges; singleton egos are
	// isomorphic so τ holds trivially, but with the communities' different
	// labels the pairwise bound at τ=0 must fail.
	if Verify(g, []hypergraph.NodeID{0, 4}, 1, 0) {
		t.Fatal("cross-community pair should fail at τ=0")
	}
}

func TestExplainPair(t *testing.T) {
	g := hypergraph.Fig1()
	p, _ := New(g, Options{Lambda: 2, Tau: 6})
	ex, err := p.Explain(hypergraph.U(4), hypergraph.U(5))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Distance != 6 {
		t.Fatalf("explained distance = %d, want 6", ex.Distance)
	}
	if ex.Path.Cost() != 6 {
		t.Fatalf("path cost = %d", ex.Path.Cost())
	}
	if len(ex.Lines()) != 6 {
		t.Fatalf("explanation lines = %d, want 6", len(ex.Lines()))
	}
	if ex.String() == "" {
		t.Fatal("empty narrative")
	}
}

func TestExplainEgoGuard(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{MaxEgoNodes: 2})
	if _, err := p.Explain(0, 1); err == nil {
		t.Fatal("ego guard should reject oversized egos")
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	g := twoCommunities()
	seq, _ := New(g, Options{Lambda: 3, Tau: 5})
	par, _ := New(g, Options{Lambda: 3, Tau: 5, Parallelism: 4})
	ps, pp := seq.Run(), par.Run()
	if len(ps) != len(pp) {
		t.Fatalf("sequential found %d, parallel %d", len(ps), len(pp))
	}
	for i := range ps {
		if !reflect.DeepEqual(ps[i].Nodes, pp[i].Nodes) {
			t.Fatalf("prediction %d differs: %v vs %v", i, ps[i].Nodes, pp[i].Nodes)
		}
	}
	if par.Stats().PairsComputed == 0 {
		t.Fatal("parallel run computed nothing")
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{Lambda: 3, Tau: 5})
	p.Run()
	st := p.Stats()
	if st.Seeds == 0 {
		t.Fatal("no seeds recorded")
	}
	if st.PairsComputed == 0 {
		t.Fatal("no σ computations recorded")
	}
	if st.PairsCached == 0 {
		t.Fatal("no cache hits recorded: growth must reuse memoized σ values")
	}
	if st.Components == 0 {
		t.Fatal("no grown candidates recorded")
	}
}

func TestGrowRespectsMaxSize(t *testing.T) {
	// A long chain of pair edges with identical labels: growth must stop
	// at MaxSize even though everything is similar.
	g := hypergraph.New(20)
	for i := 0; i < 19; i++ {
		g.AddEdge(1, hypergraph.NodeID(i), hypergraph.NodeID(i+1))
	}
	p, _ := New(g, Options{Lambda: 10, Tau: 8, MaxSize: 5})
	for _, pr := range p.Run() {
		if len(pr.Nodes) > 5 {
			t.Fatalf("prediction %v exceeds MaxSize", pr.Nodes)
		}
	}
}
