package predict

import "hged/internal/hypergraph"

// hashNodeIDs hashes a sorted node set with 64-bit FNV-1a, folding in the
// length so prefixes hash differently. Callers never rely on uniqueness:
// every use verifies the actual node set on a hash match, so collisions cost
// a comparison, never a false merge.
func hashNodeIDs(nodes []hypergraph.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range nodes {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	h ^= uint64(len(nodes))
	h *= prime64
	return h
}

func nodeSetsEqual(a, b []hypergraph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// nodeSetSet is a collision-checked set of node sets keyed by hash: the
// allocation-light replacement for the previous map[string]struct{} keyed by
// varint-encoded member lists. Inputs must be sorted ascending.
type nodeSetSet struct {
	buckets map[uint64][][]hypergraph.NodeID
}

func newNodeSetSet(sizeHint int) *nodeSetSet {
	return &nodeSetSet{buckets: make(map[uint64][][]hypergraph.NodeID, sizeHint)}
}

func (s *nodeSetSet) contains(nodes []hypergraph.NodeID) bool {
	for _, cand := range s.buckets[hashNodeIDs(nodes)] {
		if nodeSetsEqual(cand, nodes) {
			return true
		}
	}
	return false
}

// insert adds the set (retaining the slice; callers must not mutate it
// afterwards) and reports whether it was absent.
func (s *nodeSetSet) insert(nodes []hypergraph.NodeID) bool {
	k := hashNodeIDs(nodes)
	for _, cand := range s.buckets[k] {
		if nodeSetsEqual(cand, nodes) {
			return false
		}
	}
	s.buckets[k] = append(s.buckets[k], nodes)
	return true
}
