package predict

import (
	"fmt"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

// Explanation justifies one σ(u, v) value: the optimal hypergraph edit path
// between the two ego networks (Section IV-D), with a namer that renders
// ego-local entities in terms of the host graph.
type Explanation struct {
	U, V     hypergraph.NodeID
	Distance int
	Path     *core.Path
	namer    *core.Namer
}

// Lines renders the edit path as human-readable sentences.
func (e *Explanation) Lines() []string { return core.Explain(e.Path, e.namer) }

// String renders the numbered narrative.
func (e *Explanation) String() string {
	return fmt.Sprintf("σ(%d,%d) = %d:\n%s", e.U, e.V, e.Distance, core.ExplainString(e.Path, e.namer))
}

// PredictionExplanation justifies one predicted (λ,τ)-hyperedge: for every
// pair of members, the σ value inside the induced sub-hypergraph G_S and
// (for the loosest pair) the edit path that realizes it.
type PredictionExplanation struct {
	Nodes []hypergraph.NodeID
	// PairSigma maps "i,j" member-index pairs to σ_{G_S} values.
	PairSigma map[[2]int]int
	// WorstPair is the loosest pair of members and WorstPath its edit
	// path — the weakest structural link holding the prediction together.
	WorstPair [2]hypergraph.NodeID
	WorstPath *core.Path
}

// ExplainPrediction computes, inside the induced sub-hypergraph of the
// prediction, every pairwise σ and the edit path of the loosest pair. This
// is the Definition-4 flavored counterpart of Explain: it justifies *the
// hyperedge*, not a full-graph similarity.
func (p *Predictor) ExplainPrediction(pred Prediction) (*PredictionExplanation, error) {
	if len(pred.Nodes) < 2 {
		return nil, fmt.Errorf("predict: prediction %v too small to explain", pred.Nodes)
	}
	sub := p.g.InducedSubgraph(pred.Nodes)
	ex := &PredictionExplanation{
		Nodes:     append([]hypergraph.NodeID(nil), pred.Nodes...),
		PairSigma: make(map[[2]int]int),
	}
	worst := -1
	var worstI, worstJ int
	n := sub.NumNodes()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			res := core.BFS(sub.Ego(hypergraph.NodeID(i)), sub.Ego(hypergraph.NodeID(j)),
				core.Options{MaxExpansions: p.opts.MaxExpansions})
			ex.PairSigma[[2]int{i, j}] = res.Distance
			if res.Distance > worst {
				worst = res.Distance
				worstI, worstJ = i, j
			}
		}
	}
	ex.WorstPair = [2]hypergraph.NodeID{sub.OrigID(hypergraph.NodeID(worstI)), sub.OrigID(hypergraph.NodeID(worstJ))}
	res := core.BFS(sub.Ego(hypergraph.NodeID(worstI)), sub.Ego(hypergraph.NodeID(worstJ)),
		core.Options{MaxExpansions: p.opts.MaxExpansions})
	ex.WorstPath = res.Path
	return ex, nil
}

// Explain computes σ(u, v) together with the optimal edit path between
// EGO(u) and EGO(v), independent of any threshold. This is the "why are
// these two nodes similar" artifact the paper's title promises.
func (p *Predictor) Explain(u, v hypergraph.NodeID) (*Explanation, error) {
	eu, ev := p.g.Ego(u), p.g.Ego(v)
	if p.opts.MaxEgoNodes > 0 && (eu.NumNodes() > p.opts.MaxEgoNodes || ev.NumNodes() > p.opts.MaxEgoNodes) {
		return nil, fmt.Errorf("predict: ego networks of %d and %d exceed the size guard (%d)", u, v, p.opts.MaxEgoNodes)
	}
	res := core.BFS(eu, ev, core.Options{MaxExpansions: p.opts.MaxExpansions})
	if res.Path == nil {
		return nil, fmt.Errorf("predict: no edit path found for (%d,%d)", u, v)
	}
	namer := &core.Namer{
		Node: func(slot int) string {
			if slot < eu.NumNodes() {
				return fmt.Sprintf("node %d", eu.OrigID(hypergraph.NodeID(slot)))
			}
			return fmt.Sprintf("new node #%d", slot)
		},
		Edge: func(slot int) string {
			if slot < eu.NumEdges() {
				return fmt.Sprintf("hyperedge #%d", slot)
			}
			return fmt.Sprintf("new hyperedge #%d", slot)
		},
	}
	return &Explanation{U: u, V: v, Distance: res.Distance, Path: res.Path, namer: namer}, nil
}
