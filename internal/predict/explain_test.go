package predict

import (
	"testing"

	"hged/internal/hypergraph"
)

func TestExplainPrediction(t *testing.T) {
	g := twoCommunities()
	p, _ := New(g, Options{Lambda: 3, Tau: 5})
	preds := p.Run()
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	ex, err := p.ExplainPrediction(preds[0])
	if err != nil {
		t.Fatal(err)
	}
	k := len(ex.Nodes)
	if len(ex.PairSigma) != k*(k-1)/2 {
		t.Fatalf("pair σ count = %d for %d members", len(ex.PairSigma), k)
	}
	// The community is internally isomorphic: all pairwise σ_{G_S} = 0.
	for pair, d := range ex.PairSigma {
		if d != 0 {
			t.Fatalf("pair %v has σ=%d, want 0 for the homogeneous community", pair, d)
		}
	}
	if ex.WorstPath == nil {
		t.Fatal("worst-pair path missing")
	}
	if ex.WorstPath.Cost() != 0 {
		t.Fatalf("worst path cost = %d, want 0", ex.WorstPath.Cost())
	}
}

func TestExplainPredictionWorstPair(t *testing.T) {
	// Prediction with one structurally weaker member: node 4 hangs off the
	// core by a single hyperedge, so its induced ego differs from the
	// others' and the worst pair involves it.
	g := hypergraph.New(5)
	g.AddEdge(1, 0, 1, 2)
	g.AddEdge(1, 0, 1, 3)
	g.AddEdge(1, 2, 3, 4)
	p, _ := New(g, Options{Lambda: 3, Tau: 8})
	ex, err := p.ExplainPrediction(Prediction{Nodes: []hypergraph.NodeID{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	worstHasNode4 := ex.WorstPair[0] == 4 || ex.WorstPair[1] == 4
	if !worstHasNode4 {
		t.Fatalf("worst pair %v should involve the peripheral node 4 (σ map %v)",
			ex.WorstPair, ex.PairSigma)
	}
	if ex.WorstPath.Cost() == 0 {
		t.Fatal("worst pair should need edits")
	}
}

func TestExplainPredictionTooSmall(t *testing.T) {
	g := hypergraph.New(2)
	p, _ := New(g, Options{})
	if _, err := p.ExplainPrediction(Prediction{Nodes: []hypergraph.NodeID{0}}); err == nil {
		t.Fatal("singleton prediction must error")
	}
}
