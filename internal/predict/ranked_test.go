package predict

import (
	"testing"

	"hged/internal/hypergraph"
)

func TestRunRankedOrdering(t *testing.T) {
	// Community A is perfectly cohesive; community B has a label-noisy
	// member, so its prediction should rank looser.
	g := hypergraph.New(0)
	for i := 0; i < 4; i++ {
		g.AddNode(1)
	}
	for i := 0; i < 3; i++ {
		g.AddNode(2)
	}
	g.AddNode(3) // noisy label in community B
	add := func(l hypergraph.Label, base hypergraph.NodeID) {
		g.AddEdge(l, base, base+1, base+2)
		g.AddEdge(l, base, base+1, base+3)
		g.AddEdge(l, base, base+2, base+3)
	}
	add(10, 0)
	add(20, 4)
	p, err := New(g, Options{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	ranked := p.RunRanked()
	if len(ranked) < 2 {
		t.Fatalf("expected ≥ 2 ranked predictions, got %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score > ranked[i].Score {
			t.Fatalf("ranking not ascending: %d then %d", ranked[i-1].Score, ranked[i].Score)
		}
	}
	// The homogeneous community {0,1,2,3} must outrank the noisy one.
	if ranked[0].Nodes[0] != 0 {
		t.Fatalf("tightest prediction should be community A, got %v (score %d)",
			ranked[0].Nodes, ranked[0].Score)
	}
	if ranked[0].Score != 0 {
		t.Fatalf("community A cohesion = %d, want 0 (isomorphic egos)", ranked[0].Score)
	}
	// Scores of emitted predictions are bounded by λτ.
	for _, r := range ranked {
		if r.Score > 15 {
			t.Fatalf("score %d exceeds λτ for %v", r.Score, r.Nodes)
		}
		if r.MeanScore > float64(r.Score) {
			t.Fatalf("mean %v exceeds max %d", r.MeanScore, r.Score)
		}
	}
}

func TestCohesionSingleton(t *testing.T) {
	g := hypergraph.New(2)
	g.AddEdge(1, 0, 1)
	p, _ := New(g, Options{})
	if s, m := p.cohesion([]hypergraph.NodeID{0}); s != 0 || m != 0 {
		t.Fatalf("singleton cohesion = %d, %v", s, m)
	}
}
