package predict

import (
	"sync"
	"testing"
	"time"

	"hged/internal/hypergraph"
)

// TestCtxInternerCollisionFree checks that distinct context node sets never
// share an interned id (collision-checked hashing), that equal sets — even
// via distinct slices — intern to the same id, and that the memo key
// canonicalizes the pair order.
func TestCtxInternerCollisionFree(t *testing.T) {
	c := newPairCache(twoCommunities(), Options{Lambda: 3, Tau: 5, MaxEgoNodes: 64}, nil)
	sets := [][]hypergraph.NodeID{
		{},
		{0},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2},
		{0, 256},   // ID that spans more than one byte
		{1, 65536}, // ...and more than two
	}
	ids := make(map[int32][]hypergraph.NodeID)
	for _, s := range sets {
		id := c.internCtx(s)
		if prev, seen := ids[id]; seen {
			t.Fatalf("interner collision: %v and %v both map to id %d", prev, s, id)
		}
		ids[id] = s
	}
	for _, s := range sets {
		again := append([]hypergraph.NodeID(nil), s...)
		id := c.internCtx(again)
		if !nodeSetsEqual(ids[id], s) {
			t.Fatalf("re-interning %v yielded id %d of %v", s, id, ids[id])
		}
	}
	if ctxPairKey(7, 3, 9) != ctxPairKey(7, 9, 3) {
		t.Fatal("ctxPairKey must canonicalize the pair order")
	}
	if ctxPairKey(7, 3, 9) == ctxPairKey(8, 3, 9) {
		t.Fatal("distinct contexts must produce distinct keys")
	}
}

// TestFullDistanceSingleflight deterministically exercises the in-flight
// deduplication path: a request for a pair that another goroutine is
// already solving must wait for that entry instead of recomputing.
func TestFullDistanceSingleflight(t *testing.T) {
	g := twoCommunities()
	c := newPairCache(g, Options{Lambda: 3, Tau: 5, MaxEgoNodes: 64}, nil)
	key := pairKey(1, 2)

	// Simulate an in-flight computation for (1,2).
	ch := make(chan struct{})
	c.mu.Lock()
	c.fullWait[key] = ch
	c.mu.Unlock()

	got := make(chan int, 1)
	go func() {
		d, _ := c.fullDistance(1, 2, 10)
		got <- d
	}()

	// Wait until the second request parks on the in-flight channel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		deduped := c.deduped
		c.mu.Unlock()
		if deduped == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never deduplicated")
		}
		time.Sleep(time.Millisecond)
	}

	// Publish the "winner's" entry and release the waiter.
	c.mu.Lock()
	c.full[key] = cacheEntry{Dist: 3, Exact: true}
	delete(c.fullWait, key)
	c.mu.Unlock()
	close(ch)

	if d := <-got; d != 3 {
		t.Fatalf("waiter read %d, want the published 3", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.computed != 0 {
		t.Fatalf("waiter recomputed (computed = %d), want 0", c.computed)
	}
	if c.hits != 1 {
		t.Fatalf("waiter should have scored a cache hit, hits = %d", c.hits)
	}
}

// TestSigmaConcurrentDedup hammers one pair from many goroutines and
// checks the cache solved it exactly once.
func TestSigmaConcurrentDedup(t *testing.T) {
	g := twoCommunities()
	p, err := New(g, Options{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	dists := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dists[i], _ = p.Sigma(0, 1, 15)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if dists[i] != dists[0] {
			t.Fatalf("goroutine %d saw σ = %d, goroutine 0 saw %d", i, dists[i], dists[0])
		}
	}
	st := p.Stats()
	if st.PairsComputed != 1 {
		t.Fatalf("one pair requested %d times computed %d times, want 1", goroutines, st.PairsComputed)
	}
	if st.PairsCached != goroutines-1 {
		t.Fatalf("the other %d requests should all end as cache hits, got %d (deduped %d)",
			goroutines-1, st.PairsCached, st.PairsDeduped)
	}
}
