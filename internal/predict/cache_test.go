package predict

import (
	"sync"
	"testing"
	"time"

	"hged/internal/hypergraph"
)

// TestCtxPairKeyCollisionFree checks that distinct (context, pair) inputs
// never share a memo key: the pair suffix is fixed-width, so a context
// string can never bleed into the node IDs (the regression the hand-rolled
// byte packing invited).
func TestCtxPairKeyCollisionFree(t *testing.T) {
	type q struct {
		ctx  string
		u, v hypergraph.NodeID
	}
	queries := []q{
		{"", 0, 1},
		{"", 1, 0}, // canonicalized: same as {"", 0, 1}
		{"", 0, 2},
		{"", 0, 256},   // ID that spans more than one byte
		{"", 1, 65536}, // ...and more than two
		{"a", 0, 1},
		{"a|", 0, 1}, // separator character inside the context
		{"ab", 0, 1},
		{"\x01\x00", 0, 1},
		{"\x01", 0, 257}, // ctx byte vs ID byte confusion probe
	}
	keys := make(map[string]q)
	for _, x := range queries {
		k := ctxPairKey(x.ctx, x.u, x.v)
		prev, seen := keys[k]
		cu, cv := x.u, x.v
		if cu > cv {
			cu, cv = cv, cu
		}
		pu, pv := prev.u, prev.v
		if pu > pv {
			pu, pv = pv, pu
		}
		if seen && !(prev.ctx == x.ctx && pu == cu && pv == cv) {
			t.Fatalf("key collision: %+v and %+v both map to %q", prev, x, k)
		}
		keys[k] = x
	}
	if ctxPairKey("c", 3, 9) != ctxPairKey("c", 9, 3) {
		t.Fatal("ctxPairKey must canonicalize the pair order")
	}
}

// TestFullDistanceSingleflight deterministically exercises the in-flight
// deduplication path: a request for a pair that another goroutine is
// already solving must wait for that entry instead of recomputing.
func TestFullDistanceSingleflight(t *testing.T) {
	g := twoCommunities()
	c := newPairCache(g, Options{Lambda: 3, Tau: 5, MaxEgoNodes: 64}, nil)
	key := pairKey(1, 2)

	// Simulate an in-flight computation for (1,2).
	ch := make(chan struct{})
	c.mu.Lock()
	c.fullWait[key] = ch
	c.mu.Unlock()

	got := make(chan int, 1)
	go func() {
		d, _ := c.fullDistance(1, 2, 10)
		got <- d
	}()

	// Wait until the second request parks on the in-flight channel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		deduped := c.deduped
		c.mu.Unlock()
		if deduped == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never deduplicated")
		}
		time.Sleep(time.Millisecond)
	}

	// Publish the "winner's" entry and release the waiter.
	c.mu.Lock()
	c.full[key] = cacheEntry{Dist: 3, Exact: true}
	delete(c.fullWait, key)
	c.mu.Unlock()
	close(ch)

	if d := <-got; d != 3 {
		t.Fatalf("waiter read %d, want the published 3", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.computed != 0 {
		t.Fatalf("waiter recomputed (computed = %d), want 0", c.computed)
	}
	if c.hits != 1 {
		t.Fatalf("waiter should have scored a cache hit, hits = %d", c.hits)
	}
}

// TestSigmaConcurrentDedup hammers one pair from many goroutines and
// checks the cache solved it exactly once.
func TestSigmaConcurrentDedup(t *testing.T) {
	g := twoCommunities()
	p, err := New(g, Options{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	dists := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dists[i], _ = p.Sigma(0, 1, 15)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if dists[i] != dists[0] {
			t.Fatalf("goroutine %d saw σ = %d, goroutine 0 saw %d", i, dists[i], dists[0])
		}
	}
	st := p.Stats()
	if st.PairsComputed != 1 {
		t.Fatalf("one pair requested %d times computed %d times, want 1", goroutines, st.PairsComputed)
	}
	if st.PairsCached != goroutines-1 {
		t.Fatalf("the other %d requests should all end as cache hits, got %d (deduped %d)",
			goroutines-1, st.PairsCached, st.PairsDeduped)
	}
}
