package predict

import "hged/internal/hypergraph"

// Rebase returns a new Predictor serving graph g — the next published
// generation of the graph this predictor was built on — carrying over every
// σ-cache entry the mutation delta does not invalidate. invalid reports
// whether a node's ego network may have changed between the generations; a
// nil invalid means node ids were renumbered and the whole cache is dropped
// (only the work counters survive, so /metrics stays monotonic).
//
// The receiver is left untouched and keeps answering queries against its own
// generation — in-flight requests finish with a consistent view while new
// requests use the rebased predictor. Entry carry-over is sound because σ is
// a function of ego networks only: a full entry (u,v) is reused when neither
// endpoint is invalid, and a context entry when no member of its interned
// context set is invalid (any edit fully inside the context marks some
// member invalid — see hypergraph.Batch).
func (p *Predictor) Rebase(g *hypergraph.Hypergraph, invalid func(hypergraph.NodeID) bool) *Predictor {
	np := &Predictor{g: g, opts: p.opts, cache: p.cache.rebase(g, invalid)}
	p.mu.Lock()
	np.seeds, np.grown = p.seeds, p.grown
	p.mu.Unlock()
	return np
}

func (c *pairCache) rebase(g *hypergraph.Hypergraph, invalid func(hypergraph.NodeID) bool) *pairCache {
	nc := &pairCache{
		g:          g,
		solver:     c.solver,
		maxEgo:     c.maxEgo,
		maxExp:     c.maxExp,
		metric:     c.metric,
		full:       make(map[uint64]cacheEntry),
		ctx:        make(map[ctxPair]cacheEntry),
		fullWait:   make(map[uint64]chan struct{}),
		ctxWait:    make(map[ctxPair]chan struct{}),
		ctxBuckets: make(map[uint64][]int32),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nc.computed, nc.hits, nc.deduped, nc.expanded = c.computed, c.hits, c.deduped, c.expanded
	if invalid == nil {
		return nc // renumbered: nothing keyed by node id survives
	}
	// The context interner carries over wholesale (ids stay stable across
	// generations); only entries touching an invalid node are dropped.
	nc.ctxSets = append(nc.ctxSets, c.ctxSets...)
	//hgedvet:ignore detrange map-to-map copy of the interner buckets: keys are independent, the result is order-invariant
	for k, ids := range c.ctxBuckets {
		nc.ctxBuckets[k] = append([]int32(nil), ids...)
	}
	ctxValid := make([]bool, len(c.ctxSets))
	for id, set := range c.ctxSets {
		ok := true
		for _, u := range set {
			if invalid(u) {
				ok = false
				break
			}
		}
		ctxValid[id] = ok
	}
	//hgedvet:ignore detrange filtered map-to-map copy: each key is written independently, the result is order-invariant
	for key, e := range c.full {
		u, v := hypergraph.NodeID(key>>32), hypergraph.NodeID(uint32(key))
		if !invalid(u) && !invalid(v) {
			nc.full[key] = e
		}
	}
	//hgedvet:ignore detrange filtered map-to-map copy: each key is written independently, the result is order-invariant
	for key, e := range c.ctx {
		if ctxValid[key.ctx] {
			nc.ctx[key] = e
		}
	}
	return nc
}
