package baseline

import (
	"fmt"
	"math"
	"math/rand"
)

// LogReg is a binary logistic-regression classifier with L2 regularization,
// trained by mini-batch gradient descent. Implemented from scratch on the
// standard library, as the offline module requires.
type LogReg struct {
	Weights []float64
	Bias    float64
	// L2 is the regularization strength λ₂ (default 0.01 when zero at
	// Train time).
	L2 float64
	// LearningRate for gradient descent (default 0.1).
	LearningRate float64
	// Epochs of full passes over the training data (default 200).
	Epochs int
	// Seed for shuffling (default 1).
	Seed int64
}

func sigmoid(z float64) float64 {
	// Clamp to avoid overflow in Exp for extreme logits.
	if z < -30 {
		return 0
	}
	if z > 30 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}

// Train fits the model to feature rows xs with binary labels ys.
func (m *LogReg) Train(xs [][]float64, ys []int) error {
	if len(xs) == 0 {
		return fmt.Errorf("baseline: empty training set")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("baseline: %d rows but %d labels", len(xs), len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return fmt.Errorf("baseline: row %d has %d features, want %d", i, len(x), dim)
		}
	}
	if m.L2 == 0 {
		m.L2 = 0.01
	}
	if m.LearningRate == 0 {
		m.LearningRate = 0.1
	}
	if m.Epochs == 0 {
		m.Epochs = 200
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	m.Weights = make([]float64, dim)
	m.Bias = 0
	order := rng.Perm(len(xs))
	n := float64(len(xs))
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x, y := xs[idx], float64(ys[idx])
			z := m.Bias
			for d, w := range m.Weights {
				z += w * x[d]
			}
			g := sigmoid(z) - y
			lr := m.LearningRate
			for d := range m.Weights {
				m.Weights[d] -= lr * (g*x[d] + m.L2*m.Weights[d]/n)
			}
			m.Bias -= lr * g
		}
	}
	return nil
}

// Predict returns P(y=1 | x).
func (m *LogReg) Predict(x []float64) float64 {
	z := m.Bias
	for d, w := range m.Weights {
		if d < len(x) {
			z += w * x[d]
		}
	}
	return sigmoid(z)
}
