package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// LGROptions configures the LGR baseline (Yoon et al. [20]): a logistic-
// regression classifier with L2 regularization over features of the n-order
// expansion of the hypergraph. The paper's evaluation sets n = 3 and
// extracts 6 features.
type LGROptions struct {
	// Order is the expansion order n (pairwise statistics aggregated over
	// all pairs is the 2-order core; higher orders add density features).
	// Default 3.
	Order int
	// MinSize/MaxSize bound candidate hyperedge sizes (defaults 3 and 10;
	// the paper notes LGR "considers the cases where each candidate
	// hyperedge has cardinality 3, 4, ... 10").
	MinSize, MaxSize int
	// NegativeRatio is the number of sampled negative candidates per
	// positive during training (default 2).
	NegativeRatio int
	// Threshold is the acceptance probability (default 0.5).
	Threshold float64
	// CandidatesPerNode bounds candidate generation per node (default 4).
	CandidatesPerNode int
	// Seed drives sampling (default 1).
	Seed int64
	// L2 regularization strength (default 0.01).
	L2 float64
}

func (o LGROptions) normalize() (LGROptions, error) {
	if o.Order == 0 {
		o.Order = 3
	}
	if o.MinSize == 0 {
		o.MinSize = 3
	}
	if o.MaxSize == 0 {
		o.MaxSize = 10
	}
	if o.NegativeRatio == 0 {
		o.NegativeRatio = 2
	}
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.CandidatesPerNode == 0 {
		o.CandidatesPerNode = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinSize < 2 || o.MaxSize < o.MinSize {
		return o, fmt.Errorf("baseline: invalid LGR size bounds [%d,%d]", o.MinSize, o.MaxSize)
	}
	return o, nil
}

// LGR is the trained hyperedge classifier.
type LGR struct {
	g     *hypergraph.Hypergraph
	nb    *Neighborhoods
	opts  LGROptions
	model LogReg
}

// NewLGR trains the classifier on g's existing hyperedges (positives)
// against sampled corrupted hyperedges (negatives).
func NewLGR(g *hypergraph.Hypergraph, opts LGROptions) (*LGR, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	l := &LGR{g: g, nb: NewNeighborhoods(g), opts: o}
	l.model.Seed = o.Seed
	l.model.L2 = o.L2

	rng := rand.New(rand.NewSource(o.Seed))
	var xs [][]float64
	var ys []int
	n := g.NumNodes()
	for _, e := range g.Edges() {
		if e.Arity() < o.MinSize || e.Arity() > o.MaxSize {
			continue
		}
		xs = append(xs, l.Features(e.Nodes))
		ys = append(ys, 1)
		for k := 0; k < o.NegativeRatio; k++ {
			neg := corrupt(rng, e.Nodes, n)
			xs = append(xs, l.Features(neg))
			ys = append(ys, 0)
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("baseline: no training hyperedges within size bounds [%d,%d]", o.MinSize, o.MaxSize)
	}
	if err := l.model.Train(xs, ys); err != nil {
		return nil, err
	}
	return l, nil
}

// corrupt replaces roughly half the nodes of a positive hyperedge by
// uniformly random nodes, producing a plausible negative.
func corrupt(rng *rand.Rand, nodes []hypergraph.NodeID, n int) []hypergraph.NodeID {
	out := append([]hypergraph.NodeID(nil), nodes...)
	k := (len(out) + 1) / 2
	for i := 0; i < k; i++ {
		out[rng.Intn(len(out))] = hypergraph.NodeID(rng.Intn(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate (corruption may collide).
	w := out[:1]
	for _, v := range out[1:] {
		if v != w[len(w)-1] {
			w = append(w, v)
		}
	}
	return w
}

// Features computes the 6-dimensional feature vector of a candidate node
// set: mean and minimum pairwise Jaccard, mean and minimum pairwise
// Adamic/Adar, mean normalized common-neighbour count, and the n-order
// density (fraction of the candidate's size-≤n sub-edges already present).
func (l *LGR) Features(nodes []hypergraph.NodeID) []float64 {
	if len(nodes) < 2 {
		return make([]float64, 6)
	}
	var sumJ, minJ, sumA, minA, sumC float64
	minJ, minA = 2, 1e9
	pairs := 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			jv := l.nb.Jaccard(nodes[i], nodes[j])
			av := l.nb.AdamicAdar(nodes[i], nodes[j])
			cv := l.nb.CommonNeighbors(nodes[i], nodes[j])
			du := float64(l.nb.Degree(nodes[i]) + l.nb.Degree(nodes[j]) + 2)
			if du > 0 {
				cv = 2 * cv / du
			}
			sumJ += jv
			sumA += av
			sumC += cv
			if jv < minJ {
				minJ = jv
			}
			if av < minA {
				minA = av
			}
			pairs++
		}
	}
	fp := float64(pairs)
	return []float64{
		sumJ / fp, minJ,
		sumA / fp, minA,
		sumC / fp,
		l.subEdgeDensity(nodes),
	}
}

// subEdgeDensity is the fraction of the candidate's nodes' incident
// hyperedges (of size ≤ Order+1) fully contained in the candidate — the
// n-order expansion signal.
func (l *LGR) subEdgeDensity(nodes []hypergraph.NodeID) float64 {
	in := make(map[hypergraph.NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		in[v] = struct{}{}
	}
	seen := make(map[hypergraph.EdgeID]struct{})
	contained, touched := 0, 0
	for _, v := range nodes {
		for _, e := range l.g.IncidentEdges(v) {
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			edge := l.g.Edge(e)
			if edge.Arity() > l.opts.Order+1 {
				continue
			}
			touched++
			inside := true
			for _, u := range edge.Nodes {
				if _, ok := in[u]; !ok {
					inside = false
					break
				}
			}
			if inside {
				contained++
			}
		}
	}
	if touched == 0 {
		return 0
	}
	return float64(contained) / float64(touched)
}

// Score returns the model's probability that the node set forms a
// hyperedge.
func (l *LGR) Score(nodes []hypergraph.NodeID) float64 {
	return l.model.Predict(l.Features(nodes))
}

// Predict generates candidate node sets and returns those scoring at or
// above the acceptance threshold, as HEP-compatible predictions sorted by
// node set. Candidates come from two generators: (a) existing hyperedges
// with one member swapped for a non-member neighbor, and (b) per-node
// neighborhood prefixes of each cardinality in [MinSize, MaxSize].
func (l *LGR) Predict() []predict.Prediction {
	rng := rand.New(rand.NewSource(l.opts.Seed + 1))
	existing := make(map[string]struct{}, l.g.NumEdges())
	for _, e := range l.g.Edges() {
		existing[keyOf(e.Nodes)] = struct{}{}
	}
	seen := make(map[string]struct{})
	var out []predict.Prediction

	consider := func(nodes []hypergraph.NodeID, seed hypergraph.NodeID) {
		if len(nodes) < l.opts.MinSize || len(nodes) > l.opts.MaxSize {
			return
		}
		k := keyOf(nodes)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		if _, ex := existing[k]; ex {
			return
		}
		if l.Score(nodes) >= l.opts.Threshold {
			out = append(out, predict.Prediction{Nodes: nodes, Seed: seed})
		}
	}

	// (a) Swap one member of each training hyperedge for a neighbor.
	for _, e := range l.g.Edges() {
		if e.Arity() < l.opts.MinSize || e.Arity() > l.opts.MaxSize {
			continue
		}
		for trial := 0; trial < l.opts.CandidatesPerNode; trial++ {
			i := rng.Intn(e.Arity())
			pivot := e.Nodes[(i+1)%e.Arity()]
			nbrs := l.g.Neighbors(pivot)
			if len(nbrs) == 0 {
				continue
			}
			repl := nbrs[rng.Intn(len(nbrs))]
			if e.Contains(repl) {
				continue
			}
			cand := append([]hypergraph.NodeID(nil), e.Nodes...)
			cand[i] = repl
			sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
			if hasDup(cand) {
				continue
			}
			consider(cand, pivot)
		}
	}
	// (b) Neighborhood prefixes per node.
	for v := 0; v < l.g.NumNodes(); v++ {
		nbrs := l.g.Neighbors(hypergraph.NodeID(v)) // includes v, sorted
		for size := l.opts.MinSize; size <= l.opts.MaxSize && size <= len(nbrs); size++ {
			cand := append([]hypergraph.NodeID(nil), nbrs[:size]...)
			consider(cand, hypergraph.NodeID(v))
		}
	}

	sort.Slice(out, func(i, j int) bool { return lessSets(out[i].Nodes, out[j].Nodes) })
	return out
}

func hasDup(sorted []hypergraph.NodeID) bool {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}

func keyOf(nodes []hypergraph.NodeID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, v := range nodes {
		x := uint32(v)
		for x >= 0x80 {
			b = append(b, byte(x)|0x80)
			x >>= 7
		}
		b = append(b, byte(x))
	}
	return string(b)
}

func lessSets(a, b []hypergraph.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
