// Package baseline implements the comparison methods of the paper's
// evaluation: the classic topological similarity indices (Section II and
// III-A), the JS predictor (Jaccard similarity driving the HEP framework),
// and LGR, a from-scratch reimplementation of Yoon et al.'s logistic-
// regression hyperedge classifier over n-order expansion features [20].
package baseline

import (
	"math"

	"hged/internal/hypergraph"
)

// neighborSet returns NEI(v) without v itself, as a set. The classic
// indices are defined over proper neighborhoods.
func neighborSet(g *hypergraph.Hypergraph, v hypergraph.NodeID) map[hypergraph.NodeID]struct{} {
	out := make(map[hypergraph.NodeID]struct{})
	for _, u := range g.Neighbors(v) {
		if u != v {
			out[u] = struct{}{}
		}
	}
	return out
}

func interCount(a, b map[hypergraph.NodeID]struct{}) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for v := range a {
		if _, ok := b[v]; ok {
			n++
		}
	}
	return n
}

// CommonNeighbors returns |Γ(u) ∩ Γ(v)|.
func CommonNeighbors(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	return float64(interCount(neighborSet(g, u), neighborSet(g, v)))
}

// Jaccard returns |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)| (0 when both are empty).
func Jaccard(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	inter := interCount(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine returns |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)|·|Γ(v)|) (the Salton index).
func Cosine(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(interCount(a, b)) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// HubPromoted returns |Γ(u) ∩ Γ(v)| / min(|Γ(u)|, |Γ(v)|) [6].
func HubPromoted(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	return float64(interCount(a, b)) / float64(m)
}

// AdamicAdar returns Σ_{w ∈ Γ(u)∩Γ(v)} 1/log|Γ(w)| [7]. Neighbors of degree
// ≤ 1 contribute 1/log 2.
func AdamicAdar(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for w := range a {
		if _, ok := b[w]; !ok {
			continue
		}
		deg := len(neighborSet(g, w))
		if deg < 2 {
			deg = 2
		}
		sum += 1 / math.Log(float64(deg))
	}
	return sum
}

// ResourceAllocation returns Σ_{w ∈ Γ(u)∩Γ(v)} 1/|Γ(w)| [8].
func ResourceAllocation(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for w := range a {
		if _, ok := b[w]; !ok {
			continue
		}
		if deg := len(neighborSet(g, w)); deg > 0 {
			sum += 1 / float64(deg)
		}
	}
	return sum
}

// LeichtHolmeNewman returns |Γ(u) ∩ Γ(v)| / (|Γ(u)|·|Γ(v)|) [9].
func LeichtHolmeNewman(g *hypergraph.Hypergraph, u, v hypergraph.NodeID) float64 {
	a, b := neighborSet(g, u), neighborSet(g, v)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(interCount(a, b)) / (float64(len(a)) * float64(len(b)))
}
