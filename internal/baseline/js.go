package baseline

import (
	"math"

	"hged/internal/hypergraph"
	"hged/internal/predict"
)

// jsScale converts the Jaccard similarity s ∈ [0,1] to an integer distance
// round((1−s)·jsScale), so the HEP framework's integer thresholds apply.
const jsScale = 100

// JSOptions configures the JS baseline. MinSim is the Jaccard similarity
// threshold (the paper sets 0.8: "the ratio between the intersection and the
// union of the neighbor nodes is no less than 0.8"); pairs of nodes within
// λ hops may be up to λ times more distant, mirroring the λ·τ relaxation of
// Definition 4.
type JSOptions struct {
	Lambda           int     // λ ≥ 1, default 3
	MinSim           float64 // default 0.8
	MinSize, MaxSize int     // emitted hyperedge size bounds, defaults 2 and 8
	IncludeExisting  bool
}

// NewJS builds the paper's JS baseline: the HEP prediction framework with
// node dissimilarity (1 − Jaccard) in place of HGED.
func NewJS(g *hypergraph.Hypergraph, opts JSOptions) (*predict.Predictor, error) {
	if opts.Lambda == 0 {
		opts.Lambda = 3
	}
	if opts.MinSim == 0 {
		opts.MinSim = 0.8
	}
	tau := int(math.Round((1 - opts.MinSim) * jsScale))
	if tau <= 0 {
		tau = 1
	}
	nb := NewNeighborhoods(g)
	metric := func(_ *hypergraph.Hypergraph, u, v hypergraph.NodeID, ceiling int) (int, bool) {
		d := int(math.Round((1 - nb.Jaccard(u, v)) * jsScale))
		return d, d <= ceiling
	}
	return predict.NewWithMetric(g, predict.Options{
		Lambda:          opts.Lambda,
		Tau:             tau,
		MinSize:         opts.MinSize,
		MaxSize:         opts.MaxSize,
		IncludeExisting: opts.IncludeExisting,
	}, metric)
}
