package baseline

import (
	"math"

	"hged/internal/hypergraph"
)

// Neighborhoods precomputes every node's proper neighbor set once, making
// repeated similarity evaluations O(|Γ(u)| + |Γ(v)|) instead of rebuilding
// sets from the incidence lists on every call. The structure is immutable
// after construction and therefore safe for concurrent readers.
type Neighborhoods struct {
	g    *hypergraph.Hypergraph
	sets []map[hypergraph.NodeID]struct{}
}

// NewNeighborhoods builds the cache for g.
func NewNeighborhoods(g *hypergraph.Hypergraph) *Neighborhoods {
	nb := &Neighborhoods{g: g, sets: make([]map[hypergraph.NodeID]struct{}, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		nb.sets[v] = neighborSet(g, hypergraph.NodeID(v))
	}
	return nb
}

// Set returns Γ(v) (without v itself). Callers must not mutate it.
func (nb *Neighborhoods) Set(v hypergraph.NodeID) map[hypergraph.NodeID]struct{} {
	return nb.sets[v]
}

// Degree returns |Γ(v)|.
func (nb *Neighborhoods) Degree(v hypergraph.NodeID) int { return len(nb.sets[v]) }

// CommonNeighbors returns |Γ(u) ∩ Γ(v)|.
func (nb *Neighborhoods) CommonNeighbors(u, v hypergraph.NodeID) float64 {
	return float64(interCount(nb.sets[u], nb.sets[v]))
}

// Jaccard returns the Jaccard similarity of the two neighborhoods.
func (nb *Neighborhoods) Jaccard(u, v hypergraph.NodeID) float64 {
	a, b := nb.sets[u], nb.sets[v]
	inter := interCount(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// AdamicAdar returns the Adamic/Adar index using cached degrees.
func (nb *Neighborhoods) AdamicAdar(u, v hypergraph.NodeID) float64 {
	a, b := nb.sets[u], nb.sets[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for w := range a {
		if _, ok := b[w]; !ok {
			continue
		}
		deg := len(nb.sets[w])
		if deg < 2 {
			deg = 2
		}
		sum += 1 / math.Log(float64(deg))
	}
	return sum
}

// ResourceAllocation returns the resource-allocation index using cached
// degrees.
func (nb *Neighborhoods) ResourceAllocation(u, v hypergraph.NodeID) float64 {
	a, b := nb.sets[u], nb.sets[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for w := range a {
		if _, ok := b[w]; !ok {
			continue
		}
		if deg := len(nb.sets[w]); deg > 0 {
			sum += 1 / float64(deg)
		}
	}
	return sum
}
