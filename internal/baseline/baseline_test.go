package baseline

import (
	"math"
	"math/rand"
	"testing"

	"hged/internal/hypergraph"
)

// simple builds nodes {0,1,2,3} with hyperedges {0,1,2} and {1,2,3}, giving
// Γ(0) = {1,2}, Γ(1) = {0,2,3}, Γ(2) = {0,1,3}, Γ(3) = {1,2}.
func simple() *hypergraph.Hypergraph {
	g := hypergraph.New(4)
	g.AddEdge(1, 0, 1, 2)
	g.AddEdge(1, 1, 2, 3)
	return g
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSimilarityIndicesHandComputed(t *testing.T) {
	g := simple()
	if got := CommonNeighbors(g, 0, 3); got != 2 {
		t.Fatalf("CN(0,3) = %v, want 2", got)
	}
	if got := CommonNeighbors(g, 0, 1); got != 1 {
		t.Fatalf("CN(0,1) = %v, want 1", got)
	}
	if got := Jaccard(g, 0, 3); !almost(got, 1) {
		t.Fatalf("J(0,3) = %v, want 1", got)
	}
	if got := Jaccard(g, 0, 1); !almost(got, 0.25) {
		t.Fatalf("J(0,1) = %v, want 0.25", got)
	}
	if got := Cosine(g, 0, 3); !almost(got, 1) {
		t.Fatalf("cosine(0,3) = %v, want 1", got)
	}
	if got := HubPromoted(g, 0, 3); !almost(got, 1) {
		t.Fatalf("HPI(0,3) = %v, want 1", got)
	}
	if got := LeichtHolmeNewman(g, 0, 3); !almost(got, 0.5) {
		t.Fatalf("LHN(0,3) = %v, want 0.5", got)
	}
	if got := AdamicAdar(g, 0, 3); !almost(got, 2/math.Log(3)) {
		t.Fatalf("AA(0,3) = %v, want %v", got, 2/math.Log(3))
	}
	if got := ResourceAllocation(g, 0, 3); !almost(got, 2.0/3.0) {
		t.Fatalf("RA(0,3) = %v, want 2/3", got)
	}
}

func TestSimilarityIsolatedNodes(t *testing.T) {
	g := hypergraph.New(3)
	g.AddEdge(1, 0, 1)
	for name, f := range map[string]func(*hypergraph.Hypergraph, hypergraph.NodeID, hypergraph.NodeID) float64{
		"CN": CommonNeighbors, "J": Jaccard, "cos": Cosine,
		"HPI": HubPromoted, "AA": AdamicAdar, "RA": ResourceAllocation, "LHN": LeichtHolmeNewman,
	} {
		if got := f(g, 0, 2); got != 0 {
			t.Fatalf("%s with isolated node = %v, want 0", name, got)
		}
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	g := simple()
	for u := hypergraph.NodeID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if !almost(Jaccard(g, u, v), Jaccard(g, v, u)) {
				t.Fatalf("Jaccard asymmetric at (%d,%d)", u, v)
			}
			if !almost(AdamicAdar(g, u, v), AdamicAdar(g, v, u)) {
				t.Fatalf("AA asymmetric at (%d,%d)", u, v)
			}
		}
	}
}

func TestLogRegSeparable(t *testing.T) {
	// y = 1 iff x0 > 0.5, clean separation.
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		y := 0
		if x > 0.5 {
			y = 1
		}
		xs = append(xs, []float64{x, rng.Float64()})
		ys = append(ys, y)
	}
	var m LogReg
	if err := m.Train(xs, ys); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.9, 0.5}); p < 0.7 {
		t.Fatalf("P(positive) = %v, want high", p)
	}
	if p := m.Predict([]float64{0.1, 0.5}); p > 0.3 {
		t.Fatalf("P(negative) = %v, want low", p)
	}
}

func TestLogRegErrors(t *testing.T) {
	var m LogReg
	if err := m.Train(nil, nil); err == nil {
		t.Fatal("empty training set must fail")
	}
	if err := m.Train([][]float64{{1}}, []int{1, 0}); err == nil {
		t.Fatal("row/label mismatch must fail")
	}
	if err := m.Train([][]float64{{1, 2}, {1}}, []int{1, 0}); err == nil {
		t.Fatal("ragged rows must fail")
	}
}

func TestSigmoidClamps(t *testing.T) {
	if sigmoid(-1000) != 0 || sigmoid(1000) != 1 {
		t.Fatal("sigmoid must clamp extremes")
	}
	if !almost(sigmoid(0), 0.5) {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

// communities builds two 4-node communities with all-but-one triple each,
// mirroring the predict package's fixture.
func communities() *hypergraph.Hypergraph {
	g := hypergraph.New(0)
	for i := 0; i < 8; i++ {
		l := hypergraph.Label(1)
		if i >= 4 {
			l = 2
		}
		g.AddNode(l)
	}
	add := func(l hypergraph.Label, b hypergraph.NodeID) {
		g.AddEdge(l, b, b+1, b+2)
		g.AddEdge(l, b, b+1, b+3)
		g.AddEdge(l, b, b+2, b+3)
	}
	add(10, 0)
	add(20, 4)
	return g
}

func TestJSPredictsWithinCommunities(t *testing.T) {
	g := communities()
	p, err := NewJS(g, JSOptions{Lambda: 3, MinSim: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Run()
	if len(preds) == 0 {
		t.Fatal("JS found nothing")
	}
	for _, pr := range preds {
		side := pr.Nodes[0] < 4
		for _, v := range pr.Nodes {
			if (v < 4) != side {
				t.Fatalf("JS prediction crosses communities: %v", pr.Nodes)
			}
		}
	}
}

func TestJSDefaultThreshold(t *testing.T) {
	g := communities()
	if _, err := NewJS(g, JSOptions{}); err != nil {
		t.Fatal(err)
	}
	// MinSim very close to 1 still yields τ ≥ 1.
	if _, err := NewJS(g, JSOptions{MinSim: 0.999}); err != nil {
		t.Fatal(err)
	}
}

func TestLGRTrainsAndScores(t *testing.T) {
	g := communities()
	l, err := NewLGR(g, LGROptions{MinSize: 3, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The held-out triple {1,2,3} should score higher than a random
	// cross-community set.
	pos := l.Score([]hypergraph.NodeID{1, 2, 3})
	neg := l.Score([]hypergraph.NodeID{0, 4, 7})
	if pos <= neg {
		t.Fatalf("LGR score(missing triple)=%v ≤ score(cross set)=%v", pos, neg)
	}
}

func TestLGRPredictFindsMissingTriples(t *testing.T) {
	g := communities()
	l, err := NewLGR(g, LGROptions{MinSize: 3, MaxSize: 4, CandidatesPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	preds := l.Predict()
	if len(preds) == 0 {
		t.Fatal("LGR predicted nothing")
	}
	// LGR's density feature favors whole communities; every prediction
	// must stay inside one community, and the community supersets of the
	// missing triples must be found.
	foundCommunity := false
	for _, pr := range preds {
		side := pr.Nodes[0] < 4
		for _, v := range pr.Nodes {
			if (v < 4) != side {
				t.Fatalf("LGR prediction crosses communities: %v", pr.Nodes)
			}
		}
		k := keyOf(pr.Nodes)
		if k == keyOf([]hypergraph.NodeID{0, 1, 2, 3}) || k == keyOf([]hypergraph.NodeID{4, 5, 6, 7}) {
			foundCommunity = true
		}
	}
	if !foundCommunity {
		t.Fatalf("community sets not among %d predictions", len(preds))
	}
}

func TestLGRFeatureVectorShape(t *testing.T) {
	g := communities()
	l, err := NewLGR(g, LGROptions{MinSize: 3, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := l.Features([]hypergraph.NodeID{0, 1, 2})
	if len(f) != 6 {
		t.Fatalf("feature dim = %d, want 6", len(f))
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is %v", i, v)
		}
	}
	if len(l.Features([]hypergraph.NodeID{0})) != 6 {
		t.Fatal("singleton features should be zero-valued 6-vector")
	}
}

func TestLGROptionValidation(t *testing.T) {
	g := communities()
	if _, err := NewLGR(g, LGROptions{MinSize: 6, MaxSize: 3}); err == nil {
		t.Fatal("invalid size bounds must fail")
	}
	empty := hypergraph.New(5)
	if _, err := NewLGR(empty, LGROptions{}); err == nil {
		t.Fatal("no training hyperedges must fail")
	}
}
