// Package viz renders hypergraphs and hypergraph edit paths as Graphviz
// DOT, using the bipartite representation of Fig. 1(b): round nodes for the
// hypergraph's nodes, boxes for hyperedges, and an undirected edge for each
// incidence.
package viz

import (
	"fmt"
	"io"
	"sort"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

// sortedKeys returns the keys of an int-keyed map in ascending order, so
// rendering loops are deterministic regardless of map iteration order.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Options controls rendering. Nil callbacks fall back to numeric names.
type Options struct {
	// GraphName is the DOT graph identifier (default "hypergraph").
	GraphName string
	// NodeName, EdgeName and LabelName render entities. Optional.
	NodeName  func(hypergraph.NodeID) string
	EdgeName  func(hypergraph.EdgeID) string
	LabelName func(hypergraph.Label) string
	// Highlight marks a node set (e.g. a predicted hyperedge) with a
	// doubled border.
	Highlight []hypergraph.NodeID
}

func (o *Options) graphName() string {
	if o != nil && o.GraphName != "" {
		return o.GraphName
	}
	return "hypergraph"
}

func (o *Options) nodeName(v hypergraph.NodeID) string {
	if o != nil && o.NodeName != nil {
		return o.NodeName(v)
	}
	return fmt.Sprintf("u%d", v)
}

func (o *Options) edgeName(e hypergraph.EdgeID) string {
	if o != nil && o.EdgeName != nil {
		return o.EdgeName(e)
	}
	return fmt.Sprintf("E%d", e)
}

func (o *Options) labelName(l hypergraph.Label) string {
	if o != nil && o.LabelName != nil {
		return o.LabelName(l)
	}
	if l == hypergraph.NoLabel {
		return ""
	}
	return fmt.Sprintf("%d", l)
}

// colorFor assigns a deterministic fill color per label.
func colorFor(l hypergraph.Label) string {
	palette := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
		"#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
	}
	if l == hypergraph.NoLabel {
		return "#eeeeee"
	}
	return palette[int(l)%len(palette)]
}

// WriteDOT renders g in the bipartite style.
func WriteDOT(w io.Writer, g *hypergraph.Hypergraph, opts *Options) error {
	highlight := make(map[hypergraph.NodeID]bool)
	if opts != nil {
		for _, v := range opts.Highlight {
			highlight[v] = true
		}
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  overlap=false;\n", opts.graphName()); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := hypergraph.NodeID(v)
		l := g.NodeLabel(id)
		peripheries := 1
		if highlight[id] {
			peripheries = 2
		}
		label := opts.nodeName(id)
		if ln := opts.labelName(l); ln != "" {
			label += "\\n" + ln
		}
		if _, err := fmt.Fprintf(w, "  n%d [shape=ellipse, style=filled, fillcolor=%q, peripheries=%d, label=%q];\n",
			v, colorFor(l), peripheries, label); err != nil {
			return err
		}
	}
	for e, edge := range g.Edges() {
		label := opts.edgeName(hypergraph.EdgeID(e))
		if ln := opts.labelName(edge.Label); ln != "" {
			label += "\\n" + ln
		}
		if _, err := fmt.Fprintf(w, "  e%d [shape=box, style=filled, fillcolor=%q, label=%q];\n",
			e, colorFor(edge.Label), label); err != nil {
			return err
		}
		for _, v := range edge.Nodes {
			if _, err := fmt.Fprintf(w, "  n%d -- e%d;\n", v, e); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteEditPathDOT renders the source hypergraph with the edit path's
// operations annotated: entities that will be deleted are drawn dashed and
// grey, relabeled entities carry a "→ newlabel" suffix, and reductions are
// drawn as dotted incidences. Inserted entities appear with dashed green
// borders.
func WriteEditPathDOT(w io.Writer, g *hypergraph.Hypergraph, path *core.Path, opts *Options) error {
	// Classify slots by the operations applied to them.
	nodeDeleted := make(map[int]bool)
	nodeRelabel := make(map[int]hypergraph.Label)
	nodeInserted := make(map[int]hypergraph.Label)
	edgeDeleted := make(map[int]bool)
	edgeRelabel := make(map[int]hypergraph.Label)
	edgeInserted := make(map[int]hypergraph.Label)
	type incidence struct{ node, edge int }
	reduced := make(map[incidence]bool)
	extended := make(map[incidence]bool)
	if path != nil {
		for _, op := range path.Ops {
			switch op.Kind {
			case core.OpNodeDelete:
				nodeDeleted[op.Node] = true
			case core.OpNodeRelabel:
				nodeRelabel[op.Node] = op.Label
			case core.OpNodeInsert:
				nodeInserted[op.Node] = op.Label
			case core.OpEdgeDelete:
				edgeDeleted[op.Edge] = true
			case core.OpEdgeRelabel:
				edgeRelabel[op.Edge] = op.Label
			case core.OpEdgeInsert:
				edgeInserted[op.Edge] = op.Label
			case core.OpEdgeReduce:
				reduced[incidence{op.Node, op.Edge}] = true
			case core.OpEdgeExtend:
				extended[incidence{op.Node, op.Edge}] = true
			}
		}
	}

	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  overlap=false;\n", opts.graphName()+"-edit"); err != nil {
		return err
	}
	writeNode := func(slot int, l hypergraph.Label, inserted bool) error {
		label := opts.nodeName(hypergraph.NodeID(slot))
		if ln := opts.labelName(l); ln != "" {
			label += "\\n" + ln
		}
		style := "filled"
		color := "black"
		switch {
		case nodeDeleted[slot]:
			style = "filled,dashed"
			color = "grey"
		case inserted:
			style = "filled,dashed"
			color = "green"
		}
		if nl, ok := nodeRelabel[slot]; ok {
			label += " → " + opts.labelName(nl)
		}
		_, err := fmt.Fprintf(w, "  n%d [shape=ellipse, style=%q, color=%q, fillcolor=%q, label=%q];\n",
			slot, style, color, colorFor(l), label)
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if err := writeNode(v, g.NodeLabel(hypergraph.NodeID(v)), false); err != nil {
			return err
		}
	}
	for _, slot := range sortedKeys(nodeInserted) {
		if err := writeNode(slot, nodeInserted[slot], true); err != nil {
			return err
		}
	}
	writeEdge := func(slot int, l hypergraph.Label, members []hypergraph.NodeID, inserted bool) error {
		label := opts.edgeName(hypergraph.EdgeID(slot))
		if ln := opts.labelName(l); ln != "" {
			label += "\\n" + ln
		}
		if nl, ok := edgeRelabel[slot]; ok {
			label += " → " + opts.labelName(nl)
		}
		style := "filled"
		color := "black"
		switch {
		case edgeDeleted[slot]:
			style = "filled,dashed"
			color = "grey"
		case inserted:
			style = "filled,dashed"
			color = "green"
		}
		if _, err := fmt.Fprintf(w, "  e%d [shape=box, style=%q, color=%q, fillcolor=%q, label=%q];\n",
			slot, style, color, colorFor(l), label); err != nil {
			return err
		}
		for _, v := range members {
			attrs := ""
			if reduced[incidence{int(v), slot}] {
				attrs = " [style=dotted, color=grey]"
			}
			if _, err := fmt.Fprintf(w, "  n%d -- e%d%s;\n", v, slot, attrs); err != nil {
				return err
			}
		}
		return nil
	}
	for e, edge := range g.Edges() {
		if err := writeEdge(e, edge.Label, edge.Nodes, false); err != nil {
			return err
		}
	}
	for _, slot := range sortedKeys(edgeInserted) {
		if err := writeEdge(slot, edgeInserted[slot], nil, true); err != nil {
			return err
		}
	}
	// Render extensions in (node, edge) order: DOT output is compared
	// byte-for-byte by golden tests and must not depend on map order.
	incs := make([]incidence, 0, len(extended))
	for inc := range extended {
		incs = append(incs, inc)
	}
	sort.Slice(incs, func(i, j int) bool {
		if incs[i].node != incs[j].node {
			return incs[i].node < incs[j].node
		}
		return incs[i].edge < incs[j].edge
	})
	for _, inc := range incs {
		if _, err := fmt.Fprintf(w, "  n%d -- e%d [style=dashed, color=green];\n", inc.node, inc.edge); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
