package viz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update. Byte-exact comparison is the point: DOT rendering is part
// of the explainability surface and must be reproducible run to run.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/viz -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWriteDOTGolden(t *testing.T) {
	g := hypergraph.New(3)
	g.SetNodeLabel(0, 1)
	g.SetNodeLabel(1, 2)
	g.SetNodeLabel(2, 1)
	g.AddEdge(5, 0, 1)
	g.AddEdge(6, 1, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, &Options{GraphName: "golden", Highlight: []hypergraph.NodeID{2}}); err != nil {
		t.Fatal(err)
	}
	golden(t, "write_dot", buf.Bytes())
}

func TestWriteEditPathDOTGolden(t *testing.T) {
	// A source/target pair whose optimal path exercises every annotation
	// family: node insertion, edge insertion, extension, and relabel.
	src := hypergraph.NewLabeled([]hypergraph.Label{1, 2})
	src.AddEdge(5, 0, 1)
	tgt := hypergraph.NewLabeled([]hypergraph.Label{1, 3, 4})
	tgt.AddEdge(5, 0, 1)
	tgt.AddEdge(7, 1, 2)
	_, path := core.DistanceWithPath(src, tgt)
	if path == nil {
		t.Fatal("no edit path")
	}
	var buf bytes.Buffer
	if err := WriteEditPathDOT(&buf, src, path, &Options{GraphName: "golden"}); err != nil {
		t.Fatal(err)
	}
	golden(t, "write_edit_path_dot", buf.Bytes())
}

// TestEditPathDOTDeterministic renders a path with many inserted entities
// repeatedly and requires byte-identical output. Before the detrange fixes
// the inserted-slot and extension loops iterated maps, so slot order — and
// the DOT bytes — changed run to run.
func TestEditPathDOTDeterministic(t *testing.T) {
	empty := hypergraph.New(0)
	tgt := hypergraph.NewLabeled([]hypergraph.Label{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 0; i < 9; i++ {
		tgt.AddEdge(hypergraph.Label(20+i), hypergraph.NodeID(i), hypergraph.NodeID(i+1))
	}
	_, path := core.DistanceWithPath(empty, tgt)
	if path == nil {
		t.Fatal("no edit path")
	}
	var first bytes.Buffer
	if err := WriteEditPathDOT(&first, empty, path, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := WriteEditPathDOT(&again, empty, path, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs from first render", i+2)
		}
	}
}
