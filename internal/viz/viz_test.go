package viz

import (
	"bytes"
	"strings"
	"testing"

	"hged/internal/core"
	"hged/internal/hypergraph"
)

func TestWriteDOTBasics(t *testing.T) {
	g := hypergraph.Fig1()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph \"hypergraph\" {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("malformed DOT:\n%s", out)
	}
	// 8 node declarations, 4 edge boxes, 13 incidences.
	if got := strings.Count(out, "shape=ellipse"); got != 8 {
		t.Fatalf("node declarations = %d, want 8", got)
	}
	if got := strings.Count(out, "shape=box"); got != 4 {
		t.Fatalf("edge declarations = %d, want 4", got)
	}
	if got := strings.Count(out, " -- "); got != 13 {
		t.Fatalf("incidences = %d, want 13", got)
	}
}

func TestWriteDOTNamersAndHighlight(t *testing.T) {
	g := hypergraph.New(2)
	g.AddEdge(5, 0, 1)
	var buf bytes.Buffer
	opts := &Options{
		GraphName: "demo",
		NodeName:  func(v hypergraph.NodeID) string { return "person" },
		EdgeName:  func(e hypergraph.EdgeID) string { return "meeting" },
		LabelName: func(l hypergraph.Label) string { return "topic" },
		Highlight: []hypergraph.NodeID{1},
	}
	if err := WriteDOT(&buf, g, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"\"demo\"", "person", "meeting", "topic", "peripheries=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteEditPathDOT(t *testing.T) {
	g := hypergraph.Fig1()
	egoU4, egoU5 := g.Ego(hypergraph.U(4)), g.Ego(hypergraph.U(5))
	_, path := core.DistanceWithPath(egoU4, egoU5)
	var buf bytes.Buffer
	if err := WriteEditPathDOT(&buf, egoU4, path, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The optimal path deletes a node and a hyperedge: both must render
	// dashed/grey, and reductions dotted.
	if !strings.Contains(out, "filled,dashed") {
		t.Fatalf("no dashed deletions in:\n%s", out)
	}
	if !strings.Contains(out, "style=dotted") {
		t.Fatalf("no dotted reductions in:\n%s", out)
	}
	if !strings.Contains(out, "→") {
		t.Fatalf("no relabel annotation in:\n%s", out)
	}
}

func TestWriteEditPathDOTWithInsertions(t *testing.T) {
	empty := hypergraph.New(0)
	target := hypergraph.NewLabeled([]hypergraph.Label{1, 2})
	target.AddEdge(7, 0, 1)
	_, path := core.DistanceWithPath(empty, target)
	var buf bytes.Buffer
	if err := WriteEditPathDOT(&buf, empty, path, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "color=\"green\"") {
		t.Fatalf("insertions should render green:\n%s", out)
	}
	if !strings.Contains(out, "style=dashed, color=green") {
		t.Fatalf("extensions should render dashed green:\n%s", out)
	}
}

func TestWriteEditPathDOTNilPath(t *testing.T) {
	g := hypergraph.New(1)
	var buf bytes.Buffer
	if err := WriteEditPathDOT(&buf, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n0") {
		t.Fatal("nil path should still render the graph")
	}
}
