// Package names provides a string-keyed builder over the integer-indexed
// hypergraph model: nodes, labels and hyperedges are addressed by names,
// which the builder interns into dense ids. It is the convenient front door
// for hand-authored graphs (examples, tools, tests).
package names

import (
	"fmt"
	"sort"

	"hged/internal/hypergraph"
)

// Builder accumulates a named hypergraph. The zero value is not ready;
// use NewBuilder.
type Builder struct {
	g          *hypergraph.Hypergraph
	nodeByName map[string]hypergraph.NodeID
	nodeNames  []string
	labelByKey map[string]hypergraph.Label
	labelNames map[hypergraph.Label]string
	edgeNames  []string
}

// NewBuilder returns an empty named-hypergraph builder.
func NewBuilder() *Builder {
	return &Builder{
		g:          hypergraph.New(0),
		nodeByName: make(map[string]hypergraph.NodeID),
		labelByKey: make(map[string]hypergraph.Label),
		labelNames: make(map[hypergraph.Label]string),
	}
}

// Label interns a label name and returns its id. The empty name is the
// zero label.
func (b *Builder) Label(name string) hypergraph.Label {
	if name == "" {
		return hypergraph.NoLabel
	}
	if l, ok := b.labelByKey[name]; ok {
		return l
	}
	l := hypergraph.Label(len(b.labelByKey) + 1)
	b.labelByKey[name] = l
	b.labelNames[l] = name
	return l
}

// Node returns the id of the named node, creating it unlabeled on first
// use.
func (b *Builder) Node(name string) hypergraph.NodeID {
	if v, ok := b.nodeByName[name]; ok {
		return v
	}
	v := b.g.AddNode(hypergraph.NoLabel)
	b.nodeByName[name] = v
	b.nodeNames = append(b.nodeNames, name)
	return v
}

// LabeledNode creates or retrieves the named node and sets its label.
func (b *Builder) LabeledNode(name, label string) hypergraph.NodeID {
	v := b.Node(name)
	b.g.SetNodeLabel(v, b.Label(label))
	return v
}

// Edge adds a hyperedge with the given label name over the named nodes
// (created on demand) and returns its id.
func (b *Builder) Edge(label string, nodes ...string) hypergraph.EdgeID {
	ids := make([]hypergraph.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = b.Node(n)
	}
	e := b.g.AddEdge(b.Label(label), ids...)
	for len(b.edgeNames) <= int(e) {
		b.edgeNames = append(b.edgeNames, "")
	}
	return e
}

// NamedEdge is Edge with an explicit edge name, retrievable via EdgeName.
func (b *Builder) NamedEdge(name, label string, nodes ...string) hypergraph.EdgeID {
	e := b.Edge(label, nodes...)
	b.edgeNames[e] = name
	return e
}

// Graph returns the built hypergraph. The builder may keep adding to it
// afterwards; take a Clone for isolation.
func (b *Builder) Graph() *hypergraph.Hypergraph { return b.g }

// NodeName returns the name of node v, or a numeric fallback.
func (b *Builder) NodeName(v hypergraph.NodeID) string {
	if int(v) >= 0 && int(v) < len(b.nodeNames) {
		return b.nodeNames[v]
	}
	return fmt.Sprintf("node#%d", v)
}

// NodeID returns the id of the named node and whether it exists.
func (b *Builder) NodeID(name string) (hypergraph.NodeID, bool) {
	v, ok := b.nodeByName[name]
	return v, ok
}

// EdgeName returns the explicit name of edge e, or a numeric fallback.
func (b *Builder) EdgeName(e hypergraph.EdgeID) string {
	if int(e) >= 0 && int(e) < len(b.edgeNames) && b.edgeNames[e] != "" {
		return b.edgeNames[e]
	}
	return fmt.Sprintf("hyperedge#%d", e)
}

// LabelName returns the name a label was interned from, or a numeric
// fallback.
func (b *Builder) LabelName(l hypergraph.Label) string {
	if l == hypergraph.NoLabel {
		return ""
	}
	if n, ok := b.labelNames[l]; ok {
		return n
	}
	return fmt.Sprintf("label#%d", l)
}

// Names returns all node names, sorted.
func (b *Builder) Names() []string {
	out := append([]string(nil), b.nodeNames...)
	sort.Strings(out)
	return out
}

// NodeSet resolves a list of node names to ids; unknown names error.
func (b *Builder) NodeSet(names ...string) ([]hypergraph.NodeID, error) {
	out := make([]hypergraph.NodeID, len(names))
	for i, n := range names {
		v, ok := b.nodeByName[n]
		if !ok {
			return nil, fmt.Errorf("names: unknown node %q", n)
		}
		out[i] = v
	}
	return out, nil
}

// Describe renders a node set through its names.
func (b *Builder) Describe(nodes []hypergraph.NodeID) string {
	s := ""
	for i, v := range nodes {
		if i > 0 {
			s += ", "
		}
		s += b.NodeName(v)
	}
	return s
}
