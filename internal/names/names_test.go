package names

import (
	"testing"

	"hged/internal/hypergraph"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	ana := b.LabeledNode("ana", "student")
	bo := b.LabeledNode("bo", "mentor")
	if ana == bo {
		t.Fatal("distinct names must get distinct ids")
	}
	if b.Node("ana") != ana {
		t.Fatal("Node must be idempotent")
	}
	e := b.Edge("reading", "ana", "bo", "cem") // cem created on demand
	g := b.Graph()
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(e).Arity() != 3 {
		t.Fatal("edge arity wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderLabelsInterned(t *testing.T) {
	b := NewBuilder()
	l1 := b.Label("math")
	l2 := b.Label("math")
	l3 := b.Label("bio")
	if l1 != l2 || l1 == l3 {
		t.Fatalf("label interning broken: %d %d %d", l1, l2, l3)
	}
	if b.Label("") != hypergraph.NoLabel {
		t.Fatal("empty label must be NoLabel")
	}
	if b.LabelName(l1) != "math" {
		t.Fatal("label name lost")
	}
	if b.LabelName(hypergraph.NoLabel) != "" {
		t.Fatal("NoLabel name should be empty")
	}
	if b.LabelName(99) == "" {
		t.Fatal("unknown label needs a fallback")
	}
}

func TestBuilderNames(t *testing.T) {
	b := NewBuilder()
	b.NamedEdge("paper-1", "KDD", "han", "ren")
	v, ok := b.NodeID("han")
	if !ok {
		t.Fatal("han should exist")
	}
	if b.NodeName(v) != "han" {
		t.Fatal("node name lost")
	}
	if b.NodeName(99) != "node#99" {
		t.Fatal("unknown node needs a fallback")
	}
	if b.EdgeName(0) != "paper-1" {
		t.Fatal("edge name lost")
	}
	if b.EdgeName(9) != "hyperedge#9" {
		t.Fatal("unknown edge needs a fallback")
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "han" || names[1] != "ren" {
		t.Fatalf("names = %v", names)
	}
}

func TestBuilderNodeSetAndDescribe(t *testing.T) {
	b := NewBuilder()
	b.Edge("g", "x", "y", "z")
	set, err := b.NodeSet("x", "z")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("set = %v", set)
	}
	if _, err := b.NodeSet("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	if got := b.Describe(set); got != "x, z" {
		t.Fatalf("describe = %q", got)
	}
}

func TestBuilderGraphIsLive(t *testing.T) {
	b := NewBuilder()
	g := b.Graph()
	b.Edge("l", "a", "b")
	if g.NumEdges() != 1 {
		t.Fatal("Graph should expose the live hypergraph")
	}
}
