// Package eval implements the paper's "Goodness metrics": predicted
// hyperedges are compared against a held-out validation set and scored by
// Precision, Recall and F1 (Section VI), with a greedy best-overlap
// matching between predictions and held-out hyperedges.
package eval

import (
	"fmt"
	"sort"

	"hged/internal/hypergraph"
)

// PRF bundles Precision, Recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// String renders "P=0.80 R=0.45 F1=0.58".
func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f", p.Precision, p.Recall, p.F1)
}

// MatchMode selects the true-positive criterion.
type MatchMode int

const (
	// MatchOverlap (the default) matches a prediction to a held-out
	// hyperedge when their Jaccard overlap reaches MinOverlap.
	MatchOverlap MatchMode = iota
	// MatchContainment matches when the held-out hyperedge's nodes are a
	// subset of the prediction — the criterion of the paper's case study
	// ("the predicted hyperedge contains the future collaboration"),
	// appropriate when predictions are groups and held-out hyperedges are
	// their sub-interactions.
	MatchContainment
)

// MatchOptions controls how a prediction counts as a true positive.
type MatchOptions struct {
	// Mode selects overlap (default) or containment matching.
	Mode MatchMode
	// MinOverlap is the Jaccard overlap a prediction must reach against a
	// held-out hyperedge to match it in MatchOverlap mode (default 0.75).
	// 1.0 demands identical node sets.
	MinOverlap float64
	// Exact forces identical-node-set matching regardless of MinOverlap.
	Exact bool
}

func (o MatchOptions) normalize() MatchOptions {
	if o.MinOverlap == 0 {
		o.MinOverlap = 0.75
	}
	if o.Exact {
		o.Mode = MatchOverlap
		o.MinOverlap = 1
	}
	return o
}

// MatchStats details the matching behind a PRF.
type MatchStats struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// Matches pairs prediction index → held-out index.
	Matches map[int]int
}

// Evaluate scores predictions against held-out hyperedges. Matching is
// greedy by decreasing overlap; each prediction and each held-out hyperedge
// participates in at most one match.
func Evaluate(preds [][]hypergraph.NodeID, held []hypergraph.Hyperedge, opts MatchOptions) (PRF, MatchStats) {
	o := opts.normalize()
	type cand struct {
		pred, held int
		overlap    float64
	}
	heldSets := make([]map[hypergraph.NodeID]struct{}, len(held))
	for i, e := range held {
		s := make(map[hypergraph.NodeID]struct{}, len(e.Nodes))
		for _, v := range e.Nodes {
			s[v] = struct{}{}
		}
		heldSets[i] = s
	}
	var cands []cand
	for pi, p := range preds {
		for hi := range held {
			switch o.Mode {
			case MatchContainment:
				if len(heldSets[hi]) > 0 && containsSet(p, heldSets[hi]) {
					// Prefer tight containments when several predictions
					// cover the same held-out hyperedge.
					cands = append(cands, cand{pi, hi, float64(len(heldSets[hi])) / float64(len(p)+1)})
				}
			default:
				ov := jaccardSets(p, heldSets[hi])
				if ov >= o.MinOverlap {
					cands = append(cands, cand{pi, hi, ov})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].overlap != cands[j].overlap {
			return cands[i].overlap > cands[j].overlap
		}
		if cands[i].pred != cands[j].pred {
			return cands[i].pred < cands[j].pred
		}
		return cands[i].held < cands[j].held
	})
	usedPred := make([]bool, len(preds))
	usedHeld := make([]bool, len(held))
	stats := MatchStats{Matches: make(map[int]int)}
	for _, c := range cands {
		if usedPred[c.pred] || usedHeld[c.held] {
			continue
		}
		usedPred[c.pred] = true
		usedHeld[c.held] = true
		stats.Matches[c.pred] = c.held
		stats.TruePositives++
	}
	stats.FalsePositives = len(preds) - stats.TruePositives
	stats.FalseNegatives = len(held) - stats.TruePositives

	var prf PRF
	if len(preds) > 0 {
		prf.Precision = float64(stats.TruePositives) / float64(len(preds))
	}
	if len(held) > 0 {
		prf.Recall = float64(stats.TruePositives) / float64(len(held))
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf, stats
}

// PrecisionAtK evaluates a ranked prediction list: for each k in ks it
// returns the precision of the top-k predictions against the held-out set
// (each held-out hyperedge matched at most once, greedily inside the
// prefix). ks beyond the list length use the whole list.
func PrecisionAtK(ranked [][]hypergraph.NodeID, held []hypergraph.Hyperedge, opts MatchOptions, ks []int) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		if k > len(ranked) {
			k = len(ranked)
		}
		if k <= 0 {
			continue
		}
		prf, _ := Evaluate(ranked[:k], held, opts)
		out[i] = prf.Precision
	}
	return out
}

func containsSet(a []hypergraph.NodeID, b map[hypergraph.NodeID]struct{}) bool {
	if len(b) > len(a) {
		return false
	}
	found := 0
	for _, v := range a {
		if _, ok := b[v]; ok {
			found++
		}
	}
	return found == len(b)
}

func jaccardSets(a []hypergraph.NodeID, b map[hypergraph.NodeID]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for _, v := range a {
		if _, ok := b[v]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
