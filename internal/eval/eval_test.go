package eval

import (
	"math"
	"testing"

	"hged/internal/hypergraph"
)

func he(nodes ...hypergraph.NodeID) hypergraph.Hyperedge {
	return hypergraph.Hyperedge{Nodes: nodes}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluatePerfect(t *testing.T) {
	preds := [][]hypergraph.NodeID{{0, 1, 2}, {3, 4, 5}}
	held := []hypergraph.Hyperedge{he(0, 1, 2), he(3, 4, 5)}
	prf, st := Evaluate(preds, held, MatchOptions{})
	if prf.Precision != 1 || prf.Recall != 1 || prf.F1 != 1 {
		t.Fatalf("perfect case: %v", prf)
	}
	if st.TruePositives != 2 || st.FalsePositives != 0 || st.FalseNegatives != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEvaluatePartialOverlap(t *testing.T) {
	// {0,1,2,3} vs held {1,2,3}: Jaccard 3/4 = 0.75 → matches at default.
	preds := [][]hypergraph.NodeID{{0, 1, 2, 3}}
	held := []hypergraph.Hyperedge{he(1, 2, 3)}
	prf, _ := Evaluate(preds, held, MatchOptions{})
	if prf.Precision != 1 || prf.Recall != 1 {
		t.Fatalf("0.75 overlap should match: %v", prf)
	}
	// With Exact the same pair must not match.
	prf, _ = Evaluate(preds, held, MatchOptions{Exact: true})
	if prf.Precision != 0 || prf.Recall != 0 || prf.F1 != 0 {
		t.Fatalf("exact mode should reject: %v", prf)
	}
	// Raising MinOverlap above 0.75 rejects too.
	prf, _ = Evaluate(preds, held, MatchOptions{MinOverlap: 0.8})
	if prf.Precision != 0 {
		t.Fatalf("0.8 threshold should reject 0.75 overlap: %v", prf)
	}
}

func TestEvaluateGreedyPrefersBestOverlap(t *testing.T) {
	// Prediction 0 matches held 0 exactly; prediction 1 overlaps held 0 at
	// 0.75 only. Greedy must give held 0 to prediction 0.
	preds := [][]hypergraph.NodeID{{0, 1, 2}, {0, 1, 2, 3}}
	held := []hypergraph.Hyperedge{he(0, 1, 2)}
	prf, st := Evaluate(preds, held, MatchOptions{})
	if st.Matches[0] != 0 {
		t.Fatalf("matches: %v", st.Matches)
	}
	if _, dup := st.Matches[1]; dup {
		t.Fatal("held-out hyperedge matched twice")
	}
	if !almost(prf.Precision, 0.5) || !almost(prf.Recall, 1) {
		t.Fatalf("prf: %v", prf)
	}
}

func TestEvaluateEachPredictionMatchesOnce(t *testing.T) {
	preds := [][]hypergraph.NodeID{{0, 1, 2}}
	held := []hypergraph.Hyperedge{he(0, 1, 2), he(0, 1, 2)}
	prf, st := Evaluate(preds, held, MatchOptions{})
	if st.TruePositives != 1 || st.FalseNegatives != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !almost(prf.Recall, 0.5) {
		t.Fatalf("recall = %v", prf.Recall)
	}
}

func TestEvaluateEmptyInputs(t *testing.T) {
	prf, st := Evaluate(nil, nil, MatchOptions{})
	if prf.Precision != 0 || prf.Recall != 0 || prf.F1 != 0 {
		t.Fatalf("empty: %v", prf)
	}
	if st.TruePositives != 0 {
		t.Fatalf("stats: %+v", st)
	}
	prf, _ = Evaluate(nil, []hypergraph.Hyperedge{he(1, 2)}, MatchOptions{})
	if prf.Recall != 0 {
		t.Fatal("no predictions → zero recall")
	}
	prf, _ = Evaluate([][]hypergraph.NodeID{{1, 2}}, nil, MatchOptions{})
	if prf.Precision != 0 {
		t.Fatal("no held-out → zero precision")
	}
}

func TestPRFString(t *testing.T) {
	s := PRF{Precision: 0.5, Recall: 0.25, F1: 1.0 / 3}.String()
	if s != "P=0.500 R=0.250 F1=0.333" {
		t.Fatalf("String = %q", s)
	}
}

func TestEvaluateContainmentMode(t *testing.T) {
	// Predictions are groups; held-out hyperedges are their
	// sub-interactions.
	preds := [][]hypergraph.NodeID{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	held := []hypergraph.Hyperedge{he(1, 2, 3), he(4, 6), he(0, 9)}
	prf, st := Evaluate(preds, held, MatchOptions{Mode: MatchContainment})
	// {1,2,3} ⊆ pred0 and {4,6} ⊆ pred1; {0,9} is in no prediction.
	if st.TruePositives != 2 {
		t.Fatalf("TP = %d, want 2", st.TruePositives)
	}
	if !almost(prf.Precision, 2.0/3) || !almost(prf.Recall, 2.0/3) {
		t.Fatalf("prf = %v", prf)
	}
}

func TestEvaluateContainmentPrefersTightest(t *testing.T) {
	// Both predictions contain the held-out pair; the tighter one should
	// take the match so looser groups stay available for other hyperedges.
	preds := [][]hypergraph.NodeID{{0, 1, 2, 3, 4, 5}, {0, 1}}
	held := []hypergraph.Hyperedge{he(0, 1)}
	_, st := Evaluate(preds, held, MatchOptions{Mode: MatchContainment})
	if st.Matches[1] != 0 {
		t.Fatalf("matches = %v, want tight prediction 1", st.Matches)
	}
}

func TestEvaluateContainmentOneToOne(t *testing.T) {
	// One group containing two held-out hyperedges still matches only one.
	preds := [][]hypergraph.NodeID{{0, 1, 2, 3}}
	held := []hypergraph.Hyperedge{he(0, 1), he(2, 3)}
	prf, st := Evaluate(preds, held, MatchOptions{Mode: MatchContainment})
	if st.TruePositives != 1 || !almost(prf.Recall, 0.5) {
		t.Fatalf("stats %+v prf %v", st, prf)
	}
}

func TestEvaluateContainmentEmptyHeldSet(t *testing.T) {
	preds := [][]hypergraph.NodeID{{0, 1}}
	held := []hypergraph.Hyperedge{{}}
	_, st := Evaluate(preds, held, MatchOptions{Mode: MatchContainment})
	if st.TruePositives != 0 {
		t.Fatal("empty held-out hyperedge must not match")
	}
}

func TestPrecisionAtK(t *testing.T) {
	ranked := [][]hypergraph.NodeID{
		{0, 1, 2}, // matches
		{3, 4, 5}, // matches
		{9, 10},   // miss
		{6, 7, 8}, // matches
	}
	held := []hypergraph.Hyperedge{he(0, 1, 2), he(3, 4, 5), he(6, 7, 8)}
	got := PrecisionAtK(ranked, held, MatchOptions{}, []int{1, 2, 3, 4, 10, 0})
	want := []float64{1, 1, 2.0 / 3, 3.0 / 4, 3.0 / 4, 0}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("P@%d: got %v want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestEvaluateF1Harmonic(t *testing.T) {
	preds := [][]hypergraph.NodeID{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	held := []hypergraph.Hyperedge{he(0, 1), he(8, 9)}
	prf, _ := Evaluate(preds, held, MatchOptions{})
	// P = 1/4, R = 1/2 → F1 = 2·(1/4·1/2)/(3/4) = 1/3.
	if !almost(prf.F1, 1.0/3) {
		t.Fatalf("F1 = %v, want 1/3", prf.F1)
	}
}
