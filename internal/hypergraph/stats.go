package hypergraph

import (
	"fmt"
	"sort"
)

// Stats summarizes a hypergraph in the shape of Table I of the paper.
type Stats struct {
	Nodes          int     // |V| = n
	Edges          int     // |E| = m
	MeanEdgeSize   float64 // mean of hyperedge cardinalities
	MedianEdgeSize int     // median of hyperedge cardinalities
	NodeLabels     int     // |l(V)|, number of distinct node labels
	EdgeLabels     int     // number of distinct hyperedge labels
	MaxDegree      int
	MeanDegree     float64
	MaxEdgeSize    int
	Incidences     int // total Σ|E|, bipartite edge count
}

// Summarize computes Stats for h.
func Summarize(h *Hypergraph) Stats {
	s := Stats{Nodes: h.NumNodes(), Edges: h.NumEdges()}
	sizes := make([]int, 0, h.NumEdges())
	elabels := make(map[Label]struct{})
	for _, e := range h.edges {
		sizes = append(sizes, len(e.Nodes))
		s.Incidences += len(e.Nodes)
		elabels[e.Label] = struct{}{}
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		s.MedianEdgeSize = sizes[len(sizes)/2]
		s.MaxEdgeSize = sizes[len(sizes)-1]
		s.MeanEdgeSize = float64(s.Incidences) / float64(len(sizes))
	}
	nlabels := make(map[Label]struct{})
	totalDeg := 0
	for v := range h.nodeLabels {
		nlabels[h.nodeLabels[v]] = struct{}{}
		d := h.Degree(NodeID(v))
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.NodeLabels = len(nlabels)
	s.EdgeLabels = len(elabels)
	if s.Nodes > 0 {
		s.MeanDegree = float64(totalDeg) / float64(s.Nodes)
	}
	return s
}

// String renders the stats as one Table-I-style row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d mean|E|=%.1f med|E|=%d |l(V)|=%d",
		s.Nodes, s.Edges, s.MeanEdgeSize, s.MedianEdgeSize, s.NodeLabels)
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func DegreeHistogram(h *Hypergraph) map[int]int {
	hist := make(map[int]int)
	for v := 0; v < h.NumNodes(); v++ {
		hist[h.Degree(NodeID(v))]++
	}
	return hist
}

// EdgeSizeHistogram returns a map from hyperedge cardinality to the number of
// hyperedges with that cardinality.
func EdgeSizeHistogram(h *Hypergraph) map[int]int {
	hist := make(map[int]int)
	for _, e := range h.edges {
		hist[len(e.Nodes)]++
	}
	return hist
}

// ConnectedComponents returns the node sets of the connected components of h
// (two nodes are connected when they share a hyperedge), each sorted
// ascending, ordered by their smallest member.
func ConnectedComponents(h *Hypergraph) [][]NodeID {
	n := h.NumNodes()
	visited := make([]bool, n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, 64)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], NodeID(start))
		comp := []NodeID{NodeID(start)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range h.incidence[v] {
				for _, u := range h.edges[e].Nodes {
					if !visited[u] {
						visited[u] = true
						comp = append(comp, u)
						queue = append(queue, u)
					}
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// HopDistances runs a hop-count BFS from src over the hypergraph's co-member
// relation and returns a distance slice (-1 for unreachable nodes). It stops
// expanding beyond maxHops when maxHops >= 0.
func HopDistances(h *Hypergraph, src NodeID, maxHops int) []int {
	dist := make([]int, h.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && dist[v] >= maxHops {
			continue
		}
		for _, e := range h.incidence[v] {
			for _, u := range h.edges[e].Nodes {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return dist
}
