package hypergraph

import (
	"fmt"
	"sort"
)

// Stats summarizes a hypergraph in the shape of Table I of the paper.
type Stats struct {
	Nodes          int     // |V| = n
	Edges          int     // |E| = m
	MeanEdgeSize   float64 // mean of hyperedge cardinalities
	MedianEdgeSize int     // median of hyperedge cardinalities
	NodeLabels     int     // |l(V)|, number of distinct node labels
	EdgeLabels     int     // number of distinct hyperedge labels
	MaxDegree      int
	MeanDegree     float64
	MaxEdgeSize    int
	Incidences     int // total Σ|E|, bipartite edge count
}

// Summarize computes Stats for h. It reads the frozen CSR view: distinct
// label counts are popcounts over bitsets of interned label ids, degrees
// and cardinalities are offset differences.
func Summarize(h *Hypergraph) Stats {
	c := h.Freeze()
	s := Stats{Nodes: c.NumNodes(), Edges: c.NumEdges(), Incidences: c.Incidences()}
	sizes := make([]int, 0, c.NumEdges())
	elabels := NewBitset(c.NumLabels())
	for e := 0; e < c.NumEdges(); e++ {
		sizes = append(sizes, c.Arity(EdgeID(e)))
		elabels.Add(int(c.EdgeLabelID(EdgeID(e))))
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		s.MedianEdgeSize = sizes[len(sizes)/2]
		s.MaxEdgeSize = sizes[len(sizes)-1]
		s.MeanEdgeSize = float64(s.Incidences) / float64(len(sizes))
	}
	nlabels := NewBitset(c.NumLabels())
	totalDeg := 0
	for v := 0; v < c.NumNodes(); v++ {
		nlabels.Add(int(c.NodeLabelID(NodeID(v))))
		d := c.Degree(NodeID(v))
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.NodeLabels = nlabels.Count()
	s.EdgeLabels = elabels.Count()
	if s.Nodes > 0 {
		s.MeanDegree = float64(totalDeg) / float64(s.Nodes)
	}
	return s
}

// String renders the stats as one Table-I-style row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d mean|E|=%.1f med|E|=%d |l(V)|=%d",
		s.Nodes, s.Edges, s.MeanEdgeSize, s.MedianEdgeSize, s.NodeLabels)
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func DegreeHistogram(h *Hypergraph) map[int]int {
	hist := make(map[int]int)
	for v := 0; v < h.NumNodes(); v++ {
		hist[h.Degree(NodeID(v))]++
	}
	return hist
}

// EdgeSizeHistogram returns a map from hyperedge cardinality to the number of
// hyperedges with that cardinality.
func EdgeSizeHistogram(h *Hypergraph) map[int]int {
	hist := make(map[int]int)
	for i := 0; i < h.NumEdges(); i++ {
		hist[h.Edge(EdgeID(i)).Arity()]++
	}
	return hist
}

// ConnectedComponents returns the node sets of the connected components of h
// (two nodes are connected when they share a hyperedge), each sorted
// ascending, ordered by their smallest member.
func ConnectedComponents(h *Hypergraph) [][]NodeID {
	c := h.Freeze()
	n := c.NumNodes()
	visited := NewBitset(n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, 64)
	for start := 0; start < n; start++ {
		if visited.Has(start) {
			continue
		}
		visited.Add(start)
		queue = append(queue[:0], NodeID(start))
		comp := []NodeID{NodeID(start)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range c.IncidentEdges(v) {
				for _, u := range c.Members(e) {
					if !visited.Has(int(u)) {
						visited.Add(int(u))
						comp = append(comp, u)
						queue = append(queue, u)
					}
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// HopDistances runs a hop-count BFS from src over the hypergraph's co-member
// relation and returns a distance slice (-1 for unreachable nodes). It stops
// expanding beyond maxHops when maxHops >= 0.
func HopDistances(h *Hypergraph, src NodeID, maxHops int) []int {
	c := h.Freeze()
	dist := make([]int, c.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && dist[v] >= maxHops {
			continue
		}
		for _, e := range c.IncidentEdges(v) {
			for _, u := range c.Members(e) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return dist
}
