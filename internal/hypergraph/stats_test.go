package hypergraph

import (
	"reflect"
	"testing"
)

func TestSummarizeFig1(t *testing.T) {
	s := Summarize(Fig1())
	if s.Nodes != 8 || s.Edges != 4 {
		t.Fatalf("n=%d m=%d, want 8,4", s.Nodes, s.Edges)
	}
	if s.Incidences != 13 {
		t.Fatalf("incidences = %d, want 13", s.Incidences)
	}
	if s.MeanEdgeSize != 13.0/4.0 {
		t.Fatalf("mean |E| = %v", s.MeanEdgeSize)
	}
	if s.MedianEdgeSize != 3 {
		t.Fatalf("median |E| = %d, want 3", s.MedianEdgeSize)
	}
	if s.NodeLabels != 3 {
		t.Fatalf("|l(V)| = %d, want 3", s.NodeLabels)
	}
	if s.EdgeLabels != 2 {
		t.Fatalf("edge labels = %d, want 2", s.EdgeLabels)
	}
	if s.MaxDegree != 3 { // u4 is in E1,E2,E4
		t.Fatalf("max degree = %d, want 3", s.MaxDegree)
	}
	if s.MaxEdgeSize != 4 {
		t.Fatalf("max |E| = %d, want 4", s.MaxEdgeSize)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(New(0))
	if s.Nodes != 0 || s.Edges != 0 || s.MeanEdgeSize != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestDegreeAndSizeHistograms(t *testing.T) {
	h := Fig1()
	dh := DegreeHistogram(h)
	// Degrees: u1:1 u2:2 u3:1 u4:3 u5:2 u6:1 u7:2 u8:1.
	want := map[int]int{1: 4, 2: 3, 3: 1}
	if !reflect.DeepEqual(dh, want) {
		t.Fatalf("degree histogram = %v, want %v", dh, want)
	}
	sh := EdgeSizeHistogram(h)
	if !reflect.DeepEqual(sh, map[int]int{3: 3, 4: 1}) {
		t.Fatalf("size histogram = %v", sh)
	}
}

func TestConnectedComponents(t *testing.T) {
	h := New(6)
	h.AddEdge(NoLabel, 0, 1, 2)
	h.AddEdge(NoLabel, 3, 4)
	// node 5 isolated
	comps := ConnectedComponents(h)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []NodeID{0, 1, 2}) {
		t.Fatalf("comp0 = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []NodeID{3, 4}) {
		t.Fatalf("comp1 = %v", comps[1])
	}
	if !reflect.DeepEqual(comps[2], []NodeID{5}) {
		t.Fatalf("comp2 = %v", comps[2])
	}
}

func TestConnectedComponentsFig1IsConnected(t *testing.T) {
	comps := ConnectedComponents(Fig1())
	if len(comps) != 1 || len(comps[0]) != 8 {
		t.Fatalf("Fig1 should be one component of 8 nodes, got %v", comps)
	}
}

func TestHopDistances(t *testing.T) {
	h := Fig1()
	d := HopDistances(h, U(1), -1)
	// u1 shares E1 with u2,u4 (1 hop); u3,u5,u6,u7,u8 are 2 hops.
	if d[U(1)] != 0 {
		t.Fatalf("d(u1)=%d", d[U(1)])
	}
	if d[U(2)] != 1 || d[U(4)] != 1 {
		t.Fatalf("d(u2)=%d d(u4)=%d, want 1,1", d[U(2)], d[U(4)])
	}
	for _, v := range []NodeID{U(3), U(5), U(6), U(7), U(8)} {
		if d[v] != 2 {
			t.Fatalf("d(%d)=%d, want 2", v, d[v])
		}
	}
}

func TestHopDistancesMaxHops(t *testing.T) {
	h := Fig1()
	d := HopDistances(h, U(1), 1)
	for _, v := range []NodeID{U(3), U(5), U(6), U(7), U(8)} {
		if d[v] != -1 {
			t.Fatalf("d(%d)=%d, want -1 with maxHops=1", v, d[v])
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	h := New(3)
	h.AddEdge(NoLabel, 0, 1)
	d := HopDistances(h, 0, -1)
	if d[2] != -1 {
		t.Fatalf("d(isolated)=%d, want -1", d[2])
	}
}
