package hypergraph

import (
	"sync"
	"sync/atomic"
)

// Versioned wraps a hypergraph in an MVCC lifecycle: readers pin an immutable
// frozen generation in O(1) while a single writer batches mutations against a
// copy-on-write clone and publishes the next generation atomically. Old
// generations stay valid for as long as someone references them (pins are
// observability, not lifetime — the garbage collector reclaims unpinned
// history).
//
// The zero value is not usable; construct with NewVersioned.
type Versioned struct {
	writeMu   sync.Mutex // serializes Begin..Commit/Abort
	cur       atomic.Pointer[Generation]
	published atomic.Int64 // generations published, including the first
	batches   atomic.Int64 // committed mutation batches
	pinned    atomic.Int64 // currently pinned readers across all generations
}

// Generation is one immutable published version of the graph. The graph it
// exposes is frozen (CSR current) and must not be mutated by callers.
type Generation struct {
	v    *Versioned
	g    *Hypergraph
	seq  int64
	pins atomic.Int64
}

// NewVersioned publishes g as generation 1. The caller hands over ownership:
// g must not be mutated directly afterwards (use Begin/Commit batches).
func NewVersioned(g *Hypergraph) *Versioned {
	g.Freeze()
	v := &Versioned{}
	v.cur.Store(&Generation{v: v, g: g, seq: 1})
	v.published.Store(1)
	return v
}

// Current returns the latest published generation without pinning it.
func (v *Versioned) Current() *Generation { return v.cur.Load() }

// Pin returns the latest published generation and registers a reader on it.
// Pin and Unpin are O(1) — one atomic load and two counter bumps — so read
// paths can bracket every request with them.
func (v *Versioned) Pin() *Generation {
	gen := v.cur.Load()
	gen.pins.Add(1)
	v.pinned.Add(1)
	return gen
}

// PinnedReaders returns the number of currently pinned readers across all
// generations of this graph.
func (v *Versioned) PinnedReaders() int64 { return v.pinned.Load() }

// Published returns the number of generations published so far, including
// the initial one.
func (v *Versioned) Published() int64 { return v.published.Load() }

// Batches returns the number of committed mutation batches.
func (v *Versioned) Batches() int64 { return v.batches.Load() }

// Graph returns the generation's immutable graph. Callers must not mutate it.
func (gen *Generation) Graph() *Hypergraph { return gen.g }

// Seq returns the generation's sequence number (1 for the initial version).
func (gen *Generation) Seq() int64 { return gen.seq }

// Pins returns the number of readers currently pinned to this generation.
func (gen *Generation) Pins() int64 { return gen.pins.Load() }

// Unpin releases a pin taken with Versioned.Pin.
func (gen *Generation) Unpin() {
	if gen.pins.Add(-1) < 0 {
		panic("hypergraph: Generation.Unpin without matching Pin")
	}
	gen.v.pinned.Add(-1)
}

// Delta describes what a committed batch changed, for callers that maintain
// derived per-node state (σ-caches, signature rows) across generations.
type Delta struct {
	Seq          int64 // sequence number of the generation the batch produced
	NodesAdded   int
	NodesRemoved int
	EdgesAdded   int
	EdgesRemoved int
	Relabeled    int
	// Full reports that per-node invalidation was abandoned because node ids
	// were renumbered (RemoveNode): every derived per-node structure must be
	// dropped wholesale.
	Full bool
	// Invalid holds the node ids (valid in both the base and new numbering,
	// which coincide when Full is false) whose ego networks may differ
	// between the base and new generations. Nil when Full is set.
	Invalid Bitset
}

// Invalidates reports whether derived state keyed on node v must be dropped.
func (d Delta) Invalidates(v NodeID) bool {
	if d.Full {
		return true
	}
	i := int(v)
	return i >= 0 && i < len(d.Invalid)*64 && d.Invalid.Has(i)
}

// Batch is an open mutation batch against a copy-on-write clone of the base
// generation. It is single-goroutine; Begin blocks until the previous batch
// commits or aborts. Readers are never blocked: they keep pinning the base
// generation until Commit publishes the next one.
type Batch struct {
	v       *Versioned
	base    *Generation
	g       *Hypergraph
	touched Bitset // node ids whose incident structure or visible labels changed
	full    bool   // RemoveNode renumbered ids: invalidate everything
	delta   Delta
	done    bool
}

// Begin opens a mutation batch against the current generation. The clone is
// O(1): the base generation is frozen, so the writer starts from a lazy
// CSR-backed copy and pays materialization only for what it touches.
func (v *Versioned) Begin() *Batch {
	v.writeMu.Lock()
	base := v.cur.Load()
	return &Batch{
		v:       v,
		base:    base,
		g:       base.g.Clone(),
		touched: NewBitset(base.g.NumNodes()),
	}
}

func (b *Batch) mustActive() {
	if b.done {
		panic("hypergraph: use of a committed or aborted Batch")
	}
}

func (b *Batch) touch(v NodeID) {
	if int(v) >= len(b.touched)*64 {
		b.touched.Grow(int(v) + 1)
	}
	b.touched.Add(int(v))
}

// Graph exposes the batch's working graph for reads (validating ids,
// read-your-writes within the batch). Callers must not mutate it directly —
// direct mutations bypass invalidation tracking.
func (b *Batch) Graph() *Hypergraph { b.mustActive(); return b.g }

// AddNode appends a node with label l and returns its id. A fresh node has
// no incident structure, so nothing is invalidated by the add itself.
func (b *Batch) AddNode(l Label) NodeID {
	b.mustActive()
	b.delta.NodesAdded++
	return b.g.AddNode(l)
}

// AddNodes appends n unlabeled nodes and returns the first new id.
func (b *Batch) AddNodes(n int) NodeID {
	b.mustActive()
	b.delta.NodesAdded += n
	return b.g.AddNodes(n)
}

// AddEdge adds a hyperedge over nodes with label l and returns its id.
func (b *Batch) AddEdge(l Label, nodes ...NodeID) EdgeID {
	b.mustActive()
	id := b.g.AddEdge(l, nodes...)
	for _, u := range b.g.Edge(id).Nodes {
		b.touch(u)
	}
	b.delta.EdgesAdded++
	return id
}

// RemoveEdge removes hyperedge e; larger ids shift down by one.
func (b *Batch) RemoveEdge(e EdgeID) {
	b.mustActive()
	for _, u := range b.g.Edge(e).Nodes {
		b.touch(u)
	}
	b.g.RemoveEdge(e)
	b.delta.EdgesRemoved++
}

// RemoveNode removes node v; larger ids shift down by one. Renumbering
// invalidates all derived per-node state (Delta.Full).
func (b *Batch) RemoveNode(v NodeID) {
	b.mustActive()
	b.full = true
	b.g.RemoveNode(v)
	b.delta.NodesRemoved++
}

// SetNodeLabel relabels node v.
func (b *Batch) SetNodeLabel(v NodeID, l Label) {
	b.mustActive()
	b.touch(v)
	b.g.SetNodeLabel(v, l)
	b.delta.Relabeled++
}

// SetEdgeLabel relabels hyperedge e.
func (b *Batch) SetEdgeLabel(e EdgeID, l Label) {
	b.mustActive()
	for _, u := range b.g.Edge(e).Nodes {
		b.touch(u)
	}
	b.g.SetEdgeLabel(e, l)
	b.delta.Relabeled++
}

// Abort discards the batch without publishing.
func (b *Batch) Abort() {
	if b.done {
		return
	}
	b.done = true
	b.v.writeMu.Unlock()
}

// Commit freezes the working graph, publishes it as the next generation and
// returns it together with the invalidation delta. Ego networks cached on
// the base generation are carried over for every node the delta does not
// invalidate, so steady readers keep their warm caches across versions.
func (b *Batch) Commit() (*Generation, Delta) {
	b.mustActive()
	b.done = true
	b.g.Freeze()
	delta := b.delta
	delta.Full = b.full
	if !b.full {
		delta.Invalid = b.invalidNodes()
		b.carryEgoCache(delta.Invalid)
	}
	gen := &Generation{v: b.v, g: b.g, seq: b.base.seq + 1}
	delta.Seq = gen.seq
	b.v.cur.Store(gen)
	b.v.published.Add(1)
	b.v.batches.Add(1)
	b.v.writeMu.Unlock()
	return gen, delta
}

// invalidNodes computes the set of nodes whose ego networks may differ
// between the base and new generations: the union of NEI(u) over every
// touched node u, taken in both graphs. The containment argument: a cached
// ego(w) can only change if an edge fully inside NEI(w) changed, a label
// inside NEI(w) changed, or NEI(w) itself changed — each implies some
// touched u has w ∈ NEI(u), which this union covers.
func (b *Batch) invalidNodes() Bitset {
	nBase, nNew := b.base.g.NumNodes(), b.g.NumNodes()
	n := max(nBase, nNew)
	invalid := NewBitset(n)
	b.touched.ForEach(func(u int) {
		if u < nBase {
			b.base.g.neighborScan(NodeID(u), invalid)
		}
		if u < nNew {
			b.g.neighborScan(NodeID(u), invalid)
		}
	})
	return invalid
}

// carryEgoCache copies the base generation's memoized ego networks for every
// still-valid node into the new generation. Ego graphs are immutable, so
// sharing instances across generations is safe.
func (b *Batch) carryEgoCache(invalid Bitset) {
	src, dst := b.base.g, b.g
	n := dst.NumNodes()
	src.egoMu.RLock()
	var carried map[NodeID]*Hypergraph
	for w, ego := range src.egoCache {
		if int(w) < n && !invalid.Has(int(w)) {
			if carried == nil {
				carried = make(map[NodeID]*Hypergraph, len(src.egoCache))
			}
			carried[w] = ego
		}
	}
	src.egoMu.RUnlock()
	if carried == nil {
		return
	}
	dst.egoMu.Lock()
	if dst.egoCache == nil {
		dst.egoCache = carried
	} else {
		for k, e := range carried {
			dst.egoCache[k] = e
		}
	}
	dst.egoMu.Unlock()
}
