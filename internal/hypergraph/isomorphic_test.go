package hypergraph

import "testing"

func TestIsomorphicIdentity(t *testing.T) {
	h := Fig1()
	if !Isomorphic(h, h) {
		t.Fatal("graph not isomorphic to itself")
	}
	if !Isomorphic(h, h.Clone()) {
		t.Fatal("graph not isomorphic to its clone")
	}
}

func TestIsomorphicRelabeledNodes(t *testing.T) {
	// Same structure, nodes permuted.
	g := New(0)
	a := g.AddNode(1)
	b := g.AddNode(2)
	c := g.AddNode(3)
	g.AddEdge(9, a, b)
	g.AddEdge(8, b, c)

	h := New(0)
	x := h.AddNode(3)
	y := h.AddNode(2)
	z := h.AddNode(1)
	h.AddEdge(8, x, y)
	h.AddEdge(9, y, z)

	if !Isomorphic(g, h) {
		t.Fatal("permuted graphs should be isomorphic")
	}
}

func TestNotIsomorphicDifferentNodeLabels(t *testing.T) {
	g := NewLabeled([]Label{1, 1})
	g.AddEdge(NoLabel, 0, 1)
	h := NewLabeled([]Label{1, 2})
	h.AddEdge(NoLabel, 0, 1)
	if Isomorphic(g, h) {
		t.Fatal("different node label multisets should not be isomorphic")
	}
}

func TestNotIsomorphicDifferentEdgeLabels(t *testing.T) {
	g := NewLabeled([]Label{1, 1})
	g.AddEdge(5, 0, 1)
	h := NewLabeled([]Label{1, 1})
	h.AddEdge(6, 0, 1)
	if Isomorphic(g, h) {
		t.Fatal("different edge labels should not be isomorphic")
	}
}

func TestNotIsomorphicDifferentStructure(t *testing.T) {
	// Path vs star on 4 labeled-identical nodes, pairwise hyperedges.
	g := New(4)
	g.AddEdge(NoLabel, 0, 1)
	g.AddEdge(NoLabel, 1, 2)
	g.AddEdge(NoLabel, 2, 3)
	h := New(4)
	h.AddEdge(NoLabel, 0, 1)
	h.AddEdge(NoLabel, 0, 2)
	h.AddEdge(NoLabel, 0, 3)
	if Isomorphic(g, h) {
		t.Fatal("path and star should not be isomorphic")
	}
}

func TestNotIsomorphicDifferentCardinalities(t *testing.T) {
	g := New(3)
	g.AddEdge(NoLabel, 0, 1, 2)
	h := New(3)
	h.AddEdge(NoLabel, 0, 1)
	if Isomorphic(g, h) {
		t.Fatal("cardinality-3 vs cardinality-2 hyperedge should differ")
	}
}

func TestIsomorphicEmptyAndSizeMismatch(t *testing.T) {
	if !Isomorphic(New(0), New(0)) {
		t.Fatal("empty graphs are isomorphic")
	}
	if Isomorphic(New(1), New(2)) {
		t.Fatal("size mismatch should fail fast")
	}
}

func TestIsomorphicDuplicateEdges(t *testing.T) {
	// Multisets of hyperedges must match with multiplicity.
	g := New(2)
	g.AddEdge(NoLabel, 0, 1)
	g.AddEdge(NoLabel, 0, 1)
	h := New(2)
	h.AddEdge(NoLabel, 0, 1)
	h.AddEdge(NoLabel, 0)
	if Isomorphic(g, h) {
		t.Fatal("edge multisets differ")
	}
	h2 := New(2)
	h2.AddEdge(NoLabel, 0, 1)
	h2.AddEdge(NoLabel, 0, 1)
	if !Isomorphic(g, h2) {
		t.Fatal("duplicate edges should match with multiplicity")
	}
}

func TestIsomorphicEgoNetworksNotIsomorphic(t *testing.T) {
	h := Fig1()
	if Isomorphic(h.Ego(U(4)), h.Ego(U(5))) {
		t.Fatal("EGO(u4) and EGO(u5) differ (HGED = 6, not 0)")
	}
}
