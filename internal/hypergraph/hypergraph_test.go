package hypergraph

import (
	"reflect"
	"testing"
)

func TestEmptyHypergraph(t *testing.T) {
	h := New(0)
	if h.NumNodes() != 0 || h.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", h.NumNodes(), h.NumEdges())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	h := New(0)
	a := h.AddNode(1)
	b := h.AddNode(2)
	c := h.AddNode(1)
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("node ids = %d,%d,%d", a, b, c)
	}
	e := h.AddEdge(5, c, a) // unsorted input
	if e != 0 {
		t.Fatalf("edge id = %d", e)
	}
	got := h.Edge(e)
	if !reflect.DeepEqual(got.Nodes, []NodeID{0, 2}) {
		t.Fatalf("edge nodes = %v, want [0 2]", got.Nodes)
	}
	if got.Label != 5 {
		t.Fatalf("edge label = %d", got.Label)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestAddEdgeDeduplicatesNodes(t *testing.T) {
	h := New(3)
	e := h.AddEdge(NoLabel, 1, 1, 2, 2, 1)
	if got := h.Edge(e).Nodes; !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Fatalf("nodes = %v, want [1 2]", got)
	}
}

func TestAddEdgeEmptyHyperedge(t *testing.T) {
	h := New(2)
	e := h.AddEdge(7)
	if h.Edge(e).Arity() != 0 {
		t.Fatalf("arity = %d, want 0", h.Edge(e).Arity())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	h := New(2)
	h.AddEdge(NoLabel, 0, 5)
}

func TestDegreeAndIncidence(t *testing.T) {
	h := Fig1()
	// u4 (id 3) is in E1, E2, E4.
	if d := h.Degree(U(4)); d != 3 {
		t.Fatalf("DEG(u4) = %d, want 3", d)
	}
	if d := h.Degree(U(3)); d != 1 {
		t.Fatalf("DEG(u3) = %d, want 1", d)
	}
	inc := h.IncidentEdges(U(4))
	if !reflect.DeepEqual(inc, []EdgeID{0, 1, 3}) {
		t.Fatalf("incident(u4) = %v", inc)
	}
}

func TestNeighborsMatchesExample1(t *testing.T) {
	h := Fig1()
	// Example 1: NEI(u4) = {u1,u2,u4,u5,u6,u7,u8}.
	want4 := []NodeID{U(1), U(2), U(4), U(5), U(6), U(7), U(8)}
	if got := h.Neighbors(U(4)); !reflect.DeepEqual(got, want4) {
		t.Fatalf("NEI(u4) = %v, want %v", got, want4)
	}
	// Example 1: NEI(u5) = {u2,u3,u4,u5,u7,u8}.
	want5 := []NodeID{U(2), U(3), U(4), U(5), U(7), U(8)}
	if got := h.Neighbors(U(5)); !reflect.DeepEqual(got, want5) {
		t.Fatalf("NEI(u5) = %v, want %v", got, want5)
	}
	if got := h.NumNeighbors(U(4)); got != 7 {
		t.Fatalf("|NEI(u4)| = %d, want 7", got)
	}
}

func TestNeighborsIncludesSelfEvenIsolated(t *testing.T) {
	h := New(3)
	if got := h.Neighbors(1); !reflect.DeepEqual(got, []NodeID{1}) {
		t.Fatalf("NEI(isolated) = %v, want [1]", got)
	}
}

func TestHyperedgeContains(t *testing.T) {
	h := Fig1()
	e4 := h.Edge(3)
	for _, v := range []NodeID{U(4), U(5), U(7), U(8)} {
		if !e4.Contains(v) {
			t.Fatalf("E4 should contain %d", v)
		}
	}
	for _, v := range []NodeID{U(1), U(2), U(3), U(6)} {
		if e4.Contains(v) {
			t.Fatalf("E4 should not contain %d", v)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	h := Fig1()
	// Induce on NEI(u5) = {u2,u3,u4,u5,u7,u8}: only E3 and E4 survive.
	sub := h.InducedSubgraph(h.Neighbors(U(5)))
	if sub.NumNodes() != 6 {
		t.Fatalf("n = %d, want 6", sub.NumNodes())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("invalid induced subgraph: %v", err)
	}
	// Labels preserved; orig ids recoverable.
	for v := 0; v < sub.NumNodes(); v++ {
		orig := sub.OrigID(NodeID(v))
		if sub.NodeLabel(NodeID(v)) != h.NodeLabel(orig) {
			t.Fatalf("label mismatch for induced node %d (orig %d)", v, orig)
		}
	}
	// E3 = {u2,u3,u5} should appear with grey label.
	foundE3 := false
	for _, e := range sub.Edges() {
		if e.Arity() == 3 && e.Label == LabelGrey {
			foundE3 = true
		}
	}
	if !foundE3 {
		t.Fatal("induced subgraph missing E3")
	}
}

func TestInducedSubgraphDedupsInput(t *testing.T) {
	h := Fig1()
	sub := h.InducedSubgraph([]NodeID{2, 2, 1, 1})
	if sub.NumNodes() != 2 {
		t.Fatalf("n = %d, want 2", sub.NumNodes())
	}
}

func TestEgoNetworks(t *testing.T) {
	h := Fig1()
	ego4 := h.Ego(U(4))
	if ego4.NumNodes() != 7 || ego4.NumEdges() != 3 {
		t.Fatalf("EGO(u4): n=%d m=%d, want n=7 m=3", ego4.NumNodes(), ego4.NumEdges())
	}
	ego5 := h.Ego(U(5))
	if ego5.NumNodes() != 6 || ego5.NumEdges() != 2 {
		t.Fatalf("EGO(u5): n=%d m=%d, want n=6 m=2", ego5.NumNodes(), ego5.NumEdges())
	}
	if err := ego4.Validate(); err != nil {
		t.Fatalf("EGO(u4) invalid: %v", err)
	}
	if err := ego5.Validate(); err != nil {
		t.Fatalf("EGO(u5) invalid: %v", err)
	}
}

func TestNestedInducedSubgraphOrigIDs(t *testing.T) {
	h := Fig1()
	sub := h.InducedSubgraph([]NodeID{U(2), U(3), U(4), U(5)})
	sub2 := sub.InducedSubgraph([]NodeID{0, 2})
	// sub nodes are [u2,u3,u4,u5]; sub2 keeps locals 0 and 2 → u2, u4.
	if got := sub2.OrigID(0); got != U(2) {
		t.Fatalf("OrigID(0) = %d, want u2=%d", got, U(2))
	}
	if got := sub2.OrigID(1); got != U(4) {
		t.Fatalf("OrigID(1) = %d, want u4=%d", got, U(4))
	}
}

func TestClone(t *testing.T) {
	h := Fig1()
	c := h.Clone()
	if c.NumNodes() != h.NumNodes() || c.NumEdges() != h.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.SetNodeLabel(0, 99)
	if h.NodeLabel(0) == 99 {
		t.Fatal("clone shares node labels with original")
	}
	c.AddEdge(NoLabel, 0, 1)
	if h.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares edge slice with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h := Fig1()
	h.edges[0].Nodes[0] = 99 // corrupt: out of range
	if err := h.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range node")
	}
	h = Fig1()
	h.incidence[0] = append(h.incidence[0], 3) // corrupt: bogus incidence
	if err := h.Validate(); err == nil {
		t.Fatal("Validate missed inconsistent incidence")
	}
}

func TestStringRendering(t *testing.T) {
	h := New(2)
	h.AddEdge(4, 0, 1)
	if got := h.String(); got != "H(n=2,m=1){0:[0 1]@4}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestHyperedgeKey(t *testing.T) {
	h := New(300)
	e1 := h.AddEdge(NoLabel, 1, 2, 299)
	e2 := h.AddEdge(NoLabel, 299, 2, 1)
	e3 := h.AddEdge(NoLabel, 1, 2, 3)
	if h.Edge(e1).Key() != h.Edge(e2).Key() {
		t.Fatal("identical node sets must share a key")
	}
	if h.Edge(e1).Key() == h.Edge(e3).Key() {
		t.Fatal("different node sets must have different keys")
	}
}
