package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genGraph builds a random hypergraph from a seed, for quick-check
// properties.
func genGraph(seed int64) *Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(12) + 1
	g := New(0)
	for i := 0; i < n; i++ {
		g.AddNode(Label(1 + rng.Intn(4)))
	}
	m := rng.Intn(10)
	for e := 0; e < m; e++ {
		k := rng.Intn(n) + 1
		perm := rng.Perm(n)
		nodes := make([]NodeID, 0, k)
		for _, v := range perm[:k] {
			nodes = append(nodes, NodeID(v))
		}
		g.AddEdge(Label(10+rng.Intn(3)), nodes...)
	}
	return g
}

func TestQuickGeneratedGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		return genGraph(seed).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNeighborsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		for v := 0; v < g.NumNodes(); v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				if u == NodeID(v) {
					continue
				}
				found := false
				for _, w := range g.Neighbors(u) {
					if w == NodeID(v) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSumEqualsIncidences(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		total := 0
		for v := 0; v < g.NumNodes(); v++ {
			total += g.Degree(NodeID(v))
		}
		return total == Summarize(g).Incidences
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInducedSubgraphIsSubset(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g := genGraph(seed)
		var s []NodeID
		for v := 0; v < g.NumNodes(); v++ {
			if (uint8(v)+pick)%3 != 0 {
				s = append(s, NodeID(v))
			}
		}
		sub := g.InducedSubgraph(s)
		if sub.NumNodes() != len(s) {
			return false
		}
		if sub.Validate() != nil {
			return false
		}
		// Every induced hyperedge corresponds to a host hyperedge fully
		// inside s, with the same label and cardinality.
		inS := make(map[NodeID]bool, len(s))
		for _, v := range s {
			inS[v] = true
		}
		want := 0
		for _, e := range g.Edges() {
			inside := true
			for _, v := range e.Nodes {
				if !inS[v] {
					inside = false
					break
				}
			}
			if inside {
				want++
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEgoContainsAllIncidentEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		for v := 0; v < g.NumNodes(); v++ {
			ego := g.Ego(NodeID(v))
			// Every hyperedge containing v survives (its members are all
			// neighbors of v by definition).
			if ego.NumEdges() < g.Degree(NodeID(v)) {
				return false
			}
			if ego.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBipartiteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		back := FromBipartite(ToBipartite(g))
		return g.String() == back.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualAndIndependent(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		c := g.Clone()
		if g.String() != c.String() {
			return false
		}
		c.AddNode(99)
		return g.NumNodes() != c.NumNodes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIsomorphismIsReflexiveUnderPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(seed)
		// Rebuild g with a random node permutation; must be isomorphic.
		rng := rand.New(rand.NewSource(seed ^ 0x5ee5))
		perm := rng.Perm(g.NumNodes())
		labels := make([]Label, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			labels[perm[v]] = g.NodeLabel(NodeID(v))
		}
		h := NewLabeled(labels)
		for _, e := range g.Edges() {
			nodes := make([]NodeID, len(e.Nodes))
			for i, v := range e.Nodes {
				nodes[i] = NodeID(perm[v])
			}
			h.AddEdge(e.Label, nodes...)
		}
		return Isomorphic(g, h)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
