package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// frozenTwin rebuilds g frozen-first from copies of its CSR arrays, the way
// the binary reader does.
func frozenTwin(t *testing.T, g *Hypergraph) *Hypergraph {
	t.Helper()
	c := g.Freeze()
	tw, err := FromFrozen(
		append([]Label(nil), c.labels...),
		append([]int32(nil), c.nodeLab...),
		append([]int32(nil), c.edgeLab...),
		append([]int32(nil), c.edgeOff...),
		append([]NodeID(nil), c.edgeNodes...),
	)
	if err != nil {
		t.Fatalf("FromFrozen: %v", err)
	}
	return tw
}

// compareGraphs checks that every accessor of a and b agrees, including the
// interned dictionaries their Freeze views expose (signature digests depend
// on those being identical).
func compareGraphs(t *testing.T, ctx string, a, b *Hypergraph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size mismatch (%d,%d) vs (%d,%d)", ctx, a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := NodeID(v)
		if a.NodeLabel(id) != b.NodeLabel(id) {
			t.Fatalf("%s: node %d label %d vs %d", ctx, v, a.NodeLabel(id), b.NodeLabel(id))
		}
		if a.Degree(id) != b.Degree(id) {
			t.Fatalf("%s: node %d degree %d vs %d", ctx, v, a.Degree(id), b.Degree(id))
		}
		if fmt.Sprint(a.IncidentEdges(id)) != fmt.Sprint(b.IncidentEdges(id)) {
			t.Fatalf("%s: node %d incidence %v vs %v", ctx, v, a.IncidentEdges(id), b.IncidentEdges(id))
		}
		if fmt.Sprint(a.Neighbors(id)) != fmt.Sprint(b.Neighbors(id)) {
			t.Fatalf("%s: node %d neighbors differ", ctx, v)
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		ea, eb := a.Edge(EdgeID(e)), b.Edge(EdgeID(e))
		if ea.Label != eb.Label || fmt.Sprint(ea.Nodes) != fmt.Sprint(eb.Nodes) {
			t.Fatalf("%s: edge %d %v@%d vs %v@%d", ctx, e, ea.Nodes, ea.Label, eb.Nodes, eb.Label)
		}
	}
	if a.String() != b.String() {
		t.Fatalf("%s: String %q vs %q", ctx, a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: a invalid: %v", ctx, err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("%s: b invalid: %v", ctx, err)
	}
	ca, cb := a.Freeze(), b.Freeze()
	if fmt.Sprint(ca.labels) != fmt.Sprint(cb.labels) {
		t.Fatalf("%s: dictionaries %v vs %v", ctx, ca.labels, cb.labels)
	}
	if fmt.Sprint(ca.nodeLab) != fmt.Sprint(cb.nodeLab) || fmt.Sprint(ca.edgeLab) != fmt.Sprint(cb.edgeLab) {
		t.Fatalf("%s: interned label ids diverge", ctx)
	}
}

// TestFrozenFirstMatchesMapsBuilt checks that a FromFrozen graph is
// indistinguishable from its maps-built original through every accessor —
// without ever thawing (reads and Freeze on the twin must not build a CSR).
func TestFrozenFirstMatchesMapsBuilt(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		g := genGraph(seed)
		tw := frozenTwin(t, g)
		before := FreezeBuilds()
		compareGraphs(t, fmt.Sprintf("seed %d", seed), g, tw)
		if !tw.lazy.Load() {
			t.Fatalf("seed %d: read-only accessors thawed the twin", seed)
		}
		// compareGraphs froze only g-side views that were already memoized;
		// the twin side must not have rebuilt anything.
		if d := FreezeBuilds() - before; d != 0 {
			t.Fatalf("seed %d: %d CSR builds during read-only comparison", seed, d)
		}
	}
}

// TestThawOnMutate applies identical mutation scripts to a maps-built graph
// and its frozen-first twin: the first mutation must thaw the twin, and the
// two must stay convergent after every step.
func TestThawOnMutate(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		g := genGraph(seed)
		tw := frozenTwin(t, g)
		rng := rand.New(rand.NewSource(seed ^ 0x7a3))
		for step := 0; step < 12; step++ {
			switch op := rng.Intn(4); op {
			case 0:
				l := Label(1 + rng.Intn(5))
				g.AddNode(l)
				tw.AddNode(l)
			case 1:
				n := g.NumNodes()
				k := rng.Intn(n) + 1
				nodes := make([]NodeID, 0, k)
				for _, v := range rng.Perm(n)[:k] {
					nodes = append(nodes, NodeID(v))
				}
				l := Label(10 + rng.Intn(3))
				g.AddEdge(l, nodes...)
				tw.AddEdge(l, nodes...)
			case 2:
				v := NodeID(rng.Intn(g.NumNodes()))
				l := Label(1 + rng.Intn(5))
				g.SetNodeLabel(v, l)
				tw.SetNodeLabel(v, l)
			case 3:
				if g.NumEdges() > 0 {
					e := EdgeID(rng.Intn(g.NumEdges()))
					l := Label(10 + rng.Intn(3))
					g.SetEdgeLabel(e, l)
					tw.SetEdgeLabel(e, l)
				}
			}
			if tw.lazy.Load() && step == 0 && g.NumEdges() > 0 {
				// op 3 on an edgeless graph is the only no-op path
				t.Fatalf("seed %d: first mutation did not thaw", seed)
			}
			compareGraphs(t, fmt.Sprintf("seed %d step %d", seed, step), g, tw)
		}
		if tw.lazy.Load() {
			t.Fatalf("seed %d: twin still lazy after mutation script", seed)
		}
	}
}

// TestLazyCloneIndependent checks that the O(1) clone of a frozen-first
// graph shares storage safely: mutating either copy leaves the other as it
// was.
func TestLazyCloneIndependent(t *testing.T) {
	g := genGraph(42)
	tw := frozenTwin(t, g)
	cl := tw.Clone()
	if !cl.lazy.Load() {
		t.Fatal("clone of a lazy graph should stay lazy")
	}
	want := tw.String()
	cl.AddEdge(Label(99), 0)
	cl.SetNodeLabel(0, 77)
	if tw.String() != want {
		t.Fatalf("mutating clone changed original:\n  was %s\n  now %s", want, tw)
	}
	if err := tw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	want = cl.String()
	tw.AddNode(5)
	if cl.String() != want {
		t.Fatal("mutating original changed clone")
	}
}

// TestFromFrozenNormalizesDictionary feeds FromFrozen a dictionary with
// shuffled, duplicate and unused entries; the result must intern identically
// to a maps-built equivalent, since digests and snapshots depend on the
// first-seen canonical order.
func TestFromFrozenNormalizesDictionary(t *testing.T) {
	// Nodes labeled [7, 3, 7], one edge {0,1} labeled 9, via a messy dict:
	// entries [99 (unused), 3, 7, 9, 7 (duplicate)].
	dict := []Label{99, 3, 7, 9, 7}
	tw, err := FromFrozen(dict, []int32{4, 1, 2}, []int32{3}, []int32{0, 2}, []NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewLabeled([]Label{7, 3, 7})
	g.AddEdge(9, 0, 1)
	compareGraphs(t, "normalized dict", g, tw)
	if got := tw.Freeze().Labels(); fmt.Sprint(got) != fmt.Sprint([]Label{7, 3, 9}) {
		t.Fatalf("dictionary not normalized to first-seen order: %v", got)
	}
}

// TestFromFrozenRejects checks reject-before-construct on malformed arrays.
func TestFromFrozenRejects(t *testing.T) {
	cases := []struct {
		name    string
		labels  []Label
		nodeLab []int32
		edgeLab []int32
		edgeOff []int32
		members []NodeID
	}{
		{"offset count", []Label{1}, []int32{0, 0}, []int32{0}, []int32{0}, nil},
		{"offset span", []Label{1}, []int32{0, 0}, []int32{0}, []int32{0, 3}, []NodeID{0, 1}},
		{"offsets decrease", []Label{1}, []int32{0, 0}, []int32{0, 0}, []int32{0, 2, 1}, []NodeID{0, 1}[:1]},
		{"member out of range", []Label{1}, []int32{0, 0}, []int32{0}, []int32{0, 1}, []NodeID{2}},
		{"members descending", []Label{1}, []int32{0, 0}, []int32{0}, []int32{0, 2}, []NodeID{1, 0}},
		{"members duplicate", []Label{1}, []int32{0, 0}, []int32{0}, []int32{0, 2}, []NodeID{1, 1}},
		{"node label id", []Label{1}, []int32{0, 1}, []int32{0}, []int32{0, 0}, nil},
		{"edge label id", []Label{1}, []int32{0, 0}, []int32{-1}, []int32{0, 0}, nil},
	}
	for _, tc := range cases {
		if _, err := FromFrozen(tc.labels, tc.nodeLab, tc.edgeLab, tc.edgeOff, tc.members); err == nil {
			t.Errorf("%s: accepted malformed input", tc.name)
		}
	}
}
