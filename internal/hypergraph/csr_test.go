package hypergraph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		b.Add(i)
	}
	b.Add(65) // duplicate insert is a no-op
	b.Remove(1)
	b.Remove(2) // absent remove is a no-op
	want := []int{0, 63, 64, 65, 127, 129}
	if got := b.Count(); got != len(want) {
		t.Fatalf("Count = %d, want %d", got, len(want))
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach yielded %v, want %v", got, want)
		}
	}
	for i := 0; i < 130; i++ {
		inWant := false
		for _, w := range want {
			if w == i {
				inWant = true
			}
		}
		if b.Has(i) != inWant {
			t.Fatalf("Has(%d) = %v, want %v", i, b.Has(i), inWant)
		}
	}
	b.Grow(1000)
	if !b.Has(129) || b.Count() != len(want) {
		t.Fatal("Grow lost members")
	}
	b.Add(999)
	if !b.Has(999) {
		t.Fatal("Add after Grow failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left members behind")
	}
}

// refNeighbors is the pre-CSR map-based definition of NEI(v), kept as the
// differential oracle.
func refNeighbors(h *Hypergraph, v NodeID) []NodeID {
	seen := map[NodeID]struct{}{v: {}}
	for _, e := range h.IncidentEdges(v) {
		for _, u := range h.Edge(e).Nodes {
			seen[u] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalNodeIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalEdgeIDs(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkCSRAgrees asserts the frozen CSR view is semantically identical to
// the slice-of-slices representation: per-node incidence, degree, neighbor
// sets, per-edge member lists, label interning round-trips, and the ego
// networks' node/edge sets.
func checkCSRAgrees(t *testing.T, h *Hypergraph) {
	t.Helper()
	c := h.Freeze()
	if c2 := h.Freeze(); c2 != c {
		t.Fatal("repeated Freeze without mutation returned a different instance")
	}
	if c.NumNodes() != h.NumNodes() || c.NumEdges() != h.NumEdges() {
		t.Fatalf("CSR is %dx%d, graph is %dx%d", c.NumNodes(), c.NumEdges(), h.NumNodes(), h.NumEdges())
	}
	incid := 0
	for v := 0; v < h.NumNodes(); v++ {
		id := NodeID(v)
		if c.Degree(id) != h.Degree(id) {
			t.Fatalf("node %d: CSR degree %d, graph degree %d", v, c.Degree(id), h.Degree(id))
		}
		if !equalEdgeIDs(c.IncidentEdges(id), h.IncidentEdges(id)) {
			t.Fatalf("node %d: CSR incidence %v, graph %v", v, c.IncidentEdges(id), h.IncidentEdges(id))
		}
		if got := c.Labels()[c.NodeLabelID(id)]; got != h.NodeLabel(id) {
			t.Fatalf("node %d: interned label %d, graph label %d", v, got, h.NodeLabel(id))
		}
		if want := refNeighbors(h, id); !equalNodeIDs(h.Neighbors(id), want) {
			t.Fatalf("node %d: Neighbors %v, reference %v", v, h.Neighbors(id), want)
		}
		if h.NumNeighbors(id) != len(refNeighbors(h, id)) {
			t.Fatalf("node %d: NumNeighbors %d, reference %d", v, h.NumNeighbors(id), len(refNeighbors(h, id)))
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		id := EdgeID(e)
		if c.Arity(id) != h.Edge(id).Arity() {
			t.Fatalf("edge %d: CSR arity %d, graph arity %d", e, c.Arity(id), h.Edge(id).Arity())
		}
		if !equalNodeIDs(c.Members(id), h.Edge(id).Nodes) {
			t.Fatalf("edge %d: CSR members %v, graph %v", e, c.Members(id), h.Edge(id).Nodes)
		}
		if got := c.Labels()[c.EdgeLabelID(id)]; got != h.EdgeLabel(id) {
			t.Fatalf("edge %d: interned label %d, graph label %d", e, got, h.EdgeLabel(id))
		}
		incid += c.Arity(id)
	}
	if c.Incidences() != incid {
		t.Fatalf("CSR incidences %d, want %d", c.Incidences(), incid)
	}
	// Label dictionary is bijective over the labels actually present.
	for i, l := range c.Labels() {
		id, ok := c.LabelID(l)
		if !ok || id != int32(i) {
			t.Fatalf("label %d: dictionary lookup (%d, %v), want (%d, true)", l, id, ok, i)
		}
	}
	// Ego networks: node set is NEI(v) in host ids, edges are exactly the
	// host edges inside it.
	for v := 0; v < h.NumNodes(); v++ {
		ego := h.Ego(NodeID(v))
		want := refNeighbors(h, NodeID(v))
		got := make([]NodeID, ego.NumNodes())
		for i := range got {
			got[i] = ego.OrigID(NodeID(i))
		}
		if !equalNodeIDs(got, want) {
			t.Fatalf("node %d: ego nodes %v, want %v", v, got, want)
		}
		inSet := map[NodeID]bool{}
		for _, u := range want {
			inSet[u] = true
		}
		wantEdges := 0
		for _, e := range h.Edges() {
			inside := true
			for _, u := range e.Nodes {
				if !inSet[u] {
					inside = false
					break
				}
			}
			if inside {
				wantEdges++
			}
		}
		if ego.NumEdges() != wantEdges {
			t.Fatalf("node %d: ego has %d edges, want %d", v, ego.NumEdges(), wantEdges)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// applyMutationScript drives h through a deterministic mutation sequence
// decoded from script bytes, freezing and differentially checking after
// every step — the invalidation contract (AddNode/AddEdge/SetNodeLabel/
// SetEdgeLabel must each discard the frozen view) is exercised on every
// mutation kind.
func applyMutationScript(t *testing.T, script []byte) {
	t.Helper()
	h := New(2)
	for i := 0; i < len(script); i++ {
		op := script[i]
		arg := func() int {
			i++
			if i < len(script) {
				return int(script[i])
			}
			return 0
		}
		switch op % 4 {
		case 0:
			h.AddNode(Label(arg() % 5))
		case 1:
			n := h.NumNodes()
			k := arg()%4 + 1
			nodes := make([]NodeID, k)
			for j := range nodes {
				nodes[j] = NodeID(arg() % n)
			}
			h.AddEdge(Label(arg()%5), nodes...)
		case 2:
			h.SetNodeLabel(NodeID(arg()%h.NumNodes()), Label(arg()%5))
		case 3:
			if h.NumEdges() > 0 {
				h.SetEdgeLabel(EdgeID(arg()%h.NumEdges()), Label(arg()%5))
			}
		}
		checkCSRAgrees(t, h)
	}
}

// TestCSRDifferential runs seeded random mutation sequences through the
// freeze-check cycle.
func TestCSRDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := make([]byte, 60)
		for i := range script {
			script[i] = byte(rng.Intn(256))
		}
		applyMutationScript(t, script)
	}
}

// FuzzCSRDifferential lets the fuzzer search for a mutation sequence where
// the CSR view and the slice-of-slices semantics diverge.
func FuzzCSRDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 1, 0})
	f.Add([]byte{1, 3, 0, 1, 0, 2, 1, 4, 3, 0, 2})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 200 {
			script = script[:200]
		}
		applyMutationScript(t, script)
	})
}
