package hypergraph

import (
	"math/rand"
	"sync"
	"testing"
)

func TestGenerationPinUnpin(t *testing.T) {
	v := NewVersioned(Fig1())
	if got := v.Published(); got != 1 {
		t.Fatalf("Published = %d, want 1", got)
	}
	gen := v.Pin()
	if gen.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", gen.Seq())
	}
	if v.PinnedReaders() != 1 || gen.Pins() != 1 {
		t.Fatalf("pins = (%d, %d), want (1, 1)", v.PinnedReaders(), gen.Pins())
	}
	gen2 := v.Pin()
	if v.PinnedReaders() != 2 {
		t.Fatalf("PinnedReaders = %d, want 2", v.PinnedReaders())
	}
	gen.Unpin()
	gen2.Unpin()
	if v.PinnedReaders() != 0 {
		t.Fatalf("PinnedReaders = %d, want 0", v.PinnedReaders())
	}
}

func TestMVCCPinnedReaderSeesOldGeneration(t *testing.T) {
	v := NewVersioned(Fig1())
	old := v.Pin()
	defer old.Unpin()
	n, m := old.Graph().NumNodes(), old.Graph().NumEdges()

	b := v.Begin()
	x := b.AddNode(9)
	b.AddEdge(99, x, 0)
	b.RemoveEdge(0)
	gen, delta := b.Commit()

	if old.Graph().NumNodes() != n || old.Graph().NumEdges() != m {
		t.Fatalf("pinned generation mutated: (%d,%d) -> (%d,%d)",
			n, m, old.Graph().NumNodes(), old.Graph().NumEdges())
	}
	if err := old.Graph().Validate(); err != nil {
		t.Fatalf("pinned generation invalid after commit: %v", err)
	}
	if gen.Seq() != 2 || v.Current() != gen {
		t.Fatalf("commit did not publish generation 2 (seq=%d)", gen.Seq())
	}
	if gen.Graph().NumNodes() != n+1 || gen.Graph().NumEdges() != m {
		t.Fatalf("new generation = (%d,%d), want (%d,%d)",
			gen.Graph().NumNodes(), gen.Graph().NumEdges(), n+1, m)
	}
	if delta.Seq != 2 || delta.NodesAdded != 1 || delta.EdgesAdded != 1 || delta.EdgesRemoved != 1 {
		t.Fatalf("delta = %+v, want seq 2, +1 node, +1/-1 edges", delta)
	}
	if delta.Full {
		t.Fatal("delta.Full set without node removal")
	}
	if v.Published() != 2 || v.Batches() != 1 {
		t.Fatalf("counters = (%d published, %d batches), want (2, 1)", v.Published(), v.Batches())
	}
}

func TestMVCCAbortLeavesCurrent(t *testing.T) {
	v := NewVersioned(Fig1())
	cur := v.Current()
	b := v.Begin()
	b.AddNode(5)
	b.Abort()
	if v.Current() != cur || v.Published() != 1 {
		t.Fatal("abort must not publish")
	}
	// writeMu released: a fresh batch can begin and commit.
	b2 := v.Begin()
	b2.AddNode(5)
	if gen, _ := b2.Commit(); gen.Seq() != 2 {
		t.Fatalf("post-abort commit seq = %d, want 2", gen.Seq())
	}
}

func TestMVCCBatchUseAfterCommitPanics(t *testing.T) {
	v := NewVersioned(Fig1())
	b := v.Begin()
	b.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode on a committed batch did not panic")
		}
	}()
	b.AddNode(1)
}

// TestGenerationDifferentialCSR is the MVCC half of the differential
// contract: a random mutation stream applied through Versioned batches must
// publish generations byte-identical to a graph rebuilt from scratch by
// replaying the same prefix.
func TestGenerationDifferentialCSR(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		ops := randomOps(rng, 60)
		v := NewVersioned(New(2))
		scratch := New(2)
		for len(ops) > 0 {
			k := 1 + rng.Intn(4)
			if k > len(ops) {
				k = len(ops)
			}
			b := v.Begin()
			for _, op := range ops[:k] {
				applyBatchOp(b, op)
				applyOp(scratch, op)
			}
			ops = ops[k:]
			gen, _ := b.Commit()
			requireCSRIdentical(t, gen.Graph().Freeze(), scratch.Clone().Freeze())
			if err := gen.Graph().Validate(); err != nil {
				t.Fatalf("seed %d: generation %d invalid: %v", seed, gen.Seq(), err)
			}
		}
	}
}

func applyBatchOp(b *Batch, op mutationOp) {
	switch op.kind {
	case 0:
		b.AddNode(op.label)
	case 1:
		b.AddEdge(op.label, op.nodes...)
	case 2:
		b.RemoveEdge(op.edge)
	case 3:
		b.RemoveNode(op.node)
	case 4:
		b.SetNodeLabel(op.node, op.label)
	case 5:
		b.SetEdgeLabel(op.edge, op.label)
	}
}

// TestMVCCEgoCarryOver checks both halves of incremental ego invalidation:
// egos of nodes outside the delta are carried to the new generation (same
// instance — no recompute), and every node's ego on the new generation
// matches a from-scratch computation.
func TestMVCCEgoCarryOver(t *testing.T) {
	g := New(0)
	for i := 0; i < 8; i++ {
		g.AddNode(Label(1 + i%3))
	}
	// Two components: {0,1,2,3} and {4,5,6,7}.
	g.AddEdge(10, 0, 1)
	g.AddEdge(11, 1, 2, 3)
	g.AddEdge(12, 4, 5)
	g.AddEdge(13, 5, 6, 7)

	v := NewVersioned(g)
	base := v.Current().Graph()
	warm := make([]*Hypergraph, 8)
	for i := range warm {
		warm[i] = base.Ego(NodeID(i))
	}

	b := v.Begin()
	b.AddEdge(14, 0, 2) // touches only component one
	gen, delta := b.Commit()

	for i := 4; i < 8; i++ {
		if delta.Invalidates(NodeID(i)) {
			t.Fatalf("node %d in untouched component marked invalid", i)
		}
		if got := gen.Graph().Ego(NodeID(i)); got != warm[i] {
			t.Fatalf("node %d ego recomputed despite being outside the delta", i)
		}
	}
	for i := 0; i < 4; i++ {
		if !delta.Invalidates(NodeID(i)) {
			t.Fatalf("node %d touched by new edge not marked invalid", i)
		}
	}
	// Every ego on the new generation equals a from-scratch computation
	// (Clone never carries the ego cache, so the comparator recomputes).
	scratch := gen.Graph().Clone()
	for i := 0; i < 8; i++ {
		got := gen.Graph().Ego(NodeID(i)).String()
		want := scratch.Ego(NodeID(i)).String()
		if got != want {
			t.Fatalf("node %d ego diverged after carry-over:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestMVCCRemoveNodeForcesFullInvalidation(t *testing.T) {
	v := NewVersioned(Fig1())
	b := v.Begin()
	b.RemoveNode(0)
	_, delta := b.Commit()
	if !delta.Full {
		t.Fatal("RemoveNode must set Delta.Full")
	}
	if !delta.Invalidates(5) {
		t.Fatal("full delta must invalidate every node")
	}
}

// TestMVCCConcurrentReadersWriter exercises the pin/publish protocol under
// the race detector: readers continuously pin whatever generation is
// current and traverse it while a writer publishes a stream of batches.
func TestMVCCConcurrentReadersWriter(t *testing.T) {
	v := NewVersioned(Fig1())
	const (
		readers = 4
		batches = 40
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := v.Pin()
				g := gen.Graph()
				n := g.NumNodes()
				for i := 0; i < n; i++ {
					g.Ego(NodeID(i % n))
					g.NumNeighbors(NodeID(i % n))
				}
				if err := g.Validate(); err != nil {
					t.Errorf("reader %d: pinned generation invalid: %v", r, err)
					gen.Unpin()
					return
				}
				gen.Unpin()
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < batches; i++ {
		b := v.Begin()
		for _, op := range randomOps(rng, 3) {
			applyBatchOp(b, op)
		}
		b.Commit()
	}
	close(stop)
	wg.Wait()
	if v.Published() != batches+1 {
		t.Fatalf("Published = %d, want %d", v.Published(), batches+1)
	}
	if v.PinnedReaders() != 0 {
		t.Fatalf("PinnedReaders = %d, want 0 after all readers exit", v.PinnedReaders())
	}
}
