package hypergraph

import "sort"

// Bipartite is the bipartite incidence-graph view of a hypergraph (Fig. 1(b)
// of the paper): the left part holds the hypergraph's nodes, the right part
// holds one vertex per hyperedge, and an edge (v, E) exists iff v ∈ E.
//
// HGED on a hypergraph is equivalent to a constrained GED on this bipartite
// view (Section III "Hardness discussions"), which the bipartite-based EDC
// computation of Algorithm 2 exploits.
type Bipartite struct {
	// NodeLabels[i] is the label of left vertex i (hypergraph node i).
	NodeLabels []Label
	// EdgeLabels[j] is the label of right vertex j (hyperedge j).
	EdgeLabels []Label
	// Adj[j] lists the left vertices incident to right vertex j, ascending.
	Adj [][]NodeID
	// NodeAdj[i] lists the right vertices incident to left vertex i,
	// ascending.
	NodeAdj [][]EdgeID
}

// ToBipartite builds the bipartite incidence view of h.
func ToBipartite(h *Hypergraph) *Bipartite {
	n, m := h.NumNodes(), h.NumEdges()
	b := &Bipartite{
		NodeLabels: make([]Label, n),
		EdgeLabels: make([]Label, m),
		Adj:        make([][]NodeID, m),
		NodeAdj:    make([][]EdgeID, n),
	}
	for i := range b.NodeLabels {
		b.NodeLabels[i] = h.NodeLabel(NodeID(i))
	}
	for j := 0; j < m; j++ {
		e := h.Edge(EdgeID(j))
		b.EdgeLabels[j] = e.Label
		b.Adj[j] = append([]NodeID(nil), e.Nodes...)
	}
	for i := 0; i < n; i++ {
		adj := append([]EdgeID(nil), h.IncidentEdges(NodeID(i))...)
		sort.Slice(adj, func(x, y int) bool { return adj[x] < adj[y] })
		b.NodeAdj[i] = adj
	}
	return b
}

// NumLeft returns the number of left (node) vertices.
func (b *Bipartite) NumLeft() int { return len(b.NodeLabels) }

// NumRight returns the number of right (hyperedge) vertices.
func (b *Bipartite) NumRight() int { return len(b.EdgeLabels) }

// NumIncidences returns the total number of bipartite edges, i.e. the sum of
// hyperedge cardinalities.
func (b *Bipartite) NumIncidences() int {
	n := 0
	for _, a := range b.Adj {
		n += len(a)
	}
	return n
}

// FromBipartite reconstructs the hypergraph a bipartite view was built from.
func FromBipartite(b *Bipartite) *Hypergraph {
	h := NewLabeled(b.NodeLabels)
	for j, nodes := range b.Adj {
		h.AddEdge(b.EdgeLabels[j], nodes...)
	}
	return h
}
