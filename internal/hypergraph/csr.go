package hypergraph

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-capacity dense bit vector used for node/edge set
// arithmetic on the hot paths (neighbor scans, ego extraction, connected
// components, edit-path replay). It replaces the map[ID]struct{} idiom:
// membership tests and inserts are single word ops, iteration is ascending
// by construction (no sort needed), and a whole set clears with one memclr.
type Bitset []uint64

// NewBitset returns a bitset able to hold members 0..n-1, all unset.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Has reports whether i is a member.
func (b Bitset) Has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add inserts i.
func (b Bitset) Add(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (b Bitset) Remove(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Reset unsets every member, keeping the capacity.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Grow reallocates b in place so it can hold members 0..n-1, preserving
// the current members.
func (b *Bitset) Grow(n int) {
	want := (n + 63) / 64
	if want <= len(*b) {
		return
	}
	nb := make(Bitset, want)
	copy(nb, *b)
	*b = nb
}

// ForEach calls f for every member in ascending order.
func (b Bitset) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// CSR is a frozen, cache-friendly view of a hypergraph: both incidence
// directions laid out as flat offset+data arrays (compressed sparse row),
// with all labels interned into one dense dictionary. It is built once per
// graph by Freeze, shared by every reader, and discarded on the first
// mutation — the same lifecycle as the ego cache. All slices returned by
// its accessors alias the view and must not be mutated.
//
// Layout invariants:
//   - NodeEdges ranges list a node's incident hyperedges in ascending
//     EdgeID order (AddEdge appends increasing ids).
//   - EdgeNodes ranges list a hyperedge's members in ascending NodeID order
//     (hyperedge node lists are kept sorted).
//   - The label dictionary assigns dense ids in first-seen order scanning
//     node labels by id, then hyperedge labels by id — deterministic for a
//     given graph, so two Freezes of equal graphs intern identically.
type CSR struct {
	nodeOff   []int32  // len n+1; node v's incident edges at NodeEdges[nodeOff[v]:nodeOff[v+1]]
	nodeEdges []EdgeID // concatenated incident-edge lists
	edgeOff   []int32  // len m+1; edge e's members at EdgeNodes[edgeOff[e]:edgeOff[e+1]]
	edgeNodes []NodeID // concatenated member lists, ascending per edge
	nodeLab   []int32  // interned node label ids, len n
	edgeLab   []int32  // interned hyperedge label ids, len m
	labels    []Label  // dense id -> label
	labelID   map[Label]int32
}

// NumNodes returns |V|.
func (c *CSR) NumNodes() int { return len(c.nodeLab) }

// NumEdges returns |E|.
func (c *CSR) NumEdges() int { return len(c.edgeLab) }

// Incidences returns Σ|E|, the total membership count.
func (c *CSR) Incidences() int { return len(c.edgeNodes) }

// IncidentEdges returns the hyperedges containing v, ascending by id.
func (c *CSR) IncidentEdges(v NodeID) []EdgeID {
	return c.nodeEdges[c.nodeOff[v]:c.nodeOff[v+1]]
}

// Members returns the nodes of hyperedge e, ascending by id.
func (c *CSR) Members(e EdgeID) []NodeID {
	return c.edgeNodes[c.edgeOff[e]:c.edgeOff[e+1]]
}

// Degree returns DEG(v) as an offset difference.
func (c *CSR) Degree(v NodeID) int { return int(c.nodeOff[v+1] - c.nodeOff[v]) }

// Arity returns |E_e| as an offset difference.
func (c *CSR) Arity(e EdgeID) int { return int(c.edgeOff[e+1] - c.edgeOff[e]) }

// NumLabels returns the size of the interned label dictionary.
func (c *CSR) NumLabels() int { return len(c.labels) }

// Labels returns the dense-id → label dictionary.
func (c *CSR) Labels() []Label { return c.labels }

// LabelID returns the dense id of l and whether l occurs in the graph.
func (c *CSR) LabelID(l Label) (int32, bool) {
	id, ok := c.labelID[l]
	return id, ok
}

// NodeLabelID returns the interned id of l(v).
func (c *CSR) NodeLabelID(v NodeID) int32 { return c.nodeLab[v] }

// EdgeLabelID returns the interned id of l(E_e).
func (c *CSR) EdgeLabelID(e EdgeID) int32 { return c.edgeLab[e] }

// NodeLabelIDs returns the full interned node-label array.
func (c *CSR) NodeLabelIDs() []int32 { return c.nodeLab }

// EdgeLabelIDs returns the full interned hyperedge-label array.
func (c *CSR) EdgeLabelIDs() []int32 { return c.edgeLab }

func (c *CSR) intern(l Label) int32 {
	if id, ok := c.labelID[l]; ok {
		return id
	}
	id := int32(len(c.labels))
	c.labels = append(c.labels, l)
	c.labelID[l] = id
	return id
}

// Freeze returns the CSR view of h, building it on first use. The view is
// memoized until the next mutation (AddNode, AddEdge, SetNodeLabel,
// SetEdgeLabel), which discards it alongside the ego cache; the next Freeze
// rebuilds from the current graph. Concurrent Freezes are safe and converge
// on one canonical instance.
func (h *Hypergraph) Freeze() *CSR {
	h.egoMu.RLock()
	c := h.csr
	h.egoMu.RUnlock()
	if c != nil {
		return c
	}
	c = h.buildCSR()
	h.egoMu.Lock()
	if h.csr != nil {
		c = h.csr // lost the race: keep the canonical instance
	} else {
		h.csr = c
	}
	h.egoMu.Unlock()
	return c
}

// frozen returns the current CSR view without forcing a build, or nil.
// Read paths that must stay cheap on mutating graphs (Neighbors during
// construction) use it to avoid an O(n+m) rebuild per call.
func (h *Hypergraph) frozen() *CSR {
	h.egoMu.RLock()
	c := h.csr
	h.egoMu.RUnlock()
	return c
}

// freezeBuilds counts process-wide CSR constructions (Freeze cache misses).
// Cold-start benchmarks and the snapshot differential tests read it to prove
// a frozen-first load path performs zero rebuilds.
var freezeBuilds atomic.Int64

// FreezeBuilds returns the number of CSR views built by this process so far.
// Graphs constructed frozen-first (FromFrozen) never increment it unless
// they are mutated and re-frozen.
func FreezeBuilds() int64 { return freezeBuilds.Load() }

func (h *Hypergraph) buildCSR() *CSR {
	freezeBuilds.Add(1)
	n, m := len(h.nodeLabels), len(h.edges)
	incid := 0
	for i := range h.edges {
		incid += len(h.edges[i].Nodes)
	}
	c := &CSR{
		nodeOff:   make([]int32, n+1),
		nodeEdges: make([]EdgeID, incid),
		edgeOff:   make([]int32, m+1),
		edgeNodes: make([]NodeID, incid),
		nodeLab:   make([]int32, n),
		edgeLab:   make([]int32, m),
		labelID:   make(map[Label]int32),
	}
	for v, l := range h.nodeLabels {
		c.nodeLab[v] = c.intern(l)
	}
	for e := range h.edges {
		c.edgeLab[e] = c.intern(h.edges[e].Label)
	}
	pos := int32(0)
	for e := range h.edges {
		c.edgeOff[e] = pos
		pos += int32(copy(c.edgeNodes[pos:], h.edges[e].Nodes))
	}
	c.edgeOff[m] = pos
	pos = 0
	for v := range h.incidence {
		c.nodeOff[v] = pos
		pos += int32(copy(c.nodeEdges[pos:], h.incidence[v]))
	}
	c.nodeOff[n] = pos
	return c
}

// neighborScan marks NEI(v) = {v} ∪ {u : ∃E, {u,v} ⊆ E} in b and returns
// |NEI(v)|. b must hold NumNodes bits and start cleared. This is the one
// shared scan behind Neighbors and NumNeighbors: it walks the frozen CSR's
// offset ranges when a freeze is current and the mutable slice-of-slices
// otherwise, so construction-time callers never pay for a rebuild.
func (h *Hypergraph) neighborScan(v NodeID, b Bitset) int {
	b.Add(int(v))
	count := 1
	if c := h.frozen(); c != nil {
		for _, e := range c.IncidentEdges(v) {
			for _, u := range c.Members(e) {
				if !b.Has(int(u)) {
					b.Add(int(u))
					count++
				}
			}
		}
		return count
	}
	for _, e := range h.incidence[v] {
		for _, u := range h.edges[e].Nodes {
			if !b.Has(int(u)) {
				b.Add(int(u))
				count++
			}
		}
	}
	return count
}
