package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// requireCSRIdentical asserts that two frozen views are equal array by
// array — the differential contract for incremental mutation: a graph
// mutated in place must freeze to the same bytes as one rebuilt from
// scratch over the final state.
func requireCSRIdentical(t *testing.T, got, want *CSR) {
	t.Helper()
	if !reflect.DeepEqual(got.nodeOff, want.nodeOff) {
		t.Fatalf("nodeOff diverged:\n got %v\nwant %v", got.nodeOff, want.nodeOff)
	}
	if !reflect.DeepEqual(got.nodeEdges, want.nodeEdges) {
		t.Fatalf("nodeEdges diverged:\n got %v\nwant %v", got.nodeEdges, want.nodeEdges)
	}
	if !reflect.DeepEqual(got.edgeOff, want.edgeOff) {
		t.Fatalf("edgeOff diverged:\n got %v\nwant %v", got.edgeOff, want.edgeOff)
	}
	if !reflect.DeepEqual(got.edgeNodes, want.edgeNodes) {
		t.Fatalf("edgeNodes diverged:\n got %v\nwant %v", got.edgeNodes, want.edgeNodes)
	}
	if !reflect.DeepEqual(got.nodeLab, want.nodeLab) {
		t.Fatalf("nodeLab diverged:\n got %v\nwant %v", got.nodeLab, want.nodeLab)
	}
	if !reflect.DeepEqual(got.edgeLab, want.edgeLab) {
		t.Fatalf("edgeLab diverged:\n got %v\nwant %v", got.edgeLab, want.edgeLab)
	}
	if !reflect.DeepEqual(got.labels, want.labels) {
		t.Fatalf("label dictionary diverged:\n got %v\nwant %v", got.labels, want.labels)
	}
	if !reflect.DeepEqual(got.labelID, want.labelID) {
		t.Fatalf("labelID diverged:\n got %v\nwant %v", got.labelID, want.labelID)
	}
}

func TestRemoveEdgeBasic(t *testing.T) {
	g := Fig1()
	m := g.NumEdges()
	removed := g.Edge(1)
	g.RemoveEdge(1)
	if g.NumEdges() != m-1 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), m-1)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The same graph built from scratch without edge 1 freezes identically.
	want := New(0)
	ref := Fig1()
	for v := 0; v < ref.NumNodes(); v++ {
		want.AddNode(ref.NodeLabel(NodeID(v)))
	}
	for e := 0; e < ref.NumEdges(); e++ {
		if e == 1 {
			continue
		}
		want.AddEdge(ref.EdgeLabel(EdgeID(e)), ref.Edge(EdgeID(e)).Nodes...)
	}
	requireCSRIdentical(t, g.Freeze(), want.Freeze())
	// Members of the removed edge no longer list it.
	for _, v := range removed.Nodes {
		for _, e := range g.IncidentEdges(v) {
			if !g.Edge(e).Contains(v) {
				t.Fatalf("node %d incident to edge %d which does not contain it", v, e)
			}
		}
	}
}

func TestRemoveEdgePanicsOutOfRange(t *testing.T) {
	g := Fig1()
	for _, e := range []EdgeID{EdgeID(g.NumEdges()), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RemoveEdge(%d) did not panic", e)
				}
			}()
			g.RemoveEdge(e)
		}()
	}
}

func TestRemoveNodeBasic(t *testing.T) {
	g := New(0)
	a := g.AddNode(1)
	b := g.AddNode(2)
	c := g.AddNode(3)
	d := g.AddNode(4)
	g.AddEdge(10, a, b)
	g.AddEdge(11, b, c, d)
	g.AddEdge(12, a)

	g.RemoveNode(b)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels shifted: ids are now a=0(1), c=1(3), d=2(4).
	for i, want := range []Label{1, 3, 4} {
		if got := g.NodeLabel(NodeID(i)); got != want {
			t.Fatalf("node %d label = %d, want %d", i, got, want)
		}
	}
	// Edge 0 lost b and keeps a; edge 1 keeps shifted c,d.
	if got := g.Edge(0).Nodes; !reflect.DeepEqual(got, []NodeID{0}) {
		t.Fatalf("edge 0 nodes = %v, want [0]", got)
	}
	if got := g.Edge(1).Nodes; !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Fatalf("edge 1 nodes = %v, want [1 2]", got)
	}
}

func TestRemoveNodeLeavesEmptyHyperedge(t *testing.T) {
	g := New(0)
	a := g.AddNode(1)
	g.AddNode(2)
	g.AddEdge(10, a)
	g.RemoveNode(a)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (cardinality-0 hyperedges are legal)", g.NumEdges())
	}
	if got := g.Edge(0).Arity(); got != 0 {
		t.Fatalf("edge arity = %d, want 0", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodePanicsOutOfRange(t *testing.T) {
	g := Fig1()
	for _, v := range []NodeID{NodeID(g.NumNodes()), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RemoveNode(%d) did not panic", v)
				}
			}()
			g.RemoveNode(v)
		}()
	}
}

// TestRemoveDoesNotCorruptSharedCSR is the aliasing regression test for
// copy-on-write removal: a thawed frozen-first graph's lists alias the CSR
// arrays that still back a lazy clone, and removal must never write through
// them.
func TestRemoveDoesNotCorruptSharedCSR(t *testing.T) {
	base := Fig1()
	frozen := base.Freeze()
	lazyClone := base.Clone() // shares frozen
	mut := base.Clone()       // shares frozen too; we mutate this one
	wantNodes := append([]NodeID(nil), lazyClone.Edge(2).Nodes...)
	wantInc := append([]EdgeID(nil), lazyClone.IncidentEdges(wantNodes[0])...)

	mut.RemoveEdge(0)
	mut.RemoveNode(1)
	if err := mut.Validate(); err != nil {
		t.Fatal(err)
	}
	// The shared CSR and the untouched clone are unchanged.
	if got := frozen.Members(2); !reflect.DeepEqual([]NodeID(got), wantNodes) {
		t.Fatalf("shared CSR edge 2 members corrupted: %v, want %v", got, wantNodes)
	}
	if got := lazyClone.IncidentEdges(wantNodes[0]); !reflect.DeepEqual([]EdgeID(got), wantInc) {
		t.Fatalf("lazy clone incidence corrupted: %v, want %v", got, wantInc)
	}
	if err := lazyClone.Validate(); err != nil {
		t.Fatalf("lazy clone corrupted by sibling removal: %v", err)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base corrupted by clone removal: %v", err)
	}
}

// mutationOp is one step of a removal-inclusive random script, replayable
// onto any graph.
type mutationOp struct {
	kind  int // 0 add node, 1 add edge, 2 remove edge, 3 remove node, 4 relabel node, 5 relabel edge
	label Label
	nodes []NodeID
	node  NodeID
	edge  EdgeID
}

func randomOps(rng *rand.Rand, steps int) []mutationOp {
	n, m := 2, 0 // mirror of node/edge counts as the script executes
	ops := make([]mutationOp, 0, steps)
	for i := 0; i < steps; i++ {
		k := rng.Intn(10)
		switch {
		case k < 3 || n < 3: // add node
			ops = append(ops, mutationOp{kind: 0, label: Label(1 + rng.Intn(4))})
			n++
		case k < 6 || m == 0: // add edge
			sz := 1 + rng.Intn(3)
			nodes := make([]NodeID, sz)
			for j := range nodes {
				nodes[j] = NodeID(rng.Intn(n))
			}
			ops = append(ops, mutationOp{kind: 1, label: Label(10 + rng.Intn(3)), nodes: nodes})
			m++
		case k < 8: // remove edge
			ops = append(ops, mutationOp{kind: 2, edge: EdgeID(rng.Intn(m))})
			m--
		case k == 8: // remove node
			ops = append(ops, mutationOp{kind: 3, node: NodeID(rng.Intn(n))})
			n--
		default: // relabel
			if rng.Intn(2) == 0 || m == 0 {
				ops = append(ops, mutationOp{kind: 4, node: NodeID(rng.Intn(n)), label: Label(1 + rng.Intn(4))})
			} else {
				ops = append(ops, mutationOp{kind: 5, edge: EdgeID(rng.Intn(m)), label: Label(10 + rng.Intn(3))})
			}
		}
	}
	return ops
}

func applyOp(g *Hypergraph, op mutationOp) {
	switch op.kind {
	case 0:
		g.AddNode(op.label)
	case 1:
		g.AddEdge(op.label, op.nodes...)
	case 2:
		g.RemoveEdge(op.edge)
	case 3:
		g.RemoveNode(op.node)
	case 4:
		g.SetNodeLabel(op.node, op.label)
	case 5:
		g.SetEdgeLabel(op.edge, op.label)
	}
}

// TestMutationDifferentialWithRemovals drives one graph through random
// scripts with a Freeze after every step (maximal thaw/refreeze churn,
// including removals on thawed CSR-aliased lists) and a twin through the
// same script with no intermediate freezes; the final frozen views must be
// byte-identical.
func TestMutationDifferentialWithRemovals(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		churn, plain := New(2), New(2)
		for _, op := range randomOps(rng, 80) {
			applyOp(churn, op)
			churn.Freeze()
			applyOp(plain, op)
			if err := churn.Validate(); err != nil {
				t.Fatalf("seed %d: churn graph invalid after %+v: %v", seed, op, err)
			}
		}
		if err := plain.Validate(); err != nil {
			t.Fatalf("seed %d: plain graph invalid: %v", seed, err)
		}
		requireCSRIdentical(t, churn.Freeze(), plain.Freeze())
	}
}
