package hypergraph

import (
	"reflect"
	"testing"
)

func TestToBipartiteFig1(t *testing.T) {
	h := Fig1()
	b := ToBipartite(h)
	if b.NumLeft() != 8 || b.NumRight() != 4 {
		t.Fatalf("bipartite dims %dx%d, want 8x4", b.NumLeft(), b.NumRight())
	}
	// Σ|E| = 3+3+3+4 = 13.
	if got := b.NumIncidences(); got != 13 {
		t.Fatalf("incidences = %d, want 13", got)
	}
	if !reflect.DeepEqual(b.Adj[3], []NodeID{U(4), U(5), U(7), U(8)}) {
		t.Fatalf("Adj[E4] = %v", b.Adj[3])
	}
	if !reflect.DeepEqual(b.NodeAdj[U(4)], []EdgeID{0, 1, 3}) {
		t.Fatalf("NodeAdj[u4] = %v", b.NodeAdj[U(4)])
	}
	if b.EdgeLabels[0] != LabelOrange || b.EdgeLabels[3] != LabelGrey {
		t.Fatal("edge labels not carried into bipartite view")
	}
}

func TestBipartiteRoundTrip(t *testing.T) {
	h := Fig1()
	back := FromBipartite(ToBipartite(h))
	if !Isomorphic(h, back) {
		t.Fatal("bipartite round trip should be isomorphic to the original")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
}

func TestBipartiteIsDeepCopy(t *testing.T) {
	h := Fig1()
	b := ToBipartite(h)
	b.NodeLabels[0] = 99
	b.Adj[0][0] = 7
	if h.NodeLabel(0) == 99 {
		t.Fatal("bipartite shares node labels with hypergraph")
	}
	if h.Edge(0).Nodes[0] == 7 {
		t.Fatal("bipartite shares adjacency with hypergraph")
	}
}
