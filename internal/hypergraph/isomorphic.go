package hypergraph

import "sort"

// Isomorphic reports whether g and h are isomorphic hypergraphs per
// Definition 2: there is a bijection f over nodes preserving node labels,
// hyperedge membership, and hyperedge labels. It runs a label- and
// degree-pruned backtracking search and is intended for the small graphs
// (ego networks, test fixtures) this library compares; its worst case is
// exponential.
func Isomorphic(g, h *Hypergraph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	n := g.NumNodes()
	if n == 0 {
		return edgeMultisetEqual(g, h)
	}
	// Quick invariant screens.
	if !labelMultisetEqual(g, h) {
		return false
	}
	if !degreeSequenceEqual(g, h) {
		return false
	}
	gc := cardinalities(g)
	hc := cardinalities(h)
	for i := range gc {
		if gc[i] != hc[i] {
			return false
		}
	}

	// candidates[v] lists nodes of h that v may map to (label and degree
	// compatible).
	candidates := make([][]NodeID, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if g.NodeLabel(NodeID(v)) == h.NodeLabel(NodeID(u)) && g.Degree(NodeID(v)) == h.Degree(NodeID(u)) {
				candidates[v] = append(candidates[v], NodeID(u))
			}
		}
		if len(candidates[v]) == 0 {
			return false
		}
	}
	// Map most-constrained nodes first.
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return len(candidates[order[i]]) < len(candidates[order[j]])
	})

	mapping := make([]NodeID, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return edgesMatch(g, h, mapping)
		}
		v := order[i]
		for _, u := range candidates[v] {
			if used[u] {
				continue
			}
			mapping[v] = u
			used[u] = true
			if rec(i + 1) {
				return true
			}
			used[u] = false
			mapping[v] = -1
		}
		return false
	}
	return rec(0)
}

func labelMultisetEqual(g, h *Hypergraph) bool {
	n := g.NumNodes()
	if n != h.NumNodes() {
		return false
	}
	counts := make(map[Label]int, n)
	for v := 0; v < n; v++ {
		counts[g.NodeLabel(NodeID(v))]++
	}
	for v := 0; v < n; v++ {
		l := h.NodeLabel(NodeID(v))
		counts[l]--
		if counts[l] < 0 {
			return false
		}
	}
	return true
}

func degreeSequenceEqual(g, h *Hypergraph) bool {
	dg := make([]int, g.NumNodes())
	dh := make([]int, h.NumNodes())
	for v := range dg {
		dg[v] = g.Degree(NodeID(v))
		dh[v] = h.Degree(NodeID(v))
	}
	sort.Ints(dg)
	sort.Ints(dh)
	for i := range dg {
		if dg[i] != dh[i] {
			return false
		}
	}
	return true
}

func cardinalities(g *Hypergraph) []int {
	cs := make([]int, g.NumEdges())
	for i := range cs {
		cs[i] = g.Edge(EdgeID(i)).Arity()
	}
	sort.Ints(cs)
	return cs
}

// edgesMatch verifies that under the complete node mapping, the labeled
// hyperedge multisets of g and h coincide. Keys are label-prefixed node-set
// encodings built in one reused scratch buffer (Hyperedge.AppendKey); the
// probe side looks up with string(kbuf) directly and decrements a slot in a
// side table, so only the reference side pays for key strings.
func edgesMatch(g, h *Hypergraph, mapping []NodeID) bool {
	slots := make(map[string]int, h.NumEdges())
	counts := make([]int, 0, h.NumEdges())
	kbuf := make([]byte, 0, 64)
	for j := 0; j < h.NumEdges(); j++ {
		e := h.Edge(EdgeID(j))
		kbuf = e.AppendKey(appendVarint(kbuf[:0], uint32(e.Label)))
		if slot, ok := slots[string(kbuf)]; ok {
			counts[slot]++
		} else {
			slots[string(kbuf)] = len(counts)
			counts = append(counts, 1)
		}
	}
	buf := make([]NodeID, 0, 16)
	for j := 0; j < g.NumEdges(); j++ {
		e := g.Edge(EdgeID(j))
		buf = buf[:0]
		for _, v := range e.Nodes {
			buf = append(buf, mapping[v])
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		kbuf = Hyperedge{Nodes: buf}.AppendKey(appendVarint(kbuf[:0], uint32(e.Label)))
		slot, ok := slots[string(kbuf)]
		if !ok || counts[slot] == 0 {
			return false
		}
		counts[slot]--
	}
	return true
}

func edgeMultisetEqual(g, h *Hypergraph) bool {
	if g.NumEdges() != h.NumEdges() {
		return false
	}
	id := make([]NodeID, g.NumNodes())
	for i := range id {
		id[i] = NodeID(i)
	}
	return edgesMatch(g, h, id)
}
