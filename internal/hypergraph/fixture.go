package hypergraph

// Labels used by the paper's running example (Fig. 1). Node labels are drawn
// as shapes (□, △, ○) and hyperedge labels as colors (orange, grey).
const (
	LabelSquare   Label = 1 // □
	LabelTriangle Label = 2 // △
	LabelCircle   Label = 3 // ○
	LabelOrange   Label = 10
	LabelGrey     Label = 11
)

// Fig1 builds the running example of the paper (Fig. 1): a hypergraph with 8
// nodes u1..u8 (stored as NodeIDs 0..7) and 4 hyperedges E1..E4 (EdgeIDs
// 0..3):
//
//	E1 = {u1,u2,u4}    (orange)
//	E2 = {u4,u6,u7}    (orange)
//	E3 = {u2,u3,u5}    (grey)
//	E4 = {u4,u5,u7,u8} (grey)
//
// Structure reproduces the facts used throughout the paper:
// NEI(u4) = {u1,u2,u4,u5,u6,u7,u8}, NEI(u5) = {u2,u3,u4,u5,u7,u8}
// (Example 1), and HGED(EGO(u4), EGO(u5)) = 6 via the edit path of Example 2
// (relabel E1 orange→grey; reduce E2 by u4,u6,u7; delete node u6; delete E2).
func Fig1() *Hypergraph {
	// u1..u8 → ids 0..7.
	labels := []Label{
		LabelTriangle, // u1
		LabelTriangle, // u2
		LabelTriangle, // u3
		LabelCircle,   // u4
		LabelCircle,   // u5
		LabelSquare,   // u6
		LabelTriangle, // u7
		LabelCircle,   // u8
	}
	h := NewLabeled(labels)
	h.AddEdge(LabelOrange, 0, 1, 3)  // E1 = {u1,u2,u4}
	h.AddEdge(LabelOrange, 3, 5, 6)  // E2 = {u4,u6,u7}
	h.AddEdge(LabelGrey, 1, 2, 4)    // E3 = {u2,u3,u5}
	h.AddEdge(LabelGrey, 3, 4, 6, 7) // E4 = {u4,u5,u7,u8}
	return h
}

// U converts the paper's 1-based u_i naming to the 0-based NodeID used here.
func U(i int) NodeID { return NodeID(i - 1) }
