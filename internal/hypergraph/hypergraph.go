// Package hypergraph implements the labeled, simple, undirected hypergraph
// model of Qin et al., "Explainable Hyperlink Prediction: A Hypergraph Edit
// Distance-Based Approach" (ICDE 2023), Section III.
//
// A hypergraph G = (V, E, l) has a node set V, a set of hyperedges E where
// each hyperedge is an unordered set of nodes, and a labeling function l
// assigning every node and every hyperedge a label. Hyperedge node lists are
// kept sorted in ascending order, mirroring the paper's convention.
package hypergraph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node within a hypergraph. IDs are dense: a hypergraph
// with n nodes uses IDs 0..n-1.
type NodeID int32

// EdgeID identifies a hyperedge within a hypergraph. IDs are dense: a
// hypergraph with m hyperedges uses IDs 0..m-1.
type EdgeID int32

// Label is a label drawn from the alphabet Σ. Labels of nodes and hyperedges
// share one space so that ego networks extracted from the same host graph
// remain comparable.
type Label int32

// NoLabel is the zero label, used for unlabeled graphs.
const NoLabel Label = 0

// Hyperedge is an unordered set of nodes with a label. Nodes are stored in
// ascending NodeID order.
type Hyperedge struct {
	Label Label
	Nodes []NodeID
}

// Arity returns the cardinality |E| of the hyperedge.
func (e Hyperedge) Arity() int { return len(e.Nodes) }

// Contains reports whether v is a member of the hyperedge, using binary
// search over the sorted node list.
func (e Hyperedge) Contains(v NodeID) bool {
	i := sort.Search(len(e.Nodes), func(i int) bool { return e.Nodes[i] >= v })
	return i < len(e.Nodes) && e.Nodes[i] == v
}

// clone returns a deep copy of the hyperedge.
func (e Hyperedge) clone() Hyperedge {
	nodes := make([]NodeID, len(e.Nodes))
	copy(nodes, e.Nodes)
	return Hyperedge{Label: e.Label, Nodes: nodes}
}

// Key returns a canonical string key for the node set (ignoring the label),
// usable as a map key for deduplication.
func (e Hyperedge) Key() string {
	return string(e.AppendKey(make([]byte, 0, len(e.Nodes)*4)))
}

// AppendKey appends the canonical node-set key to b and returns the
// extended slice. Dedup loops pass a reused scratch buffer and probe their
// map with string(b) directly, so the per-call string allocation of Key is
// paid only when a key is actually inserted.
func (e Hyperedge) AppendKey(b []byte) []byte {
	for _, v := range e.Nodes {
		b = appendVarint(b, uint32(v))
	}
	return b
}

func appendVarint(b []byte, x uint32) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// Hypergraph is a labeled simple undirected hypergraph. The zero value is an
// empty hypergraph ready to use; nodes are added with AddNode/AddNodes and
// hyperedges with AddEdge.
type Hypergraph struct {
	nodeLabels []Label
	edges      []Hyperedge
	// incidence[v] lists the hyperedges containing v, in insertion order.
	incidence [][]EdgeID
	// origIDs, when non-nil, maps local NodeIDs back to the node IDs of a
	// host graph this hypergraph was induced from. See InducedSubgraph.
	origIDs []NodeID
	// egoMu guards the derived read-only views below: the memoized ego
	// networks and the frozen CSR layout. Both are invalidated by every
	// mutation and never copied by Clone.
	egoMu    sync.RWMutex
	egoCache map[NodeID]*Hypergraph
	csr      *CSR
	// lazy marks a graph constructed frozen-first (FromFrozen): csr is the
	// authoritative representation and nodeLabels/edges/incidence are nil
	// until the first mutation thaws them. The flag flips true→false exactly
	// once, under egoMu, after the mutable fields are materialized; readers
	// load it with acquire semantics so a false observation implies the
	// materialized fields are visible. As everywhere in this type, mutation
	// concurrent with reads requires external exclusivity.
	lazy atomic.Bool
}

// New returns an empty hypergraph with n unlabeled nodes.
func New(n int) *Hypergraph {
	h := &Hypergraph{
		nodeLabels: make([]Label, n),
		incidence:  make([][]EdgeID, n),
	}
	return h
}

// NewLabeled returns a hypergraph whose node i carries labels[i].
func NewLabeled(labels []Label) *Hypergraph {
	h := New(len(labels))
	copy(h.nodeLabels, labels)
	return h
}

// NumNodes returns |V|.
func (h *Hypergraph) NumNodes() int {
	if c := h.lazyCSR(); c != nil {
		return c.NumNodes()
	}
	return len(h.nodeLabels)
}

// NumEdges returns |E|.
func (h *Hypergraph) NumEdges() int {
	if c := h.lazyCSR(); c != nil {
		return c.NumEdges()
	}
	return len(h.edges)
}

// AddNode appends a node with the given label and returns its id.
func (h *Hypergraph) AddNode(l Label) NodeID {
	h.invalidateDerived()
	h.nodeLabels = append(h.nodeLabels, l)
	h.incidence = append(h.incidence, nil)
	return NodeID(len(h.nodeLabels) - 1)
}

// AddNodes appends n unlabeled nodes and returns the id of the first.
func (h *Hypergraph) AddNodes(n int) NodeID {
	first := NodeID(len(h.nodeLabels))
	for i := 0; i < n; i++ {
		h.AddNode(NoLabel)
	}
	return first
}

// AddEdge adds a hyperedge with the given label over the given nodes and
// returns its id. The node list is copied, sorted and deduplicated. Adding an
// empty hyperedge is legal (the paper's edit model explicitly includes
// hyperedges of cardinality 0). AddEdge panics if any node id is out of
// range.
func (h *Hypergraph) AddEdge(l Label, nodes ...NodeID) EdgeID {
	h.invalidateDerived()
	ns := make([]NodeID, len(nodes))
	copy(ns, nodes)
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	ns = dedupSorted(ns)
	for _, v := range ns {
		if int(v) < 0 || int(v) >= len(h.nodeLabels) {
			panic(fmt.Sprintf("hypergraph: AddEdge node %d out of range [0,%d)", v, len(h.nodeLabels)))
		}
	}
	id := EdgeID(len(h.edges))
	h.edges = append(h.edges, Hyperedge{Label: l, Nodes: ns})
	for _, v := range ns {
		h.incidence[v] = append(h.incidence[v], id)
	}
	return id
}

func dedupSorted(ns []NodeID) []NodeID {
	if len(ns) < 2 {
		return ns
	}
	w := 1
	for i := 1; i < len(ns); i++ {
		if ns[i] != ns[i-1] {
			ns[w] = ns[i]
			w++
		}
	}
	return ns[:w]
}

// NodeLabel returns l(v).
func (h *Hypergraph) NodeLabel(v NodeID) Label {
	if c := h.lazyCSR(); c != nil {
		return c.labels[c.nodeLab[v]]
	}
	return h.nodeLabels[v]
}

// SetNodeLabel sets l(v).
func (h *Hypergraph) SetNodeLabel(v NodeID, l Label) {
	h.invalidateDerived()
	h.nodeLabels[v] = l
}

// EdgeLabel returns l(E).
func (h *Hypergraph) EdgeLabel(e EdgeID) Label {
	if c := h.lazyCSR(); c != nil {
		return c.labels[c.edgeLab[e]]
	}
	return h.edges[e].Label
}

// SetEdgeLabel sets l(E).
func (h *Hypergraph) SetEdgeLabel(e EdgeID, l Label) {
	h.invalidateDerived()
	h.edges[e].Label = l
}

// Edge returns the hyperedge with id e. The returned value shares its node
// slice with the hypergraph; callers must not mutate it.
func (h *Hypergraph) Edge(e EdgeID) Hyperedge {
	if c := h.lazyCSR(); c != nil {
		a, b := c.edgeOff[e], c.edgeOff[e+1]
		return Hyperedge{Label: c.labels[c.edgeLab[e]], Nodes: c.edgeNodes[a:b:b]}
	}
	return h.edges[e]
}

// Edges returns all hyperedges. The slice and the contained node lists are
// shared with the hypergraph; callers must not mutate them. On a
// frozen-first graph this materializes the mutable representation.
func (h *Hypergraph) Edges() []Hyperedge {
	h.thaw()
	return h.edges
}

// IncidentEdges returns the ids of hyperedges containing v. The returned
// slice is shared with the hypergraph; callers must not mutate it.
func (h *Hypergraph) IncidentEdges(v NodeID) []EdgeID {
	if c := h.lazyCSR(); c != nil {
		a, b := c.nodeOff[v], c.nodeOff[v+1]
		return c.nodeEdges[a:b:b]
	}
	return h.incidence[v]
}

// Degree returns DEG(v) = |{E : v ∈ E}|, the number of hyperedges containing
// v.
func (h *Hypergraph) Degree(v NodeID) int {
	if c := h.lazyCSR(); c != nil {
		return c.Degree(v)
	}
	return len(h.incidence[v])
}

// Neighbors returns NEI(v) = {v} ∪ {u : ∃E, {u,v} ⊆ E}, sorted ascending.
// Per Definition 1 of the paper, the set always includes v itself.
// Membership is tracked in a bitset, so the output is ascending by
// construction — no per-call map or sort.
func (h *Hypergraph) Neighbors(v NodeID) []NodeID {
	seen := NewBitset(h.NumNodes())
	count := h.neighborScan(v, seen)
	out := make([]NodeID, 0, count)
	seen.ForEach(func(u int) { out = append(out, NodeID(u)) })
	return out
}

// NumNeighbors returns |NEI(v)| without materializing the sorted slice.
func (h *Hypergraph) NumNeighbors(v NodeID) int {
	return h.neighborScan(v, NewBitset(h.NumNodes()))
}

// OrigID maps a node of an induced sub-hypergraph back to the node id it had
// in the host graph it was induced from. For hypergraphs that were not
// induced, OrigID is the identity.
func (h *Hypergraph) OrigID(v NodeID) NodeID {
	if h.origIDs == nil {
		return v
	}
	return h.origIDs[v]
}

// InducedSubgraph returns G_S, the sub-hypergraph induced by node set S: its
// nodes are S (relabeled 0..|S|-1 in ascending original order) and its
// hyperedges are exactly the hyperedges of h fully contained in S.
// The result records original ids, retrievable via OrigID.
func (h *Hypergraph) InducedSubgraph(s []NodeID) *Hypergraph {
	sorted := make([]NodeID, len(s))
	copy(sorted, s)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sorted = dedupSorted(sorted)

	remap := make(map[NodeID]NodeID, len(sorted))
	labels := make([]Label, len(sorted))
	for i, v := range sorted {
		remap[v] = NodeID(i)
		labels[i] = h.NodeLabel(v)
	}
	sub := NewLabeled(labels)
	sub.origIDs = make([]NodeID, len(sorted))
	for i, v := range sorted {
		sub.origIDs[i] = h.OrigID(v)
	}

	// Collect candidate hyperedges once via incidence lists so the cost is
	// proportional to the edges touching S, not |E|; the bitset yields them
	// in ascending id order without a sort.
	seen := NewBitset(h.NumEdges())
	for _, v := range sorted {
		for _, e := range h.IncidentEdges(v) {
			seen.Add(int(e))
		}
	}
	mapped := make([]NodeID, 0, 16)
	seen.ForEach(func(ei int) {
		edge := h.Edge(EdgeID(ei))
		mapped = mapped[:0]
		for _, u := range edge.Nodes {
			nu, ok := remap[u]
			if !ok {
				return
			}
			mapped = append(mapped, nu)
		}
		sub.AddEdge(edge.Label, mapped...)
	})
	return sub
}

// egoCacheLimit bounds the memoized ego networks per hypergraph; past it,
// an arbitrary entry is evicted to admit the new one.
const egoCacheLimit = 8192

// Ego returns EGO(v), the ego network of v: the sub-hypergraph induced by
// NEI(v) (Definition 1).
//
// Results are memoized: repeated calls for the same node on an unmodified
// hypergraph return the same instance, so the HEP predictor, NodeDistance
// and batch matrices stop re-extracting identical sub-hypergraphs. The
// returned ego is shared — callers must treat it as immutable (every
// in-repo caller only reads it). Any mutation of h invalidates the cache.
func (h *Hypergraph) Ego(v NodeID) *Hypergraph {
	h.egoMu.RLock()
	ego := h.egoCache[v]
	h.egoMu.RUnlock()
	if ego != nil {
		return ego
	}
	ego = h.InducedSubgraph(h.Neighbors(v))
	h.egoMu.Lock()
	if cached := h.egoCache[v]; cached != nil {
		ego = cached // lost the race: keep the canonical instance
	} else {
		if h.egoCache == nil {
			h.egoCache = make(map[NodeID]*Hypergraph)
		} else if len(h.egoCache) >= egoCacheLimit {
			for k := range h.egoCache {
				delete(h.egoCache, k)
				break
			}
		}
		h.egoCache[v] = ego
	}
	h.egoMu.Unlock()
	return ego
}

// invalidateDerived discards the derived read-only views — memoized egos
// and the frozen CSR — on any mutation; both rebuild lazily on next use.
// A frozen-first graph thaws here: every mutator calls invalidateDerived
// before touching the mutable fields, so materializing under the same lock
// acquisition makes "first mutation" the exact thaw point.
func (h *Hypergraph) invalidateDerived() {
	h.egoMu.Lock()
	if h.lazy.Load() {
		h.materializeLocked()
		h.lazy.Store(false)
	}
	if len(h.egoCache) > 0 {
		clear(h.egoCache)
	}
	h.csr = nil
	h.egoMu.Unlock()
}

// Clone returns a deep copy of the hypergraph. Cloning a graph with a
// current CSR view (frozen-first, or frozen and unmutated since) is O(1):
// the clone shares the immutable CSR and starts lazy; either instance
// materializes its own mutable representation on first mutation
// (capacity-capped subslices make appends reallocate, removals reallocate
// changed lists), so the copies stay independent under the package's
// mutation API.
func (h *Hypergraph) Clone() *Hypergraph {
	if frozen := h.frozen(); frozen != nil {
		c := &Hypergraph{csr: frozen}
		if h.origIDs != nil {
			c.origIDs = append([]NodeID(nil), h.origIDs...)
		}
		c.lazy.Store(true)
		return c
	}
	c := &Hypergraph{
		nodeLabels: append([]Label(nil), h.nodeLabels...),
		edges:      make([]Hyperedge, len(h.edges)),
		incidence:  make([][]EdgeID, len(h.incidence)),
	}
	for i, e := range h.edges {
		c.edges[i] = e.clone()
	}
	for i, inc := range h.incidence {
		c.incidence[i] = append([]EdgeID(nil), inc...)
	}
	if h.origIDs != nil {
		c.origIDs = append([]NodeID(nil), h.origIDs...)
	}
	return c
}

// Validate checks structural invariants: hyperedge node lists sorted, unique
// and in range, and incidence lists consistent with edges. It returns the
// first violation found, or nil. A frozen-first graph is checked directly on
// its CSR arrays without thawing.
func (h *Hypergraph) Validate() error {
	if c := h.lazyCSR(); c != nil {
		return h.validateFrozen(c)
	}
	n := len(h.nodeLabels)
	if len(h.incidence) != n {
		return fmt.Errorf("hypergraph: incidence length %d != node count %d", len(h.incidence), n)
	}
	counts := make(map[NodeID]int)
	for id, e := range h.edges {
		for i, v := range e.Nodes {
			if int(v) < 0 || int(v) >= n {
				return fmt.Errorf("hypergraph: edge %d node %d out of range", id, v)
			}
			if i > 0 && e.Nodes[i-1] >= v {
				return fmt.Errorf("hypergraph: edge %d nodes not sorted/unique at index %d", id, i)
			}
			counts[v]++
		}
	}
	for v, inc := range h.incidence {
		if counts[NodeID(v)] != len(inc) {
			return fmt.Errorf("hypergraph: node %d incidence count %d != membership count %d", v, len(inc), counts[NodeID(v)])
		}
		for _, e := range inc {
			if int(e) < 0 || int(e) >= len(h.edges) {
				return fmt.Errorf("hypergraph: node %d incident edge %d out of range", v, e)
			}
			if !h.edges[e].Contains(NodeID(v)) {
				return fmt.Errorf("hypergraph: node %d listed incident to edge %d but not a member", v, e)
			}
		}
	}
	return nil
}

// String returns a compact human-readable rendering, e.g.
// "H(n=3,m=2){0:[0 1]@1 1:[1 2]@2}".
func (h *Hypergraph) String() string {
	s := fmt.Sprintf("H(n=%d,m=%d){", h.NumNodes(), h.NumEdges())
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(EdgeID(i))
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%v@%d", i, e.Nodes, e.Label)
	}
	return s + "}"
}
