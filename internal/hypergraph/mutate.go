package hypergraph

import "fmt"

// RemoveEdge deletes hyperedge e. Hyperedge IDs stay dense: every hyperedge
// with a larger id shifts down by one, exactly as if the graph had been
// rebuilt without e — so a Freeze after the removal is byte-identical to
// freezing a from-scratch construction over the surviving hyperedges in
// order. Incident-edge lists stay ascending (all ids shift uniformly).
//
// Lists that change are reallocated rather than edited in place: on a thawed
// frozen-first graph the incidence lists alias CSR arrays that may still
// back a lazy Clone (an older MVCC generation), and those must never be
// written through.
func (h *Hypergraph) RemoveEdge(e EdgeID) {
	if int(e) < 0 || int(e) >= h.NumEdges() {
		panic(fmt.Sprintf("hypergraph: RemoveEdge id %d out of range [0,%d)", e, h.NumEdges()))
	}
	h.invalidateDerived()
	h.edges = append(h.edges[:e], h.edges[e+1:]...)
	for v := range h.incidence {
		inc := h.incidence[v]
		// Ascending lists: the last entry is the largest, so a list whose
		// ids are all below e is untouched by both the drop and the shift.
		if len(inc) == 0 || inc[len(inc)-1] < e {
			continue
		}
		out := make([]EdgeID, 0, len(inc))
		for _, id := range inc {
			switch {
			case id == e:
				// dropped
			case id > e:
				out = append(out, id-1)
			default:
				out = append(out, id)
			}
		}
		h.incidence[v] = out
	}
}

// RemoveNode deletes node v: it is first removed from every hyperedge
// containing it (hyperedges may become empty — cardinality-0 hyperedges are
// legal in the paper's edit model and stay), then the node itself is
// deleted. Node IDs stay dense: every node with a larger id shifts down by
// one, so member lists remain strictly ascending and a Freeze after the
// removal matches a from-scratch construction of the surviving graph.
// Removing a node renumbers ids, which invalidates every external per-node
// structure (ego caches, σ memos) wholesale — Batch tracks this as a full
// invalidation.
func (h *Hypergraph) RemoveNode(v NodeID) {
	if int(v) < 0 || int(v) >= h.NumNodes() {
		panic(fmt.Sprintf("hypergraph: RemoveNode id %d out of range [0,%d)", v, h.NumNodes()))
	}
	h.invalidateDerived()
	for i := range h.edges {
		nodes := h.edges[i].Nodes
		// Ascending lists: nothing to drop or shift when all members < v.
		if len(nodes) == 0 || nodes[len(nodes)-1] < v {
			continue
		}
		out := make([]NodeID, 0, len(nodes))
		for _, u := range nodes {
			switch {
			case u == v:
				// dropped
			case u > v:
				out = append(out, u-1)
			default:
				out = append(out, u)
			}
		}
		h.edges[i].Nodes = out
	}
	h.nodeLabels = append(h.nodeLabels[:v], h.nodeLabels[v+1:]...)
	h.incidence = append(h.incidence[:v], h.incidence[v+1:]...)
	if h.origIDs != nil {
		h.origIDs = append(h.origIDs[:v], h.origIDs[v+1:]...)
	}
}
