package hypergraph

import "fmt"

// FromFrozen constructs a hypergraph directly in its frozen CSR form from
// decoded flat arrays, without round-tripping through the mutable
// slice-of-slices representation. This is the cold-start fast path used by
// the binary graph and corpus-snapshot readers: the edge-major arrays are
// validated, the label dictionary is normalized to the same first-seen
// interning order Freeze would produce, and the node-major incidence arrays
// are derived by one counting transpose. The mutable representation is
// materialized lazily on first mutation ("thaw"); until then every accessor
// is served from the CSR view and Freeze never rebuilds.
//
// Inputs: labels is the dictionary, nodeLab/edgeLab hold per-node and
// per-hyperedge dictionary ids, and edge e's members are
// edgeNodes[edgeOff[e]:edgeOff[e+1]], strictly ascending. All slices are
// retained (and nodeLab/edgeLab may be rewritten in place during dictionary
// normalization); the caller must not use them afterwards. A nil edgeOff is
// accepted when there are no hyperedges.
func FromFrozen(labels []Label, nodeLab, edgeLab, edgeOff []int32, edgeNodes []NodeID) (*Hypergraph, error) {
	n, m := len(nodeLab), len(edgeLab)
	if m == 0 && len(edgeOff) == 0 {
		edgeOff = []int32{0}
	}
	if len(edgeOff) != m+1 {
		return nil, fmt.Errorf("hypergraph: %d hyperedge offsets for %d hyperedges (want %d)", len(edgeOff), m, m+1)
	}
	if edgeOff[0] != 0 || int(edgeOff[m]) != len(edgeNodes) {
		return nil, fmt.Errorf("hypergraph: hyperedge offsets span [%d,%d), want [0,%d)", edgeOff[0], edgeOff[m], len(edgeNodes))
	}
	// All offsets must be non-decreasing before any range is sliced; with
	// the [0, len(edgeNodes)] endpoints pinned above, monotonicity also
	// bounds every range.
	for e := 0; e < m; e++ {
		if edgeOff[e+1] < edgeOff[e] {
			return nil, fmt.Errorf("hypergraph: hyperedge %d offsets decrease (%d > %d)", e, edgeOff[e], edgeOff[e+1])
		}
	}
	for e := 0; e < m; e++ {
		a, b := edgeOff[e], edgeOff[e+1]
		prev := NodeID(-1)
		for _, v := range edgeNodes[a:b] {
			if v <= prev {
				return nil, fmt.Errorf("hypergraph: hyperedge %d members not strictly ascending", e)
			}
			if int(v) >= n {
				return nil, fmt.Errorf("hypergraph: hyperedge %d member %d out of range [0,%d)", e, v, n)
			}
			prev = v
		}
	}
	oldL := len(labels)
	for v, id := range nodeLab {
		if id < 0 || int(id) >= oldL {
			return nil, fmt.Errorf("hypergraph: node %d label id %d out of range [0,%d)", v, id, oldL)
		}
	}
	for e, id := range edgeLab {
		if id < 0 || int(id) >= oldL {
			return nil, fmt.Errorf("hypergraph: hyperedge %d label id %d out of range [0,%d)", e, id, oldL)
		}
	}

	// Normalize the dictionary to first-seen interning order (node labels by
	// id, then hyperedge labels by id) so graphs decoded from foreign files
	// intern identically to buildCSR: signature digests and snapshot
	// compatibility checks depend on this canonical order. Duplicate and
	// unused dictionary entries collapse away here.
	remap := make([]int32, oldL)
	for i := range remap {
		remap[i] = -1
	}
	labelID := make(map[Label]int32, oldL)
	dict := make([]Label, 0, oldL)
	assign := func(old int32) int32 {
		id := remap[old]
		if id >= 0 {
			return id
		}
		l := labels[old]
		id, ok := labelID[l]
		if !ok {
			id = int32(len(dict))
			dict = append(dict, l)
			labelID[l] = id
		}
		remap[old] = id
		return id
	}
	for i, old := range nodeLab {
		nodeLab[i] = assign(old)
	}
	for i, old := range edgeLab {
		edgeLab[i] = assign(old)
	}

	// Counting transpose: derive the node-major incidence arrays from the
	// edge-major ones. Scattering in ascending hyperedge order makes every
	// node's incident-edge list ascending by construction, matching what
	// AddEdge-then-Freeze produces.
	nodeOff := make([]int32, n+1)
	for _, v := range edgeNodes {
		nodeOff[v+1]++
	}
	for v := 0; v < n; v++ {
		nodeOff[v+1] += nodeOff[v]
	}
	nodeEdges := make([]EdgeID, len(edgeNodes))
	next := make([]int32, n)
	copy(next, nodeOff[:n])
	for e := 0; e < m; e++ {
		for _, v := range edgeNodes[edgeOff[e]:edgeOff[e+1]] {
			nodeEdges[next[v]] = EdgeID(e)
			next[v]++
		}
	}

	h := &Hypergraph{csr: &CSR{
		nodeOff:   nodeOff,
		nodeEdges: nodeEdges,
		edgeOff:   edgeOff,
		edgeNodes: edgeNodes,
		nodeLab:   nodeLab,
		edgeLab:   edgeLab,
		labels:    dict,
		labelID:   labelID,
	}}
	h.lazy.Store(true)
	return h, nil
}

// lazyCSR returns the CSR backing a frozen-first graph, or nil when the
// mutable representation is authoritative. Accessors branch on it so reads
// of a FromFrozen graph never materialize anything.
func (h *Hypergraph) lazyCSR() *CSR {
	if h.lazy.Load() {
		return h.csr
	}
	return nil
}

// thaw materializes the mutable representation of a frozen-first graph.
// It is a no-op for graphs built through the mutable constructors. The CSR
// view is kept — the graph content is unchanged, so Freeze stays memoized.
func (h *Hypergraph) thaw() {
	if !h.lazy.Load() {
		return
	}
	h.egoMu.Lock()
	if h.lazy.Load() {
		h.materializeLocked()
		h.lazy.Store(false)
	}
	h.egoMu.Unlock()
}

// materializeLocked fills nodeLabels/edges/incidence from the CSR view.
// Caller holds egoMu. The hyperedge node lists and incidence lists alias the
// CSR arrays through capacity-capped subslices: any append reallocates, so
// later mutations can never clobber a neighboring range (or a CSR shared
// with a lazy Clone).
func (h *Hypergraph) materializeLocked() {
	c := h.csr
	n, m := c.NumNodes(), c.NumEdges()
	h.nodeLabels = make([]Label, n)
	for v := 0; v < n; v++ {
		h.nodeLabels[v] = c.labels[c.nodeLab[v]]
	}
	h.edges = make([]Hyperedge, m)
	for e := 0; e < m; e++ {
		a, b := c.edgeOff[e], c.edgeOff[e+1]
		h.edges[e] = Hyperedge{Label: c.labels[c.edgeLab[e]], Nodes: c.edgeNodes[a:b:b]}
	}
	h.incidence = make([][]EdgeID, n)
	for v := 0; v < n; v++ {
		a, b := c.nodeOff[v], c.nodeOff[v+1]
		h.incidence[v] = c.nodeEdges[a:b:b]
	}
}

// validateFrozen checks the structural invariants of a frozen-first graph
// directly on the CSR arrays, so Validate on an untouched FromFrozen graph
// allocates nothing and never thaws: offsets monotone and spanning, members
// strictly ascending and in range, incidence an exact transpose.
func (h *Hypergraph) validateFrozen(c *CSR) error {
	n, m := c.NumNodes(), c.NumEdges()
	if len(c.nodeOff) != n+1 || len(c.edgeOff) != m+1 {
		return fmt.Errorf("hypergraph: frozen offset lengths %d/%d for n=%d m=%d", len(c.nodeOff), len(c.edgeOff), n, m)
	}
	for e := 0; e < m; e++ {
		a, b := c.edgeOff[e], c.edgeOff[e+1]
		if a < 0 || b < a || int(b) > len(c.edgeNodes) {
			return fmt.Errorf("hypergraph: frozen hyperedge %d offsets [%d,%d) invalid", e, a, b)
		}
		prev := NodeID(-1)
		for _, v := range c.edgeNodes[a:b] {
			if v <= prev || int(v) >= n {
				return fmt.Errorf("hypergraph: frozen hyperedge %d members not sorted/unique/in range", e)
			}
			prev = v
		}
	}
	for v := 0; v < n; v++ {
		a, b := c.nodeOff[v], c.nodeOff[v+1]
		if a < 0 || b < a || int(b) > len(c.nodeEdges) {
			return fmt.Errorf("hypergraph: frozen node %d offsets [%d,%d) invalid", v, a, b)
		}
		prev := EdgeID(-1)
		for _, e := range c.nodeEdges[a:b] {
			if e <= prev || int(e) >= m {
				return fmt.Errorf("hypergraph: frozen node %d incident edges not sorted/unique/in range", v)
			}
			if !(Hyperedge{Nodes: c.Members(e)}).Contains(NodeID(v)) {
				return fmt.Errorf("hypergraph: frozen node %d listed incident to edge %d but not a member", v, e)
			}
			prev = e
		}
	}
	if int(c.nodeOff[n]) != len(c.nodeEdges) || len(c.nodeEdges) != len(c.edgeNodes) {
		return fmt.Errorf("hypergraph: frozen incidence counts disagree (%d node-major, %d edge-major)", c.nodeOff[n], c.edgeOff[m])
	}
	return nil
}
