// Package multiset provides the label-multiset and cardinality-sequence
// utilities behind the HGED lower bounds of the paper (Definitions 5 and 6).
package multiset

import (
	"sort"

	"hged/internal/hypergraph"
)

// Counts is a multiset of labels represented as label → multiplicity.
type Counts map[hypergraph.Label]int

// FromLabels builds a multiset from a label slice.
func FromLabels(labels []hypergraph.Label) Counts {
	c := make(Counts, len(labels))
	for _, l := range labels {
		c[l]++
	}
	return c
}

// Size returns the total multiplicity.
func (c Counts) Size() int {
	n := 0
	for _, k := range c {
		n += k
	}
	return n
}

// Add increments the multiplicity of l.
func (c Counts) Add(l hypergraph.Label) { c[l]++ }

// Remove decrements the multiplicity of l, deleting the entry at zero.
// Removing an absent label is a no-op.
func (c Counts) Remove(l hypergraph.Label) {
	if k, ok := c[l]; ok {
		if k <= 1 {
			delete(c, l)
		} else {
			c[l] = k - 1
		}
	}
}

// Clone returns a copy of the multiset.
func (c Counts) Clone() Counts {
	d := make(Counts, len(c))
	for l, k := range c {
		d[l] = k
	}
	return d
}

// IntersectionSize returns |S1 ∩ S2| as multisets: the sum over labels of the
// minimum multiplicity.
func IntersectionSize(a, b Counts) int {
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for l, ka := range a {
		if kb, ok := b[l]; ok {
			if ka < kb {
				n += ka
			} else {
				n += kb
			}
		}
	}
	return n
}

// Psi implements Ψ(S1, S2) = max(|S1|, |S2|) − |S1 ∩ S2| (Definition 5).
// It is the minimum number of relabel-plus-insert/delete operations needed to
// turn one label multiset into the other, and therefore a lower bound on the
// label-editing cost of any entity mapping.
func Psi(a, b Counts) int {
	sa, sb := a.Size(), b.Size()
	m := sa
	if sb > m {
		m = sb
	}
	return m - IntersectionSize(a, b)
}

// PsiLabels is Psi applied directly to label slices. It runs on the dense
// sorted-slice path (two sorts and a merge walk) rather than building maps.
func PsiLabels(a, b []hypergraph.Label) int {
	sa, sb := SortedFromLabels(a), SortedFromLabels(b)
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return m - IntersectionSizeSorted(sa, sb)
}

// Sorted is the dense multiset representation behind the batched filter
// stage: parallel slices of unique labels (ascending) and their
// multiplicities. Unlike Counts it is allocation-stable — a Sorted can view
// a sub-range of a shared arena — and intersection is a branch-predictable
// merge walk instead of map probing. The zero value is the empty multiset.
type Sorted struct {
	Labels []hypergraph.Label // ascending, unique
	Counts []int32            // parallel to Labels, all > 0
}

// SortedFromLabels builds the dense multiset of a label slice.
func SortedFromLabels(labels []hypergraph.Label) Sorted {
	if len(labels) == 0 {
		return Sorted{}
	}
	ls := make([]hypergraph.Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	// The unique labels are compacted into ls's own backing array: the
	// write position never passes the read position, so no extra slice.
	s := Sorted{Labels: ls[:0], Counts: make([]int32, 0, 8)}
	for i := 0; i < len(ls); {
		j := i + 1
		for j < len(ls) && ls[j] == ls[i] {
			j++
		}
		s.Labels = append(s.Labels, ls[i])
		s.Counts = append(s.Counts, int32(j-i))
		i = j
	}
	return s
}

// SortedFromInterned builds the dense multiset of an interned-label-id
// slice (ids index into dict, a graph's dense label dictionary — see
// hypergraph.CSR). Multiplicities accumulate in one pass over a dense
// counter array, so only the distinct labels pay for sorting.
func SortedFromInterned(ids []int32, dict []hypergraph.Label) Sorted {
	if len(ids) == 0 {
		return Sorted{}
	}
	cnt := make([]int32, len(dict))
	for _, id := range ids {
		cnt[id]++
	}
	distinct := 0
	for _, k := range cnt {
		if k > 0 {
			distinct++
		}
	}
	s := Sorted{
		Labels: make([]hypergraph.Label, 0, distinct),
		Counts: make([]int32, 0, distinct),
	}
	for id, k := range cnt {
		if k > 0 {
			s.Labels = append(s.Labels, dict[id])
			s.Counts = append(s.Counts, k)
		}
	}
	// The dictionary assigns ids in first-seen order, not label order.
	sort.Sort(pairsByLabel{s.Labels, s.Counts})
	return s
}

// pairsByLabel co-sorts a (labels, counts) pair list by ascending label.
type pairsByLabel struct {
	labels []hypergraph.Label
	counts []int32
}

func (p pairsByLabel) Len() int           { return len(p.labels) }
func (p pairsByLabel) Less(i, j int) bool { return p.labels[i] < p.labels[j] }
func (p pairsByLabel) Swap(i, j int) {
	p.labels[i], p.labels[j] = p.labels[j], p.labels[i]
	p.counts[i], p.counts[j] = p.counts[j], p.counts[i]
}

// Size returns the total multiplicity.
func (s Sorted) Size() int {
	n := 0
	for _, k := range s.Counts {
		n += int(k)
	}
	return n
}

// IntersectionSizeSorted returns |S1 ∩ S2| as multisets via a merge walk
// over the two sorted label lists.
func IntersectionSizeSorted(a, b Sorted) int {
	n, i, j := 0, 0, 0
	for i < len(a.Labels) && j < len(b.Labels) {
		switch {
		case a.Labels[i] < b.Labels[j]:
			i++
		case a.Labels[i] > b.Labels[j]:
			j++
		default:
			if a.Counts[i] < b.Counts[j] {
				n += int(a.Counts[i])
			} else {
				n += int(b.Counts[j])
			}
			i++
			j++
		}
	}
	return n
}

// PsiSorted is Psi over the dense representation: max(|S1|, |S2|) − |S1 ∩ S2|.
// Callers that already know the multiset sizes (the filter stage keeps them
// in its signature table) should use PsiSortedSized to skip the size walks.
func PsiSorted(a, b Sorted) int {
	return PsiSortedSized(a, b, a.Size(), b.Size())
}

// PsiSortedSized is PsiSorted with both total multiplicities supplied by
// the caller.
func PsiSortedSized(a, b Sorted, sizeA, sizeB int) int {
	m := sizeA
	if sizeB > m {
		m = sizeB
	}
	return m - IntersectionSizeSorted(a, b)
}

// CardinalityBound implements the hyperedge-based lower bound of
// Definition 6: with both cardinality lists padded by zeros to equal length
// and sorted, the L1 distance Σ| |E_i| − |E'_i| | is the minimum total
// extend/reduce cost over all pairings of hyperedges (matching sorted
// sequences minimizes the L1 matching cost), hence a valid lower bound on
// the incidence-editing cost of any mapping.
func CardinalityBound(a, b []int) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	as := make([]int, n) // zero-padded
	bs := make([]int, n)
	copy(as, a)
	copy(bs, b)
	sort.Ints(as)
	sort.Ints(bs)
	total := 0
	for i := 0; i < n; i++ {
		d := as[i] - bs[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}

// CardinalityBoundSorted is CardinalityBound for cardinality lists that are
// already sorted ascending (the signature table stores them that way): the
// zero padding of the shorter list conceptually sits at its front, so the
// L1 walk needs no allocation and no sort.
func CardinalityBoundSorted(a, b []int32) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	pad := len(a) - len(b)
	total := 0
	for i, av := range a {
		var bv int32
		if i >= pad {
			bv = b[i-pad]
		}
		d := av - bv
		if d < 0 {
			d = -d
		}
		total += int(d)
	}
	return total
}
