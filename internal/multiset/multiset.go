// Package multiset provides the label-multiset and cardinality-sequence
// utilities behind the HGED lower bounds of the paper (Definitions 5 and 6).
package multiset

import (
	"sort"

	"hged/internal/hypergraph"
)

// Counts is a multiset of labels represented as label → multiplicity.
type Counts map[hypergraph.Label]int

// FromLabels builds a multiset from a label slice.
func FromLabels(labels []hypergraph.Label) Counts {
	c := make(Counts, len(labels))
	for _, l := range labels {
		c[l]++
	}
	return c
}

// Size returns the total multiplicity.
func (c Counts) Size() int {
	n := 0
	for _, k := range c {
		n += k
	}
	return n
}

// Add increments the multiplicity of l.
func (c Counts) Add(l hypergraph.Label) { c[l]++ }

// Remove decrements the multiplicity of l, deleting the entry at zero.
// Removing an absent label is a no-op.
func (c Counts) Remove(l hypergraph.Label) {
	if k, ok := c[l]; ok {
		if k <= 1 {
			delete(c, l)
		} else {
			c[l] = k - 1
		}
	}
}

// Clone returns a copy of the multiset.
func (c Counts) Clone() Counts {
	d := make(Counts, len(c))
	for l, k := range c {
		d[l] = k
	}
	return d
}

// IntersectionSize returns |S1 ∩ S2| as multisets: the sum over labels of the
// minimum multiplicity.
func IntersectionSize(a, b Counts) int {
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for l, ka := range a {
		if kb, ok := b[l]; ok {
			if ka < kb {
				n += ka
			} else {
				n += kb
			}
		}
	}
	return n
}

// Psi implements Ψ(S1, S2) = max(|S1|, |S2|) − |S1 ∩ S2| (Definition 5).
// It is the minimum number of relabel-plus-insert/delete operations needed to
// turn one label multiset into the other, and therefore a lower bound on the
// label-editing cost of any entity mapping.
func Psi(a, b Counts) int {
	sa, sb := a.Size(), b.Size()
	m := sa
	if sb > m {
		m = sb
	}
	return m - IntersectionSize(a, b)
}

// PsiLabels is Psi applied directly to label slices.
func PsiLabels(a, b []hypergraph.Label) int {
	return Psi(FromLabels(a), FromLabels(b))
}

// CardinalityBound implements the hyperedge-based lower bound of
// Definition 6: with both cardinality lists padded by zeros to equal length
// and sorted, the L1 distance Σ| |E_i| − |E'_i| | is the minimum total
// extend/reduce cost over all pairings of hyperedges (matching sorted
// sequences minimizes the L1 matching cost), hence a valid lower bound on
// the incidence-editing cost of any mapping.
func CardinalityBound(a, b []int) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	as := make([]int, n) // zero-padded
	bs := make([]int, n)
	copy(as, a)
	copy(bs, b)
	sort.Ints(as)
	sort.Ints(bs)
	total := 0
	for i := 0; i < n; i++ {
		d := as[i] - bs[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}
