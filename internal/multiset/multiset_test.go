package multiset

import (
	"testing"
	"testing/quick"

	"hged/internal/hypergraph"
)

func lbl(xs ...int) []hypergraph.Label {
	out := make([]hypergraph.Label, len(xs))
	for i, x := range xs {
		out[i] = hypergraph.Label(x)
	}
	return out
}

func TestPsiPaperExample(t *testing.T) {
	// Paper, after Definition 5: nodes {A,A,B,C} vs {A,B,B,C} → 4−3 = 1,
	// hyperedges {a,a,b} vs {b,b,c} → 3−1 = 2, total 3.
	nodes := PsiLabels(lbl(1, 1, 2, 3), lbl(1, 2, 2, 3))
	if nodes != 1 {
		t.Fatalf("node Ψ = %d, want 1", nodes)
	}
	edges := PsiLabels(lbl(10, 10, 11), lbl(11, 11, 12))
	if edges != 2 {
		t.Fatalf("edge Ψ = %d, want 2", edges)
	}
	if nodes+edges != 3 {
		t.Fatalf("total = %d, want 3", nodes+edges)
	}
}

func TestPsiIdentical(t *testing.T) {
	if got := PsiLabels(lbl(1, 2, 3), lbl(3, 2, 1)); got != 0 {
		t.Fatalf("Ψ of equal multisets = %d, want 0", got)
	}
}

func TestPsiDisjoint(t *testing.T) {
	if got := PsiLabels(lbl(1, 1), lbl(2, 2, 2)); got != 3 {
		t.Fatalf("Ψ = %d, want 3", got)
	}
}

func TestPsiEmpty(t *testing.T) {
	if got := PsiLabels(nil, lbl(5, 5)); got != 2 {
		t.Fatalf("Ψ(∅, {5,5}) = %d, want 2", got)
	}
	if got := PsiLabels(nil, nil); got != 0 {
		t.Fatalf("Ψ(∅, ∅) = %d, want 0", got)
	}
}

func TestCountsAddRemove(t *testing.T) {
	c := FromLabels(lbl(1, 1, 2))
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	c.Remove(1)
	if c[1] != 1 {
		t.Fatalf("count(1) = %d, want 1", c[1])
	}
	c.Remove(1)
	if _, ok := c[1]; ok {
		t.Fatal("label 1 should be deleted at zero multiplicity")
	}
	c.Remove(99) // absent: no-op
	c.Add(7)
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
}

func TestCloneIndependence(t *testing.T) {
	c := FromLabels(lbl(1, 2))
	d := c.Clone()
	d.Add(3)
	if _, ok := c[3]; ok {
		t.Fatal("clone shares storage")
	}
}

func TestCardinalityBoundPaperExample(t *testing.T) {
	// Paper, after Definition 6: {4,2,5,3} vs {6,4,4,3} → 3.
	if got := CardinalityBound([]int{4, 2, 5, 3}, []int{6, 4, 4, 3}); got != 3 {
		t.Fatalf("cardinality bound = %d, want 3", got)
	}
}

func TestCardinalityBoundPadding(t *testing.T) {
	// {3,3,4} vs {3,4} → padded {0,3,3,4} wait lists differ in length:
	// sorted a = [3 3 4], sorted b padded = [0 3 4] → |3-0|+|3-3|+|4-4| = 3.
	if got := CardinalityBound([]int{3, 3, 4}, []int{3, 4}); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
	if got := CardinalityBound(nil, []int{2, 2}); got != 4 {
		t.Fatalf("bound vs empty = %d, want 4", got)
	}
}

func TestPsiSymmetricProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		la := make([]hypergraph.Label, len(a))
		lb := make([]hypergraph.Label, len(b))
		for i, x := range a {
			la[i] = hypergraph.Label(x % 8)
		}
		for i, x := range b {
			lb[i] = hypergraph.Label(x % 8)
		}
		return PsiLabels(la, lb) == PsiLabels(lb, la)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPsiTriangleLikeProperties(t *testing.T) {
	// Ψ is bounded below by the size difference and above by max size.
	f := func(a, b []uint8) bool {
		la := make([]hypergraph.Label, len(a))
		lb := make([]hypergraph.Label, len(b))
		for i, x := range a {
			la[i] = hypergraph.Label(x % 5)
		}
		for i, x := range b {
			lb[i] = hypergraph.Label(x % 5)
		}
		psi := PsiLabels(la, lb)
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		maxSz := len(a)
		if len(b) > maxSz {
			maxSz = len(b)
		}
		return psi >= diff && psi <= maxSz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCardinalityBoundProperties(t *testing.T) {
	// Symmetric; zero iff equal multisets; ≥ |Σa − Σb|.
	f := func(a, b []uint8) bool {
		ia := make([]int, len(a))
		ib := make([]int, len(b))
		sa, sb := 0, 0
		for i, x := range a {
			ia[i] = int(x % 10)
			sa += ia[i]
		}
		for i, x := range b {
			ib[i] = int(x % 10)
			sb += ib[i]
		}
		bound := CardinalityBound(ia, ib)
		if bound != CardinalityBound(ib, ia) {
			return false
		}
		d := sa - sb
		if d < 0 {
			d = -d
		}
		return bound >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
