package multiset

import (
	"testing"

	"hged/internal/hypergraph"
)

func TestIntersectionSizeTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []hypergraph.Label
		want int
	}{
		{"both empty", nil, nil, 0},
		{"one empty", lbl(1, 2), nil, 0},
		{"disjoint", lbl(1, 1), lbl(2, 3), 0},
		{"identical", lbl(1, 2, 2), lbl(2, 1, 2), 3},
		{"multiplicity clamps to min", lbl(1, 1, 1), lbl(1), 1},
		{"partial overlap", lbl(1, 1, 2, 3), lbl(1, 2, 2, 4), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := FromLabels(tc.a), FromLabels(tc.b)
			if got := IntersectionSize(a, b); got != tc.want {
				t.Errorf("IntersectionSize(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			// Symmetric by definition; the implementation iterates the
			// smaller map, so exercise both argument orders explicitly.
			if got := IntersectionSize(b, a); got != tc.want {
				t.Errorf("IntersectionSize(%v, %v) = %d, want %d", tc.b, tc.a, got, tc.want)
			}
		})
	}
}

func TestFromLabelsTable(t *testing.T) {
	cases := []struct {
		name   string
		labels []hypergraph.Label
		want   map[hypergraph.Label]int
	}{
		{"empty", nil, map[hypergraph.Label]int{}},
		{"singleton", lbl(4), map[hypergraph.Label]int{4: 1}},
		{"repeats", lbl(2, 2, 2, 9), map[hypergraph.Label]int{2: 3, 9: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := FromLabels(tc.labels)
			if len(c) != len(tc.want) {
				t.Fatalf("got %d distinct labels, want %d", len(c), len(tc.want))
			}
			for l, k := range tc.want {
				if c[l] != k {
					t.Errorf("count(%d) = %d, want %d", l, c[l], k)
				}
			}
			if c.Size() != len(tc.labels) {
				t.Errorf("Size() = %d, want %d", c.Size(), len(tc.labels))
			}
		})
	}
}

func TestPsiTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []hypergraph.Label
		want int
	}{
		{"both empty", nil, nil, 0},
		{"insertions only", nil, lbl(1, 2, 3), 3},
		{"relabels only", lbl(1, 1), lbl(2, 2), 2},
		{"equal sets", lbl(7, 8), lbl(8, 7), 0},
		{"mixed", lbl(1, 1, 2), lbl(1, 3, 3, 3), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PsiLabels(tc.a, tc.b); got != tc.want {
				t.Errorf("Psi(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestCardinalityBoundTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
		want int
	}{
		{"both empty", nil, nil, 0},
		{"vs empty", []int{3, 1}, nil, 4},
		{"identical", []int{2, 4, 4}, []int{4, 2, 4}, 0},
		{"unsorted input", []int{5, 1}, []int{2, 4}, 2},
		{"length mismatch pads zeros", []int{2}, []int{2, 2, 2}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CardinalityBound(tc.a, tc.b); got != tc.want {
				t.Errorf("CardinalityBound(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestRemoveTable(t *testing.T) {
	cases := []struct {
		name     string
		start    []hypergraph.Label
		remove   []hypergraph.Label
		wantSize int
	}{
		{"remove to empty", lbl(1), lbl(1), 0},
		{"remove one of two", lbl(1, 1), lbl(1), 1},
		{"remove absent is noop", lbl(1), lbl(9, 9), 1},
		{"interleaved", lbl(1, 2, 2), lbl(2, 1, 2), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := FromLabels(tc.start)
			for _, l := range tc.remove {
				c.Remove(l)
			}
			if c.Size() != tc.wantSize {
				t.Errorf("size after removals = %d, want %d", c.Size(), tc.wantSize)
			}
			for l, k := range c {
				if k <= 0 {
					t.Errorf("label %d kept nonpositive multiplicity %d", l, k)
				}
			}
		})
	}
}
