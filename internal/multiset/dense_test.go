package multiset

import (
	"math/rand"
	"sort"
	"testing"

	"hged/internal/hypergraph"
)

// randLabels draws a label slice with many collisions so multiplicities > 1
// are common.
func randLabels(rng *rand.Rand, n int) []hypergraph.Label {
	ls := make([]hypergraph.Label, n)
	for i := range ls {
		ls[i] = hypergraph.Label(rng.Intn(6))
	}
	return ls
}

// TestSortedAgainstCounts cross-checks the dense sorted-slice path against
// the map-based reference on random multisets: sizes, intersections, and Ψ
// must coincide exactly.
func TestSortedAgainstCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a := randLabels(rng, rng.Intn(20))
		b := randLabels(rng, rng.Intn(20))
		ca, cb := FromLabels(a), FromLabels(b)
		sa, sb := SortedFromLabels(a), SortedFromLabels(b)

		if sa.Size() != ca.Size() {
			t.Fatalf("trial %d: Sorted.Size = %d, Counts.Size = %d", trial, sa.Size(), ca.Size())
		}
		if got, want := IntersectionSizeSorted(sa, sb), IntersectionSize(ca, cb); got != want {
			t.Fatalf("trial %d: IntersectionSizeSorted(%v,%v) = %d, map path = %d", trial, a, b, got, want)
		}
		if got, want := PsiSorted(sa, sb), Psi(ca, cb); got != want {
			t.Fatalf("trial %d: PsiSorted(%v,%v) = %d, map path = %d", trial, a, b, got, want)
		}
		if got, want := PsiSortedSized(sa, sb, len(a), len(b)), Psi(ca, cb); got != want {
			t.Fatalf("trial %d: PsiSortedSized = %d, map path = %d", trial, got, want)
		}
		if got, want := PsiLabels(a, b), Psi(ca, cb); got != want {
			t.Fatalf("trial %d: PsiLabels = %d, map path = %d", trial, got, want)
		}
	}
}

// TestSortedShape asserts the representation invariants: ascending unique
// labels with positive parallel counts.
func TestSortedShape(t *testing.T) {
	s := SortedFromLabels([]hypergraph.Label{5, 1, 5, 3, 1, 1})
	wantLabels := []hypergraph.Label{1, 3, 5}
	wantCounts := []int32{3, 1, 2}
	if len(s.Labels) != len(wantLabels) || len(s.Counts) != len(wantCounts) {
		t.Fatalf("got %v/%v, want %v/%v", s.Labels, s.Counts, wantLabels, wantCounts)
	}
	for i := range wantLabels {
		if s.Labels[i] != wantLabels[i] || s.Counts[i] != wantCounts[i] {
			t.Fatalf("got %v/%v, want %v/%v", s.Labels, s.Counts, wantLabels, wantCounts)
		}
	}
	empty := SortedFromLabels(nil)
	if len(empty.Labels) != 0 || empty.Size() != 0 {
		t.Fatalf("empty multiset is %v, size %d", empty.Labels, empty.Size())
	}
}

// TestCardinalityBoundSorted cross-checks the allocation-free sorted walk
// against the padding-and-sorting reference.
func TestCardinalityBoundSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := make([]int, rng.Intn(12))
		b := make([]int, rng.Intn(12))
		for i := range a {
			a[i] = rng.Intn(8)
		}
		for i := range b {
			b[i] = rng.Intn(8)
		}
		want := CardinalityBound(a, b)

		as := make([]int32, len(a))
		bs := make([]int32, len(b))
		for i, v := range a {
			as[i] = int32(v)
		}
		for i, v := range b {
			bs[i] = int32(v)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		if got := CardinalityBoundSorted(as, bs); got != want {
			t.Fatalf("trial %d: CardinalityBoundSorted(%v,%v) = %d, reference = %d", trial, as, bs, got, want)
		}
		if got := CardinalityBoundSorted(bs, as); got != want {
			t.Fatalf("trial %d: CardinalityBoundSorted is not symmetric: %d vs %d", trial, got, want)
		}
	}
}
