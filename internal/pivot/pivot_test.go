package pivot

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// handBuild runs the builder against a fixed symmetric distance matrix and
// returns the selection order.
func handBuild(t *testing.T, d [][]int32, k int) *Index {
	t.Helper()
	n := len(d)
	b := NewBuilder(n)
	for len(b.ids) < k {
		id, ok := b.Next()
		if !ok {
			break
		}
		col := make([]int32, n)
		for i := range col {
			col[i] = d[i][id]
		}
		b.Add(id, col)
	}
	return b.Index()
}

func TestFarthestFirstSelection(t *testing.T) {
	// Distances on a line: 0 —1— 1 —1— 2 ... 3 far out at 10.
	d := [][]int32{
		{0, 1, 2, 10},
		{1, 0, 1, 9},
		{2, 1, 0, 8},
		{10, 9, 8, 0},
	}
	x := handBuild(t, d, 3)
	// Seed 0; farthest from 0 is 3 (10); then 2 (min(2,8)=2 beats 1's 1).
	want := []int32{0, 3, 2}
	if !reflect.DeepEqual(x.PivotIDs(), want) {
		t.Fatalf("selection order %v, want %v", x.PivotIDs(), want)
	}
}

func TestSelectionTieBreaksToLowestIndex(t *testing.T) {
	// Graphs 1 and 2 are equally far from the seed; 1 must win.
	d := [][]int32{
		{0, 5, 5},
		{5, 0, 5},
		{5, 5, 0},
	}
	x := handBuild(t, d, 2)
	if want := []int32{0, 1}; !reflect.DeepEqual(x.PivotIDs(), want) {
		t.Fatalf("selection order %v, want %v", x.PivotIDs(), want)
	}
}

func TestSelectionNeverRepicksAPivot(t *testing.T) {
	// All-zero distances (duplicate corpus): every remaining graph ties at
	// minDist 0, and the builder must still emit distinct pivots.
	d := [][]int32{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	x := handBuild(t, d, 3)
	if want := []int32{0, 1, 2}; !reflect.DeepEqual(x.PivotIDs(), want) {
		t.Fatalf("selection order %v, want %v", x.PivotIDs(), want)
	}
	if id, ok := NewBuilder(0).Next(); ok {
		t.Fatalf("empty corpus yielded pivot %d", id)
	}
}

func TestUnknownDistancesStayOptimistic(t *testing.T) {
	// Graph 2's distance to the seed is Unknown: its minimum stays at
	// +inf, so farthest-first picks it over the measured graph 1.
	b := NewBuilder(3)
	id, _ := b.Next()
	b.Add(id, []int32{0, 3, Unknown})
	next, ok := b.Next()
	if !ok || next != 2 {
		t.Fatalf("next pivot = %d (ok=%v), want 2", next, ok)
	}
}

func TestBoundsBracketTheMetric(t *testing.T) {
	x, err := FromParts(3, []int32{0, 2}, [][]int32{
		{0, 4, 7},
		{7, 3, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	qd := []int32{5, 2} // d(q, pivot0)=5, d(q, pivot1)=2
	// Graph 1: |5-4|=1, |2-3|=1 → lb 1; min(5+4, 2+3)=5 → ub 5.
	lb, ub, ok := x.Bounds(qd, 1)
	if !ok || lb != 1 || ub != 5 {
		t.Fatalf("bounds(1) = (%d, %d, %v), want (1, 5, true)", lb, ub, ok)
	}
	// Graph 2 is pivot 1 itself: the interval collapses onto d(q, p1)=2.
	lb, ub, ok = x.Bounds(qd, 2)
	if !ok || lb != 2 || ub != 2 {
		t.Fatalf("bounds(2) = (%d, %d, %v), want (2, 2, true)", lb, ub, ok)
	}
}

func TestBoundsSkipUnknownEntries(t *testing.T) {
	x, err := FromParts(2, []int32{0, 1}, [][]int32{
		{0, Unknown},
		{Unknown, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Graph 1: pivot 0's entry is Unknown, pivot 1 contributes (|3-0|, 3+0).
	lb, ub, ok := x.Bounds([]int32{4, 3}, 1)
	if !ok || lb != 3 || ub != 3 {
		t.Fatalf("bounds = (%d, %d, %v), want (3, 3, true)", lb, ub, ok)
	}
	// Both sides Unknown for every pivot → no bracket.
	if _, _, ok := x.Bounds([]int32{Unknown, Unknown}, 1); ok {
		t.Fatal("all-Unknown query distances must not produce bounds")
	}
}

func TestFromPartsRejectsMalformedInputs(t *testing.T) {
	col := func(vals ...int32) []int32 { return vals }
	cases := []struct {
		name string
		n    int
		ids  []int32
		dist [][]int32
		want string
	}{
		{"negative corpus", -1, nil, nil, "negative corpus"},
		{"column count", 2, []int32{0}, nil, "distance columns"},
		{"too many pivots", 1, []int32{0, 0}, [][]int32{col(0), col(0)}, "exceed the corpus"},
		{"id out of range", 2, []int32{2}, [][]int32{col(0, 0)}, "out of range"},
		{"duplicate id", 2, []int32{0, 0}, [][]int32{col(0, 1), col(0, 1)}, "duplicate pivot"},
		{"short column", 2, []int32{0}, [][]int32{col(0)}, "column has"},
		{"negative distance", 2, []int32{0}, [][]int32{col(0, -7)}, "want ≥ 0"},
		{"self distance", 2, []int32{1}, [][]int32{col(3, 4)}, "self-distance"},
	}
	for _, tc := range cases {
		if _, err := FromParts(tc.n, tc.ids, tc.dist); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := FromParts(0, nil, nil); err != nil {
		t.Fatalf("empty index must be valid: %v", err)
	}
}

func TestBuilderIsByteReproducible(t *testing.T) {
	d := [][]int32{
		{0, 2, 9, 4},
		{2, 0, 7, 5},
		{9, 7, 0, 6},
		{4, 5, 6, 0},
	}
	a, b := handBuild(t, d, 4), handBuild(t, d, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two builds over the same matrix diverged: %+v vs %+v", a, b)
	}
	if a.K() != 4 || a.Len() != 4 {
		t.Fatalf("K=%d Len=%d, want 4, 4", a.K(), a.Len())
	}
}

func TestBoundsOnUnreachedGraphKeepsMaxInt(t *testing.T) {
	// Guard against ub overflow: large distances still produce a sane sum.
	x, err := FromParts(2, []int32{0}, [][]int32{{0, math.MaxInt32}})
	if err != nil {
		t.Fatal(err)
	}
	lb, ub, ok := x.Bounds([]int32{math.MaxInt32}, 1)
	if !ok || lb != 0 || ub != 2*int(math.MaxInt32) {
		t.Fatalf("bounds = (%d, %d, %v)", lb, ub, ok)
	}
}
