// Package pivot implements the metric side of a pivot-based HGED index:
// deterministic farthest-first pivot selection over a corpus, a
// corpus×pivot exact-distance matrix, and query-time triangle-inequality
// bounds. HGED is a true metric, so for any query q, corpus graph g and
// pivot p,
//
//	|d(q,p) − d(g,p)| ≤ d(q,g) ≤ d(q,p) + d(g,p)
//
// and an index that has precomputed d(g,p) for every g can bracket d(q,g)
// after only K query-to-pivot solves. Lower bounds above a search
// threshold prune candidates without verification; an interval that
// collapses (lower == upper) pins the exact distance and admits a match
// without verification.
//
// The package holds no solver machinery: distances are computed by the
// caller (internal/search drives its pooled parallel verification workers)
// and fed in one pivot column at a time. Everything here is a pure
// function of those inputs, so index builds are byte-reproducible.
package pivot

import (
	"fmt"
	"math"
)

// Unknown is the sentinel for a distance the caller could not pin exactly
// (its solver hit an expansion budget before proving optimality). Unknown
// entries never participate in bounds or in farthest-first selection, so a
// budget-capped build degrades gracefully toward the unpruned scan instead
// of becoming unsound.
const Unknown = int32(-1)

// Index is an immutable pivot table: the selected pivots (corpus indices,
// in selection order) and the exact HGED from every corpus graph to each
// pivot. Build one with Builder, or reconstruct a persisted one with
// FromParts.
type Index struct {
	n    int
	ids  []int32   // pivot corpus indices, selection order
	dist [][]int32 // dist[p][i] = HGED(corpus[i], corpus[ids[p]]); Unknown allowed
}

// Len returns the corpus size the index was built over.
func (x *Index) Len() int { return x.n }

// K returns the number of pivots.
func (x *Index) K() int { return len(x.ids) }

// PivotID returns the corpus index of pivot p.
func (x *Index) PivotID(p int) int { return int(x.ids[p]) }

// PivotIDs returns the pivot corpus indices in selection order. The slice
// is shared with the index and must not be mutated.
func (x *Index) PivotIDs() []int32 { return x.ids }

// Distances returns pivot p's distance column: Distances(p)[i] is the
// exact HGED from corpus graph i to pivot p (Unknown when the build could
// not pin it). The slice is shared with the index and must not be mutated.
func (x *Index) Distances(p int) []int32 { return x.dist[p] }

// Bounds brackets the distance between a query and corpus graph i from the
// query-to-pivot distances qd (one entry per pivot, Unknown allowed).
// It reports ok=false when no pivot has both sides known, in which case
// the caller must fall back to its other filters.
func (x *Index) Bounds(qd []int32, i int) (lb, ub int, ok bool) {
	ub = math.MaxInt
	for p := range x.ids {
		dq, dg := qd[p], x.dist[p][i]
		if dq == Unknown || dg == Unknown {
			continue
		}
		ok = true
		diff := int(dq) - int(dg)
		if diff < 0 {
			diff = -diff
		}
		if diff > lb {
			lb = diff
		}
		if sum := int(dq) + int(dg); sum < ub {
			ub = sum
		}
	}
	if !ok {
		return 0, 0, false
	}
	return lb, ub, true
}

// FromParts reassembles an Index from its raw components (the snapshot
// reader's path): n is the corpus size, ids the pivot corpus indices, and
// dist the per-pivot distance columns. The inputs are validated but not
// copied; the caller must not mutate them afterwards.
func FromParts(n int, ids []int32, dist [][]int32) (*Index, error) {
	if n < 0 {
		return nil, fmt.Errorf("pivot: negative corpus size %d", n)
	}
	if len(dist) != len(ids) {
		return nil, fmt.Errorf("pivot: %d pivot ids but %d distance columns", len(ids), len(dist))
	}
	if len(ids) > n {
		return nil, fmt.Errorf("pivot: %d pivots exceed the corpus size %d", len(ids), n)
	}
	seen := make(map[int32]bool, len(ids))
	for p, id := range ids {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("pivot: pivot %d id %d out of range [0, %d)", p, id, n)
		}
		if seen[id] {
			return nil, fmt.Errorf("pivot: duplicate pivot id %d", id)
		}
		seen[id] = true
		col := dist[p]
		if len(col) != n {
			return nil, fmt.Errorf("pivot: pivot %d column has %d entries, want %d", p, len(col), n)
		}
		for i, d := range col {
			if d < 0 && d != Unknown {
				return nil, fmt.Errorf("pivot: pivot %d distance to graph %d is %d, want ≥ 0 or Unknown", p, i, d)
			}
		}
		if d := col[id]; d != 0 && d != Unknown {
			return nil, fmt.Errorf("pivot: pivot %d self-distance is %d, want 0", p, d)
		}
	}
	return &Index{n: n, ids: ids, dist: dist}, nil
}

// Builder accumulates farthest-first rounds into an Index. The traversal
// is seeded at corpus index 0 and thereafter selects the graph maximizing
// the minimum distance to the pivots chosen so far, breaking ties toward
// the lowest corpus index — so a build over a fixed corpus is
// byte-reproducible regardless of how the caller parallelizes the distance
// computations. Unknown distances leave a graph's minimum untouched
// (standard farthest-first optimism: an unmeasured graph may be far).
type Builder struct {
	n       int
	ids     []int32
	dist    [][]int32
	chosen  []bool
	minDist []int32 // per graph, min known distance to the chosen pivots
}

// NewBuilder starts a build over a corpus of n graphs.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, chosen: make([]bool, n), minDist: make([]int32, n)}
	for i := range b.minDist {
		b.minDist[i] = math.MaxInt32
	}
	return b
}

// Next returns the corpus index to use as the next pivot, or ok=false when
// the corpus is exhausted. The caller computes that pivot's distance
// column and feeds it back through Add.
func (b *Builder) Next() (id int, ok bool) {
	if len(b.ids) >= b.n {
		return 0, false
	}
	if len(b.ids) == 0 {
		return 0, true // the traversal seed
	}
	best, bestDist := -1, int32(-1)
	for i := 0; i < b.n; i++ {
		if b.chosen[i] {
			continue
		}
		if b.minDist[i] > bestDist {
			best, bestDist = i, b.minDist[i]
		}
	}
	return best, best >= 0
}

// Add records the next pivot: id is the corpus index Next returned and col
// its distance column (col[i] = exact HGED from corpus graph i to the
// pivot, Unknown where the solver could not pin it). The column is
// retained, not copied.
func (b *Builder) Add(id int, col []int32) {
	if len(col) != b.n {
		panic(fmt.Sprintf("pivot: column has %d entries, want %d", len(col), b.n))
	}
	if id < 0 || id >= b.n || b.chosen[id] {
		panic(fmt.Sprintf("pivot: bad or duplicate pivot id %d", id))
	}
	b.chosen[id] = true
	b.ids = append(b.ids, int32(id))
	b.dist = append(b.dist, col)
	for i, d := range col {
		if d != Unknown && d < b.minDist[i] {
			b.minDist[i] = d
		}
	}
}

// Index seals the build. The builder must not be used afterwards.
func (b *Builder) Index() *Index {
	return &Index{n: b.n, ids: b.ids, dist: b.dist}
}
