package dataset

import (
	"strings"
	"testing"

	"hged/internal/hypergraph"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"PS", "HS", "MO", "WM", "TVG", "AMZ"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d datasets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dataset %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("MO")
	if err != nil {
		t.Fatal(err)
	}
	if s.PaperNodes != 73851 || s.PaperEdges != 5446 {
		t.Fatalf("MO stats wrong: %+v", s)
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestTableIStatistics(t *testing.T) {
	// The registry must carry Table I verbatim.
	rows := map[string][5]float64{ // n, m, mean, median, labels
		"PS":  {242, 12704, 2.4, 2, 11},
		"HS":  {327, 7818, 2.3, 2, 9},
		"MO":  {73851, 5446, 24.2, 5, 1456},
		"WM":  {88860, 69906, 6.6, 5, 11},
		"TVG": {172738, 233202, 4.1, 3, 160},
		"AMZ": {2268231, 4285363, 17.1, 8, 29},
	}
	for name, want := range rows {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if float64(s.PaperNodes) != want[0] || float64(s.PaperEdges) != want[1] ||
			s.PaperMean != want[2] || float64(s.PaperMedian) != want[3] ||
			float64(s.PaperLabels) != want[4] {
			t.Fatalf("%s registry row deviates from Table I: %+v", name, s)
		}
	}
}

func TestReplicaGeneration(t *testing.T) {
	for _, s := range Registry {
		g, err := s.Replica(0) // default scale
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid replica: %v", s.Name, err)
		}
		if g.NumNodes() != s.ReplicaNodes(s.DefaultScale) {
			t.Fatalf("%s: n=%d, want %d", s.Name, g.NumNodes(), s.ReplicaNodes(s.DefaultScale))
		}
		if g.NumEdges() != s.ReplicaEdges(s.DefaultScale) {
			t.Fatalf("%s: m=%d, want %d", s.Name, g.NumEdges(), s.ReplicaEdges(s.DefaultScale))
		}
		if !strings.Contains(s.TableRow(g), s.Name) {
			t.Fatalf("%s: table row missing name", s.Name)
		}
	}
}

func TestReplicaDeterministic(t *testing.T) {
	s, _ := Lookup("PS")
	a, err := s.Replica(0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Replica(0.05)
	if a.String() != b.String() {
		t.Fatal("replicas must be deterministic")
	}
}

func TestReplicaFloors(t *testing.T) {
	s, _ := Lookup("PS")
	g, err := s.Replica(0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 40 || g.NumEdges() < 60 {
		t.Fatalf("floors not applied: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestSplitRatioAndDisjointness(t *testing.T) {
	s, _ := Lookup("HS")
	g, err := s.Replica(0.05)
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := Split(g, 0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumNodes() != g.NumNodes() {
		t.Fatal("split must keep all nodes")
	}
	if train.NumEdges()+len(held) != g.NumEdges() {
		t.Fatalf("edges lost: %d + %d != %d", train.NumEdges(), len(held), g.NumEdges())
	}
	ratio := float64(train.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.7 || ratio > 0.8 {
		t.Fatalf("train ratio %v far from 0.75", ratio)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels preserved.
	for v := 0; v < g.NumNodes(); v++ {
		if train.NodeLabel(hypergraph.NodeID(v)) != g.NodeLabel(hypergraph.NodeID(v)) {
			t.Fatal("node labels lost in split")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	s, _ := Lookup("HS")
	g, _ := s.Replica(0.05)
	t1, h1, _ := Split(g, 0.75, 9)
	t2, h2, _ := Split(g, 0.75, 9)
	if t1.String() != t2.String() || len(h1) != len(h2) {
		t.Fatal("split must be deterministic by seed")
	}
	_, h3, _ := Split(g, 0.75, 10)
	SortEdges(h1)
	SortEdges(h3)
	same := len(h1) == len(h3)
	if same {
		diff := false
		for i := range h1 {
			if hypergraph.Hyperedge(h1[i]).Key() != hypergraph.Hyperedge(h3[i]).Key() {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds should produce different splits")
		}
	}
}

func TestSplitValidation(t *testing.T) {
	g := hypergraph.Fig1()
	if _, _, err := Split(g, 0, 1); err == nil {
		t.Fatal("train fraction 0 must fail")
	}
	if _, _, err := Split(g, 1, 1); err == nil {
		t.Fatal("train fraction 1 must fail")
	}
}
