// Package dataset provides the six hypergraphs of the paper's evaluation
// (Table I) as seeded synthetic replicas, plus the 3:1 train/validation
// hyperedge split of the "Goodness metrics" protocol.
//
// The paper's datasets come from https://www.cs.cornell.edu/~arb/data/; the
// module is offline, so each dataset is replicated by the planted-community
// generator with the paper's summary statistics (node count, hyperedge
// count, mean and median hyperedge size, node-label classes). The large
// datasets are replicated at reduced scale by default — exact HGED on
// multi-million-edge hypergraphs needs the paper's hours-long budget — with
// the scale factor recorded on the Spec and applied multiplicatively; the
// full-scale statistics remain available as Paper* fields for Table I.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"hged/internal/gen"
	"hged/internal/hypergraph"
)

// Spec describes one dataset: the paper's statistics and the default
// replica scale.
type Spec struct {
	Name        string
	Description string
	// Paper statistics (Table I).
	PaperNodes  int
	PaperEdges  int
	PaperMean   float64 // mean hyperedge size
	PaperMedian int     // median hyperedge size
	PaperLabels int     // |l(V)|
	// DefaultScale is the fraction of the paper's size the default replica
	// uses (applied to both nodes and hyperedges, with floors).
	DefaultScale float64
	// EdgeScale additionally scales the hyperedge count relative to the
	// node count (0 means 1). The small contact datasets (PS, HS) keep all
	// their nodes but a tenth of their very many hyperedges, so replica
	// density — and therefore ego-network size — stays realistic at every
	// scale.
	EdgeScale float64
	// Seed for deterministic generation.
	Seed int64
}

// Registry lists the six datasets in the paper's order.
var Registry = []Spec{
	{
		Name:        "PS",
		Description: "primary school contact groups; labels are teacher/classroom",
		PaperNodes:  242, PaperEdges: 12704, PaperMean: 2.4, PaperMedian: 2, PaperLabels: 11,
		DefaultScale: 1.0, EdgeScale: 0.10, Seed: 101,
	},
	{
		Name:        "HS",
		Description: "high school contact groups; labels are classrooms",
		PaperNodes:  327, PaperEdges: 7818, PaperMean: 2.3, PaperMedian: 2, PaperLabels: 9,
		DefaultScale: 1.0, EdgeScale: 0.10, Seed: 102,
	},
	{
		Name:        "MO",
		Description: "MathOverflow questions answered by users; labels are question tags",
		PaperNodes:  73851, PaperEdges: 5446, PaperMean: 24.2, PaperMedian: 5, PaperLabels: 1456,
		DefaultScale: 0.02, Seed: 103,
	},
	{
		Name:        "WM",
		Description: "Walmart shopping trips; labels are product departments",
		PaperNodes:  88860, PaperEdges: 69906, PaperMean: 6.6, PaperMedian: 5, PaperLabels: 11,
		DefaultScale: 0.01, Seed: 104,
	},
	{
		Name:        "TVG",
		Description: "Trivago browsing sessions; labels are accommodation countries",
		PaperNodes:  172738, PaperEdges: 233202, PaperMean: 4.1, PaperMedian: 3, PaperLabels: 160,
		DefaultScale: 0.005, Seed: 105,
	},
	{
		Name:        "AMZ",
		Description: "Amazon product reviews; labels are product categories",
		PaperNodes:  2268231, PaperEdges: 4285363, PaperMean: 17.1, PaperMedian: 8, PaperLabels: 29,
		DefaultScale: 0.001, Seed: 106,
	},
}

// Lookup returns the Spec with the given (case-sensitive) name.
func Lookup(name string) (Spec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names returns the registry's dataset names in order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, s := range Registry {
		out[i] = s.Name
	}
	return out
}

// ReplicaNodes returns the node count of the replica at the given scale.
func (s Spec) ReplicaNodes(scale float64) int {
	n := int(math.Round(float64(s.PaperNodes) * scale))
	if n < 40 {
		n = 40
	}
	return n
}

// ReplicaEdges returns the hyperedge count of the replica at the given
// scale.
func (s Spec) ReplicaEdges(scale float64) int {
	es := s.EdgeScale
	if es == 0 {
		es = 1
	}
	m := int(math.Round(float64(s.PaperEdges) * scale * es))
	if m < 60 {
		m = 60
	}
	return m
}

// Replica generates the synthetic replica at the given scale; scale ≤ 0
// selects the spec's default. Labels classes are capped at the replica's
// node count.
func (s Spec) Replica(scale float64) (*hypergraph.Hypergraph, error) {
	if scale <= 0 {
		scale = s.DefaultScale
	}
	nodes := s.ReplicaNodes(scale)
	labels := s.PaperLabels
	if labels > nodes/2 {
		labels = nodes / 2
		if labels < 2 {
			labels = 2
		}
	}
	maxSize := int(4 * s.PaperMean)
	if maxSize > nodes/2 {
		maxSize = nodes / 2
	}
	g, _, err := gen.PlantedCommunities(gen.Config{
		Nodes:          nodes,
		Edges:          s.ReplicaEdges(scale),
		MeanEdgeSize:   s.PaperMean,
		MedianEdgeSize: s.PaperMedian,
		MaxEdgeSize:    maxSize,
		NodeLabelCount: labels,
		EdgeLabelCount: labels,
		Seed:           s.Seed,
	})
	return g, err
}

// Split divides g's hyperedges into a training hypergraph and a held-out
// validation set with the given train fraction (the paper uses 3:1, i.e.
// 0.75), deterministically by seed. The training graph keeps all nodes.
func Split(g *hypergraph.Hypergraph, trainFrac float64, seed int64) (*hypergraph.Hypergraph, []hypergraph.Hyperedge, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v out of (0,1)", trainFrac)
	}
	if seed == 0 {
		seed = 1
	}
	m := g.NumEdges()
	perm := permFromSeed(m, seed)
	trainCount := int(math.Round(float64(m) * trainFrac))
	trainSet := make(map[int]struct{}, trainCount)
	for _, e := range perm[:trainCount] {
		trainSet[e] = struct{}{}
	}

	labels := make([]hypergraph.Label, g.NumNodes())
	for v := range labels {
		labels[v] = g.NodeLabel(hypergraph.NodeID(v))
	}
	train := hypergraph.NewLabeled(labels)
	var held []hypergraph.Hyperedge
	for e := 0; e < m; e++ {
		edge := g.Edge(hypergraph.EdgeID(e))
		if _, ok := trainSet[e]; ok {
			train.AddEdge(edge.Label, edge.Nodes...)
		} else {
			nodes := append([]hypergraph.NodeID(nil), edge.Nodes...)
			held = append(held, hypergraph.Hyperedge{Label: edge.Label, Nodes: nodes})
		}
	}
	return train, held, nil
}

// permFromSeed is a deterministic permutation of 0..n-1 via a seeded
// Fisher–Yates using splitmix64, independent of math/rand's evolution.
func permFromSeed(n int, seed int64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// TableRow renders the paper-vs-replica statistics line for Table I.
func (s Spec) TableRow(g *hypergraph.Hypergraph) string {
	st := hypergraph.Summarize(g)
	return fmt.Sprintf("%-4s paper[n=%d m=%d mean=%.1f med=%d labels=%d] replica[%s]",
		s.Name, s.PaperNodes, s.PaperEdges, s.PaperMean, s.PaperMedian, s.PaperLabels, st)
}

// SortEdges orders hyperedges lexicographically by node set; helper for
// deterministic comparisons in tests and tools.
func SortEdges(edges []hypergraph.Hyperedge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i].Nodes, edges[j].Nodes
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
