package hgio

import (
	"bytes"
	"reflect"
	"testing"

	"hged/internal/pivot"
)

// pivotTableFromBytes deterministically decodes an arbitrary byte string
// into a small valid pivot table plus digests, so the round-trip fuzzer
// explores the writer→reader path from random structures.
func pivotTableFromBytes(data []byte) (*pivot.Index, []uint64) {
	n := 0
	if len(data) > 0 {
		n = int(data[0]) % 9
	}
	k := 0
	if len(data) > 1 && n > 0 {
		k = int(data[1]) % (n + 1)
	}
	i := 2
	next := func() int32 {
		if i >= len(data) {
			return pivot.Unknown
		}
		v := int32(data[i]) % 17
		i++
		if v == 16 {
			return pivot.Unknown
		}
		return v
	}
	b := pivot.NewBuilder(n)
	for t := 0; t < k; t++ {
		id, ok := b.Next()
		if !ok {
			break
		}
		col := make([]int32, n)
		for j := range col {
			col[j] = next()
		}
		col[id] = 0
		b.Add(id, col)
	}
	pv := b.Index()
	digests := make([]uint64, n)
	for j := range digests {
		digests[j] = uint64(j)*0x9e3779b97f4a7c15 + uint64(next()+2)
	}
	return pv, digests
}

// FuzzPivotSnapshotRoundTrip checks WritePivotSnapshot→ReadPivotSnapshot
// fidelity on arbitrary generated tables: everything the writer emits must
// be read back identically.
func FuzzPivotSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 2, 1, 2, 3, 4, 16, 6, 7, 8, 9, 10})
	f.Add([]byte{8, 8, 0})
	f.Add([]byte{1, 1, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		pv, digests := pivotTableFromBytes(data)
		var buf bytes.Buffer
		if err := WritePivotSnapshot(&buf, pv, digests); err != nil {
			t.Fatalf("WritePivotSnapshot: %v", err)
		}
		back, gotDigests, err := ReadPivotSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reader rejected its own writer's output: %v", err)
		}
		if back.Len() != pv.Len() || back.K() != pv.K() {
			t.Fatalf("shape changed: got (%d,%d) want (%d,%d)", back.Len(), back.K(), pv.Len(), pv.K())
		}
		if pv.K() > 0 && !reflect.DeepEqual(back.PivotIDs(), pv.PivotIDs()) {
			t.Fatalf("pivot ids changed: got %v want %v", back.PivotIDs(), pv.PivotIDs())
		}
		for p := 0; p < pv.K(); p++ {
			if !reflect.DeepEqual(back.Distances(p), pv.Distances(p)) {
				t.Fatalf("column %d changed", p)
			}
		}
		if pv.Len() > 0 && !reflect.DeepEqual(gotDigests, digests) {
			t.Fatalf("digests changed: got %v want %v", gotDigests, digests)
		}
	})
}

// FuzzReadPivotSnapshot checks that arbitrary input never panics the
// reader and that anything it accepts re-serializes byte-identically
// (there is exactly one wire form per table).
func FuzzReadPivotSnapshot(f *testing.F) {
	pv, _ := pivotTableFromBytes([]byte{5, 2, 1, 2, 3, 4, 16, 6, 7, 8, 9, 10})
	var seed bytes.Buffer
	if err := WritePivotSnapshot(&seed, pv, make([]uint64, pv.Len())); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("HGEDPIVS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, digests, err := ReadPivotSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePivotSnapshot(&buf, back, digests); err != nil {
			t.Fatalf("cannot re-serialize an accepted snapshot: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted snapshot is not canonical:\n in: %x\nout: %x", data, buf.Bytes())
		}
	})
}
