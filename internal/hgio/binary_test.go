package hgio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := hypergraph.Fig1()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != back.String() {
		t.Fatal("binary round trip lost structure")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.Uniform(40, 60, 5, 4, 3, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.String() != back.String() {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	g := hypergraph.New(0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 0 || back.NumEdges() != 0 {
		t.Fatalf("empty graph came back as %dx%d", back.NumNodes(), back.NumEdges())
	}
}

// TestBinaryRejectsCorruption flips every byte of a valid encoding in turn;
// the reader must never return a graph different from the original without
// an error (the checksum or a validation step must catch each flip).
func TestBinaryRejectsCorruption(t *testing.T) {
	g := gen.Uniform(12, 15, 4, 3, 2, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := g.String()
	data := buf.Bytes()
	for i := range data {
		corrupt := make([]byte, len(data))
		copy(corrupt, data)
		corrupt[i] ^= 0x41
		back, err := ReadBinary(bytes.NewReader(corrupt))
		if err == nil && back.String() != want {
			t.Fatalf("byte %d: corruption silently changed the graph", i)
		}
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	g := gen.Uniform(12, 15, 4, 3, 2, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes not rejected", cut, len(data))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(append(data, 0))); err == nil {
		t.Fatal("trailing byte not rejected")
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("HGEDPIVSxxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("wrong magic not rejected")
	}
}

func TestBinaryFileAndReadFile(t *testing.T) {
	g := gen.Uniform(20, 25, 4, 3, 2, 3)
	path := filepath.Join(t.TempDir(), "g.hgb")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != back.String() {
		t.Fatal("file round trip mismatch")
	}
	// Atomic write: no temp litter next to the target.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("write left %d directory entries, want 1", len(entries))
	}
}

// FuzzReadBinary lets the fuzzer mutate valid encodings; the reader must
// never panic, and everything it accepts must re-encode to the same bytes
// (a canonical-form check: the CSR encoding of a graph is unique).
func FuzzReadBinary(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.Uniform(8, 10, 3, 3, 2, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to re-encode: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded graph rejected: %v", err)
		}
		if g.String() != back.String() {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
