package hgio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"hged/internal/hypergraph"
	"hged/internal/search"
)

// Combined corpus+index snapshot layout (.hgx, all integers little-endian).
// One file holds everything a server needs to answer its first query: the
// corpus graphs as nested .hgb records, the search index's signature-table
// columns exactly as they sit in memory, the per-graph signature digests,
// and (optionally) the pivot table as a nested HGEDPIVS record. Loading it
// constructs every graph frozen-first and restores the index without
// recomputing a single signature — zero Freeze rebuilds on the cold path.
//
//	offset  size      field
//	0       8         magic "HGEDIDX1"
//	8       4         format version (uint32, currently 1)
//	12      4         G — corpus size (uint32)
//	16      4         flags (uint32; bit 0: pivot section present)
//	...               G × (uint32 length + name bytes) — corpus entry names
//	...               G × (uint32 length + nested .hgb record)
//	...     4G        signature column n (G × int32)
//	...     4G        signature column m (G × int32)
//	...     4G        signature column incid (G × int32)
//	...     4(G+1)    cardinality arena offsets (int32, first 0)
//	...     4·cards   cardinality arena (cardOff[G] × int32)
//	...     4(G+1)    node-label arena offsets
//	...     4·nlab    node-label arena labels (nodeOff[G] × int32)
//	...     4·nlab    node-label arena multiplicities
//	...     4(G+1)    edge-label arena offsets
//	...     4·elab    edge-label arena labels (edgeOff[G] × int32)
//	...     4·elab    edge-label arena multiplicities
//	...     8G        per-graph signature digests (G × uint64)
//	...               [flags&1] uint32 length + nested HGEDPIVS record
//	...     4         CRC-32 (IEEE) of everything above (uint32)
//
// Arena lengths are implied by the final offset entry, so the file carries
// no redundant counts to cross-check against each other. The trailing
// checksum is verified before any graph or index is constructed, and
// search.FromSnapshot re-validates the restored table against the decoded
// graphs (including a digest recomputation), so a torn, truncated, or
// tampered snapshot is rejected rather than installed.
const (
	corpusSnapshotMagic   = "HGEDIDX1"
	corpusSnapshotVersion = uint32(1)

	// maxSnapshotNameLen bounds a single corpus entry name, protecting the
	// reader from hostile length prefixes.
	maxSnapshotNameLen = 1 << 16
)

// WriteCorpusSnapshot serializes the corpus behind ix (names[i] labels graph
// i; typically registry names or source file paths) together with the
// index's signature table, digests, and attached pivot table.
func WriteCorpusSnapshot(w io.Writer, names []string, ix *search.Index) error {
	if ix == nil {
		return fmt.Errorf("hgio: nil search index")
	}
	if len(names) != ix.Len() {
		return fmt.Errorf("hgio: %d names for a corpus of %d graphs", len(names), ix.Len())
	}
	for i, name := range names {
		if len(name) > maxSnapshotNameLen {
			return fmt.Errorf("hgio: corpus entry %d name is %d bytes (max %d)", i, len(name), maxSnapshotNameLen)
		}
	}
	snap := ix.Snapshot()
	hasPivots := snap.Pivots != nil && snap.Pivots.K() > 0

	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(out, corpusSnapshotMagic); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	flags := uint32(0)
	if hasPivots {
		flags |= 1
	}
	if err := writeU32s(out, corpusSnapshotVersion, uint32(ix.Len()), flags); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeU32s(out, uint32(len(name))); err != nil {
			return err
		}
		if _, err := io.WriteString(out, name); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	var rec bytes.Buffer
	for i := 0; i < ix.Len(); i++ {
		rec.Reset()
		if err := WriteBinary(&rec, ix.Graph(i)); err != nil {
			return fmt.Errorf("hgio: corpus snapshot graph %d: %w", i, err)
		}
		if err := writeU32s(out, uint32(rec.Len())); err != nil {
			return err
		}
		if _, err := out.Write(rec.Bytes()); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	for _, col := range [][]int32{snap.N, snap.M, snap.Incid, snap.CardOff, snap.Cards} {
		if err := writeI32s(out, col); err != nil {
			return err
		}
	}
	if err := writeI32s(out, snap.NodeOff); err != nil {
		return err
	}
	if err := writeLabels(out, snap.NodeLabels); err != nil {
		return err
	}
	if err := writeI32s(out, snap.NodeCounts); err != nil {
		return err
	}
	if err := writeI32s(out, snap.EdgeOff); err != nil {
		return err
	}
	if err := writeLabels(out, snap.EdgeLabels); err != nil {
		return err
	}
	if err := writeI32s(out, snap.EdgeCounts); err != nil {
		return err
	}
	var u64 [8]byte
	for _, d := range snap.Digests {
		binary.LittleEndian.PutUint64(u64[:], d)
		if _, err := out.Write(u64[:]); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	if hasPivots {
		rec.Reset()
		if err := WritePivotSnapshot(&rec, snap.Pivots, snap.Digests); err != nil {
			return err
		}
		if err := writeU32s(out, uint32(rec.Len())); err != nil {
			return err
		}
		if _, err := out.Write(rec.Bytes()); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	if err := writeU32s(bw, crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}

// WriteCorpusSnapshotFile atomically writes a corpus snapshot to path.
func WriteCorpusSnapshotFile(path string, names []string, ix *search.Index) error {
	return writeAtomic(path, func(w io.Writer) error { return WriteCorpusSnapshot(w, names, ix) })
}

// corpusSource feeds the snapshot decoder its payload bytes (everything
// before the CRC trailer, which the caller has already verified). The two
// implementations are the point of the abstraction: bufSource serves
// subslices of one contiguous read, fileSource issues one pread per section
// — the access pattern an mmap-backed loader would have. cmd/bench races
// them to answer whether mmap would pay off (see DESIGN.md).
type corpusSource interface {
	// next returns the next n payload bytes. The slice is only valid until
	// the following call.
	next(n int) ([]byte, error)
	// remaining reports how many payload bytes are left.
	remaining() int64
}

type bufSource struct {
	data []byte
	pos  int
}

func (s *bufSource) next(n int) ([]byte, error) {
	if n < 0 || int64(n) > s.remaining() {
		return nil, fmt.Errorf("hgio: corpus snapshot truncated (need %d bytes, %d left)", n, s.remaining())
	}
	b := s.data[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

func (s *bufSource) remaining() int64 { return int64(len(s.data) - s.pos) }

type fileSource struct {
	f        io.ReaderAt
	off, end int64
	buf      []byte
}

func (s *fileSource) next(n int) ([]byte, error) {
	if n < 0 || int64(n) > s.remaining() {
		return nil, fmt.Errorf("hgio: corpus snapshot truncated (need %d bytes, %d left)", n, s.remaining())
	}
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	b := s.buf[:n]
	if got, err := s.f.ReadAt(b, s.off); got < n {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	s.off += int64(n)
	return b, nil
}

func (s *fileSource) remaining() int64 { return s.end - s.off }

func srcU32(src corpusSource) (uint32, error) {
	b, err := src.next(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// srcI32s reads count little-endian int32s. The length check inside next
// bounds the allocation by the actual payload size, so a corrupt count
// cannot trigger a huge allocation.
func srcI32s(src corpusSource, count int) ([]int32, error) {
	b, err := src.next(4 * count)
	if err != nil {
		return nil, err
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

func srcLabels(src corpusSource, count int) ([]hypergraph.Label, error) {
	b, err := src.next(4 * count)
	if err != nil {
		return nil, err
	}
	out := make([]hypergraph.Label, count)
	for i := range out {
		out[i] = hypergraph.Label(int32(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return out, nil
}

// decodeCorpus parses the snapshot payload (CRC already verified and
// stripped) and restores the corpus and its index.
func decodeCorpus(src corpusSource) ([]string, *search.Index, error) {
	head, err := src.next(len(corpusSnapshotMagic))
	if err != nil {
		return nil, nil, err
	}
	if string(head) != corpusSnapshotMagic {
		return nil, nil, fmt.Errorf("hgio: not a corpus snapshot (bad magic %q)", head)
	}
	version, err := srcU32(src)
	if err != nil {
		return nil, nil, err
	}
	if version != corpusSnapshotVersion {
		return nil, nil, fmt.Errorf("hgio: unsupported corpus snapshot version %d (want %d)", version, corpusSnapshotVersion)
	}
	ug, err := srcU32(src)
	if err != nil {
		return nil, nil, err
	}
	if ug > MaxSnapshotGraphs {
		return nil, nil, fmt.Errorf("hgio: implausible corpus snapshot size %d (max %d)", ug, MaxSnapshotGraphs)
	}
	flags, err := srcU32(src)
	if err != nil {
		return nil, nil, err
	}
	if flags > 1 {
		return nil, nil, fmt.Errorf("hgio: unknown corpus snapshot flags %#x", flags)
	}
	g := int(ug)
	names := make([]string, g)
	for i := range names {
		nlen, err := srcU32(src)
		if err != nil {
			return nil, nil, err
		}
		if nlen > maxSnapshotNameLen {
			return nil, nil, fmt.Errorf("hgio: corpus entry %d name length %d (max %d)", i, nlen, maxSnapshotNameLen)
		}
		b, err := src.next(int(nlen))
		if err != nil {
			return nil, nil, err
		}
		names[i] = string(b)
	}
	graphs := make([]*hypergraph.Hypergraph, g)
	for i := range graphs {
		rlen, err := srcU32(src)
		if err != nil {
			return nil, nil, err
		}
		b, err := src.next(int(rlen))
		if err != nil {
			return nil, nil, err
		}
		if graphs[i], err = decodeBinary(b); err != nil {
			return nil, nil, fmt.Errorf("corpus snapshot graph %d: %w", i, err)
		}
	}
	snap := &search.Snapshot{}
	if snap.N, err = srcI32s(src, g); err != nil {
		return nil, nil, err
	}
	if snap.M, err = srcI32s(src, g); err != nil {
		return nil, nil, err
	}
	if snap.Incid, err = srcI32s(src, g); err != nil {
		return nil, nil, err
	}
	arena := func(off []int32) (int, error) {
		if last := off[g]; last < 0 {
			return 0, fmt.Errorf("hgio: corpus snapshot arena length %d is negative", last)
		}
		return int(off[g]), nil
	}
	if snap.CardOff, err = srcI32s(src, g+1); err != nil {
		return nil, nil, err
	}
	cards, err := arena(snap.CardOff)
	if err != nil {
		return nil, nil, err
	}
	if snap.Cards, err = srcI32s(src, cards); err != nil {
		return nil, nil, err
	}
	if snap.NodeOff, err = srcI32s(src, g+1); err != nil {
		return nil, nil, err
	}
	nlab, err := arena(snap.NodeOff)
	if err != nil {
		return nil, nil, err
	}
	if snap.NodeLabels, err = srcLabels(src, nlab); err != nil {
		return nil, nil, err
	}
	if snap.NodeCounts, err = srcI32s(src, nlab); err != nil {
		return nil, nil, err
	}
	if snap.EdgeOff, err = srcI32s(src, g+1); err != nil {
		return nil, nil, err
	}
	elab, err := arena(snap.EdgeOff)
	if err != nil {
		return nil, nil, err
	}
	if snap.EdgeLabels, err = srcLabels(src, elab); err != nil {
		return nil, nil, err
	}
	if snap.EdgeCounts, err = srcI32s(src, elab); err != nil {
		return nil, nil, err
	}
	b, err := src.next(8 * g)
	if err != nil {
		return nil, nil, err
	}
	snap.Digests = make([]uint64, g)
	for i := range snap.Digests {
		snap.Digests[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	if flags&1 != 0 {
		plen, err := srcU32(src)
		if err != nil {
			return nil, nil, err
		}
		b, err := src.next(int(plen))
		if err != nil {
			return nil, nil, err
		}
		pv, pdigests, err := ReadPivotSnapshot(bytes.NewReader(b))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus snapshot pivot section: %w", err)
		}
		if len(pdigests) != g {
			return nil, nil, fmt.Errorf("hgio: corpus snapshot pivot section covers %d graphs, corpus has %d", len(pdigests), g)
		}
		for i, d := range pdigests {
			if d != snap.Digests[i] {
				return nil, nil, fmt.Errorf("hgio: corpus snapshot pivot section bound to a different corpus (digest %d differs)", i)
			}
		}
		snap.Pivots = pv
	}
	if left := src.remaining(); left != 0 {
		return nil, nil, fmt.Errorf("hgio: %d trailing bytes after corpus snapshot", left)
	}
	ix, err := search.FromSnapshot(graphs, snap)
	if err != nil {
		return nil, nil, fmt.Errorf("hgio: corpus snapshot rejected: %w", err)
	}
	return names, ix, nil
}

// decodeCorpusSnapshot verifies the CRC trailer over a complete in-memory
// snapshot, then decodes the payload.
func decodeCorpusSnapshot(data []byte) ([]string, *search.Index, error) {
	if len(data) < len(corpusSnapshotMagic)+3*4+4 {
		return nil, nil, fmt.Errorf("hgio: corpus snapshot truncated (%d bytes)", len(data))
	}
	body := data[:len(data)-4]
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if sum := crc32.ChecksumIEEE(body); stored != sum {
		return nil, nil, fmt.Errorf("hgio: corpus snapshot checksum mismatch (stored %08x, computed %08x): corrupt or torn write", stored, sum)
	}
	return decodeCorpus(&bufSource{data: body})
}

// ReadCorpusSnapshot parses a snapshot written by WriteCorpusSnapshot. It
// returns the corpus entry names and a fully validated index over graphs
// constructed frozen-first, or an error — never a partial corpus.
func ReadCorpusSnapshot(r io.Reader) ([]string, *search.Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("hgio: %w", err)
	}
	return decodeCorpusSnapshot(data)
}

// ReadCorpusSnapshotFile reads a snapshot from path with a single
// contiguous read, returning the file size alongside the corpus for the
// server's cold-start metrics.
func ReadCorpusSnapshotFile(path string) ([]string, *search.Index, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("hgio: %w", err)
	}
	names, ix, err := decodeCorpusSnapshot(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w (file %s)", err, path)
	}
	return names, ix, int64(len(data)), nil
}

// ReadCorpusSnapshotFileWindowed reads a snapshot from path section by
// section through io.ReaderAt — the access pattern an mmap-backed loader
// would have — instead of one contiguous read. Integrity still comes first:
// a streaming CRC pass over the whole file precedes decoding, which is
// exactly why windowing cannot beat the one-read loader (every byte must be
// touched before construction regardless; see the measured comparison in
// DESIGN.md). It exists for cmd/bench and for callers that cannot afford a
// transient whole-file buffer.
func ReadCorpusSnapshotFileWindowed(path string) ([]string, *search.Index, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("hgio: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("hgio: %w", err)
	}
	size := fi.Size()
	if size < int64(len(corpusSnapshotMagic)+3*4+4) {
		return nil, nil, 0, fmt.Errorf("hgio: corpus snapshot truncated (%d bytes) (file %s)", size, path)
	}
	crc := crc32.NewIEEE()
	window := make([]byte, 1<<20)
	for off := int64(0); off < size-4; {
		n := int64(len(window))
		if size-4-off < n {
			n = size - 4 - off
		}
		if got, err := f.ReadAt(window[:n], off); int64(got) < n {
			return nil, nil, 0, fmt.Errorf("hgio: %w (file %s)", err, path)
		}
		crc.Write(window[:n])
		off += n
	}
	var trailer [4]byte
	if got, err := f.ReadAt(trailer[:], size-4); got < 4 {
		return nil, nil, 0, fmt.Errorf("hgio: %w (file %s)", err, path)
	}
	if stored, sum := binary.LittleEndian.Uint32(trailer[:]), crc.Sum32(); stored != sum {
		return nil, nil, 0, fmt.Errorf("hgio: corpus snapshot checksum mismatch (stored %08x, computed %08x): corrupt or torn write (file %s)", stored, sum, path)
	}
	names, ix, err := decodeCorpus(&fileSource{f: f, end: size - 4})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w (file %s)", err, path)
	}
	return names, ix, size, nil
}

func writeI32s(w io.Writer, vs []int32) error {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	return nil
}

func writeLabels(w io.Writer, vs []hypergraph.Label) error {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], uint32(int32(v)))
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	return nil
}
