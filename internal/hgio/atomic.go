package hgio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// writeAtomic writes a file atomically: write streams the payload into a
// temporary file in the target directory, which is fsynced, closed, and
// renamed over path — a crash mid-write never leaves a torn file at path.
// All three snapshot writers (.hgb graphs, HGEDPIVS pivot tables, .hgx
// corpus snapshots) go through here.
func writeAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("hgio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}
