package hgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks that arbitrary input never panics the parser and
// that anything it accepts is a valid hypergraph that round-trips.
func FuzzReadText(f *testing.F) {
	f.Add("nodes 3\nlabel 0 7\nedge 5 0 1 2\n")
	f.Add("nodes 0\n")
	f.Add("# comment only\nnodes 2\nedge 1\n")
	f.Add("nodes 2\nedge 1 0 0 1\n")
	f.Add("nodes -1\n")
	f.Add("edge 1 0\n")
	f.Add("nodes 9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", err, buf.String())
		}
		if g.String() != back.String() {
			t.Fatalf("round trip changed the graph:\n in: %v\nout: %v", g, back)
		}
	})
}

// FuzzReadJSON checks the JSON decoder the same way.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"nodeLabels":[1,2],"edges":[{"label":5,"nodes":[0,1]}]}`)
	f.Add(`{}`)
	f.Add(`{"nodeLabels":[],"edges":[{"label":1,"nodes":[0]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzReadBenson checks the Benson-format reader.
func FuzzReadBenson(f *testing.F) {
	f.Add("2 1", "1 2 3", "7 7 7")
	f.Add("", "", "")
	f.Add("3", "1 2", "")
	f.Fuzz(func(t *testing.T, nverts, simplices, labels string) {
		g, err := ReadBenson(strings.NewReader(nverts), strings.NewReader(simplices), strings.NewReader(labels))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v", verr)
		}
	})
}
