package hgio

import (
	"bytes"
	"strings"
	"testing"

	"hged/internal/hypergraph"
)

// FuzzReadText checks that arbitrary input never panics the parser and
// that anything it accepts is a valid hypergraph that round-trips.
func FuzzReadText(f *testing.F) {
	f.Add("nodes 3\nlabel 0 7\nedge 5 0 1 2\n")
	f.Add("nodes 0\n")
	f.Add("# comment only\nnodes 2\nedge 1\n")
	f.Add("nodes 2\nedge 1 0 0 1\n")
	f.Add("nodes -1\n")
	f.Add("edge 1 0\n")
	f.Add("nodes 9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", err, buf.String())
		}
		if g.String() != back.String() {
			t.Fatalf("round trip changed the graph:\n in: %v\nout: %v", g, back)
		}
	})
}

// FuzzReadJSON checks the JSON decoder the same way, and that anything it
// accepts survives a write→read round trip unchanged.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"nodeLabels":[1,2],"edges":[{"label":5,"nodes":[0,1]}]}`)
	f.Add(`{}`)
	f.Add(`{"nodeLabels":[],"edges":[{"label":1,"nodes":[0]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", err, buf.String())
		}
		if g.String() != back.String() {
			t.Fatalf("round trip changed the graph:\n in: %v\nout: %v", g, back)
		}
	})
}

// graphFromBytes deterministically decodes an arbitrary byte string into a
// small valid hypergraph, so the round-trip fuzzers below can explore the
// writer→reader paths from random structures rather than random text. The
// server accepts untrusted uploads through these codecs, so write-side
// fidelity matters as much as parse-side robustness.
func graphFromBytes(data []byte) *hypergraph.Hypergraph {
	if len(data) == 0 {
		return hypergraph.New(0)
	}
	n := int(data[0]) % 13
	g := hypergraph.New(n)
	i := 1
	for v := 0; v < n && i < len(data); v++ {
		g.SetNodeLabel(hypergraph.NodeID(v), hypergraph.Label(data[i]%7))
		i++
	}
	for i < len(data) && g.NumEdges() < 24 && n > 0 {
		label := hypergraph.Label(data[i] % 5)
		i++
		size := 0
		if i < len(data) {
			size = int(data[i]) % 6
			i++
		}
		nodes := make([]hypergraph.NodeID, 0, size)
		for k := 0; k < size && i < len(data); k++ {
			nodes = append(nodes, hypergraph.NodeID(int(data[i])%n))
			i++
		}
		g.AddEdge(label, nodes...)
	}
	return g
}

// FuzzTextRoundTrip checks WriteText→ReadText fidelity on arbitrary
// generated hypergraphs: every graph the writer emits must be parsed back
// identically.
func FuzzTextRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 3, 4, 2, 0, 1})
	f.Add([]byte{12, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 5, 1, 2, 3, 4, 11})
	f.Add([]byte{1, 6, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadText rejected its own writer's output: %v\n%q", err, buf.String())
		}
		if g.String() != back.String() {
			t.Fatalf("text round trip changed the graph:\n in: %v\nout: %v\nwire: %q", g, back, buf.String())
		}
	})
}

// FuzzJSONRoundTrip checks WriteJSON→ReadJSON fidelity the same way.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 3, 4, 2, 0, 1})
	f.Add([]byte{7, 1, 1, 1, 1, 1, 1, 1, 2, 4, 6, 5, 4, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadJSON rejected its own writer's output: %v\n%q", err, buf.String())
		}
		if g.String() != back.String() {
			t.Fatalf("JSON round trip changed the graph:\n in: %v\nout: %v\nwire: %q", g, back, buf.String())
		}
	})
}

// FuzzReadBenson checks the Benson-format reader.
func FuzzReadBenson(f *testing.F) {
	f.Add("2 1", "1 2 3", "7 7 7")
	f.Add("", "", "")
	f.Add("3", "1 2", "")
	f.Fuzz(func(t *testing.T, nverts, simplices, labels string) {
		g, err := ReadBenson(strings.NewReader(nverts), strings.NewReader(simplices), strings.NewReader(labels))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted an invalid hypergraph: %v", verr)
		}
	})
}
