// Package hgio reads and writes hypergraphs: a plain-text format (.hg), a
// JSON encoding, and a reader for the Cornell/Benson simplex format that the
// paper's datasets (https://www.cs.cornell.edu/~arb/data/) are published in.
package hgio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hged/internal/hypergraph"
)

// ReadFile reads a hypergraph from path. The codec is picked by sniffing
// the leading bytes — the "HGEDGRF1" magic selects the binary CSR encoding
// no matter what the file is called, and for unknown extensions a leading
// '{' selects JSON with everything else parsed as the text format — with
// the extension (".hg" text, ".json", ".hgb" binary) as a fast path, so
// renamed or extension-less corpus files still load.
func ReadFile(path string) (*hypergraph.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if head, _ := br.Peek(len(binaryGraphMagic)); string(head) == binaryGraphMagic {
		return ReadBinary(br)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".hg":
		return ReadText(br)
	case ".json":
		return ReadJSON(br)
	case ".hgb":
		// Extension says binary but the magic didn't match; let ReadBinary
		// report the precise header error.
		return ReadBinary(br)
	}
	// Unknown extension: sniff the first non-whitespace byte — '{' starts
	// the JSON encoding, anything else is handed to the text parser (which
	// reports a line-anchored error for non-graph content).
	head, _ := br.Peek(512)
	for _, c := range head {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return ReadJSON(br)
		}
		break
	}
	return ReadText(br)
}

// WriteText writes g in the .hg format:
//
//	# optional comments
//	nodes <n>
//	label <node> <label>        (omitted for label 0)
//	edge <label> <v1> <v2> ...
func WriteText(w io.Writer, g *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if l := g.NodeLabel(hypergraph.NodeID(v)); l != hypergraph.NoLabel {
			fmt.Fprintf(bw, "label %d %d\n", v, l)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d", e.Label)
		for _, v := range e.Nodes {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// MaxNodes bounds the node count a reader will allocate for, protecting
// against hostile or corrupt headers (a bare "nodes 10000000000000" would
// otherwise attempt a terabyte allocation).
const MaxNodes = 1 << 24

// ReadText parses the .hg format written by WriteText. Blank lines and
// lines starting with '#' are ignored.
func ReadText(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *hypergraph.Hypergraph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "nodes":
			if g != nil {
				return nil, fmt.Errorf("hgio: line %d: duplicate nodes directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("hgio: line %d: nodes takes one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > MaxNodes {
				return nil, fmt.Errorf("hgio: line %d: bad node count %q (max %d)", lineNo, fields[1], MaxNodes)
			}
			g = hypergraph.New(n)
		case "label":
			if g == nil {
				return nil, fmt.Errorf("hgio: line %d: label before nodes", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("hgio: line %d: label takes two arguments", lineNo)
			}
			v, err1 := strconv.Atoi(fields[1])
			l, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("hgio: line %d: bad label directive %q", lineNo, line)
			}
			g.SetNodeLabel(hypergraph.NodeID(v), hypergraph.Label(l))
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("hgio: line %d: edge before nodes", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("hgio: line %d: edge needs a label", lineNo)
			}
			l, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("hgio: line %d: bad edge label %q", lineNo, fields[1])
			}
			nodes := make([]hypergraph.NodeID, 0, len(fields)-2)
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 || v >= g.NumNodes() {
					return nil, fmt.Errorf("hgio: line %d: bad edge member %q", lineNo, f)
				}
				nodes = append(nodes, hypergraph.NodeID(v))
			}
			g.AddEdge(hypergraph.Label(l), nodes...)
		default:
			return nil, fmt.Errorf("hgio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("hgio: missing nodes directive")
	}
	return g, nil
}

// jsonGraph is the JSON wire form.
type jsonGraph struct {
	NodeLabels []hypergraph.Label `json:"nodeLabels"`
	Edges      []jsonEdge         `json:"edges"`
}

type jsonEdge struct {
	Label hypergraph.Label    `json:"label"`
	Nodes []hypergraph.NodeID `json:"nodes"`
}

// WriteJSON writes g as JSON.
func WriteJSON(w io.Writer, g *hypergraph.Hypergraph) error {
	jg := jsonGraph{NodeLabels: make([]hypergraph.Label, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		jg.NodeLabels[v] = g.NodeLabel(hypergraph.NodeID(v))
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{Label: e.Label, Nodes: e.Nodes})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// ReadJSON parses the JSON produced by WriteJSON.
func ReadJSON(r io.Reader) (*hypergraph.Hypergraph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	g := hypergraph.NewLabeled(jg.NodeLabels)
	for i, e := range jg.Edges {
		for _, v := range e.Nodes {
			if int(v) < 0 || int(v) >= g.NumNodes() {
				return nil, fmt.Errorf("hgio: edge %d member %d out of range", i, v)
			}
		}
		g.AddEdge(e.Label, e.Nodes...)
	}
	return g, nil
}

// ReadBenson parses the Cornell simplex format: nverts holds one integer per
// simplex (its cardinality), simplices holds the concatenated 1-indexed
// member lists, and labels (optional, may be nil) holds one integer label
// per node. Hyperedges receive label 0.
func ReadBenson(nverts, simplices, labels io.Reader) (*hypergraph.Hypergraph, error) {
	sizes, err := readInts(nverts)
	if err != nil {
		return nil, fmt.Errorf("hgio: nverts: %w", err)
	}
	members, err := readInts(simplices)
	if err != nil {
		return nil, fmt.Errorf("hgio: simplices: %w", err)
	}
	total := 0
	maxNode := 0
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("hgio: negative simplex size %d", s)
		}
		total += s
	}
	if total != len(members) {
		return nil, fmt.Errorf("hgio: nverts sums to %d but simplices has %d entries", total, len(members))
	}
	for _, v := range members {
		if v < 1 {
			return nil, fmt.Errorf("hgio: simplex member %d is not 1-indexed", v)
		}
		if v > MaxNodes {
			return nil, fmt.Errorf("hgio: simplex member %d exceeds the node limit %d", v, MaxNodes)
		}
		if v > maxNode {
			maxNode = v
		}
	}
	var nodeLabels []int
	if labels != nil {
		nodeLabels, err = readInts(labels)
		if err != nil {
			return nil, fmt.Errorf("hgio: labels: %w", err)
		}
		if len(nodeLabels) > maxNode {
			maxNode = len(nodeLabels)
		}
	}
	g := hypergraph.New(maxNode)
	for i, l := range nodeLabels {
		g.SetNodeLabel(hypergraph.NodeID(i), hypergraph.Label(l))
	}
	pos := 0
	for _, s := range sizes {
		nodes := make([]hypergraph.NodeID, s)
		for i := 0; i < s; i++ {
			nodes[i] = hypergraph.NodeID(members[pos] - 1)
			pos++
		}
		g.AddEdge(hypergraph.NoLabel, nodes...)
	}
	return g, nil
}

func readInts(r io.Reader) ([]int, error) {
	if r == nil {
		return nil, nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sc.Split(bufio.ScanWords)
	var out []int
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", sc.Text())
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
