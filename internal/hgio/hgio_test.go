package hgio

import (
	"bytes"
	"strings"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
)

func TestTextRoundTrip(t *testing.T) {
	g := hypergraph.Fig1()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !hypergraph.Isomorphic(g, back) {
		t.Fatal("text round trip lost structure")
	}
	if back.NodeLabel(hypergraph.U(4)) != hypergraph.LabelCircle {
		t.Fatal("node labels lost")
	}
	if back.EdgeLabel(0) != hypergraph.LabelOrange {
		t.Fatal("edge labels lost")
	}
}

func TestTextRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.Uniform(40, 60, 5, 4, 3, seed)
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.String() != back.String() {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestReadTextCommentsAndBlankLines(t *testing.T) {
	in := `# a hypergraph
nodes 3

label 0 7
# an edge
edge 5 0 1 2
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 || g.NodeLabel(0) != 7 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"missing nodes":      "edge 1 0 1\n",
		"label before nodes": "label 0 1\nnodes 2\n",
		"duplicate nodes":    "nodes 2\nnodes 3\n",
		"bad node count":     "nodes x\n",
		"negative nodes":     "nodes -1\n",
		"label arity":        "nodes 2\nlabel 0\n",
		"label range":        "nodes 2\nlabel 9 1\n",
		"edge no label":      "nodes 2\nedge\n",
		"edge bad label":     "nodes 2\nedge x 0\n",
		"edge bad member":    "nodes 2\nedge 1 9\n",
		"unknown directive":  "nodes 2\nfoo\n",
		"empty input":        "",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := hypergraph.Fig1()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != back.String() {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodeLabels":[1],"edges":[{"label":1,"nodes":[5]}]}`)); err == nil {
		t.Fatal("out-of-range member must fail")
	}
}

func TestReadBenson(t *testing.T) {
	nverts := strings.NewReader("3\n2\n")
	simplices := strings.NewReader("1 2 3\n2 4\n")
	labels := strings.NewReader("10\n10\n20\n20\n")
	g, err := ReadBenson(nverts, simplices, labels)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	// 1-indexed input: simplex {1,2,3} → nodes {0,1,2}.
	e := g.Edge(0)
	if e.Arity() != 3 || !e.Contains(0) || !e.Contains(2) {
		t.Fatalf("edge 0 = %v", e)
	}
	if g.NodeLabel(0) != 10 || g.NodeLabel(3) != 20 {
		t.Fatal("labels not applied")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBensonWithoutLabels(t *testing.T) {
	g, err := ReadBenson(strings.NewReader("2"), strings.NewReader("1 5"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("n=%d, want 5 (max id)", g.NumNodes())
	}
}

func TestReadBensonErrors(t *testing.T) {
	if _, err := ReadBenson(strings.NewReader("3"), strings.NewReader("1 2"), nil); err == nil {
		t.Fatal("count mismatch must fail")
	}
	if _, err := ReadBenson(strings.NewReader("1"), strings.NewReader("0"), nil); err == nil {
		t.Fatal("0-indexed member must fail")
	}
	if _, err := ReadBenson(strings.NewReader("-1"), strings.NewReader(""), nil); err == nil {
		t.Fatal("negative size must fail")
	}
	if _, err := ReadBenson(strings.NewReader("x"), strings.NewReader(""), nil); err == nil {
		t.Fatal("non-integer must fail")
	}
}
