package hgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"hged/internal/hypergraph"
)

// Binary hypergraph layout (.hgb, all integers little-endian). The payload
// is the graph's frozen CSR view: the interned label dictionary is written
// once and every entity carries a dense dictionary id, so label-heavy
// graphs cost 4 bytes per entity regardless of label values, and a reader
// rebuilds without re-deriving the dictionary.
//
//	offset  size    field
//	0       8       magic "HGEDGRF1"
//	8       4       format version (uint32, currently 1)
//	12      4       n — node count (uint32)
//	16      4       m — hyperedge count (uint32)
//	20      4       L — label dictionary size (uint32)
//	24      4       incid — Σ|E|, total membership count (uint32)
//	28      4L      label dictionary (L × int32, dense id order)
//	...     4n      node label ids (n × uint32, each < L)
//	...     4m      hyperedge label ids (m × uint32, each < L)
//	...     4(m+1)  hyperedge member offsets (uint32, non-decreasing,
//	                first 0, last incid)
//	...     4·incid concatenated member node ids (uint32, each < n,
//	                strictly ascending within an edge)
//	...     4       CRC-32 (IEEE) of everything above (uint32)
//
// The trailing checksum makes torn writes and bit rot loud: ReadBinary
// either returns a fully validated hypergraph or an error, never a
// partial graph.
const (
	binaryGraphMagic   = "HGEDGRF1"
	binaryGraphVersion = uint32(1)
)

// WriteBinary serializes g in the .hgb binary format from its frozen CSR
// view.
func WriteBinary(w io.Writer, g *hypergraph.Hypergraph) error {
	c := g.Freeze()
	n, m, incid := c.NumNodes(), c.NumEdges(), c.Incidences()
	if n > MaxNodes || m > MaxNodes {
		return fmt.Errorf("hgio: graph too large to serialize (n=%d m=%d, max %d)", n, m, MaxNodes)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(out, binaryGraphMagic); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	if err := writeU32s(out, binaryGraphVersion, uint32(n), uint32(m), uint32(c.NumLabels()), uint32(incid)); err != nil {
		return err
	}
	for _, l := range c.Labels() {
		if err := writeU32s(out, uint32(int32(l))); err != nil {
			return err
		}
	}
	for _, id := range c.NodeLabelIDs() {
		if err := writeU32s(out, uint32(id)); err != nil {
			return err
		}
	}
	for _, id := range c.EdgeLabelIDs() {
		if err := writeU32s(out, uint32(id)); err != nil {
			return err
		}
	}
	off := uint32(0)
	if err := writeU32s(out, off); err != nil {
		return err
	}
	for e := 0; e < m; e++ {
		off += uint32(c.Arity(hypergraph.EdgeID(e)))
		if err := writeU32s(out, off); err != nil {
			return err
		}
	}
	for e := 0; e < m; e++ {
		for _, v := range c.Members(hypergraph.EdgeID(e)) {
			if err := writeU32s(out, uint32(v)); err != nil {
				return err
			}
		}
	}
	if err := writeU32s(bw, crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}

// binaryGraphHeaderLen is the fixed prefix of a .hgb record: the magic plus
// five uint32 fields (version, n, m, L, incid).
const binaryGraphHeaderLen = len(binaryGraphMagic) + 5*4

// binaryGraphBodyLen returns the byte count following the header for the
// given section sizes, including the CRC trailer.
func binaryGraphBodyLen(n, m, nlab, incid int) int {
	return 4 * (nlab + n + m + (m + 1) + incid + 1)
}

// validateBinaryHeader checks the magic, version, and plausibility bounds of
// a .hgb header and returns the decoded counts.
func validateBinaryHeader(header []byte) (n, m, nlab, incid int, err error) {
	if string(header[:len(binaryGraphMagic)]) != binaryGraphMagic {
		return 0, 0, 0, 0, fmt.Errorf("hgio: not a binary hypergraph (bad magic %q)", header[:len(binaryGraphMagic)])
	}
	p := len(binaryGraphMagic)
	version := binary.LittleEndian.Uint32(header[p:])
	un := binary.LittleEndian.Uint32(header[p+4:])
	um := binary.LittleEndian.Uint32(header[p+8:])
	ul := binary.LittleEndian.Uint32(header[p+12:])
	uincid := binary.LittleEndian.Uint32(header[p+16:])
	if version != binaryGraphVersion {
		return 0, 0, 0, 0, fmt.Errorf("hgio: unsupported binary graph version %d (want %d)", version, binaryGraphVersion)
	}
	if un > MaxNodes || um > MaxNodes || uincid > MaxNodes*8 {
		return 0, 0, 0, 0, fmt.Errorf("hgio: implausible binary graph counts n=%d m=%d incid=%d (max %d nodes)", un, um, uincid, MaxNodes)
	}
	if ul > un+um {
		return 0, 0, 0, 0, fmt.Errorf("hgio: label dictionary size %d exceeds entity count %d", ul, un+um)
	}
	return int(un), int(um), int(ul), int(uincid), nil
}

// decodeBinary decodes one complete .hgb record (magic through CRC trailer,
// no surrounding bytes) and constructs the hypergraph frozen-first via
// hypergraph.FromFrozen — the flat arrays are handed to the CSR view
// directly, never replayed through the mutable representation. The corpus
// snapshot reader calls it on length-delimited windows of a larger file, so
// it must never read past len(data).
func decodeBinary(data []byte) (*hypergraph.Hypergraph, error) {
	if len(data) < binaryGraphHeaderLen {
		return nil, fmt.Errorf("hgio: binary graph header: truncated input (%d bytes)", len(data))
	}
	n, m, nlab, incid, err := validateBinaryHeader(data)
	if err != nil {
		return nil, err
	}
	want := binaryGraphHeaderLen + binaryGraphBodyLen(n, m, nlab, incid)
	if len(data) < want {
		return nil, fmt.Errorf("hgio: binary graph truncated (%d bytes, want %d)", len(data), want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("hgio: trailing data after binary graph")
	}
	stored := binary.LittleEndian.Uint32(data[want-4:])
	if sum := crc32.ChecksumIEEE(data[:want-4]); stored != sum {
		return nil, fmt.Errorf("hgio: binary graph checksum mismatch (stored %08x, computed %08x): corrupt or torn write", stored, sum)
	}
	p := binaryGraphHeaderLen
	dict := make([]hypergraph.Label, nlab)
	for i := range dict {
		dict[i] = hypergraph.Label(int32(binary.LittleEndian.Uint32(data[p:])))
		p += 4
	}
	nodeLab := make([]int32, n)
	for i := range nodeLab {
		nodeLab[i] = int32(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	edgeLab := make([]int32, m)
	for i := range edgeLab {
		edgeLab[i] = int32(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	edgeOff := make([]int32, m+1)
	for i := range edgeOff {
		edgeOff[i] = int32(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	members := make([]hypergraph.NodeID, incid)
	for i := range members {
		members[i] = hypergraph.NodeID(binary.LittleEndian.Uint32(data[p:]))
		p += 4
	}
	g, err := hypergraph.FromFrozen(dict, nodeLab, edgeLab, edgeOff, members)
	if err != nil {
		return nil, fmt.Errorf("hgio: invalid binary graph: %w", err)
	}
	return g, nil
}

// ReadBinary parses the .hgb format written by WriteBinary: one header read,
// one body read, then decodeBinary validates everything (checksum included)
// before any hypergraph is constructed. The result is built frozen-first —
// its CSR view is assembled straight from the decoded arrays, so loading
// performs no map round-trip and no re-freeze.
func ReadBinary(r io.Reader) (*hypergraph.Hypergraph, error) {
	header := make([]byte, binaryGraphHeaderLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("hgio: binary graph header: %w", err)
	}
	n, m, nlab, incid, err := validateBinaryHeader(header)
	if err != nil {
		return nil, err
	}
	data := make([]byte, binaryGraphHeaderLen+binaryGraphBodyLen(n, m, nlab, incid))
	copy(data, header)
	if _, err := io.ReadFull(r, data[binaryGraphHeaderLen:]); err != nil {
		return nil, fmt.Errorf("hgio: binary graph truncated: %w", err)
	}
	if extra, _ := io.CopyN(io.Discard, r, 1); extra != 0 {
		return nil, fmt.Errorf("hgio: trailing data after binary graph")
	}
	return decodeBinary(data)
}

// WriteBinaryFile atomically writes g to path in the .hgb format (temp
// file, fsync, rename — a crash mid-write never leaves a torn file).
func WriteBinaryFile(path string, g *hypergraph.Hypergraph) error {
	return writeAtomic(path, func(w io.Writer) error { return WriteBinary(w, g) })
}
