package hgio

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hged/internal/hypergraph"
)

// Binary hypergraph layout (.hgb, all integers little-endian). The payload
// is the graph's frozen CSR view: the interned label dictionary is written
// once and every entity carries a dense dictionary id, so label-heavy
// graphs cost 4 bytes per entity regardless of label values, and a reader
// rebuilds without re-deriving the dictionary.
//
//	offset  size    field
//	0       8       magic "HGEDGRF1"
//	8       4       format version (uint32, currently 1)
//	12      4       n — node count (uint32)
//	16      4       m — hyperedge count (uint32)
//	20      4       L — label dictionary size (uint32)
//	24      4       incid — Σ|E|, total membership count (uint32)
//	28      4L      label dictionary (L × int32, dense id order)
//	...     4n      node label ids (n × uint32, each < L)
//	...     4m      hyperedge label ids (m × uint32, each < L)
//	...     4(m+1)  hyperedge member offsets (uint32, non-decreasing,
//	                first 0, last incid)
//	...     4·incid concatenated member node ids (uint32, each < n,
//	                strictly ascending within an edge)
//	...     4       CRC-32 (IEEE) of everything above (uint32)
//
// The trailing checksum makes torn writes and bit rot loud: ReadBinary
// either returns a fully validated hypergraph or an error, never a
// partial graph.
const (
	binaryGraphMagic   = "HGEDGRF1"
	binaryGraphVersion = uint32(1)
)

// WriteBinary serializes g in the .hgb binary format from its frozen CSR
// view.
func WriteBinary(w io.Writer, g *hypergraph.Hypergraph) error {
	c := g.Freeze()
	n, m, incid := c.NumNodes(), c.NumEdges(), c.Incidences()
	if n > MaxNodes || m > MaxNodes {
		return fmt.Errorf("hgio: graph too large to serialize (n=%d m=%d, max %d)", n, m, MaxNodes)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(out, binaryGraphMagic); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	if err := writeU32s(out, binaryGraphVersion, uint32(n), uint32(m), uint32(c.NumLabels()), uint32(incid)); err != nil {
		return err
	}
	for _, l := range c.Labels() {
		if err := writeU32s(out, uint32(int32(l))); err != nil {
			return err
		}
	}
	for _, id := range c.NodeLabelIDs() {
		if err := writeU32s(out, uint32(id)); err != nil {
			return err
		}
	}
	for _, id := range c.EdgeLabelIDs() {
		if err := writeU32s(out, uint32(id)); err != nil {
			return err
		}
	}
	off := uint32(0)
	if err := writeU32s(out, off); err != nil {
		return err
	}
	for e := 0; e < m; e++ {
		off += uint32(c.Arity(hypergraph.EdgeID(e)))
		if err := writeU32s(out, off); err != nil {
			return err
		}
	}
	for e := 0; e < m; e++ {
		for _, v := range c.Members(hypergraph.EdgeID(e)) {
			if err := writeU32s(out, uint32(v)); err != nil {
				return err
			}
		}
	}
	if err := writeU32s(bw, crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}

// ReadBinary parses the .hgb format written by WriteBinary. Every header
// count, label id, offset, and member id is validated — and the checksum
// verified — before any hypergraph is constructed.
func ReadBinary(r io.Reader) (*hypergraph.Hypergraph, error) {
	crc := crc32.NewIEEE()
	cr := &checksumReader{r: bufio.NewReader(r), h: crc}
	magic := make([]byte, len(binaryGraphMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("hgio: binary graph header: %w", err)
	}
	if string(magic) != binaryGraphMagic {
		return nil, fmt.Errorf("hgio: not a binary hypergraph (bad magic %q)", magic)
	}
	var version, un, um, ul, uincid uint32
	if err := readU32s(cr, &version, &un, &um, &ul, &uincid); err != nil {
		return nil, err
	}
	if version != binaryGraphVersion {
		return nil, fmt.Errorf("hgio: unsupported binary graph version %d (want %d)", version, binaryGraphVersion)
	}
	if un > MaxNodes || um > MaxNodes || uincid > MaxNodes*8 {
		return nil, fmt.Errorf("hgio: implausible binary graph counts n=%d m=%d incid=%d (max %d nodes)", un, um, uincid, MaxNodes)
	}
	if ul > un+um {
		return nil, fmt.Errorf("hgio: label dictionary size %d exceeds entity count %d", ul, un+um)
	}
	n, m, nlab, incid := int(un), int(um), int(ul), int(uincid)
	dict := make([]hypergraph.Label, nlab)
	for i := range dict {
		var v uint32
		if err := readU32s(cr, &v); err != nil {
			return nil, err
		}
		dict[i] = hypergraph.Label(int32(v))
	}
	readIDs := func(count int, kind string) ([]uint32, error) {
		ids := make([]uint32, count)
		for i := range ids {
			if err := readU32s(cr, &ids[i]); err != nil {
				return nil, err
			}
			if int(ids[i]) >= nlab {
				return nil, fmt.Errorf("hgio: %s %d has label id %d, dictionary has %d entries", kind, i, ids[i], nlab)
			}
		}
		return ids, nil
	}
	nodeLab, err := readIDs(n, "node")
	if err != nil {
		return nil, err
	}
	edgeLab, err := readIDs(m, "hyperedge")
	if err != nil {
		return nil, err
	}
	offs := make([]uint32, m+1)
	for i := range offs {
		if err := readU32s(cr, &offs[i]); err != nil {
			return nil, err
		}
	}
	if offs[0] != 0 || offs[m] != uint32(incid) {
		return nil, fmt.Errorf("hgio: hyperedge offsets span [%d,%d], want [0,%d]", offs[0], offs[m], incid)
	}
	members := make([]uint32, incid)
	for e := 0; e < m; e++ {
		if offs[e+1] < offs[e] {
			return nil, fmt.Errorf("hgio: hyperedge %d has negative extent (%d..%d)", e, offs[e], offs[e+1])
		}
		for i := offs[e]; i < offs[e+1]; i++ {
			if err := readU32s(cr, &members[i]); err != nil {
				return nil, err
			}
			if int(members[i]) >= n {
				return nil, fmt.Errorf("hgio: hyperedge %d member %d out of range [0,%d)", e, members[i], n)
			}
			if i > offs[e] && members[i] <= members[i-1] {
				return nil, fmt.Errorf("hgio: hyperedge %d members not strictly ascending", e)
			}
		}
	}
	sum := crc.Sum32() // the trailer itself is not part of the checksum
	var stored uint32
	if err := readU32s(cr, &stored); err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("hgio: binary graph checksum mismatch (stored %08x, computed %08x): corrupt or torn write", stored, sum)
	}
	if extra, _ := io.CopyN(io.Discard, cr, 1); extra != 0 {
		return nil, fmt.Errorf("hgio: trailing data after binary graph")
	}
	labels := make([]hypergraph.Label, n)
	for v := range labels {
		labels[v] = dict[nodeLab[v]]
	}
	g := hypergraph.NewLabeled(labels)
	nodes := make([]hypergraph.NodeID, 0, 16)
	for e := 0; e < m; e++ {
		nodes = nodes[:0]
		for i := offs[e]; i < offs[e+1]; i++ {
			nodes = append(nodes, hypergraph.NodeID(members[i]))
		}
		g.AddEdge(dict[edgeLab[e]], nodes...)
	}
	return g, nil
}

// WriteBinaryFile atomically writes g to path in the .hgb format (temp
// file, fsync, rename — a crash mid-write never leaves a torn file).
func WriteBinaryFile(path string, g *hypergraph.Hypergraph) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteBinary(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("hgio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}
