package hgio

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
	"hged/internal/search"
)

// snapshotCorpus builds a small deterministic corpus and its search index,
// optionally with pivots attached.
func snapshotCorpus(t testing.TB, size, pivots int, seed int64) ([]string, *search.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*hypergraph.Hypergraph, size)
	names := make([]string, size)
	for i := range graphs {
		graphs[i] = gen.Uniform(3+rng.Intn(5), rng.Intn(5), 3, 3, 2, rng.Int63()+1)
		names[i] = fmt.Sprintf("corpus/g%03d.hg", i)
	}
	ix := search.Build(graphs)
	if pivots > 0 {
		if _, err := ix.BuildPivots(context.Background(), pivots); err != nil {
			t.Fatal(err)
		}
	}
	return names, ix
}

// TestCorpusSnapshotRoundTrip writes a corpus snapshot and restores it, with
// and without a pivot section, checking that names, digests, and query
// results come back identical — and that the restore performs zero CSR
// freeze rebuilds, the property the whole format exists for.
func TestCorpusSnapshotRoundTrip(t *testing.T) {
	for _, pivots := range []int{0, 3} {
		names, ix := snapshotCorpus(t, 24, pivots, 41)
		var buf bytes.Buffer
		if err := WriteCorpusSnapshot(&buf, names, ix); err != nil {
			t.Fatalf("pivots=%d: write: %v", pivots, err)
		}

		before := hypergraph.FreezeBuilds()
		gotNames, re, err := ReadCorpusSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("pivots=%d: read: %v", pivots, err)
		}
		if rebuilds := hypergraph.FreezeBuilds() - before; rebuilds != 0 {
			t.Errorf("pivots=%d: restoring the snapshot performed %d freeze rebuilds, want 0", pivots, rebuilds)
		}
		if fmt.Sprint(gotNames) != fmt.Sprint(names) {
			t.Fatalf("pivots=%d: names diverged:\n in: %v\nout: %v", pivots, names, gotNames)
		}
		if (re.Pivots() == nil) != (pivots == 0) {
			t.Fatalf("pivots=%d: restored pivot table presence wrong", pivots)
		}
		if fmt.Sprint(re.SignatureDigests()) != fmt.Sprint(ix.SignatureDigests()) {
			t.Fatalf("pivots=%d: digests diverged", pivots)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 4; trial++ {
			q := gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
			tau := rng.Intn(6)
			m1, s1, err1 := ix.Search(q, tau)
			m2, s2, err2 := re.Search(q, tau)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if fmt.Sprint(m1) != fmt.Sprint(m2) || s1 != s2 {
				t.Fatalf("pivots=%d trial %d: results diverged\n%v %+v\n%v %+v", pivots, trial, m1, s1, m2, s2)
			}
		}
	}
}

// TestCorpusSnapshotFileLoaders checks that the one-read and windowed file
// loaders agree with each other and with the stream reader, and that both
// report the on-disk byte count.
func TestCorpusSnapshotFileLoaders(t *testing.T) {
	names, ix := snapshotCorpus(t, 16, 2, 99)
	path := filepath.Join(t.TempDir(), "corpus.hgx")
	if err := WriteCorpusSnapshotFile(path, names, ix); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	n1, ix1, b1, err := ReadCorpusSnapshotFile(path)
	if err != nil {
		t.Fatalf("one-read loader: %v", err)
	}
	n2, ix2, b2, err := ReadCorpusSnapshotFileWindowed(path)
	if err != nil {
		t.Fatalf("windowed loader: %v", err)
	}
	if b1 != fi.Size() || b2 != fi.Size() {
		t.Errorf("loaders report %d/%d bytes, file is %d", b1, b2, fi.Size())
	}
	if fmt.Sprint(n1) != fmt.Sprint(names) || fmt.Sprint(n2) != fmt.Sprint(names) {
		t.Errorf("loaders returned wrong names: %v / %v", n1, n2)
	}
	if fmt.Sprint(ix1.SignatureDigests()) != fmt.Sprint(ix.SignatureDigests()) ||
		fmt.Sprint(ix2.SignatureDigests()) != fmt.Sprint(ix.SignatureDigests()) {
		t.Error("loaders returned diverging digests")
	}
	q := gen.Uniform(5, 3, 3, 3, 2, 12345)
	m1, s1, err1 := ix1.Search(q, 4)
	m2, s2, err2 := ix2.Search(q, 4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fmt.Sprint(m1) != fmt.Sprint(m2) || s1 != s2 {
		t.Fatalf("one-read and windowed loaders disagree:\n%v %+v\n%v %+v", m1, s1, m2, s2)
	}
}

// TestCorpusSnapshotRejects checks that corruption, truncation, and trailing
// garbage are all refused before any index is installed.
func TestCorpusSnapshotRejects(t *testing.T) {
	names, ix := snapshotCorpus(t, 8, 2, 5)
	var buf bytes.Buffer
	if err := WriteCorpusSnapshot(&buf, names, ix); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Truncation at a spread of prefix lengths.
	for _, cut := range []int{0, 4, 11, 19, len(wire) / 3, len(wire) / 2, len(wire) - 5, len(wire) - 1} {
		if _, _, err := ReadCorpusSnapshot(bytes.NewReader(wire[:cut])); err == nil {
			t.Errorf("accepted snapshot truncated to %d/%d bytes", cut, len(wire))
		}
	}
	// Trailing garbage.
	if _, _, err := ReadCorpusSnapshot(bytes.NewReader(append(append([]byte(nil), wire...), 0))); err == nil {
		t.Error("accepted snapshot with a trailing byte")
	}
	// Single bit flips at a spread of offsets (CRC catches the payload,
	// header validation catches the rest).
	for _, pos := range []int{0, 9, 13, 17, len(wire) / 4, len(wire) / 2, 3 * len(wire) / 4, len(wire) - 2} {
		bad := append([]byte(nil), wire...)
		bad[pos] ^= 0x10
		if _, _, err := ReadCorpusSnapshot(bytes.NewReader(bad)); err == nil {
			t.Errorf("accepted snapshot with a bit flip at offset %d", pos)
		}
	}
	// Windowed loader rejects the same corruption.
	dir := t.TempDir()
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 1
	path := filepath.Join(dir, "bad.hgx")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadCorpusSnapshotFileWindowed(path); err == nil {
		t.Error("windowed loader accepted a corrupt snapshot")
	}

	// Name-count mismatch on the write side.
	if err := WriteCorpusSnapshot(&bytes.Buffer{}, names[:len(names)-1], ix); err == nil {
		t.Error("writer accepted a name list shorter than the corpus")
	}
}

// FuzzReadCorpusSnapshot checks that arbitrary bytes never panic the corpus
// snapshot reader and that anything it accepts is internally consistent and
// survives a write→read round trip with identical digests. The reader gates
// everything behind the CRC trailer and search.FromSnapshot's validation,
// so acceptance of fuzz-mutated input is itself suspicious — the round trip
// makes sure an accepted mutant is at least a coherent corpus.
func FuzzReadCorpusSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(corpusSnapshotMagic))
	for _, pivots := range []int{0, 2} {
		names, ix := snapshotCorpus(f, 6, pivots, 31)
		var buf bytes.Buffer
		if err := WriteCorpusSnapshot(&buf, names, ix); err != nil {
			f.Fatal(err)
		}
		wire := buf.Bytes()
		f.Add(append([]byte(nil), wire...))
		f.Add(append([]byte(nil), wire[:len(wire)/2]...))
		mutant := append([]byte(nil), wire...)
		mutant[len(mutant)/3] ^= 0x40
		f.Add(mutant)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		names, ix, err := ReadCorpusSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(names) != ix.Len() {
			t.Fatalf("accepted snapshot with %d names for %d graphs", len(names), ix.Len())
		}
		for i := 0; i < ix.Len(); i++ {
			if verr := ix.Graph(i).Validate(); verr != nil {
				t.Fatalf("accepted snapshot with invalid graph %d: %v", i, verr)
			}
		}
		var buf bytes.Buffer
		if err := WriteCorpusSnapshot(&buf, names, ix); err != nil {
			t.Fatalf("cannot re-serialize accepted snapshot: %v", err)
		}
		names2, ix2, err := ReadCorpusSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if fmt.Sprint(names2) != fmt.Sprint(names) ||
			fmt.Sprint(ix2.SignatureDigests()) != fmt.Sprint(ix.SignatureDigests()) {
			t.Fatal("round trip changed the corpus")
		}
	})
}
