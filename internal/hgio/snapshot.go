package hgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"hged/internal/pivot"
)

// Pivot snapshot binary layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "HGEDPIVS"
//	8       4     format version (uint32, currently 1)
//	12      4     n — corpus size (uint32)
//	16      4     k — pivot count (uint32)
//	20      4k    pivot corpus indices (k × int32)
//	...     8n    per-graph signature digests (n × uint64)
//	...     4kn   distance matrix, pivot-major (k × n × int32, -1 = unknown)
//	...     4     CRC-32 (IEEE) of everything above (uint32)
//
// The digests bind the table to the corpus it was built over: a loader
// must compare them against the live corpus before attaching the table.
// The trailing checksum makes torn writes and bit rot loud — a reader
// either returns a fully validated index or an error, never a partial one.
const (
	pivotSnapshotMagic   = "HGEDPIVS"
	pivotSnapshotVersion = uint32(1)

	// MaxSnapshotGraphs bounds the corpus and pivot counts a reader will
	// allocate for, protecting against hostile or corrupt headers.
	MaxSnapshotGraphs = 1 << 24
)

// WritePivotSnapshot serializes a pivot table and the signature digests of
// the corpus it was built over.
func WritePivotSnapshot(w io.Writer, pv *pivot.Index, digests []uint64) error {
	if pv == nil {
		return fmt.Errorf("hgio: nil pivot index")
	}
	if len(digests) != pv.Len() {
		return fmt.Errorf("hgio: %d digests for a corpus of %d graphs", len(digests), pv.Len())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(out, pivotSnapshotMagic); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	if err := writeU32s(out, pivotSnapshotVersion, uint32(pv.Len()), uint32(pv.K())); err != nil {
		return err
	}
	for p := 0; p < pv.K(); p++ {
		if err := writeU32s(out, uint32(int32(pv.PivotID(p)))); err != nil {
			return err
		}
	}
	var buf [8]byte
	for _, d := range digests {
		binary.LittleEndian.PutUint64(buf[:], d)
		if _, err := out.Write(buf[:]); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	for p := 0; p < pv.K(); p++ {
		for _, d := range pv.Distances(p) {
			if err := writeU32s(out, uint32(d)); err != nil {
				return err
			}
		}
	}
	if err := writeU32s(bw, crc.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hgio: %w", err)
	}
	return nil
}

// ReadPivotSnapshot parses a snapshot written by WritePivotSnapshot. It
// returns a fully validated pivot table and the corpus signature digests
// it was built over, or an error — never a partial index. Callers must
// still compare the digests against the live corpus (search.AttachPivots
// does) before trusting the table.
func ReadPivotSnapshot(r io.Reader) (*pivot.Index, []uint64, error) {
	crc := crc32.NewIEEE()
	cr := &checksumReader{r: bufio.NewReader(r), h: crc}
	magic := make([]byte, len(pivotSnapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, nil, fmt.Errorf("hgio: pivot snapshot header: %w", err)
	}
	if string(magic) != pivotSnapshotMagic {
		return nil, nil, fmt.Errorf("hgio: not a pivot snapshot (bad magic %q)", magic)
	}
	var version, un, uk uint32
	if err := readU32s(cr, &version, &un, &uk); err != nil {
		return nil, nil, err
	}
	if version != pivotSnapshotVersion {
		return nil, nil, fmt.Errorf("hgio: unsupported pivot snapshot version %d (want %d)", version, pivotSnapshotVersion)
	}
	if un > MaxSnapshotGraphs || uk > MaxSnapshotGraphs {
		return nil, nil, fmt.Errorf("hgio: implausible snapshot counts n=%d k=%d (max %d)", un, uk, MaxSnapshotGraphs)
	}
	n, k := int(un), int(uk)
	ids := make([]int32, k)
	for p := range ids {
		var v uint32
		if err := readU32s(cr, &v); err != nil {
			return nil, nil, err
		}
		ids[p] = int32(v)
	}
	digests := make([]uint64, n)
	var buf [8]byte
	for i := range digests {
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return nil, nil, fmt.Errorf("hgio: pivot snapshot truncated: %w", err)
		}
		digests[i] = binary.LittleEndian.Uint64(buf[:])
	}
	dist := make([][]int32, k)
	for p := range dist {
		col := make([]int32, n)
		for i := range col {
			var v uint32
			if err := readU32s(cr, &v); err != nil {
				return nil, nil, err
			}
			col[i] = int32(v)
		}
		dist[p] = col
	}
	sum := crc.Sum32() // the trailer itself is not part of the checksum
	var stored uint32
	if err := readU32s(cr, &stored); err != nil {
		return nil, nil, err
	}
	if stored != sum {
		return nil, nil, fmt.Errorf("hgio: pivot snapshot checksum mismatch (stored %08x, computed %08x): corrupt or torn write", stored, sum)
	}
	if extra, _ := io.CopyN(io.Discard, cr, 1); extra != 0 {
		return nil, nil, fmt.Errorf("hgio: trailing data after pivot snapshot")
	}
	pv, err := pivot.FromParts(n, ids, dist)
	if err != nil {
		return nil, nil, fmt.Errorf("hgio: invalid pivot snapshot: %w", err)
	}
	return pv, digests, nil
}

// WritePivotSnapshotFile atomically writes a snapshot to path, so a crash
// mid-write never leaves a torn snapshot at path.
func WritePivotSnapshotFile(path string, pv *pivot.Index, digests []uint64) error {
	return writeAtomic(path, func(w io.Writer) error { return WritePivotSnapshot(w, pv, digests) })
}

// ReadPivotSnapshotFile reads a snapshot from path.
func ReadPivotSnapshotFile(path string) (*pivot.Index, []uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("hgio: %w", err)
	}
	defer f.Close()
	pv, digests, err := ReadPivotSnapshot(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return pv, digests, nil
}

// checksumReader tees everything read through the checksum hash.
type checksumReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *checksumReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

func writeU32s(w io.Writer, vs ...uint32) error {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("hgio: %w", err)
		}
	}
	return nil
}

func readU32s(r io.Reader, vs ...*uint32) error {
	var buf [4]byte
	for _, v := range vs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return fmt.Errorf("hgio: truncated input: %w", err)
		}
		*v = binary.LittleEndian.Uint32(buf[:])
	}
	return nil
}
