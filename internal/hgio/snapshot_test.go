package hgio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hged/internal/pivot"
)

// sampleSnapshot builds a small hand-crafted pivot table with a mix of
// known and Unknown entries.
func sampleSnapshot(t *testing.T) (*pivot.Index, []uint64) {
	t.Helper()
	pv, err := pivot.FromParts(5,
		[]int32{0, 3},
		[][]int32{
			{0, 2, 4, 3, pivot.Unknown},
			{3, 1, pivot.Unknown, 0, 6},
		})
	if err != nil {
		t.Fatal(err)
	}
	return pv, []uint64{11, 22, 33, 44, 55}
}

func snapshotBytes(t *testing.T, pv *pivot.Index, digests []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePivotSnapshot(&buf, pv, digests); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPivotSnapshotRoundTrip(t *testing.T) {
	pv, digests := sampleSnapshot(t)
	raw := snapshotBytes(t, pv, digests)
	back, gotDigests, err := ReadPivotSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDigests, digests) {
		t.Fatalf("digests changed: got %v want %v", gotDigests, digests)
	}
	if back.Len() != pv.Len() || back.K() != pv.K() {
		t.Fatalf("shape changed: got (%d,%d) want (%d,%d)", back.Len(), back.K(), pv.Len(), pv.K())
	}
	if !reflect.DeepEqual(back.PivotIDs(), pv.PivotIDs()) {
		t.Fatalf("pivot ids changed: got %v want %v", back.PivotIDs(), pv.PivotIDs())
	}
	for p := 0; p < pv.K(); p++ {
		if !reflect.DeepEqual(back.Distances(p), pv.Distances(p)) {
			t.Fatalf("column %d changed: got %v want %v", p, back.Distances(p), pv.Distances(p))
		}
	}
}

func TestPivotSnapshotWriterIsDeterministic(t *testing.T) {
	pv, digests := sampleSnapshot(t)
	if !bytes.Equal(snapshotBytes(t, pv, digests), snapshotBytes(t, pv, digests)) {
		t.Fatal("two writes of the same table produced different bytes")
	}
}

func TestPivotSnapshotRejectsCorruption(t *testing.T) {
	pv, digests := sampleSnapshot(t)
	raw := snapshotBytes(t, pv, digests)

	t.Run("bit flip anywhere fails the checksum", func(t *testing.T) {
		// Flip one bit in every byte position (the trailer included:
		// flipping the stored checksum must also be caught).
		for i := range raw {
			bad := append([]byte(nil), raw...)
			bad[i] ^= 0x40
			if _, _, err := ReadPivotSnapshot(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at offset %d was accepted", i)
			}
		}
	})

	t.Run("truncation at every length", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut++ {
			if _, _, err := ReadPivotSnapshot(bytes.NewReader(raw[:cut])); err == nil {
				t.Fatalf("truncation to %d bytes was accepted", cut)
			}
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTAPIVT"), raw[8:]...)
		_, _, err := ReadPivotSnapshot(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[8] = 99
		_, _, err := ReadPivotSnapshot(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("implausible counts rejected before allocating", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		for i := 12; i < 16; i++ {
			bad[i] = 0xff
		}
		_, _, err := ReadPivotSnapshot(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "implausible") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("empty input", func(t *testing.T) {
		if _, _, err := ReadPivotSnapshot(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty input was accepted")
		}
	})
}

func TestWritePivotSnapshotRejectsBadInputs(t *testing.T) {
	pv, digests := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := WritePivotSnapshot(&buf, nil, digests); err == nil {
		t.Fatal("nil index was accepted")
	}
	if err := WritePivotSnapshot(&buf, pv, digests[:2]); err == nil {
		t.Fatal("digest count mismatch was accepted")
	}
}

func TestPivotSnapshotFileRoundTrip(t *testing.T) {
	pv, digests := sampleSnapshot(t)
	path := filepath.Join(t.TempDir(), "pivots.snap")
	if err := WritePivotSnapshotFile(path, pv, digests); err != nil {
		t.Fatal(err)
	}
	back, gotDigests, err := ReadPivotSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDigests, digests) || back.K() != pv.K() {
		t.Fatalf("file round trip changed the snapshot")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after an atomic write: %v", entries)
	}
	// A failed write must not clobber an existing snapshot.
	if err := WritePivotSnapshotFile(path, nil, digests); err == nil {
		t.Fatal("nil index write must fail")
	}
	if _, _, err := ReadPivotSnapshotFile(path); err != nil {
		t.Fatalf("failed write clobbered the previous snapshot: %v", err)
	}
}

func TestReadPivotSnapshotFileMissing(t *testing.T) {
	if _, _, err := ReadPivotSnapshotFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("missing file was accepted")
	}
}
