package gen

import (
	"fmt"
	"math/rand"

	"hged/internal/hypergraph"
)

// GrowthConfig drives the hyperedge-copying growth model of "Edge
// Correlations and Link Prediction in Growing Hypergraphs" (PAPERS.md):
// each arriving node picks an existing hyperedge as its template, copies
// each template member independently with probability CopyProb, and forms a
// new hyperedge from itself plus the copied members — reproducing the
// edge-correlation structure real hypergraphs grow with. An optional churn
// probability removes a uniform random hyperedge after a step, which makes
// the stream exercise the full mutation API (the MVCC streaming workload).
type GrowthConfig struct {
	// SeedNodes and SeedEdges size the initial graph the stream grows from
	// (defaults 8 nodes, 8 edges; SeedNodes ≥ 2, SeedEdges ≥ 1 — the first
	// step needs a template).
	SeedNodes, SeedEdges int
	// Steps is the number of growth steps; each adds one node and one
	// hyperedge (must be ≥ 0).
	Steps int
	// CopyProb is the per-member template copy probability p ∈ (0, 1]
	// (default 0.5).
	CopyProb float64
	// ChurnProb is the probability a step also removes a uniform random
	// hyperedge, ∈ [0, 1) (default 0 — pure growth).
	ChurnProb float64
	// NodeLabelCount and EdgeLabelCount size the label alphabets
	// (defaults 4 and 4).
	NodeLabelCount, EdgeLabelCount int
	// Seed makes generation deterministic (0 means 1).
	Seed int64
}

func (c GrowthConfig) normalize() (GrowthConfig, error) {
	if c.SeedNodes == 0 {
		c.SeedNodes = 8
	}
	if c.SeedEdges == 0 {
		c.SeedEdges = 8
	}
	if c.SeedNodes < 2 || c.SeedEdges < 1 {
		return c, fmt.Errorf("gen: need SeedNodes ≥ 2 and SeedEdges ≥ 1, got %d, %d", c.SeedNodes, c.SeedEdges)
	}
	if c.Steps < 0 {
		return c, fmt.Errorf("gen: Steps %d < 0", c.Steps)
	}
	if c.CopyProb == 0 {
		c.CopyProb = 0.5
	}
	if c.CopyProb < 0 || c.CopyProb > 1 {
		return c, fmt.Errorf("gen: CopyProb %v out of (0,1]", c.CopyProb)
	}
	if c.ChurnProb < 0 || c.ChurnProb >= 1 {
		return c, fmt.Errorf("gen: ChurnProb %v out of [0,1)", c.ChurnProb)
	}
	if c.NodeLabelCount == 0 {
		c.NodeLabelCount = 4
	}
	if c.EdgeLabelCount == 0 {
		c.EdgeLabelCount = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// GrowthOpKind discriminates the operations a growth stream emits.
type GrowthOpKind int

const (
	// GrowthAddNode introduces the arriving node.
	GrowthAddNode GrowthOpKind = iota
	// GrowthAddEdge adds the copied hyperedge (members in current ids).
	GrowthAddEdge
	// GrowthRemoveEdge removes a hyperedge (id in current numbering, i.e.
	// after all earlier steps of the stream have been applied).
	GrowthRemoveEdge
)

// GrowthStep is one operation of a growth stream. Ids are valid at the
// moment the step is applied, in order — RemoveEdge targets account for the
// dense renumbering earlier removals performed.
type GrowthStep struct {
	Op    GrowthOpKind
	Label hypergraph.Label    // AddNode / AddEdge label
	Nodes []hypergraph.NodeID // AddEdge members (includes the new node)
	Edge  hypergraph.EdgeID   // RemoveEdge target
}

// Growth generates the seed hypergraph and a deterministic operation stream
// growing it. The same stream can be applied incrementally (through MVCC
// batches) or replayed from scratch — the differential tests rely on both
// paths producing identical graphs. The returned seed graph is the stream's
// base: apply the steps to it (or to a clone) with ApplyGrowth.
func Growth(cfg GrowthConfig) (*hypergraph.Hypergraph, []GrowthStep, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	g := hypergraph.New(0)
	for i := 0; i < c.SeedNodes; i++ {
		g.AddNode(hypergraph.Label(1 + rng.Intn(c.NodeLabelCount)))
	}
	// mirror tracks the evolving hyperedge list so template picks and churn
	// targets are valid in the numbering the consumer sees at apply time.
	mirror := make([][]hypergraph.NodeID, 0, c.SeedEdges+c.Steps)
	for e := 0; e < c.SeedEdges; e++ {
		sz := 2 + rng.Intn(3)
		members := make([]hypergraph.NodeID, sz)
		for j := range members {
			members[j] = hypergraph.NodeID(rng.Intn(c.SeedNodes))
		}
		id := g.AddEdge(hypergraph.Label(100+rng.Intn(c.EdgeLabelCount)), members...)
		mirror = append(mirror, append([]hypergraph.NodeID(nil), g.Edge(id).Nodes...))
	}
	n := g.NumNodes()

	steps := make([]GrowthStep, 0, 3*c.Steps)
	for s := 0; s < c.Steps; s++ {
		v := hypergraph.NodeID(n)
		n++
		steps = append(steps, GrowthStep{
			Op:    GrowthAddNode,
			Label: hypergraph.Label(1 + rng.Intn(c.NodeLabelCount)),
		})
		template := mirror[rng.Intn(len(mirror))]
		members := []hypergraph.NodeID{v}
		for _, u := range template {
			if rng.Float64() < c.CopyProb {
				members = append(members, u)
			}
		}
		if len(members) == 1 {
			// The model forces at least one copied member, so the new
			// hyperedge correlates with its template.
			members = append(members, template[rng.Intn(len(template))])
		}
		steps = append(steps, GrowthStep{
			Op:    GrowthAddEdge,
			Label: hypergraph.Label(100 + rng.Intn(c.EdgeLabelCount)),
			Nodes: members,
		})
		mirror = append(mirror, members)
		if len(mirror) > 1 && rng.Float64() < c.ChurnProb {
			victim := rng.Intn(len(mirror))
			steps = append(steps, GrowthStep{Op: GrowthRemoveEdge, Edge: hypergraph.EdgeID(victim)})
			mirror = append(mirror[:victim], mirror[victim+1:]...)
		}
	}
	return g, steps, nil
}

// ApplyGrowth replays a growth stream onto g in order.
func ApplyGrowth(g *hypergraph.Hypergraph, steps []GrowthStep) {
	for _, st := range steps {
		switch st.Op {
		case GrowthAddNode:
			g.AddNode(st.Label)
		case GrowthAddEdge:
			g.AddEdge(st.Label, st.Nodes...)
		case GrowthRemoveEdge:
			g.RemoveEdge(st.Edge)
		}
	}
}
