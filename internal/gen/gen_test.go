package gen

import (
	"math"
	"testing"

	"hged/internal/hypergraph"
)

func TestPlantedCommunitiesShape(t *testing.T) {
	g, comm, err := PlantedCommunities(Config{
		Nodes: 120, Edges: 300,
		MeanEdgeSize: 4, MedianEdgeSize: 3,
		NodeLabelCount: 5, Communities: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 120 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if len(comm) != 120 {
		t.Fatalf("community assignments = %d", len(comm))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	s := hypergraph.Summarize(g)
	if s.MeanEdgeSize < 2.5 || s.MeanEdgeSize > 6 {
		t.Fatalf("mean edge size %v far from target 4", s.MeanEdgeSize)
	}
	if s.NodeLabels > 5 {
		t.Fatalf("node labels %d > requested 5", s.NodeLabels)
	}
}

func TestPlantedCommunitiesDeterministic(t *testing.T) {
	cfg := Config{Nodes: 50, Edges: 80, Seed: 42}
	a, _, _ := PlantedCommunities(cfg)
	b, _, _ := PlantedCommunities(cfg)
	if a.String() != b.String() {
		t.Fatal("same seed must produce identical graphs")
	}
	c, _, _ := PlantedCommunities(Config{Nodes: 50, Edges: 80, Seed: 43})
	if a.String() == c.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestPlantedCommunitiesEdgesStayMostlyInside(t *testing.T) {
	g, comm, err := PlantedCommunities(Config{
		Nodes: 100, Edges: 200, Communities: 10, NoiseProb: 0.02, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pure := 0
	for _, e := range g.Edges() {
		inside := true
		for _, v := range e.Nodes[1:] {
			if comm[v] != comm[e.Nodes[0]] {
				inside = false
				break
			}
		}
		if inside {
			pure++
		}
	}
	if frac := float64(pure) / float64(g.NumEdges()); frac < 0.7 {
		t.Fatalf("only %.2f of hyperedges are community-pure", frac)
	}
}

func TestPlantedCommunitiesValidation(t *testing.T) {
	if _, _, err := PlantedCommunities(Config{Nodes: 0, Edges: 5}); err == nil {
		t.Fatal("zero nodes must fail")
	}
	if _, _, err := PlantedCommunities(Config{Nodes: 5, Edges: 5, NoiseProb: 1.5}); err == nil {
		t.Fatal("bad noise must fail")
	}
}

func TestSizeSamplerHitsTargets(t *testing.T) {
	g, _, err := PlantedCommunities(Config{
		Nodes: 2000, Edges: 4000,
		MeanEdgeSize: 24.2, MedianEdgeSize: 5,
		MaxEdgeSize: 120, Communities: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := hypergraph.Summarize(g)
	// Heavy-tailed target: median should land near 5, mean well above it.
	if s.MedianEdgeSize < 3 || s.MedianEdgeSize > 8 {
		t.Fatalf("median %d far from 5", s.MedianEdgeSize)
	}
	if s.MeanEdgeSize < 10 {
		t.Fatalf("mean %v not heavy-tailed toward 24", s.MeanEdgeSize)
	}
}

func TestUniform(t *testing.T) {
	g := Uniform(30, 50, 5, 3, 2, 9)
	if g.NumNodes() != 30 || g.NumEdges() != 50 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Arity() < 2 || e.Arity() > 5 {
			t.Fatalf("edge size %d out of [2,5]", e.Arity())
		}
	}
	if Uniform(0, 5, 3, 1, 1, 1).NumNodes() != 0 {
		t.Fatal("empty uniform graph mishandled")
	}
}

func TestSubsampleFractions(t *testing.T) {
	g := Uniform(200, 400, 4, 3, 2, 11)
	sub := Subsample(g, 0.5, 1.0, 13)
	if got := sub.NumNodes(); got != 100 {
		t.Fatalf("kept %d nodes, want 100", got)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges can only survive if all members survive; with half the nodes
	// and size-≥2 edges, far fewer than 400 remain.
	if sub.NumEdges() >= g.NumEdges() {
		t.Fatalf("subsample kept %d edges of %d", sub.NumEdges(), g.NumEdges())
	}
	full := Subsample(g, 1, 1, 13)
	if full.NumNodes() != g.NumNodes() || full.NumEdges() != g.NumEdges() {
		t.Fatal("full subsample should be the whole graph")
	}
	empty := Subsample(g, 0, 1, 13)
	if empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Fatal("zero-fraction subsample should be empty")
	}
}

func TestSubsampleEdgeFraction(t *testing.T) {
	g := Uniform(100, 1000, 3, 2, 2, 17)
	sub := Subsample(g, 1.0, 0.5, 19)
	got := float64(sub.NumEdges()) / float64(g.NumEdges())
	if math.Abs(got-0.5) > 0.1 {
		t.Fatalf("edge fraction %v far from 0.5", got)
	}
}

func TestSubsampleClampsFractions(t *testing.T) {
	g := Uniform(20, 10, 3, 2, 2, 23)
	if s := Subsample(g, 2.0, -1, 29); s.NumNodes() != 20 || s.NumEdges() != 0 {
		t.Fatalf("clamping failed: n=%d m=%d", s.NumNodes(), s.NumEdges())
	}
}
