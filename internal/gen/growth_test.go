package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"hged/internal/hypergraph"
	"hged/internal/search"
)

func TestGrowthDeterministic(t *testing.T) {
	cfg := GrowthConfig{Steps: 40, ChurnProb: 0.3, Seed: 9}
	g1, s1, err := Growth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, s2, err := Growth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different streams")
	}
	if g1.String() != g2.String() {
		t.Fatal("same seed produced different seed graphs")
	}
}

func TestGrowthStreamStaysValid(t *testing.T) {
	g, steps, err := Growth(GrowthConfig{Steps: 120, ChurnProb: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		ApplyGrowth(g, []GrowthStep{st})
		if err := g.Validate(); err != nil {
			t.Fatalf("graph invalid after %+v: %v", st, err)
		}
	}
	// Pure growth adds one node and one hyperedge per step; churn only
	// removes hyperedges, so node count is exact.
	if want := 8 + 120; g.NumNodes() != want {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), want)
	}
}

func TestGrowthRejectsBadConfig(t *testing.T) {
	for _, cfg := range []GrowthConfig{
		{SeedNodes: 1},
		{Steps: -1},
		{CopyProb: 1.5},
		{ChurnProb: 1},
	} {
		if _, _, err := Growth(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestGrowthDifferentialMVCC is the acceptance differential: a growth
// stream applied incrementally through MVCC batches must produce, at every
// published generation, a graph byte-identical (CSR accessor level) to a
// from-scratch replay — and at the end, a search index over the incremental
// graph must return identical matches and FilterStats to one over the
// scratch graph.
func TestGrowthDifferentialMVCC(t *testing.T) {
	seedGraph, steps, err := Growth(GrowthConfig{Steps: 80, ChurnProb: 0.35, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	scratch := seedGraph.Clone()
	v := hypergraph.NewVersioned(seedGraph)
	rng := rand.New(rand.NewSource(1))
	for len(steps) > 0 {
		k := 1 + rng.Intn(5)
		if k > len(steps) {
			k = len(steps)
		}
		b := v.Begin()
		for _, st := range steps[:k] {
			switch st.Op {
			case GrowthAddNode:
				b.AddNode(st.Label)
			case GrowthAddEdge:
				b.AddEdge(st.Label, st.Nodes...)
			case GrowthRemoveEdge:
				b.RemoveEdge(st.Edge)
			}
		}
		ApplyGrowth(scratch, steps[:k])
		steps = steps[k:]
		gen, _ := b.Commit()
		requireGraphIdentical(t, gen.Graph(), scratch)
	}

	// Search differential over ego corpora of both final graphs.
	final := v.Current().Graph()
	var incCorpus, scrCorpus []*hypergraph.Hypergraph
	for i := 0; i < final.NumNodes(); i += 3 {
		incCorpus = append(incCorpus, final.Ego(hypergraph.NodeID(i)))
		scrCorpus = append(scrCorpus, scratch.Ego(hypergraph.NodeID(i)))
	}
	incIx := search.Build(incCorpus)
	scrIx := search.Build(scrCorpus)
	// Cap verification work: the differential only needs identical results,
	// and capped runs cover the bound-hit paths too.
	incIx.MaxExpansions = 20_000
	scrIx.MaxExpansions = 20_000
	q := scratch.Ego(1)
	for _, tau := range []int{0, 3} {
		gm, gs, err := incIx.Search(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		wm, ws, err := scrIx.Search(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gm, wm) || gs != ws {
			t.Fatalf("τ=%d: incremental corpus search diverged\ngot  %v %+v\nwant %v %+v", tau, gm, gs, wm, ws)
		}
	}
	km, ks, err := incIx.Nearest(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	wkm, wks, err := scrIx.Nearest(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(km, wkm) || ks != wks {
		t.Fatalf("kNN diverged\ngot  %v %+v\nwant %v %+v", km, ks, wkm, wks)
	}
}

// requireGraphIdentical compares two graphs at the frozen-accessor level:
// counts, labels, members, incidences and the interned dictionary.
func requireGraphIdentical(t *testing.T, got, want *hypergraph.Hypergraph) {
	t.Helper()
	gc, wc := got.Freeze(), want.Clone().Freeze()
	if gc.NumNodes() != wc.NumNodes() || gc.NumEdges() != wc.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", gc.NumNodes(), gc.NumEdges(), wc.NumNodes(), wc.NumEdges())
	}
	if !reflect.DeepEqual(gc.Labels(), wc.Labels()) {
		t.Fatalf("label dictionaries differ: %v vs %v", gc.Labels(), wc.Labels())
	}
	if !reflect.DeepEqual(gc.NodeLabelIDs(), wc.NodeLabelIDs()) || !reflect.DeepEqual(gc.EdgeLabelIDs(), wc.EdgeLabelIDs()) {
		t.Fatal("interned label arrays differ")
	}
	for e := 0; e < gc.NumEdges(); e++ {
		if !reflect.DeepEqual(gc.Members(hypergraph.EdgeID(e)), wc.Members(hypergraph.EdgeID(e))) {
			t.Fatalf("edge %d members differ: %v vs %v", e, gc.Members(hypergraph.EdgeID(e)), wc.Members(hypergraph.EdgeID(e)))
		}
	}
	for n := 0; n < gc.NumNodes(); n++ {
		if !reflect.DeepEqual(gc.IncidentEdges(hypergraph.NodeID(n)), wc.IncidentEdges(hypergraph.NodeID(n))) {
			t.Fatalf("node %d incidence differs", n)
		}
	}
}
