// Package gen provides seeded random hypergraph generators: a uniform model
// for tests, a planted-community model used to synthesize replicas of the
// paper's datasets (see internal/dataset), and sub-sampling for the
// scalability experiment (Fig. 12).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hged/internal/hypergraph"
)

// Config drives the planted-community generator. Hyperedges are sampled
// inside communities, whose members share correlated labels, so that
// held-out hyperedges are predictable from surviving structure — the
// property the paper's effectiveness evaluation exercises.
type Config struct {
	// Nodes and Edges are the target counts (both must be > 0).
	Nodes, Edges int
	// MeanEdgeSize and MedianEdgeSize shape the hyperedge cardinality
	// distribution (log-normal, clamped to [MinEdgeSize, MaxEdgeSize]).
	MeanEdgeSize   float64
	MedianEdgeSize int
	// MinEdgeSize defaults to 2; MaxEdgeSize defaults to 4× the mean.
	MinEdgeSize, MaxEdgeSize int
	// NodeLabelCount is |l(V)|, the number of node label classes.
	NodeLabelCount int
	// EdgeLabelCount is the number of hyperedge label classes (defaults
	// to NodeLabelCount).
	EdgeLabelCount int
	// Communities is the number of planted communities (default
	// max(2, Nodes/12)).
	Communities int
	// NoiseProb is the probability that a hyperedge member is drawn
	// outside the hyperedge's community, and that a node's label deviates
	// from its community's label (default 0.05).
	NoiseProb float64
	// Seed makes generation deterministic (0 means 1).
	Seed int64
}

func (c Config) normalize() (Config, error) {
	if c.Nodes <= 0 || c.Edges < 0 {
		return c, fmt.Errorf("gen: need Nodes > 0 and Edges ≥ 0, got %d, %d", c.Nodes, c.Edges)
	}
	if c.MeanEdgeSize == 0 {
		c.MeanEdgeSize = 3
	}
	if c.MedianEdgeSize == 0 {
		c.MedianEdgeSize = int(math.Max(2, math.Round(c.MeanEdgeSize*0.8)))
	}
	if c.MeanEdgeSize < 1 || c.MedianEdgeSize < 1 {
		return c, fmt.Errorf("gen: edge sizes must be ≥ 1")
	}
	if c.MinEdgeSize == 0 {
		c.MinEdgeSize = 2
	}
	if c.MaxEdgeSize == 0 {
		c.MaxEdgeSize = int(4 * c.MeanEdgeSize)
		if c.MaxEdgeSize < c.MinEdgeSize {
			c.MaxEdgeSize = c.MinEdgeSize
		}
	}
	if c.MaxEdgeSize > c.Nodes {
		c.MaxEdgeSize = c.Nodes
	}
	if c.MinEdgeSize > c.MaxEdgeSize {
		c.MinEdgeSize = c.MaxEdgeSize
	}
	if c.NodeLabelCount == 0 {
		c.NodeLabelCount = 4
	}
	if c.EdgeLabelCount == 0 {
		c.EdgeLabelCount = c.NodeLabelCount
	}
	if c.Communities == 0 {
		c.Communities = c.Nodes / 12
		if c.Communities < 2 {
			c.Communities = 2
		}
	}
	if c.Communities > c.Nodes {
		c.Communities = c.Nodes
	}
	if c.NoiseProb == 0 {
		c.NoiseProb = 0.05
	}
	if c.NoiseProb < 0 || c.NoiseProb >= 1 {
		return c, fmt.Errorf("gen: NoiseProb %v out of [0,1)", c.NoiseProb)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// Community reports, for a generated graph, which community each node was
// planted in. Returned alongside the graph by PlantedCommunities.
type Community []int

// PlantedCommunities generates a hypergraph per the Config.
func PlantedCommunities(cfg Config) (*hypergraph.Hypergraph, Community, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Assign nodes round-robin to communities (keeps sizes balanced), then
	// labels correlated with community.
	community := make(Community, c.Nodes)
	labels := make([]hypergraph.Label, c.Nodes)
	for v := 0; v < c.Nodes; v++ {
		com := v % c.Communities
		community[v] = com
		l := hypergraph.Label(1 + com%c.NodeLabelCount)
		if rng.Float64() < c.NoiseProb {
			l = hypergraph.Label(1 + rng.Intn(c.NodeLabelCount))
		}
		labels[v] = l
	}
	g := hypergraph.NewLabeled(labels)

	// Bucket nodes per community for fast member sampling.
	members := make([][]hypergraph.NodeID, c.Communities)
	for v := 0; v < c.Nodes; v++ {
		com := community[v]
		members[com] = append(members[com], hypergraph.NodeID(v))
	}

	sizer := newSizeSampler(c.MeanEdgeSize, c.MedianEdgeSize, c.MinEdgeSize, c.MaxEdgeSize)
	for e := 0; e < c.Edges; e++ {
		com := rng.Intn(c.Communities)
		size := sizer.sample(rng)
		if size > c.Nodes {
			size = c.Nodes
		}
		picked := make(map[hypergraph.NodeID]struct{}, size)
		for len(picked) < size {
			var v hypergraph.NodeID
			if rng.Float64() < c.NoiseProb || len(members[com]) == 0 {
				v = hypergraph.NodeID(rng.Intn(c.Nodes))
			} else {
				pool := members[com]
				v = pool[rng.Intn(len(pool))]
			}
			picked[v] = struct{}{}
			if len(picked) >= len(members[com])+int(float64(c.Nodes)*c.NoiseProb)+1 {
				break // community smaller than requested size
			}
		}
		nodes := make([]hypergraph.NodeID, 0, len(picked))
		for v := range picked {
			nodes = append(nodes, v)
		}
		el := hypergraph.Label(100 + com%c.EdgeLabelCount)
		if rng.Float64() < c.NoiseProb {
			el = hypergraph.Label(100 + rng.Intn(c.EdgeLabelCount))
		}
		g.AddEdge(el, nodes...)
	}
	return g, community, nil
}

// sizeSampler draws hyperedge cardinalities from a log-normal distribution
// parameterized to hit a target mean and median: median m gives μ = ln m,
// and mean/median = exp(σ²/2) gives σ. When mean ≤ median the distribution
// degenerates to the median.
type sizeSampler struct {
	mu, sigma float64
	min, max  int
}

func newSizeSampler(mean float64, median, min, max int) *sizeSampler {
	s := &sizeSampler{min: min, max: max}
	m := float64(median)
	if m < 1 {
		m = 1
	}
	s.mu = math.Log(m)
	if mean > m {
		s.sigma = math.Sqrt(2 * math.Log(mean/m))
	}
	return s
}

func (s *sizeSampler) sample(rng *rand.Rand) int {
	x := math.Exp(s.mu + s.sigma*rng.NormFloat64())
	size := int(math.Round(x))
	if size < s.min {
		size = s.min
	}
	if size > s.max {
		size = s.max
	}
	return size
}

// Uniform generates a hypergraph with n nodes, m hyperedges of sizes
// uniform in [2, maxSize], and uniform labels from the given class counts.
func Uniform(n, m, maxSize, nodeLabels, edgeLabels int, seed int64) *hypergraph.Hypergraph {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]hypergraph.Label, n)
	for i := range labels {
		labels[i] = hypergraph.Label(1 + rng.Intn(maxInts(nodeLabels, 1)))
	}
	g := hypergraph.NewLabeled(labels)
	if n == 0 {
		return g
	}
	if maxSize < 2 {
		maxSize = 2
	}
	if maxSize > n {
		maxSize = n
	}
	for e := 0; e < m; e++ {
		size := 2
		if maxSize > 2 {
			size = 2 + rng.Intn(maxSize-1)
		}
		perm := rng.Perm(n)
		nodes := make([]hypergraph.NodeID, 0, size)
		for _, v := range perm[:size] {
			nodes = append(nodes, hypergraph.NodeID(v))
		}
		g.AddEdge(hypergraph.Label(100+rng.Intn(maxInts(edgeLabels, 1))), nodes...)
	}
	return g
}

func maxInts(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Subsample returns the sub-hypergraph obtained by keeping a random
// nodeFrac of the nodes and, of the hyperedges whose members all survive, a
// random edgeFrac — the workload of the scalability experiment (Fig. 12).
// Fractions are clamped to [0, 1].
func Subsample(g *hypergraph.Hypergraph, nodeFrac, edgeFrac float64, seed int64) *hypergraph.Hypergraph {
	clamp := func(f float64) float64 {
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	nodeFrac, edgeFrac = clamp(nodeFrac), clamp(edgeFrac)
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	n := g.NumNodes()
	keepN := int(math.Round(float64(n) * nodeFrac))
	perm := rng.Perm(n)
	kept := perm[:keepN]
	sort.Ints(kept)
	remap := make(map[hypergraph.NodeID]hypergraph.NodeID, keepN)
	labels := make([]hypergraph.Label, keepN)
	for i, v := range kept {
		remap[hypergraph.NodeID(v)] = hypergraph.NodeID(i)
		labels[i] = g.NodeLabel(hypergraph.NodeID(v))
	}
	out := hypergraph.NewLabeled(labels)
	for _, e := range g.Edges() {
		if rng.Float64() >= edgeFrac {
			continue
		}
		nodes := make([]hypergraph.NodeID, 0, e.Arity())
		ok := true
		for _, v := range e.Nodes {
			nv, in := remap[v]
			if !in {
				ok = false
				break
			}
			nodes = append(nodes, nv)
		}
		if ok {
			out.AddEdge(e.Label, nodes...)
		}
	}
	return out
}
