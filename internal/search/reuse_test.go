package search

import (
	"reflect"
	"testing"

	"hged/internal/hypergraph"
)

// TestBuildReusingByteIdentical proves the incremental-refresh contract:
// after one corpus graph changes, an index built with reused signature rows
// for the unchanged graphs is byte-identical — signature table, matches and
// FilterStats — to a full rebuild over the new corpus.
func TestBuildReusingByteIdentical(t *testing.T) {
	corpus, queries := plantedCorpus(t)
	prev := Build(corpus)

	// Replace one graph with a mutated next generation.
	changed := 3
	next := append([]*hypergraph.Hypergraph(nil), corpus...)
	mut := corpus[changed].Clone()
	mut.AddEdge(7, 0, hypergraph.NodeID(mut.NumNodes()-1))
	next[changed] = mut

	reuse := make([]int, len(next))
	for i := range reuse {
		if i == changed {
			reuse[i] = -1
		} else {
			reuse[i] = i
		}
	}
	inc := BuildReusing(next, prev, reuse)
	full := Build(next)

	if !reflect.DeepEqual(inc.sigs, full.sigs) {
		t.Fatal("reused signature table differs from full rebuild")
	}
	if !reflect.DeepEqual(inc.SignatureDigests(), full.SignatureDigests()) {
		t.Fatal("signature digests differ from full rebuild")
	}
	for _, q := range queries {
		for _, tau := range []int{0, 4} {
			gm, gs, err := inc.Search(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			wm, ws, err := full.Search(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gm, wm) || gs != ws {
				t.Fatalf("τ=%d: incremental index diverged\ngot  %v %+v\nwant %v %+v", tau, gm, gs, wm, ws)
			}
		}
	}
}

// TestBuildReusingFallsBackToFullBuild covers the degenerate inputs.
func TestBuildReusingFallsBackToFullBuild(t *testing.T) {
	corpus, _ := plantedCorpus(t)
	full := Build(corpus)
	if got := BuildReusing(corpus, nil, nil); !reflect.DeepEqual(got.sigs, full.sigs) {
		t.Fatal("nil prev must behave like Build")
	}
	if got := BuildReusing(corpus, full, make([]int, 1)); !reflect.DeepEqual(got.sigs, full.sigs) {
		t.Fatal("length-mismatched reuse must behave like Build")
	}
}
