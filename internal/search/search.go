// Package search implements hypergraph similarity search: given a corpus of
// hypergraphs and a query, find all corpus members within HGED ≤ τ (range
// search) or the k nearest (kNN). It follows the filtering-and-verification
// paradigm of the GED similarity-search literature the paper builds on
// (Sanfeliu & Fu; Zhao et al.; Chang et al. — refs [25], [27]–[30]):
// cheap per-graph signatures prune candidates with admissible lower bounds,
// and only survivors pay for an exact HGED-BFS verification.
package search

import (
	"fmt"
	"sort"

	"hged/internal/core"
	"hged/internal/hypergraph"
	"hged/internal/multiset"
)

// signature is the per-graph filter summary: entity counts, label
// multisets, and the sorted hyperedge-cardinality list.
type signature struct {
	n, m       int
	nodeLabels multiset.Counts
	edgeLabels multiset.Counts
	cards      []int // ascending
	incid      int   // Σ|E|
}

func signatureOf(g *hypergraph.Hypergraph) signature {
	s := signature{n: g.NumNodes(), m: g.NumEdges()}
	nodeLabels := make([]hypergraph.Label, s.n)
	for v := 0; v < s.n; v++ {
		nodeLabels[v] = g.NodeLabel(hypergraph.NodeID(v))
	}
	s.nodeLabels = multiset.FromLabels(nodeLabels)
	edgeLabels := make([]hypergraph.Label, 0, s.m)
	for _, e := range g.Edges() {
		edgeLabels = append(edgeLabels, e.Label)
		s.cards = append(s.cards, e.Arity())
		s.incid += e.Arity()
	}
	s.edgeLabels = multiset.FromLabels(edgeLabels)
	sort.Ints(s.cards)
	return s
}

// countFilter is the coarsest bound: editing node and hyperedge counts
// costs at least their differences (each missing hyperedge additionally
// costs its cardinality, captured by the cardinality filter).
func countFilter(a, b signature) int {
	d := a.n - b.n
	if d < 0 {
		d = -d
	}
	e := a.m - b.m
	if e < 0 {
		e = -e
	}
	return d + e
}

// labelFilter is the Ψ bound of Definition 5 over both label multisets.
func labelFilter(a, b signature) int {
	return multiset.Psi(a.nodeLabels, b.nodeLabels) + multiset.Psi(a.edgeLabels, b.edgeLabels)
}

// cardFilter is the Definition-6 cardinality bound plus the node-count
// difference (disjoint cost families).
func cardFilter(a, b signature) int {
	d := a.n - b.n
	if d < 0 {
		d = -d
	}
	return d + multiset.CardinalityBound(a.cards, b.cards)
}

// combinedFilter is the full Strategy-3 bound: label Ψ plus cardinality
// bound (they charge disjoint operation families).
func combinedFilter(a, b signature) int {
	return labelFilter(a, b) + multiset.CardinalityBound(a.cards, b.cards)
}

// Index is a similarity-search index over a corpus of hypergraphs. Build
// once with Build; Search and Nearest may be called repeatedly.
type Index struct {
	graphs []*hypergraph.Hypergraph
	sigs   []signature
	// MaxExpansions caps each verification search (0 = solver default).
	MaxExpansions int64
}

// Build indexes the corpus. The graphs are retained by reference and must
// not be mutated afterwards.
func Build(graphs []*hypergraph.Hypergraph) *Index {
	ix := &Index{graphs: graphs, sigs: make([]signature, len(graphs))}
	for i, g := range graphs {
		ix.sigs[i] = signatureOf(g)
	}
	return ix
}

// Len returns the corpus size.
func (ix *Index) Len() int { return len(ix.graphs) }

// Graph returns corpus member i.
func (ix *Index) Graph(i int) *hypergraph.Hypergraph { return ix.graphs[i] }

// Match is one search result.
type Match struct {
	ID       int
	Distance int
}

// FilterStats reports how candidates were eliminated during one search.
type FilterStats struct {
	Candidates     int // corpus size
	PrunedByCount  int
	PrunedByLabel  int
	PrunedByCard   int
	Verified       int // exact HGED verifications performed
	VerifiedWithin int // verifications that ended ≤ τ
}

// Search returns all corpus members g with HGED(q, g) ≤ tau, ascending by
// distance then id, along with the filter statistics.
func (ix *Index) Search(q *hypergraph.Hypergraph, tau int) ([]Match, FilterStats, error) {
	if tau < 0 {
		return nil, FilterStats{}, fmt.Errorf("search: negative threshold %d", tau)
	}
	qs := signatureOf(q)
	stats := FilterStats{Candidates: len(ix.graphs)}
	sv := core.AcquireSolver()
	defer core.ReleaseSolver(sv)
	var out []Match
	for i, s := range ix.sigs {
		switch {
		case countFilter(qs, s) > tau:
			stats.PrunedByCount++
			continue
		case labelFilter(qs, s) > tau:
			stats.PrunedByLabel++
			continue
		case cardFilter(qs, s) > tau:
			stats.PrunedByCard++
			continue
		}
		stats.Verified++
		d, within := ix.verify(sv, q, ix.graphs[i], tau)
		if within {
			stats.VerifiedWithin++
			out = append(out, Match{ID: i, Distance: d})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].ID < out[b].ID
	})
	return out, stats, nil
}

// verify runs one exact check on the caller's solver; one solver serves all
// verifications of a query, keeping the search loop allocation-light.
func (ix *Index) verify(sv *core.Solver, q, g *hypergraph.Hypergraph, tau int) (int, bool) {
	if tau == 0 {
		if hypergraph.Isomorphic(q, g) {
			return 0, true
		}
		return 0, false
	}
	res := sv.BFS(q, g, core.Options{Threshold: tau, MaxExpansions: ix.MaxExpansions})
	if res.Exceeded {
		return 0, false
	}
	return res.Distance, true
}

// Nearest returns the k corpus members closest to q by HGED, ascending by
// distance then id. It expands candidates in lower-bound order and stops
// once the k-th best verified distance is no larger than the next
// candidate's bound — each verification runs under the current k-th-best
// threshold, so the search sharpens as it proceeds.
func (ix *Index) Nearest(q *hypergraph.Hypergraph, k int) ([]Match, FilterStats, error) {
	if k <= 0 {
		return nil, FilterStats{}, fmt.Errorf("search: k = %d, must be > 0", k)
	}
	qs := signatureOf(q)
	stats := FilterStats{Candidates: len(ix.graphs)}
	sv := core.AcquireSolver()
	defer core.ReleaseSolver(sv)

	type cand struct {
		id    int
		bound int
	}
	cands := make([]cand, len(ix.sigs))
	for i, s := range ix.sigs {
		cands[i] = cand{id: i, bound: combinedFilter(qs, s)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].bound != cands[b].bound {
			return cands[a].bound < cands[b].bound
		}
		return cands[a].id < cands[b].id
	})

	var best []Match // sorted ascending by distance, capped at k
	worst := func() int {
		if len(best) < k {
			return 1 << 30
		}
		return best[len(best)-1].Distance
	}
	for _, c := range cands {
		if c.bound > worst() {
			break // every later candidate has an even larger bound
		}
		tau := worst()
		var res core.Result
		if tau >= 1<<30 {
			res = sv.BFS(q, ix.graphs[c.id], core.Options{MaxExpansions: ix.MaxExpansions})
		} else {
			res = sv.BFS(q, ix.graphs[c.id], core.Options{Threshold: tau, MaxExpansions: ix.MaxExpansions})
		}
		stats.Verified++
		if res.Exceeded {
			continue
		}
		stats.VerifiedWithin++
		best = append(best, Match{ID: c.id, Distance: res.Distance})
		sort.Slice(best, func(a, b int) bool {
			if best[a].Distance != best[b].Distance {
				return best[a].Distance < best[b].Distance
			}
			return best[a].ID < best[b].ID
		})
		if len(best) > k {
			best = best[:k]
		}
	}
	return best, stats, nil
}
