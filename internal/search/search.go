// Package search implements hypergraph similarity search: given a corpus of
// hypergraphs and a query, find all corpus members within HGED ≤ τ (range
// search) or the k nearest (kNN). It follows the filtering-and-verification
// paradigm of the GED similarity-search literature the paper builds on
// (Sanfeliu & Fu; Zhao et al.; Chang et al. — refs [25], [27]–[30]):
// cheap per-graph signatures prune candidates with admissible lower bounds,
// and only survivors pay for an exact HGED-BFS verification. An attached
// pivot table (internal/pivot; BuildPivots) adds a metric filter on top:
// HGED is a true metric, so precomputed graph-to-pivot distances bracket
// every query distance by the triangle inequality — lower bounds above τ
// prune, and collapsed intervals admit matches, both without verification.
//
// Verification is embarrassingly parallel, so an Index can fan it out over
// a bounded pool of pooled solvers (Index.Parallelism). The engine is
// deterministic by construction: the candidate set and every verification
// threshold are fixed before workers start, workers write results into
// per-candidate slots, and the merge walks those slots in candidate order —
// so matches and FilterStats are byte-identical to the sequential scan. A
// cancelled context aborts the scan between (and, via core.Options.Context,
// inside) verifications with an error wrapping ctx.Err().
package search

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hged/internal/core"
	"hged/internal/hypergraph"
	"hged/internal/multiset"
	"hged/internal/pivot"
)

// signature is the per-graph filter summary: entity counts, dense label
// multisets, and the ascending hyperedge-cardinality list. Corpus
// signatures are views into the index's struct-of-arrays table (sigTable,
// returned by at); the query's is a standalone record from signatureOf.
type signature struct {
	n, m       int32
	incid      int32 // Σ|E|
	nodeLabels multiset.Sorted
	edgeLabels multiset.Sorted
	cards      []int32 // ascending
}

func signatureOf(g *hypergraph.Hypergraph) signature {
	c := g.Freeze()
	s := signature{
		n:          int32(c.NumNodes()),
		m:          int32(c.NumEdges()),
		incid:      int32(c.Incidences()),
		nodeLabels: multiset.SortedFromInterned(c.NodeLabelIDs(), c.Labels()),
		edgeLabels: multiset.SortedFromInterned(c.EdgeLabelIDs(), c.Labels()),
		cards:      make([]int32, c.NumEdges()),
	}
	for e := range s.cards {
		s.cards[e] = int32(c.Arity(hypergraph.EdgeID(e)))
	}
	sort.Slice(s.cards, func(i, j int) bool { return s.cards[i] < s.cards[j] })
	return s
}

// sigTable stores the corpus signatures in struct-of-arrays layout: the
// stride-1 count columns drive the batched count filter as one tight loop,
// and the variable-width parts — cardinality lists and label-multiset
// (label, multiplicity) pairs — live in shared arenas addressed by
// per-graph offset ranges. The filter pass therefore walks contiguous
// memory in corpus order instead of chasing a pointer-laden record per
// candidate, and a graph's signature view costs no allocation (at).
type sigTable struct {
	n, m, incid []int32 // stride-1 columns, one entry per corpus graph

	cardOff []int32 // len size+1; graph i's cards at cards[cardOff[i]:cardOff[i+1]]
	cards   []int32 // ascending within each graph's range

	nodeOff    []int32 // len size+1; ranges over the node-label pair arena
	nodeLabels []hypergraph.Label
	nodeCounts []int32

	edgeOff    []int32 // len size+1; ranges over the edge-label pair arena
	edgeLabels []hypergraph.Label
	edgeCounts []int32
}

func (t *sigTable) size() int { return len(t.n) }

func (t *sigTable) init(size int) {
	t.n = make([]int32, 0, size)
	t.m = make([]int32, 0, size)
	t.incid = make([]int32, 0, size)
	t.cardOff = append(make([]int32, 0, size+1), 0)
	t.nodeOff = append(make([]int32, 0, size+1), 0)
	t.edgeOff = append(make([]int32, 0, size+1), 0)
}

// push appends s as the next corpus row, copying its variable-width parts
// into the arenas.
func (t *sigTable) push(s signature) {
	t.n = append(t.n, s.n)
	t.m = append(t.m, s.m)
	t.incid = append(t.incid, s.incid)
	t.cards = append(t.cards, s.cards...)
	t.cardOff = append(t.cardOff, int32(len(t.cards)))
	t.nodeLabels = append(t.nodeLabels, s.nodeLabels.Labels...)
	t.nodeCounts = append(t.nodeCounts, s.nodeLabels.Counts...)
	t.nodeOff = append(t.nodeOff, int32(len(t.nodeCounts)))
	t.edgeLabels = append(t.edgeLabels, s.edgeLabels.Labels...)
	t.edgeCounts = append(t.edgeCounts, s.edgeLabels.Counts...)
	t.edgeOff = append(t.edgeOff, int32(len(t.edgeCounts)))
}

// at returns graph i's signature as a view aliasing the table's arenas.
func (t *sigTable) at(i int) signature {
	no0, no1 := t.nodeOff[i], t.nodeOff[i+1]
	eo0, eo1 := t.edgeOff[i], t.edgeOff[i+1]
	return signature{
		n:          t.n[i],
		m:          t.m[i],
		incid:      t.incid[i],
		nodeLabels: multiset.Sorted{Labels: t.nodeLabels[no0:no1], Counts: t.nodeCounts[no0:no1]},
		edgeLabels: multiset.Sorted{Labels: t.edgeLabels[eo0:eo1], Counts: t.edgeCounts[eo0:eo1]},
		cards:      t.cards[t.cardOff[i]:t.cardOff[i+1]],
	}
}

func absDiff(a, b int32) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

// countFilter is the coarsest bound: editing node and hyperedge counts
// costs at least their differences (each missing hyperedge additionally
// costs its cardinality, captured by the cardinality filter).
func countFilter(a, b signature) int {
	return absDiff(a.n, b.n) + absDiff(a.m, b.m)
}

// labelFilter is the Ψ bound of Definition 5 over both label multisets.
// The multiset sizes are the entity counts already in the signature, so
// only the intersection merge walks memory.
func labelFilter(a, b signature) int {
	return multiset.PsiSortedSized(a.nodeLabels, b.nodeLabels, int(a.n), int(b.n)) +
		multiset.PsiSortedSized(a.edgeLabels, b.edgeLabels, int(a.m), int(b.m))
}

// cardFilter is the Definition-6 cardinality bound plus the node-count
// difference (disjoint cost families).
func cardFilter(a, b signature) int {
	return absDiff(a.n, b.n) + multiset.CardinalityBoundSorted(a.cards, b.cards)
}

// combinedFilter is the full Strategy-3 bound: label Ψ plus cardinality
// bound (they charge disjoint operation families).
func combinedFilter(a, b signature) int {
	return labelFilter(a, b) + multiset.CardinalityBoundSorted(a.cards, b.cards)
}

// Index is a similarity-search index over a corpus of hypergraphs. Build
// once with Build; Search and Nearest may be called repeatedly. An
// attached pivot table (BuildPivots / AttachPivots) accelerates both with
// triangle-inequality bounds; without one, every query is the linear
// filter-and-verify scan.
type Index struct {
	graphs []*hypergraph.Hypergraph
	sigs   sigTable
	// pivots, when non-nil with at least one pivot, adds the
	// triangle-inequality candidate filter in front of verification.
	pivots *pivot.Index
	// MaxExpansions caps each verification search (0 = solver default).
	MaxExpansions int64
	// Parallelism is the number of verification workers, each with its own
	// pooled solver. Values ≤ 1 verify sequentially on one solver. Matches
	// and stats are identical at every setting; only wall-clock changes.
	Parallelism int
	// BoundTimer, when non-nil, wraps the query-to-pivot distance
	// computation of each pivoted query, so callers can record
	// bound-computation latency without the engine reading the wall clock
	// (solver code must stay a pure function of its inputs).
	BoundTimer func(compute func())
}

// Build indexes the corpus. The graphs are retained by reference (Build
// freezes each one's CSR view) and must not be mutated afterwards.
func Build(graphs []*hypergraph.Hypergraph) *Index {
	ix := &Index{graphs: graphs}
	ix.sigs.init(len(graphs))
	for _, g := range graphs {
		ix.sigs.push(signatureOf(g))
	}
	return ix
}

// BuildReusing indexes the corpus like Build, but copies the signature row
// for unchanged graphs out of a previous index instead of recomputing it:
// reuse[i] names the row of prev holding graph i's signature, or -1 to
// compute it fresh. Callers (the server's incremental refresh) map rows by
// (name, generation), so a reused row is guaranteed to describe the same
// frozen graph. Signatures are pure functions of the graph, so the result
// is byte-identical to a full Build; pivot tables are not carried — they
// bind to the whole corpus and must be re-attached or rebuilt.
func BuildReusing(graphs []*hypergraph.Hypergraph, prev *Index, reuse []int) *Index {
	if prev == nil || len(reuse) != len(graphs) {
		return Build(graphs)
	}
	ix := &Index{graphs: graphs}
	ix.sigs.init(len(graphs))
	for i, g := range graphs {
		if r := reuse[i]; r >= 0 && r < prev.sigs.size() {
			ix.sigs.push(prev.sigs.at(r))
		} else {
			ix.sigs.push(signatureOf(g))
		}
	}
	return ix
}

// Len returns the corpus size.
func (ix *Index) Len() int { return len(ix.graphs) }

// Graph returns corpus member i.
func (ix *Index) Graph(i int) *hypergraph.Hypergraph { return ix.graphs[i] }

// Match is one search result.
type Match struct {
	ID       int
	Distance int
}

// FilterStats reports how candidates were eliminated during one search.
// The fields partition the corpus: PrunedByCount + PrunedByLabel +
// PrunedByCard + PrunedByBound + PrunedByTriangle + AdmittedByUpperBound +
// Verified == Candidates.
type FilterStats struct {
	Candidates    int // corpus size
	PrunedByCount int
	PrunedByLabel int
	PrunedByCard  int
	// PrunedByBound counts kNN candidates never verified because their
	// combined lower bound already exceeded the k-th best verified
	// distance (the bound-ordered early stop). Always 0 in range search.
	PrunedByBound int
	// PrunedByTriangle counts candidates eliminated by the pivot index's
	// triangle-inequality lower bound: in range search because the bound
	// exceeded τ, in kNN because the bound-ordered early stop cut a
	// candidate whose triangle bound (not its signature bound) was the
	// binding constraint. Always 0 without an attached pivot index.
	PrunedByTriangle int
	// AdmittedByUpperBound counts matches accepted without verification
	// because the pivot bound interval collapsed (lower == upper pins the
	// exact distance) within the verification threshold — typically corpus
	// members that are pivots, or isomorphic to one.
	AdmittedByUpperBound int
	Verified             int // exact HGED verifications performed
	VerifiedWithin       int // verifications that ended ≤ τ
}

// unboundedTau is the sentinel kNN threshold while fewer than k candidates
// are verified (matches the solver's 1<<30 "no incumbent" convention).
const unboundedTau = 1 << 30

// sortMatches orders matches ascending by distance, ties by ascending ID.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Distance != ms[b].Distance {
			return ms[a].Distance < ms[b].Distance
		}
		return ms[a].ID < ms[b].ID
	})
}

// Search returns all corpus members g with HGED(q, g) ≤ tau, ascending by
// distance then id, along with the filter statistics.
func (ix *Index) Search(q *hypergraph.Hypergraph, tau int) ([]Match, FilterStats, error) {
	return ix.SearchContext(context.Background(), q, tau)
}

// SearchContext is Search with cancellation: when ctx is cancelled
// mid-scan it returns promptly with the stats gathered so far and an error
// wrapping ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, q *hypergraph.Hypergraph, tau int) ([]Match, FilterStats, error) {
	if tau < 0 {
		return nil, FilterStats{}, fmt.Errorf("search: negative threshold %d", tau)
	}
	qs := signatureOf(q)
	stats := FilterStats{Candidates: len(ix.graphs)}
	qd, err := ix.queryPivotDistances(ctx, q)
	if err != nil {
		return nil, stats, err
	}
	var admitted []Match
	t := &ix.sigs
	survivors := make([]int, 0, t.size())
	for i := 0; i < t.size(); i++ {
		// Batched cheap-bound pass: the count filter reads only the
		// stride-1 columns, so most candidates die without touching the
		// arenas; survivors' label and cardinality walks then run over
		// contiguous arena ranges.
		if absDiff(qs.n, t.n[i])+absDiff(qs.m, t.m[i]) > tau {
			stats.PrunedByCount++
			continue
		}
		s := t.at(i)
		switch {
		case labelFilter(qs, s) > tau:
			stats.PrunedByLabel++
		case cardFilter(qs, s) > tau:
			stats.PrunedByCard++
		default:
			if qd != nil {
				// Triangle bounds: a lower bound above τ proves a
				// non-match; a collapsed interval within τ pins the exact
				// distance and admits the match with no verification.
				if lb, ub, ok := ix.pivots.Bounds(qd, i); ok {
					if lb > tau {
						stats.PrunedByTriangle++
						continue
					}
					if lb == ub && ub <= tau {
						stats.AdmittedByUpperBound++
						admitted = append(admitted, Match{ID: i, Distance: ub})
						continue
					}
				}
			}
			survivors = append(survivors, i)
		}
	}

	type outcome struct {
		d      int
		within bool
	}
	results := make([]outcome, len(survivors))
	done, err := ix.forEach(ctx, len(survivors), func(sv *core.Solver, j int) {
		d, within := ix.verify(ctx, sv, q, ix.graphs[survivors[j]], tau)
		results[j] = outcome{d: d, within: within}
	})
	stats.Verified = done
	if err != nil {
		return nil, stats, fmt.Errorf("search: range scan aborted after %d/%d verifications: %w",
			done, len(survivors), err)
	}
	out := admitted
	for j, r := range results {
		if r.within {
			stats.VerifiedWithin++
			out = append(out, Match{ID: survivors[j], Distance: r.d})
		}
	}
	sortMatches(out)
	return out, stats, nil
}

// forEach runs n verification tasks, each on a pooled solver: sequentially
// when Parallelism ≤ 1, otherwise on min(Parallelism, n) workers pulling
// task indices from a shared counter. It reports how many tasks completed
// and a non-nil error when ctx was cancelled before all n ran. Tasks must
// write only state indexed by their own task number, so the caller's merge
// over those slots is deterministic regardless of scheduling.
func (ix *Index) forEach(ctx context.Context, n int, task func(sv *core.Solver, j int)) (int, error) {
	workers := ix.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sv := core.AcquireSolver()
		defer core.ReleaseSolver(sv)
		for j := 0; j < n; j++ {
			if ctx.Err() != nil {
				return j, ctx.Err()
			}
			task(sv, j)
		}
		return n, nil
	}
	var (
		next atomic.Int64
		done atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := core.AcquireSolver()
			defer core.ReleaseSolver(sv)
			for {
				j := int(next.Add(1) - 1)
				if j >= n || ctx.Err() != nil {
					return
				}
				task(sv, j)
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return int(done.Load()), err
	}
	return n, nil
}

// verify runs one exact check on the given solver. Each worker owns its
// solver for the duration of a search, keeping verification allocation-light.
func (ix *Index) verify(ctx context.Context, sv *core.Solver, q, g *hypergraph.Hypergraph, tau int) (int, bool) {
	if tau == 0 {
		if hypergraph.Isomorphic(q, g) {
			return 0, true
		}
		return 0, false
	}
	res := sv.BFS(q, g, core.Options{Threshold: tau, MaxExpansions: ix.MaxExpansions, Context: ctx})
	if res.Exceeded || res.Cancelled {
		return 0, false
	}
	return res.Distance, true
}

// nearestRound is how many candidates Nearest verifies per threshold
// round. The k-th-best threshold tightens only at round boundaries, so the
// set of (candidate, threshold) verifications — and therefore matches and
// stats, even when MaxExpansions caps a verification — is independent of
// Parallelism.
const nearestRound = 16

// Nearest returns the k corpus members closest to q by HGED, ascending by
// distance then id (equal distances resolve to the smaller ID). It expands
// candidates in lower-bound order (the combined signature bound, tightened
// by the triangle bound when a pivot table is attached), round by round:
// each round verifies up to nearestRound candidates under the k-th-best
// distance of the previous rounds (shared with the workers through an
// atomically tightening threshold) and stops once the next candidate's
// bound exceeds it; the skipped tail is reported as PrunedByBound, or
// PrunedByTriangle where the triangle bound was the binding constraint.
func (ix *Index) Nearest(q *hypergraph.Hypergraph, k int) ([]Match, FilterStats, error) {
	return ix.NearestContext(context.Background(), q, k)
}

// NearestContext is Nearest with cancellation: when ctx is cancelled
// mid-scan it returns promptly with the stats gathered so far and an error
// wrapping ctx.Err().
func (ix *Index) NearestContext(ctx context.Context, q *hypergraph.Hypergraph, k int) ([]Match, FilterStats, error) {
	if k <= 0 {
		return nil, FilterStats{}, fmt.Errorf("search: k = %d, must be > 0", k)
	}
	qs := signatureOf(q)
	stats := FilterStats{Candidates: len(ix.graphs)}
	qd, err := ix.queryPivotDistances(ctx, q)
	if err != nil {
		return nil, stats, err
	}

	type cand struct {
		id    int
		bound int
		// triangle records that the triangle lower bound (not the
		// signature bound) is the binding constraint, for prune
		// attribution; known pins the exact distance (collapsed interval).
		triangle bool
		known    bool
		dist     int
	}
	cands := make([]cand, ix.sigs.size())
	for i := range cands {
		c := cand{id: i, bound: combinedFilter(qs, ix.sigs.at(i))}
		if qd != nil {
			if lb, ub, ok := ix.pivots.Bounds(qd, i); ok {
				if lb > c.bound {
					c.bound, c.triangle = lb, true
				}
				if lb == ub {
					c.known, c.dist = true, ub
				}
			}
		}
		cands[i] = c
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].bound != cands[b].bound {
			return cands[a].bound < cands[b].bound
		}
		return cands[a].id < cands[b].id
	})

	var best []Match // sorted ascending by (distance, id), capped at k
	worst := func() int {
		if len(best) < k {
			return unboundedTau
		}
		return best[len(best)-1].Distance
	}
	// sharedTau carries the current verification threshold to the workers;
	// it only tightens, and only at round boundaries (while no worker
	// runs), so every verification of a round sees the same value.
	var sharedTau atomic.Int64
	sharedTau.Store(unboundedTau)

	pos := 0
	for pos < len(cands) {
		tau := worst()
		if cands[pos].bound > tau {
			break // every later candidate has an even larger bound
		}
		sharedTau.Store(int64(tau))
		// While best is underfilled every verification is unbounded, so
		// take exactly the candidates needed to reach k before starting to
		// tighten; afterwards tighten every nearestRound verifications.
		size := nearestRound
		if len(best) < k {
			size = k - len(best)
		}
		end := pos
		for end < len(cands) && end-pos < size && cands[end].bound <= tau {
			end++
		}
		base := pos
		roundKnown := 0
		for j := pos; j < end; j++ {
			if cands[j].known {
				roundKnown++
			}
		}
		results := make([]core.Result, end-pos)
		done, err := ix.forEach(ctx, end-pos, func(sv *core.Solver, j int) {
			c := cands[base+j]
			t := int(sharedTau.Load())
			if c.known {
				// The pivot bounds already pin the exact distance: no
				// solver run, same threshold semantics as a verification.
				results[j] = core.Result{Distance: c.dist, Exact: true, Exceeded: t < unboundedTau && c.dist > t}
				return
			}
			opts := core.Options{MaxExpansions: ix.MaxExpansions, Context: ctx}
			if t < unboundedTau {
				opts.Threshold = t
			}
			results[j] = sv.BFS(q, ix.graphs[c.id], opts)
		})
		if err != nil {
			// Partial round: admitted/verified attribution is unknowable
			// mid-flight, so fold everything into Verified for the report.
			stats.Verified += done
			return nil, stats, fmt.Errorf("search: kNN scan aborted after %d/%d candidates: %w",
				base+done, len(cands), err)
		}
		stats.Verified += (end - pos) - roundKnown
		stats.AdmittedByUpperBound += roundKnown
		for j := range results {
			if results[j].Exceeded {
				continue
			}
			if !cands[base+j].known {
				stats.VerifiedWithin++
			}
			best = append(best, Match{ID: cands[base+j].id, Distance: results[j].Distance})
			sortMatches(best)
			if len(best) > k {
				best = best[:k]
			}
		}
		pos = end
	}
	for _, c := range cands[pos:] {
		if c.triangle {
			stats.PrunedByTriangle++
		} else {
			stats.PrunedByBound++
		}
	}
	return best, stats, nil
}
