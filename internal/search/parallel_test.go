package search

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
)

// plantedCorpus is a seeded planted-community ego corpus: the deterministic
// workload the determinism contract is asserted on (run under -race in CI).
func plantedCorpus(t *testing.T) (corpus, queries []*hypergraph.Hypergraph) {
	t.Helper()
	host, _, err := gen.PlantedCommunities(gen.Config{
		Nodes: 40, Edges: 60, MeanEdgeSize: 3, NodeLabelCount: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < host.NumNodes(); v += 2 {
		corpus = append(corpus, host.Ego(hypergraph.NodeID(v)))
	}
	for _, v := range []hypergraph.NodeID{1, 7, 13} {
		queries = append(queries, host.Ego(v))
	}
	return corpus, queries
}

// The determinism contract: for every parallelism level, Search and Nearest
// return byte-identical matches AND stats to the sequential engine — also
// when MaxExpansions caps individual verifications.
func TestParallelSearchIsByteIdenticalToSequential(t *testing.T) {
	corpus, queries := plantedCorpus(t)
	seq := Build(corpus)
	seq.MaxExpansions = 10_000 // caps bind on some pairs, so capped runs are covered too
	levels := []int{2, 8}
	for qi, q := range queries {
		for _, tau := range []int{0, 3, 7} {
			wantM, wantS, err := seq.Search(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range levels {
				par := *seq
				par.Parallelism = p
				gotM, gotS, err := par.Search(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotM, wantM) || gotS != wantS {
					t.Fatalf("P=%d q=%d τ=%d: parallel range diverged\ngot  %v %+v\nwant %v %+v",
						p, qi, tau, gotM, gotS, wantM, wantS)
				}
			}
		}
		for _, k := range []int{1, 5} {
			wantM, wantS, err := seq.Nearest(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if wantS.PrunedByCount+wantS.PrunedByLabel+wantS.PrunedByCard+wantS.PrunedByBound+
				wantS.PrunedByTriangle+wantS.AdmittedByUpperBound+wantS.Verified != wantS.Candidates {
				t.Fatalf("q=%d k=%d: kNN stats don't add up: %+v", qi, k, wantS)
			}
			for _, p := range levels {
				par := *seq
				par.Parallelism = p
				gotM, gotS, err := par.Nearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotM, wantM) || gotS != wantS {
					t.Fatalf("P=%d q=%d k=%d: parallel kNN diverged\ngot  %v %+v\nwant %v %+v",
						p, qi, k, gotM, gotS, wantM, wantS)
				}
			}
		}
	}
}

// Equal-distance candidates at the k boundary resolve by ascending ID: six
// identical corpus members tie at distance 0 and the cut keeps the lowest
// IDs, at every parallelism level.
func TestNearestTieBreakByAscendingID(t *testing.T) {
	base := gen.Uniform(5, 3, 3, 2, 2, 42)
	var corpus []*hypergraph.Hypergraph
	for i := 0; i < 6; i++ {
		corpus = append(corpus, base)
	}
	for i := 0; i < 4; i++ {
		corpus = append(corpus, gen.Uniform(8, 5, 3, 2, 2, int64(100+i)))
	}
	for _, p := range []int{0, 4} {
		ix := Build(corpus)
		ix.Parallelism = p
		for _, k := range []int{1, 3, 5} {
			got, _, err := ix.Nearest(base, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k {
				t.Fatalf("P=%d k=%d: got %d matches", p, k, len(got))
			}
			for i, m := range got {
				if m.ID != i || m.Distance != 0 {
					t.Fatalf("P=%d k=%d: match %d = %+v, want {ID:%d Distance:0}", p, k, i, m, i)
				}
			}
		}
	}
}

// countdownCtx reports cancellation after a fixed number of Err() polls —
// a deterministic stand-in for a context cancelled mid-scan. Done() is
// inherited from Background (never closes); the engine only polls Err().
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestSearchCancelledBeforeStart(t *testing.T) {
	corpus, queries := plantedCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{0, 4} {
		ix := Build(corpus)
		ix.Parallelism = p
		ms, stats, err := ix.SearchContext(ctx, queries[0], 5)
		if !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d range: err = %v, matches = %v", p, err, ms)
		}
		if stats.Verified != 0 {
			t.Fatalf("P=%d range: verified %d after pre-cancelled context", p, stats.Verified)
		}
		if ms, _, err = ix.NearestContext(ctx, queries[0], 3); !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d kNN: err = %v, matches = %v", p, err, ms)
		}
	}
}

// Cancellation mid-scan returns a partial-scan error promptly instead of
// running the corpus to completion.
func TestSearchCancelledMidScan(t *testing.T) {
	corpus, queries := plantedCorpus(t)
	for _, p := range []int{0, 4} {
		ix := Build(corpus)
		ix.Parallelism = p
		ms, stats, err := ix.SearchContext(newCountdownCtx(3), queries[0], 50)
		if !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d range: err = %v, matches = %v", p, err, ms)
		}
		if stats.Verified == 0 || stats.Verified >= stats.Candidates {
			t.Fatalf("P=%d range: want a partial scan, got stats %+v", p, stats)
		}
		ms, stats, err = ix.NearestContext(newCountdownCtx(3), queries[0], 5)
		if !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d kNN: err = %v, matches = %v", p, err, ms)
		}
		if stats.Verified >= stats.Candidates {
			t.Fatalf("P=%d kNN: want a partial scan, got stats %+v", p, stats)
		}
	}
}
