package search

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hged/internal/gen"
)

// TestSnapshotRoundTrip restores an index from its own snapshot and checks
// that matches and FilterStats for range and kNN queries are identical to
// the original, with and without an attached pivot table.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, pivots := range []int{0, 4} {
		graphs := corpus(36, 17)
		ix := Build(graphs)
		if pivots > 0 {
			if _, err := ix.BuildPivots(context.Background(), pivots); err != nil {
				t.Fatal(err)
			}
		}
		re, err := FromSnapshot(graphs, ix.Snapshot())
		if err != nil {
			t.Fatalf("pivots=%d: FromSnapshot: %v", pivots, err)
		}
		if (re.Pivots() == nil) != (pivots == 0) {
			t.Fatalf("pivots=%d: restored pivot table presence wrong", pivots)
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 6; trial++ {
			q := gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
			tau := rng.Intn(7)
			m1, s1, err1 := ix.Search(q, tau)
			m2, s2, err2 := re.Search(q, tau)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if fmt.Sprint(m1) != fmt.Sprint(m2) || s1 != s2 {
				t.Fatalf("pivots=%d trial %d: range diverged\n%v %+v\n%v %+v", pivots, trial, m1, s1, m2, s2)
			}
			k := 1 + rng.Intn(5)
			m1, s1, err1 = ix.Nearest(q, k)
			m2, s2, err2 = re.Nearest(q, k)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if fmt.Sprint(m1) != fmt.Sprint(m2) || s1 != s2 {
				t.Fatalf("pivots=%d trial %d: kNN diverged\n%v %+v\n%v %+v", pivots, trial, m1, s1, m2, s2)
			}
		}
		if fmt.Sprint(ix.SignatureDigests()) != fmt.Sprint(re.SignatureDigests()) {
			t.Fatalf("pivots=%d: digests diverged", pivots)
		}
	}
}

// TestFromSnapshotRejects checks that corpus mismatches and inconsistent
// tables are refused rather than installed.
func TestFromSnapshotRejects(t *testing.T) {
	graphs := corpus(12, 5)
	ix := Build(graphs)
	s := ix.Snapshot()

	if _, err := FromSnapshot(graphs[:11], s); err == nil {
		t.Error("accepted snapshot over a shorter corpus")
	}
	other := corpus(12, 6)
	if _, err := FromSnapshot(other, s); err == nil {
		t.Error("accepted snapshot against a different corpus")
	}

	tamper := *s
	tamper.Digests = append([]uint64(nil), s.Digests...)
	tamper.Digests[3] ^= 1
	if _, err := FromSnapshot(graphs, &tamper); err == nil {
		t.Error("accepted snapshot with a tampered digest")
	}

	tamper = *s
	tamper.Incid = append([]int32(nil), s.Incid...)
	tamper.Incid[0]++
	if _, err := FromSnapshot(graphs, &tamper); err == nil {
		t.Error("accepted snapshot with an inconsistent incid column")
	}

	tamper = *s
	tamper.CardOff = append([]int32(nil), s.CardOff...)
	tamper.CardOff[1] = -1
	if _, err := FromSnapshot(graphs, &tamper); err == nil {
		t.Error("accepted snapshot with decreasing offsets")
	}
}
