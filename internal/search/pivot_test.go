package search

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hged/internal/gen"
	"hged/internal/hypergraph"
	"hged/internal/pivot"
)

// buildCapped builds an index with the same expansion cap the parallel
// determinism test uses: caps bind on some planted-ego pairs, so capped
// behavior (unknown pivot distances, bounded verifications) is covered.
func buildCapped(graphs []*hypergraph.Hypergraph) *Index {
	ix := Build(graphs)
	ix.MaxExpansions = 10_000
	return ix
}

// checkPartition asserts the FilterStats partition invariant:
// count+label+card+bound+triangle+admitted+verified == candidates.
func checkPartition(t *testing.T, ctx string, s FilterStats) {
	t.Helper()
	if s.PrunedByCount+s.PrunedByLabel+s.PrunedByCard+s.PrunedByBound+
		s.PrunedByTriangle+s.AdmittedByUpperBound+s.Verified != s.Candidates {
		t.Fatalf("%s: stats don't partition candidates: %+v", ctx, s)
	}
}

// The pivoted correctness gate: at every pivot count (including 0, the
// degenerate linear scan) and every parallelism level, range and kNN
// matches are byte-identical to the sequential unpivoted scan, and the
// extended FilterStats partition holds. Run under -race in CI.
func TestPivotedSearchIsByteIdenticalToSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy determinism matrix; the dedicated CI race gate runs it un-short")
	}
	corpusGraphs, queries := plantedCorpus(t)
	seq := buildCapped(corpusGraphs)
	levels := []int{1, 4, runtime.NumCPU()}
	for _, pivots := range []int{0, 1, 8} {
		piv := buildCapped(corpusGraphs)
		if _, err := piv.BuildPivots(context.Background(), pivots); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			for _, tau := range []int{0, 3, 7} {
				wantM, wantS, err := seq.Search(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range levels {
					ix := *piv
					ix.Parallelism = p
					gotM, gotS, err := ix.Search(q, tau)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotM, wantM) {
						t.Fatalf("pivots=%d P=%d q=%d τ=%d: range diverged\ngot  %v\nwant %v",
							pivots, p, qi, tau, gotM, wantM)
					}
					checkPartition(t, "range", gotS)
					if pivots == 0 && gotS != wantS {
						t.Fatalf("pivots=0 must degenerate to the linear scan: got %+v want %+v", gotS, wantS)
					}
				}
			}
			for _, k := range []int{1, 5} {
				wantM, wantS, err := seq.Nearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range levels {
					ix := *piv
					ix.Parallelism = p
					gotM, gotS, err := ix.Nearest(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotM, wantM) {
						t.Fatalf("pivots=%d P=%d q=%d k=%d: kNN diverged\ngot  %v\nwant %v",
							pivots, p, qi, k, gotM, wantM)
					}
					checkPartition(t, "kNN", gotS)
					if pivots == 0 && gotS != wantS {
						t.Fatalf("pivots=0 must degenerate to the linear scan: got %+v want %+v", gotS, wantS)
					}
				}
			}
		}
	}
}

// Builds are byte-reproducible: the same corpus yields the same pivots and
// the same distance matrix at any parallelism, and the stats of a pivoted
// query are independent of the worker count.
func TestPivotBuildIsReproducibleAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy determinism matrix; the dedicated CI race gate runs it un-short")
	}
	corpusGraphs, queries := plantedCorpus(t)
	var tables []*pivot.Index
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		ix := buildCapped(corpusGraphs)
		ix.Parallelism = p
		pv, err := ix.BuildPivots(context.Background(), 8)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, pv)
	}
	for i := 1; i < len(tables); i++ {
		if !reflect.DeepEqual(tables[0].PivotIDs(), tables[i].PivotIDs()) {
			t.Fatalf("pivot selection diverged across parallelism: %v vs %v",
				tables[0].PivotIDs(), tables[i].PivotIDs())
		}
		for p := 0; p < tables[0].K(); p++ {
			if !reflect.DeepEqual(tables[0].Distances(p), tables[i].Distances(p)) {
				t.Fatalf("distance column %d diverged across parallelism", p)
			}
		}
	}
	// Stats must also be parallelism-independent for a fixed pivot table.
	ix := buildCapped(corpusGraphs)
	if err := ix.AttachPivots(tables[0], nil); err != nil {
		t.Fatal(err)
	}
	_, wantS, err := ix.Search(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, runtime.NumCPU()} {
		par := *ix
		par.Parallelism = p
		_, gotS, err := par.Search(queries[0], 5)
		if err != nil {
			t.Fatal(err)
		}
		if gotS != wantS {
			t.Fatalf("P=%d: pivoted stats diverged: got %+v want %+v", p, gotS, wantS)
		}
	}
}

// In the exact regime (small uniform graphs, no cap binding, fully-known
// pivot table) the triangle filter genuinely prunes and admits, and the
// results stay byte-identical to the sequential unpivoted scan — the
// capped planted-corpus gate above mostly exercises the Unknown-entry
// degradation path, so this one covers the bounds actually firing.
func TestPivotedSearchIsByteIdenticalExactRegime(t *testing.T) {
	graphs := corpus(40, 11)
	seq := Build(graphs)
	var tot FilterStats
	for _, pivots := range []int{1, 8} {
		piv := Build(graphs)
		if _, err := piv.BuildPivots(context.Background(), pivots); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 8; trial++ {
			q := gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
			tau := 1 + rng.Intn(7)
			wantM, _, err := seq.Search(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			wantK, _, err := seq.Nearest(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 4} {
				ix := *piv
				ix.Parallelism = p
				gotM, st, err := ix.Search(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotM, wantM) {
					t.Fatalf("pivots=%d P=%d trial=%d τ=%d: range diverged\ngot  %v\nwant %v",
						pivots, p, trial, tau, gotM, wantM)
				}
				checkPartition(t, "range", st)
				gotK, kst, err := ix.Nearest(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotK, wantK) {
					t.Fatalf("pivots=%d P=%d trial=%d: kNN diverged\ngot  %v\nwant %v",
						pivots, p, trial, gotK, wantK)
				}
				checkPartition(t, "kNN", kst)
				tot.PrunedByTriangle += st.PrunedByTriangle + kst.PrunedByTriangle
				tot.AdmittedByUpperBound += st.AdmittedByUpperBound + kst.AdmittedByUpperBound
			}
		}
	}
	if tot.PrunedByTriangle == 0 {
		t.Fatal("triangle bound never pruned across the exact-regime workload")
	}
	if tot.AdmittedByUpperBound == 0 {
		t.Fatal("upper bound never admitted across the exact-regime workload")
	}
}

// A query that is itself a pivot collapses its bound interval (d to that
// pivot is 0 on the corpus side), so it must be admitted without
// verification in both range and kNN search.
func TestPivotedSearchAdmitsPivotQueries(t *testing.T) {
	graphs := corpus(40, 11)
	ix := Build(graphs)
	pv, err := ix.BuildPivots(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	q := graphs[pv.PivotID(0)]
	matches, stats, err := ix.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdmittedByUpperBound == 0 {
		t.Fatalf("searching for a pivot graph must admit it without verification: %+v", stats)
	}
	found := false
	for _, m := range matches {
		if m.ID == pv.PivotID(0) && m.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pivot graph missing from its own search: %v", matches)
	}
	_, kst, err := ix.Nearest(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kst.AdmittedByUpperBound == 0 {
		t.Fatalf("kNN from a pivot graph must admit it without verification: %+v", kst)
	}
	checkPartition(t, "kNN", kst)
}

// AttachPivots rejects tables that don't match the corpus.
func TestAttachPivotsValidation(t *testing.T) {
	corpusGraphs, _ := plantedCorpus(t)
	ix := buildCapped(corpusGraphs)
	pv, err := ix.BuildPivots(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	short := buildCapped(corpusGraphs[:len(corpusGraphs)-1])
	if err := short.AttachPivots(pv, nil); err == nil {
		t.Fatal("a table over a different corpus size must be rejected")
	}
	other := buildCapped(append([]*hypergraph.Hypergraph{corpusGraphs[1]}, corpusGraphs[1:]...))
	if err := other.AttachPivots(pv, ix.SignatureDigests()); err == nil {
		t.Fatal("mismatched signature digests must be rejected")
	}
	if err := ix.AttachPivots(pv, ix.SignatureDigests()); err != nil {
		t.Fatalf("matching digests must attach: %v", err)
	}
	if err := ix.AttachPivots(nil, nil); err != nil || ix.Pivots() != nil {
		t.Fatalf("nil table must detach: err=%v pivots=%v", err, ix.Pivots())
	}
}

// Digests are order-sensitive and content-sensitive.
func TestSignatureDigests(t *testing.T) {
	corpusGraphs, _ := plantedCorpus(t)
	a := buildCapped(corpusGraphs).SignatureDigests()
	b := buildCapped(corpusGraphs).SignatureDigests()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("digests must be deterministic")
	}
	seen := map[uint64]int{}
	for _, d := range a {
		seen[d]++
	}
	if len(seen) < 2 {
		t.Fatal("digests of distinct graphs should differ")
	}
}

// Index builds honor cancellation: a pre-cancelled context aborts before
// any distance is computed, and a mid-build cancellation returns promptly
// with an error wrapping ctx.Err() and leaves no pivot table attached
// (pooled solvers are released on every path; run under -race in CI).
func TestBuildPivotsCancelled(t *testing.T) {
	corpusGraphs, _ := plantedCorpus(t)
	for _, p := range []int{0, 4} {
		ix := buildCapped(corpusGraphs)
		ix.Parallelism = p
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ix.BuildPivots(ctx, 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: pre-cancelled build: err = %v", p, err)
		}
		if ix.Pivots() != nil {
			t.Fatalf("P=%d: aborted build left a partial table attached", p)
		}
		if _, err := ix.BuildPivots(newCountdownCtx(3), 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("P=%d: mid-build cancellation: err = %v", p, err)
		}
		if ix.Pivots() != nil {
			t.Fatalf("P=%d: mid-build cancellation left a partial table attached", p)
		}
	}
}

// Pivoted queries honor cancellation during the bound-computation stage.
func TestPivotedSearchCancelledDuringBounds(t *testing.T) {
	corpusGraphs, queries := plantedCorpus(t)
	for _, p := range []int{0, 4} {
		ix := buildCapped(corpusGraphs)
		ix.Parallelism = p
		if _, err := ix.BuildPivots(context.Background(), 8); err != nil {
			t.Fatal(err)
		}
		ms, stats, err := ix.SearchContext(newCountdownCtx(2), queries[0], 5)
		if !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d range: err = %v, matches = %v", p, err, ms)
		}
		if stats.Verified != 0 {
			t.Fatalf("P=%d range: cancelled during bounds but verified %d", p, stats.Verified)
		}
		if ms, _, err = ix.NearestContext(newCountdownCtx(2), queries[0], 3); !errors.Is(err, context.Canceled) || ms != nil {
			t.Fatalf("P=%d kNN: err = %v, matches = %v", p, err, ms)
		}
	}
}

// BoundTimer wraps exactly the bound-computation stage of pivoted queries
// and never fires for unpivoted ones.
func TestBoundTimerObservesPivotedQueries(t *testing.T) {
	corpusGraphs, queries := plantedCorpus(t)
	ix := buildCapped(corpusGraphs)
	calls := 0
	ix.BoundTimer = func(compute func()) { calls++; compute() }
	if _, _, err := ix.Search(queries[0], 3); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("BoundTimer fired %d times without a pivot table", calls)
	}
	if _, err := ix.BuildPivots(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(queries[0], 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Nearest(queries[0], 2); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("BoundTimer fired %d times, want 2 (one per pivoted query)", calls)
	}
}
