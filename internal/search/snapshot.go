package search

import (
	"fmt"

	"hged/internal/hypergraph"
	"hged/internal/pivot"
)

// Snapshot is the persistable state of an Index minus the graphs
// themselves: the signature table's stride-1 columns and arenas exactly as
// they sit in memory, the per-graph signature digests, and the attached
// pivot table (nil when none). hgio serializes it into the combined corpus
// snapshot (.hgx); FromSnapshot restores an Index from it without
// recomputing a single signature.
//
// All slices alias the index that produced them — treat a Snapshot as
// read-only.
type Snapshot struct {
	// Stride-1 per-graph columns (len = corpus size).
	N, M, Incid []int32
	// Cardinality arena: graph i's ascending hyperedge cardinalities are
	// Cards[CardOff[i]:CardOff[i+1]] (CardOff has corpus size + 1 entries).
	CardOff, Cards []int32
	// Node-label multiset arena: ascending (label, multiplicity) pairs per
	// graph, addressed like Cards.
	NodeOff    []int32
	NodeLabels []hypergraph.Label
	NodeCounts []int32
	// Hyperedge-label multiset arena, same shape.
	EdgeOff    []int32
	EdgeLabels []hypergraph.Label
	EdgeCounts []int32
	// Digests fingerprints each graph's signature (see SignatureDigests).
	Digests []uint64
	// Pivots is the attached pivot table, or nil.
	Pivots *pivot.Index
}

// Snapshot dumps the index's signature table, digests, and pivot table as
// views into the live index (no copies — the caller must not mutate them).
func (ix *Index) Snapshot() *Snapshot {
	t := &ix.sigs
	return &Snapshot{
		N: t.n, M: t.m, Incid: t.incid,
		CardOff: t.cardOff, Cards: t.cards,
		NodeOff: t.nodeOff, NodeLabels: t.nodeLabels, NodeCounts: t.nodeCounts,
		EdgeOff: t.edgeOff, EdgeLabels: t.edgeLabels, EdgeCounts: t.edgeCounts,
		Digests: ix.SignatureDigests(),
		Pivots:  ix.pivots,
	}
}

// FromSnapshot restores an Index over graphs from a snapshot, skipping the
// signature computation Build would perform. The restored table is
// validated structurally (offset shapes, ascending label multisets), its
// stride-1 columns are cross-checked against each graph's actual entity
// counts, and the recomputed digests must equal s.Digests — so a snapshot
// restored against the wrong corpus, or an internally inconsistent one, is
// rejected rather than silently mis-pruning. A non-empty s.Pivots is
// attached under the same digest binding AttachPivots enforces.
//
// The snapshot's slices are retained by the returned index; neither may be
// mutated afterwards. Graphs loaded frozen-first (hgio.ReadBinary) keep
// their zero-rebuild property: no call here freezes or thaws anything that
// was not already frozen.
func FromSnapshot(graphs []*hypergraph.Hypergraph, s *Snapshot) (*Index, error) {
	size := len(graphs)
	if len(s.N) != size || len(s.M) != size || len(s.Incid) != size || len(s.Digests) != size {
		return nil, fmt.Errorf("search: snapshot covers %d/%d/%d graphs (%d digests), corpus has %d",
			len(s.N), len(s.M), len(s.Incid), len(s.Digests), size)
	}
	checkOffsets := func(name string, off []int32, arena int) error {
		if len(off) != size+1 {
			return fmt.Errorf("search: snapshot %s offsets have %d entries, want %d", name, len(off), size+1)
		}
		if off[0] != 0 || int(off[size]) != arena {
			return fmt.Errorf("search: snapshot %s offsets span [%d,%d], want [0,%d]", name, off[0], off[size], arena)
		}
		for i := 0; i < size; i++ {
			if off[i+1] < off[i] {
				return fmt.Errorf("search: snapshot %s offsets decrease at %d", name, i)
			}
		}
		return nil
	}
	if err := checkOffsets("cardinality", s.CardOff, len(s.Cards)); err != nil {
		return nil, err
	}
	if err := checkOffsets("node-label", s.NodeOff, len(s.NodeLabels)); err != nil {
		return nil, err
	}
	if err := checkOffsets("edge-label", s.EdgeOff, len(s.EdgeLabels)); err != nil {
		return nil, err
	}
	if len(s.NodeCounts) != len(s.NodeLabels) || len(s.EdgeCounts) != len(s.EdgeLabels) {
		return nil, fmt.Errorf("search: snapshot label/count arena lengths disagree (%d/%d node, %d/%d edge)",
			len(s.NodeLabels), len(s.NodeCounts), len(s.EdgeLabels), len(s.EdgeCounts))
	}
	checkMultisets := func(name string, off []int32, labels []hypergraph.Label, counts []int32) error {
		for i := 0; i < size; i++ {
			for j := off[i]; j < off[i+1]; j++ {
				if counts[j] <= 0 {
					return fmt.Errorf("search: snapshot graph %d %s multiset has multiplicity %d", i, name, counts[j])
				}
				if j > off[i] && labels[j] <= labels[j-1] {
					return fmt.Errorf("search: snapshot graph %d %s multiset labels not strictly ascending", i, name)
				}
			}
		}
		return nil
	}
	if err := checkMultisets("node-label", s.NodeOff, s.NodeLabels, s.NodeCounts); err != nil {
		return nil, err
	}
	if err := checkMultisets("edge-label", s.EdgeOff, s.EdgeLabels, s.EdgeCounts); err != nil {
		return nil, err
	}
	for i := 0; i < size; i++ {
		for j := s.CardOff[i]; j < s.CardOff[i+1]; j++ {
			if s.Cards[j] < 0 || (j > s.CardOff[i] && s.Cards[j] < s.Cards[j-1]) {
				return nil, fmt.Errorf("search: snapshot graph %d cardinalities not ascending/non-negative", i)
			}
		}
	}
	for i, g := range graphs {
		if int(s.N[i]) != g.NumNodes() || int(s.M[i]) != g.NumEdges() {
			return nil, fmt.Errorf("search: snapshot graph %d records n=%d m=%d, graph has n=%d m=%d",
				i, s.N[i], s.M[i], g.NumNodes(), g.NumEdges())
		}
		if int(s.CardOff[i+1]-s.CardOff[i]) != g.NumEdges() {
			return nil, fmt.Errorf("search: snapshot graph %d has %d cardinalities for %d hyperedges",
				i, s.CardOff[i+1]-s.CardOff[i], g.NumEdges())
		}
		sum := int32(0)
		for j := s.CardOff[i]; j < s.CardOff[i+1]; j++ {
			sum += s.Cards[j]
		}
		if sum != s.Incid[i] {
			return nil, fmt.Errorf("search: snapshot graph %d cardinalities sum to %d, incid column says %d", i, sum, s.Incid[i])
		}
	}
	ix := &Index{graphs: graphs, sigs: sigTable{
		n: s.N, m: s.M, incid: s.Incid,
		cardOff: s.CardOff, cards: s.Cards,
		nodeOff: s.NodeOff, nodeLabels: s.NodeLabels, nodeCounts: s.NodeCounts,
		edgeOff: s.EdgeOff, edgeLabels: s.EdgeLabels, edgeCounts: s.EdgeCounts,
	}}
	for i, want := range s.Digests {
		if got := ix.sigs.at(i).digest(); got != want {
			return nil, fmt.Errorf("search: snapshot graph %d signature digest mismatch (stored %016x, recomputed %016x)", i, want, got)
		}
	}
	if s.Pivots != nil && s.Pivots.K() > 0 {
		if err := ix.AttachPivots(s.Pivots, s.Digests); err != nil {
			return nil, err
		}
	}
	return ix, nil
}
