package search

import (
	"math/rand"
	"sort"
	"testing"

	"hged/internal/core"
	"hged/internal/gen"
	"hged/internal/hypergraph"
)

// corpus builds a deterministic mixed corpus of small hypergraphs.
func corpus(size int, seed int64) []*hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*hypergraph.Hypergraph, size)
	for i := range graphs {
		graphs[i] = gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
	}
	return graphs
}

func TestSearchMatchesBruteForce(t *testing.T) {
	graphs := corpus(40, 11)
	ix := Build(graphs)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		q := gen.Uniform(3+rng.Intn(4), rng.Intn(4), 3, 3, 2, rng.Int63()+1)
		tau := rng.Intn(8)
		got, stats, err := ix.Search(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		var want []Match
		for i, g := range graphs {
			if d, ok := core.DistanceWithin(q, g, tau); ok {
				want = append(want, Match{ID: i, Distance: d})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].Distance != want[b].Distance {
				return want[a].Distance < want[b].Distance
			}
			return want[a].ID < want[b].ID
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (τ=%d): got %d matches, want %d\ngot  %v\nwant %v",
				trial, tau, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: match %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
		if stats.PrunedByCount+stats.PrunedByLabel+stats.PrunedByCard+stats.PrunedByBound+
			stats.PrunedByTriangle+stats.AdmittedByUpperBound+stats.Verified != stats.Candidates {
			t.Fatalf("trial %d: stats don't add up: %+v", trial, stats)
		}
		if stats.PrunedByBound != 0 {
			t.Fatalf("trial %d: range search must not bound-prune: %+v", trial, stats)
		}
	}
}

func TestSearchFiltersPrune(t *testing.T) {
	graphs := corpus(60, 17)
	ix := Build(graphs)
	q := gen.Uniform(4, 2, 3, 3, 2, 999)
	_, stats, err := ix.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verified == stats.Candidates {
		t.Fatalf("filters pruned nothing at τ=2: %+v", stats)
	}
}

func TestSearchSelfIsZeroDistanceMatch(t *testing.T) {
	graphs := corpus(10, 23)
	ix := Build(graphs)
	matches, _, err := ix.Search(graphs[4], 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == 4 && m.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("self search must return the graph itself: %v", matches)
	}
}

func TestSearchNegativeTau(t *testing.T) {
	ix := Build(corpus(3, 29))
	if _, _, err := ix.Search(hypergraph.New(1), -1); err == nil {
		t.Fatal("negative τ must error")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	graphs := corpus(30, 31)
	ix := Build(graphs)
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 6; trial++ {
		q := gen.Uniform(3+rng.Intn(3), rng.Intn(3), 3, 3, 2, rng.Int63()+1)
		k := 1 + rng.Intn(5)
		got, stats, err := ix.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PrunedByCount+stats.PrunedByLabel+stats.PrunedByCard+stats.PrunedByBound+
			stats.PrunedByTriangle+stats.AdmittedByUpperBound+stats.Verified != stats.Candidates {
			t.Fatalf("trial %d: kNN stats don't add up: %+v", trial, stats)
		}
		// Brute-force k smallest distances (ties arbitrary → compare the
		// distance multiset only).
		dists := make([]int, len(graphs))
		for i, g := range graphs {
			dists[i] = core.Distance(q, g)
		}
		sort.Ints(dists)
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].Distance != dists[i] {
				t.Fatalf("trial %d: result %d distance %d, want %d (%v vs %v)",
					trial, i, got[i].Distance, dists[i], got, dists[:k])
			}
		}
		// Verify the reported distances are genuine.
		for _, m := range got {
			if d := core.Distance(q, graphs[m.ID]); d != m.Distance {
				t.Fatalf("trial %d: reported %d but true distance %d", trial, m.Distance, d)
			}
		}
	}
}

func TestNearestKLargerThanCorpus(t *testing.T) {
	graphs := corpus(4, 41)
	ix := Build(graphs)
	got, _, err := ix.Nearest(graphs[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results, want the whole corpus", len(got))
	}
}

func TestNearestInvalidK(t *testing.T) {
	ix := Build(corpus(3, 43))
	if _, _, err := ix.Nearest(hypergraph.New(1), 0); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestIndexAccessors(t *testing.T) {
	graphs := corpus(5, 47)
	ix := Build(graphs)
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.Graph(2) != graphs[2] {
		t.Fatal("Graph accessor broken")
	}
}
