package search

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"hged/internal/core"
	"hged/internal/hypergraph"
	"hged/internal/multiset"
	"hged/internal/pivot"
)

// BuildPivots selects k pivots by deterministic farthest-first traversal
// (seeded at corpus index 0, ties broken toward the lowest index) and
// precomputes the exact HGED from every corpus graph to each pivot on the
// index's verification pool (Parallelism workers, pooled solvers). The
// resulting table is attached to the index and returned, so it can also be
// persisted (hgio.WritePivotSnapshot) and re-attached elsewhere.
//
// k is clamped to the corpus size; k = 0 detaches any pivot table, and the
// index degrades to the plain linear filter-and-verify scan. Distances the
// solver cannot pin exactly under MaxExpansions are recorded as unknown
// and simply never prune, so a capped build stays sound. A cancelled ctx
// aborts the build with an error wrapping ctx.Err(); no partial table is
// attached.
func (ix *Index) BuildPivots(ctx context.Context, k int) (*pivot.Index, error) {
	if k < 0 {
		return nil, fmt.Errorf("search: negative pivot count %d", k)
	}
	if k > len(ix.graphs) {
		k = len(ix.graphs)
	}
	if k == 0 {
		ix.pivots = nil
		return pivot.NewBuilder(len(ix.graphs)).Index(), nil
	}
	b := pivot.NewBuilder(len(ix.graphs))
	for t := 0; t < k; t++ {
		id, ok := b.Next()
		if !ok {
			break
		}
		pg := ix.graphs[id]
		col := make([]int32, len(ix.graphs))
		done, err := ix.forEach(ctx, len(ix.graphs), func(sv *core.Solver, j int) {
			col[j] = ix.exactDistance(ctx, sv, ix.graphs[j], pg)
		})
		if err != nil {
			return nil, fmt.Errorf("search: pivot build aborted at pivot %d/%d after %d/%d distances: %w",
				t, k, done, len(ix.graphs), err)
		}
		b.Add(id, col)
	}
	pv := b.Index()
	ix.pivots = pv
	return pv, nil
}

// AttachPivots installs a previously built pivot table (typically loaded
// from a snapshot). When digests is non-nil it must equal
// SignatureDigests() entry for entry — the proof the table was built over
// this exact corpus — otherwise the table is rejected and the index left
// unchanged. A nil table detaches.
func (ix *Index) AttachPivots(pv *pivot.Index, digests []uint64) error {
	if pv == nil {
		ix.pivots = nil
		return nil
	}
	if pv.Len() != len(ix.graphs) {
		return fmt.Errorf("search: pivot table covers %d graphs, corpus has %d", pv.Len(), len(ix.graphs))
	}
	if digests != nil {
		own := ix.SignatureDigests()
		if len(digests) != len(own) {
			return fmt.Errorf("search: snapshot carries %d signatures, corpus has %d", len(digests), len(own))
		}
		for i := range own {
			if digests[i] != own[i] {
				return fmt.Errorf("search: snapshot signature %d does not match the corpus (index built for a different corpus?)", i)
			}
		}
	}
	ix.pivots = pv
	return nil
}

// Pivots returns the attached pivot table, or nil.
func (ix *Index) Pivots() *pivot.Index { return ix.pivots }

// SignatureDigests fingerprints every corpus graph's filter signature
// (FNV-1a over a canonical encoding of counts, cardinalities and label
// multisets). Snapshots persist these so a loaded pivot table can be
// bound to the corpus it was built over.
func (ix *Index) SignatureDigests() []uint64 {
	out := make([]uint64, ix.sigs.size())
	for i := range out {
		out[i] = ix.sigs.at(i).digest()
	}
	return out
}

// digest canonically encodes the signature into an FNV-1a fingerprint.
func (s signature) digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(s.n))
	put(int64(s.m))
	put(int64(s.incid))
	put(int64(len(s.cards)))
	for _, c := range s.cards {
		put(int64(c))
	}
	putCounts(put, s.nodeLabels)
	putCounts(put, s.edgeLabels)
	return h.Sum64()
}

// putCounts feeds a label multiset into the digest: the number of distinct
// labels, then the (label, multiplicity) pairs in ascending label order —
// which Sorted maintains by construction, so the bytes are identical to
// the historical map-and-sort encoding and old snapshots keep attaching.
func putCounts(put func(int64), s multiset.Sorted) {
	put(int64(len(s.Labels)))
	for i, l := range s.Labels {
		put(int64(l))
		put(int64(s.Counts[i]))
	}
}

// exactDistance computes HGED(g, h) on the given solver, honoring the
// index's expansion cap, and reports pivot.Unknown when the solver could
// not prove optimality (budget exhausted or ctx cancelled) — unknown
// entries never participate in bounds, keeping them sound.
func (ix *Index) exactDistance(ctx context.Context, sv *core.Solver, g, h *hypergraph.Hypergraph) int32 {
	res := sv.BFS(g, h, core.Options{MaxExpansions: ix.MaxExpansions, Context: ctx})
	if !res.Exact {
		return pivot.Unknown
	}
	return int32(res.Distance)
}

// queryPivotDistances computes the query's exact distance to every pivot
// on the verification pool, wrapped by BoundTimer when set. It returns nil
// when no pivot table is attached (the engine then skips the triangle
// filter entirely and behaves exactly like the linear scan).
func (ix *Index) queryPivotDistances(ctx context.Context, q *hypergraph.Hypergraph) ([]int32, error) {
	pv := ix.pivots
	if pv == nil || pv.K() == 0 {
		return nil, nil
	}
	qd := make([]int32, pv.K())
	var err error
	compute := func() {
		_, err = ix.forEach(ctx, pv.K(), func(sv *core.Solver, j int) {
			qd[j] = ix.exactDistance(ctx, sv, q, ix.graphs[pv.PivotID(j)])
		})
	}
	if ix.BoundTimer != nil {
		ix.BoundTimer(compute)
	} else {
		compute()
	}
	if err != nil {
		return nil, fmt.Errorf("search: pivot bound computation aborted: %w", err)
	}
	return qd, nil
}
