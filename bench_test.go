// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index E1–E10), plus micro-benchmarks of
// the core HGED solvers. Each table/figure bench runs its experiment at a
// bench-friendly scale and reports the rendered rows once via b.Log; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or cmd/experiments for the paper-scale runs.
package hged_test

import (
	"testing"

	"hged"
	"hged/internal/dataset"
	"hged/internal/experiments"
	"hged/internal/gen"
)

// benchCfg keeps the table/figure benches minutes-fast: small replicas,
// few pairs, tight search budgets.
var benchCfg = experiments.Config{
	Scale:         0.15,
	Pairs:         25,
	MaxExpansions: 5_000,
	Seed:          7,
}

func logOnce(b *testing.B, i int, render func() string) {
	if i == 0 {
		b.Log("\n" + render())
	}
}

// BenchmarkTable1Datasets regenerates Table I (E1): dataset statistics.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderTable1(rows) })
	}
}

// BenchmarkFig8Effectiveness regenerates Fig. 8 (E2): HEP vs JS vs LGR.
func BenchmarkFig8Effectiveness(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"PS", "HS"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderFig8(rows) })
	}
}

// BenchmarkFig9ParameterSweep regenerates Fig. 9 (E3): HEP effectiveness
// under varying λ and τ.
func BenchmarkFig9ParameterSweep(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"HS"}
	for i := 0; i < b.N; i++ {
		lams, taus, err := experiments.Fig9(cfg, []int{2, 3, 5}, []int{3, 5, 8})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderFig9(lams, taus) })
	}
}

// BenchmarkFig10CaseStudy regenerates the Fig. 10 case study (E4).
func BenchmarkFig10CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseStudy(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Hit {
			b.Fatal("case study must recover the target collaboration")
		}
		logOnce(b, i, func() string { return experiments.RenderCaseStudy(res) })
	}
}

// BenchmarkTable2HGED regenerates Table II (E5): per-pair runtimes of
// HGED-HEU / HGED-DFS / HGED-BFS.
func BenchmarkTable2HGED(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"PS", "MO"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderTable2(rows) })
	}
}

// BenchmarkTable3HEP regenerates Table III (E6): full prediction runtimes
// of HEP-DFS vs HEP-BFS vs LGR.
func BenchmarkTable3HEP(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"HS"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderTable3(rows) })
	}
}

// BenchmarkFig11RuntimeSweep regenerates Fig. 11 (E7): HEP runtime on MO
// under varying λ and τ.
func BenchmarkFig11RuntimeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lams, taus, err := experiments.Fig11(benchCfg, []int{2, 3}, []int{4, 5})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderFig11(lams, taus) })
	}
}

// BenchmarkFig12Scalability regenerates Fig. 12 (E8): runtime vs TVG
// sub-sample fraction.
func BenchmarkFig12Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig12(benchCfg, []float64{0.25, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderFig12(points) })
	}
}

// BenchmarkAblationStrategies measures the contribution of the HGED-BFS
// pruning strategies (E9).
func BenchmarkAblationStrategies(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"HS"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStrategies(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderAblation(rows) })
	}
}

// BenchmarkEDCHungarianVsPermutation compares the two exact per-node-map
// edit-cost computations (E10).
func BenchmarkEDCHungarianVsPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEDC(benchCfg, []int{2, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderEDC(rows) })
	}
}

// BenchmarkPrecisionAtK runs the E11 extension: cohesion-ranked HEP
// precision@k.
func BenchmarkPrecisionAtK(b *testing.B) {
	cfg := benchCfg
	cfg.Datasets = []string{"HS"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtensionPrecisionAtK(cfg, []int{5, 10, 25})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, func() string { return experiments.RenderPrecisionAtK(rows) })
	}
}

// --------------------------------------------------------------- micro

func paperEgoPair() (*hged.Hypergraph, *hged.Hypergraph) {
	labels := []hged.Label{2, 2, 2, 3, 3, 1, 2, 3}
	g := hged.NewLabeledHypergraph(labels)
	g.AddEdge(10, 0, 1, 3)
	g.AddEdge(10, 3, 5, 6)
	g.AddEdge(11, 1, 2, 4)
	g.AddEdge(11, 3, 4, 6, 7)
	return g.Ego(3), g.Ego(4)
}

// BenchmarkHGEDBFSPaperExample solves the paper's Fig. 2 instance.
func BenchmarkHGEDBFSPaperExample(b *testing.B) {
	x, y := paperEgoPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hged.BFS(x, y, hged.Options{}).Distance != 6 {
			b.Fatal("wrong distance")
		}
	}
}

// BenchmarkHGEDDFSPaperExample solves the same instance with HGED-DFS.
func BenchmarkHGEDDFSPaperExample(b *testing.B) {
	x, y := paperEgoPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hged.DFS(x, y, hged.Options{}).Distance != 6 {
			b.Fatal("wrong distance")
		}
	}
}

// BenchmarkHGEDBFSThreshold verifies σ ≤ τ — HEP's hot operation.
func BenchmarkHGEDBFSThreshold(b *testing.B) {
	x, y := paperEgoPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hged.BFS(x, y, hged.Options{Threshold: 10})
	}
}

// BenchmarkLowerBound measures the Strategy-3 screen.
func BenchmarkLowerBound(b *testing.B) {
	x, y := paperEgoPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hged.LowerBound(x, y) != 6 {
			b.Fatal("wrong bound")
		}
	}
}

// BenchmarkEgoExtraction measures ego-network construction on a replica.
func BenchmarkEgoExtraction(b *testing.B) {
	spec, err := dataset.Lookup("HS")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Replica(0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ego(hged.NodeID(i % g.NumNodes()))
	}
}

// BenchmarkGeneratePlanted measures the planted-community generator.
func BenchmarkGeneratePlanted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.PlantedCommunities(gen.Config{
			Nodes: 300, Edges: 600, MeanEdgeSize: 4, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorHEP measures a full HEP run on a small HS replica.
func BenchmarkPredictorHEP(b *testing.B) {
	spec, err := dataset.Lookup("HS")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Replica(0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5, MaxExpansions: 5_000})
		if err != nil {
			b.Fatal(err)
		}
		p.Run()
	}
}
