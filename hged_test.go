package hged_test

import (
	"strings"
	"testing"

	"hged"
)

// buildPair constructs the paper's Fig. 1 hypergraph through the public
// facade only, and returns it.
func buildFig1(t *testing.T) *hged.Hypergraph {
	t.Helper()
	labels := []hged.Label{2, 2, 2, 3, 3, 1, 2, 3} // u1..u8
	g := hged.NewLabeledHypergraph(labels)
	g.AddEdge(10, 0, 1, 3)
	g.AddEdge(10, 3, 5, 6)
	g.AddEdge(11, 1, 2, 4)
	g.AddEdge(11, 3, 4, 6, 7)
	return g
}

func TestFacadeDistanceAndPath(t *testing.T) {
	g := buildFig1(t)
	egoU4, egoU5 := g.Ego(3), g.Ego(4)
	if d := hged.Distance(egoU4, egoU5); d != 6 {
		t.Fatalf("Distance = %d, want 6", d)
	}
	d, path := hged.DistanceWithPath(egoU4, egoU5)
	if d != 6 || path.Cost() != 6 {
		t.Fatalf("path distance %d cost %d", d, path.Cost())
	}
	edited, err := path.Apply(egoU4)
	if err != nil {
		t.Fatal(err)
	}
	if !hged.Isomorphic(edited, egoU5) {
		t.Fatal("edit path must reach the target")
	}
	if s := hged.ExplainString(path, nil); !strings.Contains(s, "(1)") {
		t.Fatalf("explanation malformed: %q", s)
	}
}

func TestFacadeNodeDistanceAndThreshold(t *testing.T) {
	g := buildFig1(t)
	if res := hged.NodeDistance(g, 3, 4, hged.Options{}); res.Distance != 6 {
		t.Fatalf("σ(u4,u5) = %d", res.Distance)
	}
	if _, ok := hged.DistanceWithin(g.Ego(3), g.Ego(4), 5); ok {
		t.Fatal("within 5 must fail for distance 6")
	}
	if lb := hged.LowerBound(g.Ego(3), g.Ego(4)); lb != 6 {
		t.Fatalf("lower bound = %d", lb)
	}
}

func TestFacadeSolversAgree(t *testing.T) {
	g := buildFig1(t)
	a, b := g.Ego(3), g.Ego(4)
	bfs := hged.BFS(a, b, hged.Options{}).Distance
	dfs := hged.DFS(a, b, hged.Options{}).Distance
	if bfs != dfs {
		t.Fatalf("BFS %d != DFS %d", bfs, dfs)
	}
	if heu := hged.HEU(a, b, hged.Options{}).Distance; heu < bfs {
		t.Fatalf("HEU %d below exact %d", heu, bfs)
	}
}

func TestFacadePredictor(t *testing.T) {
	// Two communities, one missing superset each.
	g := hged.NewHypergraph(0)
	for i := 0; i < 8; i++ {
		l := hged.Label(1)
		if i >= 4 {
			l = 2
		}
		g.AddNode(l)
	}
	for _, base := range []hged.NodeID{0, 4} {
		g.AddEdge(hged.Label(10+base), base, base+1, base+2)
		g.AddEdge(hged.Label(10+base), base, base+1, base+3)
		g.AddEdge(hged.Label(10+base), base, base+2, base+3)
	}
	p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Run()
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	if !hged.VerifyHyperedge(g, []hged.NodeID{0, 1, 2, 3}, 3, 6) {
		t.Fatal("community should verify as a (3,6)-hyperedge")
	}
	ex, err := p.Explain(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Lines()) != ex.Distance {
		t.Fatalf("explanation has %d lines for distance %d", len(ex.Lines()), ex.Distance)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := buildFig1(t)
	if js, err := hged.NewJS(g, hged.JSOptions{}); err != nil || js == nil {
		t.Fatalf("NewJS: %v", err)
	}
	if _, err := hged.NewLGR(g, hged.LGROptions{}); err != nil {
		t.Fatalf("NewLGR: %v", err)
	}
	if s := hged.Jaccard(g, 0, 1); s <= 0 || s > 1 {
		t.Fatalf("Jaccard = %v", s)
	}
	if hged.CommonNeighbors(g, 0, 1) <= 0 {
		t.Fatal("CN should be positive for co-members")
	}
	if hged.AdamicAdar(g, 0, 1) <= 0 {
		t.Fatal("AA should be positive for co-members")
	}
}

func TestFacadeBipartiteAndStats(t *testing.T) {
	g := buildFig1(t)
	b := hged.ToBipartite(g)
	if b.NumLeft() != 8 || b.NumRight() != 4 {
		t.Fatalf("bipartite %dx%d", b.NumLeft(), b.NumRight())
	}
	st := hged.Summarize(g)
	if st.Nodes != 8 || st.Edges != 4 {
		t.Fatalf("stats %+v", st)
	}
}
