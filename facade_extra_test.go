package hged_test

import (
	"bytes"
	"strings"
	"testing"

	"hged"
)

func TestFacadeIO(t *testing.T) {
	g := hged.Fig1()
	var buf bytes.Buffer
	if err := hged.WriteHG(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := hged.ReadHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !hged.Isomorphic(g, back) {
		t.Fatal("HG round trip lost structure")
	}
	buf.Reset()
	if err := hged.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := hged.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := hged.ReadBenson(strings.NewReader("2"), strings.NewReader("1 2"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	g, comm, err := hged.GeneratePlanted(hged.GenConfig{Nodes: 50, Edges: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || len(comm) != 50 {
		t.Fatalf("n=%d comm=%d", g.NumNodes(), len(comm))
	}
	u := hged.GenerateUniform(20, 10, 3, 2, 2, 7)
	if u.NumEdges() != 10 {
		t.Fatal("uniform generator wrong size")
	}
	sub := hged.Subsample(g, 0.5, 0.5, 9)
	if sub.NumNodes() != 25 {
		t.Fatalf("subsample n=%d", sub.NumNodes())
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(hged.Datasets()) != 6 {
		t.Fatal("registry should list six datasets")
	}
	spec, err := hged.LookupDataset("HS")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Replica(0.05)
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := hged.SplitEdges(g, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumEdges()+len(held) != g.NumEdges() {
		t.Fatal("split lost hyperedges")
	}
}

func TestFacadeEvaluation(t *testing.T) {
	preds := [][]hged.NodeID{{0, 1, 2, 3}}
	held := []hged.Hyperedge{{Nodes: []hged.NodeID{1, 2}}}
	prf, _ := hged.EvaluatePredictions(preds, held, hged.MatchOptions{Mode: hged.MatchContainment})
	if prf.Precision != 1 {
		t.Fatalf("containment precision = %v", prf.Precision)
	}
	p := hged.PrecisionAtK(preds, held, hged.MatchOptions{Mode: hged.MatchContainment}, []int{1})
	if p[0] != 1 {
		t.Fatalf("P@1 = %v", p[0])
	}
}

func TestFacadeSearch(t *testing.T) {
	g := hged.Fig1()
	corpus := make([]*hged.Hypergraph, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		corpus[v] = g.Ego(hged.NodeID(v))
	}
	ix := hged.BuildSearchIndex(corpus)
	matches, _, err := ix.Search(g.Ego(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != 3 {
		t.Fatalf("self search failed: %v", matches)
	}
	nn, _, err := ix.Nearest(g.Ego(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].Distance != 0 {
		t.Fatalf("kNN: %v", nn)
	}
}

func TestFacadeNamedBuilder(t *testing.T) {
	b := hged.NewNamedBuilder()
	b.Edge("KDD", "han", "ren", "shang")
	b.LabeledNode("han", "data-mining")
	g := b.Graph()
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	v, ok := b.NodeID("ren")
	if !ok || b.NodeName(v) != "ren" {
		t.Fatal("name round trip broken")
	}
}

func TestFacadeViz(t *testing.T) {
	g := hged.Fig1()
	var buf bytes.Buffer
	if err := hged.WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph") {
		t.Fatal("DOT output malformed")
	}
	_, path := hged.DistanceWithPath(g.Ego(3), g.Ego(4))
	buf.Reset()
	if err := hged.WriteEditPathDOT(&buf, g.Ego(3), path, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dashed") {
		t.Fatal("edit-path DOT should annotate deletions")
	}
}

func TestFacadeRankedPredictions(t *testing.T) {
	g := hged.NewHypergraph(0)
	for i := 0; i < 4; i++ {
		g.AddNode(1)
	}
	g.AddEdge(10, 0, 1, 2)
	g.AddEdge(10, 0, 1, 3)
	g.AddEdge(10, 0, 2, 3)
	p, err := hged.NewPredictor(g, hged.PredictOptions{Lambda: 3, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	ranked := p.RunRanked()
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score > ranked[i].Score {
			t.Fatal("ranking not ascending")
		}
	}
}
